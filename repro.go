// Package repro is a Go reproduction of "The Quality vs. Time Trade-off
// for Approximate Image Descriptor Search" (Sigurðardóttir, Hauksson,
// Jónsson, Amsaleg; ICDE Workshops 2005).
//
// It provides the paper's complete system: 24-dimensional local image
// descriptor collections, four chunk-forming strategies (the paper's BAG
// clustering and SR-tree bulk-load, plus the round-robin strawman and the
// uniform-size-first hybrid the conclusion proposes), the two-file chunk
// index architecture, and the ranked approximate search algorithm with
// the paper's three stop rules.
//
// Quick start:
//
//	coll := repro.GenerateCollection(100000, 42)
//	idx, _ := repro.Build(coll, repro.BuildConfig{Strategy: repro.StrategySRTree, ChunkSize: 1000})
//	res, _ := idx.Search(coll.Vec(17), repro.SearchOptions{K: 30, MaxChunks: 5})
//	for _, nb := range res.Neighbors { fmt.Println(nb.ID, nb.Dist) }
//
// Beyond the paper, the package serves production-shaped workloads:
// whole-workload batches run on a chunk-major batch engine (SearchBatch,
// SearchBatchInto), whole-image bags of descriptors on the multi-query
// voting layer (MultiSearch), and BuildSharded/OpenSharded partition an
// index across shards searched scatter-gather (ShardedIndex), one
// simulated 2005 machine per shard. Sharded stop-rule budgets apply per
// shard by default or — with SearchOptions.GlobalBudget — once across
// the whole fleet in global centroid-rank order, which matches the
// unsharded index's quality at the same total chunk bill.
//
// The internal packages hold the substrates (see README.md and
// DESIGN.md); this package is the stable surface.
package repro

import (
	"context"
	"fmt"
	"sync"
	"time"

	"repro/internal/bag"
	"repro/internal/chunkfile"
	"repro/internal/cluster"
	"repro/internal/descriptor"
	"repro/internal/hybrid"
	"repro/internal/imagegen"
	"repro/internal/knn"
	"repro/internal/multiquery"
	"repro/internal/roundrobin"
	"repro/internal/scan"
	"repro/internal/search"
	"repro/internal/search/batchexec"
	"repro/internal/simdisk"
	"repro/internal/srtree"
	"repro/internal/vec"
	"repro/internal/workload"
)

// Re-exported core types. The facade keeps the internal packages free to
// evolve while examples and downstream users import only "repro".
type (
	// Collection is an in-memory descriptor collection.
	Collection = descriptor.Collection
	// Vector is a point in descriptor space.
	Vector = vec.Vector
	// Neighbor is one search result entry.
	Neighbor = knn.Neighbor
	// ID identifies a descriptor.
	ID = descriptor.ID
	// CostModel is the simulated 2005 disk/CPU model used for timing.
	CostModel = simdisk.Model
)

// Dims is the descriptor dimensionality used throughout the paper.
const Dims = vec.Dims

// GenerateCollection synthesizes a collection of roughly n local image
// descriptors with the statistical properties the paper's evaluation
// depends on (Zipf-skewed density, halo noise, scattered outliers).
func GenerateCollection(n int, seed int64) *Collection {
	return imagegen.MustGenerate(imagegen.DefaultConfig(n, seed)).Collection
}

// LoadCollection reads a collection file written by SaveCollection.
func LoadCollection(path string) (*Collection, error) { return descriptor.LoadFile(path) }

// SaveCollection writes the collection to path.
func SaveCollection(c *Collection, path string) error { return c.SaveFile(path) }

// DatasetQueries returns n DQ-workload queries (§5.3).
func DatasetQueries(c *Collection, n int, seed int64) ([]Vector, error) {
	return workload.DQ(c, n, seed)
}

// SpaceQueries returns n SQ-workload queries with 5% trimmed ranges (§5.3).
func SpaceQueries(c *Collection, n int, seed int64) ([]Vector, error) {
	return workload.SQ(c, n, 0.05, seed)
}

// ZipfQueries returns n dataset queries with Zipf-skewed repetition
// (exponent s > 1; larger is more skewed): a few descriptors are queried
// over and over while the tail is hit rarely. This is the workload shape
// under which hot-cluster replication (BuildReplicated with a sample)
// pays off.
func ZipfQueries(c *Collection, n int, s float64, seed int64) ([]Vector, error) {
	return workload.Zipf(c, n, s, seed)
}

// Strategy selects a chunk-forming algorithm.
type Strategy string

// The four chunk-forming strategies.
const (
	// StrategyBAG is the paper's quality-first clustering (§3). It also
	// removes outliers; see Index.Outliers.
	StrategyBAG Strategy = "bag"
	// StrategySRTree is the paper's time-first uniform chunking (§2).
	StrategySRTree Strategy = "srtree"
	// StrategyRoundRobin is the §1.1 strawman.
	StrategyRoundRobin Strategy = "roundrobin"
	// StrategyHybrid is the §7 future-work strategy: uniform size first,
	// intra-chunk similarity best-effort.
	StrategyHybrid Strategy = "hybrid"
)

// BuildConfig controls index construction.
type BuildConfig struct {
	Strategy  Strategy
	ChunkSize int // target (SR/RR/hybrid: exact; BAG: mean) descriptors per chunk
	PageSize  int // chunk file page size; 0 means 8 KiB
	Seed      int64
	// MPI overrides BAG's Maximum Possible Increment (0 = default).
	MPI float64
	// MaxPasses bounds BAG's convergence loop (0 = default).
	MaxPasses int
	// Progress receives BAG pass updates when non-nil.
	Progress func(pass, clusters int)
	// CacheBytes, when positive, fronts the built index's store with a
	// decoded-chunk cache of that many bytes (see OpenConfig.CacheBytes
	// for the contract). Zero builds without a cache.
	CacheBytes int64
	// HeatBalance, with a non-nil workload sample in BuildReplicated,
	// balances *primary* placement by expected served load (sample heat ×
	// padded chunk bytes) instead of storage bytes alone, so hot clusters
	// spread across the shards and the hottest shard stops dominating the
	// merged Simulated under a skewed workload. Deterministic, and the
	// identity on one shard. Without a sample (or with one that never
	// hits a cluster) it falls back to the byte-balanced placement.
	// Sharded builds only; ignored by Build.
	HeatBalance bool
	// SpreadReads turns on the spread-reads routing policy of a
	// replicated sharded build: every read is served by the live copy
	// (primary or replica) with the least billed simulated load, instead
	// of the primary whenever it is healthy. Results are byte-identical
	// either way — only Simulated and the per-shard load split move. See
	// ShardedIndex.SetSpreadReads. Sharded builds only; ignored by Build.
	SpreadReads bool
}

// Index is a searchable chunk index plus its build provenance.
type Index struct {
	store    chunkfile.Store
	searcher *search.Searcher
	engine   *batchexec.Engine    // chunk-major batch execution engine
	multi    *multiquery.Searcher // multi-descriptor search over the engine

	batchPool sync.Pool // *[]search.Result: SearchBatchInto's internal arena

	pageSize int                // page granularity the store was padded with
	cached   *cachingStore      // non-nil when the index was built/opened with a cache
	coll     *Collection        // nil for file-opened indexes
	clusters []*cluster.Cluster // nil for file-opened indexes

	// Outliers holds the collection positions BAG discarded (empty for
	// the other strategies and for file-opened indexes).
	Outliers []int
}

// newIndex assembles an Index over a store: the single-query searcher,
// the chunk-major batch engine, and the multi-descriptor searcher that
// shares the engine.
func newIndex(store chunkfile.Store) *Index {
	eng := batchexec.New(store, nil)
	ix := &Index{
		store:    store,
		searcher: search.New(store, nil),
		engine:   eng,
		multi:    multiquery.NewWithEngine(eng),
	}
	ix.batchPool.New = func() any {
		s := []search.Result(nil)
		return &s
	}
	return ix
}

// normalizePageSize resolves a BuildConfig page size (0 means the 8 KiB
// default).
func normalizePageSize(pageSize int) int {
	if pageSize <= 0 {
		return chunkfile.DefaultPageSize
	}
	return pageSize
}

// buildClusters forms chunks from the collection with the selected
// strategy — the clustering stage shared by Build and BuildSharded.
func buildClusters(coll *Collection, cfg BuildConfig) (clusters []*cluster.Cluster, outliers []int, err error) {
	if cfg.ChunkSize < 1 {
		return nil, nil, fmt.Errorf("repro: ChunkSize %d < 1", cfg.ChunkSize)
	}
	switch cfg.Strategy {
	case StrategyBAG:
		bcfg := bag.DefaultConfig(coll.Len(), cfg.ChunkSize)
		if cfg.MPI > 0 {
			bcfg.MPI = cfg.MPI
		}
		if cfg.MaxPasses > 0 {
			bcfg.MaxPasses = cfg.MaxPasses
		}
		bcfg.Seed = cfg.Seed
		bcfg.Progress = cfg.Progress
		snaps, err := bag.Run(coll, bcfg)
		if err != nil {
			return nil, nil, err
		}
		snap := snaps[len(snaps)-1]
		clusters = snap.Clusters
		outliers = snap.Outliers
	case StrategySRTree, "":
		tree, err := srtree.Build(coll, nil, cfg.ChunkSize, 0)
		if err != nil {
			return nil, nil, err
		}
		clusters = tree.Chunks()
	case StrategyRoundRobin:
		var err error
		clusters, err = roundrobin.Chunks(coll, nil, cfg.ChunkSize)
		if err != nil {
			return nil, nil, err
		}
	case StrategyHybrid:
		var err error
		clusters, err = hybrid.Chunks(coll, nil, hybrid.Config{ChunkSize: cfg.ChunkSize, Seed: cfg.Seed})
		if err != nil {
			return nil, nil, err
		}
	default:
		return nil, nil, fmt.Errorf("repro: unknown strategy %q", cfg.Strategy)
	}
	return clusters, outliers, nil
}

// Build forms chunks from the collection with the selected strategy and
// returns an in-memory index over them.
func Build(coll *Collection, cfg BuildConfig) (*Index, error) {
	clusters, outliers, err := buildClusters(coll, cfg)
	if err != nil {
		return nil, err
	}
	store, cached := wrapCache(chunkfile.NewMemStore(coll, clusters, cfg.PageSize), cfg.CacheBytes)
	ix := newIndex(store)
	ix.pageSize = normalizePageSize(cfg.PageSize)
	ix.cached = cached
	ix.coll = coll
	ix.clusters = clusters
	ix.Outliers = outliers
	return ix, nil
}

// Save writes the index's two files (§4.2: chunk file + index file) at
// the page size the index was built with, so the reopened index has
// byte-identical chunk layout and simulated timings. Only indexes
// produced by Build can be saved.
func (ix *Index) Save(chunkPath, indexPath string) error {
	if ix.coll == nil || ix.clusters == nil {
		return fmt.Errorf("repro: index was not built in this process; nothing to save")
	}
	return chunkfile.Write(ix.coll, ix.clusters, chunkPath, indexPath, ix.pageSize)
}

// Open maps an index previously written by Save.
func Open(chunkPath, indexPath string) (*Index, error) {
	return OpenWith(chunkPath, indexPath, OpenConfig{})
}

// Close releases the index's resources.
func (ix *Index) Close() error { return ix.store.Close() }

// Chunks returns the number of chunks in the index.
func (ix *Index) Chunks() int { return len(ix.store.Meta()) }

// Len returns the number of descriptors reachable through the index.
func (ix *Index) Len() int {
	n := 0
	for _, m := range ix.store.Meta() {
		n += m.Count
	}
	return n
}

// SearchOptions selects the k and the stop rule (§4.3). Zero values mean
// k=30 and run-to-completion; MaxChunks and MaxTime, when positive, choose
// the approximate stop rules.
type SearchOptions struct {
	K         int
	MaxChunks int           // stop after this many chunks
	MaxTime   time.Duration // stop after this much simulated time
	Overlap   bool          // overlap I/O and CPU in the simulated pipeline
	Model     *CostModel    // nil = calibrated 2005 model
	// GlobalBudget switches a ShardedIndex search from the per-shard to
	// the global budget discipline: instead of every shard spending the
	// stop rule's budget independently (MaxChunks c reading up to S×c
	// chunks on S shards), the shards' ranked chunk lists merge into one
	// global centroid-rank order and the budget is spent once across the
	// fleet — MaxChunks c reads exactly min(c, total) chunks, MaxTime
	// bounds the max over the shards' simulated machines, and completion
	// stops at the merged exactness certificate. Each chunk is still
	// charged to its owning shard's simulated pipeline; Simulated remains
	// the max over the shards and ChunksRead their sum. See DESIGN.md §7.
	// Ignored by Index: one machine's budget is already global.
	GlobalBudget bool
	// Ctx, when non-nil, cancels the search between chunk charges: once
	// the context is cancelled or past its deadline, no further chunk is
	// read or billed and the search returns an error wrapping ctx.Err()
	// (errors.Is against context.Canceled / context.DeadlineExceeded).
	// This is how a serving layer propagates per-request deadlines: an
	// abandoned request stops consuming budget within one chunk. A nil Ctx
	// never stops the search.
	Ctx context.Context
}

// validate reports contradictory or out-of-range options as a diagnostic
// error at the facade boundary, instead of silently clamping. Zero values
// remain the documented defaults (K 0 = 30, no budget = run to
// completion).
func (opts SearchOptions) validate() error {
	if opts.K < 0 {
		return fmt.Errorf("repro: K %d is negative (0 selects the default of 30)", opts.K)
	}
	if opts.MaxChunks < 0 {
		return fmt.Errorf("repro: MaxChunks %d is negative (0 disables the chunk budget)", opts.MaxChunks)
	}
	if opts.MaxTime < 0 {
		return fmt.Errorf("repro: MaxTime %v is negative (0 disables the time budget)", opts.MaxTime)
	}
	if opts.MaxChunks > 0 && opts.MaxTime > 0 {
		return fmt.Errorf("repro: MaxChunks %d and MaxTime %v are conflicting stop rules; set at most one",
			opts.MaxChunks, opts.MaxTime)
	}
	return nil
}

// Result is a search outcome.
type Result struct {
	Neighbors  []Neighbor
	ChunksRead int
	// Simulated is the elapsed time under the 2005 cost model; Wall is
	// the real time this call took.
	Simulated time.Duration
	Wall      time.Duration
	// Exact reports whether the result is provably the true k-NN of the
	// indexed descriptors. A degraded result is never exact.
	Exact bool
	// Degraded reports that at least one chunk had no live replica and
	// was skipped (sharded indexes only): Neighbors is the best answer
	// over the reachable data, honestly labeled rather than an error.
	Degraded bool
	// ChunksSkipped counts the chunks skipped as unavailable.
	ChunksSkipped int
	// ShardsDown is the number of shards the router held down when the
	// query finished (always 0 for an unsharded Index).
	ShardsDown int
}

// Search runs one query against the index.
func (ix *Index) Search(q Vector, opts SearchOptions) (*Result, error) {
	res := &Result{}
	if err := ix.SearchInto(q, opts, res); err != nil {
		return nil, err
	}
	return res, nil
}

// stopRule maps SearchOptions onto the paper's three stop rules.
func stopRule(opts SearchOptions) search.StopRule {
	if opts.MaxChunks > 0 {
		return search.ChunkBudget(opts.MaxChunks)
	}
	if opts.MaxTime > 0 {
		return search.TimeBudget(opts.MaxTime)
	}
	return search.ToCompletion{}
}

// SearchInto runs one query, writing the outcome into res. The Neighbors
// slice already in res is reused when it has capacity: a caller recycling
// one Result across queries (the steady-state serving pattern) performs
// zero allocations per query.
func (ix *Index) SearchInto(q Vector, opts SearchOptions, res *Result) error {
	if err := opts.validate(); err != nil {
		return err
	}
	stop := stopRule(opts)
	var sr search.Result
	sr.Neighbors = res.Neighbors
	if err := ix.searcher.SearchInto(q, search.Options{
		K:       opts.K,
		Stop:    stop,
		Overlap: opts.Overlap,
		Model:   opts.Model,
		Ctx:     opts.Ctx,
	}, &sr); err != nil {
		return err
	}
	res.Neighbors = sr.Neighbors
	res.ChunksRead = sr.ChunksRead
	res.Simulated = sr.Elapsed
	res.Wall = sr.Wall
	res.Exact = sr.Exact
	res.Degraded = sr.Degraded
	res.ChunksSkipped = sr.ChunksSkipped
	res.ShardsDown = 0
	return nil
}

// MultiSearchOptions controls a multi-descriptor (whole-image) query.
type MultiSearchOptions struct {
	// K is the per-descriptor neighbor count (0 = 10).
	K int
	// MaxChunks is the per-descriptor chunk budget (0 = 3).
	MaxChunks int
	// RankWeighted weights votes by 1/(1+rank).
	RankWeighted bool
	// Overlap selects the overlapped pipeline in the simulated timing.
	Overlap bool
	// GlobalBudget makes a ShardedIndex spend each descriptor's MaxChunks
	// budget once across all shards (global centroid-rank order) instead
	// of once per shard — the same discipline as
	// SearchOptions.GlobalBudget. Ignored by Index.
	GlobalBudget bool
	// Ctx, when non-nil, cancels the bag's searches between chunk charges
	// — the same deadline-propagation contract as SearchOptions.Ctx.
	Ctx context.Context
}

// validate reports out-of-range multi-search options as a diagnostic
// error at the facade boundary; zero values remain the documented
// defaults (K 0 = 10, MaxChunks 0 = 3).
func (opts MultiSearchOptions) validate() error {
	if opts.K < 0 {
		return fmt.Errorf("repro: K %d is negative (0 selects the default of 10)", opts.K)
	}
	if opts.MaxChunks < 0 {
		return fmt.Errorf("repro: MaxChunks %d is negative (0 selects the default of 3)", opts.MaxChunks)
	}
	return nil
}

// ImageMatch is one ranked image of a multi-descriptor search.
type ImageMatch = multiquery.ImageScore

// MultiResult is the outcome of a multi-descriptor search.
type MultiResult = multiquery.Result

// MultiSearch implements the paper's §7 follow-up: query with a whole
// image's bag of local descriptors, aggregate per-descriptor approximate
// searches into image votes, and return the ranked source images. The
// bag of descriptors is a natural batch against one store, so it runs on
// the index's chunk-major batch engine.
func (ix *Index) MultiSearch(descriptors []Vector, opts MultiSearchOptions) (*MultiResult, error) {
	if err := opts.validate(); err != nil {
		return nil, err
	}
	maxChunks := opts.MaxChunks
	if maxChunks <= 0 {
		maxChunks = 3
	}
	return ix.multi.Query(descriptors, multiquery.Options{
		K:            opts.K,
		Stop:         search.ChunkBudget(maxChunks),
		RankWeighted: opts.RankWeighted,
		Overlap:      opts.Overlap,
		Ctx:          opts.Ctx,
	})
}

// Exact returns the true k nearest neighbors of q by sequential scan —
// the paper's ground-truth oracle (§5.4).
func Exact(coll *Collection, q Vector, k int) []Neighbor {
	return scan.KNN(coll, q, k)
}

// Precision returns |approx ∩ truth| / k for two neighbor lists, the
// paper's quality metric.
func Precision(approx, truth []Neighbor) float64 {
	if len(truth) == 0 {
		return 0
	}
	set := make(map[ID]struct{}, len(truth))
	for _, n := range truth {
		set[n.ID] = struct{}{}
	}
	hit := 0
	for _, n := range approx {
		if _, ok := set[n.ID]; ok {
			hit++
		}
	}
	return float64(hit) / float64(len(truth))
}
