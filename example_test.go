package repro_test

import (
	"fmt"

	"repro"
)

// ExampleBuild indexes a small collection and runs the paper's
// 5-nearest-chunks approximate search.
func ExampleBuild() {
	coll := repro.GenerateCollection(10000, 1)
	idx, err := repro.Build(coll, repro.BuildConfig{
		Strategy:  repro.StrategySRTree,
		ChunkSize: 500,
	})
	if err != nil {
		panic(err)
	}
	q := coll.Vec(100)
	res, err := idx.Search(q, repro.SearchOptions{K: 30, MaxChunks: 5})
	if err != nil {
		panic(err)
	}
	fmt.Println("neighbors:", len(res.Neighbors))
	fmt.Println("chunks read:", res.ChunksRead)
	// Output:
	// neighbors: 30
	// chunks read: 5
}

// ExampleIndex_Search contrasts the exact stop rule with the sequential
// scan oracle: run-to-completion is provably exact.
func ExampleIndex_Search() {
	coll := repro.GenerateCollection(8000, 2)
	idx, err := repro.Build(coll, repro.BuildConfig{Strategy: repro.StrategyHybrid, ChunkSize: 400, Seed: 1})
	if err != nil {
		panic(err)
	}
	q := coll.Vec(42)
	res, err := idx.Search(q, repro.SearchOptions{K: 10})
	if err != nil {
		panic(err)
	}
	truth := repro.Exact(coll, q, 10)
	fmt.Println("exact:", res.Exact)
	fmt.Println("precision:", repro.Precision(res.Neighbors, truth))
	// Output:
	// exact: true
	// precision: 1
}

// ExampleIndex_MultiSearch retrieves a source image from its own bag of
// local descriptors (the paper's §7 multi-descriptor search).
func ExampleIndex_MultiSearch() {
	coll := repro.GenerateCollection(10000, 3)
	idx, err := repro.Build(coll, repro.BuildConfig{Strategy: repro.StrategySRTree, ChunkSize: 400})
	if err != nil {
		panic(err)
	}
	const img = 31
	var qs []repro.Vector
	for i := 0; i < coll.Len(); i++ {
		if coll.IDAt(i).ImageOf() == img {
			qs = append(qs, coll.Vec(i))
		}
	}
	res, err := idx.MultiSearch(qs, repro.MultiSearchOptions{})
	if err != nil {
		panic(err)
	}
	fmt.Println("top image:", res.Images[0].Image)
	// Output:
	// top image: 31
}
