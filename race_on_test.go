//go:build race

package repro

// raceEnabled reports the race detector is active: its instrumentation
// allocates, so allocation-count assertions are skipped.
const raceEnabled = true
