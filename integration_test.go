package repro

import (
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestEndToEndFilePipeline exercises the full production flow: generate a
// collection, persist it, reload it, build each strategy's index, persist
// the index, reopen it, and verify searches against the scan oracle —
// the cmd/descgen → cmd/chunkbuild → cmd/chunksearch path at library level.
func TestEndToEndFilePipeline(t *testing.T) {
	dir := t.TempDir()
	collPath := filepath.Join(dir, "collection.desc")

	gen := GenerateCollection(8000, 99)
	if err := SaveCollection(gen, collPath); err != nil {
		t.Fatal(err)
	}
	coll, err := LoadCollection(collPath)
	if err != nil {
		t.Fatal(err)
	}
	if coll.Len() != gen.Len() {
		t.Fatalf("reloaded %d of %d descriptors", coll.Len(), gen.Len())
	}

	queries, err := DatasetQueries(coll, 5, 3)
	if err != nil {
		t.Fatal(err)
	}

	for _, strat := range []Strategy{StrategySRTree, StrategyHybrid, StrategyRoundRobin} {
		built, err := Build(coll, BuildConfig{Strategy: strat, ChunkSize: 250, Seed: 1})
		if err != nil {
			t.Fatalf("%s: %v", strat, err)
		}
		cp := filepath.Join(dir, string(strat)+".chunk")
		ip := filepath.Join(dir, string(strat)+".idx")
		if err := built.Save(cp, ip); err != nil {
			t.Fatalf("%s: %v", strat, err)
		}
		opened, err := Open(cp, ip)
		if err != nil {
			t.Fatalf("%s: %v", strat, err)
		}
		for qi, q := range queries {
			res, err := opened.Search(q, SearchOptions{K: 10})
			if err != nil {
				t.Fatalf("%s q%d: %v", strat, qi, err)
			}
			truth := Exact(coll, q, 10)
			if p := Precision(res.Neighbors, truth); p != 1 {
				t.Fatalf("%s q%d: completion precision %v", strat, qi, p)
			}
		}
		if err := opened.Close(); err != nil {
			t.Fatalf("%s: close: %v", strat, err)
		}
	}
}

// TestSearchBatchMatchesSequential verifies the parallel batch runner
// returns exactly the sequential per-query results, in order.
func TestSearchBatchMatchesSequential(t *testing.T) {
	coll := GenerateCollection(6000, 5)
	idx, err := Build(coll, BuildConfig{Strategy: StrategySRTree, ChunkSize: 200})
	if err != nil {
		t.Fatal(err)
	}
	queries, err := DatasetQueries(coll, 24, 8)
	if err != nil {
		t.Fatal(err)
	}
	opts := SearchOptions{K: 15, MaxChunks: 4}
	batch, err := idx.SearchBatch(queries, BatchOptions{SearchOptions: opts, Parallelism: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(batch) != len(queries) {
		t.Fatalf("batch returned %d of %d", len(batch), len(queries))
	}
	for qi, q := range queries {
		seq, err := idx.Search(q, opts)
		if err != nil {
			t.Fatal(err)
		}
		if len(seq.Neighbors) != len(batch[qi].Neighbors) {
			t.Fatalf("q%d: lengths differ", qi)
		}
		for i := range seq.Neighbors {
			if math.Abs(seq.Neighbors[i].Dist-batch[qi].Neighbors[i].Dist) > 1e-12 {
				t.Fatalf("q%d rank %d: batch diverges from sequential", qi, i)
			}
		}
		if batch[qi].ChunksRead != seq.ChunksRead {
			t.Fatalf("q%d: chunks %d vs %d", qi, batch[qi].ChunksRead, seq.ChunksRead)
		}
	}
}

func TestSearchBatchEdges(t *testing.T) {
	coll := GenerateCollection(2000, 6)
	idx, err := Build(coll, BuildConfig{Strategy: StrategySRTree, ChunkSize: 200})
	if err != nil {
		t.Fatal(err)
	}
	res, err := idx.SearchBatch(nil, BatchOptions{})
	if err != nil || res != nil {
		t.Fatalf("empty batch: %v %v", res, err)
	}
	// More workers than queries must not deadlock.
	queries, _ := DatasetQueries(coll, 2, 1)
	res, err = idx.SearchBatch(queries, BatchOptions{Parallelism: 16})
	if err != nil || len(res) != 2 {
		t.Fatalf("tiny batch: %v %v", res, err)
	}
}

// TestSearchBatchFailFast verifies a bad query fails the whole batch and
// the error identifies the query; the dispatcher stops handing out work
// once a worker reports a failure.
func TestSearchBatchFailFast(t *testing.T) {
	coll := GenerateCollection(2000, 6)
	idx, err := Build(coll, BuildConfig{Strategy: StrategySRTree, ChunkSize: 200})
	if err != nil {
		t.Fatal(err)
	}
	good, _ := DatasetQueries(coll, 50, 1)
	queries := make([]Vector, 0, len(good)+1)
	queries = append(queries, make(Vector, Dims+1)) // wrong dims: fails
	queries = append(queries, good...)

	res, err := idx.SearchBatch(queries, BatchOptions{Parallelism: 1})
	if err == nil || res != nil {
		t.Fatalf("bad query did not fail the batch: res=%v err=%v", res, err)
	}
	if !strings.Contains(err.Error(), "batch query 0") {
		t.Fatalf("error does not identify the failing query: %v", err)
	}
}

// TestCorruptIndexFilesRejected is the failure-injection counterpart of
// the save/open round-trip: every mangled artifact must produce an error,
// never a silent wrong result.
func TestCorruptIndexFilesRejected(t *testing.T) {
	dir := t.TempDir()
	coll := GenerateCollection(3000, 7)
	idx, err := Build(coll, BuildConfig{Strategy: StrategySRTree, ChunkSize: 200})
	if err != nil {
		t.Fatal(err)
	}
	cp, ip := filepath.Join(dir, "a.chunk"), filepath.Join(dir, "a.idx")
	if err := idx.Save(cp, ip); err != nil {
		t.Fatal(err)
	}

	corrupt := func(path string, mutate func([]byte) []byte) string {
		raw, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		out := filepath.Join(dir, "corrupt-"+filepath.Base(path))
		if err := os.WriteFile(out, mutate(raw), 0o644); err != nil {
			t.Fatal(err)
		}
		return out
	}

	// Bad magic in the index file.
	badIdx := corrupt(ip, func(b []byte) []byte { b[0] ^= 0xFF; return b })
	if _, err := Open(cp, badIdx); err == nil {
		t.Fatal("bad index magic accepted")
	}
	// Truncated index file.
	shortIdx := corrupt(ip, func(b []byte) []byte { return b[:len(b)-13] })
	if _, err := Open(cp, shortIdx); err == nil {
		t.Fatal("truncated index accepted")
	}
	// Bad magic in the chunk file.
	badChunk := corrupt(cp, func(b []byte) []byte { b[0] ^= 0xFF; return b })
	if _, err := Open(badChunk, ip); err == nil {
		t.Fatal("bad chunk magic accepted")
	}
	// Chunk file truncated below the last chunk: opening may succeed, but
	// reading the missing chunk must fail.
	shortChunk := corrupt(cp, func(b []byte) []byte { return b[:len(b)/2] })
	if opened, err := Open(shortChunk, ip); err == nil {
		defer opened.Close()
		q := coll.Vec(0)
		if _, err := opened.Search(q, SearchOptions{K: 5}); err == nil {
			t.Fatal("search over truncated chunk file succeeded")
		}
	}
	// Collection file corruption.
	collPath := filepath.Join(dir, "c.desc")
	if err := SaveCollection(coll, collPath); err != nil {
		t.Fatal(err)
	}
	badColl := corrupt(collPath, func(b []byte) []byte { return b[:len(b)-7] })
	if _, err := LoadCollection(badColl); err == nil {
		t.Fatal("truncated collection accepted")
	}
}

// TestDeterministicPipeline: identical seeds must yield identical indexes
// and identical search results across independent runs.
func TestDeterministicPipeline(t *testing.T) {
	run := func() []Neighbor {
		coll := GenerateCollection(4000, 123)
		idx, err := Build(coll, BuildConfig{Strategy: StrategyHybrid, ChunkSize: 150, Seed: 9})
		if err != nil {
			t.Fatal(err)
		}
		res, err := idx.Search(coll.Vec(77), SearchOptions{K: 12, MaxChunks: 3})
		if err != nil {
			t.Fatal(err)
		}
		return res.Neighbors
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatal("lengths differ across runs")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("result %d differs across runs", i)
		}
	}
}
