// Benchmarks regenerating every table and figure of the paper (one
// benchmark per artifact; see DESIGN.md §4), plus build benchmarks for
// the two chunk-forming strategies.
//
// The shared lab (collection, workloads, BAG and SR indexes at every
// granularity) is built once outside the timer; each benchmark iteration
// performs the measurement work of its table or figure. Scale with
// REPRO_BENCH_N (default 12,000 descriptors — large enough for every
// qualitative effect, small enough for -bench=. runs).
package repro

import (
	"io"
	"os"
	"strconv"
	"sync"
	"testing"

	"repro/internal/bag"
	"repro/internal/experiments"
	"repro/internal/srtree"
)

var (
	benchOnce sync.Once
	benchLab  *experiments.Lab
	benchErr  error
)

func benchN() int {
	if s := os.Getenv("REPRO_BENCH_N"); s != "" {
		if v, err := strconv.Atoi(s); err == nil && v > 0 {
			return v
		}
	}
	return 12000
}

func getBenchLab(b *testing.B) *experiments.Lab {
	benchOnce.Do(func() {
		cfg := experiments.DefaultConfig()
		cfg.N = benchN()
		cfg.Queries = 10
		cfg.K = 20
		cfg.TargetSizes = []int{150, 300, 450}
		cfg.Names = []string{"SMALL", "MEDIUM", "LARGE"}
		benchLab, benchErr = experiments.NewLab(cfg)
	})
	if benchErr != nil {
		b.Fatal(benchErr)
	}
	return benchLab
}

// BenchmarkTable1 regenerates Table 1 (chunk index properties).
func BenchmarkTable1(b *testing.B) {
	lab := getBenchLab(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := experiments.Table1(lab)
		res.Render(io.Discard)
	}
}

// BenchmarkFigure1 regenerates Figure 1 (sizes of the largest chunks).
func BenchmarkFigure1(b *testing.B) {
	lab := getBenchLab(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := experiments.Figure1(lab, 30)
		res.Render(io.Discard)
	}
}

// BenchmarkFigure2 regenerates Figure 2 (chunks to find neighbors, DQ).
func BenchmarkFigure2(b *testing.B) {
	benchCurve(b, "DQ", false)
}

// BenchmarkFigure3 regenerates Figure 3 (chunks to find neighbors, SQ).
func BenchmarkFigure3(b *testing.B) {
	benchCurve(b, "SQ", false)
}

// BenchmarkFigure4 regenerates Figure 4 (time to find neighbors, DQ).
func BenchmarkFigure4(b *testing.B) {
	benchCurve(b, "DQ", true)
}

// BenchmarkFigure5 regenerates Figure 5 (time to find neighbors, SQ).
func BenchmarkFigure5(b *testing.B) {
	benchCurve(b, "SQ", true)
}

func benchCurve(b *testing.B, workload string, timeAxis bool) {
	lab := getBenchLab(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		if timeAxis {
			_, err = experiments.Figure45(lab, workload)
		} else {
			_, err = experiments.Figure23(lab, workload)
		}
		if err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable2 regenerates Table 2 (time to completion).
func BenchmarkTable2(b *testing.B) {
	lab := getBenchLab(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Table2(lab); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure6 regenerates Figure 6 (chunk-size sweep, DQ) with a
// reduced sweep to keep benchmark iterations affordable.
func BenchmarkFigure6(b *testing.B) {
	benchSweep(b, "DQ")
}

// BenchmarkFigure7 regenerates Figure 7 (chunk-size sweep, SQ).
func BenchmarkFigure7(b *testing.B) {
	benchSweep(b, "SQ")
}

func benchSweep(b *testing.B, workload string) {
	lab := getBenchLab(b)
	sizes := experiments.ChunkSizeSweep(6, 100, 100000, lab.Coll.Len())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Figure67(lab, workload, sizes, []int{1, 10, 20}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBuildTimeBAG measures BAG clustering construction — the
// paper's "almost 12 days" side of the build asymmetry (§5.2).
func BenchmarkBuildTimeBAG(b *testing.B) {
	coll := GenerateCollection(5000, 3)
	cfg := bag.DefaultConfig(coll.Len(), 150)
	cfg.MaxPasses = 500
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := bag.Run(coll, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBuildTimeSR measures SR-tree bulk-load construction — the
// "about three hours" side (§5.2) — on the same collection as the BAG
// benchmark for a direct ratio.
func BenchmarkBuildTimeSR(b *testing.B) {
	coll := GenerateCollection(5000, 3)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := srtree.Build(coll, nil, 150, 16); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkComparators regenerates the related-work comparison table.
func BenchmarkComparators(b *testing.B) {
	lab := getBenchLab(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Comparators(lab); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationOverlap regenerates the overlap-vs-serial ablation.
func BenchmarkAblationOverlap(b *testing.B) {
	lab := getBenchLab(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.AblationOverlap(lab); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationStrategies regenerates the four-strategy ablation.
func BenchmarkAblationStrategies(b *testing.B) {
	lab := getBenchLab(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.AblationStrategies(lab); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSingleQueryCompletion measures one exact chunk search on the
// shared SMALL SR index.
func BenchmarkSingleQueryCompletion(b *testing.B) {
	lab := getBenchLab(b)
	idx, err := Build(lab.Coll, BuildConfig{Strategy: StrategySRTree, ChunkSize: 300})
	if err != nil {
		b.Fatal(err)
	}
	q := lab.Coll.Vec(17)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := idx.Search(q, SearchOptions{K: 30}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSingleQuerySteadyState measures the zero-allocation serving
// path: one exact search per iteration through SearchInto with a recycled
// Result. After warm-up this must report 0 allocs/op.
func BenchmarkSingleQuerySteadyState(b *testing.B) {
	lab := getBenchLab(b)
	idx, err := Build(lab.Coll, BuildConfig{Strategy: StrategySRTree, ChunkSize: 300})
	if err != nil {
		b.Fatal(err)
	}
	q := lab.Coll.Vec(17)
	var res Result
	if err := idx.SearchInto(q, SearchOptions{K: 30}, &res); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := idx.SearchInto(q, SearchOptions{K: 30}, &res); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSingleQueryBudget5 measures one 5-chunk approximate search.
func BenchmarkSingleQueryBudget5(b *testing.B) {
	lab := getBenchLab(b)
	idx, err := Build(lab.Coll, BuildConfig{Strategy: StrategySRTree, ChunkSize: 300})
	if err != nil {
		b.Fatal(err)
	}
	q := lab.Coll.Vec(17)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := idx.Search(q, SearchOptions{K: 30, MaxChunks: 5}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSearchBatchInto measures the chunk-major batch engine on a
// 200-query workload with the caller-owned result arena — the
// zero-allocation steady-state batch path. After warm-up this must
// report 0 allocs/op.
func BenchmarkSearchBatchInto(b *testing.B) {
	lab := getBenchLab(b)
	idx, err := Build(lab.Coll, BuildConfig{Strategy: StrategySRTree, ChunkSize: 300})
	if err != nil {
		b.Fatal(err)
	}
	queries, err := DatasetQueries(lab.Coll, 200, 43)
	if err != nil {
		b.Fatal(err)
	}
	opts := BatchOptions{SearchOptions: SearchOptions{K: 30, MaxChunks: 5}}
	results := make([]Result, len(queries))
	if err := idx.SearchBatchInto(queries, opts, results); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := idx.SearchBatchInto(queries, opts, results); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMultiSearch measures a whole-image multi-descriptor query (a
// 50-descriptor bag, the §7 follow-up) over the batch engine.
func BenchmarkMultiSearch(b *testing.B) {
	lab := getBenchLab(b)
	idx, err := Build(lab.Coll, BuildConfig{Strategy: StrategySRTree, ChunkSize: 300})
	if err != nil {
		b.Fatal(err)
	}
	bag := make([]Vector, 50)
	for i := range bag {
		bag[i] = lab.Coll.Vec(i * 31)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := idx.MultiSearch(bag, MultiSearchOptions{K: 10, MaxChunks: 3}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkShardedBatchInto measures the scatter-gather batch path on a
// 4-shard index: the 200-query workload runs on every shard's chunk-major
// engine concurrently, per-shard budget 5, merged per query.
func BenchmarkShardedBatchInto(b *testing.B) {
	lab := getBenchLab(b)
	sx, err := BuildSharded(lab.Coll, BuildConfig{Strategy: StrategySRTree, ChunkSize: 300}, 4)
	if err != nil {
		b.Fatal(err)
	}
	defer sx.Close()
	queries, err := DatasetQueries(lab.Coll, 200, 43)
	if err != nil {
		b.Fatal(err)
	}
	opts := BatchOptions{SearchOptions: SearchOptions{K: 30, MaxChunks: 5}}
	results := make([]Result, len(queries))
	if err := sx.SearchBatchInto(queries, opts, results); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := sx.SearchBatchInto(queries, opts, results); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkShardedSingleQuery measures one run-to-completion query
// scattered across 4 shards and merged.
func BenchmarkShardedSingleQuery(b *testing.B) {
	lab := getBenchLab(b)
	sx, err := BuildSharded(lab.Coll, BuildConfig{Strategy: StrategySRTree, ChunkSize: 300}, 4)
	if err != nil {
		b.Fatal(err)
	}
	defer sx.Close()
	q := lab.Coll.Vec(17)
	var res Result
	if err := sx.SearchInto(q, SearchOptions{K: 30}, &res); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := sx.SearchInto(q, SearchOptions{K: 30}, &res); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkShardedGlobalBatchInto measures the global-budget batch path
// on a 4-shard index: the 200-query workload runs on the merged global
// chunk order with a total budget of 20 chunks per query — the same
// chunk bill as BenchmarkShardedBatchInto's per-shard budget 5, spent on
// the globally best-ranked chunks instead.
func BenchmarkShardedGlobalBatchInto(b *testing.B) {
	lab := getBenchLab(b)
	sx, err := BuildSharded(lab.Coll, BuildConfig{Strategy: StrategySRTree, ChunkSize: 300}, 4)
	if err != nil {
		b.Fatal(err)
	}
	defer sx.Close()
	queries, err := DatasetQueries(lab.Coll, 200, 43)
	if err != nil {
		b.Fatal(err)
	}
	opts := BatchOptions{SearchOptions: SearchOptions{K: 30, MaxChunks: 20, GlobalBudget: true}}
	results := make([]Result, len(queries))
	if err := sx.SearchBatchInto(queries, opts, results); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := sx.SearchBatchInto(queries, opts, results); err != nil {
			b.Fatal(err)
		}
	}
}
