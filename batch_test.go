package repro

import (
	"path/filepath"
	"sync"
	"testing"
	"time"
)

// TestFileStoreConcurrentBatch locks in the concurrency contract of
// chunkfile.Store: the chunk-major batch engine issues ReadChunk calls
// from many worker goroutines against one FileStore, and several batches
// may run against the same index at once. Run under -race in CI, this
// pins FileStore's positioned reads (and the engine's disjoint-state
// rounds) as data-race free — and every concurrent batch must still
// return byte-identical results.
func TestFileStoreConcurrentBatch(t *testing.T) {
	dir := t.TempDir()
	coll := GenerateCollection(5000, 11)
	built, err := Build(coll, BuildConfig{Strategy: StrategySRTree, ChunkSize: 150})
	if err != nil {
		t.Fatal(err)
	}
	cp, ip := filepath.Join(dir, "c.chunk"), filepath.Join(dir, "c.idx")
	if err := built.Save(cp, ip); err != nil {
		t.Fatal(err)
	}
	opened, err := Open(cp, ip)
	if err != nil {
		t.Fatal(err)
	}
	defer opened.Close()

	queries, err := DatasetQueries(coll, 48, 2)
	if err != nil {
		t.Fatal(err)
	}
	opts := BatchOptions{SearchOptions: SearchOptions{K: 10, MaxChunks: 4}, Parallelism: 4}
	want, err := opened.SearchBatch(queries, opts)
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for rep := 0; rep < 3; rep++ {
				got, err := opened.SearchBatch(queries, opts)
				if err != nil {
					t.Errorf("concurrent batch: %v", err)
					return
				}
				for qi := range want {
					if len(got[qi].Neighbors) != len(want[qi].Neighbors) ||
						got[qi].ChunksRead != want[qi].ChunksRead ||
						got[qi].Simulated != want[qi].Simulated {
						t.Errorf("q%d: concurrent batch diverged", qi)
						return
					}
					for i := range want[qi].Neighbors {
						if got[qi].Neighbors[i] != want[qi].Neighbors[i] {
							t.Errorf("q%d rank %d: concurrent batch diverged", qi, i)
							return
						}
					}
				}
			}
		}()
	}
	wg.Wait()
}

// TestSearchBatchIntoMatchesSearch verifies the caller-owned result arena
// form at the facade level: byte-identical neighbors, chunk counts,
// simulated times and Exact flags versus per-query Search, for all three
// stop rules.
func TestSearchBatchIntoMatchesSearch(t *testing.T) {
	coll := GenerateCollection(6000, 21)
	idx, err := Build(coll, BuildConfig{Strategy: StrategySRTree, ChunkSize: 200})
	if err != nil {
		t.Fatal(err)
	}
	queries, err := DatasetQueries(coll, 20, 4)
	if err != nil {
		t.Fatal(err)
	}
	for _, opts := range []SearchOptions{
		{K: 12, MaxChunks: 3},
		{K: 12, MaxTime: 300 * time.Millisecond},
		{K: 12}, // run to completion
	} {
		results := make([]Result, len(queries))
		if err := idx.SearchBatchInto(queries, BatchOptions{SearchOptions: opts}, results); err != nil {
			t.Fatal(err)
		}
		for qi, q := range queries {
			want, err := idx.Search(q, opts)
			if err != nil {
				t.Fatal(err)
			}
			got := &results[qi]
			if got.ChunksRead != want.ChunksRead || got.Simulated != want.Simulated || got.Exact != want.Exact {
				t.Fatalf("opts %+v q%d: (chunks %d, sim %v, exact %v) != (%d, %v, %v)",
					opts, qi, got.ChunksRead, got.Simulated, got.Exact,
					want.ChunksRead, want.Simulated, want.Exact)
			}
			if len(got.Neighbors) != len(want.Neighbors) {
				t.Fatalf("opts %+v q%d: %d neighbors != %d", opts, qi, len(got.Neighbors), len(want.Neighbors))
			}
			for i := range want.Neighbors {
				if got.Neighbors[i] != want.Neighbors[i] {
					t.Fatalf("opts %+v q%d rank %d: %+v != %+v", opts, qi, i, got.Neighbors[i], want.Neighbors[i])
				}
			}
		}
	}
}

// TestSearchBatchIntoZeroAlloc pins the whole-batch zero-allocation
// contract at the facade: recycling one results array across batches
// performs no allocations per batch in steady state.
func TestSearchBatchIntoZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("race detector instrumentation allocates")
	}
	coll := GenerateCollection(6000, 22)
	idx, err := Build(coll, BuildConfig{Strategy: StrategySRTree, ChunkSize: 200})
	if err != nil {
		t.Fatal(err)
	}
	queries, err := DatasetQueries(coll, 32, 5)
	if err != nil {
		t.Fatal(err)
	}
	opts := BatchOptions{SearchOptions: SearchOptions{K: 15, MaxChunks: 5}}
	results := make([]Result, len(queries))
	for i := 0; i < 3; i++ { // warm up arenas and neighbor slices
		if err := idx.SearchBatchInto(queries, opts, results); err != nil {
			t.Fatal(err)
		}
	}
	allocs := testing.AllocsPerRun(20, func() {
		if err := idx.SearchBatchInto(queries, opts, results); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("steady-state SearchBatchInto allocates %v per batch, want 0", allocs)
	}
	if len(results[0].Neighbors) != 15 {
		t.Fatalf("neighbors = %d", len(results[0].Neighbors))
	}
}
