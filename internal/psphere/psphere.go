// Package psphere implements P-Sphere trees (Goldstein & Ramakrishnan,
// VLDB 2000), the related-work system the paper describes as
// "investigating trading off (disk) space for time" (§6): descriptors
// belonging to overlapping hyperspheres are *replicated*; a query simply
// identifies the nearest sphere center and scans only that sphere, and
// the spheres are built large enough that the true nearest neighbor is
// inside with a target probability.
//
// Construction follows the paper's sampling recipe: sphere centers are
// sampled from the data; a training sample of dataset queries measures,
// for each query, the rank (by distance from the query's nearest center)
// of the query's true nearest neighbor; the sphere size L is the target
// quantile of those ranks. Each sphere then stores the L descriptors
// nearest to its center — with replication across spheres, which is
// exactly the space-for-time trade.
//
// As the paper notes, the guarantee covers only the first nearest
// neighbor; k-NN results beyond it are best-effort.
package psphere

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"repro/internal/descriptor"
	"repro/internal/knn"
	"repro/internal/scan"
	"repro/internal/vec"
)

// Config controls construction.
type Config struct {
	// Centers is the number of spheres (0 = n/1000, min 4).
	Centers int
	// TargetProb is the probability that a dataset query's true NN lies
	// in its nearest sphere (0 = 0.9).
	TargetProb float64
	// TrainQueries is the size of the calibration sample (0 = 200).
	TrainQueries int
	// MaxL caps the sphere size (0 = n).
	MaxL int
	Seed int64
}

// Index is a built P-Sphere tree.
type Index struct {
	coll    *descriptor.Collection
	centers []vec.Vector
	// lists[c] holds the positions of the L descriptors nearest to
	// center c, ascending by distance from the center.
	lists [][]int32
	l     int
}

// Build constructs the index. It costs O(centers × n log n) and replicates
// descriptors, as the original does.
func Build(coll *descriptor.Collection, cfg Config) (*Index, error) {
	n := coll.Len()
	if n == 0 {
		return nil, fmt.Errorf("psphere: empty collection")
	}
	m := cfg.Centers
	if m == 0 {
		m = n / 1000
	}
	if m < 4 {
		m = 4
	}
	if m > n {
		m = n
	}
	p := cfg.TargetProb
	if p == 0 {
		p = 0.9
	}
	if p <= 0 || p >= 1 {
		return nil, fmt.Errorf("psphere: TargetProb %v out of (0,1)", p)
	}
	train := cfg.TrainQueries
	if train == 0 {
		train = 200
	}

	r := rand.New(rand.NewSource(cfg.Seed))
	ix := &Index{coll: coll}
	perm := r.Perm(n)
	for c := 0; c < m; c++ {
		ix.centers = append(ix.centers, coll.Vec(perm[c]).Clone())
	}

	// Order all descriptors by distance from every center, batching the
	// squared distances over the collection's contiguous backing array.
	// Distance ties order by position so sphere contents are deterministic.
	orders := make([][]int32, m)
	dists := make([]float64, n)
	for c := 0; c < m; c++ {
		ord := make([]int32, n)
		for i := 0; i < n; i++ {
			ord[i] = int32(i)
		}
		vec.SquaredDistancesTo(ix.centers[c], coll.Backing(), coll.Dims(), dists)
		sort.Slice(ord, func(a, b int) bool {
			if dists[ord[a]] != dists[ord[b]] {
				return dists[ord[a]] < dists[ord[b]]
			}
			return ord[a] < ord[b]
		})
		orders[c] = ord
	}

	// Calibrate L: for each training query, the rank of its true NN in
	// its nearest sphere's order.
	ranks := make([]int, 0, train)
	for t := 0; t < train; t++ {
		qi := r.Intn(n)
		q := coll.Vec(qi)
		c := ix.nearestCenter(q)
		// True NN excluding the query point itself (a dataset query's NN
		// at distance zero is trivially itself).
		nn := scan.KNN(coll, q, 2)
		target := nn[0].ID
		if target == coll.IDAt(qi) && len(nn) > 1 {
			target = nn[1].ID
		}
		for rank, pos := range orders[c] {
			if coll.IDAt(int(pos)) == target {
				ranks = append(ranks, rank+1)
				break
			}
		}
	}
	sort.Ints(ranks)
	l := n
	if len(ranks) > 0 {
		l = ranks[int(p*float64(len(ranks)-1))]
	}
	if cfg.MaxL > 0 && l > cfg.MaxL {
		l = cfg.MaxL
	}
	if l < 1 {
		l = 1
	}
	if l > n {
		l = n
	}
	ix.l = l
	for c := 0; c < m; c++ {
		ix.lists = append(ix.lists, orders[c][:l:l])
	}
	return ix, nil
}

// Centers returns the number of spheres.
func (ix *Index) Centers() int { return len(ix.centers) }

// SphereSize returns L, the calibrated descriptors per sphere.
func (ix *Index) SphereSize() int { return ix.l }

// ReplicationFactor returns stored descriptors / collection size — the
// disk-space cost of the scheme.
func (ix *Index) ReplicationFactor() float64 {
	return float64(len(ix.centers)*ix.l) / float64(ix.coll.Len())
}

func (ix *Index) nearestCenter(q vec.Vector) int {
	best, bestD := 0, math.Inf(1)
	for c, ctr := range ix.centers {
		if d := vec.PartialSquaredDistance(q, ctr, bestD); d < bestD {
			best, bestD = c, d
		}
	}
	return best
}

// Stats reports the work of one query.
type Stats struct {
	Sphere  int // index of the scanned sphere
	Scanned int // descriptors scanned
}

// Query finds the nearest sphere center and scans only that sphere.
func (ix *Index) Query(q vec.Vector, k int) ([]knn.Neighbor, Stats) {
	var st Stats
	if k <= 0 {
		return nil, st
	}
	c := ix.nearestCenter(q)
	st.Sphere = c
	heap := knn.NewHeap(k)
	for _, pos := range ix.lists[c] {
		d2 := vec.PartialSquaredDistance(q, ix.coll.Vec(int(pos)), heap.Kth2())
		heap.OfferSquared(ix.coll.IDAt(int(pos)), d2)
		st.Scanned++
	}
	return heap.Sorted(), st
}
