package psphere

import (
	"math/rand"
	"testing"

	"repro/internal/descriptor"
	"repro/internal/imagegen"
	"repro/internal/scan"
)

func TestBuildValidation(t *testing.T) {
	if _, err := Build(descriptor.NewCollection(4, 0), Config{}); err == nil {
		t.Fatal("empty collection accepted")
	}
	ds := imagegen.MustGenerate(imagegen.DefaultConfig(500, 1))
	if _, err := Build(ds.Collection, Config{TargetProb: 1.5}); err == nil {
		t.Fatal("TargetProb 1.5 accepted")
	}
}

func TestShape(t *testing.T) {
	ds := imagegen.MustGenerate(imagegen.DefaultConfig(3000, 2))
	ix, err := Build(ds.Collection, Config{Centers: 10, TargetProb: 0.9, TrainQueries: 60, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if ix.Centers() != 10 {
		t.Fatalf("Centers = %d", ix.Centers())
	}
	if ix.SphereSize() < 1 || ix.SphereSize() > ds.Collection.Len() {
		t.Fatalf("SphereSize = %d", ix.SphereSize())
	}
	if rf := ix.ReplicationFactor(); rf <= 0 {
		t.Fatalf("ReplicationFactor = %v", rf)
	}
}

// The construction promise: a dataset query's true nearest neighbor is in
// the scanned sphere with roughly the target probability.
func TestNNProbability(t *testing.T) {
	ds := imagegen.MustGenerate(imagegen.DefaultConfig(4000, 4))
	coll := ds.Collection
	ix, err := Build(coll, Config{Centers: 12, TargetProb: 0.9, TrainQueries: 150, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(6))
	hits, trials := 0, 60
	for i := 0; i < trials; i++ {
		qi := r.Intn(coll.Len())
		q := coll.Vec(qi)
		nn := scan.KNN(coll, q, 2)
		target := nn[0].ID
		if target == coll.IDAt(qi) && len(nn) > 1 {
			target = nn[1].ID
		}
		got, _ := ix.Query(q, ix.SphereSize())
		for _, g := range got {
			if g.ID == target {
				hits++
				break
			}
		}
	}
	frac := float64(hits) / float64(trials)
	// Allow calibration noise; 0.9 target should not collapse below 0.7.
	if frac < 0.7 {
		t.Fatalf("true NN found in sphere for only %.0f%% of queries, want ≥70%%", frac*100)
	}
}

// Scanning one sphere must be much cheaper than a full scan.
func TestQueryScansOneSphere(t *testing.T) {
	ds := imagegen.MustGenerate(imagegen.DefaultConfig(4000, 7))
	ix, err := Build(ds.Collection, Config{Centers: 12, TargetProb: 0.8, TrainQueries: 100, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	_, st := ix.Query(ds.Collection.Vec(9), 10)
	if st.Scanned != ix.SphereSize() {
		t.Fatalf("scanned %d, want sphere size %d", st.Scanned, ix.SphereSize())
	}
}

func TestQueryEdges(t *testing.T) {
	ds := imagegen.MustGenerate(imagegen.DefaultConfig(800, 9))
	ix, err := Build(ds.Collection, Config{Centers: 6, TrainQueries: 30, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if got, _ := ix.Query(ds.Collection.Vec(0), 0); got != nil {
		t.Fatal("k=0 should return nil")
	}
	got, _ := ix.Query(ds.Collection.Vec(0), 5)
	if len(got) != 5 {
		t.Fatalf("got %d results", len(got))
	}
	for i := 1; i < len(got); i++ {
		if got[i].Dist < got[i-1].Dist {
			t.Fatal("results not ordered")
		}
	}
}

func TestMaxLCap(t *testing.T) {
	ds := imagegen.MustGenerate(imagegen.DefaultConfig(1500, 10))
	ix, err := Build(ds.Collection, Config{Centers: 6, TrainQueries: 40, MaxL: 50, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if ix.SphereSize() > 50 {
		t.Fatalf("SphereSize %d exceeds MaxL", ix.SphereSize())
	}
}
