package scan

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/descriptor"
	"repro/internal/vec"
)

func randColl(r *rand.Rand, n, dims int) *descriptor.Collection {
	c := descriptor.NewCollection(dims, n)
	v := make(vec.Vector, dims)
	for i := 0; i < n; i++ {
		for d := range v {
			v[d] = float32(r.NormFloat64() * 10)
		}
		c.Append(descriptor.ID(i), v)
	}
	return c
}

func TestKNNAgainstSort(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		coll := randColl(r, 200, 8)
		q := make(vec.Vector, 8)
		for d := range q {
			q[d] = float32(r.NormFloat64() * 10)
		}
		got := KNN(coll, q, 25)
		// Oracle: full sort.
		all := make([]float64, coll.Len())
		for i := 0; i < coll.Len(); i++ {
			all[i] = vec.Distance(q, coll.Vec(i))
		}
		sort.Float64s(all)
		if len(got) != 25 {
			return false
		}
		for i := range got {
			if math.Abs(got[i].Dist-all[i]) > 1e-9 {
				return false
			}
			if i > 0 && got[i].Dist < got[i-1].Dist {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestKNNEdgeCases(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	coll := randColl(r, 10, 4)
	q := coll.Vec(0)
	if got := KNN(coll, q, 0); got != nil {
		t.Fatal("k=0 should return nil")
	}
	if got := KNN(descriptor.NewCollection(4, 0), q, 5); got != nil {
		t.Fatal("empty collection should return nil")
	}
	got := KNN(coll, q, 50)
	if len(got) != 10 {
		t.Fatalf("k>n returned %d", len(got))
	}
	if got[0].Dist != 0 {
		t.Fatalf("self distance = %v", got[0].Dist)
	}
}

func TestGroundTruthFound(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	coll := randColl(r, 100, 6)
	queries := []vec.Vector{coll.Vec(3).Clone(), coll.Vec(50).Clone()}
	gt := Compute(coll, queries, 10)
	if len(gt.IDs) != 2 || len(gt.IDs[0]) != 10 {
		t.Fatalf("ground truth shape wrong")
	}
	// The truth itself scores 10/10.
	nn := KNN(coll, queries[0], 10)
	if got := gt.Found(0, nn); got != 10 {
		t.Fatalf("Found(truth) = %d", got)
	}
	// Disjoint ids score 0.
	fake := []struct{}{}
	_ = fake
	none := nn[:0:0]
	if got := gt.Found(0, none); got != 0 {
		t.Fatalf("Found(empty) = %d", got)
	}
}

func BenchmarkScan100k(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	coll := randColl(r, 100000, vec.Dims)
	q := coll.Vec(5)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		KNN(coll, q, 30)
	}
}
