// Package scan implements the sequential-scan exact k-NN search the paper
// uses as the ground-truth oracle for its precision measurements (§5.4:
// "To measure precision, we first ran a sequential scan of the collection,
// and stored the identifiers of the returned descriptors").
package scan

import (
	"math"
	"sort"

	"repro/internal/descriptor"
	"repro/internal/knn"
	"repro/internal/vec"
)

// KNN returns the exact k nearest descriptors of q in coll, ordered by
// increasing distance.
func KNN(coll *descriptor.Collection, q vec.Vector, k int) []knn.Neighbor {
	if k <= 0 || coll.Len() == 0 {
		return nil
	}
	// Bounded max-heap over squared distances; take sqrt only at the end.
	type ent struct {
		id descriptor.ID
		d2 float64
	}
	items := make([]ent, 0, k)
	worst := math.Inf(1)
	up := func(i int) {
		for i > 0 {
			p := (i - 1) / 2
			if items[p].d2 >= items[i].d2 {
				break
			}
			items[p], items[i] = items[i], items[p]
			i = p
		}
	}
	down := func() {
		i := 0
		for {
			l, r := 2*i+1, 2*i+2
			big := i
			if l < len(items) && items[l].d2 > items[big].d2 {
				big = l
			}
			if r < len(items) && items[r].d2 > items[big].d2 {
				big = r
			}
			if big == i {
				return
			}
			items[i], items[big] = items[big], items[i]
			i = big
		}
	}
	for i := 0; i < coll.Len(); i++ {
		d2 := vec.SquaredDistance(q, coll.Vec(i))
		if len(items) < k {
			items = append(items, ent{coll.IDAt(i), d2})
			up(len(items) - 1)
			if len(items) == k {
				worst = items[0].d2
			}
			continue
		}
		if d2 >= worst {
			continue
		}
		items[0] = ent{coll.IDAt(i), d2}
		down()
		worst = items[0].d2
	}
	out := make([]knn.Neighbor, len(items))
	for i, e := range items {
		out[i] = knn.Neighbor{ID: e.id, Dist: math.Sqrt(e.d2)}
	}
	sort.Slice(out, func(a, b int) bool { return out[a].Dist < out[b].Dist })
	return out
}

// GroundTruth precomputes the exact top-k id sets for a batch of queries.
type GroundTruth struct {
	K   int
	IDs [][]descriptor.ID // per query, ordered by increasing distance
}

// Compute builds the ground truth for all queries.
func Compute(coll *descriptor.Collection, queries []vec.Vector, k int) *GroundTruth {
	gt := &GroundTruth{K: k, IDs: make([][]descriptor.ID, len(queries))}
	for qi, q := range queries {
		nn := KNN(coll, q, k)
		ids := make([]descriptor.ID, len(nn))
		for i, n := range nn {
			ids[i] = n.ID
		}
		gt.IDs[qi] = ids
	}
	return gt
}

// Found counts how many of query qi's true top-k appear among the given
// neighbors (the paper's "neighbors found" axis).
func (g *GroundTruth) Found(qi int, neighbors []knn.Neighbor) int {
	truth := g.IDs[qi]
	set := make(map[descriptor.ID]struct{}, len(truth))
	for _, id := range truth {
		set[id] = struct{}{}
	}
	n := 0
	for _, nb := range neighbors {
		if _, ok := set[nb.ID]; ok {
			n++
		}
	}
	return n
}
