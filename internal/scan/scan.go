// Package scan implements the sequential-scan exact k-NN search the paper
// uses as the ground-truth oracle for its precision measurements (§5.4:
// "To measure precision, we first ran a sequential scan of the collection,
// and stored the identifiers of the returned descriptors").
package scan

import (
	"repro/internal/descriptor"
	"repro/internal/knn"
	"repro/internal/vec"
)

// KNN returns the exact k nearest descriptors of q in coll, ordered by
// (increasing distance, ascending id). The scan runs on the shared
// squared-distance heap with partial-distance early abandonment against
// the current k-th bound; sqrt is applied only at the reporting boundary
// inside Sorted.
func KNN(coll *descriptor.Collection, q vec.Vector, k int) []knn.Neighbor {
	if k <= 0 || coll.Len() == 0 {
		return nil
	}
	h := knn.NewHeap(k)
	for i := 0; i < coll.Len(); i++ {
		d2 := vec.PartialSquaredDistance(q, coll.Vec(i), h.Kth2())
		h.OfferSquared(coll.IDAt(i), d2)
	}
	return h.Sorted()
}

// GroundTruth precomputes the exact top-k id sets for a batch of queries.
type GroundTruth struct {
	K   int
	IDs [][]descriptor.ID // per query, ordered by increasing distance
}

// Compute builds the ground truth for all queries.
func Compute(coll *descriptor.Collection, queries []vec.Vector, k int) *GroundTruth {
	gt := &GroundTruth{K: k, IDs: make([][]descriptor.ID, len(queries))}
	for qi, q := range queries {
		nn := KNN(coll, q, k)
		ids := make([]descriptor.ID, len(nn))
		for i, n := range nn {
			ids[i] = n.ID
		}
		gt.IDs[qi] = ids
	}
	return gt
}

// Found counts how many of query qi's true top-k appear among the given
// neighbors (the paper's "neighbors found" axis).
func (g *GroundTruth) Found(qi int, neighbors []knn.Neighbor) int {
	truth := g.IDs[qi]
	set := make(map[descriptor.ID]struct{}, len(truth))
	for _, id := range truth {
		set[id] = struct{}{}
	}
	n := 0
	for _, nb := range neighbors {
		if _, ok := set[nb.ID]; ok {
			n++
		}
	}
	return n
}
