package multiquery

import (
	"math/rand"
	"testing"

	"repro/internal/chunkfile"
	"repro/internal/imagegen"
	"repro/internal/search"
	"repro/internal/srtree"
	"repro/internal/vec"
)

type fixture struct {
	ds    *imagegen.Dataset
	store *chunkfile.MemStore
}

func setup(t testing.TB) *fixture {
	t.Helper()
	ds := imagegen.MustGenerate(imagegen.DefaultConfig(8000, 13))
	tree, err := srtree.Build(ds.Collection, nil, 200, 16)
	if err != nil {
		t.Fatal(err)
	}
	return &fixture{ds: ds, store: chunkfile.NewMemStore(ds.Collection, tree.Chunks(), 4096)}
}

// imageDescriptors returns the vectors of one source image.
func (f *fixture) imageDescriptors(img uint32) []vec.Vector {
	var out []vec.Vector
	coll := f.ds.Collection
	for i := 0; i < coll.Len(); i++ {
		if coll.IDAt(i).ImageOf() == img {
			out = append(out, coll.Vec(i))
		}
	}
	return out
}

// Querying with an image's own descriptors must rank that image first.
func TestSelfImageRanksFirst(t *testing.T) {
	f := setup(t)
	s := New(f.store)
	for _, img := range []uint32{5, 33, 60} {
		qs := f.imageDescriptors(img)
		if len(qs) == 0 {
			t.Fatalf("image %d has no descriptors", img)
		}
		res, err := s.Query(qs, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Images) == 0 {
			t.Fatal("no images returned")
		}
		if res.Images[0].Image != img {
			t.Fatalf("image %d ranked %v first instead", img, res.Images[0].Image)
		}
		if res.Descriptors != len(qs) {
			t.Fatalf("descriptors = %d, want %d", res.Descriptors, len(qs))
		}
	}
}

// A perturbed copy (the copyright scenario) must still rank its source
// image first.
func TestPerturbedCopyFound(t *testing.T) {
	f := setup(t)
	s := New(f.store)
	const img = 21
	r := rand.New(rand.NewSource(2))
	var qs []vec.Vector
	for _, v := range f.imageDescriptors(img) {
		p := v.Clone()
		for d := range p {
			p[d] += float32(r.NormFloat64() * 0.5)
		}
		qs = append(qs, p)
	}
	res, err := s.Query(qs, Options{RankWeighted: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Images[0].Image != img {
		t.Fatalf("perturbed copy of %d ranked %v first", img, res.Images[0].Image)
	}
}

func TestScoresDescendAndMinVotes(t *testing.T) {
	f := setup(t)
	s := New(f.store)
	qs := f.imageDescriptors(8)
	res, err := s.Query(qs, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(res.Images); i++ {
		if res.Images[i].Score > res.Images[i-1].Score {
			t.Fatalf("scores not descending at %d", i)
		}
	}
	top := res.Images[0].Score
	filtered, err := s.Query(qs, Options{MinVotes: top})
	if err != nil {
		t.Fatal(err)
	}
	if len(filtered.Images) >= len(res.Images) {
		t.Fatalf("MinVotes did not filter: %d vs %d", len(filtered.Images), len(res.Images))
	}
}

func TestEmptyQueryRejected(t *testing.T) {
	f := setup(t)
	s := New(f.store)
	if _, err := s.Query(nil, Options{}); err == nil {
		t.Fatal("empty query accepted")
	}
}

func TestBudgetAccounting(t *testing.T) {
	f := setup(t)
	s := New(f.store)
	qs := f.imageDescriptors(12)[:4]
	res, err := s.Query(qs, Options{Stop: search.ChunkBudget(2)})
	if err != nil {
		t.Fatal(err)
	}
	if res.ChunksRead != 2*len(qs) {
		t.Fatalf("ChunksRead = %d, want %d", res.ChunksRead, 2*len(qs))
	}
	if res.Simulated <= 0 {
		t.Fatal("no simulated time accumulated")
	}
}

func BenchmarkMultiQuery(b *testing.B) {
	f := setup(b)
	s := New(f.store)
	qs := f.imageDescriptors(7)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Query(qs, Options{}); err != nil {
			b.Fatal(err)
		}
	}
}
