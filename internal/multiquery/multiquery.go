// Package multiquery implements the multi-descriptor search algorithm the
// paper's conclusion announces as the next step for the Eff² system (§7):
// a query *image* is a bag of local descriptors; each descriptor runs an
// approximate k-NN search against the chunk index, and the per-descriptor
// results vote for their source images. The images with the most
// (weighted) votes are the retrieval result.
//
// This is the standard voting scheme for local-descriptor recognition
// (Schmid & Mohr 1997), layered on the chunk-search substrate so the
// quality/time stop rules apply per descriptor. The bag of descriptors is
// a natural batch against one store, so the per-descriptor searches run
// through the chunk-major batch engine: every chunk wanted by several
// descriptors this round is decoded once and scanned while hot, and the
// per-descriptor results live in a pooled arena instead of one allocated
// Result per descriptor. Per-descriptor stop-rule and simulated-timing
// semantics are unchanged (the engine charges each descriptor's pipeline
// exactly the chunks it consumed, in its own rank order).
package multiquery

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/chunkfile"
	"repro/internal/search"
	"repro/internal/search/batchexec"
	"repro/internal/vec"
)

// Options controls one multi-descriptor query.
type Options struct {
	// K is the per-descriptor neighbor count (0 = 10; image voting wants
	// fewer, closer matches than the paper's 30).
	K int
	// Stop is the per-descriptor stop rule (nil = 3-chunk budget, a
	// deliberately aggressive approximation).
	Stop search.StopRule
	// RankWeighted scores a vote as 1/(1+rank) instead of 1, favoring
	// descriptors whose match was the closest.
	RankWeighted bool
	// MinVotes drops images below this score from the result (0 keeps
	// everything).
	MinVotes float64
	// Overlap selects the overlapped pipeline in the simulated timing.
	Overlap bool
	// Ctx, when non-nil, cancels the bag's batch between chunk charges —
	// the same deadline-propagation contract as batchexec.Options.Ctx.
	Ctx context.Context
}

// ImageScore is one ranked image in the result.
type ImageScore struct {
	Image uint32
	Score float64
	// Matches is the number of query descriptors that voted for the image.
	Matches int
}

// Result is the outcome of a multi-descriptor query.
type Result struct {
	Images []ImageScore // descending score
	// Descriptors is the number of query descriptors searched.
	Descriptors int
	// Simulated is the total simulated time across descriptor searches
	// (the searches are independent; a deployment would parallelize).
	Simulated time.Duration
	// ChunksRead is the total chunks processed across searches.
	ChunksRead int
	// ChunksSkipped is the total chunks skipped as unavailable across
	// searches (no live replica in a sharded deployment).
	ChunksSkipped int
	// Degraded reports that at least one descriptor's search skipped an
	// unavailable chunk: image scores cover the reachable data only.
	Degraded bool
}

// Searcher runs multi-descriptor queries against one chunk store. It is
// safe for concurrent use.
type Searcher struct {
	eng  *batchexec.Engine
	pool sync.Pool // *[]search.Result: per-descriptor result arena
}

// New wraps a chunk store in a fresh batch engine.
func New(store chunkfile.Store) *Searcher {
	return NewWithEngine(batchexec.New(store, nil))
}

// NewWithEngine builds a Searcher over an existing batch engine, sharing
// its arenas with other batch users of the same store.
func NewWithEngine(eng *batchexec.Engine) *Searcher {
	s := &Searcher{eng: eng}
	s.pool.New = func() any {
		r := []search.Result(nil)
		return &r
	}
	return s
}

// Query searches every descriptor of the query image as one batch and
// aggregates votes by source image.
func (s *Searcher) Query(descriptors []vec.Vector, opts Options) (*Result, error) {
	if len(descriptors) == 0 {
		return nil, fmt.Errorf("multiquery: no query descriptors")
	}
	if opts.K <= 0 {
		opts.K = 10
	}
	if opts.Stop == nil {
		opts.Stop = search.ChunkBudget(3)
	}

	rp := s.pool.Get().(*[]search.Result)
	defer s.pool.Put(rp)
	if cap(*rp) < len(descriptors) {
		*rp = make([]search.Result, len(descriptors))
	}
	results := (*rp)[:len(descriptors)]
	err := s.eng.Run(descriptors, batchexec.Options{
		K:       opts.K,
		Stop:    opts.Stop,
		Overlap: opts.Overlap,
		Ctx:     opts.Ctx,
	}, results)
	if err != nil {
		var qe *batchexec.QueryError
		if errors.As(err, &qe) {
			return nil, fmt.Errorf("multiquery: descriptor %d: %w", qe.Query, qe.Err)
		}
		return nil, fmt.Errorf("multiquery: %w", err)
	}
	return Aggregate(results, opts), nil
}

// Aggregate folds per-descriptor search outcomes into the image-vote
// result: one (possibly rank-weighted) vote per (descriptor, image) pair,
// images ranked by descending score. It is the single voting
// implementation shared by the single-store Searcher and the sharded
// router, so a sharded multi-descriptor query scores images exactly as an
// unsharded one does. Only RankWeighted and MinVotes are consulted from
// opts (K and Stop already shaped the results).
func Aggregate(results []search.Result, opts Options) *Result {
	type tally struct {
		score   float64
		matches int
	}
	votes := map[uint32]*tally{}
	res := &Result{Descriptors: len(results)}
	seen := map[uint32]bool{}
	for qi := range results {
		sr := &results[qi]
		res.Simulated += sr.Elapsed
		res.ChunksRead += sr.ChunksRead
		res.ChunksSkipped += sr.ChunksSkipped
		res.Degraded = res.Degraded || sr.Degraded
		// One vote per (descriptor, image): a descriptor matching many
		// descriptors of one image counts once, preventing a single
		// repetitive texture from dominating.
		clear(seen)
		for rank, nb := range sr.Neighbors {
			img := nb.ID.ImageOf()
			if seen[img] {
				continue
			}
			seen[img] = true
			t := votes[img]
			if t == nil {
				t = &tally{}
				votes[img] = t
			}
			if opts.RankWeighted {
				t.score += 1 / float64(1+rank)
			} else {
				t.score++
			}
			t.matches++
		}
	}

	for img, t := range votes {
		if t.score < opts.MinVotes {
			continue
		}
		res.Images = append(res.Images, ImageScore{Image: img, Score: t.score, Matches: t.matches})
	}
	sort.Slice(res.Images, func(a, b int) bool {
		if res.Images[a].Score != res.Images[b].Score {
			return res.Images[a].Score > res.Images[b].Score
		}
		return res.Images[a].Image < res.Images[b].Image
	})
	return res
}
