// Package chunkfile implements the paper's chunk index architecture
// (§4.2): two files, a chunk file and an index file.
//
// The chunk file holds all retained descriptors grouped by chunk; all
// descriptors of a chunk are stored together and chunks are stored
// sequentially, each padded to occupy full disk pages. The index file
// stores, per chunk and in chunk-file order, the chunk's centroid, its
// bounding radius, and its location in the chunk file.
package chunkfile

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"os"
	"time"

	"repro/internal/cluster"
	"repro/internal/descriptor"
	"repro/internal/vec"
)

// DefaultPageSize is the disk page granularity chunks are padded to.
const DefaultPageSize = 8192

const (
	chunkMagic = "EFF2CHNK"
	indexMagic = "EFF2CIDX"
)

// Meta describes one chunk as recorded in the index file.
type Meta struct {
	Centroid vec.Vector
	Radius   float64
	Offset   int64 // byte offset of the chunk in the chunk file
	Bytes    int   // padded on-disk length in bytes
	Count    int   // number of descriptors
}

// EntrySize returns the on-disk size of one index entry for the given
// dimensionality: centroid + radius + offset + bytes + count.
func EntrySize(dims int) int { return dims*4 + 8 + 8 + 4 + 4 }

// RecordSize returns the on-disk size of one descriptor record: a 4-byte
// ID followed by dims float32 components.
func RecordSize(dims int) int { return 4 + dims*4 }

// PaddedBytes returns the padded on-disk size of a chunk of count
// descriptors: the raw records rounded up to full pages. This is the
// balancing weight the shard partitioner uses, and exactly the Bytes
// value Write and NewMemStore record per chunk.
func PaddedBytes(count, dims, pageSize int) int {
	if pageSize <= 0 {
		pageSize = DefaultPageSize
	}
	return pageCeil(count*RecordSize(dims), pageSize)
}

// Data is the decoded payload of one chunk. Callers must treat IDs and
// Vecs as read-only: depending on the Store they may alias store-owned
// memory (MemStore), buffers reused by the next ReadChunk (FileStore),
// or a refcounted cache entry (chunkcache) pinned until the next read
// into the same Data.
type Data struct {
	IDs  []descriptor.ID
	Vecs []float32 // flattened, Count × dims
	// Stall is the simulated penalty incurred serving this ReadChunk —
	// failed attempts and retry backoff in a fault-tolerant store. Stores
	// that retry or fail over set it on every call (zero for a clean
	// read); the plain stores never touch it. Consumers charge it to the
	// owning machine's simdisk.Pipeline and zero it before the next read,
	// so a query is billed for exactly the retries its reads needed.
	Stall time.Duration
	// Served identifies the simulated machine that actually served this
	// ReadChunk, for stores that route one logical chunk across several
	// machines (the shard router's spread-reads policy — see
	// MachineRouter). Routing stores set it on every call (to the serving
	// machine on success, the owning machine otherwise); the plain
	// single-machine stores never touch it, and consumers consult it only
	// when the store advertises more than one machine.
	Served int32
	dims   int
	buf    []byte // FileStore read scratch, reused across ReadChunk calls
	pin    Pin    // releases the rows' alias when the Data moves on
	// ownIDs and ownVecs are the Data-owned decode scratch. decode always
	// writes into them and points IDs/Vecs at them; Alias points IDs/Vecs
	// at store- or cache-owned memory while the scratch is retained — so
	// a decode following any number of aliased reads still reuses the
	// scratch and the steady-state read path stays allocation-free.
	ownIDs  []descriptor.ID
	ownVecs []float32
}

// Pin is the handle a store installs alongside aliased rows (Data.Alias):
// as long as the pin is held, the store must keep the rows intact —
// eviction or reuse of the backing buffers must wait for Unpin. The next
// ReadChunk into the same Data (or an explicit Release) unpins, so a pin
// lives exactly as long as the alias the ownership rule grants.
type Pin interface {
	// Unpin releases the hold. It must be safe to call from any goroutine
	// and is called at most once per pin handed out.
	Unpin()
}

// Len returns the number of descriptors in the chunk.
func (d *Data) Len() int { return len(d.IDs) }

// Vec returns the i-th vector, aliasing the chunk buffer.
func (d *Data) Vec(i int) vec.Vector { return vec.Vector(d.Vecs[i*d.dims : (i+1)*d.dims]) }

// Alias installs store-owned rows into d without copying, releasing any
// alias d held before. pin, when non-nil, is unpinned on the next
// ReadChunk into d (or Release) — the discipline that lets a cache evict
// entries by byte budget while never recycling rows a scan still holds.
// Stores hand out aliases with this method; plain callers never need it.
func (d *Data) Alias(ids []descriptor.ID, vecs []float32, dims int, pin Pin) {
	d.Release()
	d.IDs = ids
	d.Vecs = vecs
	d.dims = dims
	d.pin = pin
}

// Release unpins any aliased rows d still holds. ReadChunk releases the
// previous alias automatically, so only callers that park a Data for a
// long time (pools hold pins until the scratch is next used, which is
// bounded and harmless) ever need to call it; a missed Release can delay
// buffer recycling but never corrupts rows.
func (d *Data) Release() {
	if d.pin != nil {
		d.pin.Unpin()
		d.pin = nil
	}
}

// Store is the read interface the search algorithm consumes. FileStore
// serves from the two on-disk files; MemStore serves from memory (used by
// tests and pure-simulation experiments — the timing figures come from the
// simdisk model either way).
//
// Implementations must support concurrent ReadChunk calls as long as each
// caller passes its own Data: the chunk-major batch engine issues reads
// from many worker goroutines against one Store, and one decoded Data may
// then serve many query scans within a scan group. FileStore satisfies
// this with positioned reads (ReadAt) into caller-owned buffers; MemStore
// hands out read-only aliases of store memory.
//
// Ownership of decoded rows (the zero-copy rule): the IDs and Vecs a
// ReadChunk hands out are valid only until the next ReadChunk into the
// same Data value, or until Data.Release — whichever comes first. Within
// that window callers must treat the rows as strictly read-only; they
// may alias store memory (MemStore), Data-owned scratch the next read
// overwrites (FileStore), or a pinned cache entry (chunkcache) whose
// buffers are recycled once unpinned. A caller that needs rows beyond
// the window must copy them. No search layer retains rows across reads:
// scans fold rows into their k-NN heaps before the next ReadChunk.
type Store interface {
	// Dims returns the descriptor dimensionality.
	Dims() int
	// Meta returns the chunk index in chunk-file order. Callers must not
	// modify it.
	Meta() []Meta
	// ReadChunk decodes chunk i into data, reusing its buffers. Safe for
	// concurrent use with distinct Data values.
	ReadChunk(i int, data *Data) error
	// Close releases resources.
	Close() error
}

// MachineRouter is an optional Store interface for stores that may route
// a read to any of several simulated machines — the shard router's
// spread-reads policy. Machines returns the machine count and the machine
// that owns every chunk of this store: a fixed owner when all of the
// store's chunks bill their stalls to one machine (a shard's logical
// view), or -1 when ownership varies per chunk (a concatenated
// multi-shard store, whose consumers already hold a chunk→machine
// mapping). When count > 1 the store sets Data.Served on every ReadChunk
// and consumers that track per-machine serving time charge the serving
// machine's ledger, billing Data.Stall to the owner. A count <= 1
// disables per-machine accounting entirely, keeping single-machine reads
// byte-identical to stores that never implement the interface.
type MachineRouter interface {
	Machines() (count, owner int)
}

// Write builds the two files from a clustering. Chunks appear in the
// given cluster order; each cluster's centroid and radius are trusted as
// given (builders recompute exact values beforehand).
func Write(coll *descriptor.Collection, clusters []*cluster.Cluster, chunkPath, indexPath string, pageSize int) error {
	if pageSize <= 0 {
		pageSize = DefaultPageSize
	}
	dims := coll.Dims()

	cf, err := os.Create(chunkPath)
	if err != nil {
		return fmt.Errorf("chunkfile: create chunk file: %w", err)
	}
	defer cf.Close()
	cw := bufio.NewWriterSize(cf, 1<<20)

	// Chunk file header.
	if _, err := cw.WriteString(chunkMagic); err != nil {
		return err
	}
	var head [12]byte
	binary.LittleEndian.PutUint32(head[0:4], uint32(dims))
	binary.LittleEndian.PutUint32(head[4:8], uint32(pageSize))
	binary.LittleEndian.PutUint32(head[8:12], uint32(len(clusters)))
	if _, err := cw.Write(head[:]); err != nil {
		return err
	}

	// The first chunk starts on a page boundary after the header.
	offset := int64(pageCeil(8+12, pageSize))
	if err := padTo(cw, 8+12, int(offset)); err != nil {
		return err
	}

	metas := make([]Meta, len(clusters))
	rec := make([]byte, RecordSize(dims))
	for ci, cl := range clusters {
		raw := cl.Count() * len(rec)
		padded := pageCeil(raw, pageSize)
		metas[ci] = Meta{
			Centroid: cl.Centroid.Clone(),
			Radius:   cl.Radius,
			Offset:   offset,
			Bytes:    padded,
			Count:    cl.Count(),
		}
		for _, m := range cl.Members {
			binary.LittleEndian.PutUint32(rec[0:4], uint32(coll.IDAt(m)))
			v := coll.Vec(m)
			for d, x := range v {
				binary.LittleEndian.PutUint32(rec[4+d*4:8+d*4], math.Float32bits(x))
			}
			if _, err := cw.Write(rec); err != nil {
				return err
			}
		}
		for p := raw; p < padded; p++ {
			if err := cw.WriteByte(0); err != nil {
				return err
			}
		}
		offset += int64(padded)
	}
	if err := cw.Flush(); err != nil {
		return fmt.Errorf("chunkfile: write chunk file: %w", err)
	}
	if err := cf.Sync(); err != nil {
		return fmt.Errorf("chunkfile: sync chunk file: %w", err)
	}

	return writeIndex(indexPath, dims, metas)
}

func writeIndex(path string, dims int, metas []Meta) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("chunkfile: create index file: %w", err)
	}
	defer f.Close()
	w := bufio.NewWriterSize(f, 1<<20)
	if _, err := w.WriteString(indexMagic); err != nil {
		return err
	}
	var head [8]byte
	binary.LittleEndian.PutUint32(head[0:4], uint32(dims))
	binary.LittleEndian.PutUint32(head[4:8], uint32(len(metas)))
	if _, err := w.Write(head[:]); err != nil {
		return err
	}
	buf := make([]byte, EntrySize(dims))
	for _, m := range metas {
		o := 0
		for _, x := range m.Centroid {
			binary.LittleEndian.PutUint32(buf[o:o+4], math.Float32bits(x))
			o += 4
		}
		binary.LittleEndian.PutUint64(buf[o:o+8], math.Float64bits(m.Radius))
		o += 8
		binary.LittleEndian.PutUint64(buf[o:o+8], uint64(m.Offset))
		o += 8
		binary.LittleEndian.PutUint32(buf[o:o+4], uint32(m.Bytes))
		o += 4
		binary.LittleEndian.PutUint32(buf[o:o+4], uint32(m.Count))
		if _, err := w.Write(buf); err != nil {
			return err
		}
	}
	if err := w.Flush(); err != nil {
		return fmt.Errorf("chunkfile: write index file: %w", err)
	}
	if err := f.Sync(); err != nil {
		return fmt.Errorf("chunkfile: sync index file: %w", err)
	}
	return nil
}

func pageCeil(n, page int) int {
	if n%page == 0 {
		return n
	}
	return (n/page + 1) * page
}

func padTo(w *bufio.Writer, from, to int) error {
	for i := from; i < to; i++ {
		if err := w.WriteByte(0); err != nil {
			return err
		}
	}
	return nil
}

// Errors returned by the readers.
var (
	ErrBadMagic = errors.New("chunkfile: bad magic")
	ErrChunkOOB = errors.New("chunkfile: chunk index out of range")
	// ErrClosed is returned by ReadChunk on a closed store.
	ErrClosed = errors.New("chunkfile: store is closed")
	// ErrUnavailable marks a chunk as unreachable rather than broken: a
	// ReadChunk error wrapping it (errors.Is) tells the search layers the
	// chunk cannot be served right now — every replica is down — and that
	// the query may skip it and complete in degraded mode instead of
	// aborting. The plain stores never return it; the shard router's
	// replicated read path does.
	ErrUnavailable = errors.New("chunkfile: chunk unavailable")
)

// FileStore reads a chunk index from its two files.
type FileStore struct {
	f     *os.File
	dims  int
	page  int
	metas []Meta
}

var _ Store = (*FileStore)(nil)

// Open maps the pair of files written by Write.
func Open(chunkPath, indexPath string) (*FileStore, error) {
	metas, dims, err := readIndex(indexPath)
	if err != nil {
		return nil, err
	}
	f, err := os.Open(chunkPath)
	if err != nil {
		return nil, fmt.Errorf("chunkfile: open chunk file: %w", err)
	}
	var head [20]byte
	if _, err := io.ReadFull(f, head[:]); err != nil {
		f.Close()
		return nil, fmt.Errorf("chunkfile: reading chunk header: %w", err)
	}
	if string(head[:8]) != chunkMagic {
		f.Close()
		return nil, ErrBadMagic
	}
	cd := int(binary.LittleEndian.Uint32(head[8:12]))
	page := int(binary.LittleEndian.Uint32(head[12:16]))
	nc := int(binary.LittleEndian.Uint32(head[16:20]))
	if cd != dims {
		f.Close()
		return nil, fmt.Errorf("chunkfile: chunk file dims %d != index dims %d", cd, dims)
	}
	if nc != len(metas) {
		f.Close()
		return nil, fmt.Errorf("chunkfile: chunk file has %d chunks, index has %d", nc, len(metas))
	}
	fi, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("chunkfile: stat chunk file: %w", err)
	}
	if err := validateMetas(metas, dims, page, fi.Size()); err != nil {
		f.Close()
		return nil, err
	}
	return &FileStore{f: f, dims: dims, page: page, metas: metas}, nil
}

// validateMetas cross-checks every index entry against the chunk file's
// recorded page size and actual size, so a corrupt or hostile index file
// fails at open time with a clear error instead of surfacing as ReadAt
// errors — or oversized allocations — in the middle of a query.
func validateMetas(metas []Meta, dims, page int, fileSize int64) error {
	if page <= 0 {
		return fmt.Errorf("chunkfile: invalid page size %d", page)
	}
	headerEnd := int64(pageCeil(8+12, page))
	for i := range metas {
		m := &metas[i]
		if m.Count < 0 || m.Bytes < 0 {
			return fmt.Errorf("chunkfile: chunk %d: negative count %d or size %d", i, m.Count, m.Bytes)
		}
		if raw := m.Count * RecordSize(dims); raw > m.Bytes {
			return fmt.Errorf("chunkfile: chunk %d: %d records need %d bytes, index records only %d",
				i, m.Count, raw, m.Bytes)
		}
		if m.Offset < headerEnd || m.Offset+int64(m.Bytes) > fileSize {
			return fmt.Errorf("chunkfile: chunk %d: extent [%d, %d) outside chunk file data [%d, %d)",
				i, m.Offset, m.Offset+int64(m.Bytes), headerEnd, fileSize)
		}
	}
	return nil
}

func readIndex(path string) ([]Meta, int, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, 0, fmt.Errorf("chunkfile: read index file: %w", err)
	}
	if len(raw) < 16 || string(raw[:8]) != indexMagic {
		return nil, 0, ErrBadMagic
	}
	dims := int(binary.LittleEndian.Uint32(raw[8:12]))
	n := int(binary.LittleEndian.Uint32(raw[12:16]))
	es := EntrySize(dims)
	if len(raw) != 16+n*es {
		return nil, 0, fmt.Errorf("chunkfile: index size %d != expected %d", len(raw), 16+n*es)
	}
	metas := make([]Meta, n)
	o := 16
	for i := 0; i < n; i++ {
		c := make(vec.Vector, dims)
		for d := 0; d < dims; d++ {
			c[d] = math.Float32frombits(binary.LittleEndian.Uint32(raw[o : o+4]))
			o += 4
		}
		r := math.Float64frombits(binary.LittleEndian.Uint64(raw[o : o+8]))
		o += 8
		off := int64(binary.LittleEndian.Uint64(raw[o : o+8]))
		o += 8
		b := int(binary.LittleEndian.Uint32(raw[o : o+4]))
		o += 4
		cnt := int(binary.LittleEndian.Uint32(raw[o : o+4]))
		o += 4
		metas[i] = Meta{Centroid: c, Radius: r, Offset: off, Bytes: b, Count: cnt}
	}
	return metas, dims, nil
}

// Dims implements Store.
func (s *FileStore) Dims() int { return s.dims }

// PageSize returns the page granularity recorded in the chunk file header.
func (s *FileStore) PageSize() int { return s.page }

// Meta implements Store.
func (s *FileStore) Meta() []Meta { return s.metas }

// ReadChunk implements Store. It issues exactly one positioned read of the
// chunk's padded extent, mirroring the paper's one-chunk-one-read access
// pattern. The read buffer is kept in data and reused by later calls, so
// steady-state reads do not allocate.
func (s *FileStore) ReadChunk(i int, data *Data) error {
	if i < 0 || i >= len(s.metas) {
		return ErrChunkOOB
	}
	m := s.metas[i]
	if cap(data.buf) < m.Bytes {
		data.buf = make([]byte, m.Bytes)
	}
	buf := data.buf[:m.Bytes]
	if _, err := s.f.ReadAt(buf, m.Offset); err != nil {
		if errors.Is(err, os.ErrClosed) {
			return fmt.Errorf("chunkfile: chunk %d: %w", i, ErrClosed)
		}
		return fmt.Errorf("chunkfile: chunk %d: %w", i, err)
	}
	decode(buf, m.Count, s.dims, data)
	return nil
}

// Close implements Store.
func (s *FileStore) Close() error { return s.f.Close() }

func decode(buf []byte, count, dims int, data *Data) {
	data.Release()
	data.dims = dims
	if cap(data.ownIDs) < count {
		data.ownIDs = make([]descriptor.ID, count)
	}
	data.ownIDs = data.ownIDs[:count]
	if cap(data.ownVecs) < count*dims {
		data.ownVecs = make([]float32, count*dims)
	}
	data.ownVecs = data.ownVecs[:count*dims]
	data.IDs = data.ownIDs
	data.Vecs = data.ownVecs
	descriptor.DecodeRecords(buf, count, dims, data.IDs, data.Vecs)
}

// MemStore is an in-memory Store with the same padded-size accounting as
// FileStore, so simulated timings are identical.
type MemStore struct {
	dims   int
	metas  []Meta
	ids    [][]descriptor.ID
	vecs   [][]float32
	closed bool
}

var _ Store = (*MemStore)(nil)

// NewMemStore builds an in-memory store from a clustering.
func NewMemStore(coll *descriptor.Collection, clusters []*cluster.Cluster, pageSize int) *MemStore {
	if pageSize <= 0 {
		pageSize = DefaultPageSize
	}
	dims := coll.Dims()
	s := &MemStore{dims: dims}
	offset := int64(pageSize)
	rec := RecordSize(dims)
	for _, cl := range clusters {
		raw := cl.Count() * rec
		padded := pageCeil(raw, pageSize)
		s.metas = append(s.metas, Meta{
			Centroid: cl.Centroid.Clone(),
			Radius:   cl.Radius,
			Offset:   offset,
			Bytes:    padded,
			Count:    cl.Count(),
		})
		ids := make([]descriptor.ID, 0, cl.Count())
		vs := make([]float32, 0, cl.Count()*dims)
		for _, m := range cl.Members {
			ids = append(ids, coll.IDAt(m))
			vs = append(vs, coll.Vec(m)...)
		}
		s.ids = append(s.ids, ids)
		s.vecs = append(s.vecs, vs)
		offset += int64(padded)
	}
	return s
}

// Dims implements Store.
func (s *MemStore) Dims() int { return s.dims }

// Meta implements Store.
func (s *MemStore) Meta() []Meta { return s.metas }

// ReadChunk implements Store. The returned slices alias the store's own
// memory (no copy): Data is read-only by contract, and skipping the copy
// keeps the in-memory hot path at zero bytes moved per chunk.
func (s *MemStore) ReadChunk(i int, data *Data) error {
	if s.closed {
		return fmt.Errorf("chunkfile: chunk %d: %w", i, ErrClosed)
	}
	if i < 0 || i >= len(s.metas) {
		return ErrChunkOOB
	}
	data.Alias(s.ids[i], s.vecs[i], s.dims, nil)
	return nil
}

// Close implements Store.
func (s *MemStore) Close() error {
	s.closed = true
	return nil
}
