package chunkfile

import (
	"math/rand"
	"path/filepath"
	"testing"

	"repro/internal/cluster"
	"repro/internal/descriptor"
	"repro/internal/vec"
)

// makeClusters builds a small collection and a 3-chunk clustering.
func makeClusters(t testing.TB) (*descriptor.Collection, []*cluster.Cluster) {
	t.Helper()
	r := rand.New(rand.NewSource(7))
	coll := descriptor.NewCollection(vec.Dims, 100)
	v := make(vec.Vector, vec.Dims)
	for i := 0; i < 100; i++ {
		for d := range v {
			v[d] = float32(r.NormFloat64() * 10)
		}
		coll.Append(descriptor.ID(1000+i), v)
	}
	var members [3][]int
	for i := 0; i < 100; i++ {
		members[i%3] = append(members[i%3], i)
	}
	cs := make([]*cluster.Cluster, 3)
	for i := range cs {
		cs[i] = cluster.NewFromMembers(coll, members[i])
	}
	return coll, cs
}

func TestFileRoundTrip(t *testing.T) {
	coll, cs := makeClusters(t)
	dir := t.TempDir()
	cp, ip := filepath.Join(dir, "c.chunk"), filepath.Join(dir, "c.idx")
	if err := Write(coll, cs, cp, ip, 4096); err != nil {
		t.Fatal(err)
	}
	st, err := Open(cp, ip)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()

	if st.Dims() != vec.Dims {
		t.Fatalf("dims = %d", st.Dims())
	}
	metas := st.Meta()
	if len(metas) != 3 {
		t.Fatalf("chunks = %d", len(metas))
	}
	var data Data
	totalSeen := 0
	for i, m := range metas {
		if m.Count != cs[i].Count() {
			t.Fatalf("chunk %d count %d != %d", i, m.Count, cs[i].Count())
		}
		if !vec.Equal(m.Centroid, cs[i].Centroid) {
			t.Fatalf("chunk %d centroid mismatch", i)
		}
		if m.Radius != cs[i].Radius {
			t.Fatalf("chunk %d radius %v != %v", i, m.Radius, cs[i].Radius)
		}
		if m.Bytes%4096 != 0 {
			t.Fatalf("chunk %d not page padded: %d bytes", i, m.Bytes)
		}
		if err := st.ReadChunk(i, &data); err != nil {
			t.Fatal(err)
		}
		if data.Len() != m.Count {
			t.Fatalf("chunk %d decoded %d, want %d", i, data.Len(), m.Count)
		}
		for k, memberIdx := range cs[i].Members {
			if data.IDs[k] != coll.IDAt(memberIdx) {
				t.Fatalf("chunk %d rec %d id mismatch", i, k)
			}
			if !vec.Equal(data.Vec(k), coll.Vec(memberIdx)) {
				t.Fatalf("chunk %d rec %d vector mismatch", i, k)
			}
		}
		totalSeen += data.Len()
	}
	if totalSeen != 100 {
		t.Fatalf("decoded %d descriptors, want 100", totalSeen)
	}
}

func TestChunksStartOnPageBoundaries(t *testing.T) {
	coll, cs := makeClusters(t)
	dir := t.TempDir()
	cp, ip := filepath.Join(dir, "c.chunk"), filepath.Join(dir, "c.idx")
	if err := Write(coll, cs, cp, ip, 512); err != nil {
		t.Fatal(err)
	}
	st, err := Open(cp, ip)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	prevEnd := int64(0)
	for i, m := range st.Meta() {
		if m.Offset%512 != 0 {
			t.Fatalf("chunk %d offset %d not page aligned", i, m.Offset)
		}
		if m.Offset < prevEnd {
			t.Fatalf("chunk %d overlaps previous", i)
		}
		prevEnd = m.Offset + int64(m.Bytes)
	}
}

func TestMemStoreMatchesFileStore(t *testing.T) {
	coll, cs := makeClusters(t)
	dir := t.TempDir()
	cp, ip := filepath.Join(dir, "c.chunk"), filepath.Join(dir, "c.idx")
	if err := Write(coll, cs, cp, ip, 4096); err != nil {
		t.Fatal(err)
	}
	fs, err := Open(cp, ip)
	if err != nil {
		t.Fatal(err)
	}
	defer fs.Close()
	ms := NewMemStore(coll, cs, 4096)

	fm, mm := fs.Meta(), ms.Meta()
	if len(fm) != len(mm) {
		t.Fatalf("meta lengths differ: %d vs %d", len(fm), len(mm))
	}
	var fd, md Data
	for i := range fm {
		if fm[i].Bytes != mm[i].Bytes || fm[i].Count != mm[i].Count {
			t.Fatalf("chunk %d accounting differs: %+v vs %+v", i, fm[i], mm[i])
		}
		if err := fs.ReadChunk(i, &fd); err != nil {
			t.Fatal(err)
		}
		if err := ms.ReadChunk(i, &md); err != nil {
			t.Fatal(err)
		}
		for k := range fd.IDs {
			if fd.IDs[k] != md.IDs[k] || !vec.Equal(fd.Vec(k), md.Vec(k)) {
				t.Fatalf("chunk %d rec %d differs between stores", i, k)
			}
		}
	}
}

func TestReadChunkOutOfRange(t *testing.T) {
	coll, cs := makeClusters(t)
	ms := NewMemStore(coll, cs, 4096)
	var d Data
	if err := ms.ReadChunk(-1, &d); err != ErrChunkOOB {
		t.Fatalf("err = %v", err)
	}
	if err := ms.ReadChunk(3, &d); err != ErrChunkOOB {
		t.Fatalf("err = %v", err)
	}
}

func TestOpenRejectsGarbage(t *testing.T) {
	dir := t.TempDir()
	cp, ip := filepath.Join(dir, "c.chunk"), filepath.Join(dir, "c.idx")
	coll, cs := makeClusters(t)
	if err := Write(coll, cs, cp, ip, 4096); err != nil {
		t.Fatal(err)
	}
	// Swap the two paths: chunk file opened as index must fail.
	if _, err := Open(ip, cp); err == nil {
		t.Fatal("swapped files accepted")
	}
}

func TestDataBufferReuse(t *testing.T) {
	coll, cs := makeClusters(t)
	ms := NewMemStore(coll, cs, 4096)
	var d Data
	if err := ms.ReadChunk(0, &d); err != nil {
		t.Fatal(err)
	}
	n0 := d.Len()
	if err := ms.ReadChunk(1, &d); err != nil {
		t.Fatal(err)
	}
	if d.Len() == 0 || d.Len()+n0 == 0 {
		t.Fatal("no data after reuse")
	}
	if len(d.Vecs) != d.Len()*vec.Dims {
		t.Fatalf("vec buffer %d for %d records", len(d.Vecs), d.Len())
	}
}

// TestCrossStoreDataReuse pins the ownership guard: after a MemStore read
// leaves Data aliasing store memory, a FileStore decode into the same
// Data must allocate fresh buffers instead of overwriting — and thereby
// corrupting — the MemStore's arrays.
func TestCrossStoreDataReuse(t *testing.T) {
	coll, cs := makeClusters(t)
	dir := t.TempDir()
	cp, ip := filepath.Join(dir, "c.chunk"), filepath.Join(dir, "c.idx")
	if err := Write(coll, cs, cp, ip, 4096); err != nil {
		t.Fatal(err)
	}
	fs, err := Open(cp, ip)
	if err != nil {
		t.Fatal(err)
	}
	defer fs.Close()
	ms := NewMemStore(coll, cs, 4096)

	var data Data
	if err := ms.ReadChunk(0, &data); err != nil {
		t.Fatal(err)
	}
	wantIDs := append([]descriptor.ID(nil), data.IDs...)
	wantVecs := append([]float32(nil), data.Vecs...)

	// Decode a *different* chunk of the file store into the same Data.
	if err := fs.ReadChunk(1, &data); err != nil {
		t.Fatal(err)
	}

	var again Data
	if err := ms.ReadChunk(0, &again); err != nil {
		t.Fatal(err)
	}
	for i := range wantIDs {
		if again.IDs[i] != wantIDs[i] {
			t.Fatalf("memstore IDs corrupted at %d: %d != %d", i, again.IDs[i], wantIDs[i])
		}
	}
	for i := range wantVecs {
		if again.Vecs[i] != wantVecs[i] {
			t.Fatalf("memstore Vecs corrupted at %d", i)
		}
	}
}

func TestEntrySize(t *testing.T) {
	if EntrySize(24) != 24*4+24 {
		t.Fatalf("EntrySize(24) = %d", EntrySize(24))
	}
}
