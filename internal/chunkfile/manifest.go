// Sharded on-disk layout: the single chunk/index file pair of §4.2 grows
// to one pair per shard plus a manifest. The manifest records the
// dimensionality, the page size every shard was padded with, and the
// per-shard file names and chunk counts, so OpenSharded can validate each
// pair against what SaveSharded wrote before any query touches it.
package chunkfile

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/cluster"
	"repro/internal/descriptor"
)

const manifestMagic = "EFF2SMFT"

// ManifestName is the manifest's file name inside a sharded index
// directory.
const ManifestName = "manifest"

// ShardFiles names one shard's file pair, relative to the manifest's
// directory.
type ShardFiles struct {
	ChunkFile string
	IndexFile string
	Chunks    int // chunk count, validated on open
}

// Manifest describes a sharded index directory.
type Manifest struct {
	Dims     int
	PageSize int
	Shards   []ShardFiles
}

// SaveSharded writes a sharded index into dir: one shard-<i>.chunk /
// shard-<i>.idx pair per shard (each a regular §4.2 two-file index over
// that shard's clusters) plus the manifest tying them together. All
// shards share one page size so the per-shard simulated timings stay
// comparable.
func SaveSharded(coll *descriptor.Collection, shards [][]*cluster.Cluster, dir string, pageSize int) error {
	if len(shards) == 0 {
		return errors.New("chunkfile: no shards to save")
	}
	if pageSize <= 0 {
		pageSize = DefaultPageSize
	}
	m := &Manifest{Dims: coll.Dims(), PageSize: pageSize}
	for i, clusters := range shards {
		sf := ShardFiles{
			ChunkFile: fmt.Sprintf("shard-%d.chunk", i),
			IndexFile: fmt.Sprintf("shard-%d.idx", i),
			Chunks:    len(clusters),
		}
		err := Write(coll, clusters, filepath.Join(dir, sf.ChunkFile), filepath.Join(dir, sf.IndexFile), pageSize)
		if err != nil {
			return fmt.Errorf("chunkfile: shard %d: %w", i, err)
		}
		m.Shards = append(m.Shards, sf)
	}
	return WriteManifest(filepath.Join(dir, ManifestName), m)
}

// OpenSharded opens every shard named by the manifest in dir, returning
// one FileStore per shard in shard order. Each pair is cross-checked
// against the manifest (dimensionality, page size, chunk count) on top of
// the pair's own open-time validation; any failure closes the stores
// already opened.
func OpenSharded(dir string) ([]*FileStore, *Manifest, error) {
	m, err := ReadManifest(filepath.Join(dir, ManifestName))
	if err != nil {
		return nil, nil, err
	}
	stores := make([]*FileStore, 0, len(m.Shards))
	closeAll := func() {
		for _, st := range stores {
			st.Close()
		}
	}
	for i, sf := range m.Shards {
		chunkPath := filepath.Join(dir, sf.ChunkFile)
		indexPath := filepath.Join(dir, sf.IndexFile)
		st, err := Open(chunkPath, indexPath)
		if err != nil {
			closeAll()
			return nil, nil, fmt.Errorf("chunkfile: shard %d (%s, %s): %w", i, chunkPath, indexPath, err)
		}
		switch {
		case st.Dims() != m.Dims:
			err = fmt.Errorf("dims %d != manifest dims %d", st.Dims(), m.Dims)
		case st.PageSize() != m.PageSize:
			err = fmt.Errorf("page size %d != manifest page size %d", st.PageSize(), m.PageSize)
		case len(st.Meta()) != sf.Chunks:
			err = fmt.Errorf("%d chunks != manifest's %d", len(st.Meta()), sf.Chunks)
		}
		if err != nil {
			st.Close()
			closeAll()
			return nil, nil, fmt.Errorf("chunkfile: shard %d (%s, %s): %w", i, chunkPath, indexPath, err)
		}
		stores = append(stores, st)
	}
	return stores, m, nil
}

// WriteManifest writes the manifest to path.
func WriteManifest(path string, m *Manifest) error {
	if len(m.Shards) == 0 {
		return errors.New("chunkfile: manifest has no shards")
	}
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("chunkfile: create manifest: %w", err)
	}
	defer f.Close()
	w := bufio.NewWriter(f)
	if _, err := w.WriteString(manifestMagic); err != nil {
		return err
	}
	writeU32 := func(v int) error {
		var b [4]byte
		binary.LittleEndian.PutUint32(b[:], uint32(v))
		_, err := w.Write(b[:])
		return err
	}
	writeStr := func(s string) error {
		if err := writeU32(len(s)); err != nil {
			return err
		}
		_, err := w.WriteString(s)
		return err
	}
	if err := errors.Join(writeU32(m.Dims), writeU32(m.PageSize), writeU32(len(m.Shards))); err != nil {
		return err
	}
	for _, sf := range m.Shards {
		if err := errors.Join(writeU32(sf.Chunks), writeStr(sf.ChunkFile), writeStr(sf.IndexFile)); err != nil {
			return err
		}
	}
	if err := w.Flush(); err != nil {
		return err
	}
	return f.Sync()
}

// ReadManifest reads a manifest written by WriteManifest.
func ReadManifest(path string) (*Manifest, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("chunkfile: read manifest: %w", err)
	}
	if len(raw) < 20 || string(raw[:8]) != manifestMagic {
		return nil, ErrBadMagic
	}
	o := 8
	readU32 := func() (int, error) {
		if o+4 > len(raw) {
			return 0, fmt.Errorf("chunkfile: manifest truncated at byte %d", o)
		}
		v := int(binary.LittleEndian.Uint32(raw[o : o+4]))
		o += 4
		return v, nil
	}
	readStr := func() (string, error) {
		n, err := readU32()
		if err != nil {
			return "", err
		}
		if n < 0 || o+n > len(raw) {
			return "", fmt.Errorf("chunkfile: manifest truncated at byte %d", o)
		}
		s := string(raw[o : o+n])
		o += n
		return s, nil
	}
	m := &Manifest{}
	if m.Dims, err = readU32(); err != nil {
		return nil, err
	}
	if m.PageSize, err = readU32(); err != nil {
		return nil, err
	}
	if m.Dims <= 0 || m.PageSize <= 0 {
		return nil, fmt.Errorf("chunkfile: manifest dims %d / page size %d invalid", m.Dims, m.PageSize)
	}
	n, err := readU32()
	if err != nil {
		return nil, err
	}
	if n <= 0 || n > len(raw) { // each shard entry takes well over one byte
		return nil, fmt.Errorf("chunkfile: manifest shard count %d invalid", n)
	}
	for i := 0; i < n; i++ {
		var sf ShardFiles
		if sf.Chunks, err = readU32(); err != nil {
			return nil, err
		}
		if sf.ChunkFile, err = readStr(); err != nil {
			return nil, err
		}
		if sf.IndexFile, err = readStr(); err != nil {
			return nil, err
		}
		if sf.Chunks < 0 {
			return nil, fmt.Errorf("chunkfile: manifest shard %d entry invalid", i)
		}
		// File names must stay inside the manifest's directory: reject
		// absolute paths, ".." traversal and empty names, so a hostile
		// manifest cannot make OpenSharded read outside its index dir.
		if !filepath.IsLocal(sf.ChunkFile) || !filepath.IsLocal(sf.IndexFile) {
			return nil, fmt.Errorf("chunkfile: manifest shard %d names a non-local path", i)
		}
		m.Shards = append(m.Shards, sf)
	}
	if o != len(raw) {
		return nil, fmt.Errorf("chunkfile: manifest has %d trailing bytes", len(raw)-o)
	}
	return m, nil
}
