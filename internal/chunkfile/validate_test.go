package chunkfile

import (
	"encoding/binary"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/cluster"
)

// writePair writes the fixture clustering to a fresh file pair.
func writePair(t *testing.T, pageSize int) (cp, ip string, cs []*cluster.Cluster) {
	t.Helper()
	coll, cs := makeClusters(t)
	dir := t.TempDir()
	cp, ip = filepath.Join(dir, "c.chunk"), filepath.Join(dir, "c.idx")
	if err := Write(coll, cs, cp, ip, pageSize); err != nil {
		t.Fatal(err)
	}
	return cp, ip, cs
}

// rewriteEntry loads the index file, mutates entry i in place (offset is
// the entry's field offset of the chunk-file offset field), and writes it
// back.
func rewriteEntry(t *testing.T, ip string, i int, mutate func(entry []byte, offField int)) {
	t.Helper()
	raw, err := os.ReadFile(ip)
	if err != nil {
		t.Fatal(err)
	}
	dims := int(binary.LittleEndian.Uint32(raw[8:12]))
	es := EntrySize(dims)
	mutate(raw[16+i*es:16+(i+1)*es], dims*4+8)
	if err := os.WriteFile(ip, raw, 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestOpenValidatesMetas pins the open-time validation: index entries
// whose offset, size or count disagree with the chunk file must fail at
// Open with a clear error, never surface mid-query.
func TestOpenValidatesMetas(t *testing.T) {
	const pageSize = 4096
	cases := []struct {
		name   string
		mutate func(entry []byte, offField int)
	}{
		{"offset beyond EOF", func(e []byte, offField int) {
			binary.LittleEndian.PutUint64(e[offField:], 1<<40)
		}},
		{"offset inside header", func(e []byte, offField int) {
			binary.LittleEndian.PutUint64(e[offField:], 8)
		}},
		{"bytes beyond EOF", func(e []byte, offField int) {
			binary.LittleEndian.PutUint32(e[offField+8:], 1<<30)
		}},
		{"count exceeds bytes", func(e []byte, offField int) {
			binary.LittleEndian.PutUint32(e[offField+12:], 1<<20)
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cp, ip, _ := writePair(t, pageSize)
			rewriteEntry(t, ip, 1, tc.mutate)
			if st, err := Open(cp, ip); err == nil {
				st.Close()
				t.Fatal("corrupt index entry accepted at open time")
			} else {
				t.Log(err)
			}
		})
	}

	// A truncated chunk file fails at open, not at first read.
	cp, ip, _ := writePair(t, pageSize)
	raw, err := os.ReadFile(cp)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(cp, raw[:len(raw)-pageSize], 0o644); err != nil {
		t.Fatal(err)
	}
	if st, err := Open(cp, ip); err == nil {
		st.Close()
		t.Fatal("truncated chunk file accepted at open time")
	}
}

// TestUseAfterCloseIsError pins the ErrClosed contract on both stores:
// ReadChunk after Close reports ErrClosed instead of silently serving
// (MemStore) or surfacing a bare file error (FileStore).
func TestUseAfterCloseIsError(t *testing.T) {
	coll, cs := makeClusters(t)

	mem := NewMemStore(coll, cs, 4096)
	var data Data
	if err := mem.ReadChunk(0, &data); err != nil {
		t.Fatal(err)
	}
	if err := mem.Close(); err != nil {
		t.Fatal(err)
	}
	if err := mem.ReadChunk(0, &data); !errors.Is(err, ErrClosed) {
		t.Fatalf("closed MemStore ReadChunk: %v, want ErrClosed", err)
	}

	cp, ip, _ := writePair(t, 4096)
	fs, err := Open(cp, ip)
	if err != nil {
		t.Fatal(err)
	}
	if err := fs.ReadChunk(0, &data); err != nil {
		t.Fatal(err)
	}
	if err := fs.Close(); err != nil {
		t.Fatal(err)
	}
	if err := fs.ReadChunk(0, &data); !errors.Is(err, ErrClosed) {
		t.Fatalf("closed FileStore ReadChunk: %v, want ErrClosed", err)
	}
}

// TestShardedRoundTrip pins the manifest format: SaveSharded then
// OpenSharded serves the same chunks per shard, and the manifest's
// cross-checks reject tampered directories.
func TestShardedRoundTrip(t *testing.T) {
	coll, cs := makeClusters(t)
	dir := t.TempDir()
	shards := [][]*cluster.Cluster{{cs[0], cs[2]}, {cs[1]}}
	const pageSize = 4096
	if err := SaveSharded(coll, shards, dir, pageSize); err != nil {
		t.Fatal(err)
	}

	stores, m, err := OpenSharded(dir)
	if err != nil {
		t.Fatal(err)
	}
	if m.Dims != coll.Dims() || m.PageSize != pageSize || len(m.Shards) != 2 {
		t.Fatalf("manifest %+v", m)
	}
	if len(stores) != 2 {
		t.Fatalf("stores = %d", len(stores))
	}
	var data Data
	for s, part := range shards {
		if got := len(stores[s].Meta()); got != len(part) {
			t.Fatalf("shard %d: %d chunks != %d", s, got, len(part))
		}
		for ci, cl := range part {
			if err := stores[s].ReadChunk(ci, &data); err != nil {
				t.Fatal(err)
			}
			if data.Len() != cl.Count() {
				t.Fatalf("shard %d chunk %d: %d descriptors != %d", s, ci, data.Len(), cl.Count())
			}
		}
		stores[s].Close()
	}

	// A manifest naming paths outside its directory is rejected (hostile
	// manifests must not read files outside the index dir).
	for _, evil := range []string{"../escape.chunk", "/abs/escape.chunk", ""} {
		bad := *m
		bad.Shards = append([]ShardFiles(nil), m.Shards...)
		bad.Shards[0].ChunkFile = evil
		if err := WriteManifest(filepath.Join(dir, ManifestName), &bad); err != nil {
			t.Fatal(err)
		}
		if opened, _, err := OpenSharded(dir); err == nil {
			for _, st := range opened {
				st.Close()
			}
			t.Fatalf("manifest with shard path %q accepted", evil)
		}
	}

	// A manifest chunk count that disagrees with the shard's index file is
	// rejected.
	m.Shards[1].Chunks = 5
	if err := WriteManifest(filepath.Join(dir, ManifestName), m); err != nil {
		t.Fatal(err)
	}
	if opened, _, err := OpenSharded(dir); err == nil {
		for _, st := range opened {
			st.Close()
		}
		t.Fatal("manifest/shard chunk-count mismatch accepted")
	}

	// A truncated manifest is rejected.
	raw, err := os.ReadFile(filepath.Join(dir, ManifestName))
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, ManifestName), raw[:len(raw)-3], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := OpenSharded(dir); err == nil {
		t.Fatal("truncated manifest accepted")
	}

	if err := SaveSharded(coll, nil, dir, pageSize); err == nil {
		t.Fatal("zero-shard save accepted")
	}
}
