package chunkfile

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/cluster"
)

// saveShardedFixture writes a 3-shard sharded index into a temp dir,
// one cluster per shard.
func saveShardedFixture(t *testing.T) string {
	t.Helper()
	coll, cs := makeClusters(t)
	dir := t.TempDir()
	shards := [][]*cluster.Cluster{{cs[0]}, {cs[1]}, {cs[2]}}
	if err := SaveSharded(coll, shards, dir, 4096); err != nil {
		t.Fatal(err)
	}
	return dir
}

// A missing shard file must fail at open, naming both the shard index
// and the offending path so the operator knows which file to restore.
func TestOpenShardedMissingShardNamesShard(t *testing.T) {
	dir := saveShardedFixture(t)
	victim := filepath.Join(dir, "shard-2.chunk")
	if err := os.Remove(victim); err != nil {
		t.Fatal(err)
	}
	stores, _, err := OpenSharded(dir)
	if err == nil {
		for _, st := range stores {
			st.Close()
		}
		t.Fatal("OpenSharded succeeded with shard-2.chunk missing")
	}
	if !strings.Contains(err.Error(), "shard 2") {
		t.Fatalf("error does not name shard 2: %v", err)
	}
	if !strings.Contains(err.Error(), victim) {
		t.Fatalf("error does not name path %s: %v", victim, err)
	}
}

// A truncated shard chunk file must fail diagnostically at open — no
// panic, and the error names the shard.
func TestOpenShardedTruncatedChunkFile(t *testing.T) {
	dir := saveShardedFixture(t)
	victim := filepath.Join(dir, "shard-1.chunk")
	info, err := os.Stat(victim)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(victim, info.Size()/2); err != nil {
		t.Fatal(err)
	}
	stores, _, err := OpenSharded(dir)
	if err == nil {
		for _, st := range stores {
			st.Close()
		}
		t.Fatal("OpenSharded succeeded with a truncated shard-1.chunk")
	}
	if !strings.Contains(err.Error(), "shard 1") {
		t.Fatalf("error does not name shard 1: %v", err)
	}
}

// A manifest whose per-shard chunk count disagrees with the shard's
// index file must fail the open-time cross-check.
func TestOpenShardedManifestChunkCountMismatch(t *testing.T) {
	dir := saveShardedFixture(t)
	mpath := filepath.Join(dir, ManifestName)
	m, err := ReadManifest(mpath)
	if err != nil {
		t.Fatal(err)
	}
	m.Shards[0].Chunks++
	if err := WriteManifest(mpath, m); err != nil {
		t.Fatal(err)
	}
	stores, _, err := OpenSharded(dir)
	if err == nil {
		for _, st := range stores {
			st.Close()
		}
		t.Fatal("OpenSharded succeeded despite manifest chunk-count mismatch")
	}
	if !strings.Contains(err.Error(), "shard 0") || !strings.Contains(err.Error(), "manifest") {
		t.Fatalf("error does not diagnose the manifest mismatch on shard 0: %v", err)
	}
}
