// Package bag implements the clustering algorithm the paper calls BAG
// (Berrani, Amsaleg & Gros, CIKM 2003), derived from the first phase of
// BIRCH. See paper §3.
//
// The algorithm maintains a set of hyper-spherical clusters, each with a
// centroid and a radius, and proceeds in passes:
//
//  1. Initially every descriptor is a singleton cluster with radius zero.
//  2. In each pass, every cluster looks for a merge partner. Two clusters
//     may merge if and only if the bounding radius of the union is smaller
//     than the radius of the larger cluster plus MPI (the Maximum Possible
//     Increment). Merging recomputes centroid and radius; clusters that
//     fail to merge have their stored radius incremented by MPI, making it
//     non-minimal and making merging progressively easier.
//  3. At the end of each pass, clusters holding fewer than DestroyFrac of
//     the mean population (20% in the paper's experiments) are destroyed
//     and their descriptors re-seeded as singleton clusters.
//  4. When the cluster count falls below a user threshold the algorithm
//     terminates; under-populated clusters are destroyed one final time and
//     their descriptors are declared outliers.
//
// Two implementations share this skeleton:
//
//   - Naive: faithful to the paper — a cluster checking for merges examines
//     every other cluster (the paper notes BAG "does not use any indexing
//     scheme to facilitate the merge process", which is why it took almost
//     12 days on 5M descriptors).
//   - Accelerated: a vantage-point tree over centroids proposes the nearest
//     clusters as merge candidates, plus the largest-radius clusters (which
//     can absorb points whose centroid distance is large but whose surface
//     distance is small). The merge rule itself is unchanged; only the
//     candidate enumeration differs. See DESIGN.md §2.
//
// Because the paper generated its three chunk granularities "in
// succession" from one run, Run accepts a descending list of thresholds
// and snapshots the clustering as the count crosses each one.
package bag

import (
	"fmt"
	"math/bits"
	"runtime"
	"sort"
	"sync"

	"repro/internal/cluster"
	"repro/internal/descriptor"
	"repro/internal/vptree"
)

// Config controls a BAG run.
type Config struct {
	// MPI is the Maximum Possible Increment for radii (paper §3).
	MPI float64
	// DestroyFrac is the per-pass and final destruction threshold as a
	// fraction of the mean cluster population. The paper uses 0.20.
	DestroyFrac float64
	// Thresholds are the cluster-count thresholds at which snapshots are
	// taken, in strictly descending order; the run terminates after the
	// last one. The count compared against them is the number of clusters
	// that would survive the final destruction rule (the retained chunk
	// count), so a threshold of n/target yields chunks averaging near the
	// target population.
	Thresholds []int
	// MaxPasses aborts a run that fails to converge. 0 means 1000.
	MaxPasses int
	// Accelerated selects VP-tree candidate search instead of the faithful
	// full scan.
	Accelerated bool
	// Candidates is how many nearest centroids the accelerated variant
	// tests per cluster (0 means 4).
	Candidates int
	// TopRadius is how many of the largest-radius clusters are always
	// tested as candidates in the accelerated variant (0 means 8).
	TopRadius int
	// Seed drives VP-tree construction order.
	Seed int64
	// Progress, if non-nil, is called at the end of each pass.
	Progress func(pass, clusters int)
}

// DefaultConfig returns the configuration used by the experiments, with
// thresholds chosen for the given collection size and target mean chunk
// populations (defaults mirror the paper's 947/1711/2486).
func DefaultConfig(n int, targetSizes ...int) Config {
	if len(targetSizes) == 0 {
		targetSizes = []int{947, 1711, 2486}
	}
	ths := make([]int, len(targetSizes))
	for i, ts := range targetSizes {
		t := n / ts
		if t < 2 {
			t = 2
		}
		ths[i] = t
	}
	sort.Sort(sort.Reverse(sort.IntSlice(ths)))
	return Config{
		MPI:         25,
		DestroyFrac: 0.20,
		Thresholds:  ths,
		Accelerated: true,
		Seed:        1,
	}
}

// Snapshot captures the clustering as the live cluster count crossed one
// threshold: the retained clusters (with exact minimum bounding radii
// recomputed) and the descriptor indexes declared outliers.
type Snapshot struct {
	Threshold int
	Passes    int
	Clusters  []*cluster.Cluster
	Outliers  []int
}

// OutlierFraction returns the fraction of the collection discarded as
// outliers, the quantity reported in the paper's Table 1.
func (s *Snapshot) OutlierFraction() float64 {
	total := len(s.Outliers) + cluster.TotalMembers(s.Clusters)
	if total == 0 {
		return 0
	}
	return float64(len(s.Outliers)) / float64(total)
}

// Run executes BAG over the collection and returns one snapshot per
// threshold, in the order given (thresholds descend, so the coarsest
// clustering — smallest threshold — comes last).
func Run(coll *descriptor.Collection, cfg Config) ([]Snapshot, error) {
	if err := validate(coll, cfg); err != nil {
		return nil, err
	}
	maxPasses := cfg.MaxPasses
	if maxPasses == 0 {
		maxPasses = 1000
	}
	candidates := cfg.Candidates
	if candidates == 0 {
		candidates = 4
	}
	topRadius := cfg.TopRadius
	if topRadius == 0 {
		topRadius = 8
	}

	// Live cluster set. Entries are nilled out when absorbed and the slice
	// is compacted at the end of each pass. stored[i] is the paper's
	// "radius" of live[i]: the bounding radius inflated by the MPI
	// increments of failed merges. Cluster.Radius tracks a valid geometric
	// bound used for candidate pruning, restored to minimal each pass.
	live := make([]*cluster.Cluster, 0, coll.Len())
	for i := 0; i < coll.Len(); i++ {
		live = append(live, cluster.NewFromPoint(coll, i))
	}
	stored := make([]float64, len(live))

	snaps := make([]Snapshot, 0, len(cfg.Thresholds))
	next := 0 // next threshold index awaiting a snapshot

	for pass := 1; pass <= maxPasses; pass++ {
		var giants []int
		var proposals [][]int
		if cfg.Accelerated {
			items := make([]vptree.Item, len(live))
			for i, c := range live {
				items[i] = vptree.Item{ID: i, Vec: c.Centroid}
			}
			tree := vptree.Build(items, cfg.Seed+int64(pass))
			giants = largestRadiusIndexes(live, stored, topRadius)
			proposals = proposeCandidates(live, stored, tree, candidates)
		}

		// Merge loop. The admissibility limit of every cluster is frozen
		// at its pass-start stored radius: any number of merges may happen
		// in one pass ("it is possible that ... many merges take place",
		// §3) but no cluster's radius can grow by more than MPI within the
		// pass — that is exactly what "Maximum Possible Increment" bounds.
		// Clusters that participate in no merge have their stored radius
		// incremented by MPI at the end of the pass.
		frozen := append([]float64(nil), stored...)
		participated := make([]bool, len(live))
		merges := 0
		attempt := func(i, j int) bool {
			if j == i || live[j] == nil {
				return false
			}
			bound, ok := admissible(coll, live[i], live[j], frozen[i], frozen[j], cfg.MPI)
			if !ok {
				return false
			}
			live[i].MergeApprox(live[j], bound)
			stored[i] = bound
			live[j] = nil
			participated[i], participated[j] = true, true
			merges++
			return true
		}
		for i := range live {
			if live[i] == nil {
				continue
			}
			if cfg.Accelerated {
				for _, j := range proposals[i] {
					attempt(i, j)
				}
				for _, j := range giants {
					attempt(i, j)
				}
			} else {
				for j := range live {
					attempt(i, j)
				}
			}
		}
		for i := range live {
			if live[i] != nil && !participated[i] {
				stored[i] += cfg.MPI
			}
		}

		// Compact absorbed entries and restore near-minimal radii. The
		// in-place filtering below only ever writes at or before the read
		// position, so the two parallel slices stay aligned.
		nl, ns := live[:0], stored[:0]
		for i, c := range live {
			if c == nil {
				continue
			}
			c.RecomputeRadius(coll)
			s := stored[i]
			if s < c.Radius {
				s = c.Radius
			}
			nl = append(nl, c)
			ns = append(ns, s)
		}
		live, stored = nl, ns

		// Per-pass destruction rule: clusters below DestroyFrac of the
		// mean population are dissolved back into singletons.
		cut := destructionCut(live, cfg.DestroyFrac)
		var reseed []int
		nl, ns = live[:0], stored[:0]
		for i, c := range live {
			if float64(c.Count()) < cut {
				reseed = append(reseed, c.Members...)
			} else {
				nl = append(nl, c)
				ns = append(ns, stored[i])
			}
		}
		live, stored = nl, ns
		for _, m := range reseed {
			live = append(live, cluster.NewFromPoint(coll, m))
			stored = append(stored, 0)
		}

		if cfg.Progress != nil {
			cfg.Progress(pass, len(live))
		}

		retainedCount := countRetained(live, cfg.DestroyFrac)
		for next < len(cfg.Thresholds) && retainedCount < cfg.Thresholds[next] {
			snaps = append(snaps, snapshot(coll, live, cfg.Thresholds[next], pass, cfg.DestroyFrac))
			next++
		}
		if next == len(cfg.Thresholds) {
			return snaps, nil
		}
		if merges == 0 && len(reseed) == 0 && len(live) <= 1 {
			return snaps, fmt.Errorf("bag: converged to %d clusters without reaching threshold %d", len(live), cfg.Thresholds[next])
		}
	}
	return snaps, fmt.Errorf("bag: did not reach threshold %d within %d passes", cfg.Thresholds[next], maxPasses)
}

func validate(coll *descriptor.Collection, cfg Config) error {
	if coll.Len() == 0 {
		return fmt.Errorf("bag: empty collection")
	}
	if cfg.MPI <= 0 {
		return fmt.Errorf("bag: MPI must be positive, got %v", cfg.MPI)
	}
	if cfg.DestroyFrac < 0 || cfg.DestroyFrac >= 1 {
		return fmt.Errorf("bag: DestroyFrac %v out of [0,1)", cfg.DestroyFrac)
	}
	if len(cfg.Thresholds) == 0 {
		return fmt.Errorf("bag: no thresholds")
	}
	prev := coll.Len() + 1
	for _, t := range cfg.Thresholds {
		if t < 2 {
			return fmt.Errorf("bag: threshold %d too small", t)
		}
		if t >= prev {
			return fmt.Errorf("bag: thresholds must be strictly descending and below the collection size")
		}
		prev = t
	}
	return nil
}

// countRetained returns how many clusters would survive the destruction
// rule right now — the count the snapshot thresholds are compared against.
func countRetained(live []*cluster.Cluster, frac float64) int {
	cut := destructionCut(live, frac)
	n := 0
	for _, c := range live {
		if float64(c.Count()) >= cut {
			n++
		}
	}
	return n
}

// destructionCut returns the population below which a cluster is destroyed.
func destructionCut(live []*cluster.Cluster, frac float64) float64 {
	if len(live) == 0 {
		return 0
	}
	total := 0
	for _, c := range live {
		total += c.Count()
	}
	return frac * float64(total) / float64(len(live))
}

// admissible applies the paper's merge rule to clusters a and b: the union
// radius must be smaller than the stored radius of the larger cluster plus
// MPI. It uses O(d) bounds before falling back to the exact O(n) union
// radius. On success it returns the union radius bound to adopt.
func admissible(coll *descriptor.Collection, a, b *cluster.Cluster, storedA, storedB, mpi float64) (float64, bool) {
	limit := storedA
	if storedB > limit {
		limit = storedB
	}
	limit += mpi
	lo, hi := cluster.MergeBounds(a, b)
	if lo >= limit {
		return 0, false
	}
	if hi < limit {
		return hi, true
	}
	exact := cluster.MergedRadius(coll, a, b)
	if exact < limit {
		return exact, true
	}
	return 0, false
}

// proposeCandidates precomputes, in parallel, the nearest-centroid merge
// candidates of every live cluster against the pass-start snapshot tree.
// The merge loop itself stays sequential (its decisions are order
// dependent); only this read-only search fans out over the CPUs.
//
// Reseeded singletons (stored radius 0) get a single nearest proposal:
// with no accumulated radius they can only initiate a merge with an
// immediate neighbor, while their absorption into large clusters happens
// through the giants list.
func proposeCandidates(live []*cluster.Cluster, stored []float64, tree *vptree.Tree, k int) [][]int {
	out := make([][]int, len(live))
	workers := runtime.GOMAXPROCS(0)
	if workers < 1 {
		workers = 1
	}
	// Exact VP-tree search degenerates toward a linear scan in 24-d, so
	// candidate proposals use a budgeted approximate search. The paper's
	// own candidate choice (first admissible partner in scan order) is
	// arbitrary, so approximate proposals do not change the algorithm's
	// contract, only which admissible merge happens first.
	visitBudget := 24 * (bits.Len(uint(len(live))) + 1)
	var wg sync.WaitGroup
	chunk := (len(live) + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > len(live) {
			hi = len(live)
		}
		if lo >= hi {
			continue
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for i := lo; i < hi; i++ {
				c := live[i]
				if c == nil {
					continue
				}
				kk := k + 1 // +1: the query cluster itself is in the tree
				if c.Count() == 1 && stored[i] == 0 {
					kk = 2
				}
				near := tree.KNearestApprox(c.Centroid, kk, visitBudget)
				ids := make([]int, 0, len(near))
				for _, it := range near {
					if it.ID != i {
						ids = append(ids, it.ID)
					}
				}
				out[i] = ids
			}
		}(lo, hi)
	}
	wg.Wait()
	return out
}

// largestRadiusIndexes returns the indexes of the n live multi-member
// clusters with the largest stored radii.
func largestRadiusIndexes(live []*cluster.Cluster, stored []float64, n int) []int {
	idx := make([]int, 0, len(live))
	for i, c := range live {
		if c != nil && c.Count() > 1 {
			idx = append(idx, i)
		}
	}
	sort.Slice(idx, func(a, b int) bool { return stored[idx[a]] > stored[idx[b]] })
	if len(idx) > n {
		idx = idx[:n]
	}
	return idx
}

// snapshot applies the final outlier rule to a copy of the live set and
// recomputes exact radii for the retained clusters.
func snapshot(coll *descriptor.Collection, live []*cluster.Cluster, threshold, pass int, destroyFrac float64) Snapshot {
	retained, destroyed := cluster.RemoveSmall(live, destroyFrac)
	out := Snapshot{Threshold: threshold, Passes: pass}
	out.Clusters = make([]*cluster.Cluster, len(retained))
	for i, c := range retained {
		cp := c.Clone()
		cp.RecomputeRadius(coll)
		out.Clusters[i] = cp
	}
	for _, d := range destroyed {
		out.Outliers = append(out.Outliers, d.Members...)
	}
	return out
}
