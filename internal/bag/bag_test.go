package bag

import (
	"math/rand"
	"testing"

	"repro/internal/cluster"
	"repro/internal/descriptor"
	"repro/internal/imagegen"
	"repro/internal/vec"
)

// blobs generates k well-separated Gaussian blobs of m points each, plus
// scattered noise points.
func blobs(seed int64, k, m, noise int, dims int) *descriptor.Collection {
	r := rand.New(rand.NewSource(seed))
	coll := descriptor.NewCollection(dims, k*m+noise)
	centers := make([]vec.Vector, k)
	for i := range centers {
		c := make(vec.Vector, dims)
		for d := range c {
			c[d] = float32(r.NormFloat64() * 100)
		}
		centers[i] = c
	}
	id := 0
	v := make(vec.Vector, dims)
	for i := 0; i < k; i++ {
		for j := 0; j < m; j++ {
			for d := range v {
				v[d] = centers[i][d] + float32(r.NormFloat64()*2)
			}
			coll.Append(descriptor.ID(id), v)
			id++
		}
	}
	for j := 0; j < noise; j++ {
		for d := range v {
			v[d] = float32((r.Float64()*2 - 1) * 160)
		}
		coll.Append(descriptor.ID(id), v)
		id++
	}
	return coll
}

func checkSnapshot(t *testing.T, coll *descriptor.Collection, s Snapshot) {
	t.Helper()
	// Every descriptor is either retained in exactly one cluster or an
	// outlier; no duplicates, no losses.
	seen := make([]bool, coll.Len())
	mark := func(i int) {
		if seen[i] {
			t.Fatalf("descriptor %d appears twice", i)
		}
		seen[i] = true
	}
	for _, c := range s.Clusters {
		if err := c.Validate(coll); err != nil {
			t.Fatalf("invalid cluster: %v", err)
		}
		for _, m := range c.Members {
			mark(m)
		}
	}
	for _, o := range s.Outliers {
		mark(o)
	}
	for i, ok := range seen {
		if !ok {
			t.Fatalf("descriptor %d lost", i)
		}
	}
}

func TestNaiveOnBlobs(t *testing.T) {
	coll := blobs(1, 5, 40, 10, 8)
	cfg := Config{MPI: 3, DestroyFrac: 0.2, Thresholds: []int{20}, Seed: 1, MaxPasses: 300}
	snaps, err := Run(coll, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(snaps) != 1 {
		t.Fatalf("got %d snapshots", len(snaps))
	}
	s := snaps[0]
	checkSnapshot(t, coll, s)
	if len(s.Clusters) == 0 || len(s.Clusters) >= 20 {
		t.Fatalf("cluster count %d out of range", len(s.Clusters))
	}
}

func TestAcceleratedOnBlobs(t *testing.T) {
	coll := blobs(1, 5, 40, 10, 8)
	cfg := Config{MPI: 3, DestroyFrac: 0.2, Thresholds: []int{20}, Seed: 1, MaxPasses: 300, Accelerated: true}
	snaps, err := Run(coll, cfg)
	if err != nil {
		t.Fatal(err)
	}
	checkSnapshot(t, coll, snaps[0])
}

// The accelerated variant must behave like the naive one at the
// distribution level: similar cluster counts and similar outlier mass on
// the same input (exact equality is not expected — candidate order
// differs; see DESIGN.md §2).
func TestAcceleratedMatchesNaiveShape(t *testing.T) {
	coll := blobs(7, 6, 30, 12, 8)
	base := Config{MPI: 3, DestroyFrac: 0.2, Thresholds: []int{25}, Seed: 1, MaxPasses: 300}
	nv, err := Run(coll, base)
	if err != nil {
		t.Fatalf("naive: %v", err)
	}
	acc := base
	acc.Accelerated = true
	av, err := Run(coll, acc)
	if err != nil {
		t.Fatalf("accelerated: %v", err)
	}
	nc, ac := len(nv[0].Clusters), len(av[0].Clusters)
	if nc == 0 || ac == 0 {
		t.Fatalf("empty clustering: naive=%d accelerated=%d", nc, ac)
	}
	ratio := float64(ac) / float64(nc)
	if ratio < 0.3 || ratio > 3.0 {
		t.Fatalf("cluster counts diverge: naive=%d accelerated=%d", nc, ac)
	}
	no, ao := nv[0].OutlierFraction(), av[0].OutlierFraction()
	if no > 0.5 || ao > 0.5 {
		t.Fatalf("excessive outliers: naive=%.2f accelerated=%.2f", no, ao)
	}
}

// Multiple thresholds must come back in run order with weakly decreasing
// cluster counts and each snapshot internally consistent.
func TestSuccessiveSnapshots(t *testing.T) {
	coll := blobs(3, 8, 40, 20, 8)
	cfg := Config{MPI: 3, DestroyFrac: 0.2, Thresholds: []int{60, 30, 15}, Seed: 2, MaxPasses: 400, Accelerated: true}
	snaps, err := Run(coll, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(snaps) != 3 {
		t.Fatalf("got %d snapshots, want 3", len(snaps))
	}
	for i, s := range snaps {
		checkSnapshot(t, coll, s)
		if i > 0 {
			if s.Passes < snaps[i-1].Passes {
				t.Fatalf("snapshot %d passes went backwards", i)
			}
			if len(s.Clusters)+len(s.Outliers) > len(snaps[i-1].Clusters)+cluster.TotalMembers(snaps[i-1].Clusters) {
				// count sanity only; the strict check is the threshold one below
				t.Logf("note: snapshot sizes %d vs %d", len(s.Clusters), len(snaps[i-1].Clusters))
			}
		}
		if len(s.Clusters) >= s.Threshold {
			t.Fatalf("snapshot %d has %d clusters, >= threshold %d", i, len(s.Clusters), s.Threshold)
		}
	}
	// Coarser clustering ⇒ larger mean population.
	m0 := cluster.Summarize(snaps[0].Clusters).MeanSize
	m2 := cluster.Summarize(snaps[2].Clusters).MeanSize
	if m2 <= m0 {
		t.Fatalf("mean size did not grow with coarser threshold: %.1f -> %.1f", m0, m2)
	}
}

// On the skewed synthetic image collection BAG must produce the paper's
// signature: a heavily non-uniform size distribution with giant clusters
// (Fig. 1) and a noticeable outlier fraction (Table 1: 8-12%).
func TestSkewProducesGiantClustersAndOutliers(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	ds := imagegen.MustGenerate(imagegen.DefaultConfig(8000, 42))
	coll := ds.Collection
	cfg := DefaultConfig(coll.Len(), 40, 80)
	cfg.MaxPasses = 400
	snaps, err := Run(coll, cfg)
	if err != nil {
		t.Fatal(err)
	}
	s := snaps[len(snaps)-1]
	checkSnapshot(t, coll, s)
	sizes := cluster.LargestSizes(s.Clusters, 30)
	stats := cluster.Summarize(s.Clusters)
	if float64(sizes[0]) < 3*stats.MeanSize {
		t.Fatalf("largest cluster %d not ≫ mean %.0f: size skew missing", sizes[0], stats.MeanSize)
	}
	of := s.OutlierFraction()
	if of < 0.01 || of > 0.45 {
		t.Fatalf("outlier fraction %.3f implausible", of)
	}
}

func TestValidation(t *testing.T) {
	coll := blobs(1, 2, 5, 0, 4)
	cases := []Config{
		{MPI: 0, DestroyFrac: 0.2, Thresholds: []int{5}},
		{MPI: 1, DestroyFrac: -0.1, Thresholds: []int{5}},
		{MPI: 1, DestroyFrac: 0.2, Thresholds: nil},
		{MPI: 1, DestroyFrac: 0.2, Thresholds: []int{1}},
		{MPI: 1, DestroyFrac: 0.2, Thresholds: []int{5, 5}},
		{MPI: 1, DestroyFrac: 0.2, Thresholds: []int{5, 8}},
		{MPI: 1, DestroyFrac: 0.2, Thresholds: []int{100}},
	}
	for i, cfg := range cases {
		if _, err := Run(coll, cfg); err == nil {
			t.Errorf("case %d: expected error for %+v", i, cfg)
		}
	}
	empty := descriptor.NewCollection(4, 0)
	if _, err := Run(empty, Config{MPI: 1, DestroyFrac: 0.2, Thresholds: []int{5}}); err == nil {
		t.Error("expected error for empty collection")
	}
}

func TestDeterminism(t *testing.T) {
	coll := blobs(5, 4, 25, 8, 6)
	cfg := Config{MPI: 3, DestroyFrac: 0.2, Thresholds: []int{15}, Seed: 9, MaxPasses: 300, Accelerated: true}
	a, err := Run(coll, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(coll, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(a[0].Clusters) != len(b[0].Clusters) || len(a[0].Outliers) != len(b[0].Outliers) {
		t.Fatalf("non-deterministic: %d/%d vs %d/%d clusters/outliers",
			len(a[0].Clusters), len(a[0].Outliers), len(b[0].Clusters), len(b[0].Outliers))
	}
}

func TestProgressCallback(t *testing.T) {
	coll := blobs(2, 3, 20, 5, 6)
	calls := 0
	cfg := Config{MPI: 3, DestroyFrac: 0.2, Thresholds: []int{10}, MaxPasses: 300, Accelerated: true,
		Progress: func(pass, clusters int) { calls++ }}
	if _, err := Run(coll, cfg); err != nil {
		t.Fatal(err)
	}
	if calls == 0 {
		t.Fatal("Progress never called")
	}
}

func BenchmarkBAGAccelerated5k(b *testing.B) {
	ds := imagegen.MustGenerate(imagegen.DefaultConfig(5000, 1))
	cfg := DefaultConfig(ds.Collection.Len(), 100)
	cfg.MaxPasses = 500
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Run(ds.Collection, cfg); err != nil {
			b.Fatal(err)
		}
	}
}
