package experiments

import (
	"fmt"

	"repro/internal/chunkfile"
	"repro/internal/descriptor"
	"repro/internal/knn"
	"repro/internal/metrics"
	"repro/internal/scan"
	"repro/internal/search"
	"repro/internal/search/batchexec"
	"repro/internal/vec"
)

// runTraces executes every query against the store to completion (the
// paper always ran queries to conclusion and logged metrics after every
// chunk, §5.4) and returns one QueryTrace per query, with Found counted
// against the provided ground truth.
//
// The queries run as one batch through the chunk-major engine with its
// per-(query, chunk) trace hook: every chunk wanted by several queries
// is decoded once instead of once per query, which is what makes the
// full experiment grid tolerable, while each query's event stream is
// byte-identical to the single-query path's. Events of one query arrive
// in its rank order; events of distinct queries may arrive concurrently,
// so the hook only ever touches that query's own trace.
func (l *Lab) runTraces(store chunkfile.Store, queries []vec.Vector, gt *scan.GroundTruth) ([]metrics.QueryTrace, error) {
	out := make([]metrics.QueryTrace, len(queries))
	truths := make([]map[descriptor.ID]struct{}, len(queries))
	for qi := range queries {
		truth := make(map[descriptor.ID]struct{}, len(gt.IDs[qi]))
		for _, id := range gt.IDs[qi] {
			truth[id] = struct{}{}
		}
		truths[qi] = truth
	}
	eng := batchexec.New(store, l.Model)
	results := make([]search.Result, len(queries))
	err := eng.Run(queries, batchexec.Options{
		K:       l.Cfg.K,
		Stop:    search.ToCompletion{},
		Overlap: l.Cfg.Overlap,
		Trace: func(qi int, ev search.Event) {
			out[qi].Elapsed = append(out[qi].Elapsed, ev.Elapsed)
			out[qi].Found = append(out[qi].Found, countFound(truths[qi], ev.Neighbors))
		},
	}, results)
	if err != nil {
		return nil, fmt.Errorf("experiments: %w", err)
	}
	for qi := range out {
		if err := out[qi].Validate(); err != nil {
			return nil, fmt.Errorf("experiments: query %d: %w", qi, err)
		}
	}
	return out, nil
}

func countFound(truth map[descriptor.ID]struct{}, neighbors []knn.Neighbor) int {
	n := 0
	for _, nb := range neighbors {
		if _, ok := truth[nb.ID]; ok {
			n++
		}
	}
	return n
}
