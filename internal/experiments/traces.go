package experiments

import (
	"fmt"

	"repro/internal/chunkfile"
	"repro/internal/descriptor"
	"repro/internal/knn"
	"repro/internal/metrics"
	"repro/internal/scan"
	"repro/internal/search"
	"repro/internal/vec"
)

// runTraces executes every query against the store to completion (the
// paper always ran queries to conclusion and logged metrics after every
// chunk, §5.4) and returns one QueryTrace per query, with Found counted
// against the provided ground truth.
func (l *Lab) runTraces(store chunkfile.Store, queries []vec.Vector, gt *scan.GroundTruth) ([]metrics.QueryTrace, error) {
	s := l.searcher(store)
	out := make([]metrics.QueryTrace, len(queries))
	for qi, q := range queries {
		truth := make(map[descriptor.ID]struct{}, len(gt.IDs[qi]))
		for _, id := range gt.IDs[qi] {
			truth[id] = struct{}{}
		}
		tr := metrics.QueryTrace{}
		_, err := s.Search(q, search.Options{
			K:       l.Cfg.K,
			Stop:    search.ToCompletion{},
			Overlap: l.Cfg.Overlap,
			Trace: func(ev search.Event) {
				tr.Elapsed = append(tr.Elapsed, ev.Elapsed)
				tr.Found = append(tr.Found, countFound(truth, ev.Neighbors))
			},
		})
		if err != nil {
			return nil, fmt.Errorf("experiments: query %d: %w", qi, err)
		}
		if err := tr.Validate(); err != nil {
			return nil, fmt.Errorf("experiments: query %d: %w", qi, err)
		}
		out[qi] = tr
	}
	return out, nil
}

func countFound(truth map[descriptor.ID]struct{}, neighbors []knn.Neighbor) int {
	n := 0
	for _, nb := range neighbors {
		if _, ok := truth[nb.ID]; ok {
			n++
		}
	}
	return n
}
