package experiments

import (
	"fmt"
	"io"
	"math"

	"repro/internal/chunkfile"
	"repro/internal/metrics"
	"repro/internal/srtree"
)

// Figure67Result reproduces Figure 6 (DQ) or Figure 7 (SQ): the time to
// find n nearest neighbors as a function of the SR-tree chunk size, over a
// log-spaced sweep of chunk sizes (the paper builds 16 chunk indexes from
// 100 to 100,000 descriptors per chunk).
type Figure67Result struct {
	Title      string
	Workload   string
	ChunkSizes []int
	Neighbors  []int                // the n values plotted (paper: 1,10,20,25,28,30)
	Series     map[string][]float64 // "n neighbors" -> seconds per chunk size
	Order      []string
}

// ChunkSizeSweep returns the paper's 16 log-spaced chunk sizes, clipped so
// a chunk never exceeds half the collection.
func ChunkSizeSweep(points, minSize, maxSize, collectionSize int) []int {
	if maxSize > collectionSize/2 {
		maxSize = collectionSize / 2
	}
	if maxSize < minSize {
		maxSize = minSize
	}
	out := make([]int, 0, points)
	lmin, lmax := math.Log(float64(minSize)), math.Log(float64(maxSize))
	prev := 0
	for i := 0; i < points; i++ {
		f := float64(i) / float64(points-1)
		s := int(math.Round(math.Exp(lmin + f*(lmax-lmin))))
		if s <= prev {
			s = prev + 1
		}
		out = append(out, s)
		prev = s
	}
	return out
}

// Figure67 runs Experiment 2 (§5.6) on the given workload: SR-tree chunk
// indexes over the SMALL retained collection (the paper uses the 4,471,532
// retained descriptors) for each chunk size in the sweep.
func Figure67(lab *Lab, workloadName string, chunkSizes []int, neighbors []int) (*Figure67Result, error) {
	if len(lab.Grans) == 0 {
		return nil, fmt.Errorf("experiments: lab has no granularities")
	}
	g := lab.Grans[0] // SMALL: the granularity whose retained set the paper reuses
	queries, err := lab.workloadByName(workloadName)
	if err != nil {
		return nil, err
	}
	if len(chunkSizes) == 0 {
		chunkSizes = ChunkSizeSweep(16, 100, 100000, len(g.RetainedIdx))
	}
	if len(neighbors) == 0 {
		neighbors = []int{1, 10, 20, 25, 28, 30}
	}
	res := &Figure67Result{
		Workload:   workloadName,
		ChunkSizes: chunkSizes,
		Neighbors:  neighbors,
		Series:     map[string][]float64{},
	}
	if workloadName == "DQ" {
		res.Title = "Figure 6: Effect of different chunk sizes (DQ)"
	} else {
		res.Title = "Figure 7: Effect of different chunk sizes (SQ)"
	}
	for _, n := range neighbors {
		name := fmt.Sprintf("%d neighbors", n)
		res.Order = append(res.Order, name)
		res.Series[name] = make([]float64, len(chunkSizes))
	}
	gt := lab.Truth(0, workloadName, queries)

	for si, size := range chunkSizes {
		lab.Cfg.logf("figure 6/7 (%s): chunk size %d (%d/%d)...", workloadName, size, si+1, len(chunkSizes))
		tree, err := srtree.Build(lab.Coll, g.RetainedIdx, size, lab.Cfg.SRFanout)
		if err != nil {
			return nil, err
		}
		store := chunkfile.NewMemStore(lab.Coll, tree.Chunks(), lab.Cfg.PageSize)
		traces, err := lab.runTraces(store, queries, gt)
		if err != nil {
			return nil, err
		}
		times := metrics.TimeToFind(traces, lab.Cfg.K)
		for _, n := range neighbors {
			res.Series[fmt.Sprintf("%d neighbors", n)][si] = times[n-1]
		}
	}
	return res, nil
}

// Render writes the sweep columns and an ASCII sketch with log x.
func (r *Figure67Result) Render(w io.Writer) {
	xs := make([]float64, len(r.ChunkSizes))
	for i, s := range r.ChunkSizes {
		xs[i] = float64(s)
	}
	metrics.RenderSeries(w, r.Title, "chunk size", xs, r.Order, r.Series)
	metrics.Plot(w, r.Title+" [seconds]", xs, r.Order, r.Series, true)
}
