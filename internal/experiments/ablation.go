package experiments

import (
	"fmt"
	"io"
	"sort"
	"time"

	"repro/internal/bag"
	"repro/internal/chunkfile"
	"repro/internal/cluster"
	"repro/internal/hybrid"
	"repro/internal/metrics"
	"repro/internal/roundrobin"
	"repro/internal/scan"
	"repro/internal/srtree"
)

// AblationOverlapResult quantifies the benefit of overlapping I/O and CPU
// (§1.1 motivates uniform chunks with exactly this overlap) by running
// Table 2's completion measurement under both pipeline models.
type AblationOverlapResult struct {
	Rows []AblationOverlapRow
}

// AblationOverlapRow is one index's completion time under both models.
type AblationOverlapRow struct {
	Index             string
	OverlapSec        float64
	SerialSec         float64
	SpeedupPct        float64
	MeanChunkSizeDesc float64
}

// AblationOverlap measures overlapped vs serial completion on the DQ
// workload for every index.
func AblationOverlap(lab *Lab) (*AblationOverlapResult, error) {
	res := &AblationOverlapResult{}
	for gi, g := range lab.Grans {
		gt := lab.Truth(gi, "DQ", lab.DQ)
		for _, st := range lab.Strategies(gi) {
			var secs [2]float64
			for mi, overlap := range []bool{true, false} {
				saved := lab.Cfg.Overlap
				lab.Cfg.Overlap = overlap
				traces, err := lab.runTraces(st.Store, lab.DQ, gt)
				lab.Cfg.Overlap = saved
				if err != nil {
					return nil, err
				}
				secs[mi] = metrics.MeanCompletion(traces)
			}
			var meanSize float64
			if st.Name == "BAG" {
				meanSize = cluster.Summarize(g.BagChunks).MeanSize
			} else {
				meanSize = cluster.Summarize(g.SRChunks).MeanSize
			}
			res.Rows = append(res.Rows, AblationOverlapRow{
				Index:             st.Name + " / " + g.Name,
				OverlapSec:        secs[0],
				SerialSec:         secs[1],
				SpeedupPct:        (secs[1] - secs[0]) / secs[1] * 100,
				MeanChunkSizeDesc: meanSize,
			})
		}
	}
	return res, nil
}

// Render writes the overlap ablation table.
func (r *AblationOverlapResult) Render(w io.Writer) {
	headers := []string{"Index", "Overlapped (s)", "Serial (s)", "Saved %"}
	var rows [][]string
	for _, row := range r.Rows {
		rows = append(rows, []string{
			row.Index,
			fmt.Sprintf("%.2f", row.OverlapSec),
			fmt.Sprintf("%.2f", row.SerialSec),
			fmt.Sprintf("%.1f", row.SpeedupPct),
		})
	}
	metrics.RenderTable(w, "Ablation: I/O-CPU overlap vs serial pipeline (DQ completion)", headers, rows)
}

// AblationStrategiesResult extends Figure 2/4 with the strategies the
// paper discusses but does not measure: round-robin chunking (§1.1
// strawman) and the uniform-size-first hybrid clustering proposed as
// future work (§7).
type AblationStrategiesResult struct {
	Chunks *CurveResult // Figure-2 axes
	Times  *CurveResult // Figure-4 axes
}

// AblationStrategies runs the extra strategies on the SMALL granularity's
// retained set, alongside the paper's two, on the DQ workload.
func AblationStrategies(lab *Lab) (*AblationStrategiesResult, error) {
	g := lab.Grans[0]
	gt := lab.Truth(0, "DQ", lab.DQ)
	meanSize := int(cluster.Summarize(g.BagChunks).MeanSize)
	if meanSize < 1 {
		meanSize = 1
	}

	rr, err := roundrobin.Chunks(lab.Coll, g.RetainedIdx, meanSize)
	if err != nil {
		return nil, err
	}
	hy, err := hybrid.Chunks(lab.Coll, g.RetainedIdx, hybrid.Config{ChunkSize: meanSize, Seed: lab.Cfg.Seed})
	if err != nil {
		return nil, err
	}
	stores := []Strategy{
		{"BAG", g.BagStore},
		{"SR", g.SRStore},
		{"RR", chunkfile.NewMemStore(lab.Coll, rr, lab.Cfg.PageSize)},
		{"HYBRID", chunkfile.NewMemStore(lab.Coll, hy, lab.Cfg.PageSize)},
	}

	chunksRes := &CurveResult{
		Title:    "Ablation: chunks to find neighbors, all strategies (DQ, " + g.Name + ")",
		Workload: "DQ", YLabel: "chunks read", K: lab.Cfg.K, Series: map[string][]float64{},
	}
	timesRes := &CurveResult{
		Title:    "Ablation: time to find neighbors, all strategies (DQ, " + g.Name + ")",
		Workload: "DQ", YLabel: "wall time (simulated seconds)", K: lab.Cfg.K, Series: map[string][]float64{},
	}
	for _, st := range stores {
		traces, err := lab.runTraces(st.Store, lab.DQ, gt)
		if err != nil {
			return nil, err
		}
		chunksRes.Series[st.Name] = metrics.ChunksToFind(traces, lab.Cfg.K)
		timesRes.Series[st.Name] = metrics.TimeToFind(traces, lab.Cfg.K)
		chunksRes.Order = append(chunksRes.Order, st.Name)
		timesRes.Order = append(timesRes.Order, st.Name)
	}
	return &AblationStrategiesResult{Chunks: chunksRes, Times: timesRes}, nil
}

// Render writes both curve sets.
func (r *AblationStrategiesResult) Render(w io.Writer) {
	r.Chunks.Render(w)
	r.Times.Render(w)
}

// AblationNaiveBagResult compares the faithful O(C²)-per-pass BAG with the
// VP-tree-accelerated variant on a subsample, validating the substitution
// argument of DESIGN.md §2.
type AblationNaiveBagResult struct {
	SampleN        int
	NaiveClusters  int
	AccelClusters  int
	NaiveOutlierP  float64
	AccelOutlierP  float64
	NaiveMeanSize  float64
	AccelMeanSize  float64
	NaiveBuildTime time.Duration
	AccelBuildTime time.Duration
}

// AblationNaiveBag runs both variants on a deterministic subsample of the
// lab collection.
func AblationNaiveBag(lab *Lab, sampleN int) (*AblationNaiveBagResult, error) {
	if sampleN <= 0 || sampleN > lab.Coll.Len() {
		sampleN = 4000
	}
	idx := make([]int, 0, sampleN)
	stride := lab.Coll.Len() / sampleN
	if stride < 1 {
		stride = 1
	}
	for i := 0; i < lab.Coll.Len() && len(idx) < sampleN; i += stride {
		idx = append(idx, i)
	}
	sub := lab.Coll.Subset(idx)

	target := sampleN / 40
	if target < 4 {
		target = 4
	}
	base := bag.DefaultConfig(sub.Len(), sub.Len()/target)
	base.MPI = lab.Cfg.MPI
	base.MaxPasses = 500
	base.Seed = lab.Cfg.Seed

	res := &AblationNaiveBagResult{SampleN: sub.Len()}

	naive := base
	naive.Accelerated = false
	start := time.Now()
	ns, err := bag.Run(sub, naive)
	if err != nil {
		return nil, fmt.Errorf("naive bag: %w", err)
	}
	res.NaiveBuildTime = time.Since(start)

	accel := base
	accel.Accelerated = true
	start = time.Now()
	as, err := bag.Run(sub, accel)
	if err != nil {
		return nil, fmt.Errorf("accelerated bag: %w", err)
	}
	res.AccelBuildTime = time.Since(start)

	nl, al := ns[len(ns)-1], as[len(as)-1]
	res.NaiveClusters = len(nl.Clusters)
	res.AccelClusters = len(al.Clusters)
	res.NaiveOutlierP = nl.OutlierFraction() * 100
	res.AccelOutlierP = al.OutlierFraction() * 100
	res.NaiveMeanSize = cluster.Summarize(nl.Clusters).MeanSize
	res.AccelMeanSize = cluster.Summarize(al.Clusters).MeanSize
	return res, nil
}

// Render writes the comparison.
func (r *AblationNaiveBagResult) Render(w io.Writer) {
	headers := []string{"Variant", "Clusters", "Mean size", "Outliers %", "Build time"}
	rows := [][]string{
		{"naive (paper)", fmt.Sprintf("%d", r.NaiveClusters), fmt.Sprintf("%.0f", r.NaiveMeanSize),
			fmt.Sprintf("%.1f", r.NaiveOutlierP), r.NaiveBuildTime.Round(time.Millisecond).String()},
		{"accelerated", fmt.Sprintf("%d", r.AccelClusters), fmt.Sprintf("%.0f", r.AccelMeanSize),
			fmt.Sprintf("%.1f", r.AccelOutlierP), r.AccelBuildTime.Round(time.Millisecond).String()},
	}
	metrics.RenderTable(w, fmt.Sprintf("Ablation: naive vs accelerated BAG (%d-descriptor sample)", r.SampleN), headers, rows)
}

// AblationNormOutlierResult reproduces the paper's §5.2 remark: building
// the SR-tree index after the *simpler* norm-threshold outlier removal
// "gave almost identical results" to using BAG's outlier set.
type AblationNormOutlierResult struct {
	Gran         string
	NormCut      float64
	BagRetained  int
	NormRetained int
	// Chunks-to-find curves on DQ for the two SR variants.
	Curves *CurveResult
}

// AblationNormOutlier builds an SR index over a norm-filtered set sized to
// discard the same fraction as BAG did, and compares Figure-2 curves.
func AblationNormOutlier(lab *Lab) (*AblationNormOutlierResult, error) {
	g := lab.Grans[0]
	// Pick the norm cut so the discarded fraction matches BAG's.
	norms := make([]float64, lab.Coll.Len())
	for i := range norms {
		norms[i] = lab.Coll.Vec(i).Norm()
	}
	sorted := append([]float64(nil), norms...)
	sort.Float64s(sorted)
	keepFrac := 1 - g.Snap.OutlierFraction()
	cutIdx := int(keepFrac * float64(len(sorted)))
	if cutIdx >= len(sorted) {
		cutIdx = len(sorted) - 1
	}
	cut := sorted[cutIdx]
	var retained []int
	for i, n := range norms {
		if n <= cut {
			retained = append(retained, i)
		}
	}

	tree, err := srtree.Build(lab.Coll, retained, g.SRLeafCap, lab.Cfg.SRFanout)
	if err != nil {
		return nil, err
	}
	normStore := chunkfile.NewMemStore(lab.Coll, tree.Chunks(), lab.Cfg.PageSize)
	// Each variant is measured against the exact top-k of its own retained
	// set, as the paper measured each index against its own scan (§5.4);
	// the retained sets differ slightly between outlier schemes.
	normTruth := scan.Compute(lab.Coll.Subset(retained), lab.DQ, lab.Cfg.K)

	curves := &CurveResult{
		Title:    "Ablation: SR with BAG outliers vs norm-threshold outliers (DQ, " + g.Name + ")",
		Workload: "DQ", YLabel: "chunks read", K: lab.Cfg.K, Series: map[string][]float64{},
	}
	variants := []struct {
		Strategy
		truth *scan.GroundTruth
	}{
		{Strategy{"SR/bag-outliers", g.SRStore}, lab.Truth(0, "DQ", lab.DQ)},
		{Strategy{"SR/norm-outliers", normStore}, normTruth},
	}
	for _, st := range variants {
		traces, err := lab.runTraces(st.Store, lab.DQ, st.truth)
		if err != nil {
			return nil, err
		}
		curves.Series[st.Name] = metrics.ChunksToFind(traces, lab.Cfg.K)
		curves.Order = append(curves.Order, st.Name)
	}
	return &AblationNormOutlierResult{
		Gran:         g.Name,
		NormCut:      cut,
		BagRetained:  len(g.RetainedIdx),
		NormRetained: len(retained),
		Curves:       curves,
	}, nil
}

// Render writes the comparison.
func (r *AblationNormOutlierResult) Render(w io.Writer) {
	fmt.Fprintf(w, "Norm-threshold outlier removal: cut=%.1f, retained %d (BAG retained %d)\n",
		r.NormCut, r.NormRetained, r.BagRetained)
	r.Curves.Render(w)
}
