package experiments

import (
	"fmt"
	"io"

	"repro/internal/chunkfile"
	"repro/internal/cluster"
	"repro/internal/search"
	"repro/internal/search/batchexec"
	"repro/internal/shard"
	"repro/internal/workload"
)

// SkewRow is one (placement, routing policy) cell of the skew study:
// tail latency and the per-shard load split of a Zipf workload over a
// replicated sharded layout.
type SkewRow struct {
	Layout string // "byte-balanced" or "heat-balanced" primary placement
	Spread bool   // spread-reads routing policy on
	// P99Sec is the 99th-percentile per-query simulated time in seconds;
	// MeanSec the mean. ReadsStddev is the standard deviation of the
	// shards' served-read counts, BilledStddev of their billed simulated
	// serving seconds (zero with spread off — the estimator is idle).
	P99Sec       float64
	MeanSec      float64
	ReadsStddev  float64
	BilledStddev float64
}

// SkewResult is the skew study: what heat-aware primary balancing and
// proactive replica read spreading each buy under a skewed workload.
type SkewResult struct {
	Shards, Replication int
	ZipfS               float64
	Rows                []SkewRow
}

// skewShards and skewReplication fix the fleet of the skew study: four
// machines, every chunk on two of them — the smallest layout where both
// placement and routing have room to move load.
const (
	skewShards      = 4
	skewReplication = 2
	skewZipfS       = 1.3
)

// Skew runs the heat/spread study on the SMALL granularity's SR chunks:
// a Zipf(s=1.3) workload — hot descriptors queried far more often than
// the tail — over a 4-shard R=2 layout, crossing primary placement
// (byte-balanced Partition vs heat-balanced PartitionHeated, heat taken
// from a disjoint Zipf sample) with the routing policy (primary-first vs
// spread reads). Answers are identical across all four cells — placement
// changes which shard owns a chunk and routing which copy serves it,
// never what is read — so the rows isolate the simulated-time and
// load-split effects of each mechanism.
func Skew(lab *Lab) (*SkewResult, error) {
	g := &lab.Grans[0]
	chunks := g.SRChunks
	dims := lab.Coll.Dims()

	sample, err := workload.Zipf(lab.Coll, lab.Cfg.Queries, skewZipfS, lab.Cfg.Seed+11)
	if err != nil {
		return nil, err
	}
	queries, err := workload.Zipf(lab.Coll, lab.Cfg.Queries, skewZipfS, lab.Cfg.Seed+12)
	if err != nil {
		return nil, err
	}
	heat := shard.Heat(chunks, sample, 0)

	res := &SkewResult{Shards: skewShards, Replication: skewReplication, ZipfS: skewZipfS}
	results := make([]search.Result, len(queries))
	for _, layout := range []struct {
		name      string
		partition func([]*cluster.Cluster, int, int, int, int, []float64) (*shard.Placement, error)
	}{
		{"byte-balanced", shard.PartitionReplicated},
		{"heat-balanced", shard.PartitionReplicatedHeated},
	} {
		placement, err := layout.partition(chunks, skewShards, skewReplication, dims, lab.Cfg.PageSize, heat)
		if err != nil {
			return nil, err
		}
		for _, spread := range []bool{false, true} {
			stores := make([]chunkfile.Store, skewShards)
			for s := range stores {
				idxs := append(append([]int(nil), placement.Primary[s]...), placement.Extra[s]...)
				stores[s] = chunkfile.NewMemStore(lab.Coll, shard.Select(chunks, idxs), lab.Cfg.PageSize)
			}
			router, err := shard.NewReplicatedRouterWith(stores, placement, lab.Model, shard.RouterOptions{SpreadReads: spread})
			if err != nil {
				return nil, err
			}
			err = workload.RunSharded(router, queries, batchexec.Options{
				K: lab.Cfg.K, Stop: search.ChunkBudget(5), Overlap: lab.Cfg.Overlap,
			}, results)
			if err != nil {
				router.Close()
				return nil, err
			}
			loads := router.ShardLoads(nil)
			st := workload.Summarize(results)
			res.Rows = append(res.Rows, SkewRow{
				Layout:       layout.name,
				Spread:       spread,
				P99Sec:       workload.SimulatedQuantile(results, 0.99).Seconds(),
				MeanSec:      st.MeanSimulated(),
				ReadsStddev:  workload.Stddev(workload.LoadReads(loads)),
				BilledStddev: workload.Stddev(workload.LoadSeconds(loads)),
			})
			if err := router.Close(); err != nil {
				return nil, err
			}
		}
	}
	return res, nil
}

// Render writes the skew study table.
func (r *SkewResult) Render(w io.Writer) {
	fmt.Fprintf(w, "Skew study: Zipf(s=%.1f) workload, %d shards, R=%d\n",
		r.ZipfS, r.Shards, r.Replication)
	fmt.Fprintf(w, "%-14s %-7s %s\n", "layout", "spread", "p99s / means / reads-sd / billed-sd")
	for _, row := range r.Rows {
		fmt.Fprintf(w, "%-14s %-7v %.4f / %.4f / %.1f / %.4f\n",
			row.Layout, row.Spread, row.P99Sec, row.MeanSec, row.ReadsStddev, row.BilledStddev)
	}
}
