package experiments

import (
	"fmt"
	"io"
	"time"

	"repro/internal/chunkfile"
	"repro/internal/descriptor"
	"repro/internal/knn"
	"repro/internal/lsh"
	"repro/internal/medrank"
	"repro/internal/metrics"
	"repro/internal/psphere"
	"repro/internal/search"
	"repro/internal/search/batchexec"
	"repro/internal/shard"
	"repro/internal/vafile"
	"repro/internal/workload"
)

// ComparatorRow is one (method, parameter) point of the related-work
// comparison: average recall within the top k and average simulated
// seconds on the 2005 cost model.
type ComparatorRow struct {
	Method string
	Param  string
	Recall float64
	SimSec float64
}

// ComparatorsResult is an extension experiment beyond the paper: the
// chunk-search architecture against the related-work systems the paper
// discusses (§6) — the VA-File (exact and approximate) and Medrank — all
// costed on the same simulated 2005 hardware.
type ComparatorsResult struct {
	Workload string
	K        int
	Rows     []ComparatorRow
}

// Comparators runs the comparison on the SMALL granularity's retained
// collection with the DQ workload.
func Comparators(lab *Lab) (*ComparatorsResult, error) {
	g := lab.Grans[0]
	coll := g.Retained
	k := lab.Cfg.K
	model := lab.Model
	queries := lab.DQ
	gt := lab.Truth(0, "DQ", queries)
	res := &ComparatorsResult{Workload: "DQ", K: k}

	truthSets := make([]map[descriptor.ID]struct{}, len(queries))
	for qi := range queries {
		set := make(map[descriptor.ID]struct{}, k)
		for _, id := range gt.IDs[qi] {
			set[id] = struct{}{}
		}
		truthSets[qi] = set
	}
	recallOf := func(qi int, res []knn.Neighbor) float64 {
		return float64(countFound(truthSets[qi], res)) / float64(k)
	}

	// Chunk search (SR-tree chunks) at several chunk budgets, run as one
	// workload batch per budget through the chunk-major engine (results
	// are byte-identical to per-query searches; the batch path reuses one
	// results arena across the whole sweep).
	lab.Cfg.logf("comparators: chunk search...")
	eng := batchexec.New(g.SRStore, model)
	chunkResults := make([]search.Result, len(queries))
	for _, budget := range []int{1, 2, 5, 10, 20} {
		err := workload.Run(eng, queries, batchexec.Options{
			K: k, Stop: search.ChunkBudget(budget), Overlap: true,
		}, chunkResults)
		if err != nil {
			return nil, err
		}
		var recall, secs float64
		for qi := range chunkResults {
			recall += recallOf(qi, chunkResults[qi].Neighbors)
			secs += chunkResults[qi].Elapsed.Seconds()
		}
		res.Rows = append(res.Rows, ComparatorRow{
			Method: "chunk-search/SR",
			Param:  fmt.Sprintf("chunks=%d", budget),
			Recall: recall / float64(len(queries)),
			SimSec: secs / float64(len(queries)),
		})
	}

	// Sharded chunk search: the same SR chunks partitioned across four
	// simulated machines (balanced by padded chunk bytes), searched
	// scatter-gather with the per-shard budget. Simulated time is the max
	// over the shards — they run in parallel — so the rows show what the
	// ROADMAP's sharding direction buys: response time drops while the
	// summed chunk work (the hardware bill) rises.
	lab.Cfg.logf("comparators: sharded chunk search...")
	const comparatorShards = 4
	assign, err := shard.Partition(g.SRChunks, comparatorShards, lab.Coll.Dims(), lab.Cfg.PageSize)
	if err != nil {
		return nil, err
	}
	shardStores := make([]chunkfile.Store, len(assign))
	for s, idxs := range assign {
		shardStores[s] = chunkfile.NewMemStore(lab.Coll, shard.Select(g.SRChunks, idxs), lab.Cfg.PageSize)
	}
	router, err := shard.NewRouter(shardStores, model)
	if err != nil {
		return nil, err
	}
	for _, budget := range []int{1, 2, 5} {
		err := workload.RunSharded(router, queries, batchexec.Options{
			K: k, Stop: search.ChunkBudget(budget), Overlap: true,
		}, chunkResults)
		if err != nil {
			return nil, err
		}
		var recall, secs float64
		for qi := range chunkResults {
			recall += recallOf(qi, chunkResults[qi].Neighbors)
			secs += chunkResults[qi].Elapsed.Seconds()
		}
		res.Rows = append(res.Rows, ComparatorRow{
			Method: fmt.Sprintf("chunk-search/SR-%dshard", comparatorShards),
			Param:  fmt.Sprintf("chunks=%dx%d", comparatorShards, budget),
			Recall: recall / float64(len(queries)),
			SimSec: secs / float64(len(queries)),
		})
	}

	// Global-budget sharded chunk search: the same four machines, but the
	// stop rule spends one total budget across them in global
	// centroid-rank order. At the matched total budget (4×b chunks) the
	// global rows read the same chunks the unsharded engine would — same
	// recall as the single-machine rows above at budget 4b — while the
	// response time stays sharded (the chunks land on four parallel
	// machines). This is the gap the per-shard rows leave open: per-shard
	// budget b pays the 4×b bill for the *per-shard* top chunks, global
	// budget 4b pays the same bill for the *globally* best chunks.
	lab.Cfg.logf("comparators: sharded chunk search (global budget)...")
	for _, budget := range []int{4, 8, 20} {
		err := workload.RunShardedGlobal(router, queries, batchexec.Options{
			K: k, Stop: search.ChunkBudget(budget), Overlap: true,
		}, chunkResults)
		if err != nil {
			return nil, err
		}
		var recall, secs float64
		for qi := range chunkResults {
			recall += recallOf(qi, chunkResults[qi].Neighbors)
			secs += chunkResults[qi].Elapsed.Seconds()
		}
		res.Rows = append(res.Rows, ComparatorRow{
			Method: fmt.Sprintf("chunk-search/SR-%dshard-global", comparatorShards),
			Param:  fmt.Sprintf("chunks=%d total", budget),
			Recall: recall / float64(len(queries)),
			SimSec: secs / float64(len(queries)),
		})
	}

	// VA-File: exact and visit-budgeted. Simulated cost: one sequential
	// scan of the approximation file plus a bound computation per
	// descriptor (phase 1), then one random read and one distance per
	// visited candidate (phase 2).
	lab.Cfg.logf("comparators: VA-File...")
	va, err := vafile.Build(coll, 5)
	if err != nil {
		return nil, err
	}
	vaCost := func(st vafile.Stats) float64 {
		phase1 := model.ReadTime(va.ApproximationBytes()) + model.CPUTime(coll.Len())
		phase2 := 0.0
		for v := 0; v < st.Visited; v++ {
			phase2 += model.ReadTime(descriptor.EncodedSize).Seconds()
		}
		return phase1.Seconds() + phase2 + model.CPUTime(st.Visited).Seconds()
	}
	for _, budget := range []int{0, 30, 100} {
		var recall, secs float64
		name := "exact"
		if budget > 0 {
			name = fmt.Sprintf("visits=%d", budget)
		}
		for qi, q := range queries {
			nb, st, err := va.Search(q, k, vafile.Options{VisitBudget: budget})
			if err != nil {
				return nil, err
			}
			recall += recallOf(qi, nb)
			secs += vaCost(st)
		}
		res.Rows = append(res.Rows, ComparatorRow{
			Method: "va-file",
			Param:  name,
			Recall: recall / float64(len(queries)),
			SimSec: secs / float64(len(queries)),
		})
	}

	// Medrank. Simulated cost: one seek per projection list plus the
	// accessed (projection, id) entries at 8 bytes each, sequentially per
	// list; no full-dimensional distance computations (the property §6
	// highlights).
	lab.Cfg.logf("comparators: Medrank...")
	md, err := medrank.Build(coll, 20, lab.Cfg.Seed)
	if err != nil {
		return nil, err
	}
	var recall, secs float64
	for qi, q := range queries {
		nb, st := md.QueryWithStats(q, k, medrank.Options{})
		recall += recallOf(qi, nb)
		cost := float64(md.Lines())*model.Seek.Seconds() + model.ReadTime(st.Entries*8).Seconds()
		secs += cost
	}
	res.Rows = append(res.Rows, ComparatorRow{
		Method: "medrank",
		Param:  fmt.Sprintf("lines=%d", md.Lines()),
		Recall: recall / float64(len(queries)),
		SimSec: secs / float64(len(queries)),
	})

	// P-Sphere tree. Simulated cost: rank the sphere centers (CPU), then
	// one contiguous read + scan of the chosen sphere. The replication
	// factor is the space price the method pays (§6: "trading off (disk)
	// space for time").
	lab.Cfg.logf("comparators: P-Sphere...")
	centers := len(g.BagChunks)
	ps, err := psphere.Build(coll, psphere.Config{
		Centers:      centers,
		TargetProb:   0.9,
		TrainQueries: 100,
		Seed:         lab.Cfg.Seed,
	})
	if err != nil {
		return nil, err
	}
	recall, secs = 0, 0
	for qi, q := range queries {
		nb, st := ps.Query(q, k)
		recall += recallOf(qi, nb)
		cost := model.CPUTime(ps.Centers()) + model.ReadTime(st.Scanned*descriptor.EncodedSize) + model.CPUTime(st.Scanned)
		secs += cost.Seconds()
	}
	res.Rows = append(res.Rows, ComparatorRow{
		Method: "p-sphere",
		Param:  fmt.Sprintf("m=%d,repl=%.1fx", ps.Centers(), ps.ReplicationFactor()),
		Recall: recall / float64(len(queries)),
		SimSec: secs / float64(len(queries)),
	})

	// LSH (p-stable). Simulated cost: the bucket reads (one seek per
	// table plus the candidate postings) and one random full-vector read
	// + distance per distinct candidate.
	lab.Cfg.logf("comparators: LSH...")
	lx, err := lsh.Build(coll, lsh.Config{Tables: 16, Hashes: 4, Seed: lab.Cfg.Seed})
	if err != nil {
		return nil, err
	}
	recall, secs = 0, 0
	for qi, q := range queries {
		nb, st := lx.Query(q, k, 0)
		recall += recallOf(qi, nb)
		cost := time.Duration(lx.Tables())*model.Seek +
			model.ReadTime(st.Candidates*4) +
			time.Duration(st.Candidates)*model.Seek/8 + // candidates cluster on few pages
			model.CPUTime(st.Candidates)
		secs += cost.Seconds()
	}
	res.Rows = append(res.Rows, ComparatorRow{
		Method: "lsh",
		Param:  fmt.Sprintf("L=%d,k=4", lx.Tables()),
		Recall: recall / float64(len(queries)),
		SimSec: secs / float64(len(queries)),
	})
	return res, nil
}

// Render writes the comparison table.
func (r *ComparatorsResult) Render(w io.Writer) {
	headers := []string{"Method", "Parameter", fmt.Sprintf("Recall@%d", r.K), "Sim time (s)"}
	var rows [][]string
	for _, row := range r.Rows {
		rows = append(rows, []string{
			row.Method, row.Param,
			fmt.Sprintf("%.3f", row.Recall),
			fmt.Sprintf("%.3f", row.SimSec),
		})
	}
	metrics.RenderTable(w, "Extension: related-work comparators on the 2005 cost model ("+r.Workload+")", headers, rows)
}
