// Package experiments contains one driver per table and figure of the
// paper's evaluation (§5), plus the build-time comparison and a set of
// ablations. See DESIGN.md §4 for the experiment index and EXPERIMENTS.md
// for paper-vs-measured results.
package experiments

import (
	"fmt"
	"io"
	"math"
	"os"
	"strconv"
	"time"

	"repro/internal/bag"
	"repro/internal/chunkfile"
	"repro/internal/cluster"
	"repro/internal/descriptor"
	"repro/internal/imagegen"
	"repro/internal/scan"
	"repro/internal/search"
	"repro/internal/simdisk"
	"repro/internal/srtree"
	"repro/internal/vec"
	"repro/internal/workload"
)

// Config scopes an experimental run. The defaults reproduce the paper at
// 1:50 collection scale with the paper's absolute chunk sizes, which keeps
// the per-chunk timing behaviour (Figures 4-7) in the paper's own units.
type Config struct {
	N           int   // collection size (paper: 5,017,298)
	Queries     int   // queries per workload (paper: 1,000)
	K           int   // neighbors, and the quality cutoff (paper: 30)
	Seed        int64 // master seed
	PageSize    int   // chunk file page size
	TargetSizes []int // mean chunk sizes per granularity, ascending (paper: 947/1711/2486)
	Names       []string
	MPI         float64 // BAG maximum possible increment
	Overlap     bool    // overlap I/O and CPU in the simulated pipeline
	SRFanout    int
	Trim        float64   // SQ per-dimension trim (paper: 0.05)
	Log         io.Writer // progress log; nil silences
}

// DefaultConfig returns the standard configuration, honoring the REPRO_N
// and REPRO_QUERIES environment variables.
func DefaultConfig() Config {
	n := envInt("REPRO_N", 100000)
	q := envInt("REPRO_QUERIES", 150)
	return Config{
		N:           n,
		Queries:     q,
		K:           30,
		Seed:        42,
		PageSize:    chunkfile.DefaultPageSize,
		TargetSizes: []int{947, 1711, 2486},
		Names:       []string{"SMALL", "MEDIUM", "LARGE"},
		MPI:         25,
		Overlap:     true,
		SRFanout:    16,
		Trim:        0.05,
	}
}

func envInt(key string, def int) int {
	if s := os.Getenv(key); s != "" {
		if v, err := strconv.Atoi(s); err == nil && v > 0 {
			return v
		}
	}
	return def
}

// Granularity bundles the paper's per-row artifacts: the BAG clustering at
// one threshold, and the SR-tree chunk index built over the same retained
// descriptors with a matched uniform chunk size (§5.2 protocol).
type Granularity struct {
	Name       string
	TargetSize int

	Snap        bag.Snapshot
	RetainedIdx []int                  // indexes into Lab.Coll
	Retained    *descriptor.Collection // the retained subset (ground-truth oracle)

	BagChunks []*cluster.Cluster
	SRChunks  []*cluster.Cluster
	SRLeafCap int

	BagStore *chunkfile.MemStore
	SRStore  *chunkfile.MemStore

	BagBuild time.Duration // cumulative BAG time until this snapshot
	SRBuild  time.Duration
}

// Lab holds everything the experiments share: the collection, the two
// workloads, and one Granularity per target chunk size.
type Lab struct {
	Cfg     Config
	Dataset *imagegen.Dataset
	Coll    *descriptor.Collection
	DQ, SQ  []vec.Vector
	Grans   []Granularity
	Model   *simdisk.Model

	truthCache map[truthKey]*scan.GroundTruth
}

type truthKey struct {
	gran     int
	workload string
}

func (c Config) logf(format string, args ...interface{}) {
	if c.Log != nil {
		fmt.Fprintf(c.Log, format+"\n", args...)
	}
}

// NewLab generates the collection, the workloads and all chunk indexes.
// This is the expensive shared setup; every experiment below consumes it.
func NewLab(cfg Config) (*Lab, error) {
	if len(cfg.TargetSizes) == 0 || len(cfg.TargetSizes) != len(cfg.Names) {
		return nil, fmt.Errorf("experiments: TargetSizes/Names misconfigured")
	}
	for i := 1; i < len(cfg.TargetSizes); i++ {
		if cfg.TargetSizes[i] <= cfg.TargetSizes[i-1] {
			return nil, fmt.Errorf("experiments: TargetSizes must ascend")
		}
	}

	cfg.logf("generating %d descriptors (seed %d)...", cfg.N, cfg.Seed)
	ds, err := imagegen.Generate(imagegen.DefaultConfig(cfg.N, cfg.Seed))
	if err != nil {
		return nil, err
	}
	coll := ds.Collection
	lab := &Lab{
		Cfg:        cfg,
		Dataset:    ds,
		Coll:       coll,
		Model:      simdisk.Default2005(),
		truthCache: map[truthKey]*scan.GroundTruth{},
	}

	cfg.logf("generating workloads (%d queries each)...", cfg.Queries)
	lab.DQ, err = workload.DQ(coll, cfg.Queries, cfg.Seed+1)
	if err != nil {
		return nil, err
	}
	lab.SQ, err = workload.SQ(coll, cfg.Queries, cfg.Trim, cfg.Seed+2)
	if err != nil {
		return nil, err
	}

	// One BAG run, snapshotted at each granularity (paper §5.2: "each
	// clustering was generated from the other in succession").
	bcfg := bag.DefaultConfig(coll.Len(), cfg.TargetSizes...)
	bcfg.MPI = cfg.MPI
	bcfg.Seed = cfg.Seed + 3
	bagStart := time.Now()
	passClock := map[int]time.Duration{}
	bcfg.Progress = func(pass, clusters int) {
		passClock[pass] = time.Since(bagStart)
		if pass%20 == 0 {
			cfg.logf("  bag pass %d: %d clusters (%.1fs)", pass, clusters, time.Since(bagStart).Seconds())
		}
	}
	cfg.logf("running BAG clustering (thresholds %v)...", bcfg.Thresholds)
	snaps, err := bag.Run(coll, bcfg)
	if err != nil {
		return nil, fmt.Errorf("experiments: BAG: %w", err)
	}

	for gi, snap := range snaps {
		g := Granularity{
			Name:       cfg.Names[gi],
			TargetSize: cfg.TargetSizes[gi],
			Snap:       snap,
			BagChunks:  snap.Clusters,
			BagBuild:   passClock[snap.Passes],
		}
		for _, c := range snap.Clusters {
			g.RetainedIdx = append(g.RetainedIdx, c.Members...)
		}
		g.Retained = coll.Subset(g.RetainedIdx)

		// The SR leaf capacity matches the measured mean BAG chunk size,
		// exactly the paper's protocol ("chunks of uniform size roughly
		// equal to the average size of the BAG clusters").
		mean := cluster.Summarize(snap.Clusters).MeanSize
		g.SRLeafCap = int(math.Round(mean))
		if g.SRLeafCap < 1 {
			g.SRLeafCap = 1
		}
		srStart := time.Now()
		tree, err := srtree.Build(coll, g.RetainedIdx, g.SRLeafCap, cfg.SRFanout)
		if err != nil {
			return nil, err
		}
		g.SRChunks = tree.Chunks()
		g.SRBuild = time.Since(srStart)

		g.BagStore = chunkfile.NewMemStore(coll, g.BagChunks, cfg.PageSize)
		g.SRStore = chunkfile.NewMemStore(coll, g.SRChunks, cfg.PageSize)
		lab.Grans = append(lab.Grans, g)
		cfg.logf("granularity %s: bag %d chunks (mean %.0f), sr %d chunks (cap %d), outliers %.1f%%",
			g.Name, len(g.BagChunks), mean, len(g.SRChunks), g.SRLeafCap, snap.OutlierFraction()*100)
	}
	return lab, nil
}

// Truth returns (building on first use) the exact top-K ground truth for
// the given granularity and workload, computed by sequential scan over the
// retained subset (§5.4).
func (l *Lab) Truth(gran int, name string, queries []vec.Vector) *scan.GroundTruth {
	key := truthKey{gran, name}
	if gt, ok := l.truthCache[key]; ok {
		return gt
	}
	l.Cfg.logf("computing ground truth (%s, %s)...", l.Grans[gran].Name, name)
	gt := scan.Compute(l.Grans[gran].Retained, queries, l.Cfg.K)
	l.truthCache[key] = gt
	return gt
}

// Workloads returns the paper's two workloads in presentation order.
func (l *Lab) Workloads() []NamedWorkload {
	return []NamedWorkload{{"DQ", l.DQ}, {"SQ", l.SQ}}
}

// NamedWorkload pairs a workload with its paper name.
type NamedWorkload struct {
	Name    string
	Queries []vec.Vector
}

// Strategy identifies one chunk-forming strategy of a granularity.
type Strategy struct {
	Name  string
	Store chunkfile.Store
}

// Strategies returns the two paper strategies for granularity gi.
func (l *Lab) Strategies(gi int) []Strategy {
	g := l.Grans[gi]
	return []Strategy{
		{"BAG", g.BagStore},
		{"SR", g.SRStore},
	}
}

// searcher builds a Searcher with the lab's model.
func (l *Lab) searcher(store chunkfile.Store) *search.Searcher {
	return search.New(store, l.Model)
}
