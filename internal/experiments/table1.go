package experiments

import (
	"fmt"
	"io"
	"math"

	"repro/internal/cluster"
	"repro/internal/metrics"
)

// Table1Row is one granularity row of the paper's Table 1 ("Properties of
// the BAG and SR-tree chunk indexes").
type Table1Row struct {
	Name        string
	Retained    int
	Discarded   int
	OutlierPct  float64
	BagChunks   int
	BagPerChunk float64
	SRChunks    int
	SRPerChunk  float64
}

// Table1Result reproduces Table 1.
type Table1Result struct {
	Rows []Table1Row
}

// Table1 measures the chunk index properties of every granularity.
func Table1(lab *Lab) *Table1Result {
	res := &Table1Result{}
	for _, g := range lab.Grans {
		bs := cluster.Summarize(g.BagChunks)
		ss := cluster.Summarize(g.SRChunks)
		res.Rows = append(res.Rows, Table1Row{
			Name:        g.Name,
			Retained:    bs.Descriptors,
			Discarded:   len(g.Snap.Outliers),
			OutlierPct:  g.Snap.OutlierFraction() * 100,
			BagChunks:   bs.Count,
			BagPerChunk: bs.MeanSize,
			SRChunks:    ss.Count,
			SRPerChunk:  ss.MeanSize,
		})
	}
	return res
}

// Render writes the table in the paper's layout.
func (r *Table1Result) Render(w io.Writer) {
	headers := []string{"Chunk sizes", "Retained", "Discarded", "Outliers%", "BAG chunks", "BAG desc/chunk", "SR chunks", "SR desc/chunk"}
	var rows [][]string
	for _, row := range r.Rows {
		rows = append(rows, []string{
			row.Name,
			fmt.Sprintf("%d", row.Retained),
			fmt.Sprintf("%d", row.Discarded),
			fmt.Sprintf("%.1f", row.OutlierPct),
			fmt.Sprintf("%d", row.BagChunks),
			fmt.Sprintf("%.0f", row.BagPerChunk),
			fmt.Sprintf("%d", row.SRChunks),
			fmt.Sprintf("%.0f", row.SRPerChunk),
		})
	}
	metrics.RenderTable(w, "Table 1: Properties of the BAG and SR-tree chunk indexes", headers, rows)
}

// Figure1Result reproduces Figure 1 ("Size of the largest chunks"): the
// populations of the 30 largest chunks of each of the six indexes.
type Figure1Result struct {
	TopN   int
	Series map[string][]float64 // e.g. "BAG / SMALL" -> sizes by rank
	Order  []string
}

// Figure1 measures the largest-chunk size distributions.
func Figure1(lab *Lab, topN int) *Figure1Result {
	if topN <= 0 {
		topN = 30
	}
	res := &Figure1Result{TopN: topN, Series: map[string][]float64{}}
	add := func(name string, cs []*cluster.Cluster) {
		sizes := cluster.LargestSizes(cs, topN)
		ys := make([]float64, len(sizes))
		for i, s := range sizes {
			ys[i] = float64(s)
		}
		res.Series[name] = ys
		res.Order = append(res.Order, name)
	}
	for _, g := range lab.Grans {
		add("BAG / "+g.Name, g.BagChunks)
	}
	for _, g := range lab.Grans {
		add("SR / "+g.Name, g.SRChunks)
	}
	return res
}

// Render writes the series columns (chunk rank vs size).
func (r *Figure1Result) Render(w io.Writer) {
	xs := make([]float64, r.TopN)
	for i := range xs {
		xs[i] = float64(i + 1)
	}
	metrics.RenderSeries(w, "Figure 1: Size of the largest chunks (descriptors)", "rank", xs, r.Order, r.Series)
	metrics.Plot(w, "Figure 1 (log-size shape)", xs, r.Order, logSeries(r.Series), false)
}

func logSeries(in map[string][]float64) map[string][]float64 {
	out := make(map[string][]float64, len(in))
	for k, ys := range in {
		ls := make([]float64, len(ys))
		for i, y := range ys {
			if y > 0 {
				ls[i] = math.Log10(y)
			}
		}
		out[k] = ls
	}
	return out
}
