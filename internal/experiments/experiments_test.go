package experiments

import (
	"bytes"
	"math"
	"strings"
	"sync"
	"testing"
)

// tinyConfig keeps the full experiment pipeline fast enough for unit
// testing while preserving every code path.
func tinyConfig() Config {
	cfg := DefaultConfig()
	cfg.N = 6000
	cfg.Queries = 8
	cfg.K = 10
	cfg.TargetSizes = []int{100, 200}
	cfg.Names = []string{"SMALL", "LARGE"}
	return cfg
}

var (
	tinyOnce sync.Once
	tinyLab  *Lab
	tinyErr  error
)

func getLab(t testing.TB) *Lab {
	tinyOnce.Do(func() {
		tinyLab, tinyErr = NewLab(tinyConfig())
	})
	if tinyErr != nil {
		t.Fatal(tinyErr)
	}
	return tinyLab
}

func TestNewLabShape(t *testing.T) {
	lab := getLab(t)
	if len(lab.Grans) != 2 {
		t.Fatalf("granularities = %d", len(lab.Grans))
	}
	for _, g := range lab.Grans {
		if len(g.BagChunks) == 0 || len(g.SRChunks) == 0 {
			t.Fatalf("%s: missing chunks", g.Name)
		}
		if g.Retained.Len() != len(g.RetainedIdx) {
			t.Fatalf("%s: retained mismatch", g.Name)
		}
		if g.SRLeafCap < 1 {
			t.Fatalf("%s: leaf cap %d", g.Name, g.SRLeafCap)
		}
		// Retained set + outliers = collection.
		if g.Retained.Len()+len(g.Snap.Outliers) != lab.Coll.Len() {
			t.Fatalf("%s: retained %d + outliers %d != %d",
				g.Name, g.Retained.Len(), len(g.Snap.Outliers), lab.Coll.Len())
		}
	}
	if len(lab.DQ) != 8 || len(lab.SQ) != 8 {
		t.Fatalf("workload sizes %d/%d", len(lab.DQ), len(lab.SQ))
	}
}

func TestNewLabValidation(t *testing.T) {
	cfg := tinyConfig()
	cfg.TargetSizes = []int{200, 100}
	if _, err := NewLab(cfg); err == nil {
		t.Fatal("descending target sizes accepted")
	}
	cfg = tinyConfig()
	cfg.Names = []string{"ONLY"}
	if _, err := NewLab(cfg); err == nil {
		t.Fatal("mismatched names accepted")
	}
}

func TestTable1(t *testing.T) {
	lab := getLab(t)
	res := Table1(lab)
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	for _, row := range res.Rows {
		if row.Retained <= 0 || row.BagChunks <= 0 || row.SRChunks <= 0 {
			t.Fatalf("degenerate row %+v", row)
		}
		if row.OutlierPct < 0 || row.OutlierPct > 50 {
			t.Fatalf("outlier pct %v", row.OutlierPct)
		}
		// The SR chunk count must be close to the BAG chunk count since
		// the leaf capacity matches the BAG mean (Table 1's key property).
		ratio := float64(row.SRChunks) / float64(row.BagChunks)
		if ratio < 0.5 || ratio > 2.0 {
			t.Fatalf("SR chunks %d vs BAG chunks %d", row.SRChunks, row.BagChunks)
		}
	}
	// Coarser granularity ⇒ fewer chunks.
	if res.Rows[1].BagChunks >= res.Rows[0].BagChunks {
		t.Fatalf("chunk counts not decreasing: %d -> %d", res.Rows[0].BagChunks, res.Rows[1].BagChunks)
	}
	var buf bytes.Buffer
	res.Render(&buf)
	if !strings.Contains(buf.String(), "Table 1") {
		t.Fatal("render missing title")
	}
}

func TestFigure1(t *testing.T) {
	lab := getLab(t)
	res := Figure1(lab, 10)
	if len(res.Order) != 4 {
		t.Fatalf("series = %d", len(res.Order))
	}
	for name, ys := range res.Series {
		for i := 1; i < len(ys); i++ {
			if ys[i] > ys[i-1] {
				t.Fatalf("%s: sizes not descending", name)
			}
		}
	}
	// BAG's largest chunk should exceed SR's largest (uniform) chunk.
	if res.Series["BAG / SMALL"][0] <= res.Series["SR / SMALL"][0] {
		t.Fatalf("BAG largest %v <= SR largest %v",
			res.Series["BAG / SMALL"][0], res.Series["SR / SMALL"][0])
	}
	var buf bytes.Buffer
	res.Render(&buf)
	if buf.Len() == 0 {
		t.Fatal("empty render")
	}
}

func TestFigure23And45(t *testing.T) {
	lab := getLab(t)
	for _, wl := range []string{"DQ", "SQ"} {
		chunks, err := Figure23(lab, wl)
		if err != nil {
			t.Fatal(err)
		}
		times, err := Figure45(lab, wl)
		if err != nil {
			t.Fatal(err)
		}
		if len(chunks.Order) != 4 || len(times.Order) != 4 {
			t.Fatalf("%s: series %d/%d", wl, len(chunks.Order), len(times.Order))
		}
		for name, ys := range chunks.Series {
			prev := 0.0
			for i, y := range ys {
				if math.IsNaN(y) {
					continue
				}
				if y < prev {
					t.Fatalf("%s %s: chunks-to-find not monotone at %d", wl, name, i)
				}
				prev = y
			}
		}
	}
	bad, err := Figure23(lab, "XX")
	if err == nil || bad != nil {
		t.Fatal("unknown workload accepted")
	}
}

// The paper's headline DQ results: BAG needs fewer chunks than SR for the
// same neighbor count (Figure 2).
func TestFigure2BagNeedsFewerChunks(t *testing.T) {
	lab := getLab(t)
	res, err := Figure23(lab, "DQ")
	if err != nil {
		t.Fatal(err)
	}
	name := lab.Grans[0].Name
	bagC := res.Series["BAG / "+name]
	srC := res.Series["SR / "+name]
	mid := lab.Cfg.K / 2
	if math.IsNaN(bagC[mid]) || math.IsNaN(srC[mid]) {
		t.Skip("mid-curve NaN at tiny scale")
	}
	if bagC[mid] > srC[mid]*1.5 {
		t.Fatalf("BAG chunks %v ≫ SR chunks %v at n=%d: paper's Figure 2 inverted", bagC[mid], srC[mid], mid+1)
	}
}

func TestTable2(t *testing.T) {
	lab := getLab(t)
	res, err := Table2(lab)
	if err != nil {
		t.Fatal(err)
	}
	for _, g := range res.Grans {
		for _, st := range []string{"BAG", "SR"} {
			for _, wl := range []string{"DQ", "SQ"} {
				if res.Seconds[g][st][wl] <= 0 {
					t.Fatalf("%s/%s/%s: nonpositive time", g, st, wl)
				}
			}
		}
	}
	var buf bytes.Buffer
	res.Render(&buf)
	if !strings.Contains(buf.String(), "Table 2") {
		t.Fatal("render missing title")
	}
}

func TestFigure67(t *testing.T) {
	lab := getLab(t)
	sizes := []int{50, 200, 800}
	res, err := Figure67(lab, "DQ", sizes, []int{1, 5, 10})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.ChunkSizes) != 3 || len(res.Order) != 3 {
		t.Fatalf("shape %d/%d", len(res.ChunkSizes), len(res.Order))
	}
	for name, ys := range res.Series {
		if len(ys) != 3 {
			t.Fatalf("%s: %d points", name, len(ys))
		}
	}
	var buf bytes.Buffer
	res.Render(&buf)
	if buf.Len() == 0 {
		t.Fatal("empty render")
	}
}

func TestChunkSizeSweep(t *testing.T) {
	sw := ChunkSizeSweep(16, 100, 100000, 10000000)
	if len(sw) != 16 || sw[0] != 100 || sw[15] != 100000 {
		t.Fatalf("sweep = %v", sw)
	}
	for i := 1; i < len(sw); i++ {
		if sw[i] <= sw[i-1] {
			t.Fatalf("sweep not increasing: %v", sw)
		}
	}
	clipped := ChunkSizeSweep(5, 100, 100000, 1000)
	for _, s := range clipped {
		if s > 500 {
			t.Fatalf("sweep not clipped: %v", clipped)
		}
	}
}

func TestBuildTime(t *testing.T) {
	lab := getLab(t)
	res := BuildTime(lab)
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	for _, row := range res.Rows {
		if row.SRBuild <= 0 || row.BagBuild <= 0 {
			t.Fatalf("missing build times: %+v", row)
		}
		// The paper's asymmetry: BAG is far slower to build than SR.
		if row.BagBuild < row.SRBuild {
			t.Fatalf("%s: BAG build %v faster than SR %v", row.Name, row.BagBuild, row.SRBuild)
		}
	}
	var buf bytes.Buffer
	res.Render(&buf)
	if buf.Len() == 0 {
		t.Fatal("empty render")
	}
}

func TestAblationOverlap(t *testing.T) {
	lab := getLab(t)
	res, err := AblationOverlap(lab)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range res.Rows {
		if row.OverlapSec > row.SerialSec {
			t.Fatalf("%s: overlap slower than serial", row.Index)
		}
	}
	var buf bytes.Buffer
	res.Render(&buf)
	if buf.Len() == 0 {
		t.Fatal("empty render")
	}
}

func TestAblationStrategies(t *testing.T) {
	lab := getLab(t)
	res, err := AblationStrategies(lab)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Chunks.Order) != 4 {
		t.Fatalf("strategies = %v", res.Chunks.Order)
	}
	// Round-robin must be the worst on the chunks-to-find axis at the
	// midpoint: its chunks carry no locality at all.
	mid := lab.Cfg.K/2 - 1
	rr := res.Chunks.Series["RR"][mid]
	bag := res.Chunks.Series["BAG"][mid]
	if !math.IsNaN(rr) && !math.IsNaN(bag) && rr < bag {
		t.Fatalf("round-robin (%v) beat BAG (%v) on chunks-to-find", rr, bag)
	}
	var buf bytes.Buffer
	res.Render(&buf)
	if buf.Len() == 0 {
		t.Fatal("empty render")
	}
}

func TestAblationNaiveBag(t *testing.T) {
	lab := getLab(t)
	res, err := AblationNaiveBag(lab, 1500)
	if err != nil {
		t.Fatal(err)
	}
	if res.NaiveClusters == 0 || res.AccelClusters == 0 {
		t.Fatal("degenerate clusterings")
	}
	ratio := float64(res.AccelClusters) / float64(res.NaiveClusters)
	if ratio < 0.25 || ratio > 4 {
		t.Fatalf("cluster counts diverge: %d vs %d", res.NaiveClusters, res.AccelClusters)
	}
	var buf bytes.Buffer
	res.Render(&buf)
	if buf.Len() == 0 {
		t.Fatal("empty render")
	}
}

func TestAblationNormOutlier(t *testing.T) {
	lab := getLab(t)
	res, err := AblationNormOutlier(lab)
	if err != nil {
		t.Fatal(err)
	}
	if res.NormRetained <= 0 {
		t.Fatal("nothing retained")
	}
	if len(res.Curves.Order) != 2 {
		t.Fatalf("curves = %v", res.Curves.Order)
	}
	var buf bytes.Buffer
	res.Render(&buf)
	if buf.Len() == 0 {
		t.Fatal("empty render")
	}
}

func TestComparators(t *testing.T) {
	lab := getLab(t)
	res, err := Comparators(lab)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) < 7 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	for _, row := range res.Rows {
		if row.Recall < 0 || row.Recall > 1 {
			t.Fatalf("%s %s: recall %v", row.Method, row.Param, row.Recall)
		}
		if row.SimSec <= 0 {
			t.Fatalf("%s %s: sim time %v", row.Method, row.Param, row.SimSec)
		}
	}
	// The exact VA-file must reach full recall.
	for _, row := range res.Rows {
		if row.Method == "va-file" && row.Param == "exact" && row.Recall < 0.999 {
			t.Fatalf("exact VA-file recall %v", row.Recall)
		}
	}
	var buf bytes.Buffer
	res.Render(&buf)
	if buf.Len() == 0 {
		t.Fatal("empty render")
	}
}

func TestLessons(t *testing.T) {
	lab := getLab(t)
	res, err := Lessons(lab)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Lessons) != 4 {
		t.Fatalf("lessons = %d", len(res.Lessons))
	}
	for _, l := range res.Lessons {
		if l.Evidence == "" || l.Statement == "" {
			t.Fatalf("lesson %d incomplete", l.Number)
		}
	}
	// At tiny test scale individual lessons may not all hold; lesson 1
	// (approximation saves time) must hold at any scale.
	if !res.Lessons[0].Holds {
		t.Fatalf("lesson 1 failed: %s", res.Lessons[0].Evidence)
	}
	var buf bytes.Buffer
	res.Render(&buf)
	if !strings.Contains(buf.String(), "lessons") {
		t.Fatal("render missing title")
	}
}
