package experiments

import (
	"fmt"
	"io"

	"repro/internal/metrics"
)

// Lesson is one of the paper's §5.7 conclusions, checked against this
// run's measurements.
type Lesson struct {
	Number    int
	Statement string
	Evidence  string
	Holds     bool
}

// LessonsResult verifies the paper's four lessons programmatically — the
// reproduction's bottom line.
type LessonsResult struct {
	Lessons []Lesson
}

// Lessons evaluates all four §5.7 lessons on the lab.
func Lessons(lab *Lab) (*LessonsResult, error) {
	res := &LessonsResult{}
	k := lab.Cfg.K

	// Lesson 1: "relaxing the requirements for precise answers may yield
	// significant improvements in response time" — most of the top-k is
	// found in a small fraction of the completion time.
	fig4, err := Figure45(lab, "DQ")
	if err != nil {
		return nil, err
	}
	t2, err := Table2(lab)
	if err != nil {
		return nil, err
	}
	srName := "SR / " + lab.Grans[0].Name
	mostOfK := fig4.Series[srName][k*4/5-1] // time to 80% of the true top-k
	completion := t2.Seconds[lab.Grans[0].Name]["SR"]["DQ"]
	res.Lessons = append(res.Lessons, Lesson{
		Number:    1,
		Statement: "Relaxing exactness yields large response-time savings",
		Evidence: fmt.Sprintf("80%% of the true top-%d in %.3fs vs %.3fs to completion (%.0f%% saved)",
			k, mostOfK, completion, (1-mostOfK/completion)*100),
		Holds: mostOfK < completion/2,
	})

	// Lesson 2: "elapsed time is a more natural stop rule than the number
	// of chunks read" — chunk counts map to wildly different times across
	// indexes (variable chunk sizes), time maps to itself.
	fig2, err := Figure23(lab, "DQ")
	if err != nil {
		return nil, err
	}
	bagName := "BAG / " + lab.Grans[0].Name
	bagChunks := fig2.Series[bagName][k/2-1]
	srChunks := fig2.Series[srName][k/2-1]
	bagTime := fig4.Series[bagName][k/2-1]
	srTime := fig4.Series[srName][k/2-1]
	chunkSpread := ratioSpread(bagChunks, srChunks)
	timeSpread := ratioSpread(bagTime, srTime)
	res.Lessons = append(res.Lessons, Lesson{
		Number:    2,
		Statement: "Elapsed time is the more natural stop rule than chunk count",
		Evidence: fmt.Sprintf("same quality needs %.1fx different chunk budgets across indexes but only %.2fx different time budgets",
			chunkSpread, timeSpread),
		Holds: chunkSpread > timeSpread,
	})

	// Lesson 3: "not necessary to make all chunks the exact same size,
	// but rather to avoid very small and very large chunks" — the
	// chunk-size sweep has a broad flat middle.
	sweep, err := Figure67(lab, "DQ", nil, []int{k})
	if err != nil {
		return nil, err
	}
	ys := sweep.Series[fmt.Sprintf("%d neighbors", k)]
	lo, hi, mid := ys[0], ys[len(ys)-1], minOf(ys)
	res.Lessons = append(res.Lessons, Lesson{
		Number:    3,
		Statement: "A wide range of chunk sizes performs similarly; only the extremes hurt",
		Evidence: fmt.Sprintf("time to %d neighbors: %.3fs at size %d, %.3fs at the plateau, %.3fs at size %d",
			k, lo, sweep.ChunkSizes[0], mid, hi, sweep.ChunkSizes[len(sweep.ChunkSizes)-1]),
		Holds: lo > 1.5*mid && hi > 1.2*mid,
	})

	// Lesson 4: "the energy spent on creating dense chunks is largely
	// wasted" — SR matches or beats BAG on the time axis for early
	// results while costing orders of magnitude less to build.
	bt := BuildTime(lab)
	buildRatio := bt.Rows[0].Ratio
	earlyBag := fig4.Series[bagName][k/3-1]
	earlySR := fig4.Series[srName][k/3-1]
	res.Lessons = append(res.Lessons, Lesson{
		Number:    4,
		Statement: "Chunk-forming must prioritize size first; dense clustering is wasted energy",
		Evidence: fmt.Sprintf("BAG costs %.0fx more to build yet SR reaches %d neighbors in %.3fs vs BAG's %.3fs",
			buildRatio, k/3, earlySR, earlyBag),
		Holds: buildRatio > 10 && earlySR <= earlyBag*1.05,
	})
	return res, nil
}

func ratioSpread(a, b float64) float64 {
	if a == 0 || b == 0 {
		return 0
	}
	if a < b {
		a, b = b, a
	}
	return a / b
}

func minOf(xs []float64) float64 {
	m := xs[0]
	for _, x := range xs {
		if x < m {
			m = x
		}
	}
	return m
}

// Render writes the verdicts.
func (r *LessonsResult) Render(w io.Writer) {
	headers := []string{"Lesson", "Holds", "Statement", "Evidence"}
	var rows [][]string
	for _, l := range r.Lessons {
		verdict := "yes"
		if !l.Holds {
			verdict = "NO"
		}
		rows = append(rows, []string{
			fmt.Sprintf("%d", l.Number), verdict, l.Statement, l.Evidence,
		})
	}
	metrics.RenderTable(w, "The paper's four lessons (§5.7), checked against this run", headers, rows)
}
