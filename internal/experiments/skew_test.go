package experiments

import (
	"bytes"
	"strings"
	"testing"
)

// TestSkewShape runs the skew study on the tiny lab and pins its
// structure: the four (layout × spread) cells in order, positive
// simulated times with the p99 at or above the mean (nearest-rank on a
// small workload), a billed split only where the spread estimator runs,
// and a rendering with one line per cell.
func TestSkewShape(t *testing.T) {
	lab := getLab(t)
	res, err := Skew(lab)
	if err != nil {
		t.Fatal(err)
	}
	if res.Shards != skewShards || res.Replication != skewReplication || res.ZipfS != skewZipfS {
		t.Fatalf("study parameters: %+v", res)
	}
	if len(res.Rows) != 4 {
		t.Fatalf("rows = %d, want 4", len(res.Rows))
	}
	wantCells := []struct {
		layout string
		spread bool
	}{
		{"byte-balanced", false},
		{"byte-balanced", true},
		{"heat-balanced", false},
		{"heat-balanced", true},
	}
	for i, row := range res.Rows {
		if row.Layout != wantCells[i].layout || row.Spread != wantCells[i].spread {
			t.Fatalf("row %d is (%s, %v), want (%s, %v)",
				i, row.Layout, row.Spread, wantCells[i].layout, wantCells[i].spread)
		}
		if row.P99Sec <= 0 || row.MeanSec <= 0 {
			t.Fatalf("row %d: non-positive simulated times %+v", i, row)
		}
		if row.P99Sec < row.MeanSec {
			t.Fatalf("row %d: p99 %g below mean %g", i, row.P99Sec, row.MeanSec)
		}
		if !row.Spread && row.BilledStddev != 0 {
			t.Fatalf("row %d: spread-off cell has billed split %g", i, row.BilledStddev)
		}
		if row.ReadsStddev < 0 || row.BilledStddev < 0 {
			t.Fatalf("row %d: negative stddev %+v", i, row)
		}
	}

	var buf bytes.Buffer
	res.Render(&buf)
	out := buf.String()
	if !strings.Contains(out, "Skew study") {
		t.Fatalf("render missing header:\n%s", out)
	}
	if got := strings.Count(out, "balanced"); got != 4 {
		t.Fatalf("render has %d cell rows, want 4:\n%s", got, out)
	}
}
