package experiments

import (
	"fmt"
	"io"

	"repro/internal/metrics"
	"repro/internal/vec"
)

// CurveResult holds one of Figures 2-5: for every index (strategy ×
// granularity), entry n-1 of the series is the average cost (chunks read
// or elapsed seconds) of finding the n-th true neighbor.
type CurveResult struct {
	Title    string
	Workload string
	YLabel   string
	K        int
	Series   map[string][]float64
	Order    []string
}

// Figure23 reproduces Figure 2 (workload "DQ") or Figure 3 (workload
// "SQ"): chunks read to find nearest neighbors.
func Figure23(lab *Lab, workloadName string) (*CurveResult, error) {
	return curves(lab, workloadName, false)
}

// Figure45 reproduces Figure 4 (workload "DQ") or Figure 5 (workload
// "SQ"): elapsed time to find nearest neighbors.
func Figure45(lab *Lab, workloadName string) (*CurveResult, error) {
	return curves(lab, workloadName, true)
}

func curves(lab *Lab, workloadName string, timeAxis bool) (*CurveResult, error) {
	queries, err := lab.workloadByName(workloadName)
	if err != nil {
		return nil, err
	}
	res := &CurveResult{
		Workload: workloadName,
		K:        lab.Cfg.K,
		Series:   map[string][]float64{},
	}
	if timeAxis {
		res.YLabel = "wall time (simulated seconds)"
		if workloadName == "DQ" {
			res.Title = "Figure 4: Elapsed time required to find nearest neighbors (DQ)"
		} else {
			res.Title = "Figure 5: Elapsed time required to find nearest neighbors (SQ)"
		}
	} else {
		res.YLabel = "chunks read"
		if workloadName == "DQ" {
			res.Title = "Figure 2: Number of chunks required to find nearest neighbors (DQ)"
		} else {
			res.Title = "Figure 3: Number of chunks required to find nearest neighbors (SQ)"
		}
	}
	for gi, g := range lab.Grans {
		gt := lab.Truth(gi, workloadName, queries)
		for _, st := range lab.Strategies(gi) {
			name := st.Name + " / " + g.Name
			traces, err := lab.runTraces(st.Store, queries, gt)
			if err != nil {
				return nil, err
			}
			if timeAxis {
				res.Series[name] = metrics.TimeToFind(traces, lab.Cfg.K)
			} else {
				res.Series[name] = metrics.ChunksToFind(traces, lab.Cfg.K)
			}
			res.Order = append(res.Order, name)
		}
	}
	return res, nil
}

func (l *Lab) workloadByName(name string) ([]vec.Vector, error) {
	switch name {
	case "DQ":
		return l.DQ, nil
	case "SQ":
		return l.SQ, nil
	}
	return nil, fmt.Errorf("experiments: unknown workload %q", name)
}

// Render writes the curve columns and an ASCII sketch.
func (r *CurveResult) Render(w io.Writer) {
	xs := make([]float64, r.K)
	for i := range xs {
		xs[i] = float64(i + 1)
	}
	metrics.RenderSeries(w, r.Title, "neighbors found", xs, r.Order, r.Series)
	metrics.Plot(w, r.Title+" ["+r.YLabel+"]", xs, r.Order, r.Series, false)
}

// Table2Result reproduces Table 2 ("Time to completion"): the average
// simulated seconds of exact searches, per granularity, strategy and
// workload.
type Table2Result struct {
	// Seconds[granularity][strategy][workload]
	Seconds map[string]map[string]map[string]float64
	Chunks  map[string]map[string]map[string]float64
	Grans   []string
}

// Table2 measures exact-search completion times.
func Table2(lab *Lab) (*Table2Result, error) {
	res := &Table2Result{
		Seconds: map[string]map[string]map[string]float64{},
		Chunks:  map[string]map[string]map[string]float64{},
	}
	for gi, g := range lab.Grans {
		res.Grans = append(res.Grans, g.Name)
		res.Seconds[g.Name] = map[string]map[string]float64{}
		res.Chunks[g.Name] = map[string]map[string]float64{}
		for _, st := range lab.Strategies(gi) {
			res.Seconds[g.Name][st.Name] = map[string]float64{}
			res.Chunks[g.Name][st.Name] = map[string]float64{}
			for _, wl := range lab.Workloads() {
				gt := lab.Truth(gi, wl.Name, wl.Queries)
				traces, err := lab.runTraces(st.Store, wl.Queries, gt)
				if err != nil {
					return nil, err
				}
				res.Seconds[g.Name][st.Name][wl.Name] = metrics.MeanCompletion(traces)
				res.Chunks[g.Name][st.Name][wl.Name] = metrics.MeanChunksRead(traces)
			}
		}
	}
	return res, nil
}

// Render writes the table in the paper's layout (BAG DQ/SQ then SR DQ/SQ).
func (r *Table2Result) Render(w io.Writer) {
	headers := []string{"Chunk sizes", "BAG DQ", "BAG SQ", "SR DQ", "SR SQ"}
	var rows [][]string
	for _, g := range r.Grans {
		rows = append(rows, []string{
			g,
			fmt.Sprintf("%.2f", r.Seconds[g]["BAG"]["DQ"]),
			fmt.Sprintf("%.2f", r.Seconds[g]["BAG"]["SQ"]),
			fmt.Sprintf("%.2f", r.Seconds[g]["SR"]["DQ"]),
			fmt.Sprintf("%.2f", r.Seconds[g]["SR"]["SQ"]),
		})
	}
	metrics.RenderTable(w, "Table 2: Time to completion (simulated seconds)", headers, rows)
}
