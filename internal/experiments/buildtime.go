package experiments

import (
	"fmt"
	"io"
	"time"

	"repro/internal/metrics"
)

// BuildTimeResult reproduces the §5.2 build-cost narrative: BAG took
// "almost 12 days" while the SR-tree took two to three hours. The absolute
// numbers scale with the collection; the asymmetry is the result.
type BuildTimeResult struct {
	Rows []BuildTimeRow
}

// BuildTimeRow is one granularity's build cost pair.
type BuildTimeRow struct {
	Name     string
	BagBuild time.Duration
	SRBuild  time.Duration
	Ratio    float64
}

// BuildTime reports the build times the lab recorded.
func BuildTime(lab *Lab) *BuildTimeResult {
	res := &BuildTimeResult{}
	for _, g := range lab.Grans {
		ratio := 0.0
		if g.SRBuild > 0 {
			ratio = float64(g.BagBuild) / float64(g.SRBuild)
		}
		res.Rows = append(res.Rows, BuildTimeRow{
			Name:     g.Name,
			BagBuild: g.BagBuild,
			SRBuild:  g.SRBuild,
			Ratio:    ratio,
		})
	}
	return res
}

// Render writes the build-time comparison.
func (r *BuildTimeResult) Render(w io.Writer) {
	headers := []string{"Chunk sizes", "BAG build", "SR-tree build", "BAG/SR ratio"}
	var rows [][]string
	for _, row := range r.Rows {
		rows = append(rows, []string{
			row.Name,
			row.BagBuild.Round(time.Millisecond).String(),
			row.SRBuild.Round(time.Millisecond).String(),
			fmt.Sprintf("%.0fx", row.Ratio),
		})
	}
	metrics.RenderTable(w, "Build time: BAG clustering vs SR-tree bulk load (paper: ~12 days vs ~2-3 hours)", headers, rows)
}
