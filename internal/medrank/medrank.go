// Package medrank implements Medrank (Fagin, Kumar & Sivakumar, SIGMOD
// 2003), the rank-aggregation approximate NN search the paper's related
// work highlights (§6): all descriptors are projected onto a set of
// random lines; at query time the database elements are ranked by the
// proximity of their projections to the query's projection, and the
// element with the best median rank is, with high probability, the true
// nearest neighbor.
//
// The attraction the paper notes is that the algorithm is I/O bound (and
// I/O optimal): the query walks m sorted projection lists outward from
// the query's position and never computes a full-dimensional distance.
package medrank

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"repro/internal/descriptor"
	"repro/internal/knn"
	"repro/internal/vec"
)

// Index holds the sorted projections of a collection onto m random lines.
type Index struct {
	coll *descriptor.Collection
	dirs []vec.Vector
	// order[l] lists collection positions sorted by projection onto line
	// l; proj[l] holds the matching projection values (same order).
	order [][]int32
	proj  [][]float32
}

// Build projects the collection onto m random unit vectors (deterministic
// for a seed) and sorts each projection list.
func Build(coll *descriptor.Collection, m int, seed int64) (*Index, error) {
	if m < 1 {
		return nil, fmt.Errorf("medrank: need at least one line, got %d", m)
	}
	if coll.Len() == 0 {
		return nil, fmt.Errorf("medrank: empty collection")
	}
	r := rand.New(rand.NewSource(seed))
	dims := coll.Dims()
	ix := &Index{coll: coll}
	for l := 0; l < m; l++ {
		dir := make(vec.Vector, dims)
		var norm float64
		for d := range dir {
			x := r.NormFloat64()
			dir[d] = float32(x)
			norm += x * x
		}
		norm = math.Sqrt(norm)
		for d := range dir {
			dir[d] = float32(float64(dir[d]) / norm)
		}
		ix.dirs = append(ix.dirs, dir)

		n := coll.Len()
		ord := make([]int32, n)
		prj := make([]float32, n)
		vals := make([]float32, n)
		for i := 0; i < n; i++ {
			ord[i] = int32(i)
			vals[i] = project(coll.Vec(i), dir)
		}
		sort.Slice(ord, func(a, b int) bool { return vals[ord[a]] < vals[ord[b]] })
		for i, o := range ord {
			prj[i] = vals[o]
		}
		ix.order = append(ix.order, ord)
		ix.proj = append(ix.proj, prj)
	}
	return ix, nil
}

// Lines returns the number of projection lines.
func (ix *Index) Lines() int { return len(ix.dirs) }

func project(v, dir vec.Vector) float32 {
	var s float64
	for d := range v {
		s += float64(v[d]) * float64(dir[d])
	}
	return float32(s)
}

// cursor walks one sorted projection list outward from the query's
// position, yielding collection positions by increasing projection
// distance.
type cursor struct {
	order []int32
	proj  []float32
	q     float32
	lo    int // next candidate below (inclusive)
	hi    int // next candidate above (inclusive)
}

func newCursor(order []int32, proj []float32, q float32) *cursor {
	hi := sort.Search(len(proj), func(i int) bool { return proj[i] >= q })
	return &cursor{order: order, proj: proj, q: q, lo: hi - 1, hi: hi}
}

// next returns the next nearest position on this line, or -1 when the
// line is exhausted.
func (c *cursor) next() int32 {
	switch {
	case c.lo < 0 && c.hi >= len(c.order):
		return -1
	case c.lo < 0:
		p := c.order[c.hi]
		c.hi++
		return p
	case c.hi >= len(c.order):
		p := c.order[c.lo]
		c.lo--
		return p
	default:
		dLo := c.q - c.proj[c.lo]
		dHi := c.proj[c.hi] - c.q
		if dLo <= dHi {
			p := c.order[c.lo]
			c.lo--
			return p
		}
		p := c.order[c.hi]
		c.hi++
		return p
	}
}

// Options tunes a Medrank query.
type Options struct {
	// MinFrac is the fraction of lines an element must have appeared on
	// to be emitted (the median rank criterion). 0 means 0.5.
	MinFrac float64
	// MaxSteps bounds the cursor steps per line (0 = collection size).
	MaxSteps int
}

// Stats reports the list-access work one query performed, the quantity
// Medrank's I/O-optimality argument is about.
type Stats struct {
	// Steps is the number of rounds of cursor advances.
	Steps int
	// Entries is the total number of sorted-list entries accessed.
	Entries int
}

// Query returns k neighbors by median-rank aggregation, ordered by rank.
// The Dist fields are filled with the true Euclidean distances for
// convenience (Medrank itself never computes them).
func (ix *Index) Query(q vec.Vector, k int, opts Options) []knn.Neighbor {
	out, _ := ix.QueryWithStats(q, k, opts)
	return out
}

// QueryWithStats is Query plus access accounting.
func (ix *Index) QueryWithStats(q vec.Vector, k int, opts Options) ([]knn.Neighbor, Stats) {
	var st Stats
	if k <= 0 {
		return nil, st
	}
	minFrac := opts.MinFrac
	if minFrac <= 0 {
		minFrac = 0.5
	}
	maxSteps := opts.MaxSteps
	if maxSteps <= 0 {
		maxSteps = ix.coll.Len()
	}
	need := int(math.Ceil(minFrac * float64(len(ix.dirs))))
	if need < 1 {
		need = 1
	}

	cursors := make([]*cursor, len(ix.dirs))
	for l, dir := range ix.dirs {
		cursors[l] = newCursor(ix.order[l], ix.proj[l], project(q, dir))
	}

	seen := map[int32]int{}
	emitted := map[int32]bool{}
	var out []knn.Neighbor
	var batch []int32
	for step := 0; step < maxSteps && len(out) < k; step++ {
		st.Steps++
		// Advance every cursor for the round, then emit the round's
		// qualifiers in ascending-ID order: equal-rank neighbors leave the
		// refinement deterministically, independent of line ordering.
		batch = batch[:0]
		for _, c := range cursors {
			p := c.next()
			if p < 0 {
				continue
			}
			st.Entries++
			if emitted[p] {
				continue
			}
			seen[p]++
			if seen[p] >= need {
				emitted[p] = true
				batch = append(batch, p)
			}
		}
		sort.Slice(batch, func(a, b int) bool {
			return ix.coll.IDAt(int(batch[a])) < ix.coll.IDAt(int(batch[b]))
		})
		for _, p := range batch {
			out = append(out, knn.Neighbor{
				ID:   ix.coll.IDAt(int(p)),
				Dist: vec.Distance(q, ix.coll.Vec(int(p))),
			})
			if len(out) == k {
				break
			}
		}
	}
	return out, st
}
