package medrank

import (
	"math/rand"
	"testing"

	"repro/internal/descriptor"
	"repro/internal/imagegen"
	"repro/internal/knn"
	"repro/internal/scan"
	"repro/internal/vec"
)

func TestBuildValidation(t *testing.T) {
	coll := descriptor.NewCollection(4, 0)
	if _, err := Build(coll, 5, 1); err == nil {
		t.Fatal("empty collection accepted")
	}
	coll.Append(1, vec.Vector{1, 2, 3, 4})
	if _, err := Build(coll, 0, 1); err == nil {
		t.Fatal("zero lines accepted")
	}
}

func TestQueryEdges(t *testing.T) {
	ds := imagegen.MustGenerate(imagegen.DefaultConfig(2000, 1))
	ix, err := Build(ds.Collection, 10, 1)
	if err != nil {
		t.Fatal(err)
	}
	if got := ix.Query(ds.Collection.Vec(0), 0, Options{}); got != nil {
		t.Fatal("k=0 should return nil")
	}
	got := ix.Query(ds.Collection.Vec(0), 5, Options{})
	if len(got) != 5 {
		t.Fatalf("got %d results", len(got))
	}
	if ix.Lines() != 10 {
		t.Fatalf("Lines = %d", ix.Lines())
	}
}

// On a query that exists in the collection, the element itself has rank 0
// on every line and must be the first result.
func TestSelfQueryRanksFirst(t *testing.T) {
	ds := imagegen.MustGenerate(imagegen.DefaultConfig(3000, 2))
	coll := ds.Collection
	ix, err := Build(coll, 15, 3)
	if err != nil {
		t.Fatal(err)
	}
	for _, qi := range []int{0, 57, 1500} {
		got := ix.Query(coll.Vec(qi), 3, Options{})
		if len(got) == 0 {
			t.Fatalf("query %d: empty result", qi)
		}
		if got[0].Dist != 0 {
			t.Fatalf("query %d: first result at distance %v, want the query point itself", qi, got[0].Dist)
		}
	}
}

// Medrank is approximate but must beat random guessing decisively on
// recall@10: its results should be heavily concentrated among the true
// nearest neighbors.
func TestRecallBeatsRandom(t *testing.T) {
	ds := imagegen.MustGenerate(imagegen.DefaultConfig(4000, 4))
	coll := ds.Collection
	ix, err := Build(coll, 30, 5)
	if err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(6))
	const k = 10
	totalRecall := 0.0
	const queries = 20
	for qi := 0; qi < queries; qi++ {
		q := coll.Vec(r.Intn(coll.Len()))
		got := ix.Query(q, k, Options{})
		truth := scan.KNN(coll, q, k)
		truthSet := map[descriptor.ID]bool{}
		for _, n := range truth {
			truthSet[n.ID] = true
		}
		hit := 0
		for _, n := range got {
			if truthSet[n.ID] {
				hit++
			}
		}
		totalRecall += float64(hit) / float64(k)
	}
	recall := totalRecall / queries
	// Random guessing would land ~k/N ≈ 0.25%; require two orders more.
	if recall < 0.3 {
		t.Fatalf("recall@%d = %.2f, want >= 0.3", k, recall)
	}
}

func TestDeterminism(t *testing.T) {
	ds := imagegen.MustGenerate(imagegen.DefaultConfig(1000, 7))
	a, err := Build(ds.Collection, 8, 9)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Build(ds.Collection, 8, 9)
	if err != nil {
		t.Fatal(err)
	}
	q := ds.Collection.Vec(3)
	ra := a.Query(q, 7, Options{})
	rb := b.Query(q, 7, Options{})
	if len(ra) != len(rb) {
		t.Fatalf("lengths differ: %d vs %d", len(ra), len(rb))
	}
	for i := range ra {
		if ra[i].ID != rb[i].ID {
			t.Fatalf("result %d differs: %v vs %v", i, ra[i].ID, rb[i].ID)
		}
	}
}

func TestMaxStepsBounds(t *testing.T) {
	ds := imagegen.MustGenerate(imagegen.DefaultConfig(2000, 8))
	ix, err := Build(ds.Collection, 10, 1)
	if err != nil {
		t.Fatal(err)
	}
	// With a tiny step budget the result may be short but never panics.
	got := ix.Query(ds.Collection.Vec(1), 30, Options{MaxSteps: 2})
	if len(got) > 30 {
		t.Fatalf("over-long result: %d", len(got))
	}
}

func TestCursorExhaustion(t *testing.T) {
	// A 3-point collection: walking more steps than points must terminate
	// and yield everything exactly once.
	coll := descriptor.NewCollection(2, 3)
	coll.Append(0, vec.Vector{0, 0})
	coll.Append(1, vec.Vector{1, 0})
	coll.Append(2, vec.Vector{5, 0})
	ix, err := Build(coll, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	got := ix.Query(vec.Vector{0.4, 0}, 3, Options{})
	if len(got) != 3 {
		t.Fatalf("got %d of 3", len(got))
	}
	seen := map[descriptor.ID]bool{}
	for _, n := range got {
		if seen[n.ID] {
			t.Fatalf("duplicate %v", n.ID)
		}
		seen[n.ID] = true
	}
}

var benchSink []knn.Neighbor

func BenchmarkMedrankQuery(b *testing.B) {
	ds := imagegen.MustGenerate(imagegen.DefaultConfig(50000, 1))
	ix, err := Build(ds.Collection, 20, 1)
	if err != nil {
		b.Fatal(err)
	}
	q := ds.Collection.Vec(11)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		benchSink = ix.Query(q, 30, Options{})
	}
}
