package lsh

import (
	"math/rand"
	"testing"

	"repro/internal/descriptor"
	"repro/internal/imagegen"
	"repro/internal/scan"
	"repro/internal/vec"
)

func TestBuildValidation(t *testing.T) {
	if _, err := Build(descriptor.NewCollection(4, 0), Config{}); err == nil {
		t.Fatal("empty collection accepted")
	}
	ds := imagegen.MustGenerate(imagegen.DefaultConfig(500, 1))
	if _, err := Build(ds.Collection, Config{Tables: -1}); err == nil {
		t.Fatal("negative tables accepted")
	}
	if _, err := Build(ds.Collection, Config{Width: -3}); err == nil {
		t.Fatal("negative width accepted")
	}
}

func TestCalibrateWidthPositive(t *testing.T) {
	ds := imagegen.MustGenerate(imagegen.DefaultConfig(2000, 2))
	w := CalibrateWidth(ds.Collection, 50, 1)
	if w <= 0 {
		t.Fatalf("width = %v", w)
	}
	// Degenerate inputs fall back to 1.
	tiny := descriptor.NewCollection(2, 1)
	tiny.Append(0, vec.Vector{1, 2})
	if got := CalibrateWidth(tiny, 10, 1); got != 1 {
		t.Fatalf("degenerate width = %v", got)
	}
}

// A dataset point must find itself: it always shares all its buckets.
func TestSelfFound(t *testing.T) {
	ds := imagegen.MustGenerate(imagegen.DefaultConfig(3000, 3))
	ix, err := Build(ds.Collection, Config{Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	for _, qi := range []int{0, 100, 2000} {
		got, st := ix.Query(ds.Collection.Vec(qi), 1, 0)
		if len(got) == 0 || got[0].Dist != 0 {
			t.Fatalf("query %d: self not found (candidates %d)", qi, st.Candidates)
		}
	}
}

// LSH recall@10 on clustered data must decisively beat random candidates
// while probing only a small fraction of the collection.
func TestRecallAndSelectivity(t *testing.T) {
	ds := imagegen.MustGenerate(imagegen.DefaultConfig(6000, 5))
	coll := ds.Collection
	ix, err := Build(coll, Config{Tables: 16, Hashes: 4, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(7))
	const k = 10
	var recallSum, candSum float64
	const queries = 25
	for i := 0; i < queries; i++ {
		q := coll.Vec(r.Intn(coll.Len()))
		got, st := ix.Query(q, k, 0)
		truth := scan.KNN(coll, q, k)
		set := map[descriptor.ID]bool{}
		for _, n := range truth {
			set[n.ID] = true
		}
		hit := 0
		for _, n := range got {
			if set[n.ID] {
				hit++
			}
		}
		recallSum += float64(hit) / k
		candSum += float64(st.Candidates)
	}
	recall := recallSum / queries
	frac := candSum / queries / float64(coll.Len())
	if recall < 0.4 {
		t.Fatalf("recall@%d = %.2f, want >= 0.4", k, recall)
	}
	if frac > 0.6 {
		t.Fatalf("probed %.0f%% of the collection: not selective", frac*100)
	}
}

func TestMaxCandidatesBounds(t *testing.T) {
	ds := imagegen.MustGenerate(imagegen.DefaultConfig(3000, 8))
	ix, err := Build(ds.Collection, Config{Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	_, st := ix.Query(ds.Collection.Vec(5), 10, 7)
	if st.Candidates > 7 {
		t.Fatalf("candidates %d > budget 7", st.Candidates)
	}
}

func TestQueryEdges(t *testing.T) {
	ds := imagegen.MustGenerate(imagegen.DefaultConfig(800, 10))
	ix, err := Build(ds.Collection, Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if got, _ := ix.Query(ds.Collection.Vec(0), 0, 0); got != nil {
		t.Fatal("k=0 should return nil")
	}
	if ix.Tables() != 8 {
		t.Fatalf("Tables = %d", ix.Tables())
	}
	if ix.Width() <= 0 {
		t.Fatalf("Width = %v", ix.Width())
	}
}

func TestDeterminism(t *testing.T) {
	ds := imagegen.MustGenerate(imagegen.DefaultConfig(1200, 11))
	a, err := Build(ds.Collection, Config{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Build(ds.Collection, Config{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	q := ds.Collection.Vec(77)
	ra, _ := a.Query(q, 5, 0)
	rb, _ := b.Query(q, 5, 0)
	if len(ra) != len(rb) {
		t.Fatalf("lengths differ: %d vs %d", len(ra), len(rb))
	}
	for i := range ra {
		if ra[i].ID != rb[i].ID {
			t.Fatalf("result %d differs", i)
		}
	}
}

func BenchmarkLSHQuery(b *testing.B) {
	ds := imagegen.MustGenerate(imagegen.DefaultConfig(50000, 1))
	ix, err := Build(ds.Collection, Config{Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	q := ds.Collection.Vec(42)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ix.Query(q, 30, 0)
	}
}
