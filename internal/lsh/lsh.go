// Package lsh implements locality-sensitive hashing for Euclidean space,
// the approximate-NN family the paper cites as related work ([11] Gionis,
// Indyk & Motwani, VLDB 1999; this implementation uses the p-stable
// scheme of Datar et al. that superseded the Hamming embedding for L2).
//
// Each of L tables hashes a vector with k concatenated projections
// h(v) = ⌊(a·v + b) / w⌋ with Gaussian a and uniform b; a query probes its
// bucket in every table and refines the union of candidates with exact
// distances. Quality and cost are tuned with L, k and the bucket width w.
package lsh

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"math"
	"math/rand"

	"repro/internal/descriptor"
	"repro/internal/knn"
	"repro/internal/scan"
	"repro/internal/vec"
)

// Config controls table construction.
type Config struct {
	Tables int     // L, number of hash tables (0 = 8)
	Hashes int     // k, projections concatenated per table (0 = 8)
	Width  float64 // w, bucket width (0 = calibrated from a data sample)
	Seed   int64
}

// Index is a built LSH structure.
type Index struct {
	coll   *descriptor.Collection
	tables []map[uint64][]int32
	// proj[t][h] is the random direction of hash h in table t; offs and
	// width complete h(v) = floor((a·v + b)/w).
	proj  [][]vec.Vector
	offs  [][]float64
	width float64
}

// CalibrateWidth estimates a good bucket width as twice the median
// nearest-neighbor distance of a deterministic sample — wide enough that
// a point and its true NN usually share a bucket coordinate.
func CalibrateWidth(coll *descriptor.Collection, sample int, seed int64) float64 {
	if sample <= 1 || coll.Len() < 2 {
		return 1
	}
	if sample > coll.Len() {
		sample = coll.Len()
	}
	r := rand.New(rand.NewSource(seed))
	dists := make([]float64, 0, sample)
	for i := 0; i < sample; i++ {
		qi := r.Intn(coll.Len())
		nn := scan.KNN(coll, coll.Vec(qi), 2)
		if len(nn) > 1 {
			dists = append(dists, nn[1].Dist)
		}
	}
	if len(dists) == 0 {
		return 1
	}
	// Median via partial selection.
	for i := 0; i < len(dists)/2+1; i++ {
		min := i
		for j := i + 1; j < len(dists); j++ {
			if dists[j] < dists[min] {
				min = j
			}
		}
		dists[i], dists[min] = dists[min], dists[i]
	}
	w := 2 * dists[len(dists)/2]
	if w <= 0 {
		return 1
	}
	return w
}

// Build constructs the tables.
func Build(coll *descriptor.Collection, cfg Config) (*Index, error) {
	if coll.Len() == 0 {
		return nil, fmt.Errorf("lsh: empty collection")
	}
	L := cfg.Tables
	if L == 0 {
		L = 8
	}
	k := cfg.Hashes
	if k == 0 {
		k = 8
	}
	if L < 1 || k < 1 {
		return nil, fmt.Errorf("lsh: need positive Tables and Hashes, got %d/%d", L, k)
	}
	w := cfg.Width
	if w == 0 {
		w = CalibrateWidth(coll, 100, cfg.Seed)
	}
	if w <= 0 {
		return nil, fmt.Errorf("lsh: non-positive width %v", w)
	}

	r := rand.New(rand.NewSource(cfg.Seed))
	dims := coll.Dims()
	ix := &Index{coll: coll, width: w}
	for t := 0; t < L; t++ {
		projs := make([]vec.Vector, k)
		offs := make([]float64, k)
		for h := 0; h < k; h++ {
			a := make(vec.Vector, dims)
			for d := range a {
				a[d] = float32(r.NormFloat64())
			}
			projs[h] = a
			offs[h] = r.Float64() * w
		}
		ix.proj = append(ix.proj, projs)
		ix.offs = append(ix.offs, offs)
		table := make(map[uint64][]int32)
		for i := 0; i < coll.Len(); i++ {
			key := ix.key(t, coll.Vec(i))
			table[key] = append(table[key], int32(i))
		}
		ix.tables = append(ix.tables, table)
	}
	return ix, nil
}

// key computes the bucket of v in table t.
func (ix *Index) key(t int, v vec.Vector) uint64 {
	h := fnv.New64a()
	var buf [8]byte
	for hh, a := range ix.proj[t] {
		var dot float64
		for d := range v {
			dot += float64(v[d]) * float64(a[d])
		}
		cell := int64(math.Floor((dot + ix.offs[t][hh]) / ix.width))
		binary.LittleEndian.PutUint64(buf[:], uint64(cell))
		h.Write(buf[:])
	}
	return h.Sum64()
}

// Tables returns L.
func (ix *Index) Tables() int { return len(ix.tables) }

// Width returns the bucket width in use.
func (ix *Index) Width() float64 { return ix.width }

// Stats reports the work of one query.
type Stats struct {
	Candidates int // distinct descriptors probed across tables
}

// Query probes the query's bucket in every table and refines the
// candidate union exactly. maxCandidates bounds the refinement (0 =
// unlimited).
func (ix *Index) Query(q vec.Vector, k, maxCandidates int) ([]knn.Neighbor, Stats) {
	var st Stats
	if k <= 0 {
		return nil, st
	}
	seen := map[int32]bool{}
	heap := knn.NewHeap(k)
	for t := range ix.tables {
		for _, pos := range ix.tables[t][ix.key(t, q)] {
			if seen[pos] {
				continue
			}
			seen[pos] = true
			st.Candidates++
			d2 := vec.PartialSquaredDistance(q, ix.coll.Vec(int(pos)), heap.Kth2())
			heap.OfferSquared(ix.coll.IDAt(int(pos)), d2)
			if maxCandidates > 0 && st.Candidates >= maxCandidates {
				return heap.Sorted(), st
			}
		}
	}
	return heap.Sorted(), st
}
