package cluster

import (
	"math"

	"repro/internal/descriptor"
	"repro/internal/vec"
)

// MergeBounds returns a lower and an upper bound on the bounding radius the
// union of a and b would need, computed in O(d) from the cluster summaries
// alone (no member scan).
//
// The merged centroid is the population-weighted mean, so it sits at
// distance d·nb/(na+nb) from a's centroid and d·na/(na+nb) from b's, where
// d is the centroid distance.
//
//   - Upper bound: every member of a is within a.Radius of a's centroid
//     (Radius is maintained as a valid, if possibly non-minimal, bound), so
//     it is within a.Radius + shift of the merged centroid; likewise for b.
//   - Lower bound: by Jensen's inequality the maximum member distance from
//     the merged centroid is at least the distance to either sub-centroid.
//     This bound is valid regardless of whether Radius is minimal.
func MergeBounds(a, b *Cluster) (lo, hi float64) {
	d := vec.Distance(a.Centroid, b.Centroid)
	na, nb := float64(a.Count()), float64(b.Count())
	shiftA := d * nb / (na + nb)
	shiftB := d * na / (na + nb)
	hi = math.Max(a.Radius+shiftA, b.Radius+shiftB)
	lo = math.Max(shiftA, shiftB)
	return lo, hi
}

// MergeApprox absorbs o into c like Merge but sets Radius to the provided
// valid bound instead of re-scanning members. Callers use this on hot merge
// paths and restore near-minimal radii in bulk later (RecomputeRadius).
func (c *Cluster) MergeApprox(o *Cluster, radiusBound float64) {
	for d := range c.linear {
		c.linear[d] += o.linear[d]
	}
	c.Members = append(c.Members, o.Members...)
	c.recomputeCentroid()
	c.Radius = radiusBound
}

// Clone returns an independent deep copy of c.
func (c *Cluster) Clone() *Cluster {
	return &Cluster{
		Centroid: c.Centroid.Clone(),
		Radius:   c.Radius,
		Members:  append([]int(nil), c.Members...),
		linear:   append([]float64(nil), c.linear...),
	}
}

// NormOutlierSplit partitions descriptor indexes by vector norm: indexes
// with norm ≤ maxNorm are retained, the rest are outliers. This is the
// simple alternative outlier-removal scheme the paper mentions testing for
// the SR-tree ("removing all descriptors with total length greater than a
// constant", §5.2); it is compared against BAG's outlier set in an
// ablation experiment.
func NormOutlierSplit(coll *descriptor.Collection, maxNorm float64) (retained, outliers []int) {
	for i := 0; i < coll.Len(); i++ {
		if coll.Vec(i).Norm() <= maxNorm {
			retained = append(retained, i)
		} else {
			outliers = append(outliers, i)
		}
	}
	return retained, outliers
}
