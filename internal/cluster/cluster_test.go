package cluster

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/descriptor"
	"repro/internal/vec"
)

func testColl(r *rand.Rand, n, dims int) *descriptor.Collection {
	c := descriptor.NewCollection(dims, n)
	v := make(vec.Vector, dims)
	for i := 0; i < n; i++ {
		for d := range v {
			v[d] = float32(r.NormFloat64() * 10)
		}
		c.Append(descriptor.ID(i), v)
	}
	return c
}

func TestSingleton(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	coll := testColl(r, 5, 4)
	c := NewFromPoint(coll, 2)
	if c.Radius != 0 {
		t.Fatalf("singleton radius = %v, want 0", c.Radius)
	}
	if c.Count() != 1 || c.Members[0] != 2 {
		t.Fatalf("members = %v", c.Members)
	}
	if !vec.Equal(c.Centroid, coll.Vec(2)) {
		t.Fatal("centroid != point")
	}
	if err := c.Validate(coll); err != nil {
		t.Fatal(err)
	}
}

func TestNewFromMembers(t *testing.T) {
	coll := descriptor.NewCollection(2, 0)
	coll.Append(0, vec.Vector{0, 0})
	coll.Append(1, vec.Vector{4, 0})
	c := NewFromMembers(coll, []int{0, 1})
	if !vec.Equal(c.Centroid, vec.Vector{2, 0}) {
		t.Fatalf("centroid = %v", c.Centroid)
	}
	if c.Radius != 2 {
		t.Fatalf("radius = %v, want 2", c.Radius)
	}
	if err := c.Validate(coll); err != nil {
		t.Fatal(err)
	}
}

func TestMergeMatchesFromMembers(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		coll := testColl(r, 20, 6)
		a := NewFromMembers(coll, []int{0, 1, 2})
		b := NewFromMembers(coll, []int{3, 4, 5, 6})
		want := NewFromMembers(coll, []int{0, 1, 2, 3, 4, 5, 6})
		// MergedRadius must predict the post-merge radius exactly.
		pred := MergedRadius(coll, a, b)
		a.Merge(coll, b)
		if a.Count() != 7 {
			return false
		}
		if !vec.Equal(a.Centroid, want.Centroid) {
			return false
		}
		diff := a.Radius - want.Radius
		if diff < -1e-6 || diff > 1e-6 {
			return false
		}
		diff = pred - want.Radius
		return diff > -1e-6 && diff < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestMergePreservesInvariants(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	coll := testColl(r, 100, vec.Dims)
	cs := make([]*Cluster, 0, 100)
	for i := 0; i < 100; i++ {
		cs = append(cs, NewFromPoint(coll, i))
	}
	// Merge pairs repeatedly.
	for len(cs) > 1 {
		cs[0].Merge(coll, cs[1])
		if err := cs[0].Validate(coll); err != nil {
			t.Fatalf("after merge to %d members: %v", cs[0].Count(), err)
		}
		cs = append(cs[:1], cs[2:]...)
	}
	if cs[0].Count() != 100 {
		t.Fatalf("final count = %d", cs[0].Count())
	}
}

func TestSummarize(t *testing.T) {
	coll := descriptor.NewCollection(1, 0)
	for i := 0; i < 10; i++ {
		coll.Append(descriptor.ID(i), vec.Vector{float32(i)})
	}
	a := NewFromMembers(coll, []int{0, 1, 2, 3}) // 4 members
	b := NewFromMembers(coll, []int{4, 5})       // 2 members
	c := NewFromMembers(coll, []int{6, 7, 8, 9}) // 4 members
	s := Summarize([]*Cluster{a, b, c})
	if s.Count != 3 || s.Descriptors != 10 {
		t.Fatalf("stats = %+v", s)
	}
	if s.MinSize != 2 || s.MaxSize != 4 || s.MeanSize < 3.3 || s.MeanSize > 3.4 {
		t.Fatalf("sizes = %+v", s)
	}
	if z := Summarize(nil); z.Count != 0 {
		t.Fatalf("empty stats = %+v", z)
	}
}

func TestLargestSizes(t *testing.T) {
	coll := descriptor.NewCollection(1, 0)
	for i := 0; i < 12; i++ {
		coll.Append(descriptor.ID(i), vec.Vector{float32(i)})
	}
	cs := []*Cluster{
		NewFromMembers(coll, []int{0}),
		NewFromMembers(coll, []int{1, 2, 3, 4, 5}),
		NewFromMembers(coll, []int{6, 7}),
		NewFromMembers(coll, []int{8, 9, 10}),
	}
	got := LargestSizes(cs, 3)
	want := []int{5, 3, 2}
	if len(got) != 3 || got[0] != want[0] || got[1] != want[1] || got[2] != want[2] {
		t.Fatalf("LargestSizes = %v, want %v", got, want)
	}
	if all := LargestSizes(cs, 10); len(all) != 4 {
		t.Fatalf("LargestSizes(10) len = %d", len(all))
	}
}

func TestRemoveSmall(t *testing.T) {
	coll := descriptor.NewCollection(1, 0)
	for i := 0; i < 20; i++ {
		coll.Append(descriptor.ID(i), vec.Vector{float32(i)})
	}
	big := NewFromMembers(coll, []int{0, 1, 2, 3, 4, 5, 6, 7, 8, 9})
	mid := NewFromMembers(coll, []int{10, 11, 12, 13, 14, 15})
	tiny := NewFromMembers(coll, []int{16})
	// mean = 17/3 ≈ 5.67; 20% cut ≈ 1.13: only tiny falls below.
	ret, des := RemoveSmall([]*Cluster{big, mid, tiny}, 0.20)
	if len(ret) != 2 || len(des) != 1 {
		t.Fatalf("retained %d destroyed %d", len(ret), len(des))
	}
	if des[0] != tiny {
		t.Fatal("wrong cluster destroyed")
	}
	r0, d0 := RemoveSmall(nil, 0.2)
	if r0 != nil || d0 != nil {
		t.Fatal("RemoveSmall(nil) should be nil,nil")
	}
}

func TestMemberIDsAndTotal(t *testing.T) {
	coll := descriptor.NewCollection(1, 0)
	for i := 0; i < 6; i++ {
		coll.Append(descriptor.ID(100+i), vec.Vector{float32(i)})
	}
	cs := []*Cluster{
		NewFromMembers(coll, []int{0, 2}),
		NewFromMembers(coll, []int{5}),
	}
	ids := MemberIDs(coll, cs)
	if len(ids) != 3 || ids[0] != 100 || ids[1] != 102 || ids[2] != 105 {
		t.Fatalf("MemberIDs = %v", ids)
	}
	if TotalMembers(cs) != 3 {
		t.Fatalf("TotalMembers = %d", TotalMembers(cs))
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	coll := testColl(r, 10, 4)
	c := NewFromMembers(coll, []int{0, 1, 2})
	c.Radius = 0 // corrupt: members are spread out
	if err := c.Validate(coll); err == nil {
		t.Fatal("Validate accepted corrupted radius")
	}
	c = NewFromMembers(coll, []int{0, 1, 2})
	c.Centroid[0] += 50
	if err := c.Validate(coll); err == nil {
		t.Fatal("Validate accepted corrupted centroid")
	}
}
