// Package cluster provides the hyper-spherical cluster representation and
// incremental merge mathematics shared by the chunk-forming strategies.
//
// A cluster is identified by its centroid and minimum bounding radius
// (paper §3). To merge two clusters in O(1) without revisiting members,
// clusters also carry the BIRCH-style sufficient statistics (count, linear
// sum, squared sum); the bounding radius after a merge is tracked exactly
// by re-measuring member distances when the member vectors are available,
// or conservatively from the sufficient statistics otherwise.
package cluster

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/descriptor"
	"repro/internal/vec"
)

// Cluster is a set of descriptors summarized by centroid and bounding
// radius. Members holds indexes into the source collection.
type Cluster struct {
	Centroid vec.Vector
	Radius   float64
	Members  []int

	// linear holds the per-dimension sum of member vectors, enabling O(d)
	// centroid updates on merge.
	linear []float64
}

// NewFromPoint creates a singleton cluster from descriptor index i of coll.
// Its radius is zero, exactly as BAG's initialization requires (paper §3).
func NewFromPoint(coll *descriptor.Collection, i int) *Cluster {
	v := coll.Vec(i)
	lin := make([]float64, len(v))
	for d, x := range v {
		lin[d] = float64(x)
	}
	return &Cluster{
		Centroid: v.Clone(),
		Radius:   0,
		Members:  []int{i},
		linear:   lin,
	}
}

// NewFromMembers builds a cluster over the given member indexes, computing
// the exact centroid and minimum bounding radius.
func NewFromMembers(coll *descriptor.Collection, members []int) *Cluster {
	if len(members) == 0 {
		panic("cluster: empty member set")
	}
	dims := coll.Dims()
	lin := make([]float64, dims)
	for _, i := range members {
		v := coll.Vec(i)
		for d, x := range v {
			lin[d] += float64(x)
		}
	}
	c := &Cluster{
		Centroid: make(vec.Vector, dims),
		Members:  append([]int(nil), members...),
		linear:   lin,
	}
	c.recomputeCentroid()
	c.RecomputeRadius(coll)
	return c
}

// Count returns the cluster population.
func (c *Cluster) Count() int { return len(c.Members) }

func (c *Cluster) recomputeCentroid() {
	inv := 1 / float64(len(c.Members))
	for d, s := range c.linear {
		c.Centroid[d] = float32(s * inv)
	}
}

// RecomputeRadius re-measures the minimum bounding radius against the
// actual member vectors. The maximum is taken over squared distances;
// sqrt is applied once at the end.
func (c *Cluster) RecomputeRadius(coll *descriptor.Collection) {
	var max2 float64
	for _, i := range c.Members {
		if d2 := vec.SquaredDistance(c.Centroid, coll.Vec(i)); d2 > max2 {
			max2 = d2
		}
	}
	c.Radius = math.Sqrt(max2)
}

// MergedRadius returns the exact minimum bounding radius the union of a
// and b would have, without mutating either. The merged centroid is the
// population-weighted mean.
func MergedRadius(coll *descriptor.Collection, a, b *Cluster) float64 {
	dims := len(a.Centroid)
	merged := make(vec.Vector, dims)
	na, nb := float64(a.Count()), float64(b.Count())
	inv := 1 / (na + nb)
	for d := 0; d < dims; d++ {
		merged[d] = float32((a.linear[d] + b.linear[d]) * inv)
	}
	var max2 float64
	for _, i := range a.Members {
		if d2 := vec.SquaredDistance(merged, coll.Vec(i)); d2 > max2 {
			max2 = d2
		}
	}
	for _, i := range b.Members {
		if d2 := vec.SquaredDistance(merged, coll.Vec(i)); d2 > max2 {
			max2 = d2
		}
	}
	return math.Sqrt(max2)
}

// Merge absorbs o into c, updating centroid, members and exact radius.
func (c *Cluster) Merge(coll *descriptor.Collection, o *Cluster) {
	for d := range c.linear {
		c.linear[d] += o.linear[d]
	}
	c.Members = append(c.Members, o.Members...)
	c.recomputeCentroid()
	c.RecomputeRadius(coll)
}

// Validate checks the internal invariants of the cluster against the
// collection: centroid is the member mean and radius bounds every member.
// It returns a descriptive error for use in tests and debugging.
func (c *Cluster) Validate(coll *descriptor.Collection) error {
	if len(c.Members) == 0 {
		return fmt.Errorf("cluster: no members")
	}
	dims := coll.Dims()
	mean := make([]float64, dims)
	for _, i := range c.Members {
		v := coll.Vec(i)
		for d, x := range v {
			mean[d] += float64(x)
		}
	}
	inv := 1 / float64(len(c.Members))
	for d := range mean {
		mean[d] *= inv
		if math.Abs(mean[d]-float64(c.Centroid[d])) > 1e-3 {
			return fmt.Errorf("cluster: centroid dim %d is %v, want %v", d, c.Centroid[d], mean[d])
		}
	}
	for _, i := range c.Members {
		if d := vec.Distance(c.Centroid, coll.Vec(i)); d > c.Radius+1e-6 {
			return fmt.Errorf("cluster: member %d at distance %v exceeds radius %v", i, d, c.Radius)
		}
	}
	return nil
}

// Stats summarizes a set of clusters.
type Stats struct {
	Count       int     // number of clusters
	Descriptors int     // total population
	MeanSize    float64 // average population
	MinSize     int
	MaxSize     int
	MeanRadius  float64
	MaxRadius   float64
}

// Summarize computes Stats over cs. An empty slice yields a zero Stats.
func Summarize(cs []*Cluster) Stats {
	if len(cs) == 0 {
		return Stats{}
	}
	s := Stats{Count: len(cs), MinSize: cs[0].Count()}
	var radSum float64
	for _, c := range cs {
		n := c.Count()
		s.Descriptors += n
		if n < s.MinSize {
			s.MinSize = n
		}
		if n > s.MaxSize {
			s.MaxSize = n
		}
		radSum += c.Radius
		if c.Radius > s.MaxRadius {
			s.MaxRadius = c.Radius
		}
	}
	s.MeanSize = float64(s.Descriptors) / float64(s.Count)
	s.MeanRadius = radSum / float64(s.Count)
	return s
}

// LargestSizes returns the populations of the n largest clusters in
// descending order (fewer if len(cs) < n). This is what the paper's
// Figure 1 plots.
func LargestSizes(cs []*Cluster, n int) []int {
	sizes := make([]int, len(cs))
	for i, c := range cs {
		sizes[i] = c.Count()
	}
	sort.Sort(sort.Reverse(sort.IntSlice(sizes)))
	if len(sizes) > n {
		sizes = sizes[:n]
	}
	return sizes
}

// RemoveSmall splits cs into (retained, destroyed) around the population
// threshold: clusters holding fewer than frac × mean population are
// destroyed. This is both BAG's per-pass destruction rule (frac = 0.20 in
// the paper's experiments) and its final outlier rule (§3).
func RemoveSmall(cs []*Cluster, frac float64) (retained, destroyed []*Cluster) {
	if len(cs) == 0 {
		return nil, nil
	}
	total := 0
	for _, c := range cs {
		total += c.Count()
	}
	mean := float64(total) / float64(len(cs))
	cut := frac * mean
	for _, c := range cs {
		if float64(c.Count()) < cut {
			destroyed = append(destroyed, c)
		} else {
			retained = append(retained, c)
		}
	}
	return retained, destroyed
}

// MemberIDs flattens the descriptor ids of all clusters' members.
func MemberIDs(coll *descriptor.Collection, cs []*Cluster) []descriptor.ID {
	var ids []descriptor.ID
	for _, c := range cs {
		for _, i := range c.Members {
			ids = append(ids, coll.IDAt(i))
		}
	}
	return ids
}

// TotalMembers sums cluster populations.
func TotalMembers(cs []*Cluster) int {
	n := 0
	for _, c := range cs {
		n += c.Count()
	}
	return n
}
