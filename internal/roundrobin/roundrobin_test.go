package roundrobin

import (
	"testing"

	"repro/internal/cluster"
	"repro/internal/imagegen"
)

func TestUniformSizes(t *testing.T) {
	ds := imagegen.MustGenerate(imagegen.DefaultConfig(3000, 1))
	coll := ds.Collection
	chunks, err := Chunks(coll, nil, 100)
	if err != nil {
		t.Fatal(err)
	}
	stats := cluster.Summarize(chunks)
	if stats.Descriptors != coll.Len() {
		t.Fatalf("chunks cover %d of %d", stats.Descriptors, coll.Len())
	}
	if stats.MaxSize-stats.MinSize > 1 {
		t.Fatalf("sizes not uniform: min %d max %d", stats.MinSize, stats.MaxSize)
	}
	for _, c := range chunks {
		if err := c.Validate(coll); err != nil {
			t.Fatal(err)
		}
	}
}

// Round-robin chunks must span nearly the whole space: their radii should
// be enormous compared to a localized chunking. This is exactly why "the
// quality will suffer" (§1.1).
func TestChunksAreDelocalized(t *testing.T) {
	ds := imagegen.MustGenerate(imagegen.DefaultConfig(3000, 2))
	coll := ds.Collection
	chunks, err := Chunks(coll, nil, 100)
	if err != nil {
		t.Fatal(err)
	}
	b := coll.Bounds()
	halfDiag := 0.5 * clusterDist(b.Min, b.Max)
	for _, c := range chunks {
		if c.Radius < halfDiag*0.3 {
			t.Fatalf("round-robin chunk unexpectedly tight: radius %.1f vs half-diagonal %.1f", c.Radius, halfDiag)
		}
	}
}

func clusterDist(a, b []float32) float64 {
	var s float64
	for i := range a {
		d := float64(a[i] - b[i])
		s += d * d
	}
	return sqrt(s)
}

func sqrt(x float64) float64 {
	if x <= 0 {
		return 0
	}
	z := x
	for i := 0; i < 40; i++ {
		z = (z + x/z) / 2
	}
	return z
}

func TestErrors(t *testing.T) {
	ds := imagegen.MustGenerate(imagegen.DefaultConfig(500, 3))
	if _, err := Chunks(ds.Collection, nil, 0); err == nil {
		t.Fatal("chunk size 0 accepted")
	}
	got, err := Chunks(ds.Collection, []int{}, 10)
	if err != nil || got != nil {
		t.Fatalf("empty indexes: %v %v", got, err)
	}
}

func TestSubset(t *testing.T) {
	ds := imagegen.MustGenerate(imagegen.DefaultConfig(1000, 4))
	idx := []int{0, 5, 10, 15, 20, 25}
	chunks, err := Chunks(ds.Collection, idx, 2)
	if err != nil {
		t.Fatal(err)
	}
	if cluster.TotalMembers(chunks) != 6 {
		t.Fatalf("covered %d, want 6", cluster.TotalMembers(chunks))
	}
}
