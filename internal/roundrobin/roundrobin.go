// Package roundrobin implements the paper's §1.1 strawman chunk-forming
// strategy: "by distributing descriptors to chunks in a round-robin
// manner, chunks of uniform size are obtained, but the quality will
// suffer". It is the lower baseline of the quality axis in the ablation
// experiments.
package roundrobin

import (
	"fmt"

	"repro/internal/cluster"
	"repro/internal/descriptor"
)

// Chunks distributes the descriptors at the given indexes (nil = whole
// collection) round-robin over ceil(n/chunkSize) chunks of near-uniform
// size, then computes exact centroids and radii per chunk.
func Chunks(coll *descriptor.Collection, indexes []int, chunkSize int) ([]*cluster.Cluster, error) {
	if chunkSize < 1 {
		return nil, fmt.Errorf("roundrobin: chunk size %d < 1", chunkSize)
	}
	if indexes == nil {
		indexes = make([]int, coll.Len())
		for i := range indexes {
			indexes[i] = i
		}
	}
	n := len(indexes)
	if n == 0 {
		return nil, nil
	}
	k := (n + chunkSize - 1) / chunkSize
	members := make([][]int, k)
	for pos, idx := range indexes {
		c := pos % k
		members[c] = append(members[c], idx)
	}
	out := make([]*cluster.Cluster, 0, k)
	for _, m := range members {
		if len(m) > 0 {
			out = append(out, cluster.NewFromMembers(coll, m))
		}
	}
	return out, nil
}
