package workload

import (
	"math"
	"testing"
	"time"

	"repro/internal/search"
	"repro/internal/shard"
)

func resultsWithTimes(times ...time.Duration) []search.Result {
	rs := make([]search.Result, len(times))
	for i, d := range times {
		rs[i] = search.Result{Elapsed: d}
	}
	return rs
}

func TestSimulatedQuantileNearestRank(t *testing.T) {
	// 1..10ms in shuffled order: nearest-rank p50 is the 5th smallest,
	// p99 the 10th, p1 the 1st.
	rs := resultsWithTimes(
		7*time.Millisecond, 2*time.Millisecond, 9*time.Millisecond, 4*time.Millisecond,
		1*time.Millisecond, 10*time.Millisecond, 3*time.Millisecond, 8*time.Millisecond,
		5*time.Millisecond, 6*time.Millisecond,
	)
	cases := []struct {
		q    float64
		want time.Duration
	}{
		{0.50, 5 * time.Millisecond},
		{0.99, 10 * time.Millisecond},
		{1.00, 10 * time.Millisecond},
		{0.01, 1 * time.Millisecond},
	}
	for _, tc := range cases {
		if got := SimulatedQuantile(rs, tc.q); got != tc.want {
			t.Fatalf("q=%g: got %v, want %v", tc.q, got, tc.want)
		}
	}
	if got := SimulatedQuantile(rs, 0.50); got != 5*time.Millisecond {
		t.Fatalf("repeat call disturbed the results: %v", got)
	}
	if rs[0].Elapsed != 7*time.Millisecond {
		t.Fatalf("SimulatedQuantile sorted the caller's results: %v", rs[0].Elapsed)
	}
	if got := SimulatedQuantile(nil, 0.99); got != 0 {
		t.Fatalf("empty results: got %v, want 0", got)
	}
	if got := SimulatedQuantile(rs, 0); got != 0 {
		t.Fatalf("q=0: got %v, want 0", got)
	}
	if got := SimulatedQuantile(rs[:1], 0.99); got != 7*time.Millisecond {
		t.Fatalf("single result: got %v", got)
	}
}

func TestStddev(t *testing.T) {
	if got := Stddev(nil); got != 0 {
		t.Fatalf("empty: %g", got)
	}
	if got := Stddev([]float64{4, 4, 4}); got != 0 {
		t.Fatalf("constant: %g", got)
	}
	// Population stddev of {2, 4, 4, 4, 5, 5, 7, 9} is exactly 2.
	if got := Stddev([]float64{2, 4, 4, 4, 5, 5, 7, 9}); math.Abs(got-2) > 1e-12 {
		t.Fatalf("known case: got %g, want 2", got)
	}
}

func TestLoadExtractors(t *testing.T) {
	loads := []shard.ShardLoad{
		{Reads: 10, Billed: 2 * time.Second},
		{Reads: 0, Billed: 0},
		{Reads: 3, Billed: 500 * time.Millisecond},
	}
	reads := LoadReads(loads)
	secs := LoadSeconds(loads)
	wantReads := []float64{10, 0, 3}
	wantSecs := []float64{2, 0, 0.5}
	for i := range loads {
		if reads[i] != wantReads[i] {
			t.Fatalf("reads[%d] = %g, want %g", i, reads[i], wantReads[i])
		}
		if secs[i] != wantSecs[i] {
			t.Fatalf("secs[%d] = %g, want %g", i, secs[i], wantSecs[i])
		}
	}
}
