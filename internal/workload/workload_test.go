package workload

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/descriptor"
	"repro/internal/vec"
)

func testColl(n int) *descriptor.Collection {
	r := rand.New(rand.NewSource(3))
	c := descriptor.NewCollection(4, n)
	v := make(vec.Vector, 4)
	for i := 0; i < n; i++ {
		for d := range v {
			v[d] = float32(r.NormFloat64() * 10)
		}
		c.Append(descriptor.ID(i), v)
	}
	return c
}

func TestDQComesFromCollection(t *testing.T) {
	coll := testColl(500)
	qs, err := DQ(coll, 50, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(qs) != 50 {
		t.Fatalf("got %d queries", len(qs))
	}
	for _, q := range qs {
		found := false
		for i := 0; i < coll.Len() && !found; i++ {
			found = vec.Equal(coll.Vec(i), q)
		}
		if !found {
			t.Fatal("DQ query not a collection member")
		}
	}
}

func TestDQWithoutReplacement(t *testing.T) {
	coll := testColl(100)
	qs, err := DQ(coll, 100, 2)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[string]bool{}
	for _, q := range qs {
		key := fmt.Sprintf("%v", q)
		if seen[key] {
			t.Fatal("duplicate DQ query with n <= collection size")
		}
		seen[key] = true
	}
}

func TestDQMoreThanCollection(t *testing.T) {
	coll := testColl(10)
	qs, err := DQ(coll, 25, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(qs) != 25 {
		t.Fatalf("got %d queries", len(qs))
	}
}

func TestDQErrors(t *testing.T) {
	if _, err := DQ(descriptor.NewCollection(4, 0), 5, 1); err == nil {
		t.Error("empty collection accepted")
	}
	if _, err := DQ(testColl(5), 0, 1); err == nil {
		t.Error("zero queries accepted")
	}
}

func TestTrimmedRanges(t *testing.T) {
	// 1-dimensional collection with values 0..99: 5% trim leaves [5, 94].
	c := descriptor.NewCollection(1, 100)
	for i := 0; i < 100; i++ {
		c.Append(descriptor.ID(i), vec.Vector{float32(i)})
	}
	lo, hi, err := TrimmedRanges(c, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if lo[0] != 5 || hi[0] != 94 {
		t.Fatalf("trimmed range [%v, %v], want [5, 94]", lo[0], hi[0])
	}
	// Zero trim keeps the full range.
	lo, hi, err = TrimmedRanges(c, 0)
	if err != nil {
		t.Fatal(err)
	}
	if lo[0] != 0 || hi[0] != 99 {
		t.Fatalf("untrimmed range [%v, %v]", lo[0], hi[0])
	}
	if _, _, err := TrimmedRanges(c, 0.6); err == nil {
		t.Error("trim 0.6 accepted")
	}
}

func TestSQInsideTrimmedRanges(t *testing.T) {
	coll := testColl(1000)
	lo, hi, err := TrimmedRanges(coll, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	qs, err := SQ(coll, 200, 0.05, 7)
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range qs {
		for d := range q {
			if q[d] < lo[d] || q[d] > hi[d] {
				t.Fatalf("SQ coordinate %v outside [%v, %v]", q[d], lo[d], hi[d])
			}
		}
	}
}

func TestSQDeterministic(t *testing.T) {
	coll := testColl(300)
	a, _ := SQ(coll, 20, 0.05, 9)
	b, _ := SQ(coll, 20, 0.05, 9)
	for i := range a {
		if !vec.Equal(a[i], b[i]) {
			t.Fatal("SQ not deterministic")
		}
	}
	c, _ := SQ(coll, 20, 0.05, 10)
	same := true
	for i := range a {
		same = same && vec.Equal(a[i], c[i])
	}
	if same {
		t.Fatal("different seeds gave identical SQ workloads")
	}
}

// SQ queries simulate "no match in the collection": their nearest
// neighbor must typically be much farther than a DQ query's.
func TestSQFartherThanDQ(t *testing.T) {
	coll := testColl(2000)
	dq, _ := DQ(coll, 30, 1)
	sq, _ := SQ(coll, 30, 0.05, 1)
	nearest := func(q vec.Vector) float64 {
		best := -1.0
		for i := 0; i < coll.Len(); i++ {
			d := vec.Distance(q, coll.Vec(i))
			if best < 0 || d < best {
				best = d
			}
		}
		return best
	}
	var dqSum, sqSum float64
	for i := range dq {
		dqSum += nearest(dq[i])
		sqSum += nearest(sq[i])
	}
	if sqSum <= dqSum {
		t.Fatalf("SQ mean NN distance %.2f not above DQ %.2f", sqSum/30, dqSum/30)
	}
}
