package workload

import (
	"testing"

	"repro/internal/chunkfile"
	"repro/internal/imagegen"
	"repro/internal/search"
	"repro/internal/search/batchexec"
	"repro/internal/srtree"
)

// TestRunMatchesPerQuery: executing a workload through the batch engine
// returns exactly the per-query results, and Summarize folds them.
func TestRunMatchesPerQuery(t *testing.T) {
	ds := imagegen.MustGenerate(imagegen.DefaultConfig(3000, 31))
	coll := ds.Collection
	tree, err := srtree.Build(coll, nil, 120, 16)
	if err != nil {
		t.Fatal(err)
	}
	store := chunkfile.NewMemStore(coll, tree.Chunks(), 4096)
	queries, err := DQ(coll, 16, 9)
	if err != nil {
		t.Fatal(err)
	}

	eng := batchexec.New(store, nil)
	results := make([]search.Result, len(queries))
	opts := batchexec.Options{K: 10, Stop: search.ChunkBudget(3)}
	if err := Run(eng, queries, opts, results); err != nil {
		t.Fatal(err)
	}
	if err := Run(eng, queries, opts, results[:1]); err == nil {
		t.Fatal("mismatched results length accepted")
	}

	searcher := search.New(store, nil)
	st := Summarize(results)
	if st.Queries != len(queries) {
		t.Fatalf("Queries = %d", st.Queries)
	}
	var chunks int
	for qi, q := range queries {
		want, err := searcher.Search(q, search.Options{K: 10, Stop: search.ChunkBudget(3)})
		if err != nil {
			t.Fatal(err)
		}
		chunks += want.ChunksRead
		if results[qi].Elapsed != want.Elapsed || results[qi].ChunksRead != want.ChunksRead {
			t.Fatalf("q%d: batch (%v, %d) != per-query (%v, %d)",
				qi, results[qi].Elapsed, results[qi].ChunksRead, want.Elapsed, want.ChunksRead)
		}
		for i := range want.Neighbors {
			if results[qi].Neighbors[i] != want.Neighbors[i] {
				t.Fatalf("q%d rank %d: neighbors diverge", qi, i)
			}
		}
	}
	if st.ChunksRead != chunks {
		t.Fatalf("Summarize chunks %d != %d", st.ChunksRead, chunks)
	}
	if st.MeanChunks() != float64(chunks)/float64(len(queries)) {
		t.Fatalf("MeanChunks = %v", st.MeanChunks())
	}
	if st.Exact != 0 && st.Exact > len(queries) {
		t.Fatalf("Exact = %d", st.Exact)
	}
}
