// Package workload generates the paper's two query workloads (§5.3).
//
// DQ ("dataset queries") are randomly selected descriptors from the
// collection itself, simulating queries that have a good match. SQ
// ("space queries") are synthesized from the value distribution of the
// collection: for each dimension the top and bottom 5% of values are
// discarded and queries draw uniformly from the remaining range,
// simulating queries with no match in the collection.
package workload

import (
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/descriptor"
	"repro/internal/vec"
)

// DQ returns n dataset queries: vectors of randomly selected descriptors
// (cloned, so the collection may be released). Selection is without
// replacement when n <= coll.Len().
func DQ(coll *descriptor.Collection, n int, seed int64) ([]vec.Vector, error) {
	if coll.Len() == 0 {
		return nil, fmt.Errorf("workload: empty collection")
	}
	if n <= 0 {
		return nil, fmt.Errorf("workload: need positive query count, got %d", n)
	}
	r := rand.New(rand.NewSource(seed))
	out := make([]vec.Vector, 0, n)
	if n <= coll.Len() {
		perm := r.Perm(coll.Len())
		for _, i := range perm[:n] {
			out = append(out, coll.Vec(i).Clone())
		}
		return out, nil
	}
	for len(out) < n {
		out = append(out, coll.Vec(r.Intn(coll.Len())).Clone())
	}
	return out, nil
}

// TrimmedRanges computes, per dimension, the value range remaining after
// discarding the bottom and top trim fraction of values (paper: 5%).
func TrimmedRanges(coll *descriptor.Collection, trim float64) (lo, hi vec.Vector, err error) {
	if coll.Len() == 0 {
		return nil, nil, fmt.Errorf("workload: empty collection")
	}
	if trim < 0 || trim >= 0.5 {
		return nil, nil, fmt.Errorf("workload: trim %v out of [0, 0.5)", trim)
	}
	dims := coll.Dims()
	n := coll.Len()
	lo = make(vec.Vector, dims)
	hi = make(vec.Vector, dims)
	vals := make([]float32, n)
	for d := 0; d < dims; d++ {
		for i := 0; i < n; i++ {
			vals[i] = coll.Vec(i)[d]
		}
		sort.Slice(vals, func(a, b int) bool { return vals[a] < vals[b] })
		cut := int(float64(n) * trim)
		if 2*cut >= n {
			cut = (n - 1) / 2
		}
		lo[d] = vals[cut]
		hi[d] = vals[n-1-cut]
	}
	return lo, hi, nil
}

// Zipf returns n dataset queries with Zipf-skewed repetition: query
// targets are drawn from a Zipf(s, v=1) distribution over the collection
// positions visited in a seeded random order, so a few descriptors are
// queried over and over while the tail is hit rarely — the skewed access
// pattern that makes hot-cluster replication matter (Tavenard et al.,
// PAPERS.md). s must be > 1 (larger is more skewed; ~1.3 is a typical
// web-workload shape). Vectors are cloned.
func Zipf(coll *descriptor.Collection, n int, s float64, seed int64) ([]vec.Vector, error) {
	if coll.Len() == 0 {
		return nil, fmt.Errorf("workload: empty collection")
	}
	if n <= 0 {
		return nil, fmt.Errorf("workload: need positive query count, got %d", n)
	}
	if s <= 1 {
		return nil, fmt.Errorf("workload: Zipf exponent %v must be > 1", s)
	}
	r := rand.New(rand.NewSource(seed))
	// Decouple popularity rank from collection order: rank k maps to a
	// random position, so the hot set is not just the first descriptors.
	perm := r.Perm(coll.Len())
	z := rand.NewZipf(r, s, 1, uint64(coll.Len()-1))
	out := make([]vec.Vector, n)
	for qi := range out {
		out[qi] = coll.Vec(perm[z.Uint64()]).Clone()
	}
	return out, nil
}

// SQ returns n space queries drawn uniformly from the per-dimension
// trimmed ranges of the collection (trim = 0.05 in the paper).
func SQ(coll *descriptor.Collection, n int, trim float64, seed int64) ([]vec.Vector, error) {
	if n <= 0 {
		return nil, fmt.Errorf("workload: need positive query count, got %d", n)
	}
	lo, hi, err := TrimmedRanges(coll, trim)
	if err != nil {
		return nil, err
	}
	r := rand.New(rand.NewSource(seed))
	dims := coll.Dims()
	out := make([]vec.Vector, n)
	for qi := range out {
		q := make(vec.Vector, dims)
		for d := 0; d < dims; d++ {
			q[d] = lo[d] + float32(r.Float64())*(hi[d]-lo[d])
		}
		out[qi] = q
	}
	return out, nil
}
