package workload

import (
	"time"

	"repro/internal/search"
	"repro/internal/search/batchexec"
	"repro/internal/shard"
	"repro/internal/vec"
)

// Run executes a whole query workload through the chunk-major batch
// engine, writing the outcome of queries[qi] into results[qi] (the
// engine enforces len(results) == len(queries)). The results array is
// caller-owned and reusable across runs (its neighbor slices are
// recycled), so sweeping one workload over many stop rules — the shape
// of every figure in the paper — allocates nothing per sweep point in
// steady state. Results are byte-identical to running each query through
// search.Searcher individually.
func Run(eng *batchexec.Engine, queries []vec.Vector, opts batchexec.Options, results []search.Result) error {
	return eng.Run(queries, opts, results)
}

// RunSharded executes a whole query workload scatter-gather across a
// sharded index: every shard's chunk-major engine runs the workload
// concurrently with the other shards, and results[qi] receives the merged
// outcome of queries[qi] (neighbors merged through knn.Less, ChunksRead
// summed over shards, Elapsed the max over the shards' simulated
// machines). Like Run, the results array is caller-owned and reusable
// across sweeps.
func RunSharded(r *shard.Router, queries []vec.Vector, opts batchexec.Options, results []search.Result) error {
	return r.RunBatch(queries, opts, results)
}

// RunShardedGlobal executes a whole query workload across a sharded
// index under the global budget discipline: each query's stop rule
// spends one total budget over the merged global centroid-rank order
// (instead of once per shard as in RunSharded), every charged chunk is
// billed to its owning shard's simulated pipeline, and results[qi]
// reports ChunksRead as the global total with Elapsed the max over the
// shards' machines. Like Run, the results array is caller-owned and
// reusable across sweeps.
func RunShardedGlobal(r *shard.Router, queries []vec.Vector, opts batchexec.Options, results []search.Result) error {
	return r.RunBatchGlobal(queries, opts, results)
}

// Stats aggregates one workload execution.
type Stats struct {
	Queries    int
	ChunksRead int           // total chunks processed across queries
	Simulated  time.Duration // summed per-query simulated time
	Exact      int           // queries whose result was provably exact
	// ChunksSkipped is the total chunks skipped as unavailable across
	// queries; Degraded counts the queries that skipped at least one.
	ChunksSkipped int
	Degraded      int
}

// Summarize folds per-query results into workload-level statistics.
func Summarize(results []search.Result) Stats {
	st := Stats{Queries: len(results)}
	for i := range results {
		st.ChunksRead += results[i].ChunksRead
		st.Simulated += results[i].Elapsed
		if results[i].Exact {
			st.Exact++
		}
		st.ChunksSkipped += results[i].ChunksSkipped
		if results[i].Degraded {
			st.Degraded++
		}
	}
	return st
}

// MeanSimulated returns the average simulated seconds per query.
func (s Stats) MeanSimulated() float64 {
	if s.Queries == 0 {
		return 0
	}
	return s.Simulated.Seconds() / float64(s.Queries)
}

// MeanChunks returns the average chunks read per query.
func (s Stats) MeanChunks() float64 {
	if s.Queries == 0 {
		return 0
	}
	return float64(s.ChunksRead) / float64(s.Queries)
}
