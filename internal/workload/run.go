package workload

import (
	"math"
	"slices"
	"time"

	"repro/internal/search"
	"repro/internal/search/batchexec"
	"repro/internal/shard"
	"repro/internal/vec"
)

// Run executes a whole query workload through the chunk-major batch
// engine, writing the outcome of queries[qi] into results[qi] (the
// engine enforces len(results) == len(queries)). The results array is
// caller-owned and reusable across runs (its neighbor slices are
// recycled), so sweeping one workload over many stop rules — the shape
// of every figure in the paper — allocates nothing per sweep point in
// steady state. Results are byte-identical to running each query through
// search.Searcher individually.
func Run(eng *batchexec.Engine, queries []vec.Vector, opts batchexec.Options, results []search.Result) error {
	return eng.Run(queries, opts, results)
}

// RunSharded executes a whole query workload scatter-gather across a
// sharded index: every shard's chunk-major engine runs the workload
// concurrently with the other shards, and results[qi] receives the merged
// outcome of queries[qi] (neighbors merged through knn.Less, ChunksRead
// summed over shards, Elapsed the max over the shards' simulated
// machines). Like Run, the results array is caller-owned and reusable
// across sweeps.
func RunSharded(r *shard.Router, queries []vec.Vector, opts batchexec.Options, results []search.Result) error {
	return r.RunBatch(queries, opts, results)
}

// RunShardedGlobal executes a whole query workload across a sharded
// index under the global budget discipline: each query's stop rule
// spends one total budget over the merged global centroid-rank order
// (instead of once per shard as in RunSharded), every charged chunk is
// billed to its owning shard's simulated pipeline, and results[qi]
// reports ChunksRead as the global total with Elapsed the max over the
// shards' machines. Like Run, the results array is caller-owned and
// reusable across sweeps.
func RunShardedGlobal(r *shard.Router, queries []vec.Vector, opts batchexec.Options, results []search.Result) error {
	return r.RunBatchGlobal(queries, opts, results)
}

// Stats aggregates one workload execution.
type Stats struct {
	Queries    int
	ChunksRead int           // total chunks processed across queries
	Simulated  time.Duration // summed per-query simulated time
	Exact      int           // queries whose result was provably exact
	// ChunksSkipped is the total chunks skipped as unavailable across
	// queries; Degraded counts the queries that skipped at least one.
	ChunksSkipped int
	Degraded      int
}

// Summarize folds per-query results into workload-level statistics.
func Summarize(results []search.Result) Stats {
	st := Stats{Queries: len(results)}
	for i := range results {
		st.ChunksRead += results[i].ChunksRead
		st.Simulated += results[i].Elapsed
		if results[i].Exact {
			st.Exact++
		}
		st.ChunksSkipped += results[i].ChunksSkipped
		if results[i].Degraded {
			st.Degraded++
		}
	}
	return st
}

// MeanSimulated returns the average simulated seconds per query.
func (s Stats) MeanSimulated() float64 {
	if s.Queries == 0 {
		return 0
	}
	return s.Simulated.Seconds() / float64(s.Queries)
}

// MeanChunks returns the average chunks read per query.
func (s Stats) MeanChunks() float64 {
	if s.Queries == 0 {
		return 0
	}
	return float64(s.ChunksRead) / float64(s.Queries)
}

// SimulatedQuantile returns the q-quantile (0 < q <= 1, e.g. 0.99 for
// the p99) of the per-query simulated times in results, using the
// nearest-rank definition: the ceil(q×n)-th smallest value. It sorts a
// scratch copy, never the results, and returns 0 on an empty slice —
// the tail-latency readout the spread-reads and heat-balance rows of
// the benchmark report.
func SimulatedQuantile(results []search.Result, q float64) time.Duration {
	if len(results) == 0 || q <= 0 {
		return 0
	}
	times := make([]time.Duration, len(results))
	for i := range results {
		times[i] = results[i].Elapsed
	}
	slices.Sort(times)
	rank := int(math.Ceil(q * float64(len(times))))
	if rank < 1 {
		rank = 1
	}
	if rank > len(times) {
		rank = len(times)
	}
	return times[rank-1]
}

// Stddev returns the population standard deviation of xs (0 when
// empty) — the imbalance readout over a per-shard load split: feed it
// the shards' served-read counts or billed serving seconds
// (shard.Router.ShardLoads); lower means the load spread more evenly
// across the fleet.
func Stddev(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	mean := 0.0
	for _, x := range xs {
		mean += x
	}
	mean /= float64(len(xs))
	varsum := 0.0
	for _, x := range xs {
		d := x - mean
		varsum += d * d
	}
	return math.Sqrt(varsum / float64(len(xs)))
}

// LoadSeconds extracts the shards' billed simulated serving seconds
// from a per-shard load split — the Stddev input for the spread-reads
// imbalance readout. All zero while spread reads are off (the billed
// estimator only runs for spread routing decisions).
func LoadSeconds(loads []shard.ShardLoad) []float64 {
	xs := make([]float64, len(loads))
	for i, ld := range loads {
		xs[i] = ld.Billed.Seconds()
	}
	return xs
}

// LoadReads extracts the shards' served-read counts from a per-shard
// load split, as float64s for Stddev — populated under both routing
// policies.
func LoadReads(loads []shard.ShardLoad) []float64 {
	xs := make([]float64, len(loads))
	for i, ld := range loads {
		xs[i] = float64(ld.Reads)
	}
	return xs
}
