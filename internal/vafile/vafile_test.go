package vafile

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/descriptor"
	"repro/internal/imagegen"
	"repro/internal/scan"
	"repro/internal/vec"
)

func TestBuildValidation(t *testing.T) {
	ds := imagegen.MustGenerate(imagegen.DefaultConfig(500, 1))
	if _, err := Build(ds.Collection, 0); err == nil {
		t.Fatal("bits=0 accepted")
	}
	if _, err := Build(ds.Collection, 9); err == nil {
		t.Fatal("bits=9 accepted")
	}
	if _, err := Build(descriptor.NewCollection(4, 0), 4); err == nil {
		t.Fatal("empty collection accepted")
	}
}

// The geometric heart of the VA-File: for every descriptor the true
// distance must lie between the cell bounds.
func TestBoundsAreValid(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		ds := imagegen.MustGenerate(imagegen.DefaultConfig(800, seed))
		coll := ds.Collection
		ix, err := Build(coll, 4)
		if err != nil {
			return false
		}
		q := coll.Vec(r.Intn(coll.Len())).Clone()
		for d := range q {
			q[d] += float32(r.NormFloat64() * 5)
		}
		dims := coll.Dims()
		for i := 0; i < coll.Len(); i += 37 {
			lb2, ub2 := ix.bounds2(q, i, dims)
			truth := vec.Distance(q, coll.Vec(i))
			if math.Sqrt(lb2) > truth+1e-5 || math.Sqrt(ub2) < truth-1e-5 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}

// Exact two-phase search must equal the sequential scan.
func TestExactMatchesScan(t *testing.T) {
	ds := imagegen.MustGenerate(imagegen.DefaultConfig(3000, 2))
	coll := ds.Collection
	ix, err := Build(coll, 5)
	if err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(3))
	for trial := 0; trial < 10; trial++ {
		q := coll.Vec(r.Intn(coll.Len()))
		got, st, err := ix.Search(q, 20, Options{})
		if err != nil {
			t.Fatal(err)
		}
		want := scan.KNN(coll, q, 20)
		if len(got) != len(want) {
			t.Fatalf("got %d, want %d", len(got), len(want))
		}
		for i := range want {
			if math.Abs(got[i].Dist-want[i].Dist) > 1e-9 {
				t.Fatalf("trial %d rank %d: %v vs %v", trial, i, got[i].Dist, want[i].Dist)
			}
		}
		// The whole point: phase 2 must visit far fewer vectors than n.
		if st.Visited >= coll.Len()/2 {
			t.Fatalf("visited %d of %d vectors: VA filtering ineffective", st.Visited, coll.Len())
		}
	}
}

func TestVisitBudget(t *testing.T) {
	ds := imagegen.MustGenerate(imagegen.DefaultConfig(3000, 4))
	coll := ds.Collection
	ix, err := Build(coll, 4)
	if err != nil {
		t.Fatal(err)
	}
	q := coll.Vec(55)
	_, full, err := ix.Search(q, 20, Options{})
	if err != nil {
		t.Fatal(err)
	}
	budget := full.Visited / 2
	if budget < 1 {
		t.Skip("too few visits to halve")
	}
	res, st, err := ix.Search(q, 20, Options{VisitBudget: budget})
	if err != nil {
		t.Fatal(err)
	}
	if st.Visited > budget {
		t.Fatalf("visited %d > budget %d", st.Visited, budget)
	}
	if len(res) == 0 {
		t.Fatal("budgeted search returned nothing")
	}
}

// Epsilon must prune monotonically: more epsilon, fewer candidates.
func TestEpsilonPrunes(t *testing.T) {
	ds := imagegen.MustGenerate(imagegen.DefaultConfig(3000, 5))
	coll := ds.Collection
	ix, err := Build(coll, 4)
	if err != nil {
		t.Fatal(err)
	}
	q := coll.Vec(10)
	var prev = math.MaxInt
	for _, eps := range []float64{0, 2, 8} {
		_, st, err := ix.Search(q, 10, Options{Epsilon: eps})
		if err != nil {
			t.Fatal(err)
		}
		if st.Candidates > prev {
			t.Fatalf("epsilon %v increased candidates: %d > %d", eps, st.Candidates, prev)
		}
		prev = st.Candidates
	}
}

func TestMoreBitsTightenBounds(t *testing.T) {
	ds := imagegen.MustGenerate(imagegen.DefaultConfig(2000, 6))
	coll := ds.Collection
	coarse, err := Build(coll, 2)
	if err != nil {
		t.Fatal(err)
	}
	fine, err := Build(coll, 7)
	if err != nil {
		t.Fatal(err)
	}
	q := coll.Vec(123)
	_, cs, err := coarse.Search(q, 10, Options{})
	if err != nil {
		t.Fatal(err)
	}
	_, fs, err := fine.Search(q, 10, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if fs.Candidates >= cs.Candidates {
		t.Fatalf("finer quantization did not reduce candidates: %d vs %d", fs.Candidates, cs.Candidates)
	}
}

func TestSearchEdges(t *testing.T) {
	ds := imagegen.MustGenerate(imagegen.DefaultConfig(500, 7))
	ix, err := Build(ds.Collection, 4)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := ix.Search(vec.Vector{1, 2}, 5, Options{}); err == nil {
		t.Fatal("dims mismatch accepted")
	}
	res, _, err := ix.Search(ds.Collection.Vec(0), 0, Options{})
	if err != nil || res != nil {
		t.Fatalf("k=0: %v %v", res, err)
	}
	if ix.ApproximationBytes() != ds.Collection.Len()*ds.Collection.Dims() {
		t.Fatalf("approximation bytes = %d", ix.ApproximationBytes())
	}
}

func BenchmarkVAFileSearch(b *testing.B) {
	ds := imagegen.MustGenerate(imagegen.DefaultConfig(50000, 1))
	ix, err := Build(ds.Collection, 5)
	if err != nil {
		b.Fatal(err)
	}
	q := ds.Collection.Vec(77)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := ix.Search(q, 30, Options{}); err != nil {
			b.Fatal(err)
		}
	}
}
