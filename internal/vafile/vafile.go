// Package vafile implements the VA-File (Weber, Schek & Blott, VLDB 1998)
// and its approximate variants (Weber & Böhm, EDBT 2000), the related
// work the paper cites for "trading quality for time" (§6).
//
// A VA-File stores, besides the full vectors, a compact approximation of
// every descriptor: b bits per dimension addressing a grid cell. Search
// proceeds in two phases:
//
//  1. Scan all approximations, computing per-descriptor lower and upper
//     distance bounds from the cell geometry; keep the k-th smallest
//     upper bound and collect candidates whose lower bound beats it.
//  2. Visit candidates in ascending lower-bound order, computing exact
//     distances, stopping when the next lower bound exceeds the current
//     k-th exact distance. This yields the exact k-NN.
//
// The approximate variants: VisitBudget interrupts phase 2 after a fixed
// number of exact-vector visits (the approximate VA-File), and Epsilon
// shrinks the bounds (VA-BND), pruning more aggressively at the price of
// possible misses.
package vafile

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/descriptor"
	"repro/internal/knn"
	"repro/internal/vec"
)

// Index is a VA-File over a collection.
type Index struct {
	coll  *descriptor.Collection
	bits  uint
	cells int
	// marks[d] holds the cells+1 partition boundaries of dimension d
	// (equi-populated, built from the data distribution).
	marks [][]float32
	// approx holds cells indexes, coll.Len() × dims, one byte each
	// (bits <= 8).
	approx []uint8
}

// Build constructs the VA-File with b bits per dimension (1..8).
// Partition marks are equi-populated per dimension, the standard choice
// for skewed data.
func Build(coll *descriptor.Collection, bits uint) (*Index, error) {
	if bits < 1 || bits > 8 {
		return nil, fmt.Errorf("vafile: bits per dimension must be 1..8, got %d", bits)
	}
	if coll.Len() == 0 {
		return nil, fmt.Errorf("vafile: empty collection")
	}
	dims := coll.Dims()
	n := coll.Len()
	cells := 1 << bits
	ix := &Index{coll: coll, bits: bits, cells: cells}

	vals := make([]float32, n)
	for d := 0; d < dims; d++ {
		for i := 0; i < n; i++ {
			vals[i] = coll.Vec(i)[d]
		}
		sort.Slice(vals, func(a, b int) bool { return vals[a] < vals[b] })
		marks := make([]float32, cells+1)
		for c := 0; c <= cells; c++ {
			pos := c * (n - 1) / cells
			marks[c] = vals[pos]
		}
		// Guarantee strictly covering outer marks so every value falls in
		// a cell.
		marks[0] = float32(math.Nextafter(float64(vals[0]), math.Inf(-1)))
		marks[cells] = float32(math.Nextafter(float64(vals[n-1]), math.Inf(1)))
		ix.marks = append(ix.marks, marks)
	}

	ix.approx = make([]uint8, n*dims)
	for i := 0; i < n; i++ {
		v := coll.Vec(i)
		for d := 0; d < dims; d++ {
			ix.approx[i*dims+d] = ix.cellOf(d, v[d])
		}
	}
	return ix, nil
}

// cellOf locates the cell of value x in dimension d.
func (ix *Index) cellOf(d int, x float32) uint8 {
	marks := ix.marks[d]
	// Find the first mark greater than x; the cell is one less.
	c := sort.Search(len(marks), func(i int) bool { return marks[i] > x }) - 1
	if c < 0 {
		c = 0
	}
	if c >= ix.cells {
		c = ix.cells - 1
	}
	return uint8(c)
}

// Options controls the approximate variants. The zero value runs the
// exact two-phase search.
type Options struct {
	// VisitBudget interrupts phase 2 after this many exact-vector visits
	// (0 = unlimited): the "approximate version of the VA-File" of §6.
	VisitBudget int
	// Epsilon shrinks both bounds toward the query (VA-BND): lower bounds
	// are increased and upper bounds decreased by Epsilon, pruning more
	// candidates at the risk of missing true neighbors.
	Epsilon float64
}

// Stats reports the work a query performed.
type Stats struct {
	Candidates int // descriptors surviving phase 1
	Visited    int // exact vectors computed in phase 2
}

// Search runs the two-phase VA-File k-NN search.
func (ix *Index) Search(q vec.Vector, k int, opts Options) ([]knn.Neighbor, Stats, error) {
	var st Stats
	if len(q) != ix.coll.Dims() {
		return nil, st, fmt.Errorf("vafile: query dims %d != %d", len(q), ix.coll.Dims())
	}
	if k <= 0 {
		return nil, st, nil
	}
	n := ix.coll.Len()
	dims := ix.coll.Dims()

	// Phase 1: bound scan. Track the k smallest upper bounds with a
	// max-heap; collect lower bounds for the candidate filter. All bounds
	// stay in squared form — the phase only compares them — so the exact
	// path computes no square roots at all; only the VA-BND epsilon
	// adjustment (defined in true-distance space) converts and back.
	lbs := make([]float64, n)
	ubHeap := make([]float64, 0, k)
	pushUB := func(u float64) {
		if len(ubHeap) < k {
			ubHeap = append(ubHeap, u)
			i := len(ubHeap) - 1
			for i > 0 {
				p := (i - 1) / 2
				if ubHeap[p] >= ubHeap[i] {
					break
				}
				ubHeap[p], ubHeap[i] = ubHeap[i], ubHeap[p]
				i = p
			}
			return
		}
		if u >= ubHeap[0] {
			return
		}
		ubHeap[0] = u
		i := 0
		for {
			l, r := 2*i+1, 2*i+2
			big := i
			if l < len(ubHeap) && ubHeap[l] > ubHeap[big] {
				big = l
			}
			if r < len(ubHeap) && ubHeap[r] > ubHeap[big] {
				big = r
			}
			if big == i {
				return
			}
			ubHeap[i], ubHeap[big] = ubHeap[big], ubHeap[i]
			i = big
		}
	}
	for i := 0; i < n; i++ {
		lb2, ub2 := ix.bounds2(q, i, dims)
		if opts.Epsilon > 0 {
			lb := math.Sqrt(lb2) + opts.Epsilon
			lb2 = lb * lb
			ub := math.Sqrt(ub2) - opts.Epsilon
			if ub < 0 {
				ub = 0
			}
			ub2 = ub * ub
		}
		lbs[i] = lb2
		pushUB(ub2)
	}
	kthUB2 := math.Inf(1)
	if len(ubHeap) == k {
		kthUB2 = ubHeap[0]
	}

	type cand struct {
		pos int
		lb2 float64
	}
	var cands []cand
	for i := 0; i < n; i++ {
		if lbs[i] <= kthUB2 {
			cands = append(cands, cand{i, lbs[i]})
		}
	}
	st.Candidates = len(cands)
	// Ties on the lower bound refine in collection order so Visited counts
	// are deterministic under a VisitBudget.
	sort.Slice(cands, func(a, b int) bool {
		if cands[a].lb2 != cands[b].lb2 {
			return cands[a].lb2 < cands[b].lb2
		}
		return cands[a].pos < cands[b].pos
	})

	// Phase 2: refine in ascending lower-bound order with the shared
	// squared-distance kernel and heap; stop on strict bound excess so an
	// equal-distance, smaller-ID neighbor is still admitted.
	heap := knn.NewHeap(k)
	for _, c := range cands {
		if c.lb2 > heap.Kth2() {
			break
		}
		if opts.VisitBudget > 0 && st.Visited >= opts.VisitBudget {
			break
		}
		d2 := vec.PartialSquaredDistance(q, ix.coll.Vec(c.pos), heap.Kth2())
		heap.OfferSquared(ix.coll.IDAt(c.pos), d2)
		st.Visited++
	}
	return heap.Sorted(), st, nil
}

// bounds2 computes the squared lower and upper distance bounds between q
// and the cell of descriptor i.
func (ix *Index) bounds2(q vec.Vector, i, dims int) (lb2, ub2 float64) {
	var lo2, hi2 float64
	base := i * dims
	for d := 0; d < dims; d++ {
		c := int(ix.approx[base+d])
		cellLo := float64(ix.marks[d][c])
		cellHi := float64(ix.marks[d][c+1])
		x := float64(q[d])
		// Lower bound: distance from x to the cell interval.
		switch {
		case x < cellLo:
			diff := cellLo - x
			lo2 += diff * diff
		case x > cellHi:
			diff := x - cellHi
			lo2 += diff * diff
		}
		// Upper bound: distance to the farther cell edge.
		far := math.Max(math.Abs(x-cellLo), math.Abs(x-cellHi))
		hi2 += far * far
	}
	return lo2, hi2
}

// ApproximationBytes returns the size of the approximation file: the
// compression the VA-File trades against full vectors.
func (ix *Index) ApproximationBytes() int {
	// One byte per dimension in this implementation (bits <= 8).
	return len(ix.approx)
}
