package vptree

import (
	"container/heap"
	"math"
	"sort"

	"repro/internal/vec"
)

// KNearestApprox returns up to k near neighbors of q using best-first
// traversal with a node-visit budget. With maxVisits >= Len() the result
// is exact; smaller budgets trade accuracy for a hard cost cap, which is
// what high-dimensional data demands (exact VP-tree search degenerates
// toward a linear scan in 24 dimensions — the curse of dimensionality the
// paper's §1 opens with).
//
// Results are ordered by increasing distance.
func (t *Tree) KNearestApprox(q vec.Vector, k, maxVisits int) []Item {
	if k <= 0 || t.root == nil {
		return nil
	}
	if maxVisits <= 0 {
		maxVisits = 1
	}

	type scored struct {
		item Item
		dist float64
	}
	best := make([]scored, 0, k) // max-heap on dist
	worst := func() float64 {
		if len(best) < k {
			return inf()
		}
		return best[0].dist
	}
	push := func(s scored) {
		best = append(best, s)
		i := len(best) - 1
		for i > 0 {
			p := (i - 1) / 2
			if best[p].dist >= best[i].dist {
				break
			}
			best[p], best[i] = best[i], best[p]
			i = p
		}
		if len(best) > k {
			last := len(best) - 1
			best[0] = best[last]
			best = best[:last]
			i := 0
			for {
				l, r := 2*i+1, 2*i+2
				big := i
				if l < len(best) && best[l].dist > best[big].dist {
					big = l
				}
				if r < len(best) && best[r].dist > best[big].dist {
					big = r
				}
				if big == i {
					break
				}
				best[i], best[big] = best[big], best[i]
				i = big
			}
		}
	}

	frontier := &nodePQ{}
	heap.Push(frontier, nodeCand{t.root, 0})
	visits := 0
	for frontier.Len() > 0 && visits < maxVisits {
		nc := heap.Pop(frontier).(nodeCand)
		n := nc.n
		if nc.bound >= worst() {
			break // nothing in the frontier can improve the result
		}
		visits++
		d := vec.Distance(q, n.item.Vec)
		if d < worst() {
			push(scored{n.item, d})
		}
		// Enqueue children with their pruning lower bounds.
		if n.inside != nil {
			lb := d - n.threshold
			if lb < 0 {
				lb = 0
			}
			if lb < worst() {
				heap.Push(frontier, nodeCand{n.inside, lb})
			}
		}
		if n.outside != nil {
			lb := n.threshold - d
			if lb < 0 {
				lb = 0
			}
			if lb < worst() {
				heap.Push(frontier, nodeCand{n.outside, lb})
			}
		}
	}

	out := make([]Item, len(best))
	dists := make([]float64, len(best))
	for i, s := range best {
		out[i], dists[i] = s.item, s.dist
	}
	sort.Sort(&byDist{out, dists})
	return out
}

func inf() float64 { return math.Inf(1) }

type nodeCand struct {
	n     *node
	bound float64
}

type nodePQ []nodeCand

func (p nodePQ) Len() int            { return len(p) }
func (p nodePQ) Less(i, j int) bool  { return p[i].bound < p[j].bound }
func (p nodePQ) Swap(i, j int)       { p[i], p[j] = p[j], p[i] }
func (p *nodePQ) Push(x interface{}) { *p = append(*p, x.(nodeCand)) }
func (p *nodePQ) Pop() interface{} {
	old := *p
	n := len(old)
	it := old[n-1]
	*p = old[:n-1]
	return it
}
