// Package vptree implements a vantage-point tree over float32 vectors.
//
// The tree supports exact nearest-neighbor and range queries in any metric
// space; here it is specialized to Euclidean distance. It is used as the
// candidate-search accelerator for BAG clustering (finding the nearest
// cluster centroid without scanning all clusters; see DESIGN.md §2) and as
// a standalone exact-search substrate in tests.
package vptree

import (
	"math"
	"math/rand"
	"sort"

	"repro/internal/vec"
)

// Item is a payload stored in the tree: a point plus an opaque id the
// caller uses to map results back.
type Item struct {
	ID  int
	Vec vec.Vector
}

type node struct {
	item      Item
	threshold float64 // median distance from item to points in the subtree
	inside    *node   // points with dist <= threshold
	outside   *node   // points with dist > threshold
}

// Tree is an immutable vantage-point tree.
type Tree struct {
	root *node
	size int
}

// Build constructs a tree over the given items. The items slice is
// reordered in place during construction. Build is deterministic for a
// given seed.
func Build(items []Item, seed int64) *Tree {
	r := rand.New(rand.NewSource(seed))
	t := &Tree{size: len(items)}
	t.root = build(items, r)
	return t
}

func build(items []Item, r *rand.Rand) *node {
	if len(items) == 0 {
		return nil
	}
	// Pick a random vantage point and move it to the front.
	p := r.Intn(len(items))
	items[0], items[p] = items[p], items[0]
	n := &node{item: items[0]}
	rest := items[1:]
	if len(rest) == 0 {
		return n
	}
	// Partition around the median distance to the vantage point.
	dists := make([]float64, len(rest))
	for i, it := range rest {
		dists[i] = vec.Distance(n.item.Vec, it.Vec)
	}
	order := make([]int, len(rest))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return dists[order[a]] < dists[order[b]] })
	mid := len(order) / 2
	n.threshold = dists[order[mid]]
	insideItems := make([]Item, 0, mid+1)
	outsideItems := make([]Item, 0, len(rest)-mid)
	for _, idx := range order {
		if dists[idx] <= n.threshold && len(insideItems) <= mid {
			insideItems = append(insideItems, rest[idx])
		} else {
			outsideItems = append(outsideItems, rest[idx])
		}
	}
	n.inside = build(insideItems, r)
	n.outside = build(outsideItems, r)
	return n
}

// Len returns the number of items stored.
func (t *Tree) Len() int { return t.size }

// Nearest returns the item closest to q and its distance. ok is false for
// an empty tree. The exclude predicate, if non-nil, skips items for which
// it returns true (used by BAG to avoid matching a cluster with itself).
func (t *Tree) Nearest(q vec.Vector, exclude func(id int) bool) (best Item, bestDist float64, ok bool) {
	bestDist = math.Inf(1)
	var search func(n *node)
	search = func(n *node) {
		if n == nil {
			return
		}
		d := vec.Distance(q, n.item.Vec)
		if d < bestDist && (exclude == nil || !exclude(n.item.ID)) {
			best, bestDist, ok = n.item, d, true
		}
		if d <= n.threshold {
			search(n.inside)
			if d+bestDist > n.threshold {
				search(n.outside)
			}
		} else {
			search(n.outside)
			if d-bestDist <= n.threshold {
				search(n.inside)
			}
		}
	}
	search(t.root)
	return best, bestDist, ok
}

// KNearest returns up to k items closest to q, ordered by increasing
// distance.
func (t *Tree) KNearest(q vec.Vector, k int) []Item {
	if k <= 0 {
		return nil
	}
	type cand struct {
		item Item
		dist float64
	}
	var heap []cand // max-heap on dist, at most k entries
	push := func(c cand) {
		heap = append(heap, c)
		i := len(heap) - 1
		for i > 0 {
			parent := (i - 1) / 2
			if heap[parent].dist >= heap[i].dist {
				break
			}
			heap[parent], heap[i] = heap[i], heap[parent]
			i = parent
		}
	}
	popMax := func() {
		last := len(heap) - 1
		heap[0] = heap[last]
		heap = heap[:last]
		i := 0
		for {
			l, r := 2*i+1, 2*i+2
			big := i
			if l < len(heap) && heap[l].dist > heap[big].dist {
				big = l
			}
			if r < len(heap) && heap[r].dist > heap[big].dist {
				big = r
			}
			if big == i {
				break
			}
			heap[i], heap[big] = heap[big], heap[i]
			i = big
		}
	}
	worst := func() float64 {
		if len(heap) < k {
			return math.Inf(1)
		}
		return heap[0].dist
	}

	var search func(n *node)
	search = func(n *node) {
		if n == nil {
			return
		}
		d := vec.Distance(q, n.item.Vec)
		if d < worst() {
			push(cand{n.item, d})
			if len(heap) > k {
				popMax()
			}
		}
		if d <= n.threshold {
			search(n.inside)
			if d+worst() > n.threshold {
				search(n.outside)
			}
		} else {
			search(n.outside)
			if d-worst() <= n.threshold {
				search(n.inside)
			}
		}
	}
	search(t.root)

	out := make([]Item, len(heap))
	dists := make([]float64, len(heap))
	for i, c := range heap {
		out[i], dists[i] = c.item, c.dist
	}
	sort.Sort(&byDist{out, dists})
	return out
}

type byDist struct {
	items []Item
	dists []float64
}

func (b *byDist) Len() int           { return len(b.items) }
func (b *byDist) Less(i, j int) bool { return b.dists[i] < b.dists[j] }
func (b *byDist) Swap(i, j int) {
	b.items[i], b.items[j] = b.items[j], b.items[i]
	b.dists[i], b.dists[j] = b.dists[j], b.dists[i]
}

// InRange returns all items within radius of q (unordered).
func (t *Tree) InRange(q vec.Vector, radius float64) []Item {
	var out []Item
	var search func(n *node)
	search = func(n *node) {
		if n == nil {
			return
		}
		d := vec.Distance(q, n.item.Vec)
		if d <= radius {
			out = append(out, n.item)
		}
		if d-radius <= n.threshold {
			search(n.inside)
		}
		if d+radius > n.threshold {
			search(n.outside)
		}
	}
	search(t.root)
	return out
}
