package vptree

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/vec"
)

func randItems(r *rand.Rand, n, dims int) []Item {
	items := make([]Item, n)
	for i := range items {
		v := make(vec.Vector, dims)
		for d := range v {
			v[d] = float32(r.NormFloat64() * 10)
		}
		items[i] = Item{ID: i, Vec: v}
	}
	return items
}

// bruteNearest is the oracle for Nearest.
func bruteNearest(items []Item, q vec.Vector, exclude func(int) bool) (Item, float64, bool) {
	best, bd, ok := Item{}, math.Inf(1), false
	for _, it := range items {
		if exclude != nil && exclude(it.ID) {
			continue
		}
		if d := vec.Distance(q, it.Vec); d < bd {
			best, bd, ok = it, d, true
		}
	}
	return best, bd, ok
}

func TestEmptyTree(t *testing.T) {
	tr := Build(nil, 1)
	if tr.Len() != 0 {
		t.Fatalf("Len = %d", tr.Len())
	}
	if _, _, ok := tr.Nearest(vec.Vector{1, 2}, nil); ok {
		t.Fatal("Nearest on empty tree returned ok")
	}
	if got := tr.KNearest(vec.Vector{1, 2}, 3); len(got) != 0 {
		t.Fatalf("KNearest on empty tree = %v", got)
	}
}

func TestNearestMatchesBruteForce(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		itemsOrig := randItems(r, 200, 8)
		items := append([]Item(nil), itemsOrig...)
		tr := Build(items, seed)
		for trial := 0; trial < 10; trial++ {
			q := make(vec.Vector, 8)
			for d := range q {
				q[d] = float32(r.NormFloat64() * 10)
			}
			_, wantD, _ := bruteNearest(itemsOrig, q, nil)
			_, gotD, ok := tr.Nearest(q, nil)
			if !ok || math.Abs(gotD-wantD) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestNearestWithExclusion(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	itemsOrig := randItems(r, 100, 6)
	tr := Build(append([]Item(nil), itemsOrig...), 4)
	// Query at an existing point, excluding itself: must return a
	// different item, matching brute force.
	q := itemsOrig[17].Vec
	excl := func(id int) bool { return id == 17 }
	wantItem, wantD, _ := bruteNearest(itemsOrig, q, excl)
	gotItem, gotD, ok := tr.Nearest(q, excl)
	if !ok {
		t.Fatal("no result")
	}
	if gotItem.ID == 17 {
		t.Fatal("excluded item returned")
	}
	if math.Abs(gotD-wantD) > 1e-9 {
		t.Fatalf("dist = %v, want %v (got id %d want id %d)", gotD, wantD, gotItem.ID, wantItem.ID)
	}
}

func TestKNearestMatchesBruteForce(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		itemsOrig := randItems(r, 150, 8)
		tr := Build(append([]Item(nil), itemsOrig...), seed)
		q := make(vec.Vector, 8)
		for d := range q {
			q[d] = float32(r.NormFloat64() * 10)
		}
		for _, k := range []int{1, 5, 20} {
			got := tr.KNearest(q, k)
			if len(got) != k {
				return false
			}
			// Oracle: sort all by distance.
			dists := make([]float64, len(itemsOrig))
			for i, it := range itemsOrig {
				dists[i] = vec.Distance(q, it.Vec)
			}
			sort.Float64s(dists)
			for i, it := range got {
				if math.Abs(vec.Distance(q, it.Vec)-dists[i]) > 1e-9 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestKNearestOrdered(t *testing.T) {
	r := rand.New(rand.NewSource(8))
	tr := Build(randItems(r, 300, 5), 8)
	q := make(vec.Vector, 5)
	got := tr.KNearest(q, 25)
	for i := 1; i < len(got); i++ {
		if vec.Distance(q, got[i-1].Vec) > vec.Distance(q, got[i].Vec)+1e-12 {
			t.Fatalf("results not ordered at %d", i)
		}
	}
}

func TestKNearestMoreThanSize(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	tr := Build(randItems(r, 7, 3), 2)
	got := tr.KNearest(make(vec.Vector, 3), 50)
	if len(got) != 7 {
		t.Fatalf("len = %d, want 7", len(got))
	}
}

func TestInRangeMatchesBruteForce(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		itemsOrig := randItems(r, 120, 6)
		tr := Build(append([]Item(nil), itemsOrig...), seed)
		q := make(vec.Vector, 6)
		for d := range q {
			q[d] = float32(r.NormFloat64() * 10)
		}
		radius := 15.0
		got := tr.InRange(q, radius)
		want := 0
		for _, it := range itemsOrig {
			if vec.Distance(q, it.Vec) <= radius {
				want++
			}
		}
		if len(got) != want {
			return false
		}
		for _, it := range got {
			if vec.Distance(q, it.Vec) > radius {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestDuplicatePoints(t *testing.T) {
	v := vec.Vector{1, 1, 1}
	items := []Item{{0, v.Clone()}, {1, v.Clone()}, {2, v.Clone()}, {3, vec.Vector{5, 5, 5}}}
	tr := Build(items, 1)
	got := tr.KNearest(v, 3)
	if len(got) != 3 {
		t.Fatalf("len = %d", len(got))
	}
	for _, it := range got[:3] {
		if it.ID == 3 {
			t.Fatal("far point ranked among duplicates")
		}
	}
}

func BenchmarkBuild10k(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	items := randItems(r, 10000, vec.Dims)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Build(append([]Item(nil), items...), 1)
	}
}

func BenchmarkNearest10k(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	tr := Build(randItems(r, 10000, vec.Dims), 1)
	q := make(vec.Vector, vec.Dims)
	for d := range q {
		q[d] = float32(r.NormFloat64() * 10)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Nearest(q, nil)
	}
}
