package simdisk

import (
	"testing"
	"time"
)

// TestChunkAtNoTierEqualsChunk pins that without a tier ChunkAt is
// byte-identical to Chunk in both pipeline modes.
func TestChunkAtNoTierEqualsChunk(t *testing.T) {
	for _, overlap := range []bool{false, true} {
		m := Default2005()
		a := NewPipeline(m, overlap, time.Millisecond)
		b := NewPipeline(m, overlap, time.Millisecond)
		for i := 0; i < 10; i++ {
			ea := a.Chunk(8192*(i+1), 100*(i+1))
			eb := b.ChunkAt(i, 8192*(i+1), 100*(i+1))
			if ea != eb {
				t.Fatalf("overlap=%v chunk %d: Chunk %v != ChunkAt %v", overlap, i, ea, eb)
			}
		}
	}
}

// TestChunkAtResidentChargesCPUOnly pins the tier's charging rule: a
// resident chunk advances the clock by exactly the CPU scan, with the
// I/O stream untouched in overlapped mode.
func TestChunkAtResidentChargesCPUOnly(t *testing.T) {
	for _, overlap := range []bool{false, true} {
		m := Default2005()
		tier := NewCacheTier(4)
		m.Cache = tier
		tier.resident[2] = true

		p := NewPipeline(m, overlap, 0)
		p.ChunkAt(0, 8192, 100) // miss: disk charged
		before := p.Elapsed()
		elapsed := p.ChunkAt(2, 8192, 100) // resident: CPU only
		want := before + m.CPUTime(100)
		if elapsed != want {
			t.Fatalf("overlap=%v resident charge: elapsed %v, want %v", overlap, elapsed, want)
		}
		if tier.Hits() != 1 || tier.Misses() != 1 {
			t.Fatalf("overlap=%v: hits=%d misses=%d", overlap, tier.Hits(), tier.Misses())
		}
	}
}

// TestChunkAtResidentOverlapKeepsIOStream pins that in overlapped mode a
// resident chunk does not consume read-stream time: a following
// non-resident chunk still overlaps its transfer with the accumulated
// CPU work, exactly as if the resident chunk had not existed on disk.
func TestChunkAtResidentOverlapKeepsIOStream(t *testing.T) {
	m := Default2005()
	tier := NewCacheTier(3)
	m.Cache = tier
	tier.resident[1] = true

	// Reference: the same sequence with the resident chunk scanned for
	// free I/O-wise — pipeline without the middle chunk's read.
	ref := NewPipeline(&Model{Seek: m.Seek, TransferRate: m.TransferRate, DistanceCost: m.DistanceCost,
		IndexOverhead: m.IndexOverhead, SortEntryCost: m.SortEntryCost}, true, 0)
	ref.Chunk(8192, 100)
	refMid := ref.Elapsed() + m.CPUTime(50) // CPU-only advance
	ref.cpuDone = refMid
	refEnd := ref.Chunk(8192, 100)

	p := NewPipeline(m, true, 0)
	p.ChunkAt(0, 8192, 100)
	mid := p.ChunkAt(1, 8192, 50)
	if mid != refMid {
		t.Fatalf("resident chunk elapsed %v, want %v", mid, refMid)
	}
	end := p.ChunkAt(2, 8192, 100)
	if end != refEnd {
		t.Fatalf("post-resident chunk elapsed %v, want %v", end, refEnd)
	}
}

// TestSetResidentTopFraction pins the deterministic top-N%-by-count
// promotion with ties broken by ascending index.
func TestSetResidentTopFraction(t *testing.T) {
	tier := NewCacheTier(10)
	m := Default2005()
	m.Cache = tier
	p := NewPipeline(m, false, 0)
	touch := func(i, n int) {
		for k := 0; k < n; k++ {
			p.ChunkAt(i, 1024, 1)
		}
	}
	touch(7, 5)
	touch(3, 5)
	touch(1, 2)

	if got := tier.SetResidentTopFraction(0.2); got != 2 {
		t.Fatalf("resident count = %d, want 2", got)
	}
	// Ties between chunks 3 and 7 (5 touches each) fall to the lower
	// index first; at 20% both fit.
	if !tier.Resident(3) || !tier.Resident(7) {
		t.Fatal("hottest chunks 3 and 7 not resident")
	}
	if got := tier.SetResidentTopFraction(0.1); got != 1 {
		t.Fatalf("resident count = %d, want 1", got)
	}
	if !tier.Resident(3) || tier.Resident(7) {
		t.Fatal("tie at 10% must keep the lower index (3)")
	}
	if tier.SetResidentTopFraction(0) != 0 || tier.ResidentCount() != 0 {
		t.Fatal("fraction 0 must clear residency")
	}
}
