// The cache tier: the simulated counterpart of the real decoded-chunk
// cache (internal/chunkcache). Where the real cache saves wall-clock by
// skipping reads and decodes, the tier lets the 2005 cost model answer
// the paper-style question "what does the quality/time trade-off look
// like when the hottest N% of chunks are RAM-resident?": a resident
// chunk costs only its CPU scan — no seek, no transfer — while every
// other chunk is charged exactly as before.
package simdisk

import (
	"math"
	"sort"
	"sync/atomic"
	"time"
)

// CacheTier marks a subset of a store's chunks as RAM-resident for the
// simulated cost model and records per-chunk access counts, so a
// profiling run (nothing resident — timings identical to no tier at
// all) can pick the hottest chunks for the next run.
//
// Chunk indexes are those of the store the pipeline's search runs over:
// the plain store for an unsharded index, the shard-local view in the
// router's per-shard discipline, and the virtual concatenated store in
// its global-budget discipline.
//
// Counters are atomic, so concurrent searches (the batch engine) may
// share a tier; SetResidentTopFraction, however, must not run
// concurrently with searches — retune between runs, exactly like
// swapping the model.
type CacheTier struct {
	resident []bool
	counts   []atomic.Int64
	hits     atomic.Int64
	misses   atomic.Int64
}

// NewCacheTier returns a tier over the given chunk count with nothing
// resident: attached to a model it changes no timing, only profiles
// access counts.
func NewCacheTier(chunks int) *CacheTier {
	return &CacheTier{resident: make([]bool, chunks), counts: make([]atomic.Int64, chunks)}
}

// Resident reports whether chunk i is RAM-resident in the model.
func (t *CacheTier) Resident(i int) bool {
	return i >= 0 && i < len(t.resident) && t.resident[i]
}

// observe records one charged chunk access and returns its residency.
func (t *CacheTier) observe(i int) bool {
	if i < 0 || i >= len(t.resident) {
		return false
	}
	t.counts[i].Add(1)
	if t.resident[i] {
		t.hits.Add(1)
		return true
	}
	t.misses.Add(1)
	return false
}

// SetResidentTopFraction marks the ceil(fraction·chunks) chunks with the
// highest observed access counts resident (ties broken by ascending
// chunk index, so the choice is deterministic) and every other chunk
// non-resident. It returns the resident count. Call between runs, not
// concurrently with searches.
func (t *CacheTier) SetResidentTopFraction(fraction float64) int {
	n := len(t.resident)
	for i := range t.resident {
		t.resident[i] = false
	}
	if fraction <= 0 || n == 0 {
		return 0
	}
	keep := int(math.Ceil(fraction * float64(n)))
	if keep > n {
		keep = n
	}
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		ca, cb := t.counts[order[a]].Load(), t.counts[order[b]].Load()
		if ca != cb {
			return ca > cb
		}
		return order[a] < order[b]
	})
	for _, i := range order[:keep] {
		t.resident[i] = true
	}
	return keep
}

// ResidentCount returns the number of chunks currently resident.
func (t *CacheTier) ResidentCount() int {
	n := 0
	for _, r := range t.resident {
		if r {
			n++
		}
	}
	return n
}

// Hits returns the number of charged chunk accesses served from the
// simulated RAM tier.
func (t *CacheTier) Hits() int64 { return t.hits.Load() }

// Misses returns the number of charged chunk accesses that paid the
// disk read.
func (t *CacheTier) Misses() int64 { return t.misses.Load() }

// ResetStats zeroes the hit/miss counters, keeping the per-chunk access
// profile (so residency retuning across runs still sees every access).
func (t *CacheTier) ResetStats() {
	t.hits.Store(0)
	t.misses.Store(0)
}

// ChunkAt advances the pipeline by chunk idx of the given on-disk size
// and descriptor count — Chunk with a cache-tier consultation. When the
// model carries a tier and the chunk is resident, only the CPU scan is
// charged: in overlapped mode the CPU clock advances with no I/O issued
// (the read stream is untouched, free to prefetch ahead), in serial
// mode the elapsed time grows by the scan alone. Non-resident chunks —
// and every chunk when the model has no tier — are charged exactly like
// Chunk, so a tier-less ChunkAt is byte-identical to Chunk.
func (p *Pipeline) ChunkAt(idx, bytes, descriptors int) time.Duration {
	t := p.model.Cache
	return p.ChunkCharged(bytes, descriptors, t != nil && t.observe(idx))
}

// ChunkCharged advances the pipeline by one chunk whose cache residency
// is already known, without consulting or recording in the model's cache
// tier — the second-ledger form of ChunkAt, for accounting that mirrors
// a charge the nominal pipeline has already observed (the shard router's
// spread-reads serving ledger). A resident chunk pays only the CPU scan,
// exactly as in ChunkAt; a non-resident one is charged like Chunk.
func (p *Pipeline) ChunkCharged(bytes, descriptors int, resident bool) time.Duration {
	if resident {
		cpu := p.model.CPUTime(descriptors)
		if p.overlap {
			p.cpuDone += cpu
		} else {
			p.ioDone += cpu
			p.cpuDone = p.ioDone
		}
		return p.cpuDone
	}
	return p.Chunk(bytes, descriptors)
}

// ChunkResident reports whether chunk i is resident in the model's cache
// tier without recording an access — nil-tier safe, false then. The
// residency input to Pipeline.ChunkCharged: spread-reads accounting asks
// it alongside the nominal ChunkAt charge, so the tier's access profile
// and hit/miss counters count each charged chunk exactly once.
func (m *Model) ChunkResident(i int) bool {
	return m.Cache != nil && m.Cache.Resident(i)
}
