// Package simdisk models the paper's 2005 evaluation machine (Dell
// workstation, 2.8 GHz Pentium 4, 1 GB RAM, 40 GB ATA disk) as a
// deterministic cost model, so the paper's wall-clock figures (Figures 4-7,
// Table 2) can be regenerated with their original magnitudes on modern
// hardware where the whole collection would sit in RAM.
//
// The model is calibrated against the three timing anchors the paper
// itself publishes:
//
//   - "reading and processing each chunk takes only about 10 milliseconds"
//     for SR-tree chunks of ~1,700 descriptors (§5.5);
//   - "processing the largest chunk of the BAG algorithm took as much as
//     1.8 seconds" for the ~1M-descriptor chunk (§5.5);
//   - "reading the chunk index takes about 50 milliseconds" (§5.5).
//
// Defaults: 8 ms average positioning time and 60 MB/s sequential transfer
// (ATA/100-class disk), 1.7 µs per 24-d Euclidean distance evaluation
// (P4-class core including memory traffic), 30 ms fixed index-open
// overhead and an n·log₂(n)·50 ns ranking sort term. See the calibration
// tests for the resulting anchor values.
package simdisk

import (
	"math"
	"time"
)

// Model is a deterministic I/O + CPU cost model.
type Model struct {
	// Seek is the average positioning cost paid once per chunk read and
	// once per index read.
	Seek time.Duration
	// TransferRate is the sequential read bandwidth in bytes per second.
	TransferRate float64
	// DistanceCost is the CPU cost of one full-dimensional distance
	// computation (including fetch of the descriptor from the buffer).
	DistanceCost time.Duration
	// IndexOverhead is the fixed cost of opening and parsing the chunk
	// index beyond raw transfer (directory lookup, allocation).
	IndexOverhead time.Duration
	// SortEntryCost is the per-comparison cost of ranking the chunk index;
	// the ranking costs n·log₂(n) comparisons.
	SortEntryCost time.Duration
	// Cache, when non-nil, marks some chunks as RAM-resident: a
	// Pipeline.ChunkAt charge for a resident chunk pays only the CPU
	// scan, no seek or transfer (see CacheTier). A nil Cache leaves every
	// charge exactly as before.
	Cache *CacheTier
}

// Default2005 returns the calibrated model described in the package
// comment.
func Default2005() *Model {
	return &Model{
		Seek:          8 * time.Millisecond,
		TransferRate:  60 << 20, // 60 MiB/s
		DistanceCost:  1700 * time.Nanosecond,
		IndexOverhead: 30 * time.Millisecond,
		SortEntryCost: 50 * time.Nanosecond,
	}
}

// ReadTime returns the simulated cost of one contiguous read of the given
// size: one seek plus transfer.
func (m *Model) ReadTime(bytes int) time.Duration {
	if bytes < 0 {
		bytes = 0
	}
	transfer := time.Duration(float64(bytes) / m.TransferRate * float64(time.Second))
	return m.Seek + transfer
}

// CPUTime returns the simulated cost of computing the given number of
// query-descriptor distances.
func (m *Model) CPUTime(distances int) time.Duration {
	return time.Duration(distances) * m.DistanceCost
}

// IndexReadTime returns the simulated cost of reading a chunk index of n
// entries of entryBytes each and globally ranking it against the query:
// one read, n distance computations, and an n·log₂(n) sort.
func (m *Model) IndexReadTime(entries, entryBytes int) time.Duration {
	t := m.ReadTime(entries*entryBytes) + m.IndexOverhead + m.CPUTime(entries)
	if entries > 1 {
		comparisons := float64(entries) * math.Log2(float64(entries))
		t += time.Duration(comparisons * float64(m.SortEntryCost))
	}
	return t
}

// Pipeline simulates the elapsed time of a chunked search. In overlapped
// mode the reader prefetches the globally ranked chunk list while the CPU
// scans the previous chunk (the overlap the paper says uniform chunk sizes
// are meant to exploit, §1.1); in serial mode each chunk is read and then
// scanned with no overlap (the ablation).
//
// The pipeline recurrence for overlapped mode is
//
//	ioDone(i)  = ioDone(i-1) + io(i)
//	cpuDone(i) = max(ioDone(i), cpuDone(i-1)) + cpu(i)
//
// and the elapsed time after chunk i is cpuDone(i).
type Pipeline struct {
	model   *Model
	overlap bool
	ioDone  time.Duration
	cpuDone time.Duration
}

// NewPipeline returns a pipeline whose clock starts after the given
// initial cost (typically the index read).
func NewPipeline(m *Model, overlap bool, initial time.Duration) *Pipeline {
	p := &Pipeline{}
	p.Reset(m, overlap, initial)
	return p
}

// Reset re-initializes p in place, allowing a pipeline value held in a
// per-query scratch to be reused without allocating.
func (p *Pipeline) Reset(m *Model, overlap bool, initial time.Duration) {
	*p = Pipeline{model: m, overlap: overlap, ioDone: initial, cpuDone: initial}
}

// Chunk advances the pipeline by one chunk of the given on-disk size and
// descriptor count, returning the elapsed simulated time after the CPU has
// finished scanning it.
func (p *Pipeline) Chunk(bytes, descriptors int) time.Duration {
	io := p.model.ReadTime(bytes)
	cpu := p.model.CPUTime(descriptors)
	if p.overlap {
		p.ioDone += io
		if p.ioDone > p.cpuDone {
			p.cpuDone = p.ioDone
		}
		p.cpuDone += cpu
	} else {
		p.ioDone += io + cpu
		p.cpuDone = p.ioDone
	}
	return p.cpuDone
}

// Stall delays the pipeline's read stream by d — the cost of a failed
// read attempt plus its retry backoff in the fault-tolerant read path. The
// delay lands on the I/O clock (in overlapped mode a CPU still busy on a
// previous chunk absorbs what it can, exactly as a real prefetcher would);
// the CPU clock is dragged along when it has caught up. Charging the stall
// before the chunk it delayed keeps the cost model honest: the machine
// that performed the retries is the machine billed for them.
func (p *Pipeline) Stall(d time.Duration) {
	if d <= 0 {
		return
	}
	p.ioDone += d
	if p.cpuDone < p.ioDone {
		p.cpuDone = p.ioDone
	}
}

// Elapsed returns the current simulated elapsed time.
func (p *Pipeline) Elapsed() time.Duration { return p.cpuDone }
