package simdisk

import (
	"testing"
	"time"
)

// The three calibration anchors from the paper (§5.5). The model does not
// need to hit them exactly — the paper's own numbers are rounded — but it
// must land in the right neighborhood, or every reproduced figure drifts.

func TestAnchorSRChunk(t *testing.T) {
	m := Default2005()
	// An SR-tree MEDIUM chunk: ~1,719 descriptors × 100 bytes.
	p := NewPipeline(m, false, 0)
	got := p.Chunk(1719*100, 1719)
	if got < 8*time.Millisecond || got > 16*time.Millisecond {
		t.Fatalf("SR chunk cost = %v, want ~10ms", got)
	}
}

func TestAnchorGiantBAGChunk(t *testing.T) {
	m := Default2005()
	// The largest BAG/LARGE chunk: ~1M descriptors. The paper's 1.8 s is
	// the processing cost of that chunk mid-query, i.e. the steady-state
	// marginal pipeline cost with its read overlapped by earlier CPU work.
	p := NewPipeline(m, true, 0)
	before := p.Chunk(1000000*100, 1000000)
	after := p.Chunk(1000000*100, 1000000)
	got := after - before
	if got < 1500*time.Millisecond || got > 2100*time.Millisecond {
		t.Fatalf("giant BAG chunk marginal cost = %v, want ~1.8s", got)
	}
}

func TestAnchorIndexRead(t *testing.T) {
	m := Default2005()
	// The MEDIUM indexes hold ~2,700 entries; paper reports ~50ms.
	got := m.IndexReadTime(2685, 120)
	if got < 35*time.Millisecond || got > 70*time.Millisecond {
		t.Fatalf("index read = %v, want ~50ms", got)
	}
}

// Full-scan completion for SR/SMALL on the DQ workload took 45.0 s in the
// paper (Table 2): 4,747 chunks of ~942 descriptors, essentially all read.
func TestAnchorTable2FullScan(t *testing.T) {
	m := Default2005()
	p := NewPipeline(m, true, m.IndexReadTime(4747, 120))
	var last time.Duration
	for i := 0; i < 4747; i++ {
		last = p.Chunk(942*100, 942)
	}
	if last < 35*time.Second || last > 55*time.Second {
		t.Fatalf("SR/SMALL completion = %v, want ~45s", last)
	}
}

func TestReadTimeMonotone(t *testing.T) {
	m := Default2005()
	if m.ReadTime(0) != m.Seek {
		t.Fatalf("ReadTime(0) = %v, want seek only", m.ReadTime(0))
	}
	if m.ReadTime(-5) != m.Seek {
		t.Fatalf("negative bytes should clamp")
	}
	if m.ReadTime(1<<20) <= m.ReadTime(1<<10) {
		t.Fatal("ReadTime not monotone in size")
	}
}

func TestCPUTimeLinear(t *testing.T) {
	m := Default2005()
	if m.CPUTime(2000) != 2*m.CPUTime(1000) {
		t.Fatal("CPUTime not linear")
	}
	if m.CPUTime(0) != 0 {
		t.Fatal("CPUTime(0) != 0")
	}
}

// Overlapped elapsed time must never exceed serial elapsed time, and both
// must be monotone in the number of chunks processed.
func TestOverlapNeverSlower(t *testing.T) {
	m := Default2005()
	sizes := []int{500, 20000, 100, 1500, 900, 300000, 50}
	po := NewPipeline(m, true, time.Millisecond)
	ps := NewPipeline(m, false, time.Millisecond)
	var prevO, prevS time.Duration
	for _, n := range sizes {
		o := po.Chunk(n*100, n)
		s := ps.Chunk(n*100, n)
		if o > s {
			t.Fatalf("overlapped %v > serial %v after chunk of %d", o, s, n)
		}
		if o < prevO || s < prevS {
			t.Fatal("elapsed time went backwards")
		}
		prevO, prevS = o, s
	}
}

// With CPU-dominant chunks the overlapped pipeline approaches pure CPU
// time; with IO-dominant chunks it approaches pure IO time.
func TestPipelineBottleneck(t *testing.T) {
	m := &Model{Seek: 0, TransferRate: 1 << 30, DistanceCost: time.Microsecond}
	p := NewPipeline(m, true, 0)
	for i := 0; i < 10; i++ {
		p.Chunk(1000, 100000) // io ~1µs, cpu 100ms
	}
	cpuTotal := 10 * m.CPUTime(100000)
	if diff := p.Elapsed() - cpuTotal; diff < 0 || diff > cpuTotal/100 {
		t.Fatalf("CPU-bound pipeline elapsed %v, want ~%v", p.Elapsed(), cpuTotal)
	}

	m2 := &Model{Seek: 10 * time.Millisecond, TransferRate: 1 << 20, DistanceCost: time.Nanosecond}
	p2 := NewPipeline(m2, true, 0)
	var ioTotal time.Duration
	for i := 0; i < 10; i++ {
		p2.Chunk(1<<20, 10)
		ioTotal += m2.ReadTime(1 << 20)
	}
	slack := m2.CPUTime(10) // the last chunk's CPU tail
	if p2.Elapsed() < ioTotal || p2.Elapsed() > ioTotal+10*slack {
		t.Fatalf("IO-bound pipeline elapsed %v, want ~%v", p2.Elapsed(), ioTotal)
	}
}

func TestIndexReadScalesWithEntries(t *testing.T) {
	m := Default2005()
	if m.IndexReadTime(4747, 120) <= m.IndexReadTime(1863, 120) {
		t.Fatal("index read not monotone in entry count")
	}
	if m.IndexReadTime(0, 120) < m.Seek {
		t.Fatal("empty index read below a single seek")
	}
}
