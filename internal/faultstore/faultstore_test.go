package faultstore

import (
	"errors"
	"math/rand"
	"testing"

	"repro/internal/chunkfile"
	"repro/internal/cluster"
	"repro/internal/descriptor"
	"repro/internal/vec"
)

// memStore builds a small in-memory store with three chunks.
func memStore(t *testing.T) *chunkfile.MemStore {
	t.Helper()
	r := rand.New(rand.NewSource(11))
	coll := descriptor.NewCollection(vec.Dims, 60)
	v := make(vec.Vector, vec.Dims)
	for i := 0; i < 60; i++ {
		for d := range v {
			v[d] = float32(r.NormFloat64())
		}
		coll.Append(descriptor.ID(i), v)
	}
	var members [3][]int
	for i := 0; i < 60; i++ {
		members[i%3] = append(members[i%3], i)
	}
	cs := make([]*cluster.Cluster, 3)
	for i := range cs {
		cs[i] = cluster.NewFromMembers(coll, members[i])
	}
	return chunkfile.NewMemStore(coll, cs, 4096)
}

// A zero Config must be a transparent passthrough.
func TestZeroConfigPassthrough(t *testing.T) {
	fs := Wrap(memStore(t), Config{})
	var data chunkfile.Data
	for i := 0; i < 3; i++ {
		if err := fs.ReadChunk(i, &data); err != nil {
			t.Fatalf("chunk %d: %v", i, err)
		}
	}
	if fs.Dead() {
		t.Fatal("zero-config store died")
	}
	if fs.Reads() != 3 {
		t.Fatalf("Reads() = %d, want 3", fs.Reads())
	}
}

// The same seed must fail exactly the same read ordinals on every run,
// and the injected errors must classify as temporary ErrTransient.
func TestTransientDeterminismAndClassification(t *testing.T) {
	const n = 200
	failed := func() []bool {
		fs := Wrap(memStore(t), Config{Seed: 42, TransientProb: 0.3})
		var data chunkfile.Data
		out := make([]bool, n)
		for i := 0; i < n; i++ {
			err := fs.ReadChunk(i%3, &data)
			out[i] = err != nil
			if err != nil {
				if !errors.Is(err, ErrTransient) {
					t.Fatalf("read %d: error does not wrap ErrTransient: %v", i, err)
				}
				var te interface{ Temporary() bool }
				if !errors.As(err, &te) || !te.Temporary() {
					t.Fatalf("read %d: transient error not Temporary(): %v", i, err)
				}
			}
		}
		return out
	}
	a, b := failed(), failed()
	some := false
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("read %d: fault decision differs across runs", i)
		}
		some = some || a[i]
	}
	if !some {
		t.Fatal("TransientProb=0.3 injected no faults in 200 reads")
	}
}

// FailAfter must kill the store after exactly that many successful
// reads, and ErrDead must not classify as temporary.
func TestFailAfterKillsPermanently(t *testing.T) {
	fs := Wrap(memStore(t), Config{FailAfter: 2})
	var data chunkfile.Data
	for i := 0; i < 2; i++ {
		if err := fs.ReadChunk(i, &data); err != nil {
			t.Fatalf("read %d before FailAfter: %v", i, err)
		}
	}
	if !fs.Dead() {
		t.Fatal("store not dead after FailAfter successful reads")
	}
	err := fs.ReadChunk(0, &data)
	if !errors.Is(err, ErrDead) {
		t.Fatalf("read after death = %v, want ErrDead", err)
	}
	var te interface{ Temporary() bool }
	if errors.As(err, &te) && te.Temporary() {
		t.Fatal("ErrDead classified as temporary")
	}
}

// Kill takes effect immediately and Meta stays readable on a dead store.
func TestKillIsImmediateAndMetaSurvives(t *testing.T) {
	fs := Wrap(memStore(t), Config{})
	fs.Kill()
	var data chunkfile.Data
	if err := fs.ReadChunk(0, &data); !errors.Is(err, ErrDead) {
		t.Fatalf("read after Kill = %v, want ErrDead", err)
	}
	if len(fs.Meta()) != 3 {
		t.Fatalf("Meta() on dead store returned %d chunks, want 3", len(fs.Meta()))
	}
	if fs.Dims() != vec.Dims {
		t.Fatalf("Dims() on dead store = %d", fs.Dims())
	}
}
