// Package faultstore wraps any chunkfile.Store with deterministic,
// seed-driven fault injection, so the shard router's failure paths —
// retry, failover, degraded completion — are unit-testable and
// race-testable without real hardware.
//
// Three fault classes are modeled:
//
//   - Transient errors: each ReadChunk is independently failed with
//     probability TransientProb, decided by hashing (Seed, read ordinal)
//     — the same seed always fails the same ordinals, regardless of
//     goroutine interleaving. Transient errors wrap ErrTransient and
//     report Temporary() == true, the signal the router's retry loop
//     keys on (the net.Error convention).
//   - Permanent death: after FailAfter successful reads — or immediately
//     after Kill — every ReadChunk fails with ErrDead, which is not
//     temporary. This models a shard's disk dying mid-workload.
//   - Added latency: Latency is really slept before each read, to widen
//     race windows under -race and to model a slow replica.
//
// The wrapper is transparent when Config is zero: every read passes
// straight through. Faults are injected before the underlying read, so
// a failed attempt never touches the wrapped store.
package faultstore

import (
	"errors"
	"fmt"
	"sync/atomic"
	"time"

	"repro/internal/chunkfile"
)

// Errors injected by the store.
var (
	// ErrTransient marks an injected transient fault: the read failed but
	// retrying may succeed. Errors wrapping it report Temporary() == true.
	ErrTransient = errors.New("faultstore: transient read error")
	// ErrDead marks a permanently failed store: every read fails and no
	// retry will ever succeed. It is not temporary.
	ErrDead = errors.New("faultstore: store is dead")
)

// transientError is the concrete injected transient fault; it implements
// the Temporary() classification consumers test for via errors.As.
type transientError struct {
	ordinal int64
}

func (e *transientError) Error() string {
	return fmt.Sprintf("faultstore: transient read error (ordinal %d)", e.ordinal)
}

// Unwrap makes errors.Is(err, ErrTransient) work.
func (e *transientError) Unwrap() error { return ErrTransient }

// Temporary reports that retrying the read may succeed.
func (e *transientError) Temporary() bool { return true }

// Config selects which faults to inject. The zero value injects nothing.
type Config struct {
	// Seed drives the per-read fault decisions. The same seed yields the
	// same decision for the same read ordinal on every run, independent of
	// goroutine scheduling.
	Seed int64
	// TransientProb is the probability in [0, 1] that any given read fails
	// with a transient (retryable) error.
	TransientProb float64
	// FailAfter, when positive, kills the store permanently after that
	// many successful reads: every later read returns ErrDead.
	FailAfter int64
	// Latency is really slept before each read attempt (including ones
	// that will fail), widening race windows and modeling a slow replica.
	Latency time.Duration
}

// Store wraps an inner chunkfile.Store with fault injection. It is safe
// for concurrent use whenever the inner store is: the fault state is a
// pair of atomics.
type Store struct {
	inner chunkfile.Store
	cfg   Config
	// threshold is cfg.TransientProb mapped onto the uint64 hash range.
	threshold uint64
	ordinal   atomic.Int64 // reads attempted, 1-based after Add
	succeeded atomic.Int64 // reads that reached the inner store
	dead      atomic.Bool
}

var _ chunkfile.Store = (*Store)(nil)

// Wrap decorates st with fault injection per cfg. The wrapped store is
// not closed by the wrapper's Close beyond delegating to it.
func Wrap(st chunkfile.Store, cfg Config) *Store {
	p := cfg.TransientProb
	if p < 0 {
		p = 0
	}
	if p > 1 {
		p = 1
	}
	var threshold uint64
	if p > 0 {
		threshold = uint64(p * float64(1<<63) * 2) // p×2⁶⁴ without overflow at p=1
		if p >= 1 {
			threshold = ^uint64(0)
		}
	}
	return &Store{inner: st, cfg: cfg, threshold: threshold}
}

// Kill permanently fails the store: every subsequent ReadChunk returns an
// error wrapping ErrDead. Killing is idempotent and takes effect
// immediately on all goroutines.
func (s *Store) Kill() { s.dead.Store(true) }

// Revive undoes Kill (and a FailAfter death): reads pass through to the
// inner store again. It models the operator replacing the dead disk —
// the store-side half of a recovery drill; the router side is
// MarkShardUp after a successful probe. The FailAfter countdown is not
// reset: a revived store with FailAfter set dies again on its next read.
func (s *Store) Revive() { s.dead.Store(false) }

// Dead reports whether the store has died (via Kill or FailAfter).
func (s *Store) Dead() bool { return s.dead.Load() }

// Reads returns the number of ReadChunk attempts made so far.
func (s *Store) Reads() int64 { return s.ordinal.Load() }

// Dims implements chunkfile.Store.
func (s *Store) Dims() int { return s.inner.Dims() }

// Meta implements chunkfile.Store. The chunk index is metadata, not a
// disk read: it stays readable even on a dead store, mirroring a router
// that cached the index before the disk died.
func (s *Store) Meta() []chunkfile.Meta { return s.inner.Meta() }

// ReadChunk implements chunkfile.Store, injecting faults before
// delegating. Fault decisions depend only on (Seed, ordinal), so a fixed
// seed replays the same fault sequence on every run.
func (s *Store) ReadChunk(i int, data *chunkfile.Data) error {
	ord := s.ordinal.Add(1)
	if s.cfg.Latency > 0 {
		time.Sleep(s.cfg.Latency)
	}
	if s.dead.Load() {
		return fmt.Errorf("faultstore: chunk %d: %w", i, ErrDead)
	}
	if s.threshold > 0 && mix(uint64(s.cfg.Seed), uint64(ord)) < s.threshold {
		return fmt.Errorf("faultstore: chunk %d: %w", i, &transientError{ordinal: ord})
	}
	if err := s.inner.ReadChunk(i, data); err != nil {
		return err
	}
	if n := s.succeeded.Add(1); s.cfg.FailAfter > 0 && n >= s.cfg.FailAfter {
		s.dead.Store(true)
	}
	return nil
}

// Close implements chunkfile.Store by closing the inner store.
func (s *Store) Close() error { return s.inner.Close() }

// mix hashes (seed, ordinal) to a uniform uint64 — the finalizer of
// splitmix64, which passes through every avalanche test that matters for
// turning a counter into independent coin flips.
func mix(seed, ord uint64) uint64 {
	z := seed + ord*0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}
