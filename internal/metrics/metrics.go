// Package metrics computes and renders the paper's evaluation metrics:
// precision within the top k (§5.4), and the inverted quality curves of
// Figures 2-7 — how many chunks (or how much time) a search needed before
// the n-th true neighbor entered the running result.
package metrics

import (
	"fmt"
	"math"
	"time"
)

// QueryTrace records the intermediate state of one query: after the i-th
// processed chunk (0-based entry i), the simulated elapsed time and the
// number of true top-k neighbors present in the running result. Found must
// be monotone non-decreasing (the search package guarantees it; the
// experiments assert it).
type QueryTrace struct {
	Elapsed []time.Duration
	Found   []int
}

// Validate checks the structural invariants of the trace.
func (t *QueryTrace) Validate() error {
	if len(t.Elapsed) != len(t.Found) {
		return fmt.Errorf("metrics: trace length mismatch %d vs %d", len(t.Elapsed), len(t.Found))
	}
	for i := 1; i < len(t.Found); i++ {
		if t.Found[i] < t.Found[i-1] {
			return fmt.Errorf("metrics: found count dropped at chunk %d", i)
		}
		if t.Elapsed[i] < t.Elapsed[i-1] {
			return fmt.Errorf("metrics: elapsed time dropped at chunk %d", i)
		}
	}
	return nil
}

// Precision returns found/k, the paper's quality metric ("when the number
// of returned images is fixed, recall and precision are the same metric").
func Precision(found, k int) float64 {
	if k <= 0 {
		return 0
	}
	return float64(found) / float64(k)
}

// ChunksToFind inverts the traces: entry n-1 is the average number of
// chunks that had to be processed before n true neighbors were in the
// result (Figures 2-3). Queries that never reached n are excluded from
// that entry's average; an entry with no qualifying query is NaN.
func ChunksToFind(traces []QueryTrace, k int) []float64 {
	out := make([]float64, k)
	for n := 1; n <= k; n++ {
		sum, cnt := 0.0, 0
		for _, tr := range traces {
			if c, ok := chunksFor(tr, n); ok {
				sum += float64(c)
				cnt++
			}
		}
		if cnt == 0 {
			out[n-1] = math.NaN()
		} else {
			out[n-1] = sum / float64(cnt)
		}
	}
	return out
}

// TimeToFind inverts the traces on the time axis: entry n-1 is the average
// simulated elapsed seconds until n true neighbors were in the result
// (Figures 4-7).
func TimeToFind(traces []QueryTrace, k int) []float64 {
	out := make([]float64, k)
	for n := 1; n <= k; n++ {
		sum, cnt := 0.0, 0
		for _, tr := range traces {
			if c, ok := chunksFor(tr, n); ok {
				sum += tr.Elapsed[c-1].Seconds()
				cnt++
			}
		}
		if cnt == 0 {
			out[n-1] = math.NaN()
		} else {
			out[n-1] = sum / float64(cnt)
		}
	}
	return out
}

// chunksFor returns the 1-based chunk ordinal at which the trace first
// held n true neighbors.
func chunksFor(tr QueryTrace, n int) (int, bool) {
	for i, f := range tr.Found {
		if f >= n {
			return i + 1, true
		}
	}
	return 0, false
}

// MeanCompletion returns the average elapsed seconds of the final trace
// entries — the paper's Table 2 ("time to completion") when traces come
// from run-to-completion searches.
func MeanCompletion(traces []QueryTrace) float64 {
	if len(traces) == 0 {
		return math.NaN()
	}
	sum := 0.0
	for _, tr := range traces {
		if len(tr.Elapsed) == 0 {
			continue
		}
		sum += tr.Elapsed[len(tr.Elapsed)-1].Seconds()
	}
	return sum / float64(len(traces))
}

// MeanChunksRead returns the average chunk count of the traces.
func MeanChunksRead(traces []QueryTrace) float64 {
	if len(traces) == 0 {
		return math.NaN()
	}
	sum := 0.0
	for _, tr := range traces {
		sum += float64(len(tr.Elapsed))
	}
	return sum / float64(len(traces))
}
