package metrics

import (
	"bytes"
	"math"
	"strings"
	"testing"
	"time"
)

func trace(found []int, ms ...int) QueryTrace {
	el := make([]time.Duration, len(found))
	for i := range el {
		if i < len(ms) {
			el[i] = time.Duration(ms[i]) * time.Millisecond
		} else {
			el[i] = time.Duration(i+1) * 10 * time.Millisecond
		}
	}
	return QueryTrace{Elapsed: el, Found: found}
}

func TestValidate(t *testing.T) {
	good := trace([]int{0, 1, 3, 3})
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := trace([]int{2, 1})
	if err := bad.Validate(); err == nil {
		t.Fatal("non-monotone found accepted")
	}
	mismatch := QueryTrace{Elapsed: make([]time.Duration, 2), Found: []int{1}}
	if err := mismatch.Validate(); err == nil {
		t.Fatal("length mismatch accepted")
	}
	backwards := QueryTrace{
		Elapsed: []time.Duration{20 * time.Millisecond, 10 * time.Millisecond},
		Found:   []int{1, 2},
	}
	if err := backwards.Validate(); err == nil {
		t.Fatal("time reversal accepted")
	}
}

func TestPrecision(t *testing.T) {
	if Precision(15, 30) != 0.5 {
		t.Fatalf("Precision = %v", Precision(15, 30))
	}
	if Precision(3, 0) != 0 {
		t.Fatal("k=0 should yield 0")
	}
}

func TestChunksToFind(t *testing.T) {
	// Query A finds neighbors 1,2 at chunk 1, neighbor 3 at chunk 3.
	// Query B finds neighbor 1 at chunk 2, neighbors 2,3 at chunk 4.
	traces := []QueryTrace{
		trace([]int{2, 2, 3, 3}),
		trace([]int{0, 1, 1, 3}),
	}
	got := ChunksToFind(traces, 3)
	want := []float64{(1 + 2) / 2.0, (1 + 4) / 2.0, (3 + 4) / 2.0}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-12 {
			t.Fatalf("ChunksToFind[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestChunksToFindUnreached(t *testing.T) {
	traces := []QueryTrace{trace([]int{1, 1})}
	got := ChunksToFind(traces, 3)
	if got[0] != 1 {
		t.Fatalf("got[0] = %v", got[0])
	}
	if !math.IsNaN(got[1]) || !math.IsNaN(got[2]) {
		t.Fatalf("unreached entries should be NaN: %v", got)
	}
}

func TestTimeToFind(t *testing.T) {
	traces := []QueryTrace{
		trace([]int{1, 2}, 10, 30),
		trace([]int{0, 2}, 15, 45),
	}
	got := TimeToFind(traces, 2)
	want1 := (0.010 + 0.045) / 2
	want2 := (0.030 + 0.045) / 2
	if math.Abs(got[0]-want1) > 1e-9 || math.Abs(got[1]-want2) > 1e-9 {
		t.Fatalf("TimeToFind = %v, want [%v %v]", got, want1, want2)
	}
}

func TestMeanCompletionAndChunks(t *testing.T) {
	traces := []QueryTrace{
		trace([]int{1, 2}, 10, 30),
		trace([]int{2}, 50),
	}
	if got := MeanCompletion(traces); math.Abs(got-0.04) > 1e-9 {
		t.Fatalf("MeanCompletion = %v", got)
	}
	if got := MeanChunksRead(traces); got != 1.5 {
		t.Fatalf("MeanChunksRead = %v", got)
	}
	if !math.IsNaN(MeanCompletion(nil)) {
		t.Fatal("empty MeanCompletion should be NaN")
	}
}

func TestRenderTable(t *testing.T) {
	var buf bytes.Buffer
	RenderTable(&buf, "T", []string{"a", "long-header"}, [][]string{{"1", "2"}, {"333", "4"}})
	out := buf.String()
	if !strings.Contains(out, "T\n") || !strings.Contains(out, "long-header") {
		t.Fatalf("table output missing parts:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 {
		t.Fatalf("expected 5 lines, got %d:\n%s", len(lines), out)
	}
}

func TestRenderSeries(t *testing.T) {
	var buf bytes.Buffer
	RenderSeries(&buf, "S", "x", []float64{1, 2}, []string{"a"}, map[string][]float64{"a": {0.5, math.NaN()}})
	out := buf.String()
	if !strings.Contains(out, "# x\ta") {
		t.Fatalf("missing header:\n%s", out)
	}
	if !strings.Contains(out, "2\t-") {
		t.Fatalf("NaN not rendered as dash:\n%s", out)
	}
}

func TestPlotDoesNotCrash(t *testing.T) {
	var buf bytes.Buffer
	xs := []float64{1, 10, 100}
	Plot(&buf, "P", xs, []string{"a", "b"}, map[string][]float64{
		"a": {1, 2, 3},
		"b": {3, 2, math.NaN()},
	}, true)
	if buf.Len() == 0 {
		t.Fatal("empty plot")
	}
	// Degenerate inputs must not panic.
	Plot(&buf, "empty", nil, nil, nil, false)
	Plot(&buf, "flat", []float64{1, 2}, []string{"a"}, map[string][]float64{"a": {5, 5}}, false)
	Plot(&buf, "allnan", []float64{1, 2}, []string{"a"}, map[string][]float64{"a": {math.NaN(), math.NaN()}}, false)
}
