package metrics

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// RenderTable writes an aligned ASCII table.
func RenderTable(w io.Writer, title string, headers []string, rows [][]string) {
	widths := make([]int, len(headers))
	for i, h := range headers {
		widths[i] = len(h)
	}
	for _, row := range rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	if title != "" {
		fmt.Fprintf(w, "%s\n", title)
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = pad(c, widths[i])
		}
		fmt.Fprintf(w, "  %s\n", strings.Join(parts, "  "))
	}
	line(headers)
	sep := make([]string, len(headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range rows {
		line(row)
	}
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

// RenderSeries writes gnuplot-style columns: the x value followed by one
// column per named series, in the given order. NaN renders as "-".
func RenderSeries(w io.Writer, title, xLabel string, xs []float64, order []string, series map[string][]float64) {
	if title != "" {
		fmt.Fprintf(w, "%s\n", title)
	}
	fmt.Fprintf(w, "# %s", xLabel)
	for _, name := range order {
		fmt.Fprintf(w, "\t%s", name)
	}
	fmt.Fprintln(w)
	for i, x := range xs {
		fmt.Fprintf(w, "%g", x)
		for _, name := range order {
			ys := series[name]
			if i >= len(ys) || math.IsNaN(ys[i]) {
				fmt.Fprint(w, "\t-")
			} else {
				fmt.Fprintf(w, "\t%.4g", ys[i])
			}
		}
		fmt.Fprintln(w)
	}
}

// Plot draws a coarse ASCII chart of the series (one rune per series) so
// figure shapes can be eyeballed straight from the experiment binary.
// logX plots x on a log10 scale.
func Plot(w io.Writer, title string, xs []float64, order []string, series map[string][]float64, logX bool) {
	const width, height = 64, 18
	if len(xs) == 0 || len(order) == 0 {
		return
	}
	tx := func(x float64) float64 {
		if logX {
			return math.Log10(math.Max(x, 1e-12))
		}
		return x
	}
	minX, maxX := tx(xs[0]), tx(xs[0])
	for _, x := range xs {
		minX = math.Min(minX, tx(x))
		maxX = math.Max(maxX, tx(x))
	}
	minY, maxY := math.Inf(1), math.Inf(-1)
	for _, name := range order {
		for _, y := range series[name] {
			if math.IsNaN(y) {
				continue
			}
			minY = math.Min(minY, y)
			maxY = math.Max(maxY, y)
		}
	}
	if math.IsInf(minY, 1) || maxX == minX {
		return
	}
	if maxY == minY {
		maxY = minY + 1
	}
	grid := make([][]rune, height)
	for r := range grid {
		grid[r] = []rune(strings.Repeat(" ", width))
	}
	marks := []rune("*o+x#@%&")
	for si, name := range order {
		mark := marks[si%len(marks)]
		for i, y := range series[name] {
			if i >= len(xs) || math.IsNaN(y) {
				continue
			}
			col := int((tx(xs[i]) - minX) / (maxX - minX) * float64(width-1))
			row := height - 1 - int((y-minY)/(maxY-minY)*float64(height-1))
			if row >= 0 && row < height && col >= 0 && col < width {
				grid[row][col] = mark
			}
		}
	}
	fmt.Fprintf(w, "%s\n", title)
	fmt.Fprintf(w, "%10.3g +%s\n", maxY, strings.Repeat("-", width))
	for r := 0; r < height; r++ {
		fmt.Fprintf(w, "           |%s\n", string(grid[r]))
	}
	fmt.Fprintf(w, "%10.3g +%s\n", minY, strings.Repeat("-", width))
	xlo, xhi := xs[0], xs[len(xs)-1]
	fmt.Fprintf(w, "            x: %g .. %g%s\n", xlo, xhi, map[bool]string{true: " (log)", false: ""}[logX])
	for si, name := range order {
		fmt.Fprintf(w, "            %c = %s\n", marks[si%len(marks)], name)
	}
}
