package server

import (
	"errors"
	"sync"
	"time"
)

// Prober drives shard health from evidence instead of memory. The
// router's data-path health is sticky by design — a shard marked down
// stays down so queries stop paying its timeout over and over — which
// means something outside the data path has to notice recovery. The
// prober is that something: every interval it probes each shard of
// every sharded backend through the control-plane ProbeShard (no
// failover, no retries, no billing) and reconciles:
//
//   - a down shard whose probe succeeds is marked up (recovery);
//   - an up shard whose probe fails permanently is marked down, so the
//     first paying query doesn't have to eat the discovery cost;
//   - a transient probe failure (Temporary() == true) changes nothing —
//     one flaky read is not evidence of death, and the data path
//     already retries transients.
type Prober struct {
	reg      *Registry
	interval time.Duration

	stop      chan struct{}
	done      chan struct{}
	startOnce sync.Once
	stopOnce  sync.Once
	started   bool
}

// NewProber returns a prober over reg's sharded backends, probing every
// interval (<= 0 selects 250ms). Call Start to launch it and Stop to
// halt it.
func NewProber(reg *Registry, interval time.Duration) *Prober {
	if interval <= 0 {
		interval = 250 * time.Millisecond
	}
	return &Prober{
		reg:      reg,
		interval: interval,
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}
}

// Start launches the probe loop in its own goroutine. Starting twice is
// a no-op, as is starting after Stop.
func (p *Prober) Start() {
	p.startOnce.Do(func() {
		p.started = true
		go p.run()
	})
}

func (p *Prober) run() {
	defer close(p.done)
	ticker := time.NewTicker(p.interval)
	defer ticker.Stop()
	for {
		select {
		case <-p.stop:
			return
		case <-ticker.C:
			p.Sweep()
		}
	}
}

// Sweep probes every shard of every sharded backend once and reconciles
// health. Exported so tests (and operators' admin hooks) can force a
// probe round without waiting out the interval.
func (p *Prober) Sweep() {
	for _, name := range p.reg.Names() {
		b, ok := p.reg.Get(name)
		if !ok {
			continue
		}
		sh, ok := b.(ShardHealth)
		if !ok {
			continue
		}
		for s := 0; s < sh.Shards(); s++ {
			err := sh.ProbeShard(s)
			switch {
			case err == nil:
				if sh.ShardDown(s) {
					sh.MarkShardUp(s)
				}
			case probeTemporary(err):
				// One transient failure is not evidence either way.
			default:
				if !sh.ShardDown(s) {
					sh.MarkShardDown(s)
				}
			}
		}
	}
}

// Stop halts the probe loop and waits for it to exit, so shutdown can
// assert zero leaked goroutines. Safe to call more than once; calling
// it before Start additionally pins the prober so a later Start is a
// no-op.
func (p *Prober) Stop() {
	p.stopOnce.Do(func() { close(p.stop) })
	// Claiming startOnce here settles the race with a concurrent Start:
	// whichever Do runs first wins, and both orders are safe — either the
	// loop was launched (and exits on the closed stop channel, so waiting
	// on done is bounded) or it never will be.
	p.startOnce.Do(func() {})
	if p.started {
		<-p.done
	}
}

// probeTemporary classifies a probe error as transient via the
// Temporary() convention (the same classification the router's retry
// loop uses).
func probeTemporary(err error) bool {
	var t interface{ Temporary() bool }
	return errors.As(err, &t) && t.Temporary()
}
