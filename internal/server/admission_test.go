package server

import (
	"testing"
	"time"
)

func TestLimiterBounds(t *testing.T) {
	l := NewLimiter(2)
	if !l.TryAcquire() || !l.TryAcquire() {
		t.Fatal("first two acquires should succeed")
	}
	if l.TryAcquire() {
		t.Fatal("third acquire should be refused at capacity 2")
	}
	if got := l.InFlight(); got != 2 {
		t.Fatalf("InFlight = %d, want 2", got)
	}
	l.Release()
	if !l.TryAcquire() {
		t.Fatal("acquire after release should succeed")
	}
	l.Release()
	l.Release()
	if got := l.InFlight(); got != 0 {
		t.Fatalf("InFlight after releases = %d, want 0", got)
	}
}

func TestLimiterUnlimited(t *testing.T) {
	l := NewLimiter(0)
	for i := 0; i < 100; i++ {
		if !l.TryAcquire() {
			t.Fatalf("unlimited limiter refused acquire %d", i)
		}
	}
	l.Release() // must not panic or block
	if got := l.InFlight(); got != 0 {
		t.Fatalf("unlimited InFlight = %d, want 0", got)
	}
}

// fakeClock is a manually advanced clock for bucket tests.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }
func newFakeClock() *fakeClock               { return &fakeClock{t: time.Unix(1_000_000, 0)} }
func bucketsAt(rate, burst float64) (*TenantBuckets, *fakeClock) {
	c := newFakeClock()
	return NewTenantBuckets(rate, burst, c.now), c
}

func TestTenantBucketsTakeAndRefill(t *testing.T) {
	tb, clock := bucketsAt(10, 20)
	if ok, _ := tb.Take("a", 20); !ok {
		t.Fatal("fresh bucket should cover its full burst")
	}
	ok, retry := tb.Take("a", 5)
	if ok {
		t.Fatal("empty bucket should refuse")
	}
	if want := 500 * time.Millisecond; retry != want {
		t.Fatalf("retryAfter = %v, want %v (5 chunks at 10/s)", retry, want)
	}
	// Tenants are independent.
	if ok, _ := tb.Take("b", 20); !ok {
		t.Fatal("tenant b should have its own full bucket")
	}
	clock.advance(time.Second)
	if ok, _ := tb.Take("a", 10); !ok {
		t.Fatal("1s at 10/s should refill 10 chunks")
	}
	if ok, _ := tb.Take("a", 1); ok {
		t.Fatal("the refill should be spent again")
	}
}

func TestTenantBucketsUnlimited(t *testing.T) {
	tb, _ := bucketsAt(0, 0)
	if ok, retry := tb.Take("a", 1_000_000); !ok || retry != 0 {
		t.Fatal("rate 0 must admit everything")
	}
	if got := tb.TakeUpTo("a", 123); got != 123 {
		t.Fatalf("TakeUpTo under rate 0 = %d, want 123", got)
	}
}

func TestTenantBucketsTakeUpTo(t *testing.T) {
	tb, _ := bucketsAt(10, 15)
	if got := tb.TakeUpTo("a", 40); got != 15 {
		t.Fatalf("TakeUpTo(40) on a 15-token bucket = %d, want 15", got)
	}
	if got := tb.TakeUpTo("a", 5); got != 0 {
		t.Fatalf("TakeUpTo on an empty bucket = %d, want 0", got)
	}
}

func TestTenantBucketsRefundCapsAtBurst(t *testing.T) {
	tb, _ := bucketsAt(10, 10)
	if ok, _ := tb.Take("a", 6); !ok {
		t.Fatal("take 6 of 10")
	}
	tb.Refund("a", 1000)
	if ok, _ := tb.Take("a", 10); !ok {
		t.Fatal("refund should restore the bucket")
	}
	if ok, _ := tb.Take("a", 1); ok {
		t.Fatal("refund must cap at burst, not bank 1000 chunks")
	}
}

func TestTenantBucketsChargeDebt(t *testing.T) {
	tb, clock := bucketsAt(10, 10)
	tb.Charge("a", 30) // 10 - 30 = -20: tenant owes 2s of refill
	if ok, _ := tb.Take("a", 1); ok {
		t.Fatal("indebted tenant must be refused")
	}
	if retry := tb.RetryAfter("a", 1); retry != 2100*time.Millisecond {
		t.Fatalf("RetryAfter = %v, want 2.1s (21 chunks at 10/s)", retry)
	}
	clock.advance(2 * time.Second)
	if ok, _ := tb.Take("a", 1); ok {
		t.Fatal("debt exactly repaid: 1 more chunk is still short")
	}
	clock.advance(200 * time.Millisecond)
	if ok, _ := tb.Take("a", 1); !ok {
		t.Fatal("debt repaid plus one chunk refilled")
	}
}
