package server

import (
	"sync/atomic"
	"time"
)

// latencyBuckets are the upper bounds of the wall-latency histogram,
// exponential from 50µs to ~26s plus a catch-all. Percentiles are read
// off the histogram (reported as a bucket upper bound), which keeps
// recording a single atomic increment — no locks on the hot path.
var latencyBuckets = func() []time.Duration {
	b := make([]time.Duration, 20)
	d := 50 * time.Microsecond
	for i := range b {
		b[i] = d
		d *= 2
	}
	return b
}()

// histogram is a fixed-bucket, lock-free latency histogram.
type histogram struct {
	counts [21]atomic.Int64 // len(latencyBuckets)+1: last is overflow
}

func (h *histogram) record(d time.Duration) {
	for i, ub := range latencyBuckets {
		if d <= ub {
			h.counts[i].Add(1)
			return
		}
	}
	h.counts[len(latencyBuckets)].Add(1)
}

// quantile returns the upper bound of the bucket holding the q-th
// fraction of recorded samples (0 when nothing was recorded).
func (h *histogram) quantile(q float64) time.Duration {
	var total int64
	for i := range h.counts {
		total += h.counts[i].Load()
	}
	if total == 0 {
		return 0
	}
	rank := int64(q * float64(total))
	if rank >= total {
		rank = total - 1
	}
	var seen int64
	for i := range h.counts {
		seen += h.counts[i].Load()
		if seen > rank {
			if i < len(latencyBuckets) {
				return latencyBuckets[i]
			}
			return latencyBuckets[len(latencyBuckets)-1] * 2
		}
	}
	return latencyBuckets[len(latencyBuckets)-1] * 2
}

// qpsWindow counts request completions over a sliding 10-second window
// of per-second slots, all atomics so recording is race-clean and
// lock-free.
type qpsWindow struct {
	slots [10]struct {
		sec   atomic.Int64
		count atomic.Int64
	}
}

func (w *qpsWindow) record(now time.Time) {
	sec := now.Unix()
	s := &w.slots[int(sec%int64(len(w.slots)))]
	if s.sec.Load() != sec {
		// New second: claim the slot. A racing recorder may add to the
		// old second's count for an instant; QPS is a gauge, not a ledger.
		s.sec.Store(sec)
		s.count.Store(0)
	}
	s.count.Add(1)
}

// rate returns completions/second averaged over the last 10 seconds.
func (w *qpsWindow) rate(now time.Time) float64 {
	sec := now.Unix()
	var total int64
	for i := range w.slots {
		s := &w.slots[i]
		if age := sec - s.sec.Load(); age >= 0 && age < int64(len(w.slots)) {
			total += s.count.Load()
		}
	}
	return float64(total) / float64(len(w.slots))
}

// Metrics is the server's observable state: atomically maintained
// counters scraped as one JSON document by GET /metrics. All methods are
// safe for concurrent use.
type Metrics struct {
	requests      atomic.Int64 // admitted requests completed (any status)
	ok            atomic.Int64 // 2xx responses
	clientErrors  atomic.Int64 // 4xx other than shed (bad request, 404)
	shedInFlight  atomic.Int64 // 503: in-flight limiter full or draining
	shedTenant    atomic.Int64 // 429: tenant bucket empty
	deadlineMiss  atomic.Int64 // 503: request deadline expired mid-search
	serverErrors  atomic.Int64 // 500: panics and internal failures
	degraded      atomic.Int64 // 200s carrying Degraded=true
	chunksCharged atomic.Int64 // chunks actually read on behalf of requests
	bestEffort    atomic.Int64 // requests admitted with a shrunk budget
	hist          histogram
	qps           qpsWindow
}

// NewMetrics returns zeroed metrics.
func NewMetrics() *Metrics { return &Metrics{} }

// Outcome classifies how a request left the server, at a finer grain
// than the HTTP status (two different 503s — a shed at the door and a
// deadline missed mid-search — are different operational signals).
type Outcome int

// The outcome classes, in roughly decreasing order of health.
const (
	// OutcomeOK is a 2xx response.
	OutcomeOK Outcome = iota
	// OutcomeClientError is a non-shed 4xx (bad request, unknown index).
	OutcomeClientError
	// OutcomeShedInFlight is a 503 from the in-flight limiter or the
	// draining gate.
	OutcomeShedInFlight
	// OutcomeShedTenant is a 429 from a tenant token bucket.
	OutcomeShedTenant
	// OutcomeDeadlineMiss is a 503 from a request deadline expiring
	// mid-search.
	OutcomeDeadlineMiss
	// OutcomeServerError is a 500 (panics included).
	OutcomeServerError
)

// Record records one finished request: its outcome class, wall latency,
// and — for OutcomeOK — the chunks read and whether the result was
// degraded.
func (m *Metrics) Record(o Outcome, wall time.Duration, chunksRead int, degraded bool) {
	m.requests.Add(1)
	m.qps.record(time.Now())
	m.hist.record(wall)
	switch o {
	case OutcomeOK:
		m.ok.Add(1)
		m.chunksCharged.Add(int64(chunksRead))
		if degraded {
			m.degraded.Add(1)
		}
	case OutcomeClientError:
		m.clientErrors.Add(1)
	case OutcomeShedInFlight:
		m.shedInFlight.Add(1)
	case OutcomeShedTenant:
		m.shedTenant.Add(1)
	case OutcomeDeadlineMiss:
		m.deadlineMiss.Add(1)
	case OutcomeServerError:
		m.serverErrors.Add(1)
	}
}

// RecordBestEffort counts one request admitted with a shrunk chunk
// budget instead of being shed.
func (m *Metrics) RecordBestEffort() { m.bestEffort.Add(1) }

// ShardState is one shard's health and serving load in a Snapshot.
type ShardState struct {
	Shard int  `json:"shard"`
	Down  bool `json:"down"`
	// Reads counts the chunk reads this shard actually served (wherever
	// the chunks' primaries live); BilledUs is the simulated serving time
	// the spread-reads billed-load estimator attributed to the shard, in
	// microseconds — zero while spread reads are off. Both come from the
	// backend's LoadReporter surface and stay zero without one.
	Reads    int64 `json:"reads"`
	BilledUs int64 `json:"billed_us"`
}

// CacheSnapshot is one index's decoded-chunk cache counters in a
// Snapshot, present only for indexes opened with a cache.
type CacheSnapshot struct {
	Hits      int64 `json:"hits"`
	Misses    int64 `json:"misses"`
	Evictions int64 `json:"evictions"`
	Bytes     int64 `json:"bytes"`
	MaxBytes  int64 `json:"max_bytes"`
	Entries   int   `json:"entries"`
}

// IndexSnapshot is one registered index's state in a Snapshot.
type IndexSnapshot struct {
	Name        string         `json:"name"`
	Chunks      int            `json:"chunks"`
	Descriptors int            `json:"descriptors"`
	Shards      []ShardState   `json:"shards,omitempty"`
	ShardsDown  int            `json:"shards_down"`
	Cache       *CacheSnapshot `json:"cache,omitempty"`
}

// Snapshot is the JSON document served by GET /metrics.
type Snapshot struct {
	// QPS is completions/second averaged over the last 10 seconds.
	QPS float64 `json:"qps"`
	// InFlight is the number of requests currently holding limiter slots.
	InFlight int `json:"in_flight"`
	// Requests is the total requests answered, sheds included.
	Requests int64 `json:"requests"`
	// OK is the total 2xx responses.
	OK int64 `json:"ok"`
	// ClientErrors is the total non-shed 4xx responses.
	ClientErrors int64 `json:"client_errors"`
	// ShedInFlight is the total 503s from the in-flight limiter/draining.
	ShedInFlight int64 `json:"shed_in_flight"`
	// ShedTenant is the total 429s from tenant buckets.
	ShedTenant int64 `json:"shed_tenant"`
	// DeadlineMiss is the total 503s from expired request deadlines.
	DeadlineMiss int64 `json:"deadline_miss"`
	// ServerErrors is the total 500s (panics included).
	ServerErrors int64 `json:"server_errors"`
	// Degraded is the total 200s carrying Degraded=true.
	Degraded int64 `json:"degraded"`
	// ChunksCharged is the total chunks read on behalf of 200s — the
	// server's cumulative budget spend in the system's native currency.
	ChunksCharged int64 `json:"chunks_charged"`
	// BestEffort is the total requests admitted with shrunk budgets.
	BestEffort int64 `json:"best_effort"`
	// WallP50/WallP90/WallP99 are wall-latency percentiles in
	// microseconds, read off a fixed-bucket histogram (bucket upper
	// bounds, not interpolated).
	WallP50Us int64 `json:"wall_p50_us"`
	WallP90Us int64 `json:"wall_p90_us"`
	WallP99Us int64 `json:"wall_p99_us"`
	// Indexes is the per-index (and per-shard, when sharded) state.
	Indexes []IndexSnapshot `json:"indexes"`
}

// fillShardLoads copies the backend's per-shard serving-load counters
// into the shard states, when the backend reports them (LoadReporter).
func fillShardLoads(shards []ShardState, b Backend) {
	lr, ok := b.(LoadReporter)
	if !ok {
		return
	}
	for i, ld := range lr.ShardLoads() {
		if i >= len(shards) {
			break
		}
		shards[i].Reads = ld.Reads
		shards[i].BilledUs = ld.Billed.Microseconds()
	}
}

// Snapshot assembles the current metrics document. inFlight is read
// from the limiter; reg contributes per-index and per-shard state.
func (m *Metrics) Snapshot(inFlight int, reg *Registry) Snapshot {
	snap := Snapshot{
		QPS:           m.qps.rate(time.Now()),
		InFlight:      inFlight,
		Requests:      m.requests.Load(),
		OK:            m.ok.Load(),
		ClientErrors:  m.clientErrors.Load(),
		ShedInFlight:  m.shedInFlight.Load(),
		ShedTenant:    m.shedTenant.Load(),
		DeadlineMiss:  m.deadlineMiss.Load(),
		ServerErrors:  m.serverErrors.Load(),
		Degraded:      m.degraded.Load(),
		ChunksCharged: m.chunksCharged.Load(),
		BestEffort:    m.bestEffort.Load(),
		WallP50Us:     m.hist.quantile(0.50).Microseconds(),
		WallP90Us:     m.hist.quantile(0.90).Microseconds(),
		WallP99Us:     m.hist.quantile(0.99).Microseconds(),
	}
	if reg != nil {
		for _, name := range reg.Names() {
			b, ok := reg.Get(name)
			if !ok {
				continue
			}
			is := IndexSnapshot{Name: name, Chunks: b.Chunks(), Descriptors: b.Len()}
			if sh, ok := b.(ShardHealth); ok {
				is.ShardsDown = sh.ShardsDown()
				for s := 0; s < sh.Shards(); s++ {
					is.Shards = append(is.Shards, ShardState{Shard: s, Down: sh.ShardDown(s)})
				}
				fillShardLoads(is.Shards, b)
			}
			if cs, ok := b.(CacheStatser); ok {
				if st := cs.CacheStats(); st.Enabled {
					is.Cache = &CacheSnapshot{
						Hits:      st.Hits,
						Misses:    st.Misses,
						Evictions: st.Evictions,
						Bytes:     st.Bytes,
						MaxBytes:  st.MaxBytes,
						Entries:   st.Entries,
					}
				}
			}
			snap.Indexes = append(snap.Indexes, is)
		}
	}
	return snap
}
