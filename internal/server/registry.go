// Package server is the online serving layer over the repro facade: a
// registry of named open indexes behind an HTTP/JSON API with the
// robustness envelope a 2005-era image-search deployment needed and a
// current one still does — per-request deadlines propagated down to the
// chunk loop, admission control (a bounded in-flight limiter plus
// per-tenant token buckets denominated in chunks, the system's real
// currency), honest degraded results when shards are down, a background
// prober that recovers shards, panic containment, and graceful shutdown
// that drains in-flight requests without leaking goroutines.
//
// The package deliberately sits above the public repro facade rather
// than the internal engines: everything the server does is expressible
// in terms a library user could also write, which keeps the HTTP layer
// honest about what the facade exposes.
package server

import (
	"fmt"
	"sort"
	"sync"

	"repro"
)

// Backend is the slice of the repro facade the server serves. Both
// *repro.Index and *repro.ShardedIndex satisfy it structurally, so one
// handler set serves single-machine and sharded indexes alike.
type Backend interface {
	// Search runs one query (repro.Index.Search / ShardedIndex.Search).
	Search(q repro.Vector, opts repro.SearchOptions) (*repro.Result, error)
	// SearchBatchInto runs a whole batch through the chunk-major engine.
	SearchBatchInto(queries []repro.Vector, opts repro.BatchOptions, results []repro.Result) error
	// SearchBatchStream runs a batch with per-query completion streaming:
	// done(qi) fires once per query as soon as it retires, with
	// results[qi] fully written (the /batch endpoint's stream mode).
	SearchBatchStream(queries []repro.Vector, opts repro.BatchOptions, results []repro.Result, done func(query int)) error
	// MultiSearch runs a whole-image bag of descriptors with image voting.
	MultiSearch(descriptors []repro.Vector, opts repro.MultiSearchOptions) (*repro.MultiResult, error)
	// Chunks is the number of chunks in the index.
	Chunks() int
	// Len is the number of indexed descriptors.
	Len() int
	// Close releases the index.
	Close() error
}

// ShardHealth is the optional health surface of a sharded backend. The
// prober and the metrics endpoint use it when present; unsharded
// backends simply don't implement it.
type ShardHealth interface {
	// Shards is the number of shards.
	Shards() int
	// ShardDown reports whether shard s is currently held down.
	ShardDown(s int) bool
	// ShardsDown counts the shards currently held down.
	ShardsDown() int
	// MarkShardDown administratively takes shard s out of rotation.
	MarkShardDown(s int)
	// MarkShardUp returns shard s to rotation after a successful probe.
	MarkShardUp(s int)
	// ProbeShard checks shard s end to end without touching health state
	// or billing; nil means the shard can serve reads.
	ProbeShard(s int) error
}

// LoadReporter is the optional serving-load surface of a sharded
// backend: per-shard counters of the reads each shard actually served
// and the simulated serving time the spread-reads estimator billed to
// it — the load split proactive replica read spreading balances.
// *repro.ShardedIndex satisfies it structurally; the metrics and index
// endpoints include the split when present.
type LoadReporter interface {
	// ShardLoads returns per-shard serving-load counters, cumulative
	// since construction or the last health reset.
	ShardLoads() []repro.ShardLoad
}

// CacheStatser is the optional cache surface of a backend: indexes
// opened with a decoded-chunk cache report its counters through it, and
// the metrics endpoint includes them when present. Both *repro.Index and
// *repro.ShardedIndex satisfy it structurally; a cacheless index reports
// Enabled false and is omitted from the snapshot.
type CacheStatser interface {
	// CacheStats returns the cumulative decoded-chunk cache counters.
	CacheStats() repro.CacheStats
}

// Registry is the server's set of named open indexes. It is safe for
// concurrent use; registration normally happens at startup, lookups on
// every request.
type Registry struct {
	mu       sync.RWMutex
	backends map[string]Backend
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{backends: map[string]Backend{}}
}

// Add registers b under name. Registering a duplicate name is a
// configuration bug and is reported as an error rather than silently
// replacing a live index.
func (r *Registry) Add(name string, b Backend) error {
	if name == "" {
		return fmt.Errorf("server: index name must be non-empty")
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.backends[name]; ok {
		return fmt.Errorf("server: index %q already registered", name)
	}
	r.backends[name] = b
	return nil
}

// Get returns the backend registered under name, or false.
func (r *Registry) Get(name string) (Backend, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	b, ok := r.backends[name]
	return b, ok
}

// Names returns the registered index names in sorted order.
func (r *Registry) Names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	names := make([]string, 0, len(r.backends))
	for name := range r.backends {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// CloseAll closes every registered backend, keeping the first error, and
// empties the registry. Called once at shutdown, after draining.
func (r *Registry) CloseAll() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	var first error
	for name, b := range r.backends {
		if err := b.Close(); err != nil && first == nil {
			first = fmt.Errorf("server: closing index %q: %w", name, err)
		}
	}
	r.backends = map[string]Backend{}
	return first
}
