package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/faultstore"
)

// TestStressShedDegradeDrain is the serving layer's acceptance test,
// meant to run under -race: a replicated fleet with shard 0 dead and no
// replica (R=1) serves 2× its admission capacity of concurrent clients.
// The invariants:
//
//   - every response is 200, 429, or 503 — nothing hangs, nothing leaks
//     a 500 out of overload handling;
//   - every 200 is honest about degradation: with an unreplicated shard
//     dead, Degraded is set, skipped chunks are counted, and the down
//     shard is reported;
//   - graceful shutdown drains the in-flight request to a real 200 and
//     leaves zero server goroutines behind.
func TestStressShedDegradeDrain(t *testing.T) {
	baseline := runtime.NumGoroutine()

	b, faults, coll := faultedRouter(t, 4000, faultSeed(t), 4, 1, faultstore.Config{
		Seed:          faultSeed(t),
		TransientProb: 0.01,
		Latency:       500 * time.Microsecond,
	})
	faults[0].Kill()
	reg := NewRegistry()
	if err := reg.Add("main", b); err != nil {
		t.Fatal(err)
	}
	// TenantBurst 20 against a ~20-chunk admission estimate makes bucket
	// exhaustion reachable within the test's short run; rate 1/s keeps
	// refill negligible over its few seconds.
	s := New(reg, Config{
		MaxInFlight:   2,
		TenantRate:    1,
		TenantBurst:   20,
		ProbeInterval: 20 * time.Millisecond,
	})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- s.Serve(ln) }()
	base := "http://" + ln.Addr().String()
	client := &http.Client{Transport: &http.Transport{}}
	defer client.CloseIdleConnections()

	post := func(path string, body any, headers map[string]string) (int, []byte, http.Header) {
		raw, err := json.Marshal(body)
		if err != nil {
			t.Error(err)
			return 0, nil, nil
		}
		req, err := http.NewRequest("POST", base+path, bytes.NewReader(raw))
		if err != nil {
			t.Error(err)
			return 0, nil, nil
		}
		for k, v := range headers {
			req.Header.Set(k, v)
		}
		resp, err := client.Do(req)
		if err != nil {
			t.Errorf("request failed outright: %v", err)
			return 0, nil, nil
		}
		defer resp.Body.Close()
		out, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Error(err)
			return 0, nil, nil
		}
		return resp.StatusCode, out, resp.Header
	}

	// Warm query: pays the dead shard's discovery cost so the router's
	// health state (and thus ShardsDown on later 200s) is settled before
	// the measured load.
	if code, raw, _ := post("/v1/indexes/main/search",
		SearchRequest{Query: coll.Vec(0), K: 10, MaxChunks: 3}, nil); code != 200 {
		t.Fatalf("warm query: %d (%s)", code, raw)
	}

	// 2× saturating load: 10 concurrent clients against MaxInFlight 2.
	// Half the clients share one tenant, half get private tenants; every
	// 5th request carries a 1ms deadline it cannot meet (deadline 503s).
	// The limiter sheds the overflow with 503s.
	const clients, perClient = 10, 25
	var count200, count429, count503, countOther atomic.Int64
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			tenant := "heavy"
			if c%2 == 0 {
				tenant = fmt.Sprintf("light-%d", c)
			}
			for i := 0; i < perClient; i++ {
				headers := map[string]string{HeaderTenant: tenant}
				if i%5 == 4 {
					headers[HeaderTenant] = fmt.Sprintf("deadline-%d", c)
					headers[HeaderDeadlineMs] = "1"
				}
				var code int
				var raw []byte
				var hdr http.Header
				if i%7 == 6 {
					code, raw, hdr = post("/v1/indexes/main/batch", BatchRequest{
						Queries: [][]float32{coll.Vec(i * 31 % 4000), coll.Vec(i * 53 % 4000)},
						K:       10, MaxChunks: 3,
					}, headers)
					if code == 200 {
						var br BatchResponse
						if err := json.Unmarshal(raw, &br); err != nil {
							t.Error(err)
						} else if !br.Degraded {
							t.Errorf("batch 200 with dead unreplicated shard not degraded: %s", raw)
						}
					}
				} else {
					code, raw, hdr = post("/v1/indexes/main/search", SearchRequest{
						Query: coll.Vec((c*perClient + i) * 13 % 4000),
						K:     10, MaxChunks: 3,
					}, headers)
					if code == 200 {
						var sr SearchResponse
						if err := json.Unmarshal(raw, &sr); err != nil {
							t.Error(err)
						} else if !sr.Degraded || sr.ChunksSkipped == 0 || sr.ShardsDown < 1 {
							t.Errorf("200 with dead unreplicated shard not honest: %s", raw)
						}
					}
				}
				switch code {
				case 200:
					count200.Add(1)
				case 429:
					count429.Add(1)
					if hdr.Get("Retry-After") == "" {
						t.Error("429 without Retry-After")
					}
				case 503:
					count503.Add(1)
					if hdr.Get("Retry-After") == "" {
						t.Error("503 without Retry-After")
					}
				default:
					countOther.Add(1)
					t.Errorf("status %d under overload (want only 200/429/503): %s", code, raw)
				}
			}
		}(c)
	}
	wg.Wait()
	t.Logf("load: 200=%d 429=%d 503=%d other=%d",
		count200.Load(), count429.Load(), count503.Load(), countOther.Load())
	if count200.Load() == 0 {
		t.Error("overload starved every request: want some 200s")
	}
	if count503.Load() == 0 {
		t.Error("overload and 1ms deadlines never produced a 503")
	}

	// Tenant-bucket shedding, deterministically: with the concurrent
	// load over, a fresh tenant spends its whole bucket on one request;
	// the next one must 429 with Retry-After.
	code, raw, _ := post("/v1/indexes/main/search",
		SearchRequest{Query: coll.Vec(5), K: 10, MaxChunks: 20},
		map[string]string{HeaderTenant: "bucket-demo"})
	if code != 200 {
		t.Fatalf("bucket-demo first request: %d (%s), want 200", code, raw)
	}
	code, _, hdr := post("/v1/indexes/main/search",
		SearchRequest{Query: coll.Vec(6), K: 10, MaxChunks: 20},
		map[string]string{HeaderTenant: "bucket-demo"})
	if code != 429 {
		t.Fatalf("bucket-demo second request: %d, want 429", code)
	}
	if hdr.Get("Retry-After") == "" {
		t.Error("429 without Retry-After")
	}
	count429.Add(1)

	// Graceful drain: park one request mid-execution, shut down, and
	// require it to finish as a real 200 rather than being dropped.
	inFlight := make(chan struct {
		code int
		raw  []byte
	}, 1)
	go func() {
		code, raw, _ := post("/v1/indexes/main/search", SearchRequest{
			Query: coll.Vec(99), K: 10, MaxChunks: 18,
		}, map[string]string{HeaderTenant: "drain"})
		inFlight <- struct {
			code int
			raw  []byte
		}{code, raw}
	}()
	deadline := time.Now().Add(2 * time.Second)
	for s.limiter.InFlight() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("drain request never entered the server")
		}
		time.Sleep(time.Millisecond)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if err := <-serveErr; err != nil {
		t.Fatalf("serve returned %v after graceful shutdown, want nil", err)
	}
	res := <-inFlight
	if res.code != 200 {
		t.Fatalf("in-flight request during drain: %d (%s), want 200", res.code, res.raw)
	}

	// Zero leaked goroutines: after shutdown and idle-connection
	// teardown, we return to the pre-server baseline (with slack for
	// runtime helpers that retire asynchronously).
	client.CloseIdleConnections()
	leakDeadline := time.Now().Add(5 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= baseline+2 {
			break
		}
		if time.Now().After(leakDeadline) {
			buf := make([]byte, 1<<16)
			t.Fatalf("goroutines leaked: baseline %d, now %d\n%s",
				baseline, runtime.NumGoroutine(), buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestDeadlineStopsCharging pins the budget-containment guarantee: once
// a request's deadline fires, each shard's pipeline stops within one
// chunk charge — an abandoned request cannot keep billing the fleet.
func TestDeadlineStopsCharging(t *testing.T) {
	const shards = 2
	perRead := 25 * time.Millisecond
	b, faults, coll := faultedRouter(t, 3000, faultSeed(t), shards, 1, faultstore.Config{
		Latency: perRead,
	})
	reg := NewRegistry()
	if err := reg.Add("main", b); err != nil {
		t.Fatal(err)
	}
	s := New(reg, Config{})
	ts := struct{ URL string }{}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- s.Serve(ln) }()
	ts.URL = "http://" + ln.Addr().String()
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := s.Shutdown(ctx); err != nil {
			t.Errorf("shutdown: %v", err)
		}
		<-serveErr
	}()

	var before int64
	for _, f := range faults {
		before += f.Reads()
	}
	// A huge chunk budget with a 60ms deadline over 25ms reads: each
	// shard completes at most 2-3 reads before its next between-chunks
	// context check aborts the walk.
	body, _ := json.Marshal(SearchRequest{Query: coll.Vec(7), K: 10, MaxChunks: 1000})
	req, err := http.NewRequest("POST", ts.URL+"/v1/indexes/main/search", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set(HeaderDeadlineMs, "60")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 503 {
		t.Fatalf("expired request: %d (%s), want 503", resp.StatusCode, raw)
	}
	// The handler has answered, but a runaway search would still be
	// reading in the background; give any such stragglers time to show
	// up before counting.
	time.Sleep(4 * perRead)
	var after int64
	for _, f := range faults {
		after += f.Reads()
	}
	// 60ms / 25ms = at most 3 reads per shard pipeline (2 complete, one
	// in flight when the deadline fires), plus one for slack.
	maxReads := int64(shards * 4)
	if got := after - before; got > maxReads {
		t.Fatalf("deadline'd request charged %d reads across %d shards, want <= %d (one chunk past the deadline per pipeline)",
			got, shards, maxReads)
	}
	if got := s.Metrics().Snapshot(0, nil).DeadlineMiss; got != 1 {
		t.Fatalf("DeadlineMiss = %d, want 1", got)
	}
}
