package server

import (
	"testing"
	"time"
)

func TestHistogramQuantiles(t *testing.T) {
	var h histogram
	// 90 fast samples, 10 slow ones: p50 lands in the fast bucket, p99
	// in the slow one.
	for i := 0; i < 90; i++ {
		h.record(80 * time.Microsecond)
	}
	for i := 0; i < 10; i++ {
		h.record(40 * time.Millisecond)
	}
	p50, p99 := h.quantile(0.50), h.quantile(0.99)
	if p50 < 80*time.Microsecond || p50 > 200*time.Microsecond {
		t.Fatalf("p50 = %v, want the ~100µs bucket", p50)
	}
	if p99 < 40*time.Millisecond || p99 > 120*time.Millisecond {
		t.Fatalf("p99 = %v, want the ~50ms bucket", p99)
	}
	if got := h.quantile(0.0); got > p50 {
		t.Fatalf("p0 = %v should not exceed p50 = %v", got, p50)
	}
}

func TestHistogramEmpty(t *testing.T) {
	var h histogram
	if got := h.quantile(0.99); got != 0 {
		t.Fatalf("empty histogram quantile = %v, want 0", got)
	}
}

func TestHistogramOverflowBucket(t *testing.T) {
	var h histogram
	h.record(time.Hour)
	if got := h.quantile(0.5); got <= 0 {
		t.Fatalf("overflow sample quantile = %v, want positive", got)
	}
}

func TestMetricsRecordClasses(t *testing.T) {
	m := NewMetrics()
	m.Record(OutcomeOK, time.Millisecond, 7, false)
	m.Record(OutcomeOK, time.Millisecond, 3, true)
	m.Record(OutcomeClientError, time.Millisecond, 0, false)
	m.Record(OutcomeShedInFlight, 0, 0, false)
	m.Record(OutcomeShedTenant, 0, 0, false)
	m.Record(OutcomeDeadlineMiss, time.Millisecond, 0, false)
	m.Record(OutcomeServerError, time.Millisecond, 0, false)
	m.RecordBestEffort()

	snap := m.Snapshot(3, nil)
	checks := []struct {
		name string
		got  int64
		want int64
	}{
		{"Requests", snap.Requests, 7},
		{"OK", snap.OK, 2},
		{"ClientErrors", snap.ClientErrors, 1},
		{"ShedInFlight", snap.ShedInFlight, 1},
		{"ShedTenant", snap.ShedTenant, 1},
		{"DeadlineMiss", snap.DeadlineMiss, 1},
		{"ServerErrors", snap.ServerErrors, 1},
		{"Degraded", snap.Degraded, 1},
		{"ChunksCharged", snap.ChunksCharged, 10},
		{"BestEffort", snap.BestEffort, 1},
	}
	for _, c := range checks {
		if c.got != c.want {
			t.Errorf("%s = %d, want %d", c.name, c.got, c.want)
		}
	}
	if snap.InFlight != 3 {
		t.Errorf("InFlight = %d, want 3", snap.InFlight)
	}
	if snap.QPS <= 0 {
		t.Errorf("QPS = %v, want positive right after recording", snap.QPS)
	}
	if snap.WallP50Us <= 0 {
		t.Errorf("WallP50Us = %d, want positive", snap.WallP50Us)
	}
}
