package server

import (
	"math"
	"sync"
	"time"
)

// Limiter is a bounded in-flight request limiter: a non-blocking
// semaphore. Admission never queues — a full server sheds immediately
// with 503 so the client's retry budget, not the server's memory, holds
// the backlog (load shedding, not load absorbing).
type Limiter struct {
	slots chan struct{}
}

// NewLimiter returns a limiter admitting at most n concurrent requests.
// n <= 0 disables limiting (every TryAcquire succeeds).
func NewLimiter(n int) *Limiter {
	if n <= 0 {
		return &Limiter{}
	}
	return &Limiter{slots: make(chan struct{}, n)}
}

// TryAcquire claims a slot without blocking, reporting whether one was
// free. A true return must be paired with exactly one Release.
func (l *Limiter) TryAcquire() bool {
	if l.slots == nil {
		return true
	}
	select {
	case l.slots <- struct{}{}:
		return true
	default:
		return false
	}
}

// Release returns a slot claimed by TryAcquire.
func (l *Limiter) Release() {
	if l.slots != nil {
		<-l.slots
	}
}

// InFlight returns the number of currently held slots.
func (l *Limiter) InFlight() int { return len(l.slots) }

// TenantBuckets rate-limits per-tenant work with token buckets
// denominated in chunks — the unit every stop rule, budget, and
// simulated cost in the system is already priced in — so one tenant's
// 200-chunk batch and another's 5-chunk point query draw from their
// buckets in proportion to the work they actually cause.
//
// Tokens refill continuously at Rate chunks/second up to Burst. A grant
// is charged up front from the request's declared budget (its worst
// case); the unspent remainder is refunded after the search, so a query
// that stopped early doesn't pay for chunks it never read.
type TenantBuckets struct {
	rate  float64 // chunks per second; <= 0 disables limiting
	burst float64 // bucket capacity in chunks
	now   func() time.Time

	mu      sync.Mutex
	buckets map[string]*bucket
}

type bucket struct {
	tokens float64
	last   time.Time
}

// NewTenantBuckets returns buckets refilling at rate chunks/second with
// capacity burst. rate <= 0 disables limiting entirely; burst < rate is
// raised to rate so a full second of refill always fits. The clock is
// injectable for tests; pass nil for time.Now.
func NewTenantBuckets(rate, burst float64, now func() time.Time) *TenantBuckets {
	if burst < rate {
		burst = rate
	}
	if now == nil {
		now = time.Now
	}
	return &TenantBuckets{rate: rate, burst: burst, now: now, buckets: map[string]*bucket{}}
}

// get returns tenant's bucket refilled to the current instant. Callers
// hold tb.mu.
func (tb *TenantBuckets) get(tenant string) *bucket {
	now := tb.now()
	b := tb.buckets[tenant]
	if b == nil {
		b = &bucket{tokens: tb.burst, last: now}
		tb.buckets[tenant] = b
		return b
	}
	elapsed := now.Sub(b.last).Seconds()
	if elapsed > 0 {
		b.tokens = math.Min(tb.burst, b.tokens+elapsed*tb.rate)
		b.last = now
	}
	return b
}

// Take atomically charges n chunks to tenant's bucket. On refusal it
// returns the wait until n tokens will have refilled — the Retry-After
// the handler sends with its 429.
func (tb *TenantBuckets) Take(tenant string, n int) (ok bool, retryAfter time.Duration) {
	if tb.rate <= 0 || n <= 0 {
		return true, 0
	}
	tb.mu.Lock()
	defer tb.mu.Unlock()
	b := tb.get(tenant)
	want := float64(n)
	if b.tokens >= want {
		b.tokens -= want
		return true, 0
	}
	need := math.Min(want, tb.burst) - b.tokens
	return false, time.Duration(need / tb.rate * float64(time.Second))
}

// TakeUpTo charges as many of the n requested chunks as the bucket
// holds, returning the granted count (possibly 0). This is the
// best-effort degraded-admission path: instead of shedding a
// chunk-budget request outright, the server shrinks its budget to what
// the tenant can afford right now.
func (tb *TenantBuckets) TakeUpTo(tenant string, n int) int {
	if tb.rate <= 0 || n <= 0 {
		return n
	}
	tb.mu.Lock()
	defer tb.mu.Unlock()
	b := tb.get(tenant)
	granted := math.Min(float64(n), math.Floor(b.tokens))
	if granted <= 0 {
		return 0
	}
	b.tokens -= granted
	return int(granted)
}

// Refund returns n unspent chunks to tenant's bucket, capped at Burst.
// Handlers call it with (granted − actually read) after every search so
// early-stopping queries are billed for real work only.
func (tb *TenantBuckets) Refund(tenant string, n int) {
	if tb.rate <= 0 || n <= 0 {
		return
	}
	tb.mu.Lock()
	defer tb.mu.Unlock()
	b := tb.get(tenant)
	b.tokens = math.Min(tb.burst, b.tokens+float64(n))
}

// Charge subtracts n chunks unconditionally, letting the bucket go
// negative. It settles actual cost above the admission estimate (a
// sharded per-shard budget can read more than MaxChunks×queries): the
// tenant runs a debt that must refill before its next admission, so
// underestimates are paid back rather than forgotten.
func (tb *TenantBuckets) Charge(tenant string, n int) {
	if tb.rate <= 0 || n <= 0 {
		return
	}
	tb.mu.Lock()
	defer tb.mu.Unlock()
	b := tb.get(tenant)
	b.tokens -= float64(n)
}

// RetryAfter returns the wait until tenant's bucket will hold n chunks
// (0 when it already does, or when limiting is disabled).
func (tb *TenantBuckets) RetryAfter(tenant string, n int) time.Duration {
	if tb.rate <= 0 || n <= 0 {
		return 0
	}
	tb.mu.Lock()
	defer tb.mu.Unlock()
	b := tb.get(tenant)
	need := math.Min(float64(n), tb.burst) - b.tokens
	if need <= 0 {
		return 0
	}
	return time.Duration(need / tb.rate * float64(time.Second))
}
