package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro"
)

// Request headers the server honors.
const (
	// HeaderDeadlineMs carries the client's per-request deadline in
	// milliseconds; absent, Config.DefaultDeadline applies.
	HeaderDeadlineMs = "X-Deadline-Ms"
	// HeaderTenant names the tenant whose token bucket pays for the
	// request; absent, DefaultTenant pays.
	HeaderTenant = "X-Tenant"
)

// DefaultTenant is the bucket charged when a request carries no
// X-Tenant header.
const DefaultTenant = "default"

// maxBodyBytes bounds a request body (a 10k-descriptor batch of
// 24-float vectors is ~2.4MB of JSON numbers; 16MB leaves headroom
// without letting one request balloon the heap).
const maxBodyBytes = 16 << 20

// Config tunes the server's robustness envelope. The zero value serves:
// no default deadline, no in-flight cap, no tenant limiting.
type Config struct {
	// DefaultDeadline applies to requests without an X-Deadline-Ms
	// header (0 = none). The deadline is enforced twice: as a real
	// context cancelling the search between chunk charges, and — for
	// requests that set no explicit stop rule — as the simulated
	// MaxTime budget, so the 2005 cost model self-limits to the same
	// horizon the wall clock does.
	DefaultDeadline time.Duration
	// MaxInFlight caps concurrently executing requests; excess requests
	// are shed with 503 immediately instead of queueing (0 = unlimited).
	MaxInFlight int
	// TenantRate is each tenant's sustained budget in chunks/second
	// (0 = unlimited); TenantBurst is the bucket capacity (raised to
	// TenantRate when smaller).
	TenantRate  float64
	TenantBurst float64
	// BestEffort admits a chunk-budget request whose tenant bucket
	// cannot cover its full budget by shrinking MaxChunks to what the
	// bucket holds, instead of shedding with 429. Time-budget and
	// run-to-completion requests are never shrunk — their cost is not
	// denominated in chunks up front — so they still shed.
	BestEffort bool
	// DefaultMaxChunks is the admission cost estimate per query for
	// requests that set no chunk budget (0 = 16). It is an estimate,
	// not a cap: actual spend is settled against the bucket afterwards.
	DefaultMaxChunks int
	// ProbeInterval is the background prober's period (0 = 250ms).
	ProbeInterval time.Duration
	// Clock overrides time.Now for the tenant buckets (tests).
	Clock func() time.Time
}

// Server is the HTTP serving layer: a registry of named indexes behind
// admission control, deadline propagation, metrics, and a shard-health
// prober. Build one with New, expose Handler (or Serve), and retire it
// with Shutdown.
type Server struct {
	cfg      Config
	reg      *Registry
	limiter  *Limiter
	buckets  *TenantBuckets
	metrics  *Metrics
	prober   *Prober
	mux      *http.ServeMux
	draining atomic.Bool

	mu   sync.Mutex
	http *http.Server
}

// New assembles a server over reg. Background work (the prober) starts
// with Start or Serve, not here, so a server that is only constructed
// owns no goroutines.
func New(reg *Registry, cfg Config) *Server {
	if cfg.DefaultMaxChunks <= 0 {
		cfg.DefaultMaxChunks = 16
	}
	s := &Server{
		cfg:     cfg,
		reg:     reg,
		limiter: NewLimiter(cfg.MaxInFlight),
		buckets: NewTenantBuckets(cfg.TenantRate, cfg.TenantBurst, cfg.Clock),
		metrics: NewMetrics(),
		prober:  NewProber(reg, cfg.ProbeInterval),
	}
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /readyz", s.handleReadyz)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /v1/indexes", s.handleIndexes)
	mux.HandleFunc("POST /v1/indexes/{index}/search", s.admitted(s.handleSearch))
	mux.HandleFunc("POST /v1/indexes/{index}/batch", s.admitted(s.handleBatch))
	mux.HandleFunc("POST /v1/indexes/{index}/multi", s.admitted(s.handleMulti))
	s.mux = mux
	return s
}

// Metrics exposes the server's counters for in-process embedding
// (benchmarks, tests); HTTP clients scrape GET /metrics instead.
func (s *Server) Metrics() *Metrics { return s.metrics }

// Handler returns the server's HTTP handler, for mounting under
// httptest or a caller-owned http.Server. Panic containment and
// admission are already wired in.
func (s *Server) Handler() http.Handler { return s.mux }

// Start launches the background prober. Serve calls it; tests that
// mount Handler directly call it themselves (or drive Prober().Sweep()).
// Idempotent.
func (s *Server) Start() { s.prober.Start() }

// Prober returns the server's shard-health prober.
func (s *Server) Prober() *Prober { return s.prober }

// Serve starts the prober and serves HTTP on l until Shutdown. A clean
// shutdown returns nil, not http.ErrServerClosed.
func (s *Server) Serve(l net.Listener) error {
	s.Start()
	hs := &http.Server{Handler: s.Handler()}
	s.mu.Lock()
	s.http = hs
	s.mu.Unlock()
	if err := hs.Serve(l); !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	return nil
}

// Shutdown drains and retires the server: the readiness gate flips (new
// requests shed with 503), the prober goroutine is stopped and joined,
// in-flight requests run to completion (bounded by ctx), and every
// registered index is closed. After Shutdown returns, the server owns
// no goroutines.
func (s *Server) Shutdown(ctx context.Context) error {
	s.draining.Store(true)
	s.prober.Stop()
	s.mu.Lock()
	hs := s.http
	s.mu.Unlock()
	var err error
	if hs != nil {
		err = hs.Shutdown(ctx)
	}
	if cerr := s.reg.CloseAll(); err == nil {
		err = cerr
	}
	return err
}

// ---- wire types ----

// WireNeighbor is one neighbor on the wire.
type WireNeighbor struct {
	ID   uint32  `json:"id"`
	Dist float64 `json:"dist"`
}

// SearchRequest is the body of POST /v1/indexes/{index}/search.
type SearchRequest struct {
	// Query is the descriptor, exactly repro.Dims values.
	Query []float32 `json:"query"`
	// K is the neighbor count (0 = 30).
	K int `json:"k,omitempty"`
	// MaxChunks is the chunk-budget stop rule (0 = none).
	MaxChunks int `json:"max_chunks,omitempty"`
	// MaxTimeUs is the simulated time-budget stop rule in microseconds
	// (0 = none). At most one of MaxChunks/MaxTimeUs may be set.
	MaxTimeUs int64 `json:"max_time_us,omitempty"`
	// Overlap selects the overlapped simulated pipeline.
	Overlap bool `json:"overlap,omitempty"`
	// GlobalBudget selects the global budget discipline on sharded
	// indexes.
	GlobalBudget bool `json:"global_budget,omitempty"`
}

// SearchResponse is one search outcome on the wire. Degradation is
// always explicit: Degraded, ChunksSkipped, and ShardsDown ship on
// every response so a client can tell a complete answer from a partial
// one without a side channel.
type SearchResponse struct {
	Neighbors  []WireNeighbor `json:"neighbors"`
	ChunksRead int            `json:"chunks_read"`
	// ChunksGranted reports the shrunk per-query budget when best-effort
	// admission reduced it (0 = the request ran at its asked budget).
	ChunksGranted int   `json:"chunks_granted,omitempty"`
	SimulatedUs   int64 `json:"simulated_us"`
	WallUs        int64 `json:"wall_us"`
	Exact         bool  `json:"exact"`
	Degraded      bool  `json:"degraded"`
	ChunksSkipped int   `json:"chunks_skipped"`
	ShardsDown    int   `json:"shards_down"`
}

// BatchRequest is the body of POST /v1/indexes/{index}/batch.
type BatchRequest struct {
	// Queries are the descriptors, each exactly repro.Dims values.
	Queries [][]float32 `json:"queries"`
	// K, MaxChunks, MaxTimeUs, Overlap, GlobalBudget are per-query, as
	// in SearchRequest.
	K            int   `json:"k,omitempty"`
	MaxChunks    int   `json:"max_chunks,omitempty"`
	MaxTimeUs    int64 `json:"max_time_us,omitempty"`
	Overlap      bool  `json:"overlap,omitempty"`
	GlobalBudget bool  `json:"global_budget,omitempty"`
	// Parallelism caps the batch engine's concurrency (0 = GOMAXPROCS).
	Parallelism int `json:"parallelism,omitempty"`
	// Stream switches the response to NDJSON (application/x-ndjson): one
	// BatchStreamItem line per query, written the moment that query
	// completes — fast queries arrive while slow ones still run — then
	// one trailer line carrying the BatchResponse totals (or the error,
	// when the batch failed after streaming began).
	Stream bool `json:"stream,omitempty"`
}

// BatchStreamItem is one line of a streamed batch response: a per-query
// completion (Query + Result), or the trailer (Done true) carrying the
// batch totals that a buffered BatchResponse would have carried — or the
// failure, since a mid-batch error can only be reported in-band once
// streaming has begun. Lines stream in completion order, not request
// order; Query maps each back to its slot.
type BatchStreamItem struct {
	// Query is the index of the completed query in the request, for
	// per-query lines; absent on the trailer.
	Query int `json:"query"`
	// Result is the completed query's outcome; nil on the trailer.
	Result *SearchResponse `json:"result,omitempty"`
	// Done marks the trailer, always the final line.
	Done bool `json:"done,omitempty"`
	// ChunksRead, Degraded, ChunksGranted are the trailer's batch totals,
	// as in BatchResponse.
	ChunksRead    int  `json:"chunks_read,omitempty"`
	Degraded      bool `json:"degraded,omitempty"`
	ChunksGranted int  `json:"chunks_granted,omitempty"`
	// Error reports a batch failure on the trailer: queries already
	// streamed remain valid, the rest never arrive.
	Error string `json:"error,omitempty"`
}

// BatchResponse is the body of a batch's 200: per-query outcomes in
// request order plus the batch-level totals the admission layer billed.
type BatchResponse struct {
	Results []SearchResponse `json:"results"`
	// ChunksRead is the total across queries; Degraded reports any
	// per-query degradation.
	ChunksRead int  `json:"chunks_read"`
	Degraded   bool `json:"degraded"`
	// ChunksGranted reports the shrunk per-query budget under
	// best-effort admission (0 = full asked budget).
	ChunksGranted int `json:"chunks_granted,omitempty"`
}

// MultiRequest is the body of POST /v1/indexes/{index}/multi: one image
// as a bag of descriptors, answered with ranked source images.
type MultiRequest struct {
	// Descriptors is the query image's bag, each exactly repro.Dims
	// values.
	Descriptors [][]float32 `json:"descriptors"`
	// K is the per-descriptor neighbor count (0 = 10).
	K int `json:"k,omitempty"`
	// MaxChunks is the per-descriptor chunk budget (0 = 3).
	MaxChunks int `json:"max_chunks,omitempty"`
	// RankWeighted scores votes 1/(1+rank).
	RankWeighted bool `json:"rank_weighted,omitempty"`
	// Overlap selects the overlapped simulated pipeline.
	Overlap bool `json:"overlap,omitempty"`
	// GlobalBudget selects the global budget discipline on sharded
	// indexes.
	GlobalBudget bool `json:"global_budget,omitempty"`
}

// WireImage is one ranked image on the wire.
type WireImage struct {
	Image   uint32  `json:"image"`
	Score   float64 `json:"score"`
	Matches int     `json:"matches"`
}

// MultiResponse is the body of a multi-search 200.
type MultiResponse struct {
	Images        []WireImage `json:"images"`
	Descriptors   int         `json:"descriptors"`
	ChunksRead    int         `json:"chunks_read"`
	ChunksGranted int         `json:"chunks_granted,omitempty"`
	SimulatedUs   int64       `json:"simulated_us"`
	Degraded      bool        `json:"degraded"`
	ChunksSkipped int         `json:"chunks_skipped"`
}

// ErrorResponse is the body of every non-2xx response.
type ErrorResponse struct {
	Error string `json:"error"`
}

// ---- middleware ----

// result is what a handler reports back to the admission wrapper for
// metrics: the outcome class plus the 200-path details.
type result struct {
	outcome    Outcome
	chunksRead int
	degraded   bool
}

// admitted wraps a request handler with the server's protective shell,
// outermost first: panic containment (a panicking handler answers 500
// and the server keeps serving), the draining gate, and the in-flight
// limiter. Inside the shell the handler runs, and its reported result
// is recorded with the request's wall latency.
func (s *Server) admitted(h func(http.ResponseWriter, *http.Request) result) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if s.draining.Load() {
			s.metrics.Record(OutcomeShedInFlight, 0, 0, false)
			writeError(w, http.StatusServiceUnavailable, "server is draining", 1)
			return
		}
		if !s.limiter.TryAcquire() {
			s.metrics.Record(OutcomeShedInFlight, 0, 0, false)
			writeError(w, http.StatusServiceUnavailable, "server at capacity", 1)
			return
		}
		defer s.limiter.Release()
		start := time.Now()
		defer func() {
			if p := recover(); p != nil {
				// The handler may have written nothing yet; answer 500 on a
				// best-effort basis (WriteHeader after a write is a no-op).
				writeError(w, http.StatusInternalServerError,
					fmt.Sprintf("internal error: %v", p), 0)
				s.metrics.Record(OutcomeServerError, time.Since(start), 0, false)
			}
		}()
		res := h(w, r)
		s.metrics.Record(res.outcome, time.Since(start), res.chunksRead, res.degraded)
	}
}

// writeError answers an ErrorResponse; retryAfterSec > 0 adds the
// Retry-After header 429/503 clients key their backoff on.
func writeError(w http.ResponseWriter, status int, msg string, retryAfterSec int) {
	w.Header().Set("Content-Type", "application/json")
	if retryAfterSec > 0 {
		w.Header().Set("Retry-After", strconv.Itoa(retryAfterSec))
	}
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(ErrorResponse{Error: msg})
}

// writeJSON answers a 200 with v as JSON.
func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(v)
}

// retryAfterSeconds rounds d up to whole seconds, minimum 1: the
// coarse, honest form Retry-After wants.
func retryAfterSeconds(d time.Duration) int {
	sec := int((d + time.Second - 1) / time.Second)
	if sec < 1 {
		sec = 1
	}
	return sec
}

// ---- admission plumbing shared by the search handlers ----

// request deadlines: header over default, then a real context.

// requestDeadline resolves the request's deadline and returns a context
// honoring it. A malformed header is a client error.
func (s *Server) requestDeadline(r *http.Request) (context.Context, context.CancelFunc, error) {
	d := s.cfg.DefaultDeadline
	if h := r.Header.Get(HeaderDeadlineMs); h != "" {
		ms, err := strconv.ParseInt(h, 10, 64)
		if err != nil || ms <= 0 {
			return nil, nil, fmt.Errorf("invalid %s header %q: want a positive integer", HeaderDeadlineMs, h)
		}
		d = time.Duration(ms) * time.Millisecond
	}
	if d <= 0 {
		return r.Context(), func() {}, nil
	}
	ctx, cancel := context.WithTimeout(r.Context(), d)
	return ctx, cancel, nil
}

// tenantOf resolves the paying tenant.
func tenantOf(r *http.Request) string {
	if t := r.Header.Get(HeaderTenant); t != "" {
		return t
	}
	return DefaultTenant
}

// grant is an admission decision from admitChunks.
type grant struct {
	tenant string
	// charged is what the bucket was debited up front; settle squares it
	// with actual spend.
	charged int
	// perQuery is the effective per-query chunk budget, possibly shrunk
	// under best-effort admission (shrunk reports that).
	perQuery int
	shrunk   bool
}

// settle squares the up-front charge with the actual chunks read:
// refunds the unspent remainder or charges the overrun as tenant debt.
func (g *grant) settle(buckets *TenantBuckets, actual int) {
	switch diff := g.charged - actual; {
	case diff > 0:
		buckets.Refund(g.tenant, diff)
	case diff < 0:
		buckets.Charge(g.tenant, -diff)
	}
}

// admitChunks runs tenant admission for a request of n queries, each
// with per-query budget maxChunks (0 = none declared), where timed
// reports an explicit simulated time budget. On refusal it writes the
// 429 and returns ok=false.
func (s *Server) admitChunks(w http.ResponseWriter, r *http.Request, n, maxChunks int, timed bool) (grant, bool) {
	g := grant{tenant: tenantOf(r), perQuery: maxChunks}
	per := maxChunks
	if per <= 0 {
		per = s.cfg.DefaultMaxChunks
	}
	estimate := per * n
	if ok, retry := s.buckets.Take(g.tenant, estimate); !ok {
		// Best-effort shrink applies only to chunk-budget requests: their
		// cost is denominated in chunks up front. Timed and
		// run-to-completion requests shed.
		if s.cfg.BestEffort && maxChunks > 0 && !timed {
			if granted := s.buckets.TakeUpTo(g.tenant, estimate); granted >= n {
				g.charged = granted
				g.perQuery = granted / n
				g.shrunk = true
				s.metrics.RecordBestEffort()
				return g, true
			} else if granted > 0 {
				// Not even one chunk per query: refund and shed.
				s.buckets.Refund(g.tenant, granted)
			}
			retry = s.buckets.RetryAfter(g.tenant, n)
		}
		writeError(w, http.StatusTooManyRequests,
			fmt.Sprintf("tenant %q over budget: %d chunks requested", g.tenant, estimate),
			retryAfterSeconds(retry))
		return g, false
	}
	g.charged = estimate
	return g, true
}

// searchFailure maps a facade search error onto the wire: an expired or
// cancelled deadline is 503 with Retry-After (the request was admitted
// but its time ran out — the honest signal for the client to back off
// and retry with a looser deadline), anything else is 500.
func searchFailure(w http.ResponseWriter, err error) result {
	if errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled) {
		writeError(w, http.StatusServiceUnavailable,
			fmt.Sprintf("deadline exceeded: %v", err), 1)
		return result{outcome: OutcomeDeadlineMiss}
	}
	writeError(w, http.StatusInternalServerError, err.Error(), 0)
	return result{outcome: OutcomeServerError}
}

// decodeBody decodes the JSON body into v with a size cap and strict
// fields, so typos in option names are diagnosed instead of silently
// ignored.
func decodeBody(w http.ResponseWriter, r *http.Request, v any) error {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return fmt.Errorf("decoding request body: %w", err)
	}
	return nil
}

// checkVector validates one wire vector's dimensionality.
func checkVector(name string, i int, v []float32) error {
	if len(v) != repro.Dims {
		return fmt.Errorf("%s[%d] has %d dims, want %d", name, i, len(v), repro.Dims)
	}
	return nil
}

// checkStopRules rejects out-of-range or contradictory wire options
// before any tokens are charged — the same rules the facade enforces,
// applied early so a bad request never costs admission work.
func checkStopRules(k, maxChunks int, maxTimeUs int64) error {
	if k < 0 {
		return fmt.Errorf("k %d is negative", k)
	}
	if maxChunks < 0 {
		return fmt.Errorf("max_chunks %d is negative", maxChunks)
	}
	if maxTimeUs < 0 {
		return fmt.Errorf("max_time_us %d is negative", maxTimeUs)
	}
	if maxChunks > 0 && maxTimeUs > 0 {
		return fmt.Errorf("max_chunks %d and max_time_us %d are conflicting stop rules; set at most one", maxChunks, maxTimeUs)
	}
	return nil
}

// ---- handlers ----

func (s *Server) lookupIndex(w http.ResponseWriter, r *http.Request) (Backend, bool) {
	name := r.PathValue("index")
	b, ok := s.reg.Get(name)
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Sprintf("unknown index %q", name), 0)
	}
	return b, ok
}

func (s *Server) handleSearch(w http.ResponseWriter, r *http.Request) result {
	b, ok := s.lookupIndex(w, r)
	if !ok {
		return result{outcome: OutcomeClientError}
	}
	var req SearchRequest
	if err := decodeBody(w, r, &req); err != nil {
		writeError(w, http.StatusBadRequest, err.Error(), 0)
		return result{outcome: OutcomeClientError}
	}
	if err := checkStopRules(req.K, req.MaxChunks, req.MaxTimeUs); err != nil {
		writeError(w, http.StatusBadRequest, err.Error(), 0)
		return result{outcome: OutcomeClientError}
	}
	if err := checkVector("query", 0, req.Query); err != nil {
		writeError(w, http.StatusBadRequest, err.Error(), 0)
		return result{outcome: OutcomeClientError}
	}
	ctx, cancel, err := s.requestDeadline(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error(), 0)
		return result{outcome: OutcomeClientError}
	}
	defer cancel()
	g, ok := s.admitChunks(w, r, 1, req.MaxChunks, req.MaxTimeUs > 0)
	if !ok {
		return result{outcome: OutcomeShedTenant}
	}
	opts := repro.SearchOptions{
		K:            req.K,
		MaxChunks:    g.perQuery,
		MaxTime:      time.Duration(req.MaxTimeUs) * time.Microsecond,
		Overlap:      req.Overlap,
		GlobalBudget: req.GlobalBudget,
		Ctx:          ctx,
	}
	applyDeadlineBudget(&opts, ctx)
	res, err := b.Search(repro.Vector(req.Query), opts)
	if err != nil {
		g.settle(s.buckets, 0)
		return searchFailure(w, err)
	}
	g.settle(s.buckets, res.ChunksRead)
	resp := searchResponse(res)
	if g.shrunk {
		resp.ChunksGranted = g.perQuery
	}
	writeJSON(w, resp)
	return result{outcome: OutcomeOK, chunksRead: res.ChunksRead, degraded: res.Degraded}
}

func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) result {
	b, ok := s.lookupIndex(w, r)
	if !ok {
		return result{outcome: OutcomeClientError}
	}
	var req BatchRequest
	if err := decodeBody(w, r, &req); err != nil {
		writeError(w, http.StatusBadRequest, err.Error(), 0)
		return result{outcome: OutcomeClientError}
	}
	if err := checkStopRules(req.K, req.MaxChunks, req.MaxTimeUs); err != nil {
		writeError(w, http.StatusBadRequest, err.Error(), 0)
		return result{outcome: OutcomeClientError}
	}
	if len(req.Queries) == 0 {
		writeError(w, http.StatusBadRequest, "queries must be non-empty", 0)
		return result{outcome: OutcomeClientError}
	}
	queries := make([]repro.Vector, len(req.Queries))
	for i, q := range req.Queries {
		if err := checkVector("queries", i, q); err != nil {
			writeError(w, http.StatusBadRequest, err.Error(), 0)
			return result{outcome: OutcomeClientError}
		}
		queries[i] = repro.Vector(q)
	}
	ctx, cancel, err := s.requestDeadline(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error(), 0)
		return result{outcome: OutcomeClientError}
	}
	defer cancel()
	g, ok := s.admitChunks(w, r, len(queries), req.MaxChunks, req.MaxTimeUs > 0)
	if !ok {
		return result{outcome: OutcomeShedTenant}
	}
	opts := repro.BatchOptions{
		SearchOptions: repro.SearchOptions{
			K:            req.K,
			MaxChunks:    g.perQuery,
			MaxTime:      time.Duration(req.MaxTimeUs) * time.Microsecond,
			Overlap:      req.Overlap,
			GlobalBudget: req.GlobalBudget,
			Ctx:          ctx,
		},
		Parallelism: req.Parallelism,
	}
	applyDeadlineBudget(&opts.SearchOptions, ctx)
	results := make([]repro.Result, len(queries))
	if req.Stream {
		return s.streamBatch(w, b, queries, opts, results, g)
	}
	if err := b.SearchBatchInto(queries, opts, results); err != nil {
		g.settle(s.buckets, 0)
		return searchFailure(w, err)
	}
	resp := BatchResponse{Results: make([]SearchResponse, len(results))}
	for i := range results {
		resp.Results[i] = searchResponse(&results[i])
		resp.ChunksRead += results[i].ChunksRead
		resp.Degraded = resp.Degraded || results[i].Degraded
	}
	if g.shrunk {
		resp.ChunksGranted = g.perQuery
	}
	g.settle(s.buckets, resp.ChunksRead)
	writeJSON(w, resp)
	return result{outcome: OutcomeOK, chunksRead: resp.ChunksRead, degraded: resp.Degraded}
}

// streamBatch answers a stream:true batch as NDJSON: one BatchStreamItem
// line per query in completion order, flushed as it completes, then a
// trailer line with the batch totals. The 200 and headers commit before
// the batch runs, so a mid-batch failure is reported in-band on the
// trailer — queries already streamed remain valid, exactly the facade's
// SearchBatchStream contract.
func (s *Server) streamBatch(w http.ResponseWriter, b Backend, queries []repro.Vector, opts repro.BatchOptions, results []repro.Result, g grant) result {
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	var mu sync.Mutex // serializes completion callbacks onto the wire
	chunksRead, degraded := 0, false
	err := b.SearchBatchStream(queries, opts, results, func(qi int) {
		item := searchResponse(&results[qi])
		mu.Lock()
		defer mu.Unlock()
		chunksRead += results[qi].ChunksRead
		degraded = degraded || results[qi].Degraded
		enc.Encode(BatchStreamItem{Query: qi, Result: &item})
		if flusher != nil {
			flusher.Flush()
		}
	})
	trailer := BatchStreamItem{Done: true, ChunksRead: chunksRead, Degraded: degraded}
	if g.shrunk {
		trailer.ChunksGranted = g.perQuery
	}
	outcome := OutcomeOK
	if err != nil {
		trailer.Error = err.Error()
		outcome = OutcomeServerError
		if errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled) {
			outcome = OutcomeDeadlineMiss
		}
	}
	g.settle(s.buckets, chunksRead)
	enc.Encode(trailer)
	if flusher != nil {
		flusher.Flush()
	}
	return result{outcome: outcome, chunksRead: chunksRead, degraded: degraded}
}

func (s *Server) handleMulti(w http.ResponseWriter, r *http.Request) result {
	b, ok := s.lookupIndex(w, r)
	if !ok {
		return result{outcome: OutcomeClientError}
	}
	var req MultiRequest
	if err := decodeBody(w, r, &req); err != nil {
		writeError(w, http.StatusBadRequest, err.Error(), 0)
		return result{outcome: OutcomeClientError}
	}
	if err := checkStopRules(req.K, req.MaxChunks, 0); err != nil {
		writeError(w, http.StatusBadRequest, err.Error(), 0)
		return result{outcome: OutcomeClientError}
	}
	if len(req.Descriptors) == 0 {
		writeError(w, http.StatusBadRequest, "descriptors must be non-empty", 0)
		return result{outcome: OutcomeClientError}
	}
	descriptors := make([]repro.Vector, len(req.Descriptors))
	for i, d := range req.Descriptors {
		if err := checkVector("descriptors", i, d); err != nil {
			writeError(w, http.StatusBadRequest, err.Error(), 0)
			return result{outcome: OutcomeClientError}
		}
		descriptors[i] = repro.Vector(d)
	}
	ctx, cancel, err := s.requestDeadline(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error(), 0)
		return result{outcome: OutcomeClientError}
	}
	defer cancel()
	// Multi-search budgets are always chunk-denominated (MaxChunks 0
	// defaults to 3 per descriptor), so the estimate uses that default.
	maxChunks := req.MaxChunks
	if maxChunks <= 0 {
		maxChunks = 3
	}
	g, ok := s.admitChunks(w, r, len(descriptors), maxChunks, false)
	if !ok {
		return result{outcome: OutcomeShedTenant}
	}
	res, err := b.MultiSearch(descriptors, repro.MultiSearchOptions{
		K:            req.K,
		MaxChunks:    g.perQuery,
		RankWeighted: req.RankWeighted,
		Overlap:      req.Overlap,
		GlobalBudget: req.GlobalBudget,
		Ctx:          ctx,
	})
	if err != nil {
		g.settle(s.buckets, 0)
		return searchFailure(w, err)
	}
	g.settle(s.buckets, res.ChunksRead)
	resp := MultiResponse{
		Images:        make([]WireImage, len(res.Images)),
		Descriptors:   res.Descriptors,
		ChunksRead:    res.ChunksRead,
		SimulatedUs:   res.Simulated.Microseconds(),
		Degraded:      res.Degraded,
		ChunksSkipped: res.ChunksSkipped,
	}
	for i, im := range res.Images {
		resp.Images[i] = WireImage{Image: im.Image, Score: im.Score, Matches: im.Matches}
	}
	if g.shrunk {
		resp.ChunksGranted = g.perQuery
	}
	writeJSON(w, resp)
	return result{outcome: OutcomeOK, chunksRead: res.ChunksRead, degraded: res.Degraded}
}

// applyDeadlineBudget mirrors a real deadline into the simulated time
// budget for requests that set no explicit stop rule: the modeled 2005
// machine is given the same horizon the wall clock enforces, so an
// undeclared request degrades to a time-budget search instead of a
// run-to-completion one that the deadline then kills.
func applyDeadlineBudget(opts *repro.SearchOptions, ctx context.Context) {
	if opts.MaxChunks > 0 || opts.MaxTime > 0 {
		return
	}
	if dl, ok := ctx.Deadline(); ok {
		if remain := time.Until(dl); remain > 0 {
			opts.MaxTime = remain
		}
	}
}

// searchResponse maps a facade result onto the wire.
func searchResponse(res *repro.Result) SearchResponse {
	out := SearchResponse{
		Neighbors:     make([]WireNeighbor, len(res.Neighbors)),
		ChunksRead:    res.ChunksRead,
		SimulatedUs:   res.Simulated.Microseconds(),
		WallUs:        res.Wall.Microseconds(),
		Exact:         res.Exact,
		Degraded:      res.Degraded,
		ChunksSkipped: res.ChunksSkipped,
		ShardsDown:    res.ShardsDown,
	}
	for i, nb := range res.Neighbors {
		out.Neighbors[i] = WireNeighbor{ID: uint32(nb.ID), Dist: nb.Dist}
	}
	return out
}

// ---- lifecycle endpoints ----

// handleHealthz answers liveness: the process is up and serving HTTP.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, map[string]string{"status": "ok"})
}

// handleReadyz answers readiness: 200 while accepting work, 503 once
// draining — the signal a load balancer keys on to stop routing here
// before the listener actually closes.
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		writeError(w, http.StatusServiceUnavailable, "draining", 1)
		return
	}
	writeJSON(w, map[string]string{"status": "ready"})
}

// handleMetrics serves the metrics snapshot as one JSON document.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, s.metrics.Snapshot(s.limiter.InFlight(), s.reg))
}

// handleIndexes lists the registered indexes with their shard health.
func (s *Server) handleIndexes(w http.ResponseWriter, r *http.Request) {
	out := []IndexSnapshot{}
	for _, name := range s.reg.Names() {
		b, ok := s.reg.Get(name)
		if !ok {
			continue
		}
		is := IndexSnapshot{Name: name, Chunks: b.Chunks(), Descriptors: b.Len()}
		if sh, ok := b.(ShardHealth); ok {
			is.ShardsDown = sh.ShardsDown()
			for sd := 0; sd < sh.Shards(); sd++ {
				is.Shards = append(is.Shards, ShardState{Shard: sd, Down: sh.ShardDown(sd)})
			}
			fillShardLoads(is.Shards, b)
		}
		out = append(out, is)
	}
	writeJSON(w, out)
}
