package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"repro"
)

// fakeBackend is a scriptable Backend for exercising the server's
// control paths (limits, deadlines, panics) without real search work.
type fakeBackend struct {
	searchFn func(q repro.Vector, opts repro.SearchOptions) (*repro.Result, error)
	batchFn  func(queries []repro.Vector, opts repro.BatchOptions, results []repro.Result) error
	multiFn  func(d []repro.Vector, opts repro.MultiSearchOptions) (*repro.MultiResult, error)
}

func (f *fakeBackend) Search(q repro.Vector, opts repro.SearchOptions) (*repro.Result, error) {
	if f.searchFn != nil {
		return f.searchFn(q, opts)
	}
	return &repro.Result{ChunksRead: 1}, nil
}

func (f *fakeBackend) SearchBatchInto(queries []repro.Vector, opts repro.BatchOptions, results []repro.Result) error {
	if f.batchFn != nil {
		return f.batchFn(queries, opts, results)
	}
	for i := range results {
		results[i] = repro.Result{ChunksRead: 1}
	}
	return nil
}

func (f *fakeBackend) SearchBatchStream(queries []repro.Vector, opts repro.BatchOptions, results []repro.Result, done func(query int)) error {
	if err := f.SearchBatchInto(queries, opts, results); err != nil {
		return err
	}
	if done != nil {
		for i := range results {
			done(i)
		}
	}
	return nil
}

func (f *fakeBackend) MultiSearch(d []repro.Vector, opts repro.MultiSearchOptions) (*repro.MultiResult, error) {
	if f.multiFn != nil {
		return f.multiFn(d, opts)
	}
	return &repro.MultiResult{Descriptors: len(d), ChunksRead: len(d)}, nil
}

func (f *fakeBackend) Chunks() int  { return 8 }
func (f *fakeBackend) Len() int     { return 800 }
func (f *fakeBackend) Close() error { return nil }

// buildTestIndex builds a small real index for end-to-end requests.
func buildTestIndex(t testing.TB, n int) (*repro.Index, *repro.Collection) {
	t.Helper()
	coll := repro.GenerateCollection(n, 42)
	ix, err := repro.Build(coll, repro.BuildConfig{Strategy: repro.StrategySRTree, ChunkSize: 250})
	if err != nil {
		t.Fatal(err)
	}
	return ix, coll
}

// serveTest mounts a server over the given backends and returns the test
// server plus the Server for direct inspection. Cleanup shuts both down.
func serveTest(t testing.TB, cfg Config, backends map[string]Backend) (*httptest.Server, *Server) {
	t.Helper()
	reg := NewRegistry()
	for name, b := range backends {
		if err := reg.Add(name, b); err != nil {
			t.Fatal(err)
		}
	}
	s := New(reg, cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := s.Shutdown(ctx); err != nil {
			t.Errorf("shutdown: %v", err)
		}
	})
	return ts, s
}

// doJSON posts body as JSON (or GETs when body is nil) and returns the
// response with its decoded-to-bytes body.
func doJSON(t testing.TB, method, url string, body any, headers map[string]string) (*http.Response, []byte) {
	t.Helper()
	var rd io.Reader
	if body != nil {
		raw, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		rd = bytes.NewReader(raw)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	for k, v := range headers {
		req.Header.Set(k, v)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, raw
}

func TestServeSearchBatchMulti(t *testing.T) {
	ix, coll := buildTestIndex(t, 2000)
	ts, _ := serveTest(t, Config{}, map[string]Backend{"main": ix})

	resp, raw := doJSON(t, "POST", ts.URL+"/v1/indexes/main/search",
		SearchRequest{Query: coll.Vec(17), K: 5, MaxChunks: 3}, nil)
	if resp.StatusCode != 200 {
		t.Fatalf("search: %d: %s", resp.StatusCode, raw)
	}
	var sr SearchResponse
	if err := json.Unmarshal(raw, &sr); err != nil {
		t.Fatal(err)
	}
	if len(sr.Neighbors) == 0 || len(sr.Neighbors) > 5 {
		t.Fatalf("neighbors = %d, want 1..5", len(sr.Neighbors))
	}
	if sr.ChunksRead <= 0 || sr.ChunksRead > 3 {
		t.Fatalf("chunks_read = %d, want 1..3 under a 3-chunk budget", sr.ChunksRead)
	}
	if sr.Degraded || sr.ChunksSkipped != 0 || sr.ShardsDown != 0 {
		t.Fatalf("unsharded healthy search reported degradation: %+v", sr)
	}

	resp, raw = doJSON(t, "POST", ts.URL+"/v1/indexes/main/batch",
		BatchRequest{Queries: [][]float32{coll.Vec(1), coll.Vec(2), coll.Vec(3)}, K: 4, MaxChunks: 2}, nil)
	if resp.StatusCode != 200 {
		t.Fatalf("batch: %d: %s", resp.StatusCode, raw)
	}
	var br BatchResponse
	if err := json.Unmarshal(raw, &br); err != nil {
		t.Fatal(err)
	}
	if len(br.Results) != 3 {
		t.Fatalf("batch results = %d, want 3", len(br.Results))
	}
	if br.ChunksRead <= 0 {
		t.Fatalf("batch chunks_read = %d, want positive", br.ChunksRead)
	}

	resp, raw = doJSON(t, "POST", ts.URL+"/v1/indexes/main/multi",
		MultiRequest{Descriptors: [][]float32{coll.Vec(40), coll.Vec(41), coll.Vec(42)}}, nil)
	if resp.StatusCode != 200 {
		t.Fatalf("multi: %d: %s", resp.StatusCode, raw)
	}
	var mr MultiResponse
	if err := json.Unmarshal(raw, &mr); err != nil {
		t.Fatal(err)
	}
	if mr.Descriptors != 3 || len(mr.Images) == 0 {
		t.Fatalf("multi: %d descriptors, %d images; want 3 and >0", mr.Descriptors, len(mr.Images))
	}

	// Lifecycle and introspection endpoints.
	resp, _ = doJSON(t, "GET", ts.URL+"/healthz", nil, nil)
	if resp.StatusCode != 200 {
		t.Fatalf("healthz: %d", resp.StatusCode)
	}
	resp, _ = doJSON(t, "GET", ts.URL+"/readyz", nil, nil)
	if resp.StatusCode != 200 {
		t.Fatalf("readyz: %d", resp.StatusCode)
	}
	resp, raw = doJSON(t, "GET", ts.URL+"/v1/indexes", nil, nil)
	if resp.StatusCode != 200 {
		t.Fatalf("indexes: %d", resp.StatusCode)
	}
	var idxs []IndexSnapshot
	if err := json.Unmarshal(raw, &idxs); err != nil {
		t.Fatal(err)
	}
	if len(idxs) != 1 || idxs[0].Name != "main" || idxs[0].Descriptors != ix.Len() {
		t.Fatalf("indexes = %+v, want [main with %d descriptors]", idxs, ix.Len())
	}
	resp, raw = doJSON(t, "GET", ts.URL+"/metrics", nil, nil)
	if resp.StatusCode != 200 {
		t.Fatalf("metrics: %d", resp.StatusCode)
	}
	var snap Snapshot
	if err := json.Unmarshal(raw, &snap); err != nil {
		t.Fatal(err)
	}
	if snap.OK != 3 || snap.Requests != 3 {
		t.Fatalf("metrics after 3 requests: OK=%d Requests=%d, want 3/3", snap.OK, snap.Requests)
	}
	if snap.ChunksCharged <= 0 {
		t.Fatalf("metrics ChunksCharged = %d, want positive", snap.ChunksCharged)
	}
}

func TestServeBatchStream(t *testing.T) {
	ix, coll := buildTestIndex(t, 2000)
	ts, _ := serveTest(t, Config{}, map[string]Backend{"main": ix})

	queries := [][]float32{coll.Vec(5), coll.Vec(6), coll.Vec(7), coll.Vec(8)}
	resp, raw := doJSON(t, "POST", ts.URL+"/v1/indexes/main/batch",
		BatchRequest{Queries: queries, K: 4, MaxChunks: 2, Stream: true}, nil)
	if resp.StatusCode != 200 {
		t.Fatalf("stream batch: %d: %s", resp.StatusCode, raw)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("content-type = %q, want application/x-ndjson", ct)
	}

	dec := json.NewDecoder(bytes.NewReader(raw))
	seen := make(map[int]bool)
	var trailer *BatchStreamItem
	for dec.More() {
		var item BatchStreamItem
		if err := dec.Decode(&item); err != nil {
			t.Fatalf("decoding stream line: %v\n%s", err, raw)
		}
		if item.Done {
			trailer = &item
			if dec.More() {
				t.Fatalf("trailer is not the last line:\n%s", raw)
			}
			break
		}
		if item.Query < 0 || item.Query >= len(queries) || seen[item.Query] {
			t.Fatalf("bad or duplicate stream query %d:\n%s", item.Query, raw)
		}
		seen[item.Query] = true
		if item.Result == nil || len(item.Result.Neighbors) == 0 {
			t.Fatalf("stream item for query %d lacks a result:\n%s", item.Query, raw)
		}
		if item.Result.ChunksRead <= 0 || item.Result.ChunksRead > 2 {
			t.Fatalf("query %d chunks_read = %d, want 1..2", item.Query, item.Result.ChunksRead)
		}
	}
	if len(seen) != len(queries) {
		t.Fatalf("streamed %d results, want %d", len(seen), len(queries))
	}
	if trailer == nil {
		t.Fatalf("no trailer line:\n%s", raw)
	}
	if trailer.Error != "" || trailer.ChunksRead <= 0 {
		t.Fatalf("trailer = %+v, want no error and positive chunks_read", trailer)
	}

	// A failing backend surfaces the error in-band on the trailer: the 200
	// status is already committed when streaming begins.
	boom := &fakeBackend{batchFn: func(queries []repro.Vector, opts repro.BatchOptions, results []repro.Result) error {
		return fmt.Errorf("disk on fire")
	}}
	ts2, _ := serveTest(t, Config{}, map[string]Backend{"flaky": boom})
	resp, raw = doJSON(t, "POST", ts2.URL+"/v1/indexes/flaky/batch",
		BatchRequest{Queries: [][]float32{make([]float32, repro.Dims)}, K: 3, Stream: true}, nil)
	if resp.StatusCode != 200 {
		t.Fatalf("stream batch error case: status %d, want committed 200", resp.StatusCode)
	}
	dec = json.NewDecoder(bytes.NewReader(raw))
	trailer = nil
	for dec.More() {
		var item BatchStreamItem
		if err := dec.Decode(&item); err != nil {
			t.Fatalf("decoding stream line: %v\n%s", err, raw)
		}
		if item.Done {
			trailer = &item
		}
	}
	if trailer == nil || trailer.Error == "" {
		t.Fatalf("failing stream batch: trailer = %+v, want in-band error", trailer)
	}
}

func TestBadRequests(t *testing.T) {
	ix, coll := buildTestIndex(t, 1000)
	ts, _ := serveTest(t, Config{}, map[string]Backend{"main": ix})
	q := coll.Vec(0)

	cases := []struct {
		name    string
		path    string
		body    any
		headers map[string]string
		want    int
	}{
		{"negative k", "/v1/indexes/main/search", SearchRequest{Query: q, K: -1}, nil, 400},
		{"negative max_chunks", "/v1/indexes/main/search", SearchRequest{Query: q, MaxChunks: -2}, nil, 400},
		{"conflicting stop rules", "/v1/indexes/main/search", SearchRequest{Query: q, MaxChunks: 3, MaxTimeUs: 500}, nil, 400},
		{"wrong dims", "/v1/indexes/main/search", SearchRequest{Query: []float32{1, 2, 3}}, nil, 400},
		{"unknown field", "/v1/indexes/main/search", map[string]any{"query": q, "kk": 3}, nil, 400},
		{"not json", "/v1/indexes/main/search", "not an object", nil, 400},
		{"empty batch", "/v1/indexes/main/batch", BatchRequest{}, nil, 400},
		{"batch bad vector", "/v1/indexes/main/batch", BatchRequest{Queries: [][]float32{{1}}}, nil, 400},
		{"empty multi", "/v1/indexes/main/multi", MultiRequest{}, nil, 400},
		{"bad deadline header", "/v1/indexes/main/search", SearchRequest{Query: q},
			map[string]string{HeaderDeadlineMs: "soon"}, 400},
		{"zero deadline header", "/v1/indexes/main/search", SearchRequest{Query: q},
			map[string]string{HeaderDeadlineMs: "0"}, 400},
		{"unknown index", "/v1/indexes/nope/search", SearchRequest{Query: q}, nil, 404},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			resp, raw := doJSON(t, "POST", ts.URL+c.path, c.body, c.headers)
			if resp.StatusCode != c.want {
				t.Fatalf("status = %d, want %d (%s)", resp.StatusCode, c.want, raw)
			}
			var er ErrorResponse
			if err := json.Unmarshal(raw, &er); err != nil || er.Error == "" {
				t.Fatalf("error body %q should be an ErrorResponse with a diagnostic", raw)
			}
		})
	}
}

func TestPanicContainment(t *testing.T) {
	boom := &fakeBackend{searchFn: func(q repro.Vector, opts repro.SearchOptions) (*repro.Result, error) {
		panic("chunk decoder corrupted")
	}}
	ts, s := serveTest(t, Config{}, map[string]Backend{"boom": boom})

	resp, raw := doJSON(t, "POST", ts.URL+"/v1/indexes/boom/search",
		SearchRequest{Query: make([]float32, repro.Dims)}, nil)
	if resp.StatusCode != 500 {
		t.Fatalf("panicking handler: %d (%s), want 500", resp.StatusCode, raw)
	}
	// The server survives: liveness and a second (also panicking) request
	// still get answered instead of tearing the process down.
	resp, _ = doJSON(t, "GET", ts.URL+"/healthz", nil, nil)
	if resp.StatusCode != 200 {
		t.Fatalf("healthz after panic: %d", resp.StatusCode)
	}
	if got := s.Metrics().Snapshot(0, nil).ServerErrors; got != 1 {
		t.Fatalf("ServerErrors = %d, want 1", got)
	}
}

func TestInFlightShedding(t *testing.T) {
	entered := make(chan struct{})
	release := make(chan struct{})
	slow := &fakeBackend{searchFn: func(q repro.Vector, opts repro.SearchOptions) (*repro.Result, error) {
		entered <- struct{}{}
		<-release
		return &repro.Result{ChunksRead: 1}, nil
	}}
	ts, s := serveTest(t, Config{MaxInFlight: 1}, map[string]Backend{"slow": slow})

	body := SearchRequest{Query: make([]float32, repro.Dims)}
	done := make(chan int, 1)
	go func() {
		resp, _ := doJSON(t, "POST", ts.URL+"/v1/indexes/slow/search", body, nil)
		done <- resp.StatusCode
	}()
	<-entered // the slot is now held

	resp, raw := doJSON(t, "POST", ts.URL+"/v1/indexes/slow/search", body, nil)
	if resp.StatusCode != 503 {
		t.Fatalf("second request: %d (%s), want 503 shed", resp.StatusCode, raw)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("shed response must carry Retry-After")
	}
	close(release)
	if got := <-done; got != 200 {
		t.Fatalf("first request: %d, want 200", got)
	}
	snap := s.Metrics().Snapshot(0, nil)
	if snap.ShedInFlight != 1 || snap.OK != 1 {
		t.Fatalf("ShedInFlight=%d OK=%d, want 1/1", snap.ShedInFlight, snap.OK)
	}
}

func TestTenantBucketsShedAndIsolate(t *testing.T) {
	clock := newFakeClock()
	echo := &fakeBackend{searchFn: func(q repro.Vector, opts repro.SearchOptions) (*repro.Result, error) {
		return &repro.Result{ChunksRead: opts.MaxChunks}, nil
	}}
	ts, _ := serveTest(t, Config{TenantRate: 10, TenantBurst: 10, Clock: clock.now},
		map[string]Backend{"main": echo})

	body := SearchRequest{Query: make([]float32, repro.Dims), MaxChunks: 10}
	resp, raw := doJSON(t, "POST", ts.URL+"/v1/indexes/main/search", body,
		map[string]string{HeaderTenant: "alice"})
	if resp.StatusCode != 200 {
		t.Fatalf("first request: %d (%s)", resp.StatusCode, raw)
	}
	resp, _ = doJSON(t, "POST", ts.URL+"/v1/indexes/main/search", body,
		map[string]string{HeaderTenant: "alice"})
	if resp.StatusCode != 429 {
		t.Fatalf("over-budget tenant: %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 must carry Retry-After")
	}
	// Another tenant is unaffected: buckets are per-tenant, not global.
	resp, _ = doJSON(t, "POST", ts.URL+"/v1/indexes/main/search", body,
		map[string]string{HeaderTenant: "bob"})
	if resp.StatusCode != 200 {
		t.Fatalf("other tenant: %d, want 200", resp.StatusCode)
	}
	// Refill readmits.
	clock.advance(time.Second)
	resp, _ = doJSON(t, "POST", ts.URL+"/v1/indexes/main/search", body,
		map[string]string{HeaderTenant: "alice"})
	if resp.StatusCode != 200 {
		t.Fatalf("refilled tenant: %d, want 200", resp.StatusCode)
	}
}

func TestTenantRefundOnEarlyStop(t *testing.T) {
	// The backend reads only 1 of its 2-chunk budget; each request's net
	// cost is 1 chunk. A 6-chunk bucket with a frozen clock then admits
	// 5 such requests — without refunds it would only admit 3.
	cheap := &fakeBackend{searchFn: func(q repro.Vector, opts repro.SearchOptions) (*repro.Result, error) {
		return &repro.Result{ChunksRead: 1}, nil
	}}
	ts, _ := serveTest(t, Config{TenantRate: 0.001, TenantBurst: 6, Clock: newFakeClock().now},
		map[string]Backend{"main": cheap})
	body := SearchRequest{Query: make([]float32, repro.Dims), MaxChunks: 2}
	for i := 0; i < 5; i++ {
		resp, raw := doJSON(t, "POST", ts.URL+"/v1/indexes/main/search", body, nil)
		if resp.StatusCode != 200 {
			t.Fatalf("request %d: %d (%s) — early-stop refunds not happening", i, resp.StatusCode, raw)
		}
	}
	// 1 token left: the bucket is real, not disabled.
	resp, _ := doJSON(t, "POST", ts.URL+"/v1/indexes/main/search", body, nil)
	if resp.StatusCode != 429 {
		t.Fatalf("drained bucket: %d, want 429", resp.StatusCode)
	}
}

func TestBestEffortShrink(t *testing.T) {
	var gotMaxChunks int
	var mu sync.Mutex
	echo := &fakeBackend{searchFn: func(q repro.Vector, opts repro.SearchOptions) (*repro.Result, error) {
		mu.Lock()
		gotMaxChunks = opts.MaxChunks
		mu.Unlock()
		return &repro.Result{ChunksRead: opts.MaxChunks}, nil
	}}
	clock := newFakeClock()
	ts, s := serveTest(t, Config{TenantRate: 10, TenantBurst: 10, BestEffort: true, Clock: clock.now},
		map[string]Backend{"main": echo})

	// Drain the bucket to 4 tokens, then ask for 20: best-effort admits
	// at a 4-chunk budget instead of shedding.
	if ok, _ := s.buckets.Take(DefaultTenant, 6); !ok {
		t.Fatal("priming take failed")
	}
	resp, raw := doJSON(t, "POST", ts.URL+"/v1/indexes/main/search",
		SearchRequest{Query: make([]float32, repro.Dims), MaxChunks: 20}, nil)
	if resp.StatusCode != 200 {
		t.Fatalf("best-effort request: %d (%s), want 200", resp.StatusCode, raw)
	}
	var sr SearchResponse
	if err := json.Unmarshal(raw, &sr); err != nil {
		t.Fatal(err)
	}
	if sr.ChunksGranted != 4 {
		t.Fatalf("chunks_granted = %d, want 4", sr.ChunksGranted)
	}
	mu.Lock()
	got := gotMaxChunks
	mu.Unlock()
	if got != 4 {
		t.Fatalf("backend saw MaxChunks = %d, want the shrunk 4", got)
	}
	if s.Metrics().Snapshot(0, nil).BestEffort != 1 {
		t.Fatal("BestEffort metric not recorded")
	}

	// An empty bucket still sheds even in best-effort mode.
	resp, _ = doJSON(t, "POST", ts.URL+"/v1/indexes/main/search",
		SearchRequest{Query: make([]float32, repro.Dims), MaxChunks: 20}, nil)
	if resp.StatusCode != 429 {
		t.Fatalf("empty-bucket best-effort: %d, want 429", resp.StatusCode)
	}

	// Time-budget requests are never shrunk: they shed.
	clock.advance(time.Hour)
	if ok, _ := s.buckets.Take(DefaultTenant, 8); !ok { // leave 2 tokens
		t.Fatal("priming take failed")
	}
	resp, _ = doJSON(t, "POST", ts.URL+"/v1/indexes/main/search",
		SearchRequest{Query: make([]float32, repro.Dims), MaxTimeUs: 1000}, nil)
	if resp.StatusCode != 429 {
		t.Fatalf("timed request with poor bucket: %d, want 429 (no shrink)", resp.StatusCode)
	}
}

func TestDeadlineMiss(t *testing.T) {
	blocked := &fakeBackend{searchFn: func(q repro.Vector, opts repro.SearchOptions) (*repro.Result, error) {
		<-opts.Ctx.Done()
		return nil, fmt.Errorf("search: canceled after 0 chunks: %w", opts.Ctx.Err())
	}}
	ts, s := serveTest(t, Config{}, map[string]Backend{"main": blocked})

	resp, raw := doJSON(t, "POST", ts.URL+"/v1/indexes/main/search",
		SearchRequest{Query: make([]float32, repro.Dims)},
		map[string]string{HeaderDeadlineMs: "30"})
	if resp.StatusCode != 503 {
		t.Fatalf("expired request: %d (%s), want 503", resp.StatusCode, raw)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("deadline miss must carry Retry-After")
	}
	if got := s.Metrics().Snapshot(0, nil).DeadlineMiss; got != 1 {
		t.Fatalf("DeadlineMiss = %d, want 1", got)
	}
}

func TestDefaultDeadlineBecomesTimeBudget(t *testing.T) {
	var gotMaxTime time.Duration
	var mu sync.Mutex
	echo := &fakeBackend{searchFn: func(q repro.Vector, opts repro.SearchOptions) (*repro.Result, error) {
		mu.Lock()
		gotMaxTime = opts.MaxTime
		mu.Unlock()
		return &repro.Result{ChunksRead: 1}, nil
	}}
	ts, _ := serveTest(t, Config{DefaultDeadline: 5 * time.Second}, map[string]Backend{"main": echo})
	resp, raw := doJSON(t, "POST", ts.URL+"/v1/indexes/main/search",
		SearchRequest{Query: make([]float32, repro.Dims)}, nil)
	if resp.StatusCode != 200 {
		t.Fatalf("request: %d (%s)", resp.StatusCode, raw)
	}
	mu.Lock()
	defer mu.Unlock()
	if gotMaxTime <= 0 || gotMaxTime > 5*time.Second {
		t.Fatalf("MaxTime = %v, want (0, 5s]: the deadline should become the simulated budget", gotMaxTime)
	}
}

func TestDrainingGate(t *testing.T) {
	ix, coll := buildTestIndex(t, 1000)
	reg := NewRegistry()
	if err := reg.Add("main", ix); err != nil {
		t.Fatal(err)
	}
	s := New(reg, Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp, _ := doJSON(t, "GET", ts.URL+"/readyz", nil, nil)
	if resp.StatusCode != 200 {
		t.Fatalf("readyz before drain: %d", resp.StatusCode)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	resp, _ = doJSON(t, "GET", ts.URL+"/readyz", nil, nil)
	if resp.StatusCode != 503 {
		t.Fatalf("readyz while draining: %d, want 503", resp.StatusCode)
	}
	resp, _ = doJSON(t, "POST", ts.URL+"/v1/indexes/main/search",
		SearchRequest{Query: coll.Vec(0)}, nil)
	if resp.StatusCode != 503 {
		t.Fatalf("search while draining: %d, want 503", resp.StatusCode)
	}
	// Liveness stays green during drain: the process is healthy, just
	// not accepting new work.
	resp, _ = doJSON(t, "GET", ts.URL+"/healthz", nil, nil)
	if resp.StatusCode != 200 {
		t.Fatalf("healthz while draining: %d", resp.StatusCode)
	}
}
