package server

import (
	"bytes"
	"encoding/json"
	"testing"

	"repro"
)

// TestMetricsReportCacheCounters pins the optional-interface plumbing: an
// index opened with a decoded-chunk cache surfaces its hit/miss/byte
// counters in /metrics, and a cacheless index omits the cache block
// entirely rather than reporting zeros.
func TestMetricsReportCacheCounters(t *testing.T) {
	coll := repro.GenerateCollection(2000, 42)
	cached, err := repro.Build(coll, repro.BuildConfig{
		Strategy: repro.StrategySRTree, ChunkSize: 250, CacheBytes: 16 << 20,
	})
	if err != nil {
		t.Fatal(err)
	}
	plain, _ := buildTestIndex(t, 2000)
	ts, _ := serveTest(t, Config{}, map[string]Backend{"hot": cached, "cold": plain})

	// Two identical searches per index: the cached one sees misses then
	// hits, the plain one stays cacheless.
	for i := 0; i < 2; i++ {
		for _, name := range []string{"hot", "cold"} {
			resp, raw := doJSON(t, "POST", ts.URL+"/v1/indexes/"+name+"/search",
				SearchRequest{Query: coll.Vec(17), K: 5, MaxChunks: 3}, nil)
			if resp.StatusCode != 200 {
				t.Fatalf("%s search: %d: %s", name, resp.StatusCode, raw)
			}
		}
	}

	resp, raw := doJSON(t, "GET", ts.URL+"/metrics", nil, nil)
	if resp.StatusCode != 200 {
		t.Fatalf("metrics: %d", resp.StatusCode)
	}
	var snap Snapshot
	if err := json.Unmarshal(raw, &snap); err != nil {
		t.Fatal(err)
	}
	byName := map[string]IndexSnapshot{}
	for _, is := range snap.Indexes {
		byName[is.Name] = is
	}
	hot, ok := byName["hot"]
	if !ok || hot.Cache == nil {
		t.Fatalf("cached index missing cache block: %+v", snap.Indexes)
	}
	if hot.Cache.Hits == 0 || hot.Cache.Misses == 0 || hot.Cache.Bytes <= 0 || hot.Cache.MaxBytes != 16<<20 {
		t.Fatalf("cache counters %+v, want hits, misses, bytes, and the configured budget", hot.Cache)
	}
	if cold, ok := byName["cold"]; !ok || cold.Cache != nil {
		t.Fatalf("cacheless index reports a cache block: %+v", cold.Cache)
	}

	// The raw JSON omits the block for the cacheless index.
	if got := bytes.Count(raw, []byte(`"cache":`)); got != 1 {
		t.Fatalf("%d cache blocks in metrics JSON, want exactly 1: %s", got, raw)
	}
}
