package server

import (
	"testing"
	"time"

	"repro"
)

// loadBackend is a fakeBackend with the sharded health and serving-load
// surfaces, for exercising the metrics plumbing of ShardLoads.
type loadBackend struct {
	fakeBackend
	loads []repro.ShardLoad
}

func (b *loadBackend) Shards() int            { return len(b.loads) }
func (b *loadBackend) ShardDown(s int) bool   { return false }
func (b *loadBackend) ShardsDown() int        { return 0 }
func (b *loadBackend) MarkShardDown(s int)    {}
func (b *loadBackend) MarkShardUp(s int)      {}
func (b *loadBackend) ProbeShard(s int) error { return nil }

func (b *loadBackend) ShardLoads() []repro.ShardLoad { return b.loads }

// TestSnapshotReportsShardLoads pins the serving-load surface: a backend
// implementing LoadReporter gets its per-shard read counts and billed
// microseconds copied into the metrics snapshot's shard states, and a
// plain backend leaves them zero.
func TestSnapshotReportsShardLoads(t *testing.T) {
	b := &loadBackend{loads: []repro.ShardLoad{
		{Reads: 11, Billed: 1500 * time.Microsecond},
		{Reads: 7, Billed: 250 * time.Microsecond},
		{Reads: 0, Billed: 0},
	}}
	reg := NewRegistry()
	if err := reg.Add("main", b); err != nil {
		t.Fatal(err)
	}
	m := NewMetrics()
	snap := m.Snapshot(0, reg)
	if len(snap.Indexes) != 1 || len(snap.Indexes[0].Shards) != 3 {
		t.Fatalf("snapshot shape: %+v", snap.Indexes)
	}
	for s, want := range b.loads {
		got := snap.Indexes[0].Shards[s]
		if got.Reads != want.Reads || got.BilledUs != want.Billed.Microseconds() {
			t.Fatalf("shard %d: (reads %d, billed %dus) != want (%d, %dus)",
				s, got.Reads, got.BilledUs, want.Reads, want.Billed.Microseconds())
		}
	}

	// A backend without the surface stays zero — no phantom loads.
	plain := []ShardState{{Shard: 0}, {Shard: 1}}
	fillShardLoads(plain, &fakeBackend{})
	for _, st := range plain {
		if st.Reads != 0 || st.BilledUs != 0 {
			t.Fatalf("plain backend reported loads: %+v", st)
		}
	}

	// A short shard slice (racing topology change) must not panic; the
	// reporter's extra entries are dropped.
	short := []ShardState{{Shard: 0}}
	fillShardLoads(short, b)
	if short[0].Reads != 11 {
		t.Fatalf("short fill: %+v", short[0])
	}
}
