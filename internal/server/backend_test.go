package server

import (
	"os"
	"strconv"
	"testing"

	"repro"
	"repro/internal/chunkfile"
	"repro/internal/faultstore"
	"repro/internal/imagegen"
	"repro/internal/multiquery"
	"repro/internal/search"
	"repro/internal/search/batchexec"
	"repro/internal/shard"
	"repro/internal/srtree"
)

// faultSeed returns the deterministic fault seed for this run: the
// REPRO_FAULT_SEED environment variable when set (CI pins it), a fixed
// default otherwise.
func faultSeed(t testing.TB) int64 {
	t.Helper()
	if v := os.Getenv("REPRO_FAULT_SEED"); v != "" {
		seed, err := strconv.ParseInt(v, 10, 64)
		if err != nil {
			t.Fatalf("REPRO_FAULT_SEED=%q: %v", v, err)
		}
		return seed
	}
	return 2005
}

// routerBackend adapts a shard.Router to the server's Backend and
// ShardHealth interfaces. The public ShardedIndex facade cannot inject
// fault wrappers around its stores, so the acceptance tests build the
// router directly over faultstore-wrapped stores and serve it through
// this adapter — the same search semantics, with Kill/Revive handles.
type routerBackend struct {
	r *shard.Router
}

var (
	_ Backend     = (*routerBackend)(nil)
	_ ShardHealth = (*routerBackend)(nil)
)

func stopOf(opts repro.SearchOptions) search.StopRule {
	if opts.MaxChunks > 0 {
		return search.ChunkBudget(opts.MaxChunks)
	}
	if opts.MaxTime > 0 {
		return search.TimeBudget(opts.MaxTime)
	}
	return search.ToCompletion{}
}

func (b *routerBackend) Search(q repro.Vector, opts repro.SearchOptions) (*repro.Result, error) {
	sopts := search.Options{K: opts.K, Stop: stopOf(opts), Overlap: opts.Overlap, Ctx: opts.Ctx}
	var sr shard.Result
	var err error
	if opts.GlobalBudget {
		err = b.r.SearchGlobalInto(q, sopts, &sr)
	} else {
		err = b.r.SearchInto(q, sopts, &sr)
	}
	if err != nil {
		return nil, err
	}
	return &repro.Result{
		Neighbors:     sr.Neighbors,
		ChunksRead:    sr.ChunksRead,
		Simulated:     sr.Elapsed,
		Wall:          sr.Wall,
		Exact:         sr.Exact,
		Degraded:      sr.Degraded,
		ChunksSkipped: sr.ChunksSkipped,
		ShardsDown:    sr.ShardsDown,
	}, nil
}

func (b *routerBackend) SearchBatchInto(queries []repro.Vector, opts repro.BatchOptions, results []repro.Result) error {
	srs := make([]search.Result, len(queries))
	err := b.r.RunBatch(queries, batchexec.Options{
		K:           opts.K,
		Stop:        stopOf(opts.SearchOptions),
		Overlap:     opts.Overlap,
		Parallelism: opts.Parallelism,
		Ctx:         opts.Ctx,
	}, srs)
	if err != nil {
		return err
	}
	down := b.r.DownShards()
	for i := range srs {
		results[i] = repro.Result{
			Neighbors:     srs[i].Neighbors,
			ChunksRead:    srs[i].ChunksRead,
			Simulated:     srs[i].Elapsed,
			Wall:          srs[i].Wall,
			Exact:         srs[i].Exact,
			Degraded:      srs[i].Degraded,
			ChunksSkipped: srs[i].ChunksSkipped,
			ShardsDown:    down,
		}
	}
	return nil
}

func (b *routerBackend) SearchBatchStream(queries []repro.Vector, opts repro.BatchOptions, results []repro.Result, done func(query int)) error {
	srs := make([]search.Result, len(queries))
	down := b.r.DownShards()
	return b.r.RunBatchStream(queries, batchexec.Options{
		K:           opts.K,
		Stop:        stopOf(opts.SearchOptions),
		Overlap:     opts.Overlap,
		Parallelism: opts.Parallelism,
		Ctx:         opts.Ctx,
	}, srs, func(qi int) {
		results[qi] = repro.Result{
			Neighbors:     srs[qi].Neighbors,
			ChunksRead:    srs[qi].ChunksRead,
			Simulated:     srs[qi].Elapsed,
			Wall:          srs[qi].Wall,
			Exact:         srs[qi].Exact,
			Degraded:      srs[qi].Degraded,
			ChunksSkipped: srs[qi].ChunksSkipped,
			ShardsDown:    down,
		}
		if done != nil {
			done(qi)
		}
	})
}

func (b *routerBackend) MultiSearch(descriptors []repro.Vector, opts repro.MultiSearchOptions) (*repro.MultiResult, error) {
	maxChunks := opts.MaxChunks
	if maxChunks <= 0 {
		maxChunks = 3
	}
	mq := b.r.MultiQuery
	if opts.GlobalBudget {
		mq = b.r.MultiQueryGlobal
	}
	return mq(descriptors, multiquery.Options{
		K:            opts.K,
		Stop:         search.ChunkBudget(maxChunks),
		RankWeighted: opts.RankWeighted,
		Overlap:      opts.Overlap,
		Ctx:          opts.Ctx,
	})
}

func (b *routerBackend) Chunks() int            { return b.r.Chunks() }
func (b *routerBackend) Len() int               { return b.r.Descriptors() }
func (b *routerBackend) Close() error           { return b.r.Close() }
func (b *routerBackend) Shards() int            { return b.r.Shards() }
func (b *routerBackend) ShardDown(s int) bool   { return b.r.ShardDown(s) }
func (b *routerBackend) ShardsDown() int        { return b.r.DownShards() }
func (b *routerBackend) MarkShardDown(s int)    { b.r.MarkShardDown(s) }
func (b *routerBackend) MarkShardUp(s int)      { b.r.MarkShardUp(s) }
func (b *routerBackend) ProbeShard(s int) error { return b.r.ProbeShard(s) }

// faultedRouter builds a replicated router over faultstore-wrapped
// in-memory shard stores: the serving stack the acceptance tests point
// the HTTP layer at. Returns the adapter, the per-shard fault handles,
// and the source collection for queries.
func faultedRouter(t testing.TB, n int, seed int64, shards, replication int, cfg faultstore.Config) (*routerBackend, []*faultstore.Store, *repro.Collection) {
	t.Helper()
	const chunkSize, pageSize = 130, 4096
	ds := imagegen.MustGenerate(imagegen.DefaultConfig(n, seed))
	coll := ds.Collection
	tree, err := srtree.Build(coll, nil, chunkSize, 16)
	if err != nil {
		t.Fatal(err)
	}
	clusters := tree.Chunks()
	p, err := shard.PartitionReplicated(clusters, shards, replication, coll.Dims(), pageSize, nil)
	if err != nil {
		t.Fatal(err)
	}
	stores := make([]chunkfile.Store, shards)
	faults := make([]*faultstore.Store, shards)
	for s := 0; s < shards; s++ {
		physical := append(append([]int(nil), p.Primary[s]...), p.Extra[s]...)
		faults[s] = faultstore.Wrap(chunkfile.NewMemStore(coll, shard.Select(clusters, physical), pageSize), cfg)
		stores[s] = faults[s]
	}
	r, err := shard.NewReplicatedRouter(stores, p, nil)
	if err != nil {
		t.Fatal(err)
	}
	return &routerBackend{r: r}, faults, coll
}
