package server

import (
	"testing"
	"time"

	"repro"
	"repro/internal/faultstore"
)

func TestProberMarksDeadShardDownAndRecovers(t *testing.T) {
	b, faults, coll := faultedRouter(t, 3000, 11, 3, 1, faultstore.Config{})
	reg := NewRegistry()
	if err := reg.Add("sharded", b); err != nil {
		t.Fatal(err)
	}
	defer reg.CloseAll()
	p := NewProber(reg, time.Hour) // driven by explicit sweeps

	p.Sweep()
	if got := b.ShardsDown(); got != 0 {
		t.Fatalf("healthy sweep marked %d shards down", got)
	}

	// The shard dies. A sweep notices before any paying query does.
	faults[0].Kill()
	p.Sweep()
	if !b.ShardDown(0) {
		t.Fatal("sweep did not mark the dead shard down")
	}

	// Queries keep serving, honestly degraded (R=1: no replica covers
	// the dead shard's chunks).
	res, err := b.Search(coll.Vec(42), repro.SearchOptions{K: 10, MaxChunks: 3})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Degraded || res.ChunksSkipped == 0 || res.ShardsDown != 1 {
		t.Fatalf("dead-shard result not honestly degraded: %+v", res)
	}

	// While the shard stays dead, repeated sweeps keep it down — no
	// flapping, and still serving degraded.
	p.Sweep()
	if !b.ShardDown(0) {
		t.Fatal("sweep recovered a still-dead shard")
	}

	// The replica comes back: the next sweep recovers the shard and
	// results go back to full coverage.
	faults[0].Revive()
	p.Sweep()
	if b.ShardDown(0) {
		t.Fatal("sweep did not recover the revived shard")
	}
	res, err = b.Search(coll.Vec(42), repro.SearchOptions{K: 10, MaxChunks: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.Degraded || res.ChunksSkipped != 0 || res.ShardsDown != 0 {
		t.Fatalf("post-recovery result still degraded: %+v", res)
	}
}

func TestProberIgnoresTransientFailures(t *testing.T) {
	// Every read fails transiently: probes see Temporary() errors, which
	// are evidence of neither death nor recovery.
	b, _, _ := faultedRouter(t, 2000, 7, 2, 1, faultstore.Config{Seed: faultSeed(t), TransientProb: 1})
	reg := NewRegistry()
	if err := reg.Add("flaky", b); err != nil {
		t.Fatal(err)
	}
	defer reg.CloseAll()
	p := NewProber(reg, time.Hour)

	p.Sweep()
	if got := b.ShardsDown(); got != 0 {
		t.Fatalf("transient probe failures marked %d shards down", got)
	}
	// A down shard with transient probe failures stays down: recovery
	// needs a clean probe, not a flaky one.
	b.MarkShardDown(1)
	p.Sweep()
	if !b.ShardDown(1) {
		t.Fatal("transient probe failure recovered a down shard")
	}
}

func TestProberStartStopLifecycle(t *testing.T) {
	reg := NewRegistry()
	p := NewProber(reg, time.Millisecond)
	p.Start()
	p.Start() // idempotent
	time.Sleep(5 * time.Millisecond)
	p.Stop()
	p.Stop() // idempotent

	// Stop before Start must not block, and pins the prober off.
	p2 := NewProber(reg, time.Millisecond)
	done := make(chan struct{})
	go func() {
		p2.Stop()
		p2.Start() // no-op after Stop
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("Stop before Start deadlocked")
	}
}
