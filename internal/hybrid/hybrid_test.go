package hybrid

import (
	"testing"

	"repro/internal/cluster"
	"repro/internal/imagegen"
	"repro/internal/roundrobin"
)

func TestCapacityRespected(t *testing.T) {
	ds := imagegen.MustGenerate(imagegen.DefaultConfig(4000, 1))
	coll := ds.Collection
	chunks, err := Chunks(coll, nil, Config{ChunkSize: 150, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	stats := cluster.Summarize(chunks)
	if stats.Descriptors != coll.Len() {
		t.Fatalf("chunks cover %d of %d", stats.Descriptors, coll.Len())
	}
	// Capacity is ceil(n/k); allow the +1 rounding slack but nothing more.
	n := coll.Len()
	k := (n + 149) / 150
	capacity := (n + k - 1) / k
	if stats.MaxSize > capacity {
		t.Fatalf("max chunk %d exceeds capacity %d", stats.MaxSize, capacity)
	}
	for _, c := range chunks {
		if err := c.Validate(coll); err != nil {
			t.Fatal(err)
		}
	}
}

// The whole point of the hybrid strategy: uniform sizes like round-robin,
// but much tighter chunks.
func TestTighterThanRoundRobin(t *testing.T) {
	ds := imagegen.MustGenerate(imagegen.DefaultConfig(4000, 2))
	coll := ds.Collection
	hy, err := Chunks(coll, nil, Config{ChunkSize: 150, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	rr, err := roundrobin.Chunks(coll, nil, 150)
	if err != nil {
		t.Fatal(err)
	}
	hs, rs := cluster.Summarize(hy), cluster.Summarize(rr)
	// The bounding radius is a max statistic, so a single far outlier
	// forced into a chunk by the capacity constraint keeps it large;
	// still, hybrid must beat round-robin clearly.
	if hs.MeanRadius > rs.MeanRadius*0.75 {
		t.Fatalf("hybrid mean radius %.1f not well below round-robin %.1f", hs.MeanRadius, rs.MeanRadius)
	}
}

func TestDeterminism(t *testing.T) {
	ds := imagegen.MustGenerate(imagegen.DefaultConfig(1500, 3))
	a, err := Chunks(ds.Collection, nil, Config{ChunkSize: 100, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Chunks(ds.Collection, nil, Config{ChunkSize: 100, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].Count() != b[i].Count() || a[i].Radius != b[i].Radius {
			t.Fatalf("chunk %d differs", i)
		}
	}
}

func TestErrorsAndEdges(t *testing.T) {
	ds := imagegen.MustGenerate(imagegen.DefaultConfig(500, 4))
	if _, err := Chunks(ds.Collection, nil, Config{ChunkSize: 0}); err == nil {
		t.Fatal("chunk size 0 accepted")
	}
	got, err := Chunks(ds.Collection, []int{}, Config{ChunkSize: 10})
	if err != nil || got != nil {
		t.Fatalf("empty indexes: %v %v", got, err)
	}
	// Single chunk case.
	one, err := Chunks(ds.Collection, []int{1, 2, 3}, Config{ChunkSize: 10, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(one) != 1 || one[0].Count() != 3 {
		t.Fatalf("single chunk wrong: %d chunks", len(one))
	}
}
