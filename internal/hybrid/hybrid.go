// Package hybrid implements the chunk-forming strategy the paper's
// conclusion (§7) calls for as future work: "a clustering algorithm which
// keeps uniform chunk size as the first priority, but attempts to achieve
// the smallest possible intra-chunk dissimilarity".
//
// The implementation is a capacity-constrained (balanced) k-means:
// k = ceil(n / chunkSize) centroids are refined by Lloyd iterations in
// which points are assigned greedily — closest pairs first — to their
// nearest centroid that still has capacity. Every chunk therefore holds
// at most chunkSize descriptors (uniform size first), while the k-means
// objective pulls chunk contents together (best-effort density second).
package hybrid

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"repro/internal/cluster"
	"repro/internal/descriptor"
	"repro/internal/vec"
)

// Config controls the balanced k-means.
type Config struct {
	ChunkSize int // capacity per chunk; also determines k
	Iters     int // Lloyd iterations (0 means 5)
	Seed      int64
}

// Chunks clusters the descriptors at the given indexes (nil = whole
// collection) into uniform-capacity chunks.
func Chunks(coll *descriptor.Collection, indexes []int, cfg Config) ([]*cluster.Cluster, error) {
	if cfg.ChunkSize < 1 {
		return nil, fmt.Errorf("hybrid: chunk size %d < 1", cfg.ChunkSize)
	}
	iters := cfg.Iters
	if iters == 0 {
		iters = 5
	}
	if indexes == nil {
		indexes = make([]int, coll.Len())
		for i := range indexes {
			indexes[i] = i
		}
	}
	n := len(indexes)
	if n == 0 {
		return nil, nil
	}
	k := (n + cfg.ChunkSize - 1) / cfg.ChunkSize
	capacity := (n + k - 1) / k

	r := rand.New(rand.NewSource(cfg.Seed))
	dims := coll.Dims()

	// Seed centroids with k distinct sample points.
	centroids := make([]vec.Vector, k)
	perm := r.Perm(n)
	for c := 0; c < k; c++ {
		centroids[c] = coll.Vec(indexes[perm[c]]).Clone()
	}

	assign := make([]int, n)
	for it := 0; it < iters; it++ {
		assignBalanced(coll, indexes, centroids, capacity, assign)
		// Recompute centroids from the assignment.
		acc := make([][]float64, k)
		cnt := make([]int, k)
		for c := range acc {
			acc[c] = make([]float64, dims)
		}
		for pos, idx := range indexes {
			c := assign[pos]
			v := coll.Vec(idx)
			for d, x := range v {
				acc[c][d] += float64(x)
			}
			cnt[c]++
		}
		for c := 0; c < k; c++ {
			if cnt[c] == 0 {
				// Re-seed an empty centroid at a random point.
				centroids[c] = coll.Vec(indexes[r.Intn(n)]).Clone()
				continue
			}
			inv := 1 / float64(cnt[c])
			for d := 0; d < dims; d++ {
				centroids[c][d] = float32(acc[c][d] * inv)
			}
		}
	}
	assignBalanced(coll, indexes, centroids, capacity, assign)

	members := make([][]int, k)
	for pos, idx := range indexes {
		members[assign[pos]] = append(members[assign[pos]], idx)
	}
	out := make([]*cluster.Cluster, 0, k)
	for _, m := range members {
		if len(m) > 0 {
			out = append(out, cluster.NewFromMembers(coll, m))
		}
	}
	return out, nil
}

// assignBalanced assigns each point to the nearest centroid with spare
// capacity, processing points in order of their distance to their overall
// nearest centroid so that the points with the clearest preference claim
// their slot first.
func assignBalanced(coll *descriptor.Collection, indexes []int, centroids []vec.Vector, capacity int, assign []int) {
	n := len(indexes)
	k := len(centroids)
	type pref struct {
		pos  int
		best float64
	}
	prefs := make([]pref, n)
	for pos, idx := range indexes {
		v := coll.Vec(idx)
		best := math.Inf(1)
		for _, c := range centroids {
			if d := vec.PartialSquaredDistance(v, c, best); d < best {
				best = d
			}
		}
		prefs[pos] = pref{pos, best}
	}
	sort.Slice(prefs, func(a, b int) bool { return prefs[a].best < prefs[b].best })

	load := make([]int, k)
	for _, p := range prefs {
		v := coll.Vec(indexes[p.pos])
		bestC, bestD := -1, math.Inf(1)
		for c := range centroids {
			if load[c] >= capacity {
				continue
			}
			if d := vec.PartialSquaredDistance(v, centroids[c], bestD); d < bestD {
				bestC, bestD = c, d
			}
		}
		if bestC < 0 {
			// All centroids full (possible only by rounding); spill into
			// the least-loaded one.
			minLoad := load[0]
			bestC = 0
			for c := 1; c < k; c++ {
				if load[c] < minLoad {
					minLoad, bestC = load[c], c
				}
			}
		}
		assign[p.pos] = bestC
		load[bestC]++
	}
}
