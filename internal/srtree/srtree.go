// Package srtree implements the SR-tree of Katayama & Satoh (SIGMOD 1997),
// the index the paper adapts to form uniformly sized chunks (§2).
//
// Each node stores both a bounding sphere (centered on the centroid of the
// descriptors below it) and a bounding rectangle; the effective region is
// their intersection, which gives tighter nearest-neighbor bounds in high
// dimensions than either alone. Two build paths are provided:
//
//   - Build: the static bulk-load the paper uses ("we used the static
//     build method, as it was much faster and guaranteed uniform leaf
//     size"). It recursively median-splits on the highest-variance
//     dimension, always cutting at a multiple of the leaf capacity, so
//     every leaf except at most one holds exactly LeafCap descriptors.
//   - Insert: the dynamic insertion path (descend to the child with the
//     nearest centroid, split on overflow), provided for completeness and
//     used to cross-check the static build in tests.
//
// Chunks extracts one chunk per leaf and discards the upper levels of the
// tree, exactly the paper's §2 adaptation.
package srtree

import (
	"container/heap"
	"fmt"
	"math"
	"sort"

	"repro/internal/cluster"
	"repro/internal/descriptor"
	"repro/internal/knn"
	"repro/internal/vec"
)

// DefaultFanout is the internal-node fanout used when none is specified.
const DefaultFanout = 16

// Tree is an SR-tree over a descriptor collection. The tree references
// descriptors by index into the collection; the collection must outlive
// the tree and must not be mutated.
type Tree struct {
	coll    *descriptor.Collection
	root    *node
	leafCap int
	fanout  int
	size    int
}

type node struct {
	leaf     bool
	children []*node // internal nodes
	entries  []int   // leaf nodes: descriptor indexes
	centroid vec.Vector
	radius   float64
	rect     vec.Bounds
	count    int
}

// Build bulk-loads an SR-tree over the descriptors at the given indexes
// (nil means the whole collection) with the given leaf capacity.
func Build(coll *descriptor.Collection, indexes []int, leafCap, fanout int) (*Tree, error) {
	if leafCap < 1 {
		return nil, fmt.Errorf("srtree: leaf capacity %d < 1", leafCap)
	}
	if fanout == 0 {
		fanout = DefaultFanout
	}
	if fanout < 2 {
		return nil, fmt.Errorf("srtree: fanout %d < 2", fanout)
	}
	if indexes == nil {
		indexes = make([]int, coll.Len())
		for i := range indexes {
			indexes[i] = i
		}
	} else {
		indexes = append([]int(nil), indexes...)
	}
	t := &Tree{coll: coll, leafCap: leafCap, fanout: fanout, size: len(indexes)}
	if len(indexes) == 0 {
		t.root = t.newLeaf(nil)
		return t, nil
	}
	leaves := t.bulkLeaves(indexes)
	t.root = t.buildUp(leaves)
	return t, nil
}

// bulkLeaves recursively median-splits idx on the highest-variance
// dimension, cutting at multiples of leafCap so leaf sizes stay uniform.
func (t *Tree) bulkLeaves(idx []int) []*node {
	if len(idx) <= t.leafCap {
		return []*node{t.newLeaf(idx)}
	}
	dim := t.spreadDim(idx)
	sort.Slice(idx, func(a, b int) bool {
		return t.coll.Vec(idx[a])[dim] < t.coll.Vec(idx[b])[dim]
	})
	// Cut as close to the middle as possible while keeping the left side a
	// multiple of leafCap, so only the rightmost leaf can be short.
	nLeaves := (len(idx) + t.leafCap - 1) / t.leafCap
	cut := (nLeaves / 2) * t.leafCap
	if cut == 0 {
		cut = t.leafCap
	}
	left := t.bulkLeaves(idx[:cut])
	right := t.bulkLeaves(idx[cut:])
	return append(left, right...)
}

// spreadDim returns the dimension with the largest variance over idx.
func (t *Tree) spreadDim(idx []int) int {
	dims := t.coll.Dims()
	sum := make([]float64, dims)
	sqs := make([]float64, dims)
	for _, i := range idx {
		v := t.coll.Vec(i)
		for d, x := range v {
			fx := float64(x)
			sum[d] += fx
			sqs[d] += fx * fx
		}
	}
	n := float64(len(idx))
	best, bestVar := 0, -1.0
	for d := 0; d < dims; d++ {
		mean := sum[d] / n
		variance := sqs[d]/n - mean*mean
		if variance > bestVar {
			best, bestVar = d, variance
		}
	}
	return best
}

// buildUp assembles internal levels over the leaves, grouping fanout
// children at a time (children are spatially adjacent thanks to the
// recursive split order).
func (t *Tree) buildUp(level []*node) *node {
	for len(level) > 1 {
		next := make([]*node, 0, (len(level)+t.fanout-1)/t.fanout)
		for lo := 0; lo < len(level); lo += t.fanout {
			hi := lo + t.fanout
			if hi > len(level) {
				hi = len(level)
			}
			n := &node{children: append([]*node(nil), level[lo:hi]...)}
			t.refit(n)
			next = append(next, n)
		}
		level = next
	}
	return level[0]
}

func (t *Tree) newLeaf(entries []int) *node {
	n := &node{leaf: true, entries: append([]int(nil), entries...)}
	t.refit(n)
	return n
}

// refit recomputes count, centroid, bounding sphere and rectangle of n
// from its children or entries.
func (t *Tree) refit(n *node) {
	dims := t.coll.Dims()
	n.rect = vec.NewBounds(dims)
	acc := make([]float64, dims)
	n.count = 0
	if n.leaf {
		for _, i := range n.entries {
			v := t.coll.Vec(i)
			n.rect.Absorb(v)
			for d, x := range v {
				acc[d] += float64(x)
			}
		}
		n.count = len(n.entries)
	} else {
		for _, c := range n.children {
			n.rect.AbsorbBounds(c.rect)
			for d := range acc {
				acc[d] += float64(c.centroid[d]) * float64(c.count)
			}
			n.count += c.count
		}
	}
	if n.count == 0 {
		n.centroid = make(vec.Vector, dims)
		n.radius = 0
		return
	}
	n.centroid = make(vec.Vector, dims)
	inv := 1 / float64(n.count)
	for d, s := range acc {
		n.centroid[d] = float32(s * inv)
	}
	if n.leaf {
		var max2 float64
		for _, i := range n.entries {
			if d2 := vec.SquaredDistance(n.centroid, t.coll.Vec(i)); d2 > max2 {
				max2 = d2
			}
		}
		n.radius = math.Sqrt(max2)
	} else {
		// SR-tree parent sphere: bound the child spheres, additionally
		// clipped by the bounding rectangle's farthest corner.
		var max float64
		for _, c := range n.children {
			if d := vec.Distance(n.centroid, c.centroid) + c.radius; d > max {
				max = d
			}
		}
		if rc := t.rectFarthest(n.centroid, n.rect); rc < max {
			max = rc
		}
		n.radius = max
	}
}

// rectFarthest returns the distance from p to the farthest corner of r.
func (t *Tree) rectFarthest(p vec.Vector, r vec.Bounds) float64 {
	var sum float64
	for d, x := range p {
		lo := math.Abs(float64(x) - float64(r.Min[d]))
		hi := math.Abs(float64(r.Max[d]) - float64(x))
		m := math.Max(lo, hi)
		sum += m * m
	}
	return math.Sqrt(sum)
}

// Len returns the number of descriptors indexed.
func (t *Tree) Len() int { return t.size }

// Height returns the number of levels (1 for a lone leaf).
func (t *Tree) Height() int {
	h, n := 1, t.root
	for !n.leaf {
		h++
		n = n.children[0]
	}
	return h
}

// Insert adds descriptor index i dynamically (SR-tree insertion: descend
// toward the child with the nearest centroid, split leaves on overflow).
func (t *Tree) Insert(i int) {
	t.size++
	split := t.insert(t.root, i)
	if split != nil {
		old := t.root
		t.root = &node{children: []*node{old, split}}
		t.refit(t.root)
	}
}

// insert returns a new sibling if the child had to split.
func (t *Tree) insert(n *node, i int) *node {
	if n.leaf {
		n.entries = append(n.entries, i)
		t.refit(n)
		if len(n.entries) > t.leafCap {
			return t.splitLeaf(n)
		}
		return nil
	}
	best, bestD := 0, math.Inf(1)
	for ci, c := range n.children {
		if d := vec.SquaredDistance(c.centroid, t.coll.Vec(i)); d < bestD {
			best, bestD = ci, d
		}
	}
	sibling := t.insert(n.children[best], i)
	if sibling != nil {
		n.children = append(n.children, sibling)
	}
	t.refit(n)
	if len(n.children) > t.fanout {
		return t.splitInternal(n)
	}
	return nil
}

// splitLeaf divides an overflowing leaf along its highest-variance
// dimension at the median, returning the new right sibling.
func (t *Tree) splitLeaf(n *node) *node {
	dim := t.spreadDim(n.entries)
	sort.Slice(n.entries, func(a, b int) bool {
		return t.coll.Vec(n.entries[a])[dim] < t.coll.Vec(n.entries[b])[dim]
	})
	mid := len(n.entries) / 2
	right := t.newLeaf(n.entries[mid:])
	n.entries = n.entries[:mid]
	t.refit(n)
	return right
}

// splitInternal divides an overflowing internal node by child centroid
// along the dimension with the widest centroid spread.
func (t *Tree) splitInternal(n *node) *node {
	dims := t.coll.Dims()
	best, bestSpread := 0, -1.0
	for d := 0; d < dims; d++ {
		lo, hi := math.Inf(1), math.Inf(-1)
		for _, c := range n.children {
			x := float64(c.centroid[d])
			lo = math.Min(lo, x)
			hi = math.Max(hi, x)
		}
		if s := hi - lo; s > bestSpread {
			best, bestSpread = d, s
		}
	}
	sort.Slice(n.children, func(a, b int) bool {
		return n.children[a].centroid[best] < n.children[b].centroid[best]
	})
	mid := len(n.children) / 2
	right := &node{children: append([]*node(nil), n.children[mid:]...)}
	t.refit(right)
	n.children = n.children[:mid]
	t.refit(n)
	return right
}

// lowerBound2 returns the squared SR-tree lower bound on the distance
// from q to any descriptor under n: the larger of the rectangle MINDIST
// and the sphere bound (the region is the intersection of the two).
func (t *Tree) lowerBound2(q vec.Vector, n *node) float64 {
	rb2 := n.rect.SquaredMinDist(q)
	sb := vec.SphereLowerBound(q, n.centroid, n.radius)
	return math.Max(rb2, sb*sb)
}

// Neighbor is one k-NN result.
type Neighbor struct {
	Index int // position in the collection
	ID    descriptor.ID
	Dist  float64
}

// pqItem is a prioritized tree node for best-first search; bound2 is the
// squared lower bound.
type pqItem struct {
	n      *node
	bound2 float64
}

type pq []pqItem

func (p pq) Len() int            { return len(p) }
func (p pq) Less(i, j int) bool  { return p[i].bound2 < p[j].bound2 }
func (p pq) Swap(i, j int)       { p[i], p[j] = p[j], p[i] }
func (p *pq) Push(x interface{}) { *p = append(*p, x.(pqItem)) }
func (p *pq) Pop() interface{} {
	old := *p
	n := len(old)
	it := old[n-1]
	*p = old[:n-1]
	return it
}

// KNN returns the k nearest descriptors to q ordered by (increasing
// distance, ascending id), searched best-first with the SR-tree bounds
// (exact result). Internally everything runs on squared distances from
// the shared vec kernels — leaf scans abandon partial distances against
// the current k-th squared bound — with sqrt applied only when the result
// is assembled.
func (t *Tree) KNN(q vec.Vector, k int) []Neighbor {
	if k <= 0 || t.size == 0 {
		return nil
	}
	var frontier pq
	heap.Push(&frontier, pqItem{t.root, t.lowerBound2(q, t.root)})
	res := newResultSet(k)
	for frontier.Len() > 0 {
		it := heap.Pop(&frontier).(pqItem)
		if it.bound2 > res.worst2() {
			break
		}
		if it.n.leaf {
			for _, i := range it.n.entries {
				d2 := vec.PartialSquaredDistance(q, t.coll.Vec(i), res.worst2())
				res.offer(entry{index: i, id: t.coll.IDAt(i), d2: d2})
			}
			continue
		}
		for _, c := range it.n.children {
			if b2 := t.lowerBound2(q, c); b2 <= res.worst2() {
				heap.Push(&frontier, pqItem{c, b2})
			}
		}
	}
	return res.sorted()
}

// entry is one candidate in squared-distance form.
type entry struct {
	index int
	id    descriptor.ID
	d2    float64
}

// entryBeats orders entries by the canonical composite order shared with
// every other backend (knn.Less), carrying the extra Index payload the
// shared heap does not store.
func entryBeats(a, b entry) bool {
	return knn.Less(a.d2, a.id, b.d2, b.id)
}

// resultSet is a bounded max-heap of the k best candidates so far under
// the composite order.
type resultSet struct {
	k     int
	items []entry
}

func newResultSet(k int) *resultSet { return &resultSet{k: k} }

func (r *resultSet) worst2() float64 {
	if len(r.items) < r.k {
		return math.Inf(1)
	}
	return r.items[0].d2
}

func (r *resultSet) offer(n entry) {
	if len(r.items) < r.k {
		r.items = append(r.items, n)
		r.up(len(r.items) - 1)
		return
	}
	if !entryBeats(n, r.items[0]) {
		return
	}
	r.items[0] = n
	r.down(0)
}

func (r *resultSet) up(i int) {
	for i > 0 {
		p := (i - 1) / 2
		if !entryBeats(r.items[p], r.items[i]) {
			break
		}
		r.items[p], r.items[i] = r.items[i], r.items[p]
		i = p
	}
}

func (r *resultSet) down(i int) {
	for {
		l, rr := 2*i+1, 2*i+2
		big := i
		if l < len(r.items) && entryBeats(r.items[big], r.items[l]) {
			big = l
		}
		if rr < len(r.items) && entryBeats(r.items[big], r.items[rr]) {
			big = rr
		}
		if big == i {
			return
		}
		r.items[i], r.items[big] = r.items[big], r.items[i]
		i = big
	}
}

func (r *resultSet) sorted() []Neighbor {
	items := append([]entry(nil), r.items...)
	sort.Slice(items, func(a, b int) bool { return entryBeats(items[a], items[b]) })
	out := make([]Neighbor, len(items))
	for i, e := range items {
		out[i] = Neighbor{Index: e.index, ID: e.id, Dist: math.Sqrt(e.d2)}
	}
	return out
}

// Chunks extracts one cluster per leaf — the paper's adaptation that
// "generates chunks from the leaves, thus throwing away the upper levels
// of the tree" (§2). Centroid and minimum bounding radius are computed
// exactly per chunk.
func (t *Tree) Chunks() []*cluster.Cluster {
	var out []*cluster.Cluster
	var walk func(n *node)
	walk = func(n *node) {
		if n.leaf {
			if len(n.entries) > 0 {
				out = append(out, cluster.NewFromMembers(t.coll, n.entries))
			}
			return
		}
		for _, c := range n.children {
			walk(c)
		}
	}
	walk(t.root)
	return out
}

// Validate checks the structural invariants of the whole tree: counts add
// up, every descriptor sits inside its ancestors' sphere and rectangle,
// and leaf sizes respect the capacity. Used by tests.
func (t *Tree) Validate() error {
	total := 0
	var walk func(n *node) error
	walk = func(n *node) error {
		if n.leaf {
			if len(n.entries) > t.leafCap {
				return fmt.Errorf("srtree: leaf holds %d > cap %d", len(n.entries), t.leafCap)
			}
			if n.count != len(n.entries) {
				return fmt.Errorf("srtree: leaf count %d != entries %d", n.count, len(n.entries))
			}
			total += len(n.entries)
			for _, i := range n.entries {
				v := t.coll.Vec(i)
				if !n.rect.Contains(v) {
					return fmt.Errorf("srtree: entry %d outside leaf rect", i)
				}
				if vec.Distance(n.centroid, v) > n.radius+1e-6 {
					return fmt.Errorf("srtree: entry %d outside leaf sphere", i)
				}
			}
			return nil
		}
		sum := 0
		for _, c := range n.children {
			sum += c.count
			// Child region must be inside the parent rectangle; the parent
			// sphere must cover each child sphere (up to the rect clip).
			for d := range c.rect.Min {
				if c.rect.Min[d] < n.rect.Min[d]-1e-6 || c.rect.Max[d] > n.rect.Max[d]+1e-6 {
					return fmt.Errorf("srtree: child rect escapes parent in dim %d", d)
				}
			}
			if err := walk(c); err != nil {
				return err
			}
		}
		if sum != n.count {
			return fmt.Errorf("srtree: internal count %d != children sum %d", n.count, sum)
		}
		return nil
	}
	if err := walk(t.root); err != nil {
		return err
	}
	if total != t.size {
		return fmt.Errorf("srtree: %d descriptors reachable, want %d", total, t.size)
	}
	return nil
}
