package srtree

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/descriptor"
	"repro/internal/imagegen"
	"repro/internal/vec"
)

func randColl(r *rand.Rand, n, dims int) *descriptor.Collection {
	c := descriptor.NewCollection(dims, n)
	v := make(vec.Vector, dims)
	for i := 0; i < n; i++ {
		for d := range v {
			v[d] = float32(r.NormFloat64() * 20)
		}
		c.Append(descriptor.ID(i), v)
	}
	return c
}

func bruteKNN(coll *descriptor.Collection, q vec.Vector, k int) []Neighbor {
	out := make([]Neighbor, 0, coll.Len())
	for i := 0; i < coll.Len(); i++ {
		out = append(out, Neighbor{Index: i, ID: coll.IDAt(i), Dist: vec.Distance(q, coll.Vec(i))})
	}
	sort.Slice(out, func(a, b int) bool { return out[a].Dist < out[b].Dist })
	if len(out) > k {
		out = out[:k]
	}
	return out
}

func TestBuildValidate(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	coll := randColl(r, 1000, 8)
	tr, err := Build(coll, nil, 50, 8)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Len() != 1000 {
		t.Fatalf("Len = %d", tr.Len())
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	if tr.Height() < 2 {
		t.Fatalf("Height = %d, want >= 2 for 1000/50", tr.Height())
	}
}

func TestBuildErrors(t *testing.T) {
	coll := randColl(rand.New(rand.NewSource(1)), 10, 4)
	if _, err := Build(coll, nil, 0, 8); err == nil {
		t.Error("leafCap 0 accepted")
	}
	if _, err := Build(coll, nil, 10, 1); err == nil {
		t.Error("fanout 1 accepted")
	}
}

func TestBuildEmpty(t *testing.T) {
	coll := descriptor.NewCollection(4, 0)
	tr, err := Build(coll, nil, 10, 4)
	if err != nil {
		t.Fatal(err)
	}
	if got := tr.KNN(vec.Vector{0, 0, 0, 0}, 5); got != nil {
		t.Fatalf("KNN on empty = %v", got)
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
}

// The paper's static build "guaranteed uniform leaf size": every leaf must
// hold exactly leafCap descriptors except at most one remainder leaf.
func TestUniformLeafSizes(t *testing.T) {
	for _, n := range []int{1000, 1003, 999, 64} {
		r := rand.New(rand.NewSource(int64(n)))
		coll := randColl(r, n, 6)
		leafCap := 64
		tr, err := Build(coll, nil, leafCap, 8)
		if err != nil {
			t.Fatal(err)
		}
		chunks := tr.Chunks()
		short := 0
		totalMembers := 0
		for _, c := range chunks {
			totalMembers += c.Count()
			if c.Count() > leafCap {
				t.Fatalf("n=%d: chunk of %d > cap %d", n, c.Count(), leafCap)
			}
			if c.Count() < leafCap {
				short++
			}
		}
		if short > 1 {
			t.Fatalf("n=%d: %d short leaves, want <= 1", n, short)
		}
		if totalMembers != n {
			t.Fatalf("n=%d: chunks cover %d descriptors", n, totalMembers)
		}
	}
}

func TestKNNMatchesBruteForce(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		coll := randColl(r, 500, 8)
		tr, err := Build(coll, nil, 25, 6)
		if err != nil {
			return false
		}
		q := make(vec.Vector, 8)
		for d := range q {
			q[d] = float32(r.NormFloat64() * 20)
		}
		for _, k := range []int{1, 10, 30} {
			got := tr.KNN(q, k)
			want := bruteKNN(coll, q, k)
			if len(got) != len(want) {
				return false
			}
			for i := range got {
				if math.Abs(got[i].Dist-want[i].Dist) > 1e-9 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

func TestKNNSubsetIndexes(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	coll := randColl(r, 300, 6)
	idx := make([]int, 0, 150)
	for i := 0; i < 300; i += 2 {
		idx = append(idx, i)
	}
	tr, err := Build(coll, idx, 20, 6)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Len() != 150 {
		t.Fatalf("Len = %d", tr.Len())
	}
	got := tr.KNN(coll.Vec(0), 5)
	for _, nb := range got {
		if nb.Index%2 != 0 {
			t.Fatalf("result %d not in subset", nb.Index)
		}
	}
}

func TestDynamicInsert(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	coll := randColl(r, 400, 6)
	tr, err := Build(coll, []int{}, 20, 6)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 400; i++ {
		tr.Insert(i)
	}
	if tr.Len() != 400 {
		t.Fatalf("Len = %d", tr.Len())
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	q := coll.Vec(123)
	got := tr.KNN(q, 10)
	want := bruteKNN(coll, q, 10)
	for i := range got {
		if math.Abs(got[i].Dist-want[i].Dist) > 1e-9 {
			t.Fatalf("dynamic KNN diverges at %d: %v vs %v", i, got[i].Dist, want[i].Dist)
		}
	}
}

func TestChunksAreValidClusters(t *testing.T) {
	ds := imagegen.MustGenerate(imagegen.DefaultConfig(5000, 21))
	coll := ds.Collection
	tr, err := Build(coll, nil, 100, 16)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range tr.Chunks() {
		if err := c.Validate(coll); err != nil {
			t.Fatal(err)
		}
	}
}

// SR-tree chunks tend to overlap; BAG-style quality is not expected. But
// they must still be "roundish": radius comparable to the leaf spread, not
// the whole space.
func TestChunksLocalized(t *testing.T) {
	ds := imagegen.MustGenerate(imagegen.DefaultConfig(8000, 22))
	coll := ds.Collection
	tr, err := Build(coll, nil, 200, 16)
	if err != nil {
		t.Fatal(err)
	}
	chunks := tr.Chunks()
	b := coll.Bounds()
	diag := vec.Distance(b.Min, b.Max)
	over := 0
	for _, c := range chunks {
		if c.Radius > diag/2 {
			over++
		}
	}
	if over > len(chunks)/2 {
		t.Fatalf("%d/%d chunks span more than half the space diagonal", over, len(chunks))
	}
}

func TestHeightGrowsWithSize(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	coll := randColl(r, 2000, 4)
	small, _ := Build(coll, nil, 10, 4)
	big, _ := Build(coll, nil, 500, 4)
	if small.Height() <= big.Height() {
		t.Fatalf("height small-leaf %d <= big-leaf %d", small.Height(), big.Height())
	}
}

func BenchmarkBuild50k(b *testing.B) {
	ds := imagegen.MustGenerate(imagegen.DefaultConfig(50000, 1))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Build(ds.Collection, nil, 1000, 16); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkKNN50k(b *testing.B) {
	ds := imagegen.MustGenerate(imagegen.DefaultConfig(50000, 1))
	tr, err := Build(ds.Collection, nil, 1000, 16)
	if err != nil {
		b.Fatal(err)
	}
	q := ds.Collection.Vec(37)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.KNN(q, 30)
	}
}
