package shard

import (
	"os"
	"path/filepath"
	"reflect"
	"strconv"
	"testing"
	"time"

	"repro/internal/chunkfile"
	"repro/internal/cluster"
	"repro/internal/descriptor"
	"repro/internal/faultstore"
	"repro/internal/imagegen"
	"repro/internal/scan"
	"repro/internal/search"
	"repro/internal/search/batchexec"
	"repro/internal/vec"
)

// faultSeed returns the deterministic fault seed for this run: the
// REPRO_FAULT_SEED environment variable when set (CI pins it), a fixed
// default otherwise.
func faultSeed(t testing.TB) int64 {
	t.Helper()
	if v := os.Getenv("REPRO_FAULT_SEED"); v != "" {
		seed, err := strconv.ParseInt(v, 10, 64)
		if err != nil {
			t.Fatalf("REPRO_FAULT_SEED=%q: %v", v, err)
		}
		return seed
	}
	return 2005
}

// replicatedRouterOver builds a replicated router whose per-shard
// physical stores are wrapped in fault injectors, returning the router,
// the injectors (for Kill), and the placement.
func replicatedRouterOver(t testing.TB, ds *imagegen.Dataset, clusters []*cluster.Cluster, shards, replication, pageSize int, cfg faultstore.Config) (*Router, []*faultstore.Store, *Placement) {
	t.Helper()
	coll := ds.Collection
	p, err := PartitionReplicated(clusters, shards, replication, coll.Dims(), pageSize, nil)
	if err != nil {
		t.Fatal(err)
	}
	stores := make([]chunkfile.Store, shards)
	faults := make([]*faultstore.Store, shards)
	for s := 0; s < shards; s++ {
		physical := append(append([]int(nil), p.Primary[s]...), p.Extra[s]...)
		faults[s] = faultstore.Wrap(chunkfile.NewMemStore(coll, Select(clusters, physical), pageSize), cfg)
		stores[s] = faults[s]
	}
	r, err := NewReplicatedRouter(stores, p, nil)
	if err != nil {
		t.Fatal(err)
	}
	return r, faults, p
}

// sameAnswer asserts two results agree on IDs, distances, exactness and
// chunks read (simulated time is deliberately NOT compared: failure
// handling is allowed to cost time, never answers).
func sameAnswer(t *testing.T, label string, got, want *Result) {
	t.Helper()
	if got.Exact != want.Exact || got.ChunksRead != want.ChunksRead {
		t.Fatalf("%s: (exact %v, chunks %d) != healthy (exact %v, chunks %d)",
			label, got.Exact, got.ChunksRead, want.Exact, want.ChunksRead)
	}
	if len(got.Neighbors) != len(want.Neighbors) {
		t.Fatalf("%s: %d neighbors != healthy %d", label, len(got.Neighbors), len(want.Neighbors))
	}
	for i := range want.Neighbors {
		if got.Neighbors[i] != want.Neighbors[i] {
			t.Fatalf("%s rank %d: %+v != healthy %+v", label, i, got.Neighbors[i], want.Neighbors[i])
		}
	}
}

// TestReplicatedKillAnyShardMatchesHealthy pins the tentpole guarantee:
// with R=2, killing any single shard changes nothing about the answers —
// IDs, distances, exactness and chunks read are identical to the healthy
// run, Degraded stays false — on the per-shard path, the global-budget
// path, and the batch path.
func TestReplicatedKillAnyShardMatchesHealthy(t *testing.T) {
	ds, clusters := fixture(t, 4000, 17, 130)
	coll := ds.Collection
	const shards, pageSize, k = 4, 4096, 20

	healthy, _, _ := replicatedRouterOver(t, ds, clusters, shards, 2, pageSize, faultstore.Config{})
	queryIdx := []int{3, 555, 1234, 3999}
	rules := []search.StopRule{nil, search.ChunkBudget(6)}

	type baseline struct {
		perShard []Result
		global   []Result
	}
	base := make([]baseline, len(rules))
	for ri, stop := range rules {
		base[ri].perShard = make([]Result, len(queryIdx))
		base[ri].global = make([]Result, len(queryIdx))
		for qi, pos := range queryIdx {
			opts := search.Options{K: k, Stop: stop}
			if err := healthy.SearchInto(coll.Vec(pos), opts, &base[ri].perShard[qi]); err != nil {
				t.Fatal(err)
			}
			if err := healthy.SearchGlobalInto(coll.Vec(pos), opts, &base[ri].global[qi]); err != nil {
				t.Fatal(err)
			}
		}
	}

	queries := make([]vec.Vector, len(queryIdx))
	for qi, pos := range queryIdx {
		queries[qi] = coll.Vec(pos)
	}
	healthyBatch := make([]search.Result, len(queries))
	if err := healthy.RunBatch(queries, batchexec.Options{K: k}, healthyBatch); err != nil {
		t.Fatal(err)
	}

	for kill := 0; kill < shards; kill++ {
		r, faults, _ := replicatedRouterOver(t, ds, clusters, shards, 2, pageSize, faultstore.Config{})
		faults[kill].Kill()
		var res Result
		for ri, stop := range rules {
			for qi, pos := range queryIdx {
				opts := search.Options{K: k, Stop: stop}
				if err := r.SearchInto(coll.Vec(pos), opts, &res); err != nil {
					t.Fatal(err)
				}
				if res.Degraded || res.ChunksSkipped != 0 {
					t.Fatalf("kill %d q%d: R=2 degraded (skipped %d) despite live replicas", kill, pos, res.ChunksSkipped)
				}
				sameAnswer(t, "kill "+strconv.Itoa(kill)+" per-shard", &res, &base[ri].perShard[qi])

				if err := r.SearchGlobalInto(coll.Vec(pos), opts, &res); err != nil {
					t.Fatal(err)
				}
				if res.Degraded || res.ChunksSkipped != 0 {
					t.Fatalf("kill %d q%d global: R=2 degraded despite live replicas", kill, pos)
				}
				sameAnswer(t, "kill "+strconv.Itoa(kill)+" global", &res, &base[ri].global[qi])
			}
		}
		if r.DownShards() != 1 || !r.ShardDown(kill) {
			t.Fatalf("kill %d: DownShards %d, ShardDown %v", kill, r.DownShards(), r.ShardDown(kill))
		}

		gotBatch := make([]search.Result, len(queries))
		if err := r.RunBatch(queries, batchexec.Options{K: k}, gotBatch); err != nil {
			t.Fatal(err)
		}
		for qi := range gotBatch {
			got, want := &gotBatch[qi], &healthyBatch[qi]
			if got.Degraded || got.Exact != want.Exact || got.ChunksRead != want.ChunksRead {
				t.Fatalf("kill %d batch q%d: (degraded %v, exact %v, chunks %d) != healthy (exact %v, chunks %d)",
					kill, qi, got.Degraded, got.Exact, got.ChunksRead, want.Exact, want.ChunksRead)
			}
			for i := range want.Neighbors {
				if got.Neighbors[i] != want.Neighbors[i] {
					t.Fatalf("kill %d batch q%d rank %d: %+v != %+v", kill, qi, i, got.Neighbors[i], want.Neighbors[i])
				}
			}
		}
	}
}

// TestUnreplicatedKillDegradesToSurvivors pins the degraded contract:
// with R=1, killing shard k makes completion searches return exactly the
// scan oracle over the surviving shards' descriptors, flagged Degraded
// with ChunksSkipped equal to the dead shard's chunk count and Exact
// forced off.
func TestUnreplicatedKillDegradesToSurvivors(t *testing.T) {
	ds, clusters := fixture(t, 4000, 29, 130)
	coll := ds.Collection
	const shards, pageSize, k = 3, 4096, 20

	for kill := 0; kill < shards; kill++ {
		r, faults, p := replicatedRouterOver(t, ds, clusters, shards, 1, pageSize, faultstore.Config{})
		faults[kill].Kill()

		// The oracle: brute-force k-NN over the descriptors of every
		// cluster primaried on a surviving shard.
		survivors := descriptor.NewCollection(coll.Dims(), 0)
		for s := 0; s < shards; s++ {
			if s == kill {
				continue
			}
			for _, ci := range p.Primary[s] {
				for _, pos := range clusters[ci].Members {
					survivors.Append(coll.IDAt(pos), coll.Vec(pos))
				}
			}
		}

		var res Result
		for _, pos := range []int{7, 901, 2500, 3998} {
			q := coll.Vec(pos)
			if err := r.SearchInto(q, search.Options{K: k}, &res); err != nil {
				t.Fatal(err)
			}
			if !res.Degraded {
				t.Fatalf("kill %d q%d: result not flagged Degraded", kill, pos)
			}
			if res.Exact {
				t.Fatalf("kill %d q%d: degraded result claims Exact", kill, pos)
			}
			if res.ChunksSkipped != p.NumPrimary[kill] {
				t.Fatalf("kill %d q%d: ChunksSkipped %d != dead shard's %d chunks",
					kill, pos, res.ChunksSkipped, p.NumPrimary[kill])
			}
			if res.ShardsDown != 1 {
				t.Fatalf("kill %d q%d: ShardsDown %d", kill, pos, res.ShardsDown)
			}
			truth := scan.KNN(survivors, q, k)
			if len(res.Neighbors) != len(truth) {
				t.Fatalf("kill %d q%d: %d neighbors vs survivor oracle %d", kill, pos, len(res.Neighbors), len(truth))
			}
			for i := range truth {
				if res.Neighbors[i] != truth[i] {
					t.Fatalf("kill %d q%d rank %d: %+v != survivor oracle %+v", kill, pos, i, res.Neighbors[i], truth[i])
				}
			}
		}
	}
}

// TestTransientRetriesNeverDoubleBill pins the retry billing rule: under
// seed-driven transient faults every answer, exactness flag and
// ChunksRead count is identical to the healthy run — retries and
// failovers cost simulated time (Elapsed may grow), never extra chunk
// charges — and the injected faults really did force retries.
func TestTransientRetriesNeverDoubleBill(t *testing.T) {
	ds, clusters := fixture(t, 4000, 41, 130)
	coll := ds.Collection
	const shards, pageSize, k = 3, 4096, 20

	healthy, calm, _ := replicatedRouterOver(t, ds, clusters, shards, 2, pageSize, faultstore.Config{})
	faulty, faults, _ := replicatedRouterOver(t, ds, clusters, shards, 2, pageSize,
		faultstore.Config{Seed: faultSeed(t), TransientProb: 0.1})

	var want, got Result
	sawStall := false
	for _, pos := range []int{11, 432, 1500, 2750, 3900} {
		q := coll.Vec(pos)
		for _, stop := range []search.StopRule{nil, search.ChunkBudget(5)} {
			opts := search.Options{K: k, Stop: stop}
			if err := healthy.SearchInto(q, opts, &want); err != nil {
				t.Fatal(err)
			}
			if err := faulty.SearchInto(q, opts, &got); err != nil {
				t.Fatal(err)
			}
			if got.Degraded || got.ChunksSkipped != 0 {
				t.Fatalf("q%d: transient faults degraded the result (seed %d)", pos, faultSeed(t))
			}
			sameAnswer(t, "transient q"+strconv.Itoa(pos), &got, &want)
			if got.Elapsed < want.Elapsed {
				t.Fatalf("q%d: faulty Elapsed %v < healthy %v — failed attempts not billed", pos, got.Elapsed, want.Elapsed)
			}
			sawStall = sawStall || got.Elapsed > want.Elapsed
		}
	}
	var calmReads, faultyReads int64
	for s := 0; s < shards; s++ {
		calmReads += calm[s].Reads()
		faultyReads += faults[s].Reads()
	}
	if faultyReads <= calmReads {
		t.Fatalf("faulty run made %d store reads vs healthy %d — no retries were injected", faultyReads, calmReads)
	}
	if !sawStall {
		t.Fatal("no query's Elapsed grew under faults — retry stalls were never billed")
	}
	if faulty.DownShards() != 0 {
		t.Fatalf("transient faults marked %d shards down", faulty.DownShards())
	}
}

// TestPartitionReplicatedInvariants checks the placement: primaries are
// the plain Partition unchanged, every cluster gets R−1 replicas on
// distinct shards none of which is its primary, replica locations name
// the right physical chunks, and the whole procedure is deterministic —
// with and without a workload heat profile.
func TestPartitionReplicatedInvariants(t *testing.T) {
	ds, clusters := fixture(t, 4000, 53, 130)
	coll := ds.Collection
	const shards, pageSize, R = 5, 4096, 3

	sample := make([]vec.Vector, 40)
	for i := range sample {
		sample[i] = coll.Vec(i * 97)
	}
	heats := [][]float64{nil, Heat(clusters, sample, 0)}

	assign, err := Partition(clusters, shards, coll.Dims(), pageSize)
	if err != nil {
		t.Fatal(err)
	}

	for hi, heat := range heats {
		p, err := PartitionReplicated(clusters, shards, R, coll.Dims(), pageSize, heat)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(p.Primary, assign) {
			t.Fatalf("heat %d: primaries differ from plain Partition", hi)
		}
		replicated := 0
		for s := range p.Replicas {
			if p.NumPrimary[s] != len(assign[s]) {
				t.Fatalf("heat %d shard %d: NumPrimary %d != %d", hi, s, p.NumPrimary[s], len(assign[s]))
			}
			for i, locs := range p.Replicas[s] {
				if len(locs) != R-1 {
					t.Fatalf("heat %d shard %d chunk %d: %d replicas, want %d", hi, s, i, len(locs), R-1)
				}
				ci := assign[s][i]
				var seen uint64
				seen |= 1 << s
				for _, loc := range locs {
					if seen&(1<<loc.Shard) != 0 {
						t.Fatalf("heat %d cluster %d: replica shard %d repeats a placement", hi, ci, loc.Shard)
					}
					seen |= 1 << loc.Shard
					ext := int(loc.Chunk) - p.NumPrimary[loc.Shard]
					if ext < 0 || ext >= len(p.Extra[loc.Shard]) || p.Extra[loc.Shard][ext] != ci {
						t.Fatalf("heat %d cluster %d: replica loc %+v does not hold the cluster", hi, ci, loc)
					}
					replicated++
				}
			}
		}
		if replicated != (R-1)*len(clusters) {
			t.Fatalf("heat %d: %d replicas placed, want %d", hi, replicated, (R-1)*len(clusters))
		}
		again, err := PartitionReplicated(clusters, shards, R, coll.Dims(), pageSize, heat)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(p, again) {
			t.Fatalf("heat %d: placement not deterministic", hi)
		}
	}

	if _, err := PartitionReplicated(clusters, 3, 4, coll.Dims(), pageSize, nil); err == nil {
		t.Fatal("replication > shards accepted")
	}
	if _, err := PartitionReplicated(clusters, 3, 0, coll.Dims(), pageSize, nil); err == nil {
		t.Fatal("replication 0 accepted")
	}
}

// TestPlacementSaveLoadRoundTrip pins the placement sidecar format.
func TestPlacementSaveLoadRoundTrip(t *testing.T) {
	ds, clusters := fixture(t, 2000, 61, 130)
	p, err := PartitionReplicated(clusters, 4, 2, ds.Collection.Dims(), 4096, nil)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), PlacementName)
	if err := SavePlacement(path, p); err != nil {
		t.Fatal(err)
	}
	got, err := LoadPlacement(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.R != p.R || !reflect.DeepEqual(got.NumPrimary, p.NumPrimary) || !reflect.DeepEqual(got.Replicas, p.Replicas) {
		t.Fatal("placement round trip differs")
	}
	if got.Primary != nil || got.Extra != nil {
		t.Fatal("loaded placement carries build-side state")
	}
}

// TestReplicatedConcurrentKill exercises the failover path under -race:
// a shard dies while a batch workload is mid-flight on several
// goroutines; every query must still complete without error, and any
// non-degraded result must be well-formed.
func TestReplicatedConcurrentKill(t *testing.T) {
	ds, clusters := fixture(t, 4000, 71, 130)
	coll := ds.Collection
	const shards, pageSize, k = 4, 4096, 15

	r, faults, _ := replicatedRouterOver(t, ds, clusters, shards, 2, pageSize,
		faultstore.Config{Seed: faultSeed(t), TransientProb: 0.05, Latency: 50 * time.Microsecond})

	queries := make([]vec.Vector, 32)
	for i := range queries {
		queries[i] = coll.Vec(i * 111)
	}
	done := make(chan error, 1)
	results := make([]search.Result, len(queries))
	go func() {
		done <- r.RunBatch(queries, batchexec.Options{K: k}, results)
	}()
	faults[1].Kill()
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	for qi := range results {
		if results[qi].Degraded {
			t.Fatalf("q%d: degraded despite R=2", qi)
		}
		if len(results[qi].Neighbors) != k {
			t.Fatalf("q%d: %d neighbors", qi, len(results[qi].Neighbors))
		}
	}
}
