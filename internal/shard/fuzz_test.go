package shard

import (
	"math/rand"
	"path/filepath"
	"reflect"
	"sync"
	"testing"

	"repro/internal/chunkfile"
	"repro/internal/cluster"
	"repro/internal/descriptor"
	"repro/internal/imagegen"
	"repro/internal/vec"
)

// fuzzColl lazily builds the one small collection every fuzz iteration
// draws its cluster members from; the clusters themselves (sizes, heats,
// shard and replication counts) are derived per-iteration from the fuzz
// inputs.
var fuzzFixture struct {
	once sync.Once
	coll *descriptor.Collection
}

func fuzzColl() *descriptor.Collection {
	fuzzFixture.once.Do(func() {
		ds := imagegen.MustGenerate(imagegen.DefaultConfig(512, 99))
		fuzzFixture.coll = ds.Collection
	})
	return fuzzFixture.coll
}

// fuzzClusters derives a random clustering and heat vector from the fuzz
// inputs: cluster sizes and heats come from a seeded rand.Rand, so the
// same inputs always reproduce the same case. Roughly one case in five
// gets an all-zero heat (the documented empty-sample fallback), and
// individual heats are occasionally negative to exercise the clamp.
func fuzzClusters(nclRaw uint8, seed int64) ([]*cluster.Cluster, []float64) {
	coll := fuzzColl()
	rng := rand.New(rand.NewSource(seed))
	ncl := 1 + int(nclRaw)%32
	clusters := make([]*cluster.Cluster, ncl)
	heat := make([]float64, ncl)
	zeroHeat := seed%5 == 0
	for i := range clusters {
		count := 1 + rng.Intn(40)
		members := make([]int, count)
		for m := range members {
			members[m] = rng.Intn(coll.Len())
		}
		clusters[i] = cluster.NewFromMembers(coll, members)
		if !zeroHeat {
			heat[i] = rng.Float64()*3 - 0.5 // occasionally negative
		}
	}
	return clusters, heat
}

// checkAssignment asserts the structural invariants every primary
// assignment must satisfy: each cluster appears on exactly one shard and
// each shard's list is strictly ascending (the order that keeps
// chunk-rank tie-breaks aligned with the unsharded index).
func checkAssignment(t *testing.T, assign [][]int, shards, ncl int) {
	t.Helper()
	if len(assign) != shards {
		t.Fatalf("assignment has %d shards, want %d", len(assign), shards)
	}
	seen := make([]bool, ncl)
	for s, idxs := range assign {
		for i, ci := range idxs {
			if ci < 0 || ci >= ncl {
				t.Fatalf("shard %d holds out-of-range cluster %d", s, ci)
			}
			if seen[ci] {
				t.Fatalf("cluster %d assigned twice", ci)
			}
			seen[ci] = true
			if i > 0 && idxs[i-1] >= ci {
				t.Fatalf("shard %d not strictly ascending: %v", s, idxs)
			}
		}
	}
	for ci, ok := range seen {
		if !ok {
			t.Fatalf("cluster %d unassigned", ci)
		}
	}
}

// FuzzPartitionHeated fuzzes the heat-balanced primary placement over
// random cluster counts, sizes, heats, and shard counts, pinning the
// properties the tentpole depends on: determinism, every cluster placed
// exactly once in ascending order, the 1-shard identity, the zero-heat
// fallback to the byte-balanced Partition, and the greedy heat-load
// spread bound (no shard exceeds the mean load by more than one
// cluster's load unit).
func FuzzPartitionHeated(f *testing.F) {
	f.Add(uint8(7), uint8(3), int64(1))
	f.Add(uint8(0), uint8(0), int64(0))
	f.Add(uint8(31), uint8(7), int64(2005))
	f.Add(uint8(12), uint8(1), int64(5)) // zero heat (seed%5==0)
	f.Add(uint8(3), uint8(6), int64(-9)) // fewer clusters than shards
	f.Fuzz(func(t *testing.T, nclRaw, shardsRaw uint8, seed int64) {
		clusters, heat := fuzzClusters(nclRaw, seed)
		shards := 1 + int(shardsRaw)%8
		dims := fuzzColl().Dims()
		const pageSize = 4096

		assign, err := PartitionHeated(clusters, shards, dims, pageSize, heat)
		if err != nil {
			t.Fatal(err)
		}
		again, err := PartitionHeated(clusters, shards, dims, pageSize, heat)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(assign, again) {
			t.Fatal("PartitionHeated is not deterministic")
		}
		checkAssignment(t, assign, shards, len(clusters))

		if shards == 1 {
			for ci, got := range assign[0] {
				if got != ci {
					t.Fatalf("1-shard partition is not the identity at %d: %v", ci, assign[0])
				}
			}
		}

		if !heatUsable(heat) {
			plain, err := Partition(clusters, shards, dims, pageSize)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(assign, plain) {
				t.Fatal("unusable heat did not fall back to the byte-balanced Partition")
			}
			return
		}

		// Greedy LPT spread bound: when a shard received its last
		// cluster it was the least loaded, so no shard ends more than
		// one load unit above the mean.
		loads := make([]float64, shards)
		var total, maxUnit float64
		for s, idxs := range assign {
			for _, ci := range idxs {
				h := heat[ci]
				if h < 0 {
					h = 0
				}
				w := h * float64(chunkfile.PaddedBytes(clusters[ci].Count(), dims, pageSize))
				loads[s] += w
				total += w
				if w > maxUnit {
					maxUnit = w
				}
			}
		}
		bound := total/float64(shards) + maxUnit
		bound += 1e-9 * (total + 1)
		for s, load := range loads {
			if load > bound {
				t.Fatalf("shard %d heat-load %g exceeds greedy bound %g (total %g, max unit %g)",
					s, load, bound, total, maxUnit)
			}
		}
	})
}

// FuzzPartitionReplicatedHeated fuzzes the full replicated heat-aware
// placement, pinning determinism, primary validity, the replica
// contract — every logical chunk on exactly R distinct shards, no
// replica co-located with its primary, every replica location resolving
// to the right cluster in the holder's physical order — and the sidecar
// round-trip (SavePlacement/LoadPlacement preserves the serving state
// and drops the build-side state).
func FuzzPartitionReplicatedHeated(f *testing.F) {
	f.Add(uint8(7), uint8(3), uint8(1), int64(1))
	f.Add(uint8(31), uint8(7), uint8(2), int64(2005))
	f.Add(uint8(12), uint8(4), uint8(0), int64(5))
	f.Add(uint8(20), uint8(2), uint8(9), int64(-3))
	f.Fuzz(func(t *testing.T, nclRaw, shardsRaw, repRaw uint8, seed int64) {
		clusters, heat := fuzzClusters(nclRaw, seed)
		shards := 1 + int(shardsRaw)%8
		rep := 1 + int(repRaw)%3
		if rep > shards {
			rep = shards
		}
		dims := fuzzColl().Dims()
		const pageSize = 4096

		p, err := PartitionReplicatedHeated(clusters, shards, rep, dims, pageSize, heat)
		if err != nil {
			t.Fatal(err)
		}
		again, err := PartitionReplicatedHeated(clusters, shards, rep, dims, pageSize, heat)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(p, again) {
			t.Fatal("PartitionReplicatedHeated is not deterministic")
		}
		checkAssignment(t, p.Primary, shards, len(clusters))
		if p.R != rep {
			t.Fatalf("placement R %d, want %d", p.R, rep)
		}
		for s := range p.Primary {
			if p.NumPrimary[s] != len(p.Primary[s]) {
				t.Fatalf("shard %d NumPrimary %d != %d primaries", s, p.NumPrimary[s], len(p.Primary[s]))
			}
		}

		for s := range p.Primary {
			for i, ci := range p.Primary[s] {
				locs := p.Replicas[s][i]
				if len(locs) != rep-1 {
					t.Fatalf("cluster %d: %d replicas, want %d", ci, len(locs), rep-1)
				}
				onShard := map[int32]bool{int32(s): true}
				for _, loc := range locs {
					if onShard[loc.Shard] {
						t.Fatalf("cluster %d: copies co-located on shard %d", ci, loc.Shard)
					}
					onShard[loc.Shard] = true
					ti := int(loc.Chunk) - p.NumPrimary[loc.Shard]
					if ti < 0 || ti >= len(p.Extra[loc.Shard]) {
						t.Fatalf("cluster %d: replica chunk %d outside shard %d's extras", ci, loc.Chunk, loc.Shard)
					}
					if p.Extra[loc.Shard][ti] != ci {
						t.Fatalf("cluster %d: replica slot holds cluster %d", ci, p.Extra[loc.Shard][ti])
					}
				}
			}
		}

		path := filepath.Join(t.TempDir(), PlacementName)
		if err := SavePlacement(path, p); err != nil {
			t.Fatal(err)
		}
		got, err := LoadPlacement(path)
		if err != nil {
			t.Fatal(err)
		}
		if got.R != p.R || !reflect.DeepEqual(got.NumPrimary, p.NumPrimary) {
			t.Fatal("placement sidecar round trip differs")
		}
		// Replica lists compare element-wise: LoadPlacement materializes
		// an R=1 chunk's empty list as empty, the builder leaves it nil.
		for s := range p.Replicas {
			for i := range p.Replicas[s] {
				a, b := p.Replicas[s][i], got.Replicas[s][i]
				if len(a) != len(b) {
					t.Fatalf("round trip shard %d chunk %d: %d replicas became %d", s, i, len(a), len(b))
				}
				for r := range a {
					if a[r] != b[r] {
						t.Fatalf("round trip shard %d chunk %d replica %d: %+v != %+v", s, i, r, b[r], a[r])
					}
				}
			}
		}
		if got.Primary != nil || got.Extra != nil {
			t.Fatal("loaded placement carries build-side state")
		}
	})
}

// TestHeatZeroFallback pins the documented zero-heat fallback of Heat
// and its consumers: an empty or nil sample, dimension-mismatched
// queries, or no clusters yield an all-zero (never fabricated) heat, a
// topM of zero selects the default of 5 votes per query, and both
// partition entry points treat an all-zero heat exactly like nil.
func TestHeatZeroFallback(t *testing.T) {
	coll := fuzzColl()
	rng := rand.New(rand.NewSource(42))
	clusters := make([]*cluster.Cluster, 12)
	for i := range clusters {
		members := make([]int, 8)
		for m := range members {
			members[m] = rng.Intn(coll.Len())
		}
		clusters[i] = cluster.NewFromMembers(coll, members)
	}
	dims := coll.Dims()
	good := coll.Vec(7)
	bad := make(vec.Vector, dims+3)

	sum := func(h []float64) float64 {
		var s float64
		for _, x := range h {
			s += x
		}
		return s
	}

	cases := []struct {
		name     string
		clusters []*cluster.Cluster
		sample   []vec.Vector
		topM     int
		wantLen  int
		wantSum  float64
	}{
		{"nil sample", clusters, nil, 5, len(clusters), 0},
		{"empty sample", clusters, []vec.Vector{}, 5, len(clusters), 0},
		{"no clusters", nil, []vec.Vector{good}, 5, 0, 0},
		{"topM zero defaults to 5", clusters, []vec.Vector{good, coll.Vec(11)}, 0, len(clusters), 10},
		{"topM capped at cluster count", clusters, []vec.Vector{good}, 99, len(clusters), float64(len(clusters))},
		{"dims mismatch skipped", clusters, []vec.Vector{bad, bad}, 5, len(clusters), 0},
		{"mixed sample votes once", clusters, []vec.Vector{bad, good}, 5, len(clusters), 5},
	}
	for _, tc := range cases {
		heat := Heat(tc.clusters, tc.sample, tc.topM)
		if len(heat) != tc.wantLen {
			t.Fatalf("%s: heat length %d, want %d", tc.name, len(heat), tc.wantLen)
		}
		for i, h := range heat {
			if h < 0 {
				t.Fatalf("%s: negative heat %g at %d", tc.name, h, i)
			}
		}
		if got := sum(heat); got != tc.wantSum {
			t.Fatalf("%s: total votes %g, want %g", tc.name, got, tc.wantSum)
		}
	}

	// An all-zero heat must behave exactly like nil in both consumers.
	const pageSize = 4096
	zeros := make([]float64, len(clusters))
	heated, err := PartitionHeated(clusters, 3, dims, pageSize, zeros)
	if err != nil {
		t.Fatal(err)
	}
	plain, err := Partition(clusters, 3, dims, pageSize)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(heated, plain) {
		t.Fatal("all-zero heat did not fall back to byte-balanced Partition")
	}
	pz, err := PartitionReplicatedHeated(clusters, 3, 2, dims, pageSize, zeros)
	if err != nil {
		t.Fatal(err)
	}
	pn, err := PartitionReplicatedHeated(clusters, 3, 2, dims, pageSize, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(pz, pn) {
		t.Fatal("all-zero heat placed replicas differently from nil heat")
	}

	// A heat vector of the wrong length is a build error, not a silent
	// reinterpretation.
	if _, err := PartitionHeated(clusters, 3, dims, pageSize, zeros[:3]); err == nil {
		t.Fatal("PartitionHeated accepted a mismatched heat length")
	}
	if _, err := PartitionReplicatedHeated(clusters, 3, 2, dims, pageSize, zeros[:3]); err == nil {
		t.Fatal("PartitionReplicatedHeated accepted a mismatched heat length")
	}
}
