// Package shard is the sharded index layer: it partitions a clustering
// across S shards, each shard a complete chunk index of its own (one
// chunkfile.Store served by one single-query search.Searcher and one
// chunk-major batchexec.Engine), and routes single, batch and
// multi-descriptor queries scatter-gather across the shards.
//
// The cost model extends the repo convention of one simulated 2005
// machine per query to one simulated 2005 machine *per shard*: every
// shard charges a query's chunks to its own per-query simdisk.Pipeline
// (in that shard's local rank order, with the stop rule applied after
// every charged chunk), and the merged result reports the *max* of the
// per-shard simulated times — the shards run in parallel — while
// ChunksRead is the *sum* of the work they did. Simulated time is never
// wall-aggregated across shards or queries.
//
// Stop-rule budgets come in two disciplines on that one cost model: the
// per-shard paths (Router.Search, RunBatch, MultiQuery) let every shard
// spend the budget independently on its local chunk ranking, while the
// global paths (Router.SearchGlobal, RunBatchGlobal, MultiQueryGlobal —
// see global.go and DESIGN.md §7) spend one total budget across the
// fleet in global centroid-rank order, still charging each chunk to its
// owning shard's pipeline.
//
// Per-shard results merge through knn.Less, so merged neighbor lists are
// deterministic, and a run-to-completion search is provably the exact
// global k-NN: any global top-k descriptor is within the top k of its own
// shard, so the union of per-shard exact top-k lists contains the global
// top k, and every shard's exactness certificate (suffix bound) holds
// locally.
package shard

import (
	"fmt"
	"slices"

	"repro/internal/chunkfile"
	"repro/internal/cluster"
)

// Partition assigns clusters to shards, balancing the shards by padded
// on-disk chunk bytes (chunkfile.PaddedBytes): clusters are taken largest
// first and each goes to the currently lightest shard — the greedy LPT
// heuristic, which bounds the heaviest shard within 4/3 of optimal. The
// procedure is fully deterministic: equal-size clusters are taken in
// ascending cluster order and load ties break toward the lowest shard
// index, so the same clustering always yields the same partition.
//
// The returned assignment holds each shard's cluster indexes in
// ascending original order. Preserving the original relative order
// inside every shard keeps chunk-order-dependent tie-breaks (chunk
// ranking at equal centroid distance) aligned with the unsharded index;
// in particular a 1-shard partition is exactly the identity, which is
// what pins the 1-shard ≡ unsharded equivalence.
//
// Shards may come out empty when there are fewer clusters than shards; an
// empty shard serves an empty chunk index and every query over it is
// trivially exact.
func Partition(clusters []*cluster.Cluster, shards, dims, pageSize int) ([][]int, error) {
	if shards < 1 {
		return nil, fmt.Errorf("shard: shard count %d < 1", shards)
	}
	type weighted struct {
		idx   int
		bytes int64
	}
	order := make([]weighted, len(clusters))
	for i, cl := range clusters {
		order[i] = weighted{idx: i, bytes: int64(chunkfile.PaddedBytes(cl.Count(), dims, pageSize))}
	}
	slices.SortFunc(order, func(a, b weighted) int {
		switch {
		case a.bytes > b.bytes:
			return -1
		case a.bytes < b.bytes:
			return 1
		}
		return a.idx - b.idx
	})

	assign := make([][]int, shards)
	loads := make([]int64, shards)
	for _, w := range order {
		lightest := 0
		for s := 1; s < shards; s++ {
			if loads[s] < loads[lightest] {
				lightest = s
			}
		}
		assign[lightest] = append(assign[lightest], w.idx)
		loads[lightest] += w.bytes
	}
	for _, idxs := range assign {
		slices.Sort(idxs)
	}
	return assign, nil
}

// PartitionHeated assigns clusters to shards balancing by *expected
// served load* instead of storage: each cluster's load unit is
// heat[i] × its padded on-disk bytes — the expected bytes a skewed
// workload pulls from it — so under workload.Zipf the hot clusters
// spread across the shards and the hottest shard stops dominating the
// merged Simulated (= max over shards). Negative heat entries are
// treated as zero.
//
// The procedure is the same greedy LPT as Partition and equally
// deterministic: clusters are taken heaviest-load first (ties by larger
// padded bytes, then ascending cluster index) and each goes to the shard
// with the least placed heat-load (ties by least placed bytes, then the
// lowest shard index — so equal-heat clusters, including all clusters of
// a cold tail, still balance by bytes). Each shard's cluster indexes
// come out in ascending original order, so a 1-shard partition is
// exactly the identity, preserving the 1-shard ≡ unsharded equivalence.
//
// A nil heat, or one with no positive entry (the documented zero-heat
// fallback of Heat on an empty sample), carries no skew signal:
// PartitionHeated then degenerates to the byte-balanced Partition
// instead of letting all-equal loads silently skew the placement.
func PartitionHeated(clusters []*cluster.Cluster, shards, dims, pageSize int, heat []float64) ([][]int, error) {
	if shards < 1 {
		return nil, fmt.Errorf("shard: shard count %d < 1", shards)
	}
	if heat != nil && len(heat) != len(clusters) {
		return nil, fmt.Errorf("shard: heat length %d != cluster count %d", len(heat), len(clusters))
	}
	if !heatUsable(heat) {
		return Partition(clusters, shards, dims, pageSize)
	}
	type weighted struct {
		idx   int
		load  float64
		bytes int64
	}
	order := make([]weighted, len(clusters))
	for i, cl := range clusters {
		bytes := int64(chunkfile.PaddedBytes(cl.Count(), dims, pageSize))
		h := heat[i]
		if h < 0 {
			h = 0
		}
		order[i] = weighted{idx: i, load: h * float64(bytes), bytes: bytes}
	}
	slices.SortFunc(order, func(a, b weighted) int {
		switch {
		case a.load > b.load:
			return -1
		case a.load < b.load:
			return 1
		}
		switch {
		case a.bytes > b.bytes:
			return -1
		case a.bytes < b.bytes:
			return 1
		}
		return a.idx - b.idx
	})

	assign := make([][]int, shards)
	loads := make([]float64, shards)
	byteLoads := make([]int64, shards)
	for _, w := range order {
		lightest := 0
		for s := 1; s < shards; s++ {
			if loads[s] < loads[lightest] ||
				(loads[s] == loads[lightest] && byteLoads[s] < byteLoads[lightest]) {
				lightest = s
			}
		}
		assign[lightest] = append(assign[lightest], w.idx)
		loads[lightest] += w.load
		byteLoads[lightest] += w.bytes
	}
	for _, idxs := range assign {
		slices.Sort(idxs)
	}
	return assign, nil
}

// heatUsable reports whether a heat vector carries any skew signal: a
// nil heat, an empty one, or one with no positive entry is unusable, and
// the heat-aware placements fall back to their heat-free behavior.
func heatUsable(heat []float64) bool {
	for _, h := range heat {
		if h > 0 {
			return true
		}
	}
	return false
}

// Select materializes one shard of an assignment: the clusters at the
// given indexes, in assignment order.
func Select(clusters []*cluster.Cluster, idxs []int) []*cluster.Cluster {
	part := make([]*cluster.Cluster, len(idxs))
	for i, ci := range idxs {
		part[i] = clusters[ci]
	}
	return part
}
