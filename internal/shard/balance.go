// Package shard is the sharded index layer: it partitions a clustering
// across S shards, each shard a complete chunk index of its own (one
// chunkfile.Store served by one single-query search.Searcher and one
// chunk-major batchexec.Engine), and routes single, batch and
// multi-descriptor queries scatter-gather across the shards.
//
// The cost model extends the repo convention of one simulated 2005
// machine per query to one simulated 2005 machine *per shard*: every
// shard charges a query's chunks to its own per-query simdisk.Pipeline
// (in that shard's local rank order, with the stop rule applied after
// every charged chunk), and the merged result reports the *max* of the
// per-shard simulated times — the shards run in parallel — while
// ChunksRead is the *sum* of the work they did. Simulated time is never
// wall-aggregated across shards or queries.
//
// Stop-rule budgets come in two disciplines on that one cost model: the
// per-shard paths (Router.Search, RunBatch, MultiQuery) let every shard
// spend the budget independently on its local chunk ranking, while the
// global paths (Router.SearchGlobal, RunBatchGlobal, MultiQueryGlobal —
// see global.go and DESIGN.md §7) spend one total budget across the
// fleet in global centroid-rank order, still charging each chunk to its
// owning shard's pipeline.
//
// Per-shard results merge through knn.Less, so merged neighbor lists are
// deterministic, and a run-to-completion search is provably the exact
// global k-NN: any global top-k descriptor is within the top k of its own
// shard, so the union of per-shard exact top-k lists contains the global
// top k, and every shard's exactness certificate (suffix bound) holds
// locally.
package shard

import (
	"fmt"
	"slices"

	"repro/internal/chunkfile"
	"repro/internal/cluster"
)

// Partition assigns clusters to shards, balancing the shards by padded
// on-disk chunk bytes (chunkfile.PaddedBytes): clusters are taken largest
// first and each goes to the currently lightest shard — the greedy LPT
// heuristic, which bounds the heaviest shard within 4/3 of optimal. The
// procedure is fully deterministic: equal-size clusters are taken in
// ascending cluster order and load ties break toward the lowest shard
// index, so the same clustering always yields the same partition.
//
// The returned assignment holds each shard's cluster indexes in
// ascending original order. Preserving the original relative order
// inside every shard keeps chunk-order-dependent tie-breaks (chunk
// ranking at equal centroid distance) aligned with the unsharded index;
// in particular a 1-shard partition is exactly the identity, which is
// what pins the 1-shard ≡ unsharded equivalence.
//
// Shards may come out empty when there are fewer clusters than shards; an
// empty shard serves an empty chunk index and every query over it is
// trivially exact.
func Partition(clusters []*cluster.Cluster, shards, dims, pageSize int) ([][]int, error) {
	if shards < 1 {
		return nil, fmt.Errorf("shard: shard count %d < 1", shards)
	}
	type weighted struct {
		idx   int
		bytes int64
	}
	order := make([]weighted, len(clusters))
	for i, cl := range clusters {
		order[i] = weighted{idx: i, bytes: int64(chunkfile.PaddedBytes(cl.Count(), dims, pageSize))}
	}
	slices.SortFunc(order, func(a, b weighted) int {
		switch {
		case a.bytes > b.bytes:
			return -1
		case a.bytes < b.bytes:
			return 1
		}
		return a.idx - b.idx
	})

	assign := make([][]int, shards)
	loads := make([]int64, shards)
	for _, w := range order {
		lightest := 0
		for s := 1; s < shards; s++ {
			if loads[s] < loads[lightest] {
				lightest = s
			}
		}
		assign[lightest] = append(assign[lightest], w.idx)
		loads[lightest] += w.bytes
	}
	for _, idxs := range assign {
		slices.Sort(idxs)
	}
	return assign, nil
}

// Select materializes one shard of an assignment: the clusters at the
// given indexes, in assignment order.
func Select(clusters []*cluster.Cluster, idxs []int) []*cluster.Cluster {
	part := make([]*cluster.Cluster, len(idxs))
	for i, ci := range idxs {
		part[i] = clusters[ci]
	}
	return part
}
