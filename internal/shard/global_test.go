package shard

import (
	"path/filepath"
	"sync"
	"testing"
	"time"

	"repro/internal/chunkfile"
	"repro/internal/cluster"
	"repro/internal/multiquery"
	"repro/internal/scan"
	"repro/internal/search"
	"repro/internal/search/batchexec"
	"repro/internal/vec"
)

// TestGlobalOneShardMatchesSingleSearcher pins the degenerate-case
// equivalence: global budgets on a 1-shard router are byte-identical to
// the plain unsharded searcher — IDs, distances, ChunksRead, Elapsed,
// IndexRead and Exact — under all three stop rules, on both store
// implementations.
func TestGlobalOneShardMatchesSingleSearcher(t *testing.T) {
	ds, clusters := fixture(t, 5000, 17, 140)
	coll := ds.Collection
	const pageSize = 4096

	dir := t.TempDir()
	cp, ip := filepath.Join(dir, "a.chunk"), filepath.Join(dir, "a.idx")
	if err := chunkfile.Write(coll, clusters, cp, ip, pageSize); err != nil {
		t.Fatal(err)
	}
	if err := chunkfile.SaveSharded(coll, [][]*cluster.Cluster{clusters}, dir, pageSize); err != nil {
		t.Fatal(err)
	}

	type setup struct {
		name   string
		single *search.Searcher
		router *Router
	}
	var setups []setup

	memSingle := search.New(chunkfile.NewMemStore(coll, clusters, pageSize), nil)
	setups = append(setups, setup{"MemStore", memSingle, routerOver(t, ds, clusters, 1, pageSize)})

	fileSingleStore, err := chunkfile.Open(cp, ip)
	if err != nil {
		t.Fatal(err)
	}
	defer fileSingleStore.Close()
	fileShards, _, err := chunkfile.OpenSharded(dir)
	if err != nil {
		t.Fatal(err)
	}
	fileRouter, err := NewRouter([]chunkfile.Store{fileShards[0]}, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer fileRouter.Close()
	setups = append(setups, setup{"FileStore", search.New(fileSingleStore, nil), fileRouter})

	for _, su := range setups {
		for _, stop := range stopRules() {
			var merged Result
			for _, qi := range []int{0, 3, 99, 1234, 4999} {
				q := coll.Vec(qi)
				opts := search.Options{K: 20, Stop: stop}
				want, err := su.single.Search(q, opts)
				if err != nil {
					t.Fatal(err)
				}
				if err := su.router.SearchGlobalInto(q, opts, &merged); err != nil {
					t.Fatal(err)
				}
				if merged.ChunksRead != want.ChunksRead || merged.Elapsed != want.Elapsed ||
					merged.IndexRead != want.IndexRead || merged.Exact != want.Exact {
					t.Fatalf("%s %v q%d: (chunks %d, sim %v, idx %v, exact %v) != (%d, %v, %v, %v)",
						su.name, stop, qi, merged.ChunksRead, merged.Elapsed, merged.IndexRead, merged.Exact,
						want.ChunksRead, want.Elapsed, want.IndexRead, want.Exact)
				}
				if len(merged.Neighbors) != len(want.Neighbors) {
					t.Fatalf("%s %v q%d: %d neighbors != %d", su.name, stop, qi, len(merged.Neighbors), len(want.Neighbors))
				}
				for i := range want.Neighbors {
					if merged.Neighbors[i] != want.Neighbors[i] {
						t.Fatalf("%s %v q%d rank %d: %+v != %+v",
							su.name, stop, qi, i, merged.Neighbors[i], want.Neighbors[i])
					}
				}
				if len(merged.PerShard) != 1 || merged.PerShard[0].ChunksRead != want.ChunksRead {
					t.Fatalf("%s %v q%d: PerShard %+v", su.name, stop, qi, merged.PerShard)
				}
			}
		}
	}
}

// TestGlobalCompletionMatchesScanOracle pins the global exactness
// certificate: a run-to-completion global search over S shards returns
// exactly the scan oracle's k-NN, with ChunksRead the sum over the
// per-shard breakdown and Elapsed the max over the shards' machines.
func TestGlobalCompletionMatchesScanOracle(t *testing.T) {
	ds, clusters := fixture(t, 5000, 23, 130)
	coll := ds.Collection
	const pageSize = 4096
	const k = 25

	for _, shards := range []int{2, 4, 7} {
		r := routerOver(t, ds, clusters, shards, pageSize)
		var res Result
		for _, qi := range []int{1, 42, 777, 3210, 4999} {
			q := coll.Vec(qi)
			if err := r.SearchGlobalInto(q, search.Options{K: k}, &res); err != nil {
				t.Fatal(err)
			}
			if !res.Exact {
				t.Fatalf("S=%d q%d: global completion search not exact", shards, qi)
			}
			truth := scan.KNN(coll, q, k)
			if len(res.Neighbors) != len(truth) {
				t.Fatalf("S=%d q%d: %d neighbors vs oracle %d", shards, qi, len(res.Neighbors), len(truth))
			}
			for i := range truth {
				if res.Neighbors[i] != truth[i] {
					t.Fatalf("S=%d q%d rank %d: %+v != oracle %+v", shards, qi, i, res.Neighbors[i], truth[i])
				}
			}
			sumChunks, maxElapsed := 0, time.Duration(0)
			for s := range res.PerShard {
				sumChunks += res.PerShard[s].ChunksRead
				if res.PerShard[s].Elapsed > maxElapsed {
					maxElapsed = res.PerShard[s].Elapsed
				}
			}
			if res.ChunksRead != sumChunks {
				t.Fatalf("S=%d q%d: ChunksRead %d != per-shard sum %d", shards, qi, res.ChunksRead, sumChunks)
			}
			if res.Elapsed != maxElapsed {
				t.Fatalf("S=%d q%d: Elapsed %v != per-shard max %v", shards, qi, res.Elapsed, maxElapsed)
			}
		}
	}
}

// TestGlobalBudgetSpendsExactlyTotal pins the closed S× gap: a global
// ChunkBudget(B) on S shards reads exactly min(B, total) chunks in
// total — including budgets smaller than the shard count and larger than
// the whole index — where the per-shard mode would read up to S×B.
func TestGlobalBudgetSpendsExactlyTotal(t *testing.T) {
	ds, clusters := fixture(t, 5000, 29, 130)
	coll := ds.Collection
	const shards = 4
	r := routerOver(t, ds, clusters, shards, 4096)
	total := len(clusters)

	var res Result
	for _, budget := range []int{1, 2, shards - 1, 5, 17, total, total + 10} {
		for _, qi := range []int{7, 900, 4242} {
			q := coll.Vec(qi)
			if err := r.SearchGlobalInto(q, search.Options{K: 20, Stop: search.ChunkBudget(budget)}, &res); err != nil {
				t.Fatal(err)
			}
			want := budget
			if want > total {
				want = total
			}
			if res.ChunksRead != want {
				t.Fatalf("budget %d q%d: ChunksRead %d != %d", budget, qi, res.ChunksRead, want)
			}
			sum := 0
			for _, pc := range res.PerShard {
				sum += pc.ChunksRead
			}
			if sum != want {
				t.Fatalf("budget %d q%d: per-shard sum %d != %d", budget, qi, sum, want)
			}
			if budget >= total && !res.Exact {
				t.Fatalf("budget %d q%d: read the whole index but not exact", budget, qi)
			}
		}
	}

	// The contrast pin: the per-shard discipline at the same per-shard
	// budget b reads S×b chunks (no shard exhausts its chunks at b=2).
	if err := r.SearchInto(coll.Vec(7), search.Options{K: 20, Stop: search.ChunkBudget(2)}, &res); err != nil {
		t.Fatal(err)
	}
	if res.ChunksRead != shards*2 {
		t.Fatalf("per-shard budget 2 on %d shards: ChunksRead %d != %d", shards, res.ChunksRead, shards*2)
	}
}

// TestGlobalBudgetMatchesUnshardedBudget pins the quality side of the
// closed gap: at the same total budget B, the global router reads the
// same globally best-ranked chunks as the unsharded index, so it returns
// the identical neighbor set (sharding moves the chunks across machines
// but cannot change the centroid ranking).
func TestGlobalBudgetMatchesUnshardedBudget(t *testing.T) {
	ds, clusters := fixture(t, 5000, 43, 140)
	coll := ds.Collection
	const pageSize = 4096
	single := search.New(chunkfile.NewMemStore(coll, clusters, pageSize), nil)
	r := routerOver(t, ds, clusters, 4, pageSize)

	var got Result
	for _, budget := range []int{1, 3, 8, 20} {
		for _, qi := range []int{0, 55, 1999, 4321} {
			q := coll.Vec(qi)
			opts := search.Options{K: 20, Stop: search.ChunkBudget(budget)}
			want, err := single.Search(q, opts)
			if err != nil {
				t.Fatal(err)
			}
			if err := r.SearchGlobalInto(q, opts, &got); err != nil {
				t.Fatal(err)
			}
			if got.ChunksRead != want.ChunksRead {
				t.Fatalf("budget %d q%d: ChunksRead %d != unsharded %d", budget, qi, got.ChunksRead, want.ChunksRead)
			}
			if len(got.Neighbors) != len(want.Neighbors) {
				t.Fatalf("budget %d q%d: %d neighbors != %d", budget, qi, len(got.Neighbors), len(want.Neighbors))
			}
			for i := range want.Neighbors {
				if got.Neighbors[i] != want.Neighbors[i] {
					t.Fatalf("budget %d q%d rank %d: %+v != unsharded %+v", budget, qi, i, got.Neighbors[i], want.Neighbors[i])
				}
			}
		}
	}
}

// TestGlobalBatchMatchesGlobalSearch pins the batch path to the
// single-query global path: RunBatchGlobal outcomes are byte-identical
// to per-query SearchGlobalInto — neighbors, ChunksRead, Elapsed,
// IndexRead and Exact — under every stop rule.
func TestGlobalBatchMatchesGlobalSearch(t *testing.T) {
	ds, clusters := fixture(t, 5000, 31, 120)
	coll := ds.Collection
	r := routerOver(t, ds, clusters, 3, 4096)

	queries := make([]vec.Vector, 24)
	for i := range queries {
		queries[i] = coll.Vec(i * 191)
	}
	results := make([]search.Result, len(queries))
	for _, stop := range stopRules() {
		if err := r.RunBatchGlobal(queries, batchexec.Options{K: 15, Stop: stop}, results); err != nil {
			t.Fatal(err)
		}
		var want Result
		for qi, q := range queries {
			if err := r.SearchGlobalInto(q, search.Options{K: 15, Stop: stop}, &want); err != nil {
				t.Fatal(err)
			}
			got := &results[qi]
			if got.ChunksRead != want.ChunksRead || got.Elapsed != want.Elapsed ||
				got.IndexRead != want.IndexRead || got.Exact != want.Exact {
				t.Fatalf("%v q%d: (chunks %d, sim %v, idx %v, exact %v) != (%d, %v, %v, %v)",
					stop, qi, got.ChunksRead, got.Elapsed, got.IndexRead, got.Exact,
					want.ChunksRead, want.Elapsed, want.IndexRead, want.Exact)
			}
			if len(got.Neighbors) != len(want.Neighbors) {
				t.Fatalf("%v q%d: %d neighbors != %d", stop, qi, len(got.Neighbors), len(want.Neighbors))
			}
			for i := range want.Neighbors {
				if got.Neighbors[i] != want.Neighbors[i] {
					t.Fatalf("%v q%d rank %d: %+v != %+v", stop, qi, i, got.Neighbors[i], want.Neighbors[i])
				}
			}
		}
	}
}

// TestGlobalMultiQueryMatchesSingleStore pins the multi-descriptor
// global path: on 1 shard it is byte-identical (scores, simulated
// totals) to the single-store multiquery searcher, and run to completion
// on 4 shards it still ranks images identically.
func TestGlobalMultiQueryMatchesSingleStore(t *testing.T) {
	ds, clusters := fixture(t, 4000, 37, 110)
	coll := ds.Collection
	const pageSize = 4096

	bag := make([]vec.Vector, 30)
	for i := range bag {
		bag[i] = coll.Vec(i * 97)
	}
	single := multiquery.New(chunkfile.NewMemStore(coll, clusters, pageSize))

	check := func(name string, got, want *multiquery.Result) {
		t.Helper()
		if got.Descriptors != want.Descriptors {
			t.Fatalf("%s: descriptors %d != %d", name, got.Descriptors, want.Descriptors)
		}
		if len(got.Images) != len(want.Images) {
			t.Fatalf("%s: %d images != %d", name, len(got.Images), len(want.Images))
		}
		for i := range want.Images {
			if got.Images[i] != want.Images[i] {
				t.Fatalf("%s image %d: %+v != %+v", name, i, got.Images[i], want.Images[i])
			}
		}
	}

	r1 := routerOver(t, ds, clusters, 1, pageSize)
	opts := multiquery.Options{K: 8, Stop: search.ChunkBudget(3), RankWeighted: true}
	want, err := single.Query(bag, opts)
	if err != nil {
		t.Fatal(err)
	}
	got, err := r1.MultiQueryGlobal(bag, opts)
	if err != nil {
		t.Fatal(err)
	}
	check("1-shard global", got, want)
	if got.Simulated != want.Simulated || got.ChunksRead != want.ChunksRead {
		t.Fatalf("1-shard global: (sim %v, chunks %d) != (%v, %d)", got.Simulated, got.ChunksRead, want.Simulated, want.ChunksRead)
	}

	r4 := routerOver(t, ds, clusters, 4, pageSize)
	exact := multiquery.Options{K: 8, Stop: search.ToCompletion{}}
	want, err = single.Query(bag, exact)
	if err != nil {
		t.Fatal(err)
	}
	got, err = r4.MultiQueryGlobal(bag, exact)
	if err != nil {
		t.Fatal(err)
	}
	check("4-shard global completion", got, want)
}

// TestGlobalEmptyShards covers shards that hold no chunks (more shards
// than clusters): the global walk skips nothing, completion is still
// exact, and a tiny budget still spends exactly its total.
func TestGlobalEmptyShards(t *testing.T) {
	ds, clusters := fixture(t, 600, 47, 200)
	coll := ds.Collection
	r := routerOver(t, ds, clusters, len(clusters)+2, 4096)

	res, err := r.SearchGlobal(coll.Vec(5), search.Options{K: 10})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Exact || len(res.Neighbors) != 10 {
		t.Fatalf("empty-shard global search: exact=%v neighbors=%d", res.Exact, len(res.Neighbors))
	}
	truth := scan.KNN(coll, coll.Vec(5), 10)
	for i := range truth {
		if res.Neighbors[i] != truth[i] {
			t.Fatalf("empty-shard global rank %d: %+v != %+v", i, res.Neighbors[i], truth[i])
		}
	}
	if len(res.PerShard) != r.Shards() {
		t.Fatalf("PerShard %d entries != %d shards", len(res.PerShard), r.Shards())
	}

	res, err = r.SearchGlobal(coll.Vec(5), search.Options{K: 10, Stop: search.ChunkBudget(2)})
	if err != nil {
		t.Fatal(err)
	}
	if res.ChunksRead != 2 {
		t.Fatalf("empty-shard global budget 2: ChunksRead %d", res.ChunksRead)
	}

	if _, err := r.SearchGlobal(make(vec.Vector, 3), search.Options{K: 5}); err == nil {
		t.Fatal("bad dims accepted")
	}
	if err := r.RunBatchGlobal(make([]vec.Vector, 2), batchexec.Options{}, make([]search.Result, 1)); err == nil {
		t.Fatal("mismatched results length accepted")
	}
	if err := r.RunBatchGlobal(nil, batchexec.Options{}, nil); err != nil {
		t.Fatalf("empty global batch: %v", err)
	}
}

// TestGlobalConcurrentScatterBatch exercises the global-budget paths
// from many goroutines at once (the -race CI shard runs this):
// concurrent global batches, global single queries, and per-shard
// queries over one router must not interfere.
func TestGlobalConcurrentScatterBatch(t *testing.T) {
	ds, clusters := fixture(t, 4000, 41, 120)
	coll := ds.Collection
	r := routerOver(t, ds, clusters, 4, 4096)

	queries := make([]vec.Vector, 16)
	for i := range queries {
		queries[i] = coll.Vec(i * 211)
	}
	opts := batchexec.Options{K: 10, Stop: search.ChunkBudget(8)}
	want := make([]search.Result, len(queries))
	if err := r.RunBatchGlobal(queries, opts, want); err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	for g := 0; g < 6; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			switch g % 3 {
			case 0:
				results := make([]search.Result, len(queries))
				if err := r.RunBatchGlobal(queries, opts, results); err != nil {
					t.Error(err)
					return
				}
				for qi := range results {
					if len(results[qi].Neighbors) != len(want[qi].Neighbors) {
						t.Errorf("goroutine %d q%d: %d neighbors != %d",
							g, qi, len(results[qi].Neighbors), len(want[qi].Neighbors))
						return
					}
					for i := range want[qi].Neighbors {
						if results[qi].Neighbors[i] != want[qi].Neighbors[i] {
							t.Errorf("goroutine %d q%d rank %d mismatch", g, qi, i)
							return
						}
					}
				}
			case 1:
				var res Result
				for qi, q := range queries {
					if err := r.SearchGlobalInto(q, search.Options{K: 10, Stop: search.ChunkBudget(8)}, &res); err != nil {
						t.Error(err)
						return
					}
					if res.ChunksRead != want[qi].ChunksRead || res.Elapsed != want[qi].Elapsed {
						t.Errorf("goroutine %d q%d: (%d, %v) != (%d, %v)",
							g, qi, res.ChunksRead, res.Elapsed, want[qi].ChunksRead, want[qi].Elapsed)
						return
					}
				}
			default:
				// Per-shard traffic interleaved with the global traffic:
				// the two disciplines share the shard stores and must not
				// perturb each other.
				var res Result
				for _, q := range queries {
					if err := r.SearchInto(q, search.Options{K: 10, Stop: search.ChunkBudget(2)}, &res); err != nil {
						t.Error(err)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
}
