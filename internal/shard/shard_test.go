package shard

import (
	"path/filepath"
	"sync"
	"testing"
	"time"

	"repro/internal/chunkfile"
	"repro/internal/cluster"
	"repro/internal/imagegen"
	"repro/internal/multiquery"
	"repro/internal/scan"
	"repro/internal/search"
	"repro/internal/search/batchexec"
	"repro/internal/srtree"
	"repro/internal/vec"
)

// fixture builds a collection and an SR-tree clustering for the tests.
func fixture(t testing.TB, n int, seed int64, chunkSize int) (*imagegen.Dataset, []*cluster.Cluster) {
	t.Helper()
	ds := imagegen.MustGenerate(imagegen.DefaultConfig(n, seed))
	tree, err := srtree.Build(ds.Collection, nil, chunkSize, 16)
	if err != nil {
		t.Fatal(err)
	}
	return ds, tree.Chunks()
}

// routerOver partitions the clusters across shards and serves them from
// in-memory stores.
func routerOver(t testing.TB, ds *imagegen.Dataset, clusters []*cluster.Cluster, shards, pageSize int) *Router {
	t.Helper()
	coll := ds.Collection
	assign, err := Partition(clusters, shards, coll.Dims(), pageSize)
	if err != nil {
		t.Fatal(err)
	}
	stores := make([]chunkfile.Store, len(assign))
	for s, idxs := range assign {
		stores[s] = chunkfile.NewMemStore(coll, Select(clusters, idxs), pageSize)
	}
	r, err := NewRouter(stores, nil)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestPartitionBalancedAndDeterministic(t *testing.T) {
	ds, clusters := fixture(t, 6000, 11, 150)
	dims := ds.Collection.Dims()
	const pageSize = 4096

	assign, err := Partition(clusters, 4, dims, pageSize)
	if err != nil {
		t.Fatal(err)
	}
	if len(assign) != 4 {
		t.Fatalf("shards = %d", len(assign))
	}

	// Every cluster assigned exactly once, ascending within each shard.
	seen := make([]int, len(clusters))
	var loads [4]int64
	var maxChunk int64
	for s, idxs := range assign {
		for i, ci := range idxs {
			if i > 0 && idxs[i-1] >= ci {
				t.Fatalf("shard %d not ascending at %d: %v", s, i, idxs)
			}
			seen[ci]++
			b := int64(chunkfile.PaddedBytes(clusters[ci].Count(), dims, pageSize))
			loads[s] += b
			if b > maxChunk {
				maxChunk = b
			}
		}
	}
	for ci, c := range seen {
		if c != 1 {
			t.Fatalf("cluster %d assigned %d times", ci, c)
		}
	}

	// Greedy largest-first keeps the spread within one chunk's weight: the
	// heaviest shard exceeds the lightest by at most the largest chunk.
	minLoad, maxLoad := loads[0], loads[0]
	for _, l := range loads[1:] {
		if l < minLoad {
			minLoad = l
		}
		if l > maxLoad {
			maxLoad = l
		}
	}
	if maxLoad-minLoad > maxChunk {
		t.Fatalf("spread %d bytes > largest chunk %d (loads %v)", maxLoad-minLoad, maxChunk, loads)
	}

	// Deterministic: a second run yields the identical assignment.
	again, err := Partition(clusters, 4, dims, pageSize)
	if err != nil {
		t.Fatal(err)
	}
	for s := range assign {
		if len(assign[s]) != len(again[s]) {
			t.Fatalf("shard %d: %d vs %d clusters across runs", s, len(assign[s]), len(again[s]))
		}
		for i := range assign[s] {
			if assign[s][i] != again[s][i] {
				t.Fatalf("shard %d pos %d: %d vs %d across runs", s, i, assign[s][i], again[s][i])
			}
		}
	}

	// One shard is the identity partition.
	one, err := Partition(clusters, 1, dims, pageSize)
	if err != nil {
		t.Fatal(err)
	}
	if len(one) != 1 || len(one[0]) != len(clusters) {
		t.Fatalf("1-shard partition shape %d/%d", len(one), len(one[0]))
	}
	for i, ci := range one[0] {
		if ci != i {
			t.Fatalf("1-shard partition not identity at %d: %d", i, ci)
		}
	}

	if _, err := Partition(clusters, 0, dims, pageSize); err == nil {
		t.Fatal("0 shards accepted")
	}
}

// stopRules returns the paper's three stop rules at test-sized budgets.
func stopRules() []search.StopRule {
	return []search.StopRule{
		search.ToCompletion{},
		search.ChunkBudget(3),
		search.TimeBudget(80 * time.Millisecond),
	}
}

// TestOneShardMatchesSingleSearcher pins the tentpole equivalence: a
// 1-shard router returns byte-identical results to the plain single-store
// searcher — IDs, distances, ChunksRead, Elapsed, IndexRead and Exact —
// under all three stop rules, on both store implementations.
func TestOneShardMatchesSingleSearcher(t *testing.T) {
	ds, clusters := fixture(t, 5000, 17, 140)
	coll := ds.Collection
	const pageSize = 4096

	dir := t.TempDir()
	cp, ip := filepath.Join(dir, "a.chunk"), filepath.Join(dir, "a.idx")
	if err := chunkfile.Write(coll, clusters, cp, ip, pageSize); err != nil {
		t.Fatal(err)
	}
	if err := chunkfile.SaveSharded(coll, [][]*cluster.Cluster{clusters}, dir, pageSize); err != nil {
		t.Fatal(err)
	}

	type setup struct {
		name   string
		single *search.Searcher
		router *Router
	}
	var setups []setup

	memSingle := search.New(chunkfile.NewMemStore(coll, clusters, pageSize), nil)
	setups = append(setups, setup{"MemStore", memSingle, routerOver(t, ds, clusters, 1, pageSize)})

	fileSingleStore, err := chunkfile.Open(cp, ip)
	if err != nil {
		t.Fatal(err)
	}
	defer fileSingleStore.Close()
	fileShards, _, err := chunkfile.OpenSharded(dir)
	if err != nil {
		t.Fatal(err)
	}
	fileRouter, err := NewRouter([]chunkfile.Store{fileShards[0]}, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer fileRouter.Close()
	setups = append(setups, setup{"FileStore", search.New(fileSingleStore, nil), fileRouter})

	for _, su := range setups {
		for _, stop := range stopRules() {
			var merged Result
			for _, qi := range []int{0, 3, 99, 1234, 4999} {
				q := coll.Vec(qi)
				opts := search.Options{K: 20, Stop: stop}
				want, err := su.single.Search(q, opts)
				if err != nil {
					t.Fatal(err)
				}
				if err := su.router.SearchInto(q, opts, &merged); err != nil {
					t.Fatal(err)
				}
				if merged.ChunksRead != want.ChunksRead || merged.Elapsed != want.Elapsed ||
					merged.IndexRead != want.IndexRead || merged.Exact != want.Exact {
					t.Fatalf("%s %v q%d: (chunks %d, sim %v, idx %v, exact %v) != (%d, %v, %v, %v)",
						su.name, stop, qi, merged.ChunksRead, merged.Elapsed, merged.IndexRead, merged.Exact,
						want.ChunksRead, want.Elapsed, want.IndexRead, want.Exact)
				}
				if len(merged.Neighbors) != len(want.Neighbors) {
					t.Fatalf("%s %v q%d: %d neighbors != %d", su.name, stop, qi, len(merged.Neighbors), len(want.Neighbors))
				}
				for i := range want.Neighbors {
					if merged.Neighbors[i] != want.Neighbors[i] {
						t.Fatalf("%s %v q%d rank %d: %+v != %+v",
							su.name, stop, qi, i, merged.Neighbors[i], want.Neighbors[i])
					}
				}
				if len(merged.PerShard) != 1 || merged.PerShard[0].ChunksRead != want.ChunksRead {
					t.Fatalf("%s %v q%d: PerShard %+v", su.name, stop, qi, merged.PerShard)
				}
			}
		}
	}
}

// TestShardedCompletionMatchesScanOracle pins the global-exactness claim:
// an S-shard run-to-completion search returns exactly the scan oracle's
// k-NN (IDs, order, bit-identical distances), with Simulated the max and
// ChunksRead the sum of the per-shard outcomes.
func TestShardedCompletionMatchesScanOracle(t *testing.T) {
	ds, clusters := fixture(t, 5000, 23, 130)
	coll := ds.Collection
	const pageSize = 4096
	const k = 25

	for _, shards := range []int{2, 4, 7} {
		r := routerOver(t, ds, clusters, shards, pageSize)
		perShard := make([]*search.Searcher, r.Shards())
		for s := range perShard {
			perShard[s] = search.New(r.Store(s), nil)
		}
		var res Result
		for _, qi := range []int{1, 42, 777, 3210, 4999} {
			q := coll.Vec(qi)
			if err := r.SearchInto(q, search.Options{K: k}, &res); err != nil {
				t.Fatal(err)
			}
			if !res.Exact {
				t.Fatalf("S=%d q%d: completion search not exact", shards, qi)
			}
			truth := scan.KNN(coll, q, k)
			if len(res.Neighbors) != len(truth) {
				t.Fatalf("S=%d q%d: %d neighbors vs oracle %d", shards, qi, len(res.Neighbors), len(truth))
			}
			for i := range truth {
				if res.Neighbors[i] != truth[i] {
					t.Fatalf("S=%d q%d rank %d: %+v != oracle %+v", shards, qi, i, res.Neighbors[i], truth[i])
				}
			}

			// Cost model: sum of chunks, max of simulated machines, against
			// independently run per-shard searches.
			sumChunks, maxElapsed := 0, time.Duration(0)
			for s := range perShard {
				sr, err := perShard[s].Search(q, search.Options{K: k})
				if err != nil {
					t.Fatal(err)
				}
				sumChunks += sr.ChunksRead
				if sr.Elapsed > maxElapsed {
					maxElapsed = sr.Elapsed
				}
				if res.PerShard[s].ChunksRead != sr.ChunksRead || res.PerShard[s].Elapsed != sr.Elapsed {
					t.Fatalf("S=%d q%d shard %d: PerShard (%d, %v) != direct (%d, %v)",
						shards, qi, s, res.PerShard[s].ChunksRead, res.PerShard[s].Elapsed, sr.ChunksRead, sr.Elapsed)
				}
			}
			if res.ChunksRead != sumChunks {
				t.Fatalf("S=%d q%d: ChunksRead %d != per-shard sum %d", shards, qi, res.ChunksRead, sumChunks)
			}
			if res.Elapsed != maxElapsed {
				t.Fatalf("S=%d q%d: Elapsed %v != per-shard max %v", shards, qi, res.Elapsed, maxElapsed)
			}
		}
	}
}

// TestShardedBatchMatchesScatterSearch pins the batch path to the
// single-query scatter path: RunBatch outcomes are byte-identical to
// per-query SearchInto merges under every stop rule.
func TestShardedBatchMatchesScatterSearch(t *testing.T) {
	ds, clusters := fixture(t, 5000, 31, 120)
	coll := ds.Collection
	r := routerOver(t, ds, clusters, 3, 4096)

	queries := make([]vec.Vector, 24)
	for i := range queries {
		queries[i] = coll.Vec(i * 191)
	}
	results := make([]search.Result, len(queries))
	for _, stop := range stopRules() {
		if err := r.RunBatch(queries, batchexec.Options{K: 15, Stop: stop}, results); err != nil {
			t.Fatal(err)
		}
		var want Result
		for qi, q := range queries {
			if err := r.SearchInto(q, search.Options{K: 15, Stop: stop}, &want); err != nil {
				t.Fatal(err)
			}
			got := &results[qi]
			if got.ChunksRead != want.ChunksRead || got.Elapsed != want.Elapsed ||
				got.IndexRead != want.IndexRead || got.Exact != want.Exact {
				t.Fatalf("%v q%d: (chunks %d, sim %v, idx %v, exact %v) != (%d, %v, %v, %v)",
					stop, qi, got.ChunksRead, got.Elapsed, got.IndexRead, got.Exact,
					want.ChunksRead, want.Elapsed, want.IndexRead, want.Exact)
			}
			if len(got.Neighbors) != len(want.Neighbors) {
				t.Fatalf("%v q%d: %d neighbors != %d", stop, qi, len(got.Neighbors), len(want.Neighbors))
			}
			for i := range want.Neighbors {
				if got.Neighbors[i] != want.Neighbors[i] {
					t.Fatalf("%v q%d rank %d: %+v != %+v", stop, qi, i, got.Neighbors[i], want.Neighbors[i])
				}
			}
		}
	}
}

// TestShardedMultiQueryMatchesSingleStore pins the multi-descriptor path:
// a 1-shard router scores images identically to the single-store
// multiquery searcher, and an S-shard router still agrees on the exact
// (completion) per-descriptor searches.
func TestShardedMultiQueryMatchesSingleStore(t *testing.T) {
	ds, clusters := fixture(t, 4000, 37, 110)
	coll := ds.Collection
	const pageSize = 4096

	bag := make([]vec.Vector, 30)
	for i := range bag {
		bag[i] = coll.Vec(i * 97)
	}
	single := multiquery.New(chunkfile.NewMemStore(coll, clusters, pageSize))

	check := func(name string, got, want *multiquery.Result) {
		t.Helper()
		if got.Descriptors != want.Descriptors {
			t.Fatalf("%s: descriptors %d != %d", name, got.Descriptors, want.Descriptors)
		}
		if len(got.Images) != len(want.Images) {
			t.Fatalf("%s: %d images != %d", name, len(got.Images), len(want.Images))
		}
		for i := range want.Images {
			if got.Images[i] != want.Images[i] {
				t.Fatalf("%s image %d: %+v != %+v", name, i, got.Images[i], want.Images[i])
			}
		}
	}

	// 1 shard, budgeted: byte-identical, including simulated totals.
	r1 := routerOver(t, ds, clusters, 1, pageSize)
	opts := multiquery.Options{K: 8, Stop: search.ChunkBudget(3), RankWeighted: true}
	want, err := single.Query(bag, opts)
	if err != nil {
		t.Fatal(err)
	}
	got, err := r1.MultiQuery(bag, opts)
	if err != nil {
		t.Fatal(err)
	}
	check("1-shard", got, want)
	if got.Simulated != want.Simulated || got.ChunksRead != want.ChunksRead {
		t.Fatalf("1-shard: (sim %v, chunks %d) != (%v, %d)", got.Simulated, got.ChunksRead, want.Simulated, want.ChunksRead)
	}

	// 4 shards, run to completion: per-descriptor results are the exact
	// global k-NN on both sides, so the image ranking matches.
	r4 := routerOver(t, ds, clusters, 4, pageSize)
	exact := multiquery.Options{K: 8, Stop: search.ToCompletion{}}
	want, err = single.Query(bag, exact)
	if err != nil {
		t.Fatal(err)
	}
	got, err = r4.MultiQuery(bag, exact)
	if err != nil {
		t.Fatal(err)
	}
	check("4-shard completion", got, want)
}

// TestShardedConcurrentScatter exercises the scatter-gather paths from
// many goroutines at once (the -race CI shard runs this): concurrent
// batches and single queries over one router must not interfere.
func TestShardedConcurrentScatter(t *testing.T) {
	ds, clusters := fixture(t, 4000, 41, 120)
	coll := ds.Collection
	r := routerOver(t, ds, clusters, 4, 4096)

	queries := make([]vec.Vector, 16)
	for i := range queries {
		queries[i] = coll.Vec(i * 211)
	}
	want := make([]search.Result, len(queries))
	if err := r.RunBatch(queries, batchexec.Options{K: 10, Stop: search.ChunkBudget(4)}, want); err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	for g := 0; g < 6; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			if g%2 == 0 {
				results := make([]search.Result, len(queries))
				if err := r.RunBatch(queries, batchexec.Options{K: 10, Stop: search.ChunkBudget(4)}, results); err != nil {
					t.Error(err)
					return
				}
				for qi := range results {
					if len(results[qi].Neighbors) != len(want[qi].Neighbors) {
						t.Errorf("goroutine %d q%d: %d neighbors != %d",
							g, qi, len(results[qi].Neighbors), len(want[qi].Neighbors))
						return
					}
					for i := range want[qi].Neighbors {
						if results[qi].Neighbors[i] != want[qi].Neighbors[i] {
							t.Errorf("goroutine %d q%d rank %d mismatch", g, qi, i)
							return
						}
					}
				}
			} else {
				var res Result
				for qi, q := range queries {
					if err := r.SearchInto(q, search.Options{K: 10, Stop: search.ChunkBudget(4)}, &res); err != nil {
						t.Error(err)
						return
					}
					if res.ChunksRead != want[qi].ChunksRead || res.Elapsed != want[qi].Elapsed {
						t.Errorf("goroutine %d q%d: (%d, %v) != (%d, %v)",
							g, qi, res.ChunksRead, res.Elapsed, want[qi].ChunksRead, want[qi].Elapsed)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
}

// TestShardedEdgeCases covers empty shards (more shards than clusters),
// dimension validation, and result-length validation.
func TestShardedEdgeCases(t *testing.T) {
	ds, clusters := fixture(t, 600, 47, 200)
	coll := ds.Collection

	// More shards than clusters: the surplus shards are empty but every
	// query still completes, exactly.
	r := routerOver(t, ds, clusters, len(clusters)+2, 4096)
	res, err := r.Search(coll.Vec(5), search.Options{K: 10})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Exact || len(res.Neighbors) != 10 {
		t.Fatalf("empty-shard search: exact=%v neighbors=%d", res.Exact, len(res.Neighbors))
	}
	truth := scan.KNN(coll, coll.Vec(5), 10)
	for i := range truth {
		if res.Neighbors[i] != truth[i] {
			t.Fatalf("empty-shard rank %d: %+v != %+v", i, res.Neighbors[i], truth[i])
		}
	}

	if _, err := r.Search(make(vec.Vector, 3), search.Options{K: 5}); err == nil {
		t.Fatal("bad dims accepted")
	}
	if err := r.RunBatch(make([]vec.Vector, 2), batchexec.Options{}, make([]search.Result, 1)); err == nil {
		t.Fatal("mismatched results length accepted")
	}
	if err := r.RunBatch(nil, batchexec.Options{}, nil); err != nil {
		t.Fatalf("empty batch: %v", err)
	}
	if _, err := NewRouter(nil, nil); err == nil {
		t.Fatal("empty router accepted")
	}
	if _, err := r.MultiQuery(nil, multiquery.Options{}); err == nil {
		t.Fatal("empty multi-descriptor query accepted")
	}
}
