package shard

import (
	"testing"

	"repro/internal/faultstore"
	"repro/internal/search"
)

// TestRecoveryAfterKill pins the health-switch recovery contract that
// the serving layer's prober is built on: after a shard dies and is
// held down, ProbeShard keeps reporting it dead (so MarkShardUp alone
// cannot resurrect a corpse for more than one read), and once the
// replica actually returns — Revive — a probe succeeds, MarkShardUp
// restores routing, and answers match the healthy baseline again.
func TestRecoveryAfterKill(t *testing.T) {
	ds, clusters := fixture(t, 4000, 83, 130)
	coll := ds.Collection
	const shards, pageSize, k, dead = 3, 4096, 20, 1

	r, faults, _ := replicatedRouterOver(t, ds, clusters, shards, 1, pageSize, faultstore.Config{})
	queryIdx := []int{5, 777, 2400, 3900}

	// Healthy baseline before any faults.
	healthy := make([]Result, len(queryIdx))
	for qi, pos := range queryIdx {
		if err := r.SearchInto(coll.Vec(pos), search.Options{K: k}, &healthy[qi]); err != nil {
			t.Fatal(err)
		}
	}

	faults[dead].Kill()
	var res Result
	if err := r.SearchInto(coll.Vec(queryIdx[0]), search.Options{K: k}, &res); err != nil {
		t.Fatal(err)
	}
	if !res.Degraded || !r.ShardDown(dead) {
		t.Fatalf("kill not discovered: degraded %v, down %v", res.Degraded, r.ShardDown(dead))
	}

	// Probing a dead shard reports the failure without flipping health.
	if err := r.ProbeShard(dead); err == nil {
		t.Fatal("ProbeShard on a dead shard returned nil")
	}
	if !r.ShardDown(dead) {
		t.Fatal("ProbeShard changed health state")
	}

	// Premature recovery: MarkShardUp while the store is still dead. The
	// router must keep serving — the very next read re-discovers the
	// corpse and the result is still honestly degraded.
	r.MarkShardUp(dead)
	if err := r.SearchInto(coll.Vec(queryIdx[1]), search.Options{K: k}, &res); err != nil {
		t.Fatal(err)
	}
	if !res.Degraded || res.Exact {
		t.Fatalf("premature MarkShardUp produced a non-degraded answer: degraded %v, exact %v", res.Degraded, res.Exact)
	}
	if !r.ShardDown(dead) {
		t.Fatal("still-dead shard was not re-marked down after MarkShardUp")
	}

	// ResetHealth likewise cannot resurrect a corpse: flags clear, then
	// the next query re-discovers the dead shard and degrades.
	r.ResetHealth()
	if r.DownShards() != 0 {
		t.Fatalf("DownShards %d after ResetHealth", r.DownShards())
	}
	if err := r.SearchInto(coll.Vec(queryIdx[2]), search.Options{K: k}, &res); err != nil {
		t.Fatal(err)
	}
	if !res.Degraded || !r.ShardDown(dead) {
		t.Fatalf("dead shard not rediscovered after ResetHealth: degraded %v, down %v", res.Degraded, r.ShardDown(dead))
	}

	// Real recovery: the store comes back, a probe confirms it, and
	// MarkShardUp restores full-fleet answers identical to the baseline.
	faults[dead].Revive()
	if err := r.ProbeShard(dead); err != nil {
		t.Fatalf("ProbeShard after Revive: %v", err)
	}
	r.MarkShardUp(dead)
	if r.DownShards() != 0 {
		t.Fatalf("DownShards %d after recovery", r.DownShards())
	}
	for qi, pos := range queryIdx {
		if err := r.SearchInto(coll.Vec(pos), search.Options{K: k}, &res); err != nil {
			t.Fatal(err)
		}
		if res.Degraded || res.ChunksSkipped != 0 || res.ShardsDown != 0 {
			t.Fatalf("q%d still degraded after recovery: %+v", pos, res)
		}
		sameAnswer(t, "recovered", &res, &healthy[qi])
	}
}

// TestProbeShardIsControlPlane pins that probing bills nothing to the
// simulated cost model and bypasses failover: it reads exactly one
// physical chunk from the probed shard's own store, even when replicas
// elsewhere could mask the failure.
func TestProbeShardIsControlPlane(t *testing.T) {
	ds, clusters := fixture(t, 3000, 89, 130)
	const shards, pageSize = 3, 4096

	r, faults, _ := replicatedRouterOver(t, ds, clusters, shards, 2, pageSize, faultstore.Config{})
	before := faults[0].Reads()
	if err := r.ProbeShard(0); err != nil {
		t.Fatalf("probe healthy shard: %v", err)
	}
	if got := faults[0].Reads() - before; got != 1 {
		t.Fatalf("probe made %d reads, want exactly 1", got)
	}

	// With R=2 a search would fail over around the dead shard; the probe
	// must not — it reports the local store's own failure.
	faults[0].Kill()
	if err := r.ProbeShard(0); err == nil {
		t.Fatal("probe of a dead shard was masked (failover leaked into control plane)")
	}
	if r.ShardDown(0) {
		t.Fatal("probe changed health state")
	}
	if err := r.ProbeShard(-1); err == nil {
		t.Fatal("probe of shard -1 accepted")
	}
	if err := r.ProbeShard(shards); err == nil {
		t.Fatal("probe of out-of-range shard accepted")
	}
}
