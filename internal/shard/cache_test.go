package shard

import (
	"testing"

	"repro/internal/chunkfile"
	"repro/internal/cluster"
	"repro/internal/faultstore"
	"repro/internal/imagegen"
	"repro/internal/search"
	"repro/internal/search/batchexec"
	"repro/internal/vec"
)

// cachedRouterOver is routerOver with a decoded-chunk cache configured.
func cachedRouterOver(t testing.TB, ds *imagegen.Dataset, clusters []*cluster.Cluster, shards, pageSize int, cfg CacheConfig) *Router {
	t.Helper()
	coll := ds.Collection
	assign, err := Partition(clusters, shards, coll.Dims(), pageSize)
	if err != nil {
		t.Fatal(err)
	}
	stores := make([]chunkfile.Store, len(assign))
	for s, idxs := range assign {
		stores[s] = chunkfile.NewMemStore(coll, Select(clusters, idxs), pageSize)
	}
	r, err := NewRouterCached(stores, nil, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

// sameResult asserts byte-identity of the full merged outcome, including
// the simulated costs the cache must not perturb.
func sameResult(t *testing.T, label string, got, want *Result) {
	t.Helper()
	sameAnswer(t, label, got, want)
	if got.Elapsed != want.Elapsed || got.IndexRead != want.IndexRead {
		t.Fatalf("%s: simulated times (%v, %v) != uncached (%v, %v)",
			label, got.Elapsed, got.IndexRead, want.Elapsed, want.IndexRead)
	}
	if got.ChunksSkipped != want.ChunksSkipped || got.Degraded != want.Degraded {
		t.Fatalf("%s: (skipped %d, degraded %v) != uncached (skipped %d, degraded %v)",
			label, got.ChunksSkipped, got.Degraded, want.ChunksSkipped, want.Degraded)
	}
}

// TestCachedRouterMatchesUncached pins the tentpole equivalence at the
// router: with the decoded-chunk cache on — either discipline — every
// path (per-shard scatter, global budget, batch on both) returns results
// byte-identical to the uncached router, including Elapsed and
// ChunksRead, under all three stop rules, on the cold pass and again on
// the fully warm pass.
func TestCachedRouterMatchesUncached(t *testing.T) {
	ds, clusters := fixture(t, 4000, 29, 130)
	coll := ds.Collection
	const shards, pageSize, k = 3, 4096, 15

	plain := routerOver(t, ds, clusters, shards, pageSize)
	defer plain.Close()
	queryIdx := []int{2, 444, 1717, 3999}
	queries := make([]vec.Vector, len(queryIdx))
	for i, pos := range queryIdx {
		queries[i] = coll.Vec(pos)
	}

	for _, disc := range []struct {
		name string
		cfg  CacheConfig
	}{
		{"shared", CacheConfig{Bytes: 64 << 20}},
		{"pershard", CacheConfig{Bytes: 16 << 20, PerShard: true}},
	} {
		cached := cachedRouterOver(t, ds, clusters, shards, pageSize, disc.cfg)
		for _, stop := range stopRules() {
			opts := search.Options{K: k, Stop: stop}
			for pass := 0; pass < 2; pass++ {
				for _, q := range queries {
					var want, got Result
					if err := plain.SearchInto(q, opts, &want); err != nil {
						t.Fatal(err)
					}
					if err := cached.SearchInto(q, opts, &got); err != nil {
						t.Fatal(err)
					}
					sameResult(t, disc.name+"/search", &got, &want)

					if err := plain.SearchGlobalInto(q, opts, &want); err != nil {
						t.Fatal(err)
					}
					if err := cached.SearchGlobalInto(q, opts, &got); err != nil {
						t.Fatal(err)
					}
					sameResult(t, disc.name+"/global", &got, &want)
				}

				bopts := batchexec.Options{K: k, Stop: stop}
				want := make([]search.Result, len(queries))
				got := make([]search.Result, len(queries))
				if err := plain.RunBatch(queries, bopts, want); err != nil {
					t.Fatal(err)
				}
				if err := cached.RunBatch(queries, bopts, got); err != nil {
					t.Fatal(err)
				}
				for qi := range queries {
					sameSearchResult(t, disc.name+"/batch", &got[qi], &want[qi])
				}
				if err := plain.RunBatchGlobal(queries, bopts, want); err != nil {
					t.Fatal(err)
				}
				if err := cached.RunBatchGlobal(queries, bopts, got); err != nil {
					t.Fatal(err)
				}
				for qi := range queries {
					sameSearchResult(t, disc.name+"/batchglobal", &got[qi], &want[qi])
				}
			}
		}
		st := cached.CacheStats()
		if !st.Enabled || st.Hits == 0 || st.Misses == 0 {
			t.Fatalf("%s: warm cache stats %+v", disc.name, st)
		}
		if err := cached.Close(); err != nil {
			t.Fatal(err)
		}
	}

	if st := plain.CacheStats(); st.Enabled || st.Hits != 0 {
		t.Fatalf("uncached router reports cache stats %+v", st)
	}
}

// sameSearchResult asserts byte-identity of one query's batch outcome.
func sameSearchResult(t *testing.T, label string, got, want *search.Result) {
	t.Helper()
	if got.Exact != want.Exact || got.ChunksRead != want.ChunksRead ||
		got.Elapsed != want.Elapsed || got.IndexRead != want.IndexRead {
		t.Fatalf("%s: (exact %v, chunks %d, %v, %v) != uncached (exact %v, chunks %d, %v, %v)",
			label, got.Exact, got.ChunksRead, got.Elapsed, got.IndexRead,
			want.Exact, want.ChunksRead, want.Elapsed, want.IndexRead)
	}
	if len(got.Neighbors) != len(want.Neighbors) {
		t.Fatalf("%s: %d neighbors != %d", label, len(got.Neighbors), len(want.Neighbors))
	}
	for i := range want.Neighbors {
		if got.Neighbors[i] != want.Neighbors[i] {
			t.Fatalf("%s rank %d: %+v != %+v", label, i, got.Neighbors[i], want.Neighbors[i])
		}
	}
}

// TestRouterCacheStatsAccounting pins the aggregation rule: a shared
// cache's budget appears once however many shards front it, a per-shard
// discipline's budget appears once per shard.
func TestRouterCacheStatsAccounting(t *testing.T) {
	ds, clusters := fixture(t, 2000, 31, 120)
	const shards, pageSize, budget = 3, 4096, int64(8 << 20)

	shared := cachedRouterOver(t, ds, clusters, shards, pageSize, CacheConfig{Bytes: budget})
	defer shared.Close()
	if st := shared.CacheStats(); st.MaxBytes != budget {
		t.Fatalf("shared MaxBytes %d, want %d (counted once)", st.MaxBytes, budget)
	}
	per := cachedRouterOver(t, ds, clusters, shards, pageSize, CacheConfig{Bytes: budget, PerShard: true})
	defer per.Close()
	if st := per.CacheStats(); st.MaxBytes != int64(shards)*budget {
		t.Fatalf("per-shard MaxBytes %d, want %d", st.MaxBytes, int64(shards)*budget)
	}
}

// TestRouterCacheRecovery pins the health/cache interaction on the
// replicated read path with fault injection underneath:
//
//   - a warm cache serves hits without consulting the physical store
//     (the injector's read ordinal stays put);
//   - ProbeShard remains control-plane: it reads the physical store even
//     when every chunk is cached;
//   - a shard held down is not served from cache — the down check
//     precedes the read, so degraded results stay honest;
//   - MarkShardUp drops the recovered shard's cached rows: the next
//     query re-reads the replaced disk instead of serving stale rows,
//     and answers match the healthy baseline.
func TestRouterCacheRecovery(t *testing.T) {
	ds, clusters := fixture(t, 3000, 37, 130)
	coll := ds.Collection
	const shards, pageSize, k, dead = 3, 4096, 15, 1

	p, err := PartitionReplicated(clusters, shards, 1, coll.Dims(), pageSize, nil)
	if err != nil {
		t.Fatal(err)
	}
	stores := make([]chunkfile.Store, shards)
	faults := make([]*faultstore.Store, shards)
	for s := 0; s < shards; s++ {
		physical := append(append([]int(nil), p.Primary[s]...), p.Extra[s]...)
		faults[s] = faultstore.Wrap(chunkfile.NewMemStore(coll, Select(clusters, physical), pageSize), faultstore.Config{})
		stores[s] = faults[s]
	}
	r, err := NewReplicatedRouterCached(stores, p, nil, CacheConfig{Bytes: 64 << 20})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	q := coll.Vec(42)
	opts := search.Options{K: k}
	var healthy, res Result
	if err := r.SearchInto(q, opts, &healthy); err != nil { // cold: fills the cache
		t.Fatal(err)
	}

	// Warm: the same query is all hits — no physical reads anywhere.
	before := make([]int64, shards)
	for s := range before {
		before[s] = faults[s].Reads()
	}
	if err := r.SearchInto(q, opts, &res); err != nil {
		t.Fatal(err)
	}
	sameResult(t, "warm", &res, &healthy)
	for s := range before {
		if got := faults[s].Reads(); got != before[s] {
			t.Fatalf("warm query consulted shard %d's store (%d -> %d reads)", s, before[s], got)
		}
	}

	// Probing stays control-plane: exactly one physical read.
	if err := r.ProbeShard(dead); err != nil {
		t.Fatal(err)
	}
	if got := faults[dead].Reads() - before[dead]; got != 1 {
		t.Fatalf("probe made %d physical reads, want 1", got)
	}

	// A down shard is never served from cache: with R=1 its chunks are
	// skipped and the result degrades, however warm the cache is.
	faults[dead].Kill()
	r.MarkShardDown(dead)
	if err := r.SearchInto(q, opts, &res); err != nil {
		t.Fatal(err)
	}
	if !res.Degraded || res.ChunksSkipped == 0 {
		t.Fatalf("down shard served from cache: %+v", res)
	}

	// Recovery invalidates: the revived disk is re-read, not the cache.
	faults[dead].Revive()
	readsAtRevive := faults[dead].Reads()
	r.MarkShardUp(dead)
	if err := r.SearchInto(q, opts, &res); err != nil {
		t.Fatal(err)
	}
	sameAnswer(t, "recovered", &res, &healthy)
	if faults[dead].Reads() == readsAtRevive {
		t.Fatal("recovered shard still served from the pre-death cache (stale rows)")
	}
}
