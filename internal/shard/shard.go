package shard

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/chunkcache"
	"repro/internal/chunkfile"
	"repro/internal/knn"
	"repro/internal/multiquery"
	"repro/internal/search"
	"repro/internal/search/batchexec"
	"repro/internal/simdisk"
	"repro/internal/vec"
)

// Typed failure-path errors. ErrAllReplicasDown wraps
// chunkfile.ErrUnavailable, so the search layers recognize a chunk with
// no live replica as skippable and complete the query in degraded mode.
var (
	// ErrShardDown marks a shard whose store failed permanently: the
	// router's health tracking has taken it out of rotation and no read
	// is routed to it until ResetHealth.
	ErrShardDown = errors.New("shard: shard down")
	// ErrAllReplicasDown reports that a chunk could not be served by any
	// of its R placements. It wraps chunkfile.ErrUnavailable: queries
	// skip the chunk and degrade instead of aborting.
	ErrAllReplicasDown = fmt.Errorf("shard: all replicas down: %w", chunkfile.ErrUnavailable)
)

// ShardError reports which shard of a scatter failed. When several shards
// fail in one scatter, the lowest shard index is reported.
type ShardError struct {
	Shard int
	Err   error
}

// Error implements the error interface.
func (e *ShardError) Error() string { return fmt.Sprintf("shard: shard %d: %v", e.Shard, e.Err) }

// Unwrap returns the underlying error.
func (e *ShardError) Unwrap() error { return e.Err }

// ShardCost is one shard's share of a merged query outcome: the chunks
// that shard actually served and its own simulated machine's elapsed
// time (its index read plus its served chunks, in its charge order). In
// the per-shard modes Exact is that shard's own certificate; in the
// global-budget modes no shard holds an independent certificate, so
// Exact mirrors the merged result's.
type ShardCost struct {
	ChunksRead int
	// ChunksSkipped counts this shard's logical chunks no live replica
	// could serve.
	ChunksSkipped int
	Elapsed       time.Duration // this shard's simulated machine
	Exact         bool
}

// Result is the merged outcome of one scatter-gather query, under either
// budget discipline.
type Result struct {
	Neighbors  []knn.Neighbor // global top k, ordered by (distance, ascending ID)
	ChunksRead int            // sum over shards (in global mode: the total budget spent)
	// Elapsed is the simulated time: the max over the shards' machines,
	// since the shards run in parallel. IndexRead likewise.
	Elapsed   time.Duration
	IndexRead time.Duration
	Wall      time.Duration // real time of the scatter-gather call
	// Exact reports that the result is provably the exact global k-NN: in
	// per-shard mode every shard's certificate held; in global mode the
	// merged suffix-bound certificate held. A degraded result is never
	// exact.
	Exact bool
	// Degraded reports that at least one chunk had no live replica and
	// was skipped: the result covers the reachable data only.
	Degraded bool
	// ChunksSkipped is the total number of logical chunks skipped as
	// unavailable across the shards.
	ChunksSkipped int
	// ShardsDown is the number of shards the router's health tracking
	// held down when the query finished.
	ShardsDown int
	// PerShard is the per-shard breakdown in shard order; the slice is
	// reused across calls on a recycled Result.
	PerShard []ShardCost
}

// routedShard is one shard's serving stack: the physical store, the
// data-plane store reads actually go through (the physical store behind a
// decoded-chunk cache when one is configured), the logical view the
// queries run over (the primary prefix of the physical store, with every
// read routed through the router's replicated read path), and the two
// execution paths over that view.
type routedShard struct {
	store chunkfile.Store
	// read is the store attemptRead serves from: cached wraps store when
	// a cache is configured, else read == store. Control-plane reads
	// (ProbeShard) always go to the raw store, so probing observes the
	// disk, not the cache.
	read     chunkfile.Store
	cached   *chunkcache.CachingStore // non-nil iff caching is on; == read then
	view     *shardView
	searcher *search.Searcher
	engine   *batchexec.Engine
}

// shardView presents shard s's logical chunk index — its primary chunks
// only — as a chunkfile.Store whose ReadChunk goes through the router's
// replicated, health-aware read path. Searchers and engines run over the
// view, so replica chunks (the physical suffix) are never ranked or
// scanned directly and merged neighbor lists stay duplicate-free; the
// replicas only serve failovers.
type shardView struct {
	r     *Router
	shard int
	metas []chunkfile.Meta // primary prefix of the physical store's metas
}

var _ chunkfile.Store = (*shardView)(nil)

// Dims implements chunkfile.Store.
func (v *shardView) Dims() int { return v.r.dims }

// Meta implements chunkfile.Store: the shard's logical chunk index.
// Callers must not modify it.
func (v *shardView) Meta() []chunkfile.Meta { return v.metas }

// ReadChunk implements chunkfile.Store via the router's replicated read
// path: retry on transient errors, fail over to the least-loaded live
// replica, report chunkfile.ErrUnavailable (wrapped in
// ErrAllReplicasDown) when no placement can serve the chunk. The
// simulated cost of failed attempts is returned in data.Stall per the
// chunkfile.Data contract.
func (v *shardView) ReadChunk(i int, data *chunkfile.Data) error {
	return v.r.readChunk(v.shard, i, data)
}

// Close implements chunkfile.Store as a no-op: the Router owns the
// physical stores and closes them in Router.Close.
func (v *shardView) Close() error { return nil }

// Machines implements chunkfile.MachineRouter: with the router's
// spread-reads policy on, a read through this view may be served by any
// machine of the fleet, and the view's own shard is the owner every
// stall bills to. With spread off it reports a single machine, which
// disables per-machine accounting and keeps the spread-off search paths
// byte-identical to the pre-spread router.
func (v *shardView) Machines() (count, owner int) {
	if v.r.spread.Load() {
		return len(v.r.shards), v.shard
	}
	return 1, v.shard
}

// Router serves queries scatter-gather across a set of shards. It is safe
// for concurrent use.
//
// Two budget disciplines are offered, with the same per-shard cost model
// (one simulated 2005 machine per shard) underneath:
//
//   - Per-shard (Search, RunBatch, MultiQuery): every shard runs the
//     paper's algorithm independently, so the stop rule's budget is spent
//     once per shard — S shards at ChunkBudget(b) read up to S×b chunks.
//   - Global (SearchGlobal, RunBatchGlobal, MultiQueryGlobal): the
//     shards' ranked chunk lists merge into one global centroid-rank
//     order, and the stop rule spends a single total budget across the
//     fleet — ChunkBudget(B) reads exactly min(B, total) chunks. See
//     global.go and DESIGN.md §7.
type Router struct {
	shards    []routedShard
	dims      int
	model     *simdisk.Model // resolved default model for the global paths
	placement *Placement
	// Health state: down[s] is sticky-true once shard s's store failed
	// permanently, loads[s] counts the chunk reads shard s has served
	// (the failover path's least-loaded replica choice), downCount is the
	// number of down shards.
	down      []atomic.Bool
	loads     []atomic.Int64
	downCount atomic.Int32
	// Spread-reads policy state (SetSpreadReads): when on, readChunk
	// picks among all live copies by billed simulated load instead of
	// defaulting to the primary, and the search layers keep per-machine
	// serving ledgers the merges fold into Simulated. billed[s] is the
	// estimator: the simulated nanoseconds of the reads shard s is
	// serving or has served (charged before the read — so an in-flight
	// read already repels the next routing choice — and rolled back if
	// the read fails over).
	spread atomic.Bool
	billed []atomic.Int64
	// gstore is the virtual concatenated store the global-budget mode
	// ranks and reads through; gengine is the chunk-major batch engine
	// over it, configured per run with the chunk→shard machine mapping.
	gstore  *globalStore
	gengine *batchexec.Engine
	// caches holds the distinct decoded-chunk caches behind the shards'
	// read stores: one shared cache in the global discipline, one per
	// shard in the per-shard discipline, empty when caching is off.
	caches  []*chunkcache.Cache
	scratch sync.Pool // *scatter
	gpool   sync.Pool // *gscratch: global single-query state
	mq      sync.Pool // *[]search.Result: multi-descriptor result arena
}

// CacheConfig configures the router's decoded-chunk cache (see
// internal/chunkcache). The zero value disables caching; a disabled
// cache changes nothing — results, simulated times, and counters are
// byte-identical with or without it.
type CacheConfig struct {
	// Bytes is the cache budget in bytes of decoded rows. In the shared
	// discipline (PerShard false) one cache of Bytes fronts every shard's
	// store — the budget is global, hot shards win it. Zero disables
	// caching.
	Bytes int64
	// PerShard gives every shard its own independent cache of Bytes
	// instead — the discipline matching the cost model's one-machine-per-
	// shard story, where each machine's RAM is its own.
	PerShard bool
}

// scatter is the pooled per-call state of one scatter-gather: the
// per-shard result slots, the per-shard merge cursors, and the error
// slots (one per shard, so concurrent shard goroutines never contend).
type scatter struct {
	single []search.Result   // one slot per shard (single-query scatter)
	batch  [][]search.Result // one arena per shard (batch scatter)
	rows   []*search.Result  // merge view: one shard's result for one query
	cur    []int             // merge cursors, one per shard
	times  []time.Duration   // folded spread-reads clocks, one per shard
	errs   []error
}

// NewRouter builds a Router over one store per shard, unreplicated: every
// store's chunks are all primary (R=1), so a chunk whose shard dies has
// no replica and queries over it degrade. A nil model selects the
// calibrated 2005 model for every shard's machine.
func NewRouter(stores []chunkfile.Store, model *simdisk.Model) (*Router, error) {
	return NewRouterCached(stores, model, CacheConfig{})
}

// NewRouterCached is NewRouter with a decoded-chunk cache in front of the
// shards' stores, per the cache configuration.
func NewRouterCached(stores []chunkfile.Store, model *simdisk.Model, cache CacheConfig) (*Router, error) {
	if len(stores) == 0 {
		return nil, errors.New("shard: no stores")
	}
	p := &Placement{
		R:          1,
		NumPrimary: make([]int, len(stores)),
		Replicas:   make([][][]ChunkLoc, len(stores)),
	}
	for s, st := range stores {
		p.NumPrimary[s] = len(st.Meta())
		p.Replicas[s] = make([][]ChunkLoc, len(st.Meta()))
	}
	return NewReplicatedRouterCached(stores, p, model, cache)
}

// NewReplicatedRouter builds a Router over one physical store per shard
// and the placement describing each store's primary prefix and the
// replica locations of every logical chunk (see PartitionReplicated).
// Queries run over the logical views; replicas serve failovers. A nil
// model selects the calibrated 2005 model for every shard's machine.
func NewReplicatedRouter(stores []chunkfile.Store, placement *Placement, model *simdisk.Model) (*Router, error) {
	return NewReplicatedRouterCached(stores, placement, model, CacheConfig{})
}

// NewReplicatedRouterCached is NewReplicatedRouter with a decoded-chunk
// cache in front of the shards' physical stores, per the cache
// configuration. The cache serves the replicated read path only; probes
// and direct Store(i) access always observe the disk.
func NewReplicatedRouterCached(stores []chunkfile.Store, placement *Placement, model *simdisk.Model, cache CacheConfig) (*Router, error) {
	return NewReplicatedRouterWith(stores, placement, model, RouterOptions{Cache: cache})
}

// RouterOptions bundles the optional knobs of a replicated router.
type RouterOptions struct {
	// Cache configures the decoded-chunk cache (see CacheConfig).
	Cache CacheConfig
	// SpreadReads starts the router with the spread-reads routing policy
	// on (see Router.SetSpreadReads).
	SpreadReads bool
}

// NewReplicatedRouterWith is NewReplicatedRouter with options.
func NewReplicatedRouterWith(stores []chunkfile.Store, placement *Placement, model *simdisk.Model, opts RouterOptions) (*Router, error) {
	cache := opts.Cache
	if len(stores) == 0 {
		return nil, errors.New("shard: no stores")
	}
	if err := validatePlacement(stores, placement); err != nil {
		return nil, err
	}
	if model == nil {
		model = simdisk.Default2005()
	}
	dims := stores[0].Dims()
	r := &Router{dims: dims, model: model, placement: placement}
	r.down = make([]atomic.Bool, len(stores))
	r.loads = make([]atomic.Int64, len(stores))
	r.billed = make([]atomic.Int64, len(stores))
	r.spread.Store(opts.SpreadReads)
	for i, st := range stores {
		if st.Dims() != dims {
			return nil, fmt.Errorf("shard: shard %d dims %d != shard 0 dims %d", i, st.Dims(), dims)
		}
		r.shards = append(r.shards, routedShard{store: st, read: st})
	}
	if cache.Bytes > 0 {
		var shared *chunkcache.Cache
		if !cache.PerShard {
			shared = chunkcache.New(cache.Bytes)
			r.caches = append(r.caches, shared)
		}
		for i := range r.shards {
			c := shared
			if cache.PerShard {
				c = chunkcache.New(cache.Bytes)
				r.caches = append(r.caches, c)
			}
			r.shards[i].cached = chunkcache.NewStore(r.shards[i].store, c)
			r.shards[i].read = r.shards[i].cached
		}
	}
	for i := range r.shards {
		sh := &r.shards[i]
		sh.view = &shardView{r: r, shard: i, metas: sh.store.Meta()[:placement.NumPrimary[i]]}
		sh.searcher = search.New(sh.view, model)
		sh.engine = batchexec.New(sh.view, model)
	}
	r.gstore = newGlobalStore(r, r.shards, dims)
	r.gengine = batchexec.New(r.gstore, model)
	r.scratch.New = func() any { return &scatter{} }
	r.gpool.New = func() any { return &gscratch{} }
	r.mq.New = func() any {
		s := []search.Result(nil)
		return &s
	}
	return r, nil
}

// validatePlacement cross-checks a placement against the physical
// stores, so a stale or corrupt sidecar fails at router construction
// with a diagnostic error instead of an out-of-range read mid-query.
func validatePlacement(stores []chunkfile.Store, p *Placement) error {
	if p == nil {
		return errors.New("shard: nil placement")
	}
	if p.R < 1 {
		return fmt.Errorf("shard: placement replication factor %d < 1", p.R)
	}
	if len(p.NumPrimary) != len(stores) || len(p.Replicas) != len(stores) {
		return fmt.Errorf("shard: placement describes %d shards, router has %d", len(p.NumPrimary), len(stores))
	}
	for s, st := range stores {
		if p.NumPrimary[s] < 0 || p.NumPrimary[s] > len(st.Meta()) {
			return fmt.Errorf("shard: placement shard %d: %d primary chunks, store has %d", s, p.NumPrimary[s], len(st.Meta()))
		}
		if len(p.Replicas[s]) != p.NumPrimary[s] {
			return fmt.Errorf("shard: placement shard %d: %d replica lists for %d primary chunks", s, len(p.Replicas[s]), p.NumPrimary[s])
		}
		for i, locs := range p.Replicas[s] {
			if len(locs) != p.R-1 {
				return fmt.Errorf("shard: placement shard %d chunk %d: %d replicas, want %d", s, i, len(locs), p.R-1)
			}
			for _, loc := range locs {
				if int(loc.Shard) < 0 || int(loc.Shard) >= len(stores) || int(loc.Shard) == s {
					return fmt.Errorf("shard: placement shard %d chunk %d: replica shard %d invalid", s, i, loc.Shard)
				}
				if int(loc.Chunk) < 0 || int(loc.Chunk) >= len(stores[loc.Shard].Meta()) {
					return fmt.Errorf("shard: placement shard %d chunk %d: replica chunk %d outside shard %d's %d chunks",
						s, i, loc.Chunk, loc.Shard, len(stores[loc.Shard].Meta()))
				}
			}
		}
	}
	return nil
}

// Shards returns the shard count.
func (r *Router) Shards() int { return len(r.shards) }

// SetSpreadReads toggles the spread-reads routing policy. With it on,
// readChunk serves every read from the live copy (primary or replica)
// with the least billed simulated load instead of preferring the
// primary, so hot chunks with R > 1 stop concentrating on one machine —
// and the search layers keep a per-machine serving ledger whose fold
// replaces the merged Simulated with the real max over the machines'
// serving clocks. Healthy results are byte-identical either way — only
// Simulated and the per-shard load attribution move — and the failover,
// health and cache semantics are unchanged: down shards are never
// candidates, stalls still bill the owning shard, and a revive still
// invalidates the shard's cache. Safe to call concurrently; a query in
// flight during a toggle keeps its answers but may report the nominal
// owner-billed Simulated for that one call.
func (r *Router) SetSpreadReads(on bool) { r.spread.Store(on) }

// SpreadReads reports whether the spread-reads routing policy is on.
func (r *Router) SpreadReads() bool { return r.spread.Load() }

// ShardLoad is one shard's serving-load counters: the chunk reads it has
// actually served (wherever the chunks' primaries live) and the
// simulated serving time the spread-reads billed-load estimator has
// attributed to it — zero while spread reads are off, since the
// estimator only runs for spread routing decisions.
type ShardLoad struct {
	Reads  int64
	Billed time.Duration
}

// ShardLoads appends per-shard serving-load counters to dst (pass nil to
// allocate), cumulative since construction or the last ResetHealth — the
// per-shard load split the spread-reads policy balances and the serving
// metrics expose.
func (r *Router) ShardLoads(dst []ShardLoad) []ShardLoad {
	for s := range r.shards {
		dst = append(dst, ShardLoad{
			Reads:  r.loads[s].Load(),
			Billed: time.Duration(r.billed[s].Load()),
		})
	}
	return dst
}

// Store returns shard i's physical chunk store (primary chunks followed
// by any replica chunks placed on it).
func (r *Router) Store(i int) chunkfile.Store { return r.shards[i].store }

// Replication returns the layout's replication factor R.
func (r *Router) Replication() int { return r.placement.R }

// Chunks returns the total logical chunk count across shards: replicas
// are copies, not extra chunks.
func (r *Router) Chunks() int {
	n := 0
	for s := range r.shards {
		n += len(r.shards[s].view.metas)
	}
	return n
}

// Descriptors returns the number of distinct descriptors reachable
// through the router (each counted once, however many replicas hold it).
func (r *Router) Descriptors() int {
	n := 0
	for s := range r.shards {
		for _, m := range r.shards[s].view.metas {
			n += m.Count
		}
	}
	return n
}

// MarkShardDown takes shard s out of rotation, as the router's own read
// path does when the shard's store fails permanently: no read is routed
// to it until ResetHealth. Marking is sticky and idempotent.
func (r *Router) MarkShardDown(s int) {
	if !r.down[s].Swap(true) {
		r.downCount.Add(1)
	}
}

// ShardDown reports whether shard s is currently held down.
func (r *Router) ShardDown(s int) bool { return r.down[s].Load() }

// DownShards returns the number of shards currently held down.
func (r *Router) DownShards() int { return int(r.downCount.Load()) }

// MarkShardUp returns shard s to rotation after MarkShardDown (or after
// the read path held it down), without touching the other shards' health
// or the load counters. The recovery half of the health switch: a prober
// that saw shard s answer again calls this to resume routing to it.
// Un-marking is idempotent; if the shard's store is still failing, the
// next read marks it down again.
func (r *Router) MarkShardUp(s int) {
	if r.down[s].Swap(false) {
		r.downCount.Add(-1)
		// The disk behind the shard may have been replaced while it was
		// down: drop its cached rows so recovery never serves stale data.
		if c := r.shards[s].cached; c != nil {
			c.Invalidate()
		}
	}
}

// ProbeShard checks whether shard s's physical store can serve reads
// right now: it reads the shard's first physical chunk directly (no
// failover, no retry, no simulated billing — probing is control-plane
// traffic) and returns the store's error, nil on success or when the
// shard holds no chunks. Probing never changes health state; callers
// combine it with MarkShardUp / MarkShardDown. A background prober uses
// it to detect both recovery of a down shard and silent death of an idle
// one.
func (r *Router) ProbeShard(s int) error {
	if s < 0 || s >= len(r.shards) {
		return fmt.Errorf("shard: probe shard %d outside [0,%d)", s, len(r.shards))
	}
	st := r.shards[s].store
	if len(st.Meta()) == 0 {
		return nil
	}
	var data chunkfile.Data
	if err := st.ReadChunk(0, &data); err != nil {
		return fmt.Errorf("shard: probe shard %d: %w", s, err)
	}
	return nil
}

// ResetHealth returns every shard to rotation and zeroes the replica
// load counters — the "operator replaced the disk" switch, and the way
// tests reuse one router across fault scenarios.
func (r *Router) ResetHealth() {
	for s := range r.down {
		if r.down[s].Swap(false) {
			r.downCount.Add(-1)
		}
		r.loads[s].Store(0)
		r.billed[s].Store(0)
		if c := r.shards[s].cached; c != nil {
			c.Invalidate()
		}
	}
}

// CacheStats aggregates the decoded-chunk cache counters across the
// shards' read stores: hits and misses summed over the shards, occupancy
// and budget summed over the distinct caches behind them (one shared
// cache appears once, not once per shard). Enabled is false — and every
// counter zero — when the router was built without a cache.
func (r *Router) CacheStats() chunkcache.Stats {
	var st chunkcache.Stats
	if len(r.caches) == 0 {
		return st
	}
	st.Enabled = true
	for _, c := range r.caches {
		cs := c.Stats()
		st.Evictions += cs.Evictions
		st.Bytes += cs.Bytes
		st.MaxBytes += cs.MaxBytes
		st.Entries += cs.Entries
	}
	for i := range r.shards {
		ss := r.shards[i].cached.Stats()
		st.Hits += ss.Hits
		st.Misses += ss.Misses
	}
	return st
}

// Retry policy of the replicated read path: on a transient error
// (Temporary() == true, the net.Error convention) the same placement is
// retried up to readAttempts times, each failed attempt charged at the
// chunk's simulated read cost plus an exponentially growing backoff; a
// permanent error marks the placement's shard down and fails over
// immediately.
const readAttempts = 3

const backoffBase = 2 * time.Millisecond

// isTemporary classifies an error as transient (retry may succeed) via
// the Temporary() convention.
func isTemporary(err error) bool {
	var t interface{ Temporary() bool }
	return errors.As(err, &t) && t.Temporary()
}

// readChunk serves logical chunk i of shard s from the least-loaded live
// placement: the primary first (shard s itself, physical chunk i), then
// the placement's replicas, each attempt bounded by the retry policy.
// The load a candidate is judged by depends on the routing policy: with
// spread reads off it is the served-read count (loads), with spread
// reads on it is the billed simulated serving time (billed) — charged
// optimistically *before* the attempt, so concurrent reads see each
// other's in-flight work, and rolled back if the attempt fails. Ties
// prefer the primary, then earlier replicas, under both policies.
//
// The simulated cost of every failed attempt — retries, backoff, and
// failed placements — is accumulated into data.Stall, charged by the
// consumer to the pipeline of the *owning* shard s: in the cost model
// shard s's machine is the one serving (and retrying) its own chunks,
// replica choice being a real-time load-balancing effect. data.Served
// names the shard that served the read (the owner on failure), which the
// spread-reads serving ledgers bill the chunk to. When no placement can
// serve the chunk the error wraps ErrAllReplicasDown (and so
// chunkfile.ErrUnavailable), with data.Stall still reporting the cost of
// the attempts made.
func (r *Router) readChunk(s, i int, data *chunkfile.Data) error {
	data.Stall = 0
	data.Served = int32(s)
	spread := r.spread.Load()
	replicas := r.placement.Replicas[s][i]
	nCand := 1 + len(replicas)
	var stall time.Duration
	var tried uint64
	lastErr := error(nil)
	for {
		// Least-loaded untried live candidate; ties prefer the primary,
		// then earlier replicas.
		best, bestLoad := -1, int64(0)
		for c := 0; c < nCand; c++ {
			if tried&(1<<c) != 0 {
				continue
			}
			cs := s
			if c > 0 {
				cs = int(replicas[c-1].Shard)
			}
			if r.down[cs].Load() {
				tried |= 1 << c
				if lastErr == nil {
					lastErr = ErrShardDown
				}
				continue
			}
			load := r.loads[cs].Load()
			if spread {
				load = r.billed[cs].Load()
			}
			if best < 0 || load < bestLoad {
				best, bestLoad = c, load
			}
		}
		if best < 0 {
			break
		}
		tried |= 1 << best
		cs, ci := s, i
		if best > 0 {
			cs, ci = int(replicas[best-1].Shard), int(replicas[best-1].Chunk)
		}
		var cost int64
		if spread {
			m := &r.shards[cs].store.Meta()[ci]
			cost = int64(r.model.ReadTime(m.Bytes) + r.model.CPUTime(m.Count))
			r.billed[cs].Add(cost)
		}
		if err := r.attemptRead(cs, ci, data, &stall); err != nil {
			if spread {
				r.billed[cs].Add(-cost)
			}
			lastErr = err
			continue
		}
		r.loads[cs].Add(1)
		data.Served = int32(cs)
		data.Stall = stall
		return nil
	}
	data.Stall = stall
	if lastErr != nil {
		return fmt.Errorf("shard: shard %d chunk %d: %w: %w", s, i, ErrAllReplicasDown, lastErr)
	}
	return fmt.Errorf("shard: shard %d chunk %d: %w", s, i, ErrAllReplicasDown)
}

// attemptRead reads physical chunk ci of shard cs under the retry
// policy, accumulating the simulated cost of failed attempts into stall.
// A permanent failure marks the shard down; exhausted transient retries
// leave the shard up (the next read will try it afresh) and make the
// caller fail over. The read goes through the shard's read store — the
// decoded-chunk cache when one is configured — so a cached chunk is
// served without consulting the physical store at all.
func (r *Router) attemptRead(cs, ci int, data *chunkfile.Data, stall *time.Duration) error {
	st := r.shards[cs].read
	bytes := r.shards[cs].store.Meta()[ci].Bytes
	var err error
	for attempt := 0; attempt < readAttempts; attempt++ {
		if err = st.ReadChunk(ci, data); err == nil {
			return nil
		}
		*stall += r.model.ReadTime(bytes)
		if !isTemporary(err) {
			r.MarkShardDown(cs)
			return err
		}
		if attempt+1 < readAttempts {
			*stall += backoffBase << attempt
		}
	}
	return err
}

// Close closes every shard's store (through its cache wrapper when one
// is configured, dropping the cached rows).
func (r *Router) Close() error {
	var errs []error
	for i := range r.shards {
		if err := r.shards[i].read.Close(); err != nil {
			errs = append(errs, fmt.Errorf("shard %d: %w", i, err))
		}
	}
	return errors.Join(errs...)
}

// normalize applies the search defaults once at the router, so every
// shard and the merge agree on k and the stop rule.
func normalize(opts search.Options) search.Options {
	if opts.K <= 0 {
		opts.K = 30
	}
	if opts.Stop == nil {
		opts.Stop = search.ToCompletion{}
	}
	return opts
}

// Search runs one query scatter-gather and returns the merged result.
func (r *Router) Search(q vec.Vector, opts search.Options) (*Result, error) {
	res := &Result{}
	if err := r.SearchInto(q, opts, res); err != nil {
		return nil, err
	}
	return res, nil
}

// SearchInto runs one query against every shard concurrently, each shard
// executing the paper's algorithm over its own chunks with its own
// simulated machine (per-shard pipeline, stop rule applied after every
// chunk), then merges the per-shard k-NN lists into res. The Neighbors
// and PerShard slices already in res are reused when they have capacity.
func (r *Router) SearchInto(q vec.Vector, opts search.Options, res *Result) error {
	start := time.Now()
	opts = normalize(opts)
	if len(q) != r.dims {
		return fmt.Errorf("shard: query dims %d != store dims %d", len(q), r.dims)
	}

	sc := r.scratch.Get().(*scatter)
	defer r.scratch.Put(sc)
	n := len(r.shards)
	sc.single = grow(sc.single, n)
	sc.errs = resetErrs(sc.errs, n)

	var wg sync.WaitGroup
	for s := 1; s < n; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			sc.errs[s] = r.shards[s].searcher.SearchInto(q, opts, &sc.single[s])
		}(s)
	}
	sc.errs[0] = r.shards[0].searcher.SearchInto(q, opts, &sc.single[0])
	wg.Wait()
	for s, err := range sc.errs {
		if err != nil {
			return &ShardError{Shard: s, Err: err}
		}
	}

	sc.rows = sc.rows[:0]
	for s := range sc.single {
		sc.rows = append(sc.rows, &sc.single[s])
	}
	neighbors := res.Neighbors[:0]
	perShard := res.PerShard[:0]
	*res = Result{Exact: true}
	res.Neighbors, sc.cur = mergeNeighbors(sc.rows, opts.K, neighbors, sc.cur)
	for _, row := range sc.rows {
		foldCost(res, row)
		perShard = append(perShard, ShardCost{
			ChunksRead:    row.ChunksRead,
			ChunksSkipped: row.ChunksSkipped,
			Elapsed:       row.Elapsed,
			Exact:         row.Exact,
		})
	}
	if r.spread.Load() {
		// With spread reads on, replace the nominal owner-billed times
		// with the fold of the serving ledgers: what each machine really
		// spent once reads moved to the least-loaded copies. Neighbors,
		// ChunksRead and Exact were merged above from the nominal walks
		// and are identical either way.
		if times, ok := foldSpread(sc.rows, sc.times); ok {
			sc.times = times
			res.Elapsed = 0
			for t, e := range times {
				perShard[t].Elapsed = e
				if e > res.Elapsed {
					res.Elapsed = e
				}
			}
		}
	}
	res.PerShard = perShard
	res.ShardsDown = r.DownShards()
	res.Wall = time.Since(start)
	return nil
}

// RunBatch executes a whole workload scatter-gather: every shard's
// chunk-major engine runs the full query set concurrently with the other
// shards, then each query's per-shard outcomes are merged into
// results[qi] with the same rules as SearchInto (neighbors through
// knn.Less, ChunksRead summed, Elapsed the max over the shards' simulated
// machines, Exact when every shard was exact). The results array is
// caller-owned; its neighbor slices are reused when they have capacity.
func (r *Router) RunBatch(queries []vec.Vector, opts batchexec.Options, results []search.Result) error {
	start := time.Now()
	if len(queries) == 0 {
		return nil
	}
	if len(results) != len(queries) {
		return fmt.Errorf("shard: results length %d != queries length %d", len(results), len(queries))
	}
	if opts.K <= 0 {
		opts.K = 30
	}
	if opts.Stop == nil {
		opts.Stop = search.ToCompletion{}
	}
	for qi, q := range queries {
		if len(q) != r.dims {
			return &batchexec.QueryError{Query: qi, Err: fmt.Errorf("query dims %d != store dims %d", len(q), r.dims)}
		}
	}

	sc := r.scratch.Get().(*scatter)
	defer r.scratch.Put(sc)
	n := len(r.shards)
	if cap(sc.batch) < n {
		batch := make([][]search.Result, n)
		copy(batch, sc.batch)
		sc.batch = batch
	}
	sc.batch = sc.batch[:n]
	for s := range sc.batch {
		sc.batch[s] = grow(sc.batch[s], len(queries))
	}
	sc.errs = resetErrs(sc.errs, n)

	var wg sync.WaitGroup
	for s := 1; s < n; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			sc.errs[s] = r.shards[s].engine.Run(queries, opts, sc.batch[s])
		}(s)
	}
	sc.errs[0] = r.shards[0].engine.Run(queries, opts, sc.batch[0])
	wg.Wait()
	for s, err := range sc.errs {
		if err != nil {
			return &ShardError{Shard: s, Err: err}
		}
	}

	wall := time.Since(start)
	spread := r.spread.Load()
	for qi := range results {
		sc.rows = sc.rows[:0]
		for s := 0; s < n; s++ {
			sc.rows = append(sc.rows, &sc.batch[s][qi])
		}
		res := &results[qi]
		neighbors := res.Neighbors[:0]
		*res = search.Result{}
		res.Neighbors, sc.cur = mergeNeighbors(sc.rows, opts.K, neighbors, sc.cur)
		res.Exact = true
		for _, row := range sc.rows {
			res.ChunksRead += row.ChunksRead
			res.ChunksSkipped += row.ChunksSkipped
			if row.Elapsed > res.Elapsed {
				res.Elapsed = row.Elapsed
			}
			if row.IndexRead > res.IndexRead {
				res.IndexRead = row.IndexRead
			}
			res.Exact = res.Exact && row.Exact
			res.Degraded = res.Degraded || row.Degraded
		}
		if spread {
			// Spread reads on: the merged Simulated is the fold of the
			// serving ledgers, not the nominal owner-billed max. Answers
			// merged above are identical either way.
			if times, ok := foldSpread(sc.rows, sc.times); ok {
				sc.times = times
				res.Elapsed = 0
				for _, e := range times {
					if e > res.Elapsed {
						res.Elapsed = e
					}
				}
			}
		}
		res.Wall = wall
	}
	return nil
}

// RunBatchStream executes the batch like RunBatch and additionally
// streams per-query completions: done(qi), when non-nil, fires exactly
// once per query, after results[qi] holds its fully merged outcome — a
// query completes the moment its *last* shard retires it, long before
// the batch returns while other queries' shards still work. Callbacks
// for distinct queries may fire concurrently (they run on the shards'
// scan workers), so done must be safe for concurrent use and should not
// block. When a shard fails, queries whose callback already fired retain
// valid merged results; all others are invalid, and the batch returns
// the ShardError exactly as RunBatch would. A nil done is RunBatch.
func (r *Router) RunBatchStream(queries []vec.Vector, opts batchexec.Options, results []search.Result, done func(query int)) error {
	if done == nil {
		return r.RunBatch(queries, opts, results)
	}
	start := time.Now()
	if len(queries) == 0 {
		return nil
	}
	if len(results) != len(queries) {
		return fmt.Errorf("shard: results length %d != queries length %d", len(results), len(queries))
	}
	if opts.K <= 0 {
		opts.K = 30
	}
	if opts.Stop == nil {
		opts.Stop = search.ToCompletion{}
	}
	for qi, q := range queries {
		if len(q) != r.dims {
			return &batchexec.QueryError{Query: qi, Err: fmt.Errorf("query dims %d != store dims %d", len(q), r.dims)}
		}
	}

	sc := r.scratch.Get().(*scatter)
	defer r.scratch.Put(sc)
	n := len(r.shards)
	if cap(sc.batch) < n {
		batch := make([][]search.Result, n)
		copy(batch, sc.batch)
		sc.batch = batch
	}
	sc.batch = sc.batch[:n]
	for s := range sc.batch {
		sc.batch[s] = grow(sc.batch[s], len(queries))
	}
	sc.errs = resetErrs(sc.errs, n)

	// remaining[qi] counts the shards that have not yet retired query qi;
	// the callback that decrements it to zero owns the merge and the
	// user-visible completion. The mutex serializes merges only — they
	// share the scatter's merge scratch — never the shards' scan work.
	remaining := make([]atomic.Int32, len(queries))
	for qi := range remaining {
		remaining[qi].Store(int32(n))
	}
	var mergeMu sync.Mutex
	complete := func(qi int) {
		mergeMu.Lock()
		sc.rows = sc.rows[:0]
		for s := 0; s < n; s++ {
			sc.rows = append(sc.rows, &sc.batch[s][qi])
		}
		res := &results[qi]
		neighbors := res.Neighbors[:0]
		*res = search.Result{}
		res.Neighbors, sc.cur = mergeNeighbors(sc.rows, opts.K, neighbors, sc.cur)
		res.Exact = true
		for _, row := range sc.rows {
			res.ChunksRead += row.ChunksRead
			res.ChunksSkipped += row.ChunksSkipped
			if row.Elapsed > res.Elapsed {
				res.Elapsed = row.Elapsed
			}
			if row.IndexRead > res.IndexRead {
				res.IndexRead = row.IndexRead
			}
			res.Exact = res.Exact && row.Exact
			res.Degraded = res.Degraded || row.Degraded
		}
		if r.spread.Load() {
			// Same serving-ledger fold as RunBatch; mergeMu already
			// serializes access to the scatter's fold scratch.
			if times, ok := foldSpread(sc.rows, sc.times); ok {
				sc.times = times
				res.Elapsed = 0
				for _, e := range times {
					if e > res.Elapsed {
						res.Elapsed = e
					}
				}
			}
		}
		res.Wall = time.Since(start)
		mergeMu.Unlock()
		done(qi)
	}
	shardDone := func(qi int) {
		if remaining[qi].Add(-1) == 0 {
			complete(qi)
		}
	}

	var wg sync.WaitGroup
	for s := 1; s < n; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			sc.errs[s] = r.shards[s].engine.RunStream(queries, opts, sc.batch[s], shardDone)
		}(s)
	}
	sc.errs[0] = r.shards[0].engine.RunStream(queries, opts, sc.batch[0], shardDone)
	wg.Wait()
	for s, err := range sc.errs {
		if err != nil {
			return &ShardError{Shard: s, Err: err}
		}
	}
	return nil
}

// MultiQuery runs a multi-descriptor (whole-image) query scatter-gather:
// the bag's per-descriptor searches run as one batch across every shard,
// and the merged per-descriptor neighbor lists vote through the shared
// multiquery aggregation, so the outcome matches a single-store
// multi-descriptor query over the union of the shards. The default
// 3-chunk budget — like any stop rule passed in opts — applies per
// descriptor per shard; MultiQueryGlobal spends it per descriptor across
// the whole fleet instead.
func (r *Router) MultiQuery(descriptors []vec.Vector, opts multiquery.Options) (*multiquery.Result, error) {
	return r.multiQueryVia(descriptors, opts, r.RunBatch)
}

// multiQueryVia is the shared multi-descriptor implementation: the bag
// runs as one batch through the given batch executor (per-shard RunBatch
// or global-budget RunBatchGlobal), then the per-descriptor results vote
// through the shared multiquery aggregation.
func (r *Router) multiQueryVia(descriptors []vec.Vector, opts multiquery.Options, run func([]vec.Vector, batchexec.Options, []search.Result) error) (*multiquery.Result, error) {
	if len(descriptors) == 0 {
		return nil, errors.New("shard: no query descriptors")
	}
	if opts.K <= 0 {
		opts.K = 10
	}
	if opts.Stop == nil {
		opts.Stop = search.ChunkBudget(3)
	}
	rp := r.mq.Get().(*[]search.Result)
	defer r.mq.Put(rp)
	*rp = grow(*rp, len(descriptors))
	results := *rp
	err := run(descriptors, batchexec.Options{
		K:       opts.K,
		Stop:    opts.Stop,
		Overlap: opts.Overlap,
		Ctx:     opts.Ctx,
	}, results)
	if err != nil {
		return nil, fmt.Errorf("shard: multiquery: %w", err)
	}
	return multiquery.Aggregate(results, opts), nil
}

// mergeNeighbors merges the per-shard sorted neighbor lists in rows into
// the global top k, appending to dst. Heads are compared through
// knn.Less, the canonical (distance, ascending id) composite order; the
// reported Dist is the true distance, and since sqrt is monotone the
// (Dist, ID) order agrees with the squared-distance order every shard's
// heap sorted by — up to one theoretical caveat: sqrt can collapse two
// adjacent-ulp distinct squared distances onto one float64, in which
// case the cross-shard tie falls to the ID order instead of the d²
// order. Squared distances live on the far coarser grid of summed
// float32 products, so no real workload has exhibited this; the
// completion-vs-oracle equivalence tests would catch one if it did.
// The cursor walk preserves each shard's own order, so a 1-shard merge
// is a plain copy — which is what keeps 1-shard results byte-identical
// to the unsharded path. Shards partition the collection, so IDs are
// unique across rows and the merge is deterministic.
//
// The cur slice is caller-recycled cursor scratch; the (possibly grown)
// buffer is returned alongside dst.
func mergeNeighbors(rows []*search.Result, k int, dst []knn.Neighbor, cur []int) ([]knn.Neighbor, []int) {
	if cap(cur) < len(rows) {
		cur = make([]int, len(rows))
	}
	cur = cur[:len(rows)]
	for s := range cur {
		cur[s] = 0
	}
	for len(dst) < k {
		best := -1
		var bestNb knn.Neighbor
		for s, row := range rows {
			if cur[s] >= len(row.Neighbors) {
				continue
			}
			nb := row.Neighbors[cur[s]]
			if best < 0 || knn.Less(nb.Dist, nb.ID, bestNb.Dist, bestNb.ID) {
				best, bestNb = s, nb
			}
		}
		if best < 0 {
			break
		}
		dst = append(dst, bestNb)
		cur[best]++
	}
	return dst, cur
}

// foldSpread folds the shards' spread-reads serving ledgers into real
// per-shard clocks: machine t's clock is its own index read plus every
// serving charge any shard's walk billed to it — times[t] =
// rows[t].IndexRead + Σ_w rows[w].Machines[t]. The merged Simulated is
// then the max over times (the machines run in parallel), replacing the
// nominal owner-billed max. Reports ok=false — keep the nominal times —
// when any row carries no ledger or a ledger of the wrong width, e.g.
// when spread reads were toggled while the scatter was in flight.
func foldSpread(rows []*search.Result, times []time.Duration) ([]time.Duration, bool) {
	n := len(rows)
	if cap(times) < n {
		times = make([]time.Duration, n)
	}
	times = times[:n]
	for t := range times {
		times[t] = rows[t].IndexRead
	}
	for _, row := range rows {
		if len(row.Machines) != n {
			return times, false
		}
		for t, d := range row.Machines {
			times[t] += d
		}
	}
	return times, true
}

// foldCost folds one shard's costs into the merged result: chunks (read
// and skipped) sum, simulated times max (the shards run in parallel),
// exactness ANDs (the caller seeds Exact to true before the first fold),
// degradation ORs.
func foldCost(res *Result, row *search.Result) {
	res.ChunksRead += row.ChunksRead
	res.ChunksSkipped += row.ChunksSkipped
	if row.Elapsed > res.Elapsed {
		res.Elapsed = row.Elapsed
	}
	if row.IndexRead > res.IndexRead {
		res.IndexRead = row.IndexRead
	}
	res.Exact = res.Exact && row.Exact
	res.Degraded = res.Degraded || row.Degraded
}

// grow returns s with length n, reusing its capacity (and the neighbor
// slices inside retained elements) when possible.
func grow(s []search.Result, n int) []search.Result {
	if cap(s) < n {
		grown := make([]search.Result, n)
		copy(grown, s[:cap(s)])
		return grown
	}
	return s[:n]
}

// resetErrs returns errs with length n and every slot nil.
func resetErrs(errs []error, n int) []error {
	if cap(errs) < n {
		errs = make([]error, n)
	}
	errs = errs[:n]
	for i := range errs {
		errs[i] = nil
	}
	return errs
}
