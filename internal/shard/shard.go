package shard

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/chunkfile"
	"repro/internal/knn"
	"repro/internal/multiquery"
	"repro/internal/search"
	"repro/internal/search/batchexec"
	"repro/internal/simdisk"
	"repro/internal/vec"
)

// ShardError reports which shard of a scatter failed. When several shards
// fail in one scatter, the lowest shard index is reported.
type ShardError struct {
	Shard int
	Err   error
}

// Error implements the error interface.
func (e *ShardError) Error() string { return fmt.Sprintf("shard: shard %d: %v", e.Shard, e.Err) }

// Unwrap returns the underlying error.
func (e *ShardError) Unwrap() error { return e.Err }

// ShardCost is one shard's share of a merged query outcome: the chunks
// that shard actually served and its own simulated machine's elapsed
// time (its index read plus its served chunks, in its charge order). In
// the per-shard modes Exact is that shard's own certificate; in the
// global-budget modes no shard holds an independent certificate, so
// Exact mirrors the merged result's.
type ShardCost struct {
	ChunksRead int
	Elapsed    time.Duration // this shard's simulated machine
	Exact      bool
}

// Result is the merged outcome of one scatter-gather query, under either
// budget discipline.
type Result struct {
	Neighbors  []knn.Neighbor // global top k, ordered by (distance, ascending ID)
	ChunksRead int            // sum over shards (in global mode: the total budget spent)
	// Elapsed is the simulated time: the max over the shards' machines,
	// since the shards run in parallel. IndexRead likewise.
	Elapsed   time.Duration
	IndexRead time.Duration
	Wall      time.Duration // real time of the scatter-gather call
	// Exact reports that the result is provably the exact global k-NN: in
	// per-shard mode every shard's certificate held; in global mode the
	// merged suffix-bound certificate held.
	Exact bool
	// PerShard is the per-shard breakdown in shard order; the slice is
	// reused across calls on a recycled Result.
	PerShard []ShardCost
}

// routedShard is one shard's serving stack: the store plus the two
// execution paths over it.
type routedShard struct {
	store    chunkfile.Store
	searcher *search.Searcher
	engine   *batchexec.Engine
}

// Router serves queries scatter-gather across a set of shards. It is safe
// for concurrent use.
//
// Two budget disciplines are offered, with the same per-shard cost model
// (one simulated 2005 machine per shard) underneath:
//
//   - Per-shard (Search, RunBatch, MultiQuery): every shard runs the
//     paper's algorithm independently, so the stop rule's budget is spent
//     once per shard — S shards at ChunkBudget(b) read up to S×b chunks.
//   - Global (SearchGlobal, RunBatchGlobal, MultiQueryGlobal): the
//     shards' ranked chunk lists merge into one global centroid-rank
//     order, and the stop rule spends a single total budget across the
//     fleet — ChunkBudget(B) reads exactly min(B, total) chunks. See
//     global.go and DESIGN.md §7.
type Router struct {
	shards []routedShard
	dims   int
	model  *simdisk.Model // resolved default model for the global paths
	// gstore is the virtual concatenated store the global-budget mode
	// ranks and reads through; gengine is the chunk-major batch engine
	// over it, configured per run with the chunk→shard machine mapping.
	gstore  *globalStore
	gengine *batchexec.Engine
	scratch sync.Pool // *scatter
	gpool   sync.Pool // *gscratch: global single-query state
	mq      sync.Pool // *[]search.Result: multi-descriptor result arena
}

// scatter is the pooled per-call state of one scatter-gather: the
// per-shard result slots, the per-shard merge cursors, and the error
// slots (one per shard, so concurrent shard goroutines never contend).
type scatter struct {
	single []search.Result   // one slot per shard (single-query scatter)
	batch  [][]search.Result // one arena per shard (batch scatter)
	rows   []*search.Result  // merge view: one shard's result for one query
	cur    []int             // merge cursors, one per shard
	errs   []error
}

// NewRouter builds a Router over one store per shard. A nil model selects
// the calibrated 2005 model for every shard's machine.
func NewRouter(stores []chunkfile.Store, model *simdisk.Model) (*Router, error) {
	if len(stores) == 0 {
		return nil, errors.New("shard: no stores")
	}
	if model == nil {
		model = simdisk.Default2005()
	}
	dims := stores[0].Dims()
	r := &Router{dims: dims, model: model}
	for i, st := range stores {
		if st.Dims() != dims {
			return nil, fmt.Errorf("shard: shard %d dims %d != shard 0 dims %d", i, st.Dims(), dims)
		}
		r.shards = append(r.shards, routedShard{
			store:    st,
			searcher: search.New(st, model),
			engine:   batchexec.New(st, model),
		})
	}
	r.gstore = newGlobalStore(r.shards, dims)
	r.gengine = batchexec.New(r.gstore, model)
	r.scratch.New = func() any { return &scatter{} }
	r.gpool.New = func() any { return &gscratch{} }
	r.mq.New = func() any {
		s := []search.Result(nil)
		return &s
	}
	return r, nil
}

// Shards returns the shard count.
func (r *Router) Shards() int { return len(r.shards) }

// Store returns shard i's chunk store.
func (r *Router) Store(i int) chunkfile.Store { return r.shards[i].store }

// Close closes every shard's store.
func (r *Router) Close() error {
	var errs []error
	for i := range r.shards {
		if err := r.shards[i].store.Close(); err != nil {
			errs = append(errs, fmt.Errorf("shard %d: %w", i, err))
		}
	}
	return errors.Join(errs...)
}

// normalize applies the search defaults once at the router, so every
// shard and the merge agree on k and the stop rule.
func normalize(opts search.Options) search.Options {
	if opts.K <= 0 {
		opts.K = 30
	}
	if opts.Stop == nil {
		opts.Stop = search.ToCompletion{}
	}
	return opts
}

// Search runs one query scatter-gather and returns the merged result.
func (r *Router) Search(q vec.Vector, opts search.Options) (*Result, error) {
	res := &Result{}
	if err := r.SearchInto(q, opts, res); err != nil {
		return nil, err
	}
	return res, nil
}

// SearchInto runs one query against every shard concurrently, each shard
// executing the paper's algorithm over its own chunks with its own
// simulated machine (per-shard pipeline, stop rule applied after every
// chunk), then merges the per-shard k-NN lists into res. The Neighbors
// and PerShard slices already in res are reused when they have capacity.
func (r *Router) SearchInto(q vec.Vector, opts search.Options, res *Result) error {
	start := time.Now()
	opts = normalize(opts)
	if len(q) != r.dims {
		return fmt.Errorf("shard: query dims %d != store dims %d", len(q), r.dims)
	}

	sc := r.scratch.Get().(*scatter)
	defer r.scratch.Put(sc)
	n := len(r.shards)
	sc.single = grow(sc.single, n)
	sc.errs = resetErrs(sc.errs, n)

	var wg sync.WaitGroup
	for s := 1; s < n; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			sc.errs[s] = r.shards[s].searcher.SearchInto(q, opts, &sc.single[s])
		}(s)
	}
	sc.errs[0] = r.shards[0].searcher.SearchInto(q, opts, &sc.single[0])
	wg.Wait()
	for s, err := range sc.errs {
		if err != nil {
			return &ShardError{Shard: s, Err: err}
		}
	}

	sc.rows = sc.rows[:0]
	for s := range sc.single {
		sc.rows = append(sc.rows, &sc.single[s])
	}
	neighbors := res.Neighbors[:0]
	perShard := res.PerShard[:0]
	*res = Result{Exact: true}
	res.Neighbors, sc.cur = mergeNeighbors(sc.rows, opts.K, neighbors, sc.cur)
	for _, row := range sc.rows {
		foldCost(res, row)
		perShard = append(perShard, ShardCost{ChunksRead: row.ChunksRead, Elapsed: row.Elapsed, Exact: row.Exact})
	}
	res.PerShard = perShard
	res.Wall = time.Since(start)
	return nil
}

// RunBatch executes a whole workload scatter-gather: every shard's
// chunk-major engine runs the full query set concurrently with the other
// shards, then each query's per-shard outcomes are merged into
// results[qi] with the same rules as SearchInto (neighbors through
// knn.Less, ChunksRead summed, Elapsed the max over the shards' simulated
// machines, Exact when every shard was exact). The results array is
// caller-owned; its neighbor slices are reused when they have capacity.
func (r *Router) RunBatch(queries []vec.Vector, opts batchexec.Options, results []search.Result) error {
	start := time.Now()
	if len(queries) == 0 {
		return nil
	}
	if len(results) != len(queries) {
		return fmt.Errorf("shard: results length %d != queries length %d", len(results), len(queries))
	}
	if opts.K <= 0 {
		opts.K = 30
	}
	if opts.Stop == nil {
		opts.Stop = search.ToCompletion{}
	}
	for qi, q := range queries {
		if len(q) != r.dims {
			return &batchexec.QueryError{Query: qi, Err: fmt.Errorf("query dims %d != store dims %d", len(q), r.dims)}
		}
	}

	sc := r.scratch.Get().(*scatter)
	defer r.scratch.Put(sc)
	n := len(r.shards)
	if cap(sc.batch) < n {
		batch := make([][]search.Result, n)
		copy(batch, sc.batch)
		sc.batch = batch
	}
	sc.batch = sc.batch[:n]
	for s := range sc.batch {
		sc.batch[s] = grow(sc.batch[s], len(queries))
	}
	sc.errs = resetErrs(sc.errs, n)

	var wg sync.WaitGroup
	for s := 1; s < n; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			sc.errs[s] = r.shards[s].engine.Run(queries, opts, sc.batch[s])
		}(s)
	}
	sc.errs[0] = r.shards[0].engine.Run(queries, opts, sc.batch[0])
	wg.Wait()
	for s, err := range sc.errs {
		if err != nil {
			return &ShardError{Shard: s, Err: err}
		}
	}

	wall := time.Since(start)
	for qi := range results {
		sc.rows = sc.rows[:0]
		for s := 0; s < n; s++ {
			sc.rows = append(sc.rows, &sc.batch[s][qi])
		}
		res := &results[qi]
		neighbors := res.Neighbors[:0]
		*res = search.Result{}
		res.Neighbors, sc.cur = mergeNeighbors(sc.rows, opts.K, neighbors, sc.cur)
		res.Exact = true
		for _, row := range sc.rows {
			res.ChunksRead += row.ChunksRead
			if row.Elapsed > res.Elapsed {
				res.Elapsed = row.Elapsed
			}
			if row.IndexRead > res.IndexRead {
				res.IndexRead = row.IndexRead
			}
			res.Exact = res.Exact && row.Exact
		}
		res.Wall = wall
	}
	return nil
}

// MultiQuery runs a multi-descriptor (whole-image) query scatter-gather:
// the bag's per-descriptor searches run as one batch across every shard,
// and the merged per-descriptor neighbor lists vote through the shared
// multiquery aggregation, so the outcome matches a single-store
// multi-descriptor query over the union of the shards. The default
// 3-chunk budget — like any stop rule passed in opts — applies per
// descriptor per shard; MultiQueryGlobal spends it per descriptor across
// the whole fleet instead.
func (r *Router) MultiQuery(descriptors []vec.Vector, opts multiquery.Options) (*multiquery.Result, error) {
	return r.multiQueryVia(descriptors, opts, r.RunBatch)
}

// multiQueryVia is the shared multi-descriptor implementation: the bag
// runs as one batch through the given batch executor (per-shard RunBatch
// or global-budget RunBatchGlobal), then the per-descriptor results vote
// through the shared multiquery aggregation.
func (r *Router) multiQueryVia(descriptors []vec.Vector, opts multiquery.Options, run func([]vec.Vector, batchexec.Options, []search.Result) error) (*multiquery.Result, error) {
	if len(descriptors) == 0 {
		return nil, errors.New("shard: no query descriptors")
	}
	if opts.K <= 0 {
		opts.K = 10
	}
	if opts.Stop == nil {
		opts.Stop = search.ChunkBudget(3)
	}
	rp := r.mq.Get().(*[]search.Result)
	defer r.mq.Put(rp)
	*rp = grow(*rp, len(descriptors))
	results := *rp
	err := run(descriptors, batchexec.Options{
		K:       opts.K,
		Stop:    opts.Stop,
		Overlap: opts.Overlap,
	}, results)
	if err != nil {
		return nil, fmt.Errorf("shard: multiquery: %w", err)
	}
	return multiquery.Aggregate(results, opts), nil
}

// mergeNeighbors merges the per-shard sorted neighbor lists in rows into
// the global top k, appending to dst. Heads are compared through
// knn.Less, the canonical (distance, ascending id) composite order; the
// reported Dist is the true distance, and since sqrt is monotone the
// (Dist, ID) order agrees with the squared-distance order every shard's
// heap sorted by — up to one theoretical caveat: sqrt can collapse two
// adjacent-ulp distinct squared distances onto one float64, in which
// case the cross-shard tie falls to the ID order instead of the d²
// order. Squared distances live on the far coarser grid of summed
// float32 products, so no real workload has exhibited this; the
// completion-vs-oracle equivalence tests would catch one if it did.
// The cursor walk preserves each shard's own order, so a 1-shard merge
// is a plain copy — which is what keeps 1-shard results byte-identical
// to the unsharded path. Shards partition the collection, so IDs are
// unique across rows and the merge is deterministic.
//
// The cur slice is caller-recycled cursor scratch; the (possibly grown)
// buffer is returned alongside dst.
func mergeNeighbors(rows []*search.Result, k int, dst []knn.Neighbor, cur []int) ([]knn.Neighbor, []int) {
	if cap(cur) < len(rows) {
		cur = make([]int, len(rows))
	}
	cur = cur[:len(rows)]
	for s := range cur {
		cur[s] = 0
	}
	for len(dst) < k {
		best := -1
		var bestNb knn.Neighbor
		for s, row := range rows {
			if cur[s] >= len(row.Neighbors) {
				continue
			}
			nb := row.Neighbors[cur[s]]
			if best < 0 || knn.Less(nb.Dist, nb.ID, bestNb.Dist, bestNb.ID) {
				best, bestNb = s, nb
			}
		}
		if best < 0 {
			break
		}
		dst = append(dst, bestNb)
		cur[best]++
	}
	return dst, cur
}

// foldCost folds one shard's costs into the merged result: chunks sum,
// simulated times max (the shards run in parallel), exactness ANDs (the
// caller seeds Exact to true before the first fold).
func foldCost(res *Result, row *search.Result) {
	res.ChunksRead += row.ChunksRead
	if row.Elapsed > res.Elapsed {
		res.Elapsed = row.Elapsed
	}
	if row.IndexRead > res.IndexRead {
		res.IndexRead = row.IndexRead
	}
	res.Exact = res.Exact && row.Exact
}

// grow returns s with length n, reusing its capacity (and the neighbor
// slices inside retained elements) when possible.
func grow(s []search.Result, n int) []search.Result {
	if cap(s) < n {
		grown := make([]search.Result, n)
		copy(grown, s[:cap(s)])
		return grown
	}
	return s[:n]
}

// resetErrs returns errs with length n and every slot nil.
func resetErrs(errs []error, n int) []error {
	if cap(errs) < n {
		errs = make([]error, n)
	}
	errs = errs[:n]
	for i := range errs {
		errs[i] = nil
	}
	return errs
}
