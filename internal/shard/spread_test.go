package shard

import (
	"strconv"
	"sync"
	"testing"
	"time"

	"repro/internal/chunkfile"
	"repro/internal/cluster"
	"repro/internal/faultstore"
	"repro/internal/imagegen"
	"repro/internal/search"
	"repro/internal/search/batchexec"
	"repro/internal/vec"
)

// spreadRouterOver builds a replicated router over fresh MemStores of
// the same deterministic placement. Every call gets its own stores,
// cache, and load counters, so a spread-off and a spread-on router never
// share mutable state.
func spreadRouterOver(t testing.TB, ds *imagegen.Dataset, clusters []*cluster.Cluster, shards, replication, pageSize int, opts RouterOptions) *Router {
	t.Helper()
	coll := ds.Collection
	p, err := PartitionReplicated(clusters, shards, replication, coll.Dims(), pageSize, nil)
	if err != nil {
		t.Fatal(err)
	}
	stores := make([]chunkfile.Store, shards)
	for s := 0; s < shards; s++ {
		physical := append(append([]int(nil), p.Primary[s]...), p.Extra[s]...)
		stores[s] = chunkfile.NewMemStore(coll, Select(clusters, physical), pageSize)
	}
	r, err := NewReplicatedRouterWith(stores, p, nil, opts)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

// TestSpreadReadsAnswerEquivalenceMatrix pins the spread-reads tentpole
// guarantee: with every shard healthy, turning the policy on changes
// nothing about the answers — neighbors, exactness, and ChunksRead are
// byte-identical to primary-only routing — across all three stop rules,
// both budget disciplines (per-shard and global), the batch path, the
// decoded-chunk cache on and off, and R ∈ {1, 2}. At R=1 there is only
// one copy of every chunk, so even the merged simulated time must come
// out exactly equal: the serve ledgers then bill precisely what the
// nominal pipelines bill.
func TestSpreadReadsAnswerEquivalenceMatrix(t *testing.T) {
	ds, clusters := fixture(t, 4000, 17, 130)
	coll := ds.Collection
	const shards, pageSize, k = 4, 4096, 20

	queryIdx := []int{3, 555, 1234, 3999}
	queries := make([]vec.Vector, len(queryIdx))
	for i, pos := range queryIdx {
		queries[i] = coll.Vec(pos)
	}

	for _, replication := range []int{1, 2} {
		for _, cache := range []struct {
			name string
			cfg  CacheConfig
		}{
			{"nocache", CacheConfig{}},
			{"cache", CacheConfig{Bytes: 1 << 20}},
		} {
			off := spreadRouterOver(t, ds, clusters, shards, replication, pageSize, RouterOptions{Cache: cache.cfg})
			on := spreadRouterOver(t, ds, clusters, shards, replication, pageSize, RouterOptions{Cache: cache.cfg, SpreadReads: true})
			if off.SpreadReads() || !on.SpreadReads() {
				t.Fatalf("R=%d %s: SpreadReads off=%v on=%v", replication, cache.name, off.SpreadReads(), on.SpreadReads())
			}
			for ri, stop := range stopRules() {
				label := "R=" + strconv.Itoa(replication) + "/" + cache.name + "/rule" + strconv.Itoa(ri)
				opts := search.Options{K: k, Stop: stop}
				for _, q := range queries {
					var want, got Result
					if err := off.SearchInto(q, opts, &want); err != nil {
						t.Fatal(err)
					}
					if err := on.SearchInto(q, opts, &got); err != nil {
						t.Fatal(err)
					}
					sameAnswer(t, label+"/search", &got, &want)
					if replication == 1 && got.Elapsed != want.Elapsed {
						t.Fatalf("%s/search: R=1 spread-on Elapsed %v != spread-off %v", label, got.Elapsed, want.Elapsed)
					}

					if err := off.SearchGlobalInto(q, opts, &want); err != nil {
						t.Fatal(err)
					}
					if err := on.SearchGlobalInto(q, opts, &got); err != nil {
						t.Fatal(err)
					}
					sameAnswer(t, label+"/global", &got, &want)
					if replication == 1 && got.Elapsed != want.Elapsed {
						t.Fatalf("%s/global: R=1 spread-on Elapsed %v != spread-off %v", label, got.Elapsed, want.Elapsed)
					}
				}

				bopts := batchexec.Options{K: k, Stop: stop}
				want := make([]search.Result, len(queries))
				got := make([]search.Result, len(queries))
				if err := off.RunBatch(queries, bopts, want); err != nil {
					t.Fatal(err)
				}
				if err := on.RunBatch(queries, bopts, got); err != nil {
					t.Fatal(err)
				}
				for qi := range queries {
					g, w := &got[qi], &want[qi]
					if g.Exact != w.Exact || g.ChunksRead != w.ChunksRead || len(g.Neighbors) != len(w.Neighbors) {
						t.Fatalf("%s/batch q%d: (exact %v, chunks %d, %d neighbors) != (exact %v, chunks %d, %d neighbors)",
							label, qi, g.Exact, g.ChunksRead, len(g.Neighbors), w.Exact, w.ChunksRead, len(w.Neighbors))
					}
					for i := range w.Neighbors {
						if g.Neighbors[i] != w.Neighbors[i] {
							t.Fatalf("%s/batch q%d rank %d: %+v != %+v", label, qi, i, g.Neighbors[i], w.Neighbors[i])
						}
					}
					if replication == 1 && g.Elapsed != w.Elapsed {
						t.Fatalf("%s/batch q%d: R=1 spread-on Elapsed %v != spread-off %v", label, qi, g.Elapsed, w.Elapsed)
					}
				}

				if err := off.RunBatchGlobal(queries, bopts, want); err != nil {
					t.Fatal(err)
				}
				if err := on.RunBatchGlobal(queries, bopts, got); err != nil {
					t.Fatal(err)
				}
				for qi := range queries {
					g, w := &got[qi], &want[qi]
					if g.Exact != w.Exact || g.ChunksRead != w.ChunksRead || len(g.Neighbors) != len(w.Neighbors) {
						t.Fatalf("%s/batchglobal q%d: answers differ from spread-off", label, qi)
					}
					for i := range w.Neighbors {
						if g.Neighbors[i] != w.Neighbors[i] {
							t.Fatalf("%s/batchglobal q%d rank %d: %+v != %+v", label, qi, i, g.Neighbors[i], w.Neighbors[i])
						}
					}
					if replication == 1 && g.Elapsed != w.Elapsed {
						t.Fatalf("%s/batchglobal q%d: R=1 spread-on Elapsed %v != spread-off %v", label, qi, g.Elapsed, w.Elapsed)
					}
				}
			}
			if err := off.Close(); err != nil {
				t.Fatal(err)
			}
			if err := on.Close(); err != nil {
				t.Fatal(err)
			}
		}
	}
}

// TestSpreadReadsSplitsLoad pins the point of the policy: under a
// replicated layout with spread reads on, a completion workload's served
// reads land on every shard's billed estimator (nonzero billed time on
// at least two shards), the total served-read count equals the total
// chunks read, and the billed split is visible through ShardLoads. The
// spread-off router, by contrast, bills nothing — the estimator only
// runs for spread routing decisions. Queries go through the single-query
// scatter, where every charged chunk is one served read (the chunk-major
// batch engine would read each chunk once for many queries).
func TestSpreadReadsSplitsLoad(t *testing.T) {
	ds, clusters := fixture(t, 4000, 17, 130)
	coll := ds.Collection
	const shards, pageSize, k = 4, 4096, 10

	queries := make([]vec.Vector, 24)
	for i := range queries {
		queries[i] = coll.Vec(i * 151)
	}

	for _, spread := range []bool{false, true} {
		r := spreadRouterOver(t, ds, clusters, shards, 2, pageSize, RouterOptions{SpreadReads: spread})
		total := 0
		var res Result
		for _, q := range queries {
			if err := r.SearchInto(q, search.Options{K: k}, &res); err != nil {
				t.Fatal(err)
			}
			total += res.ChunksRead
		}
		loads := r.ShardLoads(nil)
		if len(loads) != shards {
			t.Fatalf("spread=%v: ShardLoads returned %d entries, want %d", spread, len(loads), shards)
		}
		var reads int64
		billedOn := 0
		for _, ld := range loads {
			reads += ld.Reads
			if ld.Billed > 0 {
				billedOn++
			}
		}
		if reads != int64(total) {
			t.Fatalf("spread=%v: ShardLoads reads %d != total ChunksRead %d", spread, reads, total)
		}
		if spread && billedOn < 2 {
			t.Fatalf("spread on: billed time on %d shards, want >= 2 (loads %+v)", billedOn, loads)
		}
		if !spread && billedOn != 0 {
			t.Fatalf("spread off: billed estimator ran on %d shards, want 0 (loads %+v)", billedOn, loads)
		}
		if err := r.Close(); err != nil {
			t.Fatal(err)
		}
	}
}

// spreadFaultRouterOver is spreadRouterOver with fault injectors wrapped
// around the stores, for the failover composition tests.
func spreadFaultRouterOver(t testing.TB, ds *imagegen.Dataset, clusters []*cluster.Cluster, shards, replication, pageSize int, cfg faultstore.Config) (*Router, []*faultstore.Store) {
	t.Helper()
	coll := ds.Collection
	p, err := PartitionReplicated(clusters, shards, replication, coll.Dims(), pageSize, nil)
	if err != nil {
		t.Fatal(err)
	}
	stores := make([]chunkfile.Store, shards)
	faults := make([]*faultstore.Store, shards)
	for s := 0; s < shards; s++ {
		physical := append(append([]int(nil), p.Primary[s]...), p.Extra[s]...)
		faults[s] = faultstore.Wrap(chunkfile.NewMemStore(coll, Select(clusters, physical), pageSize), cfg)
		stores[s] = faults[s]
	}
	r, err := NewReplicatedRouterWith(stores, p, nil, RouterOptions{SpreadReads: true})
	if err != nil {
		t.Fatal(err)
	}
	return r, faults
}

// TestSpreadReadsKillAnyShardMatchesHealthy pins that the failover
// semantics of PR 6 compose unchanged with spread routing: with R=2 and
// spread reads on, killing any single shard still yields answers
// byte-identical to a healthy spread-off run — failure costs simulated
// time (the stall is billed to the owning machine), never answers.
func TestSpreadReadsKillAnyShardMatchesHealthy(t *testing.T) {
	ds, clusters := fixture(t, 4000, 17, 130)
	coll := ds.Collection
	const shards, pageSize, k = 4, 4096, 20

	healthy := spreadRouterOver(t, ds, clusters, shards, 2, pageSize, RouterOptions{})
	defer healthy.Close()
	queryIdx := []int{3, 555, 1234, 3999}
	rules := []search.StopRule{nil, search.ChunkBudget(6)}

	for kill := 0; kill < shards; kill++ {
		r, faults := spreadFaultRouterOver(t, ds, clusters, shards, 2, pageSize, faultstore.Config{})
		faults[kill].Kill()
		var got, want Result
		for ri, stop := range rules {
			opts := search.Options{K: k, Stop: stop}
			for _, pos := range queryIdx {
				label := "kill " + strconv.Itoa(kill) + "/rule" + strconv.Itoa(ri)
				if err := healthy.SearchInto(coll.Vec(pos), opts, &want); err != nil {
					t.Fatal(err)
				}
				if err := r.SearchInto(coll.Vec(pos), opts, &got); err != nil {
					t.Fatal(err)
				}
				if got.Degraded || got.ChunksSkipped != 0 {
					t.Fatalf("%s q%d: degraded (skipped %d) despite live replicas", label, pos, got.ChunksSkipped)
				}
				sameAnswer(t, label+"/search", &got, &want)

				if err := healthy.SearchGlobalInto(coll.Vec(pos), opts, &want); err != nil {
					t.Fatal(err)
				}
				if err := r.SearchGlobalInto(coll.Vec(pos), opts, &got); err != nil {
					t.Fatal(err)
				}
				if got.Degraded || got.ChunksSkipped != 0 {
					t.Fatalf("%s q%d global: degraded despite live replicas", label, pos)
				}
				sameAnswer(t, label+"/global", &got, &want)
			}
		}
		if err := r.Close(); err != nil {
			t.Fatal(err)
		}
	}
}

// TestSpreadReadsConcurrentKillStress drives the spread-on failover path
// under -race: single-query scatters race a batch workload on the same
// router while a shard dies mid-flight (with transient read faults and
// injected latency stirring the interleavings, pinned by
// REPRO_FAULT_SEED). Every query must complete without error or
// degradation, and the billed estimator's rollbacks must leave the load
// accounting consistent.
func TestSpreadReadsConcurrentKillStress(t *testing.T) {
	ds, clusters := fixture(t, 4000, 71, 130)
	coll := ds.Collection
	const shards, pageSize, k = 4, 4096, 15

	r, faults := spreadFaultRouterOver(t, ds, clusters, shards, 2, pageSize,
		faultstore.Config{Seed: faultSeed(t), TransientProb: 0.05, Latency: 50 * time.Microsecond})
	defer r.Close()

	queries := make([]vec.Vector, 32)
	for i := range queries {
		queries[i] = coll.Vec(i * 111)
	}
	var wg sync.WaitGroup
	searchErrs := make([]error, 8)
	for g := range searchErrs {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			var res Result
			for i := 0; i < 4; i++ {
				q := coll.Vec((g*997 + i*313) % coll.Len())
				if err := r.SearchInto(q, search.Options{K: k}, &res); err != nil {
					searchErrs[g] = err
					return
				}
				if res.Degraded {
					searchErrs[g] = errDegraded
					return
				}
			}
		}(g)
	}
	done := make(chan error, 1)
	results := make([]search.Result, len(queries))
	go func() {
		done <- r.RunBatch(queries, batchexec.Options{K: k}, results)
	}()
	faults[1].Kill()
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	for g, err := range searchErrs {
		if err != nil {
			t.Fatalf("scatter goroutine %d: %v", g, err)
		}
	}
	for qi := range results {
		if results[qi].Degraded {
			t.Fatalf("q%d: degraded despite R=2", qi)
		}
		if len(results[qi].Neighbors) != k {
			t.Fatalf("q%d: %d neighbors", qi, len(results[qi].Neighbors))
		}
	}
	for s, ld := range r.ShardLoads(nil) {
		if ld.Reads < 0 || ld.Billed < 0 {
			t.Fatalf("shard %d: negative load accounting after rollbacks: %+v", s, ld)
		}
	}
}

// errDegraded reports an unexpectedly degraded result in the stress test.
var errDegraded = degradedError{}

type degradedError struct{}

func (degradedError) Error() string { return "unexpected degraded result with R=2" }
