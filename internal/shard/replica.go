// Replica placement: the availability half of the shard layer.
//
// With replication factor R every cluster lives on R distinct shards: its
// primary — the shard the plain Partition assigns, unchanged, so R=1
// layouts are byte-identical to the pre-replication layer — plus R−1
// replicas. Each shard's physical chunk file is its primary chunks
// followed by the replica chunks placed on it; the router serves queries
// over the primary prefix only (the shard's logical view), so every
// descriptor is scanned exactly once per query and merged neighbor lists
// stay free of duplicates. Replica chunks are touched only by the
// failover read path when the primary's shard is down.
//
// Placement of the replicas follows Tavenard–Amsaleg–Jégou's observation
// (PAPERS.md) that replicating the *hot* clusters is what tames response
// time variability: when a recorded workload sample is supplied, clusters
// are placed hottest first, each replica going to the least-loaded
// eligible shard (distinct from the primary and the cluster's other
// replicas, load measured in placed heat with padded bytes as the cold
// tiebreak). Without a sample the r-th replica of a cluster simply goes
// r shards past its primary, round-robin. Both procedures are fully
// deterministic.
package shard

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"math"
	"os"
	"slices"

	"repro/internal/chunkfile"
	"repro/internal/cluster"
	"repro/internal/search"
	"repro/internal/vec"
)

// MaxShards caps the shard count of a replicated layout: the failover
// read path tracks tried candidates in a 64-bit set.
const MaxShards = 64

// ChunkLoc addresses one physical chunk: chunk Chunk of shard Shard's
// physical store.
type ChunkLoc struct {
	Shard int32
	Chunk int32
}

// Placement records where every logical chunk's replicas live. A shard's
// logical chunks are the first NumPrimary[s] chunks of its physical
// store; Replicas[s][i] lists the R−1 physical locations holding copies
// of logical chunk i of shard s, in placement order. The zero R−1 case
// (R=1) carries empty replica lists and is exactly the pre-replication
// layout.
type Placement struct {
	// R is the replication factor: every cluster lives on R distinct
	// shards (1 primary + R−1 replicas).
	R int
	// NumPrimary is each shard's logical (primary) chunk count.
	NumPrimary []int
	// Replicas holds, per shard and logical chunk, the R−1 replica
	// locations.
	Replicas [][][]ChunkLoc
	// Primary holds each shard's primary cluster indexes in ascending
	// order — the plain Partition assignment. Build-side only; nil after
	// LoadPlacement.
	Primary [][]int
	// Extra holds the cluster indexes replicated onto each shard, in
	// physical chunk order after the primaries. Build-side only; nil
	// after LoadPlacement.
	Extra [][]int
}

// PartitionReplicated assigns clusters to shards with replication factor
// replication: primaries by the plain Partition (so the logical layout —
// and with it every healthy query result — is independent of R), replicas
// hottest-first when heat is non-nil (one heat value per cluster; see
// Heat) and round-robin otherwise. A shard's physical chunk order is its
// ascending primaries followed by its replicas in placement order.
func PartitionReplicated(clusters []*cluster.Cluster, shards, replication, dims, pageSize int, heat []float64) (*Placement, error) {
	if err := validateReplication(clusters, shards, replication, heat); err != nil {
		return nil, err
	}
	assign, err := Partition(clusters, shards, dims, pageSize)
	if err != nil {
		return nil, err
	}
	return placeReplicas(clusters, assign, shards, replication, dims, pageSize, heat)
}

// PartitionReplicatedHeated is PartitionReplicated with heat-aware
// *primary* balancing: the primaries come from PartitionHeated — load
// unit heat × padded bytes — instead of the byte-balanced Partition,
// and the replicas place exactly as in PartitionReplicated (hottest
// first onto the least-heat-loaded shard). Healthy results under this
// layout are correct and deterministic but not byte-identical to the
// byte-balanced layout's, because the chunk→shard assignment differs;
// the facade therefore gates it behind BuildConfig.HeatBalance. With a
// nil or all-zero heat both halves fall back to their heat-free
// behavior and the result equals PartitionReplicated's.
func PartitionReplicatedHeated(clusters []*cluster.Cluster, shards, replication, dims, pageSize int, heat []float64) (*Placement, error) {
	if err := validateReplication(clusters, shards, replication, heat); err != nil {
		return nil, err
	}
	assign, err := PartitionHeated(clusters, shards, dims, pageSize, heat)
	if err != nil {
		return nil, err
	}
	return placeReplicas(clusters, assign, shards, replication, dims, pageSize, heat)
}

// validateReplication checks the shared preconditions of the replicated
// partition entry points.
func validateReplication(clusters []*cluster.Cluster, shards, replication int, heat []float64) error {
	if replication < 1 {
		return fmt.Errorf("shard: replication factor %d < 1", replication)
	}
	if replication > shards {
		return fmt.Errorf("shard: replication factor %d > shard count %d", replication, shards)
	}
	if replication > 1 && shards > MaxShards {
		return fmt.Errorf("shard: replicated layouts support at most %d shards, got %d", MaxShards, shards)
	}
	if heat != nil && len(heat) != len(clusters) {
		return fmt.Errorf("shard: heat length %d != cluster count %d", len(heat), len(clusters))
	}
	return nil
}

// placeReplicas builds the Placement over an already-chosen primary
// assignment: hottest-first replica placement when heat carries signal,
// round-robin otherwise. An all-zero heat is normalized to nil here — an
// empty workload sample must behave exactly like no sample (round-robin
// replicas), not silently steer the greedy with all-equal votes.
func placeReplicas(clusters []*cluster.Cluster, assign [][]int, shards, replication, dims, pageSize int, heat []float64) (*Placement, error) {
	if !heatUsable(heat) {
		heat = nil
	}
	p := &Placement{
		R:          replication,
		NumPrimary: make([]int, shards),
		Replicas:   make([][][]ChunkLoc, shards),
		Primary:    assign,
		Extra:      make([][]int, shards),
	}
	primShard := make([]int32, len(clusters))
	primChunk := make([]int32, len(clusters))
	for s, idxs := range assign {
		p.NumPrimary[s] = len(idxs)
		p.Replicas[s] = make([][]ChunkLoc, len(idxs))
		for i, ci := range idxs {
			primShard[ci] = int32(s)
			primChunk[ci] = int32(i)
		}
	}
	if replication == 1 {
		return p, nil
	}

	// Placement order: hottest cluster first when a workload sample is
	// supplied (ties toward the lower cluster index), ascending cluster
	// index otherwise.
	order := make([]int, len(clusters))
	for i := range order {
		order[i] = i
	}
	if heat != nil {
		slices.SortFunc(order, func(a, b int) int {
			switch {
			case heat[a] > heat[b]:
				return -1
			case heat[a] < heat[b]:
				return 1
			}
			return a - b
		})
	}

	// Shard load for the heat-driven greedy: the heat already placed on
	// the shard (primaries seed it), with placed padded bytes as the cold
	// tiebreak and the shard index as the final one.
	heatLoad := make([]float64, shards)
	byteLoad := make([]int64, shards)
	for s, idxs := range assign {
		for _, ci := range idxs {
			if heat != nil {
				heatLoad[s] += heat[ci]
			}
			byteLoad[s] += int64(chunkfile.PaddedBytes(clusters[ci].Count(), dims, pageSize))
		}
	}

	for _, ci := range order {
		ps := int(primShard[ci])
		var taken uint64
		taken |= 1 << ps
		for r := 1; r < replication; r++ {
			t := -1
			if heat == nil {
				t = (ps + r) % shards
			} else {
				for s := 0; s < shards; s++ {
					if taken&(1<<s) != 0 {
						continue
					}
					if t < 0 || heatLoad[s] < heatLoad[t] ||
						(heatLoad[s] == heatLoad[t] && byteLoad[s] < byteLoad[t]) {
						t = s
					}
				}
			}
			taken |= 1 << t
			loc := ChunkLoc{Shard: int32(t), Chunk: int32(p.NumPrimary[t] + len(p.Extra[t]))}
			p.Extra[t] = append(p.Extra[t], ci)
			p.Replicas[primShard[ci]][primChunk[ci]] = append(p.Replicas[primShard[ci]][primChunk[ci]], loc)
			heatLoad[t] += heatFor(heat, ci)
			byteLoad[t] += int64(chunkfile.PaddedBytes(clusters[ci].Count(), dims, pageSize))
		}
	}
	return p, nil
}

func heatFor(heat []float64, ci int) float64 {
	if heat == nil {
		return 0
	}
	return heat[ci]
}

// Heat estimates per-cluster query heat from a recorded workload sample:
// each sample query votes for the topM clusters nearest its descriptor
// (by centroid distance, the same ranking the search walks), and a
// cluster's heat is its vote count. The result feeds the hottest-first
// replica placement of PartitionReplicated and the heat-balanced primary
// assignment of PartitionHeated. A topM of zero or less selects the
// default of 5 votes per query; a topM above the cluster count is capped
// at it.
//
// Zero-heat fallback: a nil or empty sample returns all zeros — no skew
// signal, never a fabricated one — and both consumers treat an all-zero
// heat exactly like a nil heat (round-robin replicas, byte-balanced
// primaries), so an empty sample can never silently skew a layout.
// Sample queries whose dimensionality does not match the clusters' are
// skipped for the same reason: a malformed recording must not vote. If
// every query is skipped the result is again all zeros.
func Heat(clusters []*cluster.Cluster, sample []vec.Vector, topM int) []float64 {
	heat := make([]float64, len(clusters))
	if len(sample) == 0 || len(clusters) == 0 {
		return heat
	}
	if topM <= 0 {
		topM = 5
	}
	if topM > len(clusters) {
		topM = len(clusters)
	}
	dims := len(clusters[0].Centroid)
	metas := make([]chunkfile.Meta, len(clusters))
	for i, cl := range clusters {
		metas[i] = chunkfile.Meta{Centroid: cl.Centroid, Radius: cl.Radius}
	}
	var ranked []search.RankedChunk
	for _, q := range sample {
		if len(q) != dims {
			continue
		}
		ranked = search.RankChunks(q, metas, ranked[:0])
		for _, rc := range ranked[:topM] {
			heat[rc.Idx]++
		}
	}
	return heat
}

const placementMagic = "EFF2REPL"

// PlacementName is the placement sidecar's file name inside a sharded
// index directory. The file exists only for replicated (R>1) layouts.
const PlacementName = "replicas"

// SavePlacement writes the placement sidecar to path (build-side Primary
// and Extra are not persisted; OpenSharded-style consumers only need the
// logical sizes and replica locations).
func SavePlacement(path string, p *Placement) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("shard: create placement file: %w", err)
	}
	defer f.Close()
	w := bufio.NewWriter(f)
	if _, err := w.WriteString(placementMagic); err != nil {
		return err
	}
	writeU32 := func(v int) error {
		var b [4]byte
		binary.LittleEndian.PutUint32(b[:], uint32(v))
		_, err := w.Write(b[:])
		return err
	}
	if err := writeU32(p.R); err != nil {
		return err
	}
	if err := writeU32(len(p.NumPrimary)); err != nil {
		return err
	}
	for s, n := range p.NumPrimary {
		if err := writeU32(n); err != nil {
			return err
		}
		for i := 0; i < n; i++ {
			locs := p.Replicas[s][i]
			if err := writeU32(len(locs)); err != nil {
				return err
			}
			for _, loc := range locs {
				if err := writeU32(int(loc.Shard)); err != nil {
					return err
				}
				if err := writeU32(int(loc.Chunk)); err != nil {
					return err
				}
			}
		}
	}
	if err := w.Flush(); err != nil {
		return fmt.Errorf("shard: write placement file: %w", err)
	}
	if err := f.Sync(); err != nil {
		return fmt.Errorf("shard: sync placement file: %w", err)
	}
	return nil
}

// LoadPlacement reads a placement sidecar written by SavePlacement.
func LoadPlacement(path string) (*Placement, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("shard: read placement file: %w", err)
	}
	if len(raw) < 16 || string(raw[:8]) != placementMagic {
		return nil, fmt.Errorf("shard: placement file: %w", chunkfile.ErrBadMagic)
	}
	o := 8
	readU32 := func() (int, error) {
		if o+4 > len(raw) {
			return 0, fmt.Errorf("shard: placement file truncated at byte %d", o)
		}
		v := int(binary.LittleEndian.Uint32(raw[o : o+4]))
		o += 4
		return v, nil
	}
	p := &Placement{}
	if p.R, err = readU32(); err != nil {
		return nil, err
	}
	shards, err := readU32()
	if err != nil {
		return nil, err
	}
	if p.R < 1 || shards < 1 || shards > math.MaxInt32 || p.R > shards {
		return nil, fmt.Errorf("shard: placement file has invalid replication %d over %d shards", p.R, shards)
	}
	if shards > len(raw) { // each shard entry takes well over one byte
		return nil, fmt.Errorf("shard: placement file shard count %d invalid", shards)
	}
	p.NumPrimary = make([]int, shards)
	p.Replicas = make([][][]ChunkLoc, shards)
	for s := 0; s < shards; s++ {
		n, err := readU32()
		if err != nil {
			return nil, err
		}
		if n < 0 || n > len(raw) {
			return nil, fmt.Errorf("shard: placement file shard %d chunk count %d invalid", s, n)
		}
		p.NumPrimary[s] = n
		p.Replicas[s] = make([][]ChunkLoc, n)
		for i := 0; i < n; i++ {
			k, err := readU32()
			if err != nil {
				return nil, err
			}
			if k != p.R-1 {
				return nil, fmt.Errorf("shard: placement file shard %d chunk %d has %d replicas, want %d", s, i, k, p.R-1)
			}
			locs := make([]ChunkLoc, k)
			for r := range locs {
				sh, err := readU32()
				if err != nil {
					return nil, err
				}
				ch, err := readU32()
				if err != nil {
					return nil, err
				}
				if sh < 0 || sh >= shards || sh == s || ch < 0 {
					return nil, fmt.Errorf("shard: placement file shard %d chunk %d replica %d location (%d,%d) invalid", s, i, r, sh, ch)
				}
				locs[r] = ChunkLoc{Shard: int32(sh), Chunk: int32(ch)}
			}
			p.Replicas[s][i] = locs
		}
	}
	if o != len(raw) {
		return nil, fmt.Errorf("shard: placement file has %d trailing bytes", len(raw)-o)
	}
	return p, nil
}
