// Global-budget scatter-gather: the Router's second budget discipline.
//
// The per-shard paths in shard.go apply the stop rule once per shard, so
// a budgeted sharded search reads S× the chunks of the unsharded index at
// the same per-shard budget. The global mode in this file closes that
// gap: every shard's ranked chunk list (the exported search.RankChunks
// order) merges into ONE global centroid-rank order, and a single total
// budget — search.ChunkBudget / search.TimeBudget / search.ToCompletion
// semantics applied globally — is spent walking that order, dispatching
// each charged chunk to the shard that owns it.
//
// The cost model is unchanged: one simulated 2005 machine per shard.
// Each charged chunk advances its owning shard's simdisk.Pipeline (so a
// shard is charged exactly the chunks it served, in its own charge
// order), the Elapsed the stop rule consults — and the merged result
// reports as Simulated — is the max over the shards' pipelines (they run
// in parallel), and ChunksRead is the sum, i.e. the global charge count.
// Every shard pays the index read for its own chunk count before serving,
// exactly as in the per-shard mode.
//
// Equivalence pins (global_test.go):
//
//   - Global budget on 1 shard is byte-identical to the unsharded
//     search.Searcher, including Elapsed and IndexRead, under all three
//     stop rules.
//   - Global run-to-completion equals the scan oracle (and the unsharded
//     completion search): the suffix minima over the merged order are a
//     valid exactness certificate for the union of the shards.
//   - Global ChunkBudget(B) on S shards reads exactly min(B, total)
//     chunks in total — the per-shard mode's S× multiplier is gone.
package shard

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/chunkfile"
	"repro/internal/knn"
	"repro/internal/multiquery"
	"repro/internal/search"
	"repro/internal/search/batchexec"
	"repro/internal/simdisk"
	"repro/internal/vec"
)

// globalStore presents the union of the shards' stores as one virtual
// chunk store in shard-major chunk order: global chunk g lives on shard
// owner[g] at local index local[g]. Ranking the concatenated metas with
// search.RankChunks — which sorts by (squared centroid distance,
// ascending global index) — therefore yields exactly the k-way merge of
// the per-shard RankChunks lists with cross-shard ties broken by
// (ascending shard, ascending local chunk index): the global
// centroid-rank order the budget is spent in. ReadChunk routes to the
// owning shard's store, so the virtual store inherits the Store
// contract's concurrent-ReadChunk safety from the shard stores.
type globalStore struct {
	r      *Router
	stores []chunkfile.Store
	dims   int
	metas  []chunkfile.Meta
	owner  []int32 // owning shard per global chunk
	local  []int32 // index within the owning shard's store
}

// newGlobalStore concatenates the shards' logical chunk indexes (the
// primary prefixes): replica chunks are copies, never ranked or walked,
// and every read goes through the views' replicated read path.
func newGlobalStore(r *Router, shards []routedShard, dims int) *globalStore {
	total := 0
	for s := range shards {
		total += len(shards[s].view.Meta())
	}
	g := &globalStore{
		r:      r,
		dims:   dims,
		metas:  make([]chunkfile.Meta, 0, total),
		owner:  make([]int32, 0, total),
		local:  make([]int32, 0, total),
		stores: make([]chunkfile.Store, len(shards)),
	}
	for s := range shards {
		g.stores[s] = shards[s].view
		for ci, m := range shards[s].view.Meta() {
			g.metas = append(g.metas, m)
			g.owner = append(g.owner, int32(s))
			g.local = append(g.local, int32(ci))
		}
	}
	return g
}

// Dims implements chunkfile.Store.
func (g *globalStore) Dims() int { return g.dims }

// Meta implements chunkfile.Store: the concatenated per-shard chunk
// indexes, shard-major. Callers must not modify it.
func (g *globalStore) Meta() []chunkfile.Meta { return g.metas }

// ReadChunk implements chunkfile.Store by routing global chunk i to the
// owning shard's store. Safe for concurrent use with distinct Data
// values, like the shard stores it delegates to.
func (g *globalStore) ReadChunk(i int, data *chunkfile.Data) error {
	return g.stores[g.owner[i]].ReadChunk(int(g.local[i]), data)
}

// Close implements chunkfile.Store as a no-op: the Router owns the shard
// stores and closes them in Router.Close.
func (g *globalStore) Close() error { return nil }

// Machines implements chunkfile.MachineRouter: with the router's
// spread-reads policy on, a read through the virtual store may be served
// by any machine of the fleet, and the owner is per chunk — reported as
// -1 so consumers bill stalls through their own chunk→shard mapping
// (the engine's opts.Shards, SearchGlobalInto's gstore.owner). With
// spread off it reports one machine, disabling per-machine accounting.
func (g *globalStore) Machines() (count, owner int) {
	if g.r.spread.Load() {
		return len(g.stores), -1
	}
	return 1, 0
}

// gscratch is the pooled per-call state of one global-budget single
// query: the merged ranking, its suffix bounds, the scan buffers, the
// global k-NN heap, and one pipeline plus served-chunk counter per shard.
type gscratch struct {
	ranked []search.RankedChunk
	suffix []float64
	d2     []float64
	data   chunkfile.Data
	heap   *knn.Heap
	pipes  []simdisk.Pipeline
	counts []int
	skips  []int
	events []knn.Neighbor
	// serve and inits carry the spread-reads serving ledger: one
	// zero-origin pipeline per shard billing the machine that actually
	// served each read, plus each shard's index-read origin to add back
	// when folding. Empty while spread reads are off.
	serve []simdisk.Pipeline
	inits []time.Duration
}

// SearchGlobal runs one query under the global budget discipline and
// returns the merged result. See SearchGlobalInto.
func (r *Router) SearchGlobal(q vec.Vector, opts search.Options) (*Result, error) {
	res := &Result{}
	if err := r.SearchGlobalInto(q, opts, res); err != nil {
		return nil, err
	}
	return res, nil
}

// SearchGlobalInto runs one query spending a single total budget across
// the shards: chunks are processed in the global centroid-rank order (the
// merge of every shard's search.RankChunks list, cross-shard ties broken
// by ascending shard index), each processed chunk is charged to its
// owning shard's simulated pipeline, and opts.Stop is applied after every
// chunk against the global chunk count and the max over the shards'
// simulated clocks. The certificate for Exact is the suffix minimum over
// the merged order — valid for the union of the shards, so a
// run-to-completion global search returns the exact global k-NN.
//
// res reports ChunksRead as the global total (equal to the sum over
// PerShard), Elapsed as the max over the shards' machines, IndexRead as
// the max over the shards' index reads, and one PerShard entry per shard
// with the chunks that shard actually served and its own simulated clock
// (its index read plus its served chunks, in its charge order). In global
// mode a per-shard ShardCost.Exact mirrors the merged certificate: no
// shard holds an independent one. The Neighbors and PerShard slices
// already in res are reused when they have capacity; on error no fields
// of res are valid. Events delivered to opts.Trace carry the global
// chunk ordinal and the chunk's index in the virtual concatenated store.
//
// On one shard the merged order, the single pipeline, and the certificate
// all degenerate to the unsharded search path, so the result is
// byte-identical to search.Searcher.SearchInto — including Elapsed.
func (r *Router) SearchGlobalInto(q vec.Vector, opts search.Options, res *Result) error {
	start := time.Now()
	opts = normalize(opts)
	if len(q) != r.dims {
		return fmt.Errorf("shard: query dims %d != store dims %d", len(q), r.dims)
	}
	model := opts.Model
	if model == nil {
		model = r.model
	}

	sc := r.gpool.Get().(*gscratch)
	defer r.gpool.Put(sc)
	n := len(r.shards)

	// Step 1, globally: rank the concatenated metas. One sort over the
	// union is exactly the merge of the per-shard ranked lists (see the
	// globalStore comment), and its suffix minima certify exactness over
	// all shards at once.
	sc.ranked = search.RankChunks(q, r.gstore.metas, sc.ranked[:0])
	sc.suffix = search.SuffixBounds(sc.ranked, sc.suffix[:0])

	// One simulated machine per shard, each paying its own index read;
	// the fleet's clock starts at the slowest shard's ranking.
	if cap(sc.pipes) < n {
		sc.pipes = make([]simdisk.Pipeline, n)
	}
	pipes := sc.pipes[:n]
	if cap(sc.counts) < n {
		sc.counts = make([]int, n)
	}
	counts := sc.counts[:n]
	if cap(sc.skips) < n {
		sc.skips = make([]int, n)
	}
	skips := sc.skips[:n]
	// With spread reads on, a parallel zero-origin serving ledger per
	// shard records which machine each read actually landed on; the
	// nominal pipes keep billing owners and driving the stop rule, so
	// answers are independent of the routing policy.
	if r.spread.Load() {
		if cap(sc.serve) < n {
			sc.serve = make([]simdisk.Pipeline, n)
		}
		sc.serve = sc.serve[:n]
	} else {
		sc.serve = sc.serve[:0]
	}
	sc.inits = sc.inits[:0]
	entrySize := chunkfile.EntrySize(r.dims)
	indexRead := time.Duration(0)
	for s := range pipes {
		init := model.IndexReadTime(len(r.shards[s].view.Meta()), entrySize)
		pipes[s].Reset(model, opts.Overlap, init)
		counts[s] = 0
		skips[s] = 0
		if len(sc.serve) > 0 {
			sc.serve[s].Reset(model, opts.Overlap, 0)
			sc.inits = append(sc.inits, init)
		}
		if init > indexRead {
			indexRead = init
		}
	}

	neighbors := res.Neighbors[:0]
	perShard := res.PerShard[:0]
	*res = Result{IndexRead: indexRead, Elapsed: indexRead}
	if sc.heap == nil {
		sc.heap = knn.NewHeap(opts.K)
	} else {
		sc.heap.Reset(opts.K)
	}
	heap := sc.heap

	// Step 2+3, globally: walk the merged order, dispatch each chunk to
	// its owning shard, charge that shard's pipeline, and apply the stop
	// rule after every chunk against the global count and the fleet's
	// elapsed (the max over the shards — they run in parallel).
	for pos := range sc.ranked {
		if opts.Ctx != nil {
			if err := opts.Ctx.Err(); err != nil {
				res.Neighbors, res.PerShard = neighbors, perShard
				return fmt.Errorf("shard: global search canceled after %d chunks: %w", res.ChunksRead, err)
			}
		}
		rc := &sc.ranked[pos]
		s := r.gstore.owner[rc.Idx]
		m := &r.gstore.metas[rc.Idx]
		if err := r.gstore.ReadChunk(rc.Idx, &sc.data); err != nil {
			if errors.Is(err, chunkfile.ErrUnavailable) {
				// No live replica: charge the owning shard's machine for
				// the failed attempts, skip the chunk without spending
				// budget, and degrade. Same contract as the per-shard path.
				pipes[s].Stall(sc.data.Stall)
				if len(sc.serve) > 0 {
					sc.serve[s].Stall(sc.data.Stall)
				}
				sc.data.Stall = 0
				skips[s]++
				res.ChunksSkipped++
				res.Degraded = true
				if e := pipes[s].Elapsed(); e > res.Elapsed {
					res.Elapsed = e
				}
				continue
			}
			res.Neighbors, res.PerShard = neighbors, perShard
			return &ShardError{Shard: int(s), Err: err}
		}
		stall := sc.data.Stall
		sc.data.Stall = 0
		pipes[s].Stall(stall)
		sc.d2 = search.ScanChunk(q, r.dims, &sc.data, heap, sc.d2)
		resident := len(sc.serve) > 0 && model.ChunkResident(rc.Idx)
		elapsed := pipes[s].ChunkAt(rc.Idx, m.Bytes, m.Count)
		if len(sc.serve) > 0 {
			// The stall bills the owning shard (its view ran the retries);
			// the chunk bills the machine that actually served the read,
			// at the residency the nominal ChunkAt sees.
			served := int(sc.data.Served)
			if served < 0 || served >= len(sc.serve) {
				served = int(s)
			}
			sc.serve[s].Stall(stall)
			sc.serve[served].ChunkCharged(m.Bytes, m.Count, resident)
		}
		if elapsed < res.Elapsed {
			elapsed = res.Elapsed
		}
		res.ChunksRead++
		res.Elapsed = elapsed
		counts[s]++

		if opts.Trace != nil {
			sc.events = heap.AppendAll(sc.events[:0])
			opts.Trace(search.Event{
				Ordinal:    pos + 1,
				ChunkIndex: rc.Idx,
				ChunkCount: m.Count,
				Elapsed:    elapsed,
				Neighbors:  sc.events,
			})
		}

		if opts.Stop.Done(res.ChunksRead, elapsed, heap.Kth(), sc.suffix[pos+1]) {
			res.Exact = sc.suffix[pos+1] > heap.Kth()
			break
		}
	}
	if res.ChunksRead+res.ChunksSkipped == len(sc.ranked) {
		res.Exact = true
	}
	if res.Degraded {
		// A skipped chunk before the stop point may hold closer neighbors
		// than any certificate can rule out.
		res.Exact = false
	}
	res.Neighbors = heap.SortedInto(neighbors)
	for s := range pipes {
		perShard = append(perShard, ShardCost{
			ChunksRead:    counts[s],
			ChunksSkipped: skips[s],
			Elapsed:       pipes[s].Elapsed(),
			Exact:         res.Exact,
		})
	}
	if len(sc.serve) > 0 {
		// Fold the serving ledger: each shard's real clock is its own
		// index read plus the serving time billed to it, and the merged
		// Simulated is the max over those clocks — the machines run in
		// parallel. The stop rule above already consumed the nominal
		// owner-billed elapsed, so answers are unchanged; with spread on,
		// only the reported times move. Trace events stay nominal.
		folded := time.Duration(0)
		for t := range sc.serve {
			e := sc.inits[t] + sc.serve[t].Elapsed()
			perShard[t].Elapsed = e
			if e > folded {
				folded = e
			}
		}
		res.Elapsed = folded
	}
	res.PerShard = perShard
	res.ShardsDown = r.DownShards()
	res.Wall = time.Since(start)
	return nil
}

// RunBatchGlobal executes a whole workload under the global budget
// discipline on the chunk-major batch engine: the engine runs over the
// virtual concatenated store (so every query ranks and walks the same
// merged order SearchGlobalInto does, and a chunk wanted by several
// queries in a round is still read and decoded once), with the
// chunk→shard mapping switching the engine's cost model to one simulated
// machine per (query, shard). Outcomes are byte-identical to per-query
// SearchGlobalInto — results[qi] reports the global ChunksRead, the
// max-over-shards Elapsed and IndexRead, and the global Exact
// certificate. The results array is caller-owned exactly as in RunBatch;
// on error no results are valid.
func (r *Router) RunBatchGlobal(queries []vec.Vector, opts batchexec.Options, results []search.Result) error {
	opts.Shards = r.gstore.owner
	opts.NumShards = len(r.shards)
	return r.gengine.Run(queries, opts, results)
}

// RunBatchGlobalStream is RunBatchGlobal with streaming completions:
// done(qi) fires exactly once per query the moment the global-budget
// engine retires it, with results[qi] fully written. One engine runs the
// whole fleet's merged walk, so the callback contract is exactly the
// batch engine's RunStream: callbacks for distinct queries may fire
// concurrently and must not block. A nil done is RunBatchGlobal.
func (r *Router) RunBatchGlobalStream(queries []vec.Vector, opts batchexec.Options, results []search.Result, done func(query int)) error {
	opts.Shards = r.gstore.owner
	opts.NumShards = len(r.shards)
	return r.gengine.RunStream(queries, opts, results, done)
}

// MultiQueryGlobal runs a multi-descriptor (whole-image) query with the
// bag's per-descriptor chunk budget spent globally: each descriptor's
// search walks the merged centroid-rank order across all shards instead
// of spending the budget once per shard. Aggregation into image votes is
// the same as MultiQuery's.
func (r *Router) MultiQueryGlobal(descriptors []vec.Vector, opts multiquery.Options) (*multiquery.Result, error) {
	return r.multiQueryVia(descriptors, opts, r.RunBatchGlobal)
}
