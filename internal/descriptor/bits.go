package descriptor

import "math"

// floatBits and bitsFloat isolate the IEEE-754 reinterpretation used by the
// fixed-width record codec.

func floatBits(f float32) uint32 { return math.Float32bits(f) }

func bitsFloat(b uint32) float32 { return math.Float32frombits(b) }
