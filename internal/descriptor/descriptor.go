// Package descriptor defines the on-disk and in-memory representation of
// local image descriptors and descriptor collections.
//
// Following the paper (§5.2), a descriptor is a 24-dimensional vector of
// floats plus an identifier, consuming exactly 100 bytes on disk
// (4-byte little-endian id + 24 × 4-byte IEEE-754 float32 coordinates).
// Collections are stored sequentially in a single file, as the paper's
// description pipeline does (§4.1).
package descriptor

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"os"
	"slices"

	"repro/internal/vec"
)

// ID identifies a descriptor within a collection. The high bits carry the
// source image id by convention of the generator (see ImageOf).
type ID uint32

// DescriptorsPerImageShift fixes how generator IDs encode provenance:
// id = imageIndex<<Shift | ordinal. 12 bits allow 4096 descriptors per
// image, far beyond the "few hundreds" the paper reports per image.
const DescriptorsPerImageShift = 12

// ImageOf returns the source image index encoded in a generator-assigned id.
func (id ID) ImageOf() uint32 { return uint32(id) >> DescriptorsPerImageShift }

// Descriptor is one local descriptor: an identifier plus its position in
// 24-dimensional space.
type Descriptor struct {
	ID  ID
	Vec vec.Vector
}

// EncodedSize is the exact on-disk size of one descriptor, matching the
// paper's 100 bytes (id + 24 dims).
const EncodedSize = 4 + vec.Dims*4

// fileMagic identifies a descriptor collection file.
const fileMagic = "EFF2DESC"

// headerSize is magic + uint32 dims + uint64 count.
const headerSize = 8 + 4 + 8

// Collection is an in-memory set of descriptors. Vectors are stored in a
// single contiguous backing array so that a 5M-descriptor collection costs
// one allocation, mirroring the paper's "fits in memory" constraint for the
// static SR-tree build (§2).
type Collection struct {
	dims    int
	ids     []ID
	backing []float32
}

// NewCollection returns an empty collection for vectors of the given
// dimensionality, pre-sized for capacity n.
func NewCollection(dims, n int) *Collection {
	return &Collection{
		dims:    dims,
		ids:     make([]ID, 0, n),
		backing: make([]float32, 0, n*dims),
	}
}

// Dims returns the dimensionality of the collection's vectors.
func (c *Collection) Dims() int { return c.dims }

// Len returns the number of descriptors held.
func (c *Collection) Len() int { return len(c.ids) }

// Append adds a descriptor. The vector is copied.
func (c *Collection) Append(id ID, v vec.Vector) {
	if len(v) != c.dims {
		panic(fmt.Sprintf("descriptor: vector dims %d != collection dims %d", len(v), c.dims))
	}
	c.ids = append(c.ids, id)
	c.backing = append(c.backing, v...)
}

// At returns the i-th descriptor. The returned vector aliases the
// collection's backing array and must not be modified.
func (c *Collection) At(i int) Descriptor {
	return Descriptor{ID: c.ids[i], Vec: c.Vec(i)}
}

// Vec returns the i-th vector, aliasing the backing array.
func (c *Collection) Vec(i int) vec.Vector {
	return vec.Vector(c.backing[i*c.dims : (i+1)*c.dims])
}

// IDAt returns the i-th descriptor id.
func (c *Collection) IDAt(i int) ID { return c.ids[i] }

// Backing returns the contiguous flattened vector storage (Len() × Dims()
// float32s, row i at [i*Dims() : (i+1)*Dims()]). It aliases the
// collection's memory and must be treated as read-only; batch distance
// kernels (vec.SquaredDistancesTo) consume it directly.
func (c *Collection) Backing() []float32 { return c.backing }

// Subset returns a new collection holding the descriptors at the given
// indexes (vectors copied).
func (c *Collection) Subset(idx []int) *Collection {
	out := NewCollection(c.dims, len(idx))
	for _, i := range idx {
		out.Append(c.ids[i], c.Vec(i))
	}
	return out
}

// Bounds returns the per-dimension min/max over the whole collection.
func (c *Collection) Bounds() vec.Bounds {
	b := vec.NewBounds(c.dims)
	for i := 0; i < c.Len(); i++ {
		b.Absorb(c.Vec(i))
	}
	return b
}

// errors returned by the decoder.
var (
	ErrBadMagic  = errors.New("descriptor: bad collection file magic")
	ErrTruncated = errors.New("descriptor: truncated collection file")
)

// Write serializes the collection: header (magic, dims, count) followed by
// count fixed-size records.
func (c *Collection) Write(w io.Writer) error {
	bw := bufio.NewWriterSize(w, 1<<20)
	if _, err := bw.WriteString(fileMagic); err != nil {
		return err
	}
	var h [12]byte
	binary.LittleEndian.PutUint32(h[0:4], uint32(c.dims))
	binary.LittleEndian.PutUint64(h[4:12], uint64(c.Len()))
	if _, err := bw.Write(h[:]); err != nil {
		return err
	}
	rec := make([]byte, 4+c.dims*4)
	for i := 0; i < c.Len(); i++ {
		encodeRecord(rec, c.ids[i], c.Vec(i))
		if _, err := bw.Write(rec); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// maxPreallocBytes caps how much memory Read pre-allocates from the
// header count alone: a corrupt header cannot force a giant allocation
// regardless of the dims/count combination it claims. Larger (honest)
// collections grow geometrically as their blocks arrive, bounded by the
// bytes actually read.
const maxPreallocBytes = 64 << 20

// Read parses a collection previously produced by Write. The collection
// is pre-sized from the header count and records are decoded in bulk
// blocks directly into the backing array — no per-record copies. A
// header count the input cannot back is reported as ErrTruncated, never
// a panic or an unbounded allocation.
func Read(r io.Reader) (*Collection, error) {
	br := bufio.NewReaderSize(r, 1<<20)
	head := make([]byte, headerSize)
	if _, err := io.ReadFull(br, head); err != nil {
		return nil, fmt.Errorf("descriptor: reading header: %w", err)
	}
	if string(head[:8]) != fileMagic {
		return nil, ErrBadMagic
	}
	dims := int(binary.LittleEndian.Uint32(head[8:12]))
	count64 := binary.LittleEndian.Uint64(head[12:20])
	if dims <= 0 || dims > 4096 {
		return nil, fmt.Errorf("descriptor: implausible dims %d", dims)
	}
	rec := 4 + dims*4
	if count64 > uint64(math.MaxInt-headerSize)/uint64(rec) {
		return nil, fmt.Errorf("descriptor: implausible record count %d", count64)
	}
	count := int(count64)
	pre := count
	if maxPre := maxPreallocBytes / rec; pre > maxPre {
		pre = maxPre
	}
	c := NewCollection(dims, pre)
	blockRecs := (1 << 20) / rec
	if blockRecs < 1 {
		blockRecs = 1
	}
	if blockRecs > count && count > 0 {
		blockRecs = count
	}
	buf := make([]byte, blockRecs*rec)
	for filled := 0; filled < count; {
		n := blockRecs
		if rem := count - filled; n > rem {
			n = rem
		}
		if _, err := io.ReadFull(br, buf[:n*rec]); err != nil {
			return nil, fmt.Errorf("%w: record %d: %v", ErrTruncated, filled, err)
		}
		c.ids = slices.Grow(c.ids, n)[:filled+n]
		c.backing = slices.Grow(c.backing, n*dims)[:(filled+n)*dims]
		DecodeRecords(buf, n, dims, c.ids[filled:], c.backing[filled*dims:])
		filled += n
	}
	return c, nil
}

// SaveFile writes the collection to path, creating or truncating it.
func (c *Collection) SaveFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := c.Write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// LoadFile reads a collection from path.
func LoadFile(path string) (*Collection, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Read(f)
}

// encodeRecord writes id+vector into rec (len must be 4+dims*4).
func encodeRecord(rec []byte, id ID, v vec.Vector) {
	binary.LittleEndian.PutUint32(rec[0:4], uint32(id))
	for i, x := range v {
		binary.LittleEndian.PutUint32(rec[4+i*4:8+i*4], floatBits(x))
	}
}

// DecodeRecords bulk-decodes n fixed-size records (uint32 id followed by
// dims little-endian float32 coordinates each) from buf into ids[:n] and
// vecs[:n*dims]. This is the one home of the on-disk record layout shared
// by the collection file and the chunk file codecs.
func DecodeRecords(buf []byte, n, dims int, ids []ID, vecs []float32) {
	rec := 4 + dims*4
	for k := 0; k < n; k++ {
		o := k * rec
		ids[k] = ID(binary.LittleEndian.Uint32(buf[o : o+4]))
		o += 4
		base := k * dims
		for d := 0; d < dims; d++ {
			vecs[base+d] = bitsFloat(binary.LittleEndian.Uint32(buf[o : o+4]))
			o += 4
		}
	}
}
