package descriptor

import (
	"bytes"
	"encoding/binary"
	"math/rand"
	"path/filepath"
	"testing"
	"testing/quick"

	"repro/internal/vec"
)

func randCollection(r *rand.Rand, n int) *Collection {
	c := NewCollection(vec.Dims, n)
	for i := 0; i < n; i++ {
		v := make(vec.Vector, vec.Dims)
		for j := range v {
			v[j] = float32(r.NormFloat64())
		}
		c.Append(ID(r.Uint32()), v)
	}
	return c
}

func TestEncodedSizeMatchesPaper(t *testing.T) {
	// Paper §5.2: "each descriptor consumes 100 bytes".
	if EncodedSize != 100 {
		t.Fatalf("EncodedSize = %d, want 100", EncodedSize)
	}
}

func TestAppendAt(t *testing.T) {
	c := NewCollection(3, 0)
	c.Append(7, vec.Vector{1, 2, 3})
	c.Append(9, vec.Vector{4, 5, 6})
	if c.Len() != 2 {
		t.Fatalf("Len = %d", c.Len())
	}
	d := c.At(1)
	if d.ID != 9 || !vec.Equal(d.Vec, vec.Vector{4, 5, 6}) {
		t.Fatalf("At(1) = %+v", d)
	}
	if c.IDAt(0) != 7 {
		t.Fatalf("IDAt(0) = %d", c.IDAt(0))
	}
}

func TestAppendDimMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	c := NewCollection(3, 0)
	c.Append(1, vec.Vector{1, 2})
}

func TestRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	c := randCollection(r, 257)
	var buf bytes.Buffer
	if err := c.Write(&buf); err != nil {
		t.Fatal(err)
	}
	wantSize := 20 + 257*EncodedSize
	if buf.Len() != wantSize {
		t.Fatalf("encoded size = %d, want %d", buf.Len(), wantSize)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != c.Len() || got.Dims() != c.Dims() {
		t.Fatalf("shape mismatch: %d/%d vs %d/%d", got.Len(), got.Dims(), c.Len(), c.Dims())
	}
	for i := 0; i < c.Len(); i++ {
		if got.IDAt(i) != c.IDAt(i) || !vec.Equal(got.Vec(i), c.Vec(i)) {
			t.Fatalf("record %d differs", i)
		}
	}
}

func TestRoundTripProperty(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		r := rand.New(rand.NewSource(seed))
		c := randCollection(r, int(nRaw)%50)
		var buf bytes.Buffer
		if err := c.Write(&buf); err != nil {
			return false
		}
		got, err := Read(&buf)
		if err != nil {
			return false
		}
		if got.Len() != c.Len() {
			return false
		}
		for i := 0; i < c.Len(); i++ {
			if got.IDAt(i) != c.IDAt(i) || !vec.Equal(got.Vec(i), c.Vec(i)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestReadBadMagic(t *testing.T) {
	buf := bytes.NewBufferString("NOTMAGICxxxxxxxxxxxxxxxx")
	if _, err := Read(buf); err != ErrBadMagic {
		t.Fatalf("err = %v, want ErrBadMagic", err)
	}
}

func TestReadTruncated(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	c := randCollection(r, 10)
	var buf bytes.Buffer
	if err := c.Write(&buf); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()[:buf.Len()-37]
	if _, err := Read(bytes.NewReader(raw)); err == nil {
		t.Fatal("expected truncation error")
	}
}

// TestReadHostileHeaderCount pins the pre-sizing guard: a header whose
// record count the input cannot back must produce an error — never a
// panic or a count-sized allocation.
func TestReadHostileHeaderCount(t *testing.T) {
	for _, hostile := range []struct{ dims, count uint64 }{
		{24, 1 << 62},   // count*rec overflows int
		{24, 1 << 40},   // huge but non-overflowing count
		{4096, 1 << 22}, // max dims × large count: byte cap must hold
		{24, 1000},      // plausible count the payload cannot back
	} {
		head := make([]byte, headerSize)
		copy(head, fileMagic)
		binary.LittleEndian.PutUint32(head[8:12], uint32(hostile.dims))
		binary.LittleEndian.PutUint64(head[12:20], hostile.count)
		// A handful of record bytes — far fewer than count claims.
		payload := append(head, make([]byte, 3*100)...)
		if _, err := Read(bytes.NewReader(payload)); err == nil {
			t.Fatalf("dims %d count %d: expected error, got none", hostile.dims, hostile.count)
		}
	}
}

func TestSaveLoadFile(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	c := randCollection(r, 64)
	path := filepath.Join(t.TempDir(), "coll.desc")
	if err := c.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 64 {
		t.Fatalf("Len = %d", got.Len())
	}
}

func TestSubset(t *testing.T) {
	c := NewCollection(2, 0)
	for i := 0; i < 5; i++ {
		c.Append(ID(i), vec.Vector{float32(i), float32(i)})
	}
	s := c.Subset([]int{4, 0, 2})
	if s.Len() != 3 {
		t.Fatalf("Len = %d", s.Len())
	}
	if s.IDAt(0) != 4 || s.IDAt(1) != 0 || s.IDAt(2) != 2 {
		t.Fatalf("Subset order wrong: %v %v %v", s.IDAt(0), s.IDAt(1), s.IDAt(2))
	}
}

func TestBounds(t *testing.T) {
	c := NewCollection(2, 0)
	c.Append(0, vec.Vector{-1, 5})
	c.Append(1, vec.Vector{3, -2})
	b := c.Bounds()
	if b.Min[0] != -1 || b.Min[1] != -2 || b.Max[0] != 3 || b.Max[1] != 5 {
		t.Fatalf("Bounds = %+v", b)
	}
}

func TestImageOf(t *testing.T) {
	id := ID(uint32(37)<<DescriptorsPerImageShift | 5)
	if id.ImageOf() != 37 {
		t.Fatalf("ImageOf = %d, want 37", id.ImageOf())
	}
}

func BenchmarkWrite10k(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	c := randCollection(r, 10000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		if err := c.Write(&buf); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRead10k(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	c := randCollection(r, 10000)
	var buf bytes.Buffer
	if err := c.Write(&buf); err != nil {
		b.Fatal(err)
	}
	raw := buf.Bytes()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Read(bytes.NewReader(raw)); err != nil {
			b.Fatal(err)
		}
	}
}
