// Package knn provides the shared k-nearest-neighbor result type and the
// bounded max-heap used by every search implementation in this repository
// (chunk search, sequential scan, VA-file, Medrank).
package knn

import (
	"math"
	"sort"

	"repro/internal/descriptor"
)

// Neighbor is one k-NN result entry.
type Neighbor struct {
	ID   descriptor.ID
	Dist float64
}

// Heap is a bounded max-heap keeping the k closest neighbors offered so
// far. The zero value is unusable; construct with NewHeap.
type Heap struct {
	k     int
	items []Neighbor
}

// NewHeap returns a heap retaining the k best entries.
func NewHeap(k int) *Heap { return &Heap{k: k} }

// Len returns the number of entries currently held.
func (h *Heap) Len() int { return len(h.items) }

// Kth returns the current k-th best distance, or +Inf while the heap holds
// fewer than k entries. This is the pruning bound used by stop rules.
func (h *Heap) Kth() float64 {
	if len(h.items) < h.k {
		return math.Inf(1)
	}
	return h.items[0].Dist
}

// Offer inserts the neighbor if it improves the current top-k.
func (h *Heap) Offer(id descriptor.ID, dist float64) {
	if len(h.items) < h.k {
		h.items = append(h.items, Neighbor{id, dist})
		i := len(h.items) - 1
		for i > 0 {
			p := (i - 1) / 2
			if h.items[p].Dist >= h.items[i].Dist {
				break
			}
			h.items[p], h.items[i] = h.items[i], h.items[p]
			i = p
		}
		return
	}
	if dist >= h.items[0].Dist {
		return
	}
	h.items[0] = Neighbor{id, dist}
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		big := i
		if l < len(h.items) && h.items[l].Dist > h.items[big].Dist {
			big = l
		}
		if r < len(h.items) && h.items[r].Dist > h.items[big].Dist {
			big = r
		}
		if big == i {
			return
		}
		h.items[i], h.items[big] = h.items[big], h.items[i]
		i = big
	}
}

// AppendAll appends the current entries (unordered) to dst and returns it.
func (h *Heap) AppendAll(dst []Neighbor) []Neighbor {
	return append(dst, h.items...)
}

// Sorted returns the entries ordered by increasing distance.
func (h *Heap) Sorted() []Neighbor {
	out := append([]Neighbor(nil), h.items...)
	sort.Slice(out, func(a, b int) bool { return out[a].Dist < out[b].Dist })
	return out
}
