// Package knn provides the shared k-nearest-neighbor result type and the
// bounded max-heap used by every search implementation in this repository
// (chunk search, sequential scan, VA-file, Medrank, LSH, P-Sphere).
//
// Following the repo-wide convention (see package vec), the heap operates
// on *squared* distances: candidates enter through OfferSquared, pruning
// bounds come out of Kth2, and math.Sqrt is applied only in Sorted /
// SortedInto / AppendAll at the reporting boundary. Equal-distance
// neighbors are ordered deterministically by ascending ID, both in the
// retained set (an equal-distance candidate with a smaller ID evicts the
// current worst) and in the sorted output, so independently implemented
// backends produce byte-identical results, tie order included.
package knn

import (
	"math"
	"slices"

	"repro/internal/descriptor"
)

// Neighbor is one k-NN result entry. Dist is a true Euclidean distance
// (sqrt applied): the reporting-boundary form.
type Neighbor struct {
	ID   descriptor.ID
	Dist float64
}

// item is the internal squared-distance form.
type item struct {
	id descriptor.ID
	d2 float64
}

// Less is the canonical (squared distance, ascending id) composite order
// every backend shares for deterministic tie-breaking. Any search
// structure maintaining its own candidate set (e.g. the SR-tree's
// best-first result set) must order through this function rather than
// re-implementing the rule, so a future change cannot desynchronize
// backends.
func Less(d2a float64, ida descriptor.ID, d2b float64, idb descriptor.ID) bool {
	return d2a < d2b || (d2a == d2b && ida < idb)
}

// beats reports whether a is strictly better than b under Less.
func beats(a, b item) bool {
	return Less(a.d2, a.id, b.d2, b.id)
}

// Heap is a bounded max-heap keeping the k best (squared distance, id)
// entries offered so far. The zero value is unusable; construct with
// NewHeap or recycle one with Reset.
type Heap struct {
	k     int
	items []item
}

// NewHeap returns a heap retaining the k best entries.
func NewHeap(k int) *Heap { return &Heap{k: k} }

// Reset empties the heap and sets a new capacity bound, retaining the
// backing storage so steady-state reuse does not allocate.
func (h *Heap) Reset(k int) {
	h.k = k
	h.items = h.items[:0]
}

// Len returns the number of entries currently held.
func (h *Heap) Len() int { return len(h.items) }

// K returns the retention bound.
func (h *Heap) K() int { return h.k }

// Full reports whether the heap holds its k entries, i.e. a finite
// pruning bound exists. Scan loops branch on this to switch from the
// batch distance kernels to partial-distance early abandonment.
func (h *Heap) Full() bool { return len(h.items) >= h.k }

// Kth2 returns the current k-th best squared distance, or +Inf while the
// heap holds fewer than k entries. This is the pruning bound used by stop
// rules and partial-distance abandonment.
func (h *Heap) Kth2() float64 {
	if len(h.items) < h.k {
		return math.Inf(1)
	}
	return h.items[0].d2
}

// Kth returns the current k-th best distance (sqrt applied), or +Inf
// while the heap holds fewer than k entries. Reporting-boundary form of
// Kth2 for callers comparing against true-distance bounds.
func (h *Heap) Kth() float64 {
	if len(h.items) < h.k {
		return math.Inf(1)
	}
	return math.Sqrt(h.items[0].d2)
}

// OfferSquared inserts the neighbor if it improves the current top-k
// under the (squared distance, ascending id) order.
func (h *Heap) OfferSquared(id descriptor.ID, d2 float64) {
	it := item{id: id, d2: d2}
	if len(h.items) < h.k {
		h.items = append(h.items, it)
		i := len(h.items) - 1
		for i > 0 {
			p := (i - 1) / 2
			if !beats(h.items[p], h.items[i]) {
				break
			}
			h.items[p], h.items[i] = h.items[i], h.items[p]
			i = p
		}
		return
	}
	if h.k == 0 || !beats(it, h.items[0]) {
		return
	}
	h.items[0] = it
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		big := i
		if l < len(h.items) && beats(h.items[big], h.items[l]) {
			big = l
		}
		if r < len(h.items) && beats(h.items[big], h.items[r]) {
			big = r
		}
		if big == i {
			return
		}
		h.items[i], h.items[big] = h.items[big], h.items[i]
		i = big
	}
}

// AppendAll appends the current entries (unordered, sqrt applied) to dst
// and returns it.
func (h *Heap) AppendAll(dst []Neighbor) []Neighbor {
	for _, it := range h.items {
		dst = append(dst, Neighbor{ID: it.id, Dist: math.Sqrt(it.d2)})
	}
	return dst
}

// Sorted returns the entries ordered by (increasing squared distance,
// ascending id), with sqrt applied at this reporting boundary. Like
// SortedInto, it reorders the heap's internal storage: afterwards the
// heap is only good for Reset.
func (h *Heap) Sorted() []Neighbor {
	return h.SortedInto(make([]Neighbor, 0, len(h.items)))
}

// SortedInto appends the sorted entries to dst and returns it; passing a
// buffer with spare capacity makes the call allocation-free. The sort key
// is the retained (squared distance, id) pair — not the sqrt'd Dist —
// so the order matches every other backend bit for bit even when two
// distinct squared distances round to the same square root.
//
// SortedInto sorts the heap's internal storage in place, destroying the
// heap invariant: call it only when the query is finished, then Reset
// before reuse.
func (h *Heap) SortedInto(dst []Neighbor) []Neighbor {
	slices.SortFunc(h.items, func(a, b item) int {
		if beats(a, b) {
			return -1
		}
		if beats(b, a) {
			return 1
		}
		return 0
	})
	return h.AppendAll(dst)
}
