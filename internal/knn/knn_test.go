package knn

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/descriptor"
)

func TestHeapKeepsBestK(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		h := NewHeap(10)
		dists := make([]float64, 100)
		for i := range dists {
			dists[i] = r.Float64() * 100
			h.Offer(descriptor.ID(i), dists[i])
		}
		sort.Float64s(dists)
		got := h.Sorted()
		if len(got) != 10 {
			return false
		}
		for i := range got {
			if math.Abs(got[i].Dist-dists[i]) > 1e-12 {
				return false
			}
		}
		return h.Kth() == dists[9]
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestHeapUnderfull(t *testing.T) {
	h := NewHeap(5)
	if !math.IsInf(h.Kth(), 1) {
		t.Fatal("empty heap Kth should be +Inf")
	}
	h.Offer(1, 3)
	h.Offer(2, 1)
	if !math.IsInf(h.Kth(), 1) {
		t.Fatal("underfull heap Kth should be +Inf")
	}
	if h.Len() != 2 {
		t.Fatalf("Len = %d", h.Len())
	}
	got := h.Sorted()
	if got[0].Dist != 1 || got[1].Dist != 3 {
		t.Fatalf("Sorted = %v", got)
	}
}

func TestHeapRejectsWorse(t *testing.T) {
	h := NewHeap(2)
	h.Offer(1, 1)
	h.Offer(2, 2)
	h.Offer(3, 5) // worse than both
	got := h.Sorted()
	if len(got) != 2 || got[0].ID != 1 || got[1].ID != 2 {
		t.Fatalf("Sorted = %v", got)
	}
}

func TestAppendAll(t *testing.T) {
	h := NewHeap(3)
	h.Offer(1, 1)
	h.Offer(2, 2)
	buf := make([]Neighbor, 0, 4)
	buf = h.AppendAll(buf)
	if len(buf) != 2 {
		t.Fatalf("AppendAll len = %d", len(buf))
	}
}
