package knn

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/descriptor"
)

func TestHeapKeepsBestK(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		h := NewHeap(10)
		d2s := make([]float64, 100)
		for i := range d2s {
			d2s[i] = r.Float64() * 100
			h.OfferSquared(descriptor.ID(i), d2s[i])
		}
		sort.Float64s(d2s)
		// Bounds are read before Sorted: sorting hands the storage to the
		// reporting boundary and invalidates the heap order.
		if h.Kth2() != d2s[9] || h.Kth() != math.Sqrt(d2s[9]) {
			return false
		}
		got := h.Sorted()
		if len(got) != 10 {
			return false
		}
		for i := range got {
			if got[i].Dist != math.Sqrt(d2s[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestHeapUnderfull(t *testing.T) {
	h := NewHeap(5)
	if !math.IsInf(h.Kth2(), 1) || !math.IsInf(h.Kth(), 1) {
		t.Fatal("empty heap bound should be +Inf")
	}
	h.OfferSquared(1, 9)
	h.OfferSquared(2, 1)
	if !math.IsInf(h.Kth2(), 1) {
		t.Fatal("underfull heap Kth2 should be +Inf")
	}
	if h.Len() != 2 {
		t.Fatalf("Len = %d", h.Len())
	}
	got := h.Sorted()
	if got[0].Dist != 1 || got[1].Dist != 3 {
		t.Fatalf("Sorted = %v", got)
	}
}

func TestHeapRejectsWorse(t *testing.T) {
	h := NewHeap(2)
	h.OfferSquared(1, 1)
	h.OfferSquared(2, 4)
	h.OfferSquared(3, 25) // worse than both
	got := h.Sorted()
	if len(got) != 2 || got[0].ID != 1 || got[1].ID != 2 {
		t.Fatalf("Sorted = %v", got)
	}
}

// TestHeapTieBreakByID pins the deterministic tie rule: among
// equal-distance candidates the smallest IDs are retained, and the sorted
// output orders equal distances by ascending ID — regardless of offer
// order.
func TestHeapTieBreakByID(t *testing.T) {
	ids := []descriptor.ID{7, 3, 9, 1, 5, 8, 2}
	perms := [][]int{{0, 1, 2, 3, 4, 5, 6}, {6, 5, 4, 3, 2, 1, 0}, {3, 0, 6, 2, 5, 1, 4}}
	for _, perm := range perms {
		h := NewHeap(3)
		for _, p := range perm {
			h.OfferSquared(ids[p], 4)
		}
		if h.Kth2() != 4 {
			t.Fatalf("Kth2 = %v", h.Kth2())
		}
		got := h.Sorted()
		if len(got) != 3 || got[0].ID != 1 || got[1].ID != 2 || got[2].ID != 3 {
			t.Fatalf("perm %v: Sorted = %v, want IDs 1,2,3", perm, got)
		}
	}
}

func TestHeapResetReuses(t *testing.T) {
	h := NewHeap(4)
	for i := 0; i < 10; i++ {
		h.OfferSquared(descriptor.ID(i), float64(10-i))
	}
	h.Reset(2)
	if h.Len() != 0 || h.K() != 2 {
		t.Fatalf("after Reset: Len=%d K=%d", h.Len(), h.K())
	}
	h.OfferSquared(1, 4)
	h.OfferSquared(2, 1)
	h.OfferSquared(3, 9)
	got := h.Sorted()
	if len(got) != 2 || got[0].ID != 2 || got[1].ID != 1 {
		t.Fatalf("Sorted after Reset = %v", got)
	}
}

func TestSortedIntoNoAlloc(t *testing.T) {
	h := NewHeap(8)
	for i := 0; i < 50; i++ {
		h.OfferSquared(descriptor.ID(i), float64((i*37)%100))
	}
	buf := make([]Neighbor, 0, 8)
	allocs := testing.AllocsPerRun(100, func() {
		buf = h.SortedInto(buf[:0])
	})
	if allocs != 0 {
		t.Fatalf("SortedInto allocated %v times per run", allocs)
	}
	if len(buf) != 8 {
		t.Fatalf("len = %d", len(buf))
	}
}

func TestAppendAll(t *testing.T) {
	h := NewHeap(3)
	h.OfferSquared(1, 1)
	h.OfferSquared(2, 4)
	buf := make([]Neighbor, 0, 4)
	buf = h.AppendAll(buf)
	if len(buf) != 2 {
		t.Fatalf("AppendAll len = %d", len(buf))
	}
}
