package batchexec

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/chunkfile"
	"repro/internal/faultstore"
	"repro/internal/search"
)

// TestBatchSchedulersEquivalent pins that the asynchronous work queue
// and the retained lockstep baseline are byte-identical: same neighbors
// (IDs and bit-identical distances), ChunksRead, Elapsed, IndexRead and
// Exact for every query, across all three stop rules and parallelisms.
// Combined with TestBatchMatchesSingleQuery (which runs the default,
// asynchronous scheduler) this chains both schedulers to the per-query
// reference path.
func TestBatchSchedulersEquivalent(t *testing.T) {
	mem, _, queries := buildStores(t)
	eng := New(mem, nil)
	stops := []search.StopRule{
		search.ChunkBudget(3),
		search.TimeBudget(250 * time.Millisecond),
		search.ToCompletion{},
	}
	for _, stop := range stops {
		want := make([]search.Result, len(queries))
		if err := eng.Run(queries, Options{K: 20, Stop: stop, Overlap: true, Scheduler: SchedulerLockstep}, want); err != nil {
			t.Fatal(err)
		}
		for _, par := range []int{1, 0} {
			got := make([]search.Result, len(queries))
			if err := eng.Run(queries, Options{K: 20, Stop: stop, Overlap: true, Parallelism: par}, got); err != nil {
				t.Fatal(err)
			}
			for qi := range queries {
				g, w := &got[qi], &want[qi]
				if g.ChunksRead != w.ChunksRead || g.Elapsed != w.Elapsed ||
					g.IndexRead != w.IndexRead || g.Exact != w.Exact {
					t.Fatalf("%v/p%d q%d: async (%d, %v, %v, %v) != lockstep (%d, %v, %v, %v)",
						stop, par, qi, g.ChunksRead, g.Elapsed, g.IndexRead, g.Exact,
						w.ChunksRead, w.Elapsed, w.IndexRead, w.Exact)
				}
				if len(g.Neighbors) != len(w.Neighbors) {
					t.Fatalf("%v/p%d q%d: %d neighbors != %d", stop, par, qi, len(g.Neighbors), len(w.Neighbors))
				}
				for i := range w.Neighbors {
					if g.Neighbors[i] != w.Neighbors[i] {
						t.Fatalf("%v/p%d q%d rank %d: %+v != %+v", stop, par, qi, i, g.Neighbors[i], w.Neighbors[i])
					}
				}
			}
		}
	}
}

// TestRunStream pins the streaming contract: the completion callback
// fires exactly once per query, results[qi] is fully written (sorted
// neighbors, final counters) at the moment its callback fires, and every
// callback has fired by the time RunStream returns.
func TestRunStream(t *testing.T) {
	mem, _, queries := buildStores(t)
	eng := New(mem, nil)
	want := make([]search.Result, len(queries))
	if err := eng.Run(queries, Options{K: 10, Stop: search.ChunkBudget(4)}, want); err != nil {
		t.Fatal(err)
	}
	for _, par := range []int{1, 0} {
		var mu sync.Mutex
		fired := make([]int, len(queries))
		results := make([]search.Result, len(queries))
		err := eng.RunStream(queries, Options{K: 10, Stop: search.ChunkBudget(4), Parallelism: par}, results,
			func(qi int) {
				mu.Lock()
				defer mu.Unlock()
				fired[qi]++
				// The result must already be complete when the callback fires.
				if len(results[qi].Neighbors) != len(want[qi].Neighbors) ||
					results[qi].ChunksRead != want[qi].ChunksRead {
					t.Errorf("p%d q%d: result incomplete at callback time", par, qi)
				}
			})
		if err != nil {
			t.Fatal(err)
		}
		for qi, n := range fired {
			if n != 1 {
				t.Fatalf("p%d q%d: callback fired %d times, want 1", par, qi, n)
			}
			for i := range want[qi].Neighbors {
				if results[qi].Neighbors[i] != want[qi].Neighbors[i] {
					t.Fatalf("p%d q%d rank %d: streamed neighbor mismatch", par, qi, i)
				}
			}
		}
	}
}

// traceRec is one recorded trace event with the neighbor set copied out
// (Event.Neighbors is reused between a query's events).
type traceRec struct {
	ordinal, chunk, count int
	elapsed               time.Duration
	ids                   []uint32
}

func recordEvent(ev search.Event) traceRec {
	r := traceRec{ordinal: ev.Ordinal, chunk: ev.ChunkIndex, count: ev.ChunkCount, elapsed: ev.Elapsed}
	for _, nb := range ev.Neighbors {
		r.ids = append(r.ids, uint32(nb.ID))
	}
	return r
}

// TestBatchTraceMatchesSingleQuery pins the batch trace hook against the
// single-query path: for every query, the engine emits the same events
// (ordinal, chunk, chunk count, simulated elapsed, and the evolving
// neighbor set) in the same rank order, under both schedulers and in
// parallel — events of one query are ordered even when queries
// interleave.
func TestBatchTraceMatchesSingleQuery(t *testing.T) {
	mem, _, queries := buildStores(t)
	queries = queries[:16]
	searcher := search.New(mem, nil)
	eng := New(mem, nil)
	stop := search.ChunkBudget(5)

	want := make([][]traceRec, len(queries))
	for qi, q := range queries {
		if _, err := searcher.Search(q, search.Options{K: 10, Stop: stop, Trace: func(ev search.Event) {
			want[qi] = append(want[qi], recordEvent(ev))
		}}); err != nil {
			t.Fatal(err)
		}
	}

	for _, tc := range []struct {
		name  string
		sched Scheduler
		par   int
	}{{"async-p1", SchedulerAsync, 1}, {"async-p0", SchedulerAsync, 0}, {"lockstep", SchedulerLockstep, 0}} {
		var mu sync.Mutex
		got := make([][]traceRec, len(queries))
		results := make([]search.Result, len(queries))
		err := eng.Run(queries, Options{K: 10, Stop: stop, Scheduler: tc.sched, Parallelism: tc.par,
			Trace: func(qi int, ev search.Event) {
				rec := recordEvent(ev)
				mu.Lock()
				got[qi] = append(got[qi], rec)
				mu.Unlock()
			}}, results)
		if err != nil {
			t.Fatal(err)
		}
		for qi := range queries {
			if len(got[qi]) != len(want[qi]) {
				t.Fatalf("%s q%d: %d events != %d", tc.name, qi, len(got[qi]), len(want[qi]))
			}
			for i, w := range want[qi] {
				g := got[qi][i]
				if g.ordinal != w.ordinal || g.chunk != w.chunk || g.count != w.count || g.elapsed != w.elapsed {
					t.Fatalf("%s q%d event %d: %+v != %+v", tc.name, qi, i, g, w)
				}
				if len(g.ids) != len(w.ids) {
					t.Fatalf("%s q%d event %d: %d neighbors != %d", tc.name, qi, i, len(g.ids), len(w.ids))
				}
				for j := range w.ids {
					if g.ids[j] != w.ids[j] {
						t.Fatalf("%s q%d event %d rank %d: id %d != %d", tc.name, qi, i, j, g.ids[j], w.ids[j])
					}
				}
			}
		}
	}
}

// cancelStore cancels a context during the Nth ReadChunk and counts
// reads, so the cancellation point is deterministic.
type cancelStore struct {
	chunkfile.Store
	reads    atomic.Int64
	cancelAt int64
	cancel   context.CancelFunc
}

func (s *cancelStore) ReadChunk(i int, data *chunkfile.Data) error {
	if s.reads.Add(1) == s.cancelAt {
		s.cancel()
	}
	return s.Store.ReadChunk(i, data)
}

// TestBatchMidCancel pins the satellite fix: cancellation is observed
// between chunk decode tasks, not between rounds. After ctx is canceled
// mid-batch, each in-flight processor finishes at most the one chunk it
// already holds — with Parallelism 1 that means at most one read after
// the cancellation — and the run fails with an error wrapping ctx.Err().
func TestBatchMidCancel(t *testing.T) {
	mem, _, queries := buildStores(t)

	const cancelAt = 7
	for _, par := range []int{1, 0} {
		ctx, cancel := context.WithCancel(context.Background())
		cs := &cancelStore{Store: mem, cancelAt: cancelAt, cancel: cancel}
		eng := New(cs, nil)
		results := make([]search.Result, len(queries))
		err := eng.Run(queries, Options{K: 10, Stop: search.ToCompletion{}, Parallelism: par, Ctx: ctx}, results)
		cancel()
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("p%d: want error wrapping context.Canceled, got %v", par, err)
		}
		var qe *QueryError
		if !errors.As(err, &qe) {
			t.Fatalf("p%d: want QueryError, got %T", par, err)
		}
		// Every processor checks ctx before its decode, so reads after the
		// cancellation are bounded by the tasks already holding a chunk:
		// exactly the canceling read itself at Parallelism 1, and at most
		// one per concurrent processor (the pool plus the coordinator)
		// otherwise.
		limit := int64(cancelAt)
		if par != 1 {
			limit += int64(runtime.GOMAXPROCS(0)) + 1
		}
		if got := cs.reads.Load(); got > limit {
			t.Fatalf("p%d: %d reads, want <= %d after cancel at read %d", par, got, limit, cancelAt)
		}
	}
}

// gateStore blocks every read of one chunk until the gate channel is
// closed, modeling a straggler chunk with a deterministic release point.
type gateStore struct {
	chunkfile.Store
	chunk int
	gate  chan struct{}
}

func (s *gateStore) ReadChunk(i int, data *chunkfile.Data) error {
	if i == s.chunk {
		<-s.gate
	}
	return s.Store.ReadChunk(i, data)
}

// TestBatchStragglerStreams pins the whole point of removing the round
// barrier: one artificially slow chunk delays exactly its own
// subscribers. Every query whose rank-order prefix avoids the straggler
// chunk completes and streams its callback while the straggler is still
// blocked; the blocked queries complete after release with byte-identical
// results.
func TestBatchStragglerStreams(t *testing.T) {
	if runtime.GOMAXPROCS(0) < 2 {
		t.Skip("needs a second worker to make progress around the blocked chunk")
	}
	mem, _, queries := buildStores(t)
	stop := search.ChunkBudget(4)

	// Baseline (and the expected blocked set): queries reading the
	// straggler chunk within their budget are exactly those that will
	// subscribe to it.
	eng := New(mem, nil)
	want := make([]search.Result, len(queries))
	if err := eng.Run(queries, Options{K: 10, Stop: stop}, want); err != nil {
		t.Fatal(err)
	}
	searcher := search.New(mem, nil)
	straggler := -1 // first chunk of query 0's rank order: guaranteed subscribed
	blocked := make([]bool, len(queries))
	nBlocked := 0
	for qi, q := range queries {
		reads := []int{}
		if _, err := searcher.Search(q, search.Options{K: 10, Stop: stop, Trace: func(ev search.Event) {
			reads = append(reads, ev.ChunkIndex)
		}}); err != nil {
			t.Fatal(err)
		}
		if qi == 0 {
			straggler = reads[0]
		}
		for _, c := range reads {
			if c == straggler {
				blocked[qi] = true
				nBlocked++
				break
			}
		}
	}

	gs := &gateStore{Store: mem, chunk: straggler, gate: make(chan struct{})}
	geng := New(gs, nil)
	var mu sync.Mutex
	done := make([]bool, len(queries))
	nDone := 0
	unblockedDone := make(chan struct{})
	results := make([]search.Result, len(queries))
	runErr := make(chan error, 1)
	go func() {
		runErr <- geng.RunStream(queries, Options{K: 10, Stop: stop, Parallelism: 4}, results,
			func(qi int) {
				mu.Lock()
				defer mu.Unlock()
				if blocked[qi] {
					t.Errorf("q%d subscribes to straggler chunk %d but completed before release", qi, straggler)
				}
				done[qi] = true
				if nDone++; nDone == len(queries)-nBlocked {
					close(unblockedDone)
				}
			})
	}()

	// All unaffected queries stream while the straggler chunk is still
	// blocked; only then is the gate released.
	select {
	case <-unblockedDone:
	case err := <-runErr:
		t.Fatalf("batch returned before straggler release: %v", err)
	case <-time.After(30 * time.Second):
		mu.Lock()
		t.Fatalf("timeout: %d/%d unaffected queries streamed", nDone, len(queries)-nBlocked)
	}
	close(gs.gate)
	if err := <-runErr; err != nil {
		t.Fatal(err)
	}
	for qi := range queries {
		if len(results[qi].Neighbors) != len(want[qi].Neighbors) || results[qi].Elapsed != want[qi].Elapsed {
			t.Fatalf("q%d: post-release result differs from baseline", qi)
		}
		for i := range want[qi].Neighbors {
			if results[qi].Neighbors[i] != want[qi].Neighbors[i] {
				t.Fatalf("q%d rank %d: neighbor mismatch", qi, i)
			}
		}
	}
}

// TestBatchAsyncStress exercises the work queue under the race detector:
// several concurrent batches (plain, streaming, and one canceled
// mid-flight) share one engine over a latency-widened store, so
// subscribe/complete/cancel interleave across the process-wide pool.
func TestBatchAsyncStress(t *testing.T) {
	mem, _, queries := buildStores(t)
	queries = queries[:24]
	slow := faultstore.Wrap(mem, faultstore.Config{Latency: 200 * time.Microsecond})
	eng := New(slow, nil)
	stop := search.ChunkBudget(3)

	want := make([]search.Result, len(queries))
	if err := eng.Run(queries, Options{K: 10, Stop: stop}, want); err != nil {
		t.Fatal(err)
	}

	const rounds = 4
	var wg sync.WaitGroup
	for r := 0; r < rounds; r++ {
		wg.Add(3)
		go func() {
			defer wg.Done()
			results := make([]search.Result, len(queries))
			if err := eng.Run(queries, Options{K: 10, Stop: stop}, results); err != nil {
				t.Error(err)
				return
			}
			for qi := range want {
				if results[qi].Elapsed != want[qi].Elapsed || len(results[qi].Neighbors) != len(want[qi].Neighbors) {
					t.Errorf("concurrent run q%d: result mismatch", qi)
					return
				}
			}
		}()
		go func() {
			defer wg.Done()
			var fired atomic.Int64
			results := make([]search.Result, len(queries))
			if err := eng.RunStream(queries, Options{K: 10, Stop: stop}, results, func(int) {
				fired.Add(1)
			}); err != nil {
				t.Error(err)
				return
			}
			if fired.Load() != int64(len(queries)) {
				t.Errorf("stream fired %d callbacks, want %d", fired.Load(), len(queries))
			}
		}()
		go func() {
			defer wg.Done()
			ctx, cancel := context.WithCancel(context.Background())
			time.AfterFunc(time.Duration(500+100*r)*time.Microsecond, cancel)
			defer cancel()
			results := make([]search.Result, len(queries))
			err := eng.Run(queries, Options{K: 10, Stop: stop, Ctx: ctx}, results)
			if err != nil && !errors.Is(err, context.Canceled) {
				t.Errorf("canceled run: unexpected error %v", err)
			}
		}()
	}
	wg.Wait()
}
