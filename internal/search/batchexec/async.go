package batchexec

import (
	"fmt"
	"slices"
	"sync"
)

// The asynchronous scheduler. Every distinct chunk of the store owns one
// chunkTask; a query subscribes to the single chunk its rank order wants
// next, the task is queued when it gains its first subscriber, and
// whichever goroutine pops it decodes the chunk once and processes the
// whole subscriber wave (processChunk): scan, per-subscriber pipeline
// charge in that query's own rank order, stop rule, and either
// retirement (streaming the completion) or a subscription to the query's
// next chunk. Subscriptions arriving while a task runs form the next
// wave: the finishing processor re-queues the task itself, so a chunk is
// never decoded concurrently with itself and a query is subscribed to at
// most one task at a time — which is the whole mutual-exclusion story:
// a query's state is only ever touched by the processor of the one task
// it is subscribed to.
//
// Tasks run on the process-wide pool up to the run's parallelism; beyond
// that they overflow to a run-local ready list. Every goroutine that
// pushes to the list drains it before leaving the run (workers after
// each task, the coordinator after seeding), so a ready task can never
// be orphaned and the run cannot deadlock even when the pool is
// saturated by concurrent batches — the same non-blocking discipline as
// the lockstep scheduler's inline fallback.

// chunkTask is one chunk's decode task: its current subscribers, the
// wave being processed, and whether the task is queued or running.
type chunkTask struct {
	subs []int32 // query states waiting for this chunk (guarded by mu)
	proc []int32 // wave owned by the current processor
	busy bool    // queued or running (guarded by mu)
	mu   sync.Mutex
}

// subscribe registers query state si as waiting for chunk c and queues
// the chunk's task unless it is already queued or running (in which case
// the finishing processor will pick the subscription up as part of the
// next wave).
func (a *arena) subscribe(c int, si int32) {
	t := &a.tasks[c]
	t.mu.Lock()
	t.subs = append(t.subs, si)
	if t.busy {
		t.mu.Unlock()
		return
	}
	t.busy = true
	t.mu.Unlock()
	a.enqueue(int32(c))
}

// enqueue hands chunk c's task to the process-wide pool when the run has
// parallel headroom and a worker is free; otherwise the task goes to the
// run-local ready list. With Parallelism 1 the headroom is zero, so the
// whole run executes on the calling goroutine with no pool involvement.
func (a *arena) enqueue(c int32) {
	if a.inflight.Load() < a.maxInflight {
		a.inflight.Add(1)
		a.wg.Add(1)
		select {
		case jobs <- job{a: a, lo: c, hi: -1}:
			return
		default:
			a.wg.Done()
			a.inflight.Add(-1)
		}
	}
	a.readyMu.Lock()
	a.ready = append(a.ready, c)
	a.readyMu.Unlock()
}

// popReady takes the oldest ready task, compacting the backing slice
// once the list drains.
func (a *arena) popReady() (int32, bool) {
	a.readyMu.Lock()
	defer a.readyMu.Unlock()
	if a.readyHead == len(a.ready) {
		a.ready = a.ready[:0]
		a.readyHead = 0
		return 0, false
	}
	c := a.ready[a.readyHead]
	a.readyHead++
	return c, true
}

// runTask processes chunk c's task, then keeps draining the run-local
// ready list until it observes it empty. Because every push to the list
// happens inside a task body, and the pushing goroutine always reaches
// this drain loop afterwards, the last goroutine to leave the run
// necessarily leaves the list empty.
func (a *arena) runTask(ws *workerScratch, c int32) {
	for {
		a.processTask(ws, c)
		next, ok := a.popReady()
		if !ok {
			return
		}
		c = next
	}
}

// processTask claims the task's current subscriber wave and processes
// the chunk for all of them. If new subscribers arrived meanwhile the
// task re-queues itself for the next wave; otherwise it goes idle.
func (a *arena) processTask(ws *workerScratch, c int32) {
	t := &a.tasks[c]
	t.mu.Lock()
	t.subs, t.proc = t.proc[:0], t.subs
	members := t.proc
	t.mu.Unlock()

	if len(members) > 0 {
		// Members ascend by state: deterministic error attribution (the
		// lowest query of the wave owns a read failure) and the scanGroup
		// merge walk both rely on it.
		slices.Sort(members)
		if !a.aborted(members[0]) {
			a.processChunk(ws, int(c), members)
		}
	}

	t.mu.Lock()
	if len(t.subs) > 0 && !a.failed.Load() {
		t.mu.Unlock()
		a.enqueue(c)
		return
	}
	t.busy = false
	t.mu.Unlock()
}

// aborted reports whether the run has failed or been cancelled,
// recording the cancellation against the given query on first
// observation. Checked before every chunk decode, so after a
// cancellation each live query stops within one chunk charge per
// pipeline — the same granularity as the single-query path's per-chunk
// ctx check.
func (a *arena) aborted(state int32) bool {
	if a.failed.Load() {
		return true
	}
	if a.ctx != nil {
		if err := a.ctx.Err(); err != nil {
			a.fail(state, fmt.Errorf("canceled mid-batch: %w", err))
			return true
		}
	}
	return false
}

// runAsync executes the run on the asynchronous per-chunk work queue:
// seed every live query's first subscription, drain the overflow the
// seeding produced, then wait out the tasks in flight on the pool.
func (a *arena) runAsync(workers int) error {
	if cap(a.tasks) < len(a.metas) {
		// Fresh allocation, never a copy: chunkTask holds a mutex. The
		// store's chunk count is fixed, so per-engine this happens once.
		a.tasks = make([]chunkTask, len(a.metas))
	}
	a.tasks = a.tasks[:len(a.metas)]
	for i := range a.tasks {
		t := &a.tasks[i]
		t.subs = t.subs[:0]
		t.proc = t.proc[:0]
		t.busy = false
	}
	a.ready = a.ready[:0]
	a.readyHead = 0
	a.inflight.Store(0)
	if workers <= 1 {
		a.maxInflight = 0
	} else {
		a.maxInflight = int32(workers)
		ensurePool()
	}

	for _, si := range a.live {
		st := &a.states[si]
		a.subscribe(st.ranked[st.cursor].Idx, si)
	}
	for {
		c, ok := a.popReady()
		if !ok {
			break
		}
		a.runTask(&a.coord, c)
	}
	a.wg.Wait()
	if a.failed.Load() {
		return &QueryError{Query: int(a.errState), Err: a.err}
	}
	return nil
}
