//go:build !race

package batchexec

const raceEnabled = false
