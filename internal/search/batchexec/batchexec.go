// Package batchexec is the chunk-major batch execution engine for
// whole-workload searches (the paper runs 1,000-query workloads, §5.3).
//
// The single-query path in package search is query-major: each query
// ranks the chunks, then reads and scans them in its own rank order. Run
// naively over a workload, the same chunk is read, decoded and streamed
// through the cache once per query that wants it. This engine inverts
// the loops chunk-major: every distinct chunk wanted by at least one
// live query becomes a decode task, read and decoded once per subscriber
// wave, then scanned against all of its subscribers back to back while
// its descriptors are hot in cache (the filling-heap queries share one
// vec.SquaredDistancesMulti kernel call per row block; on SIMD backends
// the full-heap queries fold into the same call — see scanGroup).
//
// Two schedulers drive the inverted loop (Options.Scheduler):
//
//   - The asynchronous work queue (the default). Each query subscribes to
//     the one chunk its rank order wants next; a chunk's task is queued
//     when it gains its first subscriber, and a worker that pops it scans
//     the chunk for every subscriber of that wave, charges each
//     subscriber's own pipeline, applies its stop rule immediately, and
//     either retires the query (streaming its completion, see RunStream)
//     or subscribes it to its next chunk. No barrier exists anywhere:
//     a query's progress is never gated on chunks it does not want, so a
//     straggler chunk delays exactly its own subscribers.
//   - The lockstep round scheduler (SchedulerLockstep), the engine's
//     original design, retained as the measurable baseline: all live
//     queries advance one chunk per round, each round's distinct chunks
//     are scanned concurrently, and a round barrier joins the workers
//     before the next round starts. Fast queries idle at every barrier
//     while the round's straggler chunk finishes — the response-time
//     variability the asynchronous scheduler removes.
//
// Per-query semantics are preserved bit for bit under both schedulers,
// and the equivalence tests pin it:
//
//   - Each query processes chunks in its own rank order (RankChunks), so
//     neighbor sets, ChunksRead and the Exact flag match the single-query
//     path exactly.
//   - Simulated timing is per query: every query owns a simdisk.Pipeline
//     charged with exactly the chunks it consumed, in its rank order.
//     Batch code must never share or wall-aggregate simulated time — the
//     model is one 2005 machine per query. Because each query's charges
//     land on its own pipeline in its own rank order, the simulated
//     clocks are independent of *when* the scheduler processes a chunk;
//     reordering execution moves wall time only, never results. When
//     Options.Shards maps the store's chunks onto several simulated
//     machines (the shard router's global-budget mode), a query owns one
//     pipeline per machine instead, each seeded with that machine's own
//     index-read time; chunks are charged to their owning machine and the
//     query's Elapsed is the max over its machines, which run in
//     parallel.
//
// All per-query state (ranked order cursor, suffix bounds, knn.Heap,
// pipeline) lives in a pooled batch-owned arena, and result neighbor
// slices are recycled from the caller's results array, so a steady-state
// batch performs zero allocations. Decode tasks fan out to a lazily
// started process-wide worker pool; overflow beyond the run's
// parallelism (or the pool's capacity) lands on a run-local ready list
// drained by the run's own goroutines, which keeps Parallelism==1 runs
// free of any goroutine machinery and rules out deadlock when concurrent
// batches share the pool.
package batchexec

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"slices"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/chunkfile"
	"repro/internal/knn"
	"repro/internal/search"
	"repro/internal/simdisk"
	"repro/internal/vec"
)

// Scheduler selects the engine's execution strategy. Both schedulers
// produce byte-identical results; they differ only in how wall time is
// spent.
type Scheduler int

const (
	// SchedulerAsync is the default: the asynchronous per-chunk work
	// queue. Queries subscribe to chunks in their own rank order,
	// completed queries stream out immediately, and no round barrier
	// ever idles a fast query behind a slow chunk.
	SchedulerAsync Scheduler = iota
	// SchedulerLockstep is the original round-barrier scheduler, kept as
	// the benchmark baseline: all live queries advance one chunk per
	// round and a barrier joins the round's workers before the next
	// round starts.
	SchedulerLockstep
)

// Options configures one batch run. The zero value means k=30,
// run-to-completion, the engine's model, serial pipeline, the
// asynchronous scheduler, and one worker per CPU.
type Options struct {
	K    int
	Stop search.StopRule // must be stateless/concurrency-safe (the built-in rules are)
	// Model overrides the engine's cost model for this run.
	Model   *simdisk.Model
	Overlap bool // overlap I/O with CPU in each query's simulated pipeline
	// Parallelism caps the concurrency of this run: <=0 means GOMAXPROCS,
	// 1 runs entirely on the calling goroutine.
	Parallelism int
	// Scheduler selects the execution strategy: the asynchronous
	// per-chunk work queue (zero value) or the retained lockstep
	// round-barrier baseline. Results are byte-identical either way.
	Scheduler Scheduler
	// Shards, when non-nil, maps every store chunk to the simulated
	// machine serving it (len must equal the store's chunk count) and
	// switches the cost model from one 2005 machine per query to one
	// machine per (query, shard): each query then owns one
	// simdisk.Pipeline per machine, a chunk is charged to its owning
	// machine's pipeline in the query's own rank order over that machine's
	// chunks, and the Elapsed consulted by the stop rule (and reported in
	// the Result) is the max over the query's machines — they run in
	// parallel. Each machine pays its own index read for its own chunk
	// count before serving, so a machine mapping reproduces exactly the
	// per-shard pipelines the shard router's global-budget mode specifies.
	// A nil Shards is the single-machine model, byte-identical to the
	// engine's original behavior. Stop rules observe the *global*
	// chunksRead, so a ChunkBudget spends one total budget across the
	// machines.
	Shards []int32
	// NumShards is the machine count when Shards is non-nil: 0 means one
	// more than the highest mapped machine. Setting it higher models
	// trailing machines that hold no chunks but still pay their (empty)
	// index read toward the max. Ignored when Shards is nil.
	NumShards int
	// Trace, when non-nil, receives one search.Event per (query,
	// processed chunk), exactly as the single-query path's Options.Trace
	// would deliver it: Ordinal is the chunk's 1-based position in the
	// query's rank order, Elapsed the query's simulated time including
	// that chunk, Neighbors the current k-NN set (reused between that
	// query's events; do not retain). Events of one query arrive in its
	// rank order; events of distinct queries may arrive concurrently, so
	// the callback must be safe for concurrent use. Skipped (unavailable)
	// chunks emit no event, matching the single-query path.
	Trace func(query int, ev search.Event)
	// Ctx, when non-nil, cancels the run: the asynchronous scheduler
	// consults it before every chunk decode task (each live query stops
	// within one chunk charge per pipeline of the cancellation), the
	// lockstep scheduler between rounds. On abort the run returns an
	// error wrapping ctx.Err(); results not already streamed through
	// RunStream's callback are invalid, exactly as on any other batch
	// error. A nil Ctx never stops the run.
	Ctx context.Context
}

// QueryError reports which query of a batch failed.
type QueryError struct {
	Query int
	Err   error
}

// Error formats the failure with its query index.
func (e *QueryError) Error() string { return fmt.Sprintf("batchexec: query %d: %v", e.Query, e.Err) }

// Unwrap returns the underlying error.
func (e *QueryError) Unwrap() error { return e.Err }

// Engine executes batches against one chunk store. It is safe for
// concurrent use; concurrent Runs share the process-wide worker pool.
type Engine struct {
	store  chunkfile.Store
	model  *simdisk.Model
	arenas sync.Pool // *arena
}

// New returns an Engine over the given store. A nil model selects the
// calibrated 2005 model.
func New(store chunkfile.Store, model *simdisk.Model) *Engine {
	if model == nil {
		model = simdisk.Default2005()
	}
	e := &Engine{store: store, model: model}
	e.arenas.New = func() any { return &arena{} }
	return e
}

// queryState is the per-query execution state for one batch run.
type queryState struct {
	qi     int32 // index of this query in the batch
	q      vec.Vector
	ranked []search.RankedChunk
	suffix []float64
	heap   *knn.Heap
	// pipes is one simulated machine per shard of the run (a single
	// machine when Options.Shards is nil). Chunks are charged to their
	// owning machine; the query's Elapsed is the max over the machines.
	pipes []simdisk.Pipeline
	// serve is the per-machine serving ledger (search.Result.Machines),
	// one zero-origin pipeline per machine when the store routes reads
	// across machines (the shard router with spread reads on); empty
	// otherwise. Nominal pipes keep driving the stop rules.
	serve  []simdisk.Pipeline
	events []knn.Neighbor // trace scratch: current k-NN set per event
	cursor int            // position in ranked of the next chunk this query wants
	done   bool
	res    *search.Result
}

// pair maps one live query to the chunk it wants this round (lockstep
// scheduler). Rounds sort pairs by (chunk, state): equal-chunk runs form
// the scan groups, and the state tiebreak makes group membership (and
// error attribution) deterministic.
type pair struct {
	chunk, state int32
}

// group is one run of equal-chunk pairs: pairs[lo:hi].
type group struct {
	lo, hi int32
}

// workerScratch is the per-goroutine scan state: the decoded chunk and
// the kernel buffers. Workers own theirs for the life of the process; the
// coordinator's lives in the arena.
type workerScratch struct {
	data    chunkfile.Data
	d2      []float64 // single-query scan buffer (ScanChunk)
	members []int32   // lockstep: group membership extracted from pairs
	fill    []int32   // states of this group scanned through the Multi kernel
	qflat   []float32 // gathered Multi queries, Q × dims
	out     []float64 // SquaredDistancesMulti block output
}

// arena is the pooled batch-owned state of one run: all query states plus
// the scheduler's bookkeeping. It doubles as the run context jobs carry
// to pool workers.
type arena struct {
	store chunkfile.Store
	metas []chunkfile.Meta
	dims  int
	stop  search.StopRule
	start time.Time
	ctx   context.Context
	// machines is the run's chunk→machine mapping (nil = one machine);
	// inits holds each machine's index-read time, the initial value of
	// every query's pipeline on that machine.
	machines []int32
	inits    []time.Duration
	counts   []int // per-machine chunk counts (index-read sizing scratch)
	// model is the run's resolved cost model; serveMachines/serveOwner
	// describe the store's read routing (chunkfile.MachineRouter): with
	// serveMachines > 1 every query carries a per-machine serving ledger,
	// stalls billing the fixed serveOwner (or, when it is -1, the chunk's
	// mapped machine — the concatenated global store).
	model         *simdisk.Model
	serveMachines int
	serveOwner    int

	onDone func(int)               // RunStream's completion callback (nil for Run)
	trace  func(int, search.Event) // Options.Trace

	states []queryState
	live   []int32
	coord  workerScratch

	// Lockstep scheduler state.
	nextLive []int32
	pairs    []pair
	groups   []group

	// Asynchronous scheduler state (async.go).
	asyncMode   bool
	tasks       []chunkTask
	ready       []int32 // run-local overflow queue of chunk tasks
	readyHead   int
	readyMu     sync.Mutex
	inflight    atomic.Int32 // decode tasks handed to the pool
	maxInflight int32

	wg       sync.WaitGroup
	failed   atomic.Bool
	mu       sync.Mutex
	err      error
	errState int32
}

// fail records err for the given query, keeping the error of the lowest
// query index when several chunk tasks fail in flight.
func (a *arena) fail(state int32, err error) {
	a.failed.Store(true)
	a.mu.Lock()
	if a.err == nil || state < a.errState {
		a.err, a.errState = err, state
	}
	a.mu.Unlock()
}

// Run executes every query against the store, writing result qi into
// results[qi]. The results array is caller-owned: neighbor slices already
// present are reused when they have capacity, so recycling one results
// array across batches (the steady-state serving pattern) performs zero
// allocations. On error no results are valid. Run is RunStream without a
// completion stream.
func (e *Engine) Run(queries []vec.Vector, opts Options, results []search.Result) error {
	return e.RunStream(queries, opts, results, nil)
}

// RunStream executes the batch like Run and additionally streams
// per-query completions: done(qi), when non-nil, is invoked exactly once
// per query, after results[qi] is fully written, at the moment the query
// retires — long before the batch returns when other queries are still
// running. Callbacks for distinct queries may fire concurrently (they
// run on the scan workers), so done must be safe for concurrent use and
// should not block; a slow consumer should hand off to its own channel.
// When the run fails, queries whose callback already fired retain valid
// results; all others are invalid. The stop-rule, cost-model and
// byte-identity contracts are exactly Run's.
func (e *Engine) RunStream(queries []vec.Vector, opts Options, results []search.Result, done func(query int)) error {
	if len(queries) == 0 {
		return nil
	}
	if len(results) != len(queries) {
		return fmt.Errorf("batchexec: results length %d != queries length %d", len(results), len(queries))
	}
	if opts.K <= 0 {
		opts.K = 30
	}
	if opts.Stop == nil {
		opts.Stop = search.ToCompletion{}
	}
	model := opts.Model
	if model == nil {
		model = e.model
	}
	dims := e.store.Dims()
	for qi, q := range queries {
		if len(q) != dims {
			return &QueryError{Query: qi, Err: fmt.Errorf("query dims %d != store dims %d", len(q), dims)}
		}
	}
	workers := opts.Parallelism
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}

	a := e.arenas.Get().(*arena)
	defer e.arenas.Put(a)
	a.store = e.store
	a.metas = e.store.Meta()
	a.dims = dims
	a.stop = opts.Stop
	a.start = time.Now()
	a.ctx = opts.Ctx
	a.onDone = done
	a.trace = opts.Trace
	a.failed.Store(false)
	a.err = nil
	a.asyncMode = opts.Scheduler == SchedulerAsync
	a.model = model
	a.serveMachines, a.serveOwner = 1, 0
	if mr, ok := e.store.(chunkfile.MachineRouter); ok {
		a.serveMachines, a.serveOwner = mr.Machines()
	}

	// Resolve the machine layout: one machine (the original model) unless
	// a shard mapping splits the store across simulated machines, each
	// paying the index read for its own chunk count.
	a.machines = opts.Shards
	numMachines := 1
	if a.machines != nil {
		if len(a.machines) != len(a.metas) {
			a.release()
			return fmt.Errorf("batchexec: shards mapping length %d != chunk count %d", len(opts.Shards), len(a.metas))
		}
		for ci, m := range a.machines {
			if m < 0 || (opts.NumShards > 0 && int(m) >= opts.NumShards) {
				a.release()
				return fmt.Errorf("batchexec: chunk %d mapped to machine %d outside [0,%d)", ci, m, opts.NumShards)
			}
			if int(m)+1 > numMachines {
				numMachines = int(m) + 1
			}
		}
		if opts.NumShards > numMachines {
			numMachines = opts.NumShards
		}
	}
	if cap(a.inits) < numMachines {
		a.inits = make([]time.Duration, numMachines)
	}
	a.inits = a.inits[:numMachines]
	entrySize := chunkfile.EntrySize(dims)
	indexRead := time.Duration(0) // max over machines: they rank concurrently
	if a.machines == nil {
		a.inits[0] = model.IndexReadTime(len(a.metas), entrySize)
		indexRead = a.inits[0]
	} else {
		if cap(a.counts) < numMachines {
			a.counts = make([]int, numMachines)
		}
		counts := a.counts[:numMachines]
		for i := range counts {
			counts[i] = 0
		}
		for _, m := range a.machines {
			counts[m]++
		}
		for mi, c := range counts {
			a.inits[mi] = model.IndexReadTime(c, entrySize)
			if a.inits[mi] > indexRead {
				indexRead = a.inits[mi]
			}
		}
	}

	// Per-query setup: rank the chunks, compute suffix bounds, reset the
	// heap and the simulated pipeline, seed the result.
	if cap(a.states) < len(queries) {
		states := make([]queryState, len(queries))
		copy(states, a.states)
		a.states = states
	}
	a.states = a.states[:len(queries)]
	a.live = a.live[:0]
	for qi := range queries {
		st := &a.states[qi]
		res := &results[qi]
		neighbors := res.Neighbors[:0]
		ledger := res.Machines[:0]
		*res = search.Result{Neighbors: neighbors, IndexRead: indexRead, Elapsed: indexRead}
		if a.serveMachines > 1 {
			res.Machines = ledger // retire appends the machine clocks
			if cap(st.serve) < a.serveMachines {
				st.serve = make([]simdisk.Pipeline, a.serveMachines)
			}
			st.serve = st.serve[:a.serveMachines]
			for t := range st.serve {
				st.serve[t].Reset(model, opts.Overlap, 0)
			}
		} else {
			st.serve = st.serve[:0]
		}
		st.qi = int32(qi)
		st.q = queries[qi]
		st.ranked = search.RankChunks(st.q, a.metas, st.ranked[:0])
		st.suffix = search.SuffixBounds(st.ranked, st.suffix[:0])
		if st.heap == nil {
			st.heap = knn.NewHeap(opts.K)
		} else {
			st.heap.Reset(opts.K)
		}
		if cap(st.pipes) < numMachines {
			st.pipes = make([]simdisk.Pipeline, numMachines)
		}
		st.pipes = st.pipes[:numMachines]
		for mi := range st.pipes {
			st.pipes[mi].Reset(model, opts.Overlap, a.inits[mi])
		}
		st.cursor = 0
		st.done = false
		st.res = res
		if len(st.ranked) == 0 {
			res.Exact = true // zero chunks: trivially complete
			a.retire(st)
		} else {
			a.live = append(a.live, int32(qi))
		}
	}

	var err error
	if a.asyncMode {
		err = a.runAsync(workers)
	} else {
		err = a.runLockstep(workers)
	}
	a.release()
	return err
}

// runLockstep is the round-barrier scheduler: each live query wants
// exactly one chunk (its cursor); the round is grouped by chunk so every
// distinct chunk is read and decoded once and scanned against all of its
// queries while hot, and a barrier joins the round's workers before the
// next round starts.
func (a *arena) runLockstep(workers int) error {
	for len(a.live) > 0 {
		if a.ctx != nil {
			if err := a.ctx.Err(); err != nil {
				return &QueryError{Query: int(a.live[0]), Err: fmt.Errorf("canceled mid-batch: %w", err)}
			}
		}
		a.pairs = a.pairs[:0]
		for _, si := range a.live {
			st := &a.states[si]
			a.pairs = append(a.pairs, pair{chunk: int32(st.ranked[st.cursor].Idx), state: si})
		}
		slices.SortFunc(a.pairs, func(x, y pair) int {
			if x.chunk != y.chunk {
				return int(x.chunk - y.chunk)
			}
			return int(x.state - y.state)
		})
		a.groups = a.groups[:0]
		lo := 0
		for i := 1; i <= len(a.pairs); i++ {
			if i == len(a.pairs) || a.pairs[i].chunk != a.pairs[lo].chunk {
				a.groups = append(a.groups, group{lo: int32(lo), hi: int32(i)})
				lo = i
			}
		}

		if workers <= 1 || len(a.groups) == 1 {
			a.processSpan(&a.coord, 0, int32(len(a.groups)))
		} else {
			// Carve the round's groups into one contiguous span per worker,
			// balanced by query count (group sizes are skewed: many queries
			// rank the same dense chunk first). Span granularity keeps the
			// handoff overhead at a few channel operations per round
			// regardless of how many chunks the round touches.
			ensurePool()
			spans := workers
			if spans > len(a.groups) {
				spans = len(a.groups)
			}
			target := (len(a.pairs) + spans - 1) / spans
			lo, acc, launched := 0, 0, 0
			for gi := 0; gi < len(a.groups) && launched < spans-1; gi++ {
				acc += int(a.groups[gi].hi - a.groups[gi].lo)
				mustClose := len(a.groups)-gi-1 == spans-launched-1
				if acc >= target || mustClose {
					a.dispatchSpan(int32(lo), int32(gi+1))
					launched++
					lo, acc = gi+1, 0
				}
			}
			a.dispatchSpan(int32(lo), int32(len(a.groups)))
			a.wg.Wait()
		}
		if a.failed.Load() {
			return &QueryError{Query: int(a.errState), Err: a.err}
		}

		next := a.nextLive[:0]
		for _, si := range a.live {
			if !a.states[si].done {
				next = append(next, si)
			}
		}
		a.live, a.nextLive = next, a.live
	}
	return nil
}

// release drops the arena's references into caller memory (queries,
// results, the shard mapping, and the run's callbacks) so pooling the
// arena does not retain them.
func (a *arena) release() {
	for i := range a.states {
		a.states[i].q = nil
		a.states[i].res = nil
	}
	a.machines = nil
	a.onDone = nil
	a.trace = nil
	a.ctx = nil
	a.stop = nil
	a.model = nil
}

// processGroup extracts one lockstep group's membership and processes its
// chunk. Groups of one round touch disjoint query states, so this is safe
// to run concurrently across groups.
func (a *arena) processGroup(ws *workerScratch, g group) {
	pairs := a.pairs[g.lo:g.hi]
	ws.members = ws.members[:0]
	for _, p := range pairs {
		ws.members = append(ws.members, p.state)
	}
	a.processChunk(ws, int(pairs[0].chunk), ws.members)
}

// processChunk reads and decodes one chunk, scans it for every member
// query, then charges each member's pipeline and applies its stop rule.
// members must be sorted ascending (deterministic error attribution and
// the scanGroup merge walk both rely on it) and their states must be
// owned by the caller: the lockstep scheduler partitions a round's
// states by wanted chunk, the asynchronous scheduler subscribes a query
// to exactly one task at a time.
func (a *arena) processChunk(ws *workerScratch, chunk int, members []int32) {
	m := &a.metas[chunk]
	machine := int32(0)
	if a.machines != nil {
		machine = a.machines[chunk]
	}
	// The machine this chunk's stalls bill to on the serving ledger: the
	// store's fixed owner (a shard view), or the chunk's mapped machine
	// when ownership varies per chunk (the concatenated global store).
	serveOwner := int(machine)
	if a.serveOwner >= 0 {
		serveOwner = a.serveOwner
	}
	if err := a.store.ReadChunk(chunk, &ws.data); err != nil {
		if errors.Is(err, chunkfile.ErrUnavailable) {
			// No live replica serves this chunk: every member query skips
			// it and degrades, exactly as the single-query path would. In
			// the per-query cost model each member's machine would have
			// made (and failed) this read itself, so each is charged the
			// stall; no budget is spent and the stop rule is not consulted.
			stall := ws.data.Stall
			ws.data.Stall = 0
			for _, si := range members {
				st := &a.states[si]
				res := st.res
				st.pipes[machine].Stall(stall)
				if len(st.serve) > 0 {
					st.serve[serveOwner].Stall(stall)
				}
				if e := st.pipes[machine].Elapsed(); e > res.Elapsed {
					res.Elapsed = e
				}
				res.ChunksSkipped++
				res.Degraded = true
				if st.cursor+1 == len(st.ranked) {
					a.retire(st)
				} else {
					st.cursor++
					if a.asyncMode {
						a.subscribe(st.ranked[st.cursor].Idx, si)
					}
				}
			}
			return
		}
		a.fail(members[0], err)
		return
	}
	if len(members) == 1 {
		st := &a.states[members[0]]
		ws.d2 = search.ScanChunk(st.q, a.dims, &ws.data, st.heap, ws.d2)
	} else {
		a.scanGroup(ws, members)
	}
	stall := ws.data.Stall
	ws.data.Stall = 0
	served := serveOwner
	if a.serveMachines > 1 {
		if sv := int(ws.data.Served); sv >= 0 && sv < a.serveMachines {
			served = sv
		}
	}
	for _, si := range members {
		st := &a.states[si]
		res := st.res
		// Charge the chunk to its owning machine's pipeline; the elapsed
		// the stop rule sees is the max over the query's machines (they
		// run in parallel). With one machine the max is the pipeline
		// itself, so the single-machine path is unchanged. A read served
		// by retries or failover first charges the attempts' stall.
		st.pipes[machine].Stall(stall)
		resident := len(st.serve) > 0 && a.model.ChunkResident(chunk)
		elapsed := st.pipes[machine].ChunkAt(chunk, m.Bytes, m.Count)
		if len(st.serve) > 0 {
			// Mirror the charge on the serving ledger: the stall bills the
			// owner (it performed the retries), the chunk bills the machine
			// that actually served the read, at the residency this member's
			// nominal ChunkAt sees (probed per member — each observation
			// moves the cache tier for the next member).
			st.serve[serveOwner].Stall(stall)
			st.serve[served].ChunkCharged(m.Bytes, m.Count, resident)
		}
		if elapsed < res.Elapsed {
			elapsed = res.Elapsed
		}
		res.ChunksRead++
		res.Elapsed = elapsed
		pos := st.cursor
		if a.trace != nil {
			st.events = st.heap.AppendAll(st.events[:0])
			a.trace(int(st.qi), search.Event{
				Ordinal:    pos + 1,
				ChunkIndex: chunk,
				ChunkCount: m.Count,
				Elapsed:    elapsed,
				Neighbors:  st.events,
			})
		}
		switch {
		case a.stop.Done(res.ChunksRead, elapsed, st.heap.Kth(), st.suffix[pos+1]):
			// Mirror the single-query path exactly: the certificate from the
			// suffix bound, overridden to true when every chunk was
			// processed (with an under-filled heap both Kth and the suffix
			// are +Inf, so the comparison alone would say false).
			res.Exact = st.suffix[pos+1] > st.heap.Kth() || pos+1 == len(st.ranked)
			a.retire(st)
		case pos+1 == len(st.ranked):
			res.Exact = true // every chunk processed
			a.retire(st)
		default:
			st.cursor++
			if a.asyncMode {
				a.subscribe(st.ranked[st.cursor].Idx, si)
			}
		}
	}
}

// scanBlock is the row-block granularity of the multi-query kernel: 256
// 24-d float32 rows are 24 KiB, small enough to stay L1-resident while
// every Multi-scanned query of the group streams over them.
const scanBlock = 256

// scanGroup scans one decoded chunk for several queries. Queries whose
// k-NN set is still filling need full distances anyway, so they share one
// SquaredDistancesMulti call per row block — the chunk's rows are loaded
// once for all of them. On backends that prefer full scans
// (vec.PrefersFullScan, the SIMD backends) the full-heap queries fold
// into the very same Multi call: their ScanChunk branch would stream full
// rows through the row kernel anyway, so sharing the group's block tiling
// loads each row block once for the whole group and lets the query-pair
// Multi kernels amortize row traffic across queries. On the portable
// backend full-heap queries keep the single-query path's per-row
// partial-distance abandonment. All branches produce the exact heap
// contents the single-query ScanChunk would: Multi distances are
// bit-identical to the row kernel's, and abandoned candidates are exactly
// those the heap would reject.
func (a *arena) scanGroup(ws *workerScratch, members []int32) {
	data := &ws.data
	dims := a.dims
	n := data.Len()

	full := vec.PrefersFullScan()
	ws.fill = ws.fill[:0]
	for _, si := range members {
		if full || !a.states[si].heap.Full() {
			ws.fill = append(ws.fill, si)
		}
	}
	if qn := len(ws.fill); qn > 0 {
		if cap(ws.qflat) < qn*dims {
			ws.qflat = make([]float32, qn*dims)
		}
		qf := ws.qflat[:qn*dims]
		for i, si := range ws.fill {
			copy(qf[i*dims:(i+1)*dims], a.states[si].q)
		}
		if cap(ws.out) < qn*scanBlock {
			ws.out = make([]float64, qn*scanBlock)
		}
		for r0 := 0; r0 < n; r0 += scanBlock {
			bn := n - r0
			if bn > scanBlock {
				bn = scanBlock
			}
			out := ws.out[:qn*bn]
			vec.SquaredDistancesMulti(qf, data.Vecs[r0*dims:(r0+bn)*dims], dims, out)
			ids := data.IDs[r0 : r0+bn]
			for i, si := range ws.fill {
				h := a.states[si].heap
				for j, d2 := range out[i*bn : (i+1)*bn] {
					h.OfferSquared(ids[j], d2)
				}
			}
		}
	}
	// Remaining members: partial-distance scans (portable backend only —
	// with PrefersFullScan every member went through Multi above).
	// ws.fill is a subsequence of members (both ascend by state), so a
	// merge walk skips the states already scanned — including any whose
	// heap filled just now.
	fi := 0
	for _, si := range members {
		if fi < len(ws.fill) && ws.fill[fi] == si {
			fi++
			continue
		}
		st := &a.states[si]
		ws.d2 = search.ScanChunk(st.q, dims, data, st.heap, ws.d2)
	}
}

// retire finalizes one query: sorted neighbors into the caller's reused
// slice, wall time up to this query's completion, and — when the run
// streams — the completion callback, fired after the result is fully
// written. A degraded query is never exact — a skipped chunk may hold
// closer neighbors than any certificate can rule out.
func (a *arena) retire(st *queryState) {
	if st.res.Degraded {
		st.res.Exact = false
	}
	if len(st.serve) > 0 {
		mt := st.res.Machines[:0]
		for t := range st.serve {
			mt = append(mt, st.serve[t].Elapsed())
		}
		st.res.Machines = mt
		if a.serveOwner < 0 && len(a.inits) == len(st.serve) {
			// Concatenated multi-shard store (the global-budget mode with
			// spread reads on): the engine is the merge point, so the
			// reported Elapsed is recomputed from the serving ledger —
			// machine t's clock is its own index read plus the serving
			// time billed to it, and the machines run in parallel, so the
			// query finishes at the slowest. The stop rule consulted the
			// nominal owner-billed max throughout, which is what keeps the
			// answers routing-invariant.
			elapsed := time.Duration(0)
			for t := range st.serve {
				if mc := a.inits[t] + st.serve[t].Elapsed(); mc > elapsed {
					elapsed = mc
				}
			}
			st.res.Elapsed = elapsed
		}
	}
	st.res.Neighbors = st.heap.SortedInto(st.res.Neighbors)
	st.res.Wall = time.Since(a.start)
	st.done = true
	if a.onDone != nil {
		a.onDone(int(st.qi))
	}
}

// processSpan runs the contiguous groups[lo:hi] of the current lockstep
// round, bailing out once any group has failed the batch.
func (a *arena) processSpan(ws *workerScratch, lo, hi int32) {
	for gi := lo; gi < hi; gi++ {
		if a.failed.Load() {
			return
		}
		a.processGroup(ws, a.groups[gi])
	}
}

// dispatchSpan hands groups[lo:hi] to a pool worker, or runs it inline on
// the coordinator when the pool is saturated — which both load-balances
// and rules out deadlock when concurrent batches share the pool.
func (a *arena) dispatchSpan(lo, hi int32) {
	if lo >= hi {
		return
	}
	a.wg.Add(1)
	select {
	case jobs <- job{a: a, lo: lo, hi: hi}:
	default:
		a.processSpan(&a.coord, lo, hi)
		a.wg.Done()
	}
}

// job hands one unit of work to a pool worker: a span of lockstep groups
// (hi > lo), or — when hi is negative — the asynchronous scheduler's
// decode task for chunk lo.
type job struct {
	a      *arena
	lo, hi int32
}

// The process-wide worker pool. Workers are started once, on first
// parallel Run anywhere in the process, and live for the process
// lifetime (they are idle and allocation-free when no batch is running).
// Sharing one pool across engines bounds total goroutines, needs no
// per-engine Close, and lets concurrent batches interleave safely: every
// job carries its arena, and worker scratch is reusable across stores.
var (
	poolOnce sync.Once
	jobs     chan job
)

func ensurePool() {
	poolOnce.Do(func() {
		jobs = make(chan job)
		for i := 0; i < runtime.GOMAXPROCS(0); i++ {
			go func() {
				var ws workerScratch
				for jb := range jobs {
					if jb.hi < 0 {
						jb.a.runTask(&ws, jb.lo)
						jb.a.inflight.Add(-1)
					} else {
						jb.a.processSpan(&ws, jb.lo, jb.hi)
					}
					jb.a.wg.Done()
				}
			}()
		}
	})
}
