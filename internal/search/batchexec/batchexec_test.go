package batchexec

import (
	"errors"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/chunkfile"
	"repro/internal/imagegen"
	"repro/internal/search"
	"repro/internal/simdisk"
	"repro/internal/srtree"
	"repro/internal/vec"
)

// buildStores returns the same chunk index as a MemStore and a FileStore,
// so every equivalence below is pinned on both backends.
func buildStores(t testing.TB) (*chunkfile.MemStore, *chunkfile.FileStore, []vec.Vector) {
	t.Helper()
	ds := imagegen.MustGenerate(imagegen.DefaultConfig(5000, 17))
	coll := ds.Collection
	tree, err := srtree.Build(coll, nil, 160, 16)
	if err != nil {
		t.Fatal(err)
	}
	mem := chunkfile.NewMemStore(coll, tree.Chunks(), 4096)

	dir := t.TempDir()
	cp, ip := filepath.Join(dir, "b.chunk"), filepath.Join(dir, "b.idx")
	if err := chunkfile.Write(coll, tree.Chunks(), cp, ip, 4096); err != nil {
		t.Fatal(err)
	}
	file, err := chunkfile.Open(cp, ip)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { file.Close() })

	// 40 dataset queries (descriptors of the collection itself, so they
	// have close matches) plus 10 perturbed ones with no exact match.
	queries := make([]vec.Vector, 0, 50)
	for i := 0; i < 40; i++ {
		queries = append(queries, coll.Vec(i*117).Clone())
	}
	for i := 0; i < 10; i++ {
		q := coll.Vec(i*331 + 7).Clone()
		for d := range q {
			q[d] += float32(d%5) * 3.5
		}
		queries = append(queries, q)
	}
	return mem, file, queries
}

// TestBatchMatchesSingleQuery is the engine's core contract: chunk-major
// batch results are byte-identical to per-query Search results — same
// neighbor IDs and bit-identical distances (ties included), same
// ChunksRead, same simulated Elapsed and IndexRead, same Exact flag —
// for all three stop rules, on both store backends, at every parallelism.
func TestBatchMatchesSingleQuery(t *testing.T) {
	mem, file, queries := buildStores(t)
	stops := []search.StopRule{
		search.ChunkBudget(3),
		search.TimeBudget(250 * time.Millisecond),
		search.ToCompletion{},
	}
	stores := []struct {
		name  string
		store chunkfile.Store
	}{{"mem", mem}, {"file", file}}

	for _, sc := range stores {
		searcher := search.New(sc.store, nil)
		eng := New(sc.store, nil)
		for _, stop := range stops {
			for _, par := range []int{1, 0} {
				opts := search.Options{K: 20, Stop: stop, Overlap: true}
				results := make([]search.Result, len(queries))
				err := eng.Run(queries, Options{K: 20, Stop: stop, Overlap: true, Parallelism: par}, results)
				if err != nil {
					t.Fatalf("%s/%v/p%d: %v", sc.name, stop, par, err)
				}
				for qi, q := range queries {
					var want search.Result
					if err := searcher.SearchInto(q, opts, &want); err != nil {
						t.Fatal(err)
					}
					got := &results[qi]
					if got.ChunksRead != want.ChunksRead {
						t.Fatalf("%s/%v/p%d q%d: ChunksRead %d != %d", sc.name, stop, par, qi, got.ChunksRead, want.ChunksRead)
					}
					if got.Elapsed != want.Elapsed {
						t.Fatalf("%s/%v/p%d q%d: Elapsed %v != %v", sc.name, stop, par, qi, got.Elapsed, want.Elapsed)
					}
					if got.IndexRead != want.IndexRead {
						t.Fatalf("%s/%v/p%d q%d: IndexRead %v != %v", sc.name, stop, par, qi, got.IndexRead, want.IndexRead)
					}
					if got.Exact != want.Exact {
						t.Fatalf("%s/%v/p%d q%d: Exact %v != %v", sc.name, stop, par, qi, got.Exact, want.Exact)
					}
					if len(got.Neighbors) != len(want.Neighbors) {
						t.Fatalf("%s/%v/p%d q%d: %d neighbors != %d", sc.name, stop, par, qi, len(got.Neighbors), len(want.Neighbors))
					}
					for i := range want.Neighbors {
						if got.Neighbors[i] != want.Neighbors[i] {
							t.Fatalf("%s/%v/p%d q%d rank %d: %+v != %+v",
								sc.name, stop, par, qi, i, got.Neighbors[i], want.Neighbors[i])
						}
					}
				}
			}
		}
	}
}

// TestBatchZeroAlloc pins the arena contract: recycling one results array
// across batches performs zero allocations per batch in steady state, on
// both the inline and the pooled-parallel path.
func TestBatchZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("race detector instrumentation allocates")
	}
	mem, _, queries := buildStores(t)
	eng := New(mem, nil)
	for _, sched := range []Scheduler{SchedulerAsync, SchedulerLockstep} {
		for _, par := range []int{1, 0} {
			opts := Options{K: 20, Stop: search.ChunkBudget(4), Parallelism: par, Scheduler: sched}
			results := make([]search.Result, len(queries))
			// Warm up: grows the arena, worker scratches and neighbor slices.
			for i := 0; i < 3; i++ {
				if err := eng.Run(queries, opts, results); err != nil {
					t.Fatal(err)
				}
			}
			allocs := testing.AllocsPerRun(20, func() {
				if err := eng.Run(queries, opts, results); err != nil {
					t.Fatal(err)
				}
			})
			if allocs != 0 {
				t.Fatalf("scheduler %d parallelism %d: steady-state batch allocates %v per run, want 0", sched, par, allocs)
			}
		}
	}
}

// TestBatchExactUnderfilledHeap pins the edge where the stop rule fires
// on the very last ranked chunk while the heap is still under-filled (K
// exceeds the store's descriptor count): both Kth and the suffix bound
// are +Inf, so the certificate comparison alone says false, but the
// single-query path reports Exact=true because every chunk was
// processed. The batch engine must agree.
func TestBatchExactUnderfilledHeap(t *testing.T) {
	mem, _, queries := buildStores(t)
	nchunks := len(mem.Meta())
	total := 0
	for _, m := range mem.Meta() {
		total += m.Count
	}
	k := total + 10 // heap can never fill
	searcher := search.New(mem, nil)
	eng := New(mem, nil)
	stop := search.ChunkBudget(nchunks) // Done fires exactly on the last chunk
	results := make([]search.Result, len(queries))
	if err := eng.Run(queries, Options{K: k, Stop: stop}, results); err != nil {
		t.Fatal(err)
	}
	for qi, q := range queries {
		want, err := searcher.Search(q, search.Options{K: k, Stop: stop})
		if err != nil {
			t.Fatal(err)
		}
		if !want.Exact {
			t.Fatalf("q%d: single-query path not exact (%d chunks)", qi, want.ChunksRead)
		}
		if results[qi].Exact != want.Exact {
			t.Fatalf("q%d: Exact %v != %v", qi, results[qi].Exact, want.Exact)
		}
		if len(results[qi].Neighbors) != len(want.Neighbors) {
			t.Fatalf("q%d: %d neighbors != %d", qi, len(results[qi].Neighbors), len(want.Neighbors))
		}
	}
}

// TestBatchQueryError verifies a bad query fails the whole batch with a
// QueryError naming the offending query.
func TestBatchQueryError(t *testing.T) {
	mem, _, queries := buildStores(t)
	eng := New(mem, nil)
	bad := make([]vec.Vector, len(queries))
	copy(bad, queries)
	bad[3] = make(vec.Vector, mem.Dims()+1)
	results := make([]search.Result, len(bad))
	err := eng.Run(bad, Options{K: 10}, results)
	var qe *QueryError
	if !errors.As(err, &qe) || qe.Query != 3 {
		t.Fatalf("want QueryError for query 3, got %v", err)
	}
}

// TestBatchEdges: empty batches are no-ops and mismatched results arrays
// are rejected.
func TestBatchEdges(t *testing.T) {
	mem, _, queries := buildStores(t)
	eng := New(mem, nil)
	if err := eng.Run(nil, Options{}, nil); err != nil {
		t.Fatalf("empty batch: %v", err)
	}
	if err := eng.Run(queries, Options{}, make([]search.Result, 1)); err == nil {
		t.Fatal("mismatched results length accepted")
	}
}

// TestBatchShardMapping pins the machine-mapped cost model: with every
// chunk assigned to one of M simulated machines, a query's Elapsed is
// the max over its machines' pipelines (each seeded with its own
// index-read time for its own chunk count), chunk charges land on the
// owning machine in the query's rank order, and neighbors are unchanged
// (the mapping moves time, never results). A mapping onto one machine is
// byte-identical to the unmapped engine. Invalid mappings are rejected.
func TestBatchShardMapping(t *testing.T) {
	mem, _, queries := buildStores(t)
	eng := New(mem, nil)
	metas := mem.Meta()
	queries = queries[:12]

	base := make([]search.Result, len(queries))
	if err := eng.Run(queries, Options{K: 10, Stop: search.ChunkBudget(6)}, base); err != nil {
		t.Fatal(err)
	}

	// One machine, explicitly mapped: byte-identical to no mapping.
	oneMachine := make([]int32, len(metas))
	got := make([]search.Result, len(queries))
	if err := eng.Run(queries, Options{K: 10, Stop: search.ChunkBudget(6), Shards: oneMachine}, got); err != nil {
		t.Fatal(err)
	}
	for qi := range got {
		if got[qi].Elapsed != base[qi].Elapsed || got[qi].IndexRead != base[qi].IndexRead ||
			got[qi].ChunksRead != base[qi].ChunksRead {
			t.Fatalf("q%d: 1-machine mapping (%v, %v, %d) != unmapped (%v, %v, %d)", qi,
				got[qi].Elapsed, got[qi].IndexRead, got[qi].ChunksRead,
				base[qi].Elapsed, base[qi].IndexRead, base[qi].ChunksRead)
		}
		for i := range base[qi].Neighbors {
			if got[qi].Neighbors[i] != base[qi].Neighbors[i] {
				t.Fatalf("q%d rank %d mismatch under 1-machine mapping", qi, i)
			}
		}
	}

	// Three machines, round-robin: neighbors and ChunksRead unchanged,
	// Elapsed is the max of per-machine replays of the same charges.
	const machines = 3
	mapping := make([]int32, len(metas))
	for i := range mapping {
		mapping[i] = int32(i % machines)
	}
	if err := eng.Run(queries, Options{K: 10, Stop: search.ChunkBudget(6), Shards: mapping, NumShards: machines}, got); err != nil {
		t.Fatal(err)
	}
	model := simdisk.Default2005()
	counts := make([]int, machines)
	for _, m := range mapping {
		counts[m]++
	}
	for qi, q := range queries {
		if got[qi].ChunksRead != base[qi].ChunksRead {
			t.Fatalf("q%d: mapped ChunksRead %d != %d", qi, got[qi].ChunksRead, base[qi].ChunksRead)
		}
		for i := range base[qi].Neighbors {
			if got[qi].Neighbors[i] != base[qi].Neighbors[i] {
				t.Fatalf("q%d rank %d mismatch under 3-machine mapping", qi, i)
			}
		}
		// Replay: rank the chunks, walk the first ChunksRead of them, and
		// charge per-machine pipelines by hand.
		ranked := search.RankChunks(q, metas, nil)
		pipes := make([]*simdisk.Pipeline, machines)
		maxElapsed := time.Duration(0)
		for m := 0; m < machines; m++ {
			pipes[m] = simdisk.NewPipeline(model, false, model.IndexReadTime(counts[m], chunkfile.EntrySize(mem.Dims())))
			if e := pipes[m].Elapsed(); e > maxElapsed {
				maxElapsed = e
			}
		}
		for _, rc := range ranked[:got[qi].ChunksRead] {
			m := mapping[rc.Idx]
			if e := pipes[m].Chunk(metas[rc.Idx].Bytes, metas[rc.Idx].Count); e > maxElapsed {
				maxElapsed = e
			}
		}
		if got[qi].Elapsed != maxElapsed {
			t.Fatalf("q%d: mapped Elapsed %v != replayed max %v", qi, got[qi].Elapsed, maxElapsed)
		}
	}

	// Invalid mappings are rejected up front.
	if err := eng.Run(queries, Options{Shards: make([]int32, 1)}, got); err == nil {
		t.Fatal("short mapping accepted")
	}
	bad := make([]int32, len(metas))
	bad[0] = -1
	if err := eng.Run(queries, Options{Shards: bad}, got); err == nil {
		t.Fatal("negative machine accepted")
	}
	bad[0] = int32(machines)
	if err := eng.Run(queries, Options{Shards: bad, NumShards: machines}, got); err == nil {
		t.Fatal("machine index >= NumShards accepted")
	}
}

// BenchmarkBatchScheduler compares the asynchronous work-queue scheduler
// against the lockstep round-barrier baseline on the file-backed store,
// where decode latency (and thus the barrier) actually costs wall time.
func BenchmarkBatchScheduler(b *testing.B) {
	_, file, queries := buildStores(b)
	eng := New(file, nil)
	for _, sc := range []struct {
		name  string
		sched Scheduler
	}{{"async", SchedulerAsync}, {"lockstep", SchedulerLockstep}} {
		b.Run(sc.name, func(b *testing.B) {
			opts := Options{K: 20, Stop: search.ChunkBudget(5), Overlap: true, Scheduler: sc.sched}
			results := make([]search.Result, len(queries))
			if err := eng.Run(queries, opts, results); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := eng.Run(queries, opts, results); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
