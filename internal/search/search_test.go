package search

import (
	"math"
	"math/rand"
	"testing"
	"time"

	"repro/internal/bag"
	"repro/internal/chunkfile"
	"repro/internal/descriptor"
	"repro/internal/imagegen"
	"repro/internal/scan"
	"repro/internal/simdisk"
	"repro/internal/srtree"
	"repro/internal/vec"
)

// fixture builds a small collection with two chunk stores: SR-tree chunks
// and BAG chunks, as in the paper.
type fixture struct {
	coll  *descriptor.Collection
	srSt  *chunkfile.MemStore
	bagSt *chunkfile.MemStore
}

var fixtures = map[int64]*fixture{}

func getFixture(t testing.TB, seed int64) *fixture {
	if f, ok := fixtures[seed]; ok {
		return f
	}
	ds := imagegen.MustGenerate(imagegen.DefaultConfig(6000, seed))
	coll := ds.Collection
	tr, err := srtree.Build(coll, nil, 120, 16)
	if err != nil {
		t.Fatal(err)
	}
	srSt := chunkfile.NewMemStore(coll, tr.Chunks(), 4096)

	cfg := bag.DefaultConfig(coll.Len(), 120)
	cfg.MaxPasses = 500
	snaps, err := bag.Run(coll, cfg)
	if err != nil {
		t.Fatal(err)
	}
	snap := snaps[len(snaps)-1]
	// The BAG store indexes only the retained descriptors; for exactness
	// tests we compare against a scan over the retained subset.
	bagSt := chunkfile.NewMemStore(coll, snap.Clusters, 4096)

	f := &fixture{coll: coll, srSt: srSt, bagSt: bagSt}
	fixtures[seed] = f
	return f
}

// retainedSubset returns a collection holding exactly the descriptors
// reachable through the store.
func retainedSubset(t testing.TB, coll *descriptor.Collection, st chunkfile.Store) *descriptor.Collection {
	t.Helper()
	keep := map[descriptor.ID]bool{}
	var data chunkfile.Data
	for i := range st.Meta() {
		if err := st.ReadChunk(i, &data); err != nil {
			t.Fatal(err)
		}
		for _, id := range data.IDs {
			keep[id] = true
		}
	}
	sub := descriptor.NewCollection(coll.Dims(), len(keep))
	for i := 0; i < coll.Len(); i++ {
		if keep[coll.IDAt(i)] {
			sub.Append(coll.IDAt(i), coll.Vec(i))
		}
	}
	return sub
}

// The central correctness property: run-to-completion over the chunk
// architecture returns exactly the sequential-scan result (paper §4.3:
// "This ensures that all nearest-neighbors have been found").
func TestCompletionIsExact(t *testing.T) {
	f := getFixture(t, 31)
	r := rand.New(rand.NewSource(2))
	for name, st := range map[string]chunkfile.Store{"srtree": f.srSt, "bag": f.bagSt} {
		sub := retainedSubset(t, f.coll, st)
		s := New(st, nil)
		for trial := 0; trial < 12; trial++ {
			var q vec.Vector
			if trial%2 == 0 {
				q = f.coll.Vec(r.Intn(f.coll.Len())) // DQ-style
			} else {
				q = make(vec.Vector, f.coll.Dims()) // SQ-style
				for d := range q {
					q[d] = float32(r.NormFloat64() * 120)
				}
			}
			res, err := s.Search(q, Options{K: 20, Stop: ToCompletion{}})
			if err != nil {
				t.Fatal(err)
			}
			if !res.Exact {
				t.Fatalf("%s: completion search not marked exact", name)
			}
			want := scan.KNN(sub, q, 20)
			if len(res.Neighbors) != len(want) {
				t.Fatalf("%s: got %d neighbors, want %d", name, len(res.Neighbors), len(want))
			}
			for i := range want {
				if math.Abs(res.Neighbors[i].Dist-want[i].Dist) > 1e-9 {
					t.Fatalf("%s trial %d: rank %d dist %v, scan %v",
						name, trial, i, res.Neighbors[i].Dist, want[i].Dist)
				}
			}
		}
	}
}

func TestChunkBudgetStops(t *testing.T) {
	f := getFixture(t, 31)
	s := New(f.srSt, nil)
	q := f.coll.Vec(5)
	res, err := s.Search(q, Options{K: 30, Stop: ChunkBudget(3)})
	if err != nil {
		t.Fatal(err)
	}
	if res.ChunksRead != 3 {
		t.Fatalf("ChunksRead = %d, want 3", res.ChunksRead)
	}
}

func TestTimeBudgetStops(t *testing.T) {
	f := getFixture(t, 31)
	s := New(f.srSt, nil)
	q := f.coll.Vec(5)
	full, err := s.Search(q, Options{K: 30, Stop: ToCompletion{}})
	if err != nil {
		t.Fatal(err)
	}
	budget := full.IndexRead + 25*time.Millisecond
	res, err := s.Search(q, Options{K: 30, Stop: TimeBudget(budget)})
	if err != nil {
		t.Fatal(err)
	}
	if res.ChunksRead >= full.ChunksRead {
		t.Fatalf("time budget read %d chunks, completion read %d", res.ChunksRead, full.ChunksRead)
	}
	// The rule triggers after crossing the threshold, so elapsed may
	// exceed it by at most one chunk.
	if res.Elapsed < budget {
		t.Fatalf("stopped before budget: %v < %v", res.Elapsed, budget)
	}
}

// The approximation quality must be monotone: the number of true neighbors
// found can only grow as more chunks are processed.
func TestNeighborsFoundMonotone(t *testing.T) {
	f := getFixture(t, 31)
	sub := retainedSubset(t, f.coll, f.bagSt)
	s := New(f.bagSt, nil)
	r := rand.New(rand.NewSource(77))
	for trial := 0; trial < 5; trial++ {
		q := f.coll.Vec(r.Intn(f.coll.Len()))
		truth := scan.Compute(sub, []vec.Vector{q}, 30)
		prev := -1
		_, err := s.Search(q, Options{K: 30, Stop: ToCompletion{}, Trace: func(ev Event) {
			found := truth.Found(0, ev.Neighbors)
			if found < prev {
				t.Fatalf("neighbors found dropped from %d to %d at chunk %d", prev, found, ev.Ordinal)
			}
			prev = found
		}})
		if err != nil {
			t.Fatal(err)
		}
		if prev != 30 {
			t.Fatalf("completion found %d/30 true neighbors", prev)
		}
	}
}

func TestTraceEvents(t *testing.T) {
	f := getFixture(t, 31)
	s := New(f.srSt, nil)
	var ordinals []int
	var elapsed []time.Duration
	res, err := s.Search(f.coll.Vec(9), Options{K: 10, Stop: ChunkBudget(5), Trace: func(ev Event) {
		ordinals = append(ordinals, ev.Ordinal)
		elapsed = append(elapsed, ev.Elapsed)
		if ev.ChunkCount <= 0 {
			t.Fatalf("event with non-positive chunk count: %+v", ev)
		}
	}})
	if err != nil {
		t.Fatal(err)
	}
	if len(ordinals) != res.ChunksRead {
		t.Fatalf("%d events for %d chunks", len(ordinals), res.ChunksRead)
	}
	for i := range ordinals {
		if ordinals[i] != i+1 {
			t.Fatalf("ordinal %d at position %d", ordinals[i], i)
		}
		if i > 0 && elapsed[i] <= elapsed[i-1] {
			t.Fatalf("elapsed not increasing at event %d", i)
		}
	}
}

// Chunks must be processed in increasing centroid-distance order.
func TestRankingOrder(t *testing.T) {
	f := getFixture(t, 31)
	s := New(f.srSt, nil)
	q := f.coll.Vec(100)
	metas := f.srSt.Meta()
	var prev float64 = -1
	_, err := s.Search(q, Options{K: 5, Stop: ToCompletion{}, Trace: func(ev Event) {
		d := vec.Distance(q, metas[ev.ChunkIndex].Centroid)
		if d < prev-1e-9 {
			t.Fatalf("chunk order violated: %v after %v", d, prev)
		}
		prev = d
	}})
	if err != nil {
		t.Fatal(err)
	}
}

func TestDimsMismatch(t *testing.T) {
	f := getFixture(t, 31)
	s := New(f.srSt, nil)
	if _, err := s.Search(vec.Vector{1, 2, 3}, Options{}); err == nil {
		t.Fatal("dims mismatch accepted")
	}
}

func TestDefaults(t *testing.T) {
	f := getFixture(t, 31)
	s := New(f.srSt, nil)
	res, err := s.Search(f.coll.Vec(0), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Neighbors) != 30 {
		t.Fatalf("default K produced %d neighbors", len(res.Neighbors))
	}
	if !res.Exact {
		t.Fatal("default stop rule should run to completion")
	}
}

// Overlapped simulation must never be slower than serial for the same
// query, and both must exceed the index-read floor.
func TestOverlapFaster(t *testing.T) {
	f := getFixture(t, 31)
	s := New(f.srSt, nil)
	q := f.coll.Vec(42)
	over, err := s.Search(q, Options{K: 30, Overlap: true})
	if err != nil {
		t.Fatal(err)
	}
	serial, err := s.Search(q, Options{K: 30, Overlap: false})
	if err != nil {
		t.Fatal(err)
	}
	if over.Elapsed > serial.Elapsed {
		t.Fatalf("overlap %v > serial %v", over.Elapsed, serial.Elapsed)
	}
	if over.Elapsed <= over.IndexRead {
		t.Fatal("elapsed not above index read cost")
	}
}

func TestCustomModel(t *testing.T) {
	f := getFixture(t, 31)
	fast := &simdisk.Model{Seek: time.Microsecond, TransferRate: 1 << 40, DistanceCost: time.Nanosecond}
	s := New(f.srSt, fast)
	res, err := s.Search(f.coll.Vec(3), Options{K: 10, Stop: ChunkBudget(2)})
	if err != nil {
		t.Fatal(err)
	}
	slow := New(f.srSt, nil)
	res2, err := slow.Search(f.coll.Vec(3), Options{K: 10, Stop: ChunkBudget(2)})
	if err != nil {
		t.Fatal(err)
	}
	if res.Elapsed >= res2.Elapsed {
		t.Fatalf("fast model %v not faster than default %v", res.Elapsed, res2.Elapsed)
	}
}

func BenchmarkSearchCompletion(b *testing.B) {
	f := getFixture(b, 31)
	s := New(f.srSt, nil)
	q := f.coll.Vec(17)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Search(q, Options{K: 30}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSearchBudget5(b *testing.B) {
	f := getFixture(b, 31)
	s := New(f.srSt, nil)
	q := f.coll.Vec(17)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Search(q, Options{K: 30, Stop: ChunkBudget(5)}); err != nil {
			b.Fatal(err)
		}
	}
}
