package search

import (
	"math"
	"testing"

	"repro/internal/chunkfile"
	"repro/internal/imagegen"
	"repro/internal/srtree"
	"repro/internal/vafile"
)

// Three independently implemented exact searches — chunk search to
// completion, SR-tree best-first k-NN, and the two-phase VA-File — must
// agree on every query. Any pairwise disagreement localizes a bug to one
// implementation.
func TestThreeWayExactCrossCheck(t *testing.T) {
	ds := imagegen.MustGenerate(imagegen.DefaultConfig(5000, 17))
	coll := ds.Collection

	tree, err := srtree.Build(coll, nil, 150, 16)
	if err != nil {
		t.Fatal(err)
	}
	store := chunkfile.NewMemStore(coll, tree.Chunks(), 4096)
	chunkSearch := New(store, nil)

	va, err := vafile.Build(coll, 5)
	if err != nil {
		t.Fatal(err)
	}

	const k = 25
	for _, qi := range []int{0, 9, 500, 1234, 4000} {
		q := coll.Vec(qi)

		a, err := chunkSearch.Search(q, Options{K: k, Stop: ToCompletion{}})
		if err != nil {
			t.Fatal(err)
		}
		b := tree.KNN(q, k)
		c, _, err := va.Search(q, k, vafile.Options{})
		if err != nil {
			t.Fatal(err)
		}

		if len(a.Neighbors) != k || len(b) != k || len(c) != k {
			t.Fatalf("q%d: result sizes %d/%d/%d", qi, len(a.Neighbors), len(b), len(c))
		}
		for i := 0; i < k; i++ {
			if math.Abs(a.Neighbors[i].Dist-b[i].Dist) > 1e-9 {
				t.Fatalf("q%d rank %d: chunk search %v vs srtree %v", qi, i, a.Neighbors[i].Dist, b[i].Dist)
			}
			if math.Abs(a.Neighbors[i].Dist-c[i].Dist) > 1e-9 {
				t.Fatalf("q%d rank %d: chunk search %v vs va-file %v", qi, i, a.Neighbors[i].Dist, c[i].Dist)
			}
		}
	}
}
