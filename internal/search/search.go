// Package search implements the paper's approximate search algorithm over
// a chunk index (§4.3):
//
//  1. Compute the distance from the query descriptor to the centroid of
//     every chunk and rank chunks by increasing distance.
//  2. Read chunks in rank order; scan every descriptor of each chunk,
//     updating the current k-NN set.
//  3. After each chunk, apply the stop rule: stop after a fixed number of
//     chunks, stop after a time threshold, or run to completion — the
//     exact rule that stops once k neighbors are known and no remaining
//     chunk's lower bound (centroid distance minus radius, the reason
//     radii are stored in the index) can beat the current k-th neighbor.
//
// Elapsed time is tracked on the simdisk cost model so the paper's 2005
// wall-clock magnitudes are reproduced deterministically; real wall time
// is measured as well.
package search

import (
	"fmt"
	"math"
	"sort"
	"time"

	"repro/internal/chunkfile"
	"repro/internal/knn"
	"repro/internal/simdisk"
	"repro/internal/vec"
)

// Neighbor is one result entry.
type Neighbor = knn.Neighbor

// StopRule decides whether the search may halt after a chunk has been
// processed.
type StopRule interface {
	// Done is consulted after each processed chunk. chunksRead is the
	// number of chunks processed so far, elapsed the simulated time,
	// kthDist the current k-th neighbor distance (+Inf while fewer than k
	// found) and remainingBound the lowest possible distance any unread
	// chunk could contain (+Inf when no chunks remain).
	Done(chunksRead int, elapsed time.Duration, kthDist, remainingBound float64) bool
	fmt.Stringer
}

// ChunkBudget stops after reading a fixed number of chunks — the paper's
// "simple and natural stop rule is to process only the c nearest chunks".
type ChunkBudget int

// Done implements StopRule.
func (b ChunkBudget) Done(chunksRead int, _ time.Duration, _, _ float64) bool {
	return chunksRead >= int(b)
}

func (b ChunkBudget) String() string { return fmt.Sprintf("chunks<=%d", int(b)) }

// TimeBudget stops once the simulated elapsed time passes the threshold —
// the rule the paper's §5.7 concludes is the more natural one.
type TimeBudget time.Duration

// Done implements StopRule.
func (t TimeBudget) Done(_ int, elapsed time.Duration, _, _ float64) bool {
	return elapsed >= time.Duration(t)
}

func (t TimeBudget) String() string { return fmt.Sprintf("time<=%v", time.Duration(t)) }

// ToCompletion runs the exact search: it stops only when the k-NN set is
// full and no unread chunk can contain anything closer than the current
// k-th neighbor.
type ToCompletion struct{}

// Done implements StopRule.
func (ToCompletion) Done(_ int, _ time.Duration, kthDist, remainingBound float64) bool {
	return remainingBound > kthDist
}

func (ToCompletion) String() string { return "completion" }

// Options configures a search.
type Options struct {
	K       int
	Stop    StopRule
	Model   *simdisk.Model // nil means simdisk.Default2005()
	Overlap bool           // overlap I/O with CPU in the simulated pipeline
	// Trace, if non-nil, receives one event per processed chunk.
	Trace func(Event)
}

// Event reports the search state right after one chunk was processed.
type Event struct {
	Ordinal    int           // 1-based rank of the chunk in the processing order
	ChunkIndex int           // position of the chunk in the store
	ChunkCount int           // descriptors in the chunk
	Elapsed    time.Duration // simulated elapsed time including this chunk
	// Neighbors is the current k-NN set (unordered); the slice is reused
	// between events and must not be retained.
	Neighbors []Neighbor
}

// Result is the outcome of one query.
type Result struct {
	Neighbors  []Neighbor    // ordered by increasing distance
	ChunksRead int           // chunks processed
	Elapsed    time.Duration // simulated elapsed time (index read + chunks)
	IndexRead  time.Duration // simulated cost of reading + ranking the index
	Wall       time.Duration // real wall-clock time of this call
	Exact      bool          // true if the exact stop condition held at the end
}

// Searcher executes queries against one chunk store.
type Searcher struct {
	store chunkfile.Store
	model *simdisk.Model
}

// New returns a Searcher over the given store.
func New(store chunkfile.Store, model *simdisk.Model) *Searcher {
	if model == nil {
		model = simdisk.Default2005()
	}
	return &Searcher{store: store, model: model}
}

// Search runs one query. The default stop rule is ToCompletion and the
// default K is 30 (the paper's quality metric is precision within the top
// 30).
func (s *Searcher) Search(q vec.Vector, opts Options) (*Result, error) {
	start := time.Now()
	if opts.K <= 0 {
		opts.K = 30
	}
	if opts.Stop == nil {
		opts.Stop = ToCompletion{}
	}
	model := opts.Model
	if model == nil {
		model = s.model
	}
	metas := s.store.Meta()
	dims := s.store.Dims()
	if len(q) != dims {
		return nil, fmt.Errorf("search: query dims %d != store dims %d", len(q), dims)
	}

	// Step 1: global ranking of chunks by centroid distance.
	type rankedChunk struct {
		idx   int
		dist  float64
		bound float64
	}
	ranked := make([]rankedChunk, len(metas))
	for i, m := range metas {
		d := vec.Distance(q, m.Centroid)
		lb := d - m.Radius
		if lb < 0 {
			lb = 0
		}
		ranked[i] = rankedChunk{idx: i, dist: d, bound: lb}
	}
	sort.Slice(ranked, func(a, b int) bool { return ranked[a].dist < ranked[b].dist })
	// suffixBound[i] = min lower bound over ranked[i:]; +Inf past the end.
	suffixBound := make([]float64, len(ranked)+1)
	suffixBound[len(ranked)] = math.Inf(1)
	for i := len(ranked) - 1; i >= 0; i-- {
		suffixBound[i] = math.Min(suffixBound[i+1], ranked[i].bound)
	}

	indexRead := model.IndexReadTime(len(metas), chunkfile.EntrySize(dims))
	pipe := simdisk.NewPipeline(model, opts.Overlap, indexRead)

	res := &Result{IndexRead: indexRead, Elapsed: indexRead}
	heap := knn.NewHeap(opts.K)
	var data chunkfile.Data
	eventNeighbors := make([]Neighbor, 0, opts.K)

	for pos, rc := range ranked {
		m := metas[rc.idx]
		if err := s.store.ReadChunk(rc.idx, &data); err != nil {
			return nil, err
		}
		for k := 0; k < data.Len(); k++ {
			d := vec.Distance(q, data.Vec(k))
			heap.Offer(data.IDs[k], d)
		}
		elapsed := pipe.Chunk(m.Bytes, m.Count)
		res.ChunksRead++
		res.Elapsed = elapsed

		if opts.Trace != nil {
			eventNeighbors = heap.AppendAll(eventNeighbors[:0])
			opts.Trace(Event{
				Ordinal:    pos + 1,
				ChunkIndex: rc.idx,
				ChunkCount: m.Count,
				Elapsed:    elapsed,
				Neighbors:  eventNeighbors,
			})
		}

		if opts.Stop.Done(res.ChunksRead, elapsed, heap.Kth(), suffixBound[pos+1]) {
			res.Exact = suffixBound[pos+1] > heap.Kth()
			break
		}
	}
	if res.ChunksRead == len(ranked) {
		res.Exact = true
	}
	res.Neighbors = heap.Sorted()
	res.Wall = time.Since(start)
	return res, nil
}
