// Package search implements the paper's approximate search algorithm over
// a chunk index (§4.3):
//
//  1. Compute the distance from the query descriptor to the centroid of
//     every chunk and rank chunks by increasing distance.
//  2. Read chunks in rank order; scan every descriptor of each chunk,
//     updating the current k-NN set.
//  3. After each chunk, apply the stop rule: stop after a fixed number of
//     chunks, stop after a time threshold, or run to completion — the
//     exact rule that stops once k neighbors are known and no remaining
//     chunk's lower bound (centroid distance minus radius, the reason
//     radii are stored in the index) can beat the current k-th neighbor.
//
// The scan phase follows the repo-wide squared-distance convention: the
// per-chunk loop runs on the vec batch kernel over the contiguous
// Data.Vecs backing array while the k-NN set is filling, then switches to
// partial-distance early abandonment against the current k-th squared
// bound. Per-query state (chunk ranking, suffix bounds, chunk buffers,
// the k-NN heap) lives in a pooled scratch, so the steady-state query
// path performs no allocations.
//
// The algorithm's three primitives — RankChunks (step 1), SuffixBounds
// (the exactness certificate) and ScanChunk (step 2's adaptive scan) —
// are exported so the chunk-major batch engine in the batchexec
// subpackage executes the very same code per query that Search does:
// whole-workload batch results stay byte-identical to per-query results
// by construction, the batch engine merely reorders which chunk is
// decoded when. Any change to the query algorithm must go through these
// primitives, never be re-implemented on one side only.
//
// Elapsed time is tracked on the simdisk cost model so the paper's 2005
// wall-clock magnitudes are reproduced deterministically; real wall time
// is measured as well.
package search

import (
	"context"
	"errors"
	"fmt"
	"math"
	"slices"
	"sync"
	"time"

	"repro/internal/chunkfile"
	"repro/internal/knn"
	"repro/internal/simdisk"
	"repro/internal/vec"
)

// Neighbor is one result entry.
type Neighbor = knn.Neighbor

// StopRule decides whether the search may halt after a chunk has been
// processed.
type StopRule interface {
	// Done is consulted after each processed chunk. chunksRead is the
	// number of chunks processed so far, elapsed the simulated time,
	// kthDist the current k-th neighbor distance (+Inf while fewer than k
	// found) and remainingBound the lowest possible distance any unread
	// chunk could contain (+Inf when no chunks remain).
	Done(chunksRead int, elapsed time.Duration, kthDist, remainingBound float64) bool
	fmt.Stringer
}

// ChunkBudget stops after reading a fixed number of chunks — the paper's
// "simple and natural stop rule is to process only the c nearest chunks".
type ChunkBudget int

// Done implements StopRule.
func (b ChunkBudget) Done(chunksRead int, _ time.Duration, _, _ float64) bool {
	return chunksRead >= int(b)
}

func (b ChunkBudget) String() string { return fmt.Sprintf("chunks<=%d", int(b)) }

// TimeBudget stops once the simulated elapsed time passes the threshold —
// the rule the paper's §5.7 concludes is the more natural one.
type TimeBudget time.Duration

// Done implements StopRule.
func (t TimeBudget) Done(_ int, elapsed time.Duration, _, _ float64) bool {
	return elapsed >= time.Duration(t)
}

func (t TimeBudget) String() string { return fmt.Sprintf("time<=%v", time.Duration(t)) }

// ToCompletion runs the exact search: it stops only when the k-NN set is
// full and no unread chunk can contain anything closer than the current
// k-th neighbor.
type ToCompletion struct{}

// Done implements StopRule.
func (ToCompletion) Done(_ int, _ time.Duration, kthDist, remainingBound float64) bool {
	return remainingBound > kthDist
}

func (ToCompletion) String() string { return "completion" }

// Options configures a search.
type Options struct {
	K       int
	Stop    StopRule
	Model   *simdisk.Model // nil means simdisk.Default2005()
	Overlap bool           // overlap I/O with CPU in the simulated pipeline
	// Trace, if non-nil, receives one event per processed chunk.
	Trace func(Event)
	// Ctx, when non-nil, is consulted between chunk charges: once it is
	// cancelled or past its deadline the search stops immediately — no
	// further chunk is read or billed — and returns an error wrapping
	// ctx.Err(). This is the serving layer's deadline-propagation hook: an
	// abandoned request stops consuming budget within one chunk of the
	// cancellation. A nil Ctx never stops the search.
	Ctx context.Context
}

// ctxErr returns the context's error, nil when ctx is nil or still live.
func ctxErr(ctx context.Context) error {
	if ctx == nil {
		return nil
	}
	return ctx.Err()
}

// Event reports the search state right after one chunk was processed.
type Event struct {
	Ordinal    int           // 1-based rank of the chunk in the processing order
	ChunkIndex int           // position of the chunk in the store
	ChunkCount int           // descriptors in the chunk
	Elapsed    time.Duration // simulated elapsed time including this chunk
	// Neighbors is the current k-NN set (unordered); the slice is reused
	// between events and must not be retained.
	Neighbors []Neighbor
}

// Result is the outcome of one query.
type Result struct {
	Neighbors  []Neighbor    // ordered by (increasing distance, ascending id)
	ChunksRead int           // chunks processed
	Elapsed    time.Duration // simulated elapsed time (index read + chunks)
	IndexRead  time.Duration // simulated cost of reading + ranking the index
	Wall       time.Duration // real wall-clock time of this call
	Exact      bool          // true if the exact stop condition held at the end
	// ChunksSkipped counts ranked chunks the store reported unavailable
	// (chunkfile.ErrUnavailable — no live replica); the search completed
	// without their descriptors.
	ChunksSkipped int
	// Degraded reports that at least one chunk was skipped as unavailable:
	// the result is the best answer over the reachable data, Exact is
	// necessarily false, and recall may be below a healthy run's.
	Degraded bool
	// Machines is the per-machine serving ledger, set only when the store
	// routes reads across several simulated machines
	// (chunkfile.MachineRouter with count > 1 — the shard router's
	// spread-reads policy): Machines[t] is the simulated time machine t
	// spent serving this walk's chunks and stalls, measured from a zero
	// origin (the machine's own index read is not included). Stop rules
	// and Elapsed stay on the nominal owner-billed pipeline — which is
	// what keeps spread-routing answer-invariant — and the shard router
	// folds these ledgers into its merged max-over-machines Simulated.
	// Nil (or empty) on single-machine stores; the slice is reused across
	// calls on a recycled Result.
	Machines []time.Duration
}

// RankedChunk is one chunk in a query's processing order.
type RankedChunk struct {
	Idx   int     // position in the store
	D2    float64 // squared centroid distance (ranking key)
	Bound float64 // true-distance lower bound: max(0, dist - radius)
}

// RankChunks appends one RankedChunk per store chunk to ranked (reusing
// its capacity; pass ranked[:0] to recycle a buffer) and sorts the result
// by (squared centroid distance, ascending chunk index) — step 1 of the
// paper's algorithm. Squared distances order the ranking; one sqrt per
// chunk converts to the true-distance lower bound the stop rules consume.
func RankChunks(q vec.Vector, metas []chunkfile.Meta, ranked []RankedChunk) []RankedChunk {
	for i := range metas {
		m := &metas[i]
		d2 := vec.SquaredDistance(q, m.Centroid)
		lb := math.Sqrt(d2) - m.Radius
		if lb < 0 {
			lb = 0
		}
		ranked = append(ranked, RankedChunk{Idx: i, D2: d2, Bound: lb})
	}
	slices.SortFunc(ranked, func(a, b RankedChunk) int {
		switch {
		case a.D2 < b.D2:
			return -1
		case a.D2 > b.D2:
			return 1
		}
		return a.Idx - b.Idx
	})
	return ranked
}

// SuffixBounds fills suffix (reusing its capacity; pass suffix[:0]) with
// the suffix minima over the ranked lower bounds: suffix[i] is the lowest
// true distance any chunk in ranked[i:] could contain, +Inf past the end.
// suffix[i+1] is the remainingBound consulted by the stop rule after
// processing ranked[i], and the exactness certificate.
func SuffixBounds(ranked []RankedChunk, suffix []float64) []float64 {
	n := len(ranked) + 1
	if cap(suffix) < n {
		suffix = make([]float64, n)
	}
	suffix = suffix[:n]
	suffix[n-1] = math.Inf(1)
	for i := n - 2; i >= 0; i-- {
		suffix[i] = math.Min(suffix[i+1], ranked[i].Bound)
	}
	return suffix
}

// scratch is the reusable per-query state. Searchers pool scratches so
// concurrent callers never allocate per query in steady state.
type scratch struct {
	ranked []RankedChunk
	suffix []float64 // suffix minima over ranked bounds (true distances)
	d2     []float64 // batch-kernel output for one chunk
	data   chunkfile.Data
	heap   *knn.Heap
	events []Neighbor
	pipe   simdisk.Pipeline
	// serve is the per-machine serving ledger (Result.Machines), one
	// zero-origin pipeline per machine of a routing store; empty on
	// single-machine stores.
	serve []simdisk.Pipeline
}

// Searcher executes queries against one chunk store. It is safe for
// concurrent use.
type Searcher struct {
	store chunkfile.Store
	model *simdisk.Model
	pool  sync.Pool // *scratch
}

// New returns a Searcher over the given store.
func New(store chunkfile.Store, model *simdisk.Model) *Searcher {
	if model == nil {
		model = simdisk.Default2005()
	}
	s := &Searcher{store: store, model: model}
	s.pool.New = func() any { return &scratch{heap: knn.NewHeap(0)} }
	return s
}

// Search runs one query. The default stop rule is ToCompletion and the
// default K is 30 (the paper's quality metric is precision within the top
// 30).
func (s *Searcher) Search(q vec.Vector, opts Options) (*Result, error) {
	res := &Result{}
	if err := s.SearchInto(q, opts, res); err != nil {
		return nil, err
	}
	return res, nil
}

// SearchInto runs one query, writing the outcome into res. The neighbor
// slice already in res is reused when it has capacity, so a caller
// recycling one Result across queries performs zero allocations per query
// in steady state.
func (s *Searcher) SearchInto(q vec.Vector, opts Options, res *Result) error {
	start := time.Now()
	if opts.K <= 0 {
		opts.K = 30
	}
	if opts.Stop == nil {
		opts.Stop = ToCompletion{}
	}
	model := opts.Model
	if model == nil {
		model = s.model
	}
	metas := s.store.Meta()
	dims := s.store.Dims()
	if len(q) != dims {
		return fmt.Errorf("search: query dims %d != store dims %d", len(q), dims)
	}
	neighbors := res.Neighbors[:0]
	ledger := res.Machines[:0]
	*res = Result{}

	sc := s.pool.Get().(*scratch)
	defer s.pool.Put(sc)

	// A store that routes reads across several simulated machines (the
	// shard router with spread reads on) gets a per-machine serving
	// ledger alongside the nominal pipeline: the nominal pipeline keeps
	// billing the owner and driving the stop rule — answers never depend
	// on who served a read — while the ledger records which machine's
	// clock the serving time actually landed on.
	machines, owner := 1, 0
	if mr, ok := s.store.(chunkfile.MachineRouter); ok {
		machines, owner = mr.Machines()
	}
	if machines > 1 {
		if cap(sc.serve) < machines {
			sc.serve = make([]simdisk.Pipeline, machines)
		}
		sc.serve = sc.serve[:machines]
	} else {
		sc.serve = sc.serve[:0]
	}

	// Step 1: global ranking of chunks by centroid distance, plus the
	// suffix minima the stop rule and exactness certificate consume.
	sc.ranked = RankChunks(q, metas, sc.ranked[:0])
	ranked := sc.ranked
	sc.suffix = SuffixBounds(ranked, sc.suffix[:0])
	suffix := sc.suffix

	indexRead := model.IndexReadTime(len(metas), chunkfile.EntrySize(dims))
	sc.pipe.Reset(model, opts.Overlap, indexRead)
	for t := range sc.serve {
		sc.serve[t].Reset(model, opts.Overlap, 0)
	}

	res.IndexRead = indexRead
	res.Elapsed = indexRead
	heap := sc.heap
	heap.Reset(opts.K)

	for pos := range ranked {
		if err := ctxErr(opts.Ctx); err != nil {
			return fmt.Errorf("search: canceled after %d chunks: %w", res.ChunksRead, err)
		}
		rc := &ranked[pos]
		m := &metas[rc.Idx]
		if err := s.store.ReadChunk(rc.Idx, &sc.data); err != nil {
			if errors.Is(err, chunkfile.ErrUnavailable) {
				// No live replica serves this chunk: charge the simulated
				// cost of the failed attempts, skip it, and complete the
				// query degraded instead of aborting it. A skipped chunk
				// spends no budget — the stop rule is not consulted, so the
				// budget buys reachable chunks only.
				stall := sc.data.Stall
				sc.data.Stall = 0
				sc.pipe.Stall(stall)
				if len(sc.serve) > 0 {
					sc.serve[owner].Stall(stall)
				}
				res.ChunksSkipped++
				res.Degraded = true
				if e := sc.pipe.Elapsed(); e > res.Elapsed {
					res.Elapsed = e
				}
				continue
			}
			return err
		}
		stall := sc.data.Stall
		sc.data.Stall = 0
		sc.pipe.Stall(stall)
		sc.d2 = ScanChunk(q, dims, &sc.data, heap, sc.d2)
		resident := len(sc.serve) > 0 && model.ChunkResident(rc.Idx)
		elapsed := sc.pipe.ChunkAt(rc.Idx, m.Bytes, m.Count)
		if len(sc.serve) > 0 {
			// Mirror the nominal charge on the ledger: the stall bills the
			// owning machine (it performed the retries), the chunk bills
			// the machine that actually served the read, at the same cache
			// residency the nominal ChunkAt observes (probed before ChunkAt
			// moves the cache tier).
			served := int(sc.data.Served)
			if served < 0 || served >= len(sc.serve) {
				served = owner
			}
			sc.serve[owner].Stall(stall)
			sc.serve[served].ChunkCharged(m.Bytes, m.Count, resident)
		}
		res.ChunksRead++
		res.Elapsed = elapsed

		if opts.Trace != nil {
			sc.events = heap.AppendAll(sc.events[:0])
			opts.Trace(Event{
				Ordinal:    pos + 1,
				ChunkIndex: rc.Idx,
				ChunkCount: m.Count,
				Elapsed:    elapsed,
				Neighbors:  sc.events,
			})
		}

		if opts.Stop.Done(res.ChunksRead, elapsed, heap.Kth(), suffix[pos+1]) {
			res.Exact = suffix[pos+1] > heap.Kth()
			break
		}
	}
	if res.ChunksRead+res.ChunksSkipped == len(ranked) {
		res.Exact = true
	}
	if res.Degraded {
		// The certificate only bounds unread chunks *after* the stop point;
		// a skipped chunk before it may hold closer neighbors, so a
		// degraded result is never provably exact.
		res.Exact = false
	}
	for t := range sc.serve {
		ledger = append(ledger, sc.serve[t].Elapsed())
	}
	res.Machines = ledger
	res.Neighbors = heap.SortedInto(neighbors)
	res.Wall = time.Since(start)
	return nil
}

// ScanChunk offers every descriptor of the chunk to the heap — step 2 of
// the paper's algorithm. While the heap is still filling, the batch
// kernel computes all squared distances over the chunk's contiguous
// backing array; once a k-th bound exists, the strategy follows the
// active vec backend: SIMD backends stream full rows through the batch
// kernel (vec.PrefersFullScan — their bandwidth beats abandonment's
// element savings), the portable backend abandons per-descriptor partial
// distances as soon as the running sum exceeds the bound. The d2 scratch
// is reused when large enough and the (possibly grown) buffer is
// returned, so steady-state callers never allocate. The final heap
// contents do not depend on which branch ran: abandoned candidates are
// exactly those the heap would reject, so all three branches produce
// byte-identical results.
func ScanChunk(q vec.Vector, dims int, data *chunkfile.Data, heap *knn.Heap, d2 []float64) []float64 {
	n := data.Len()
	vecs := data.Vecs
	if !heap.Full() || vec.PrefersFullScan() {
		if cap(d2) < n {
			d2 = make([]float64, n)
		}
		d2s := d2[:n]
		vec.SquaredDistancesTo(q, vecs, dims, d2s)
		for r, v := range d2s {
			heap.OfferSquared(data.IDs[r], v)
		}
		return d2
	}
	for r := 0; r < n; r++ {
		row := vec.Vector(vecs[r*dims : (r+1)*dims])
		v := vec.PartialSquaredDistance(q, row, heap.Kth2())
		heap.OfferSquared(data.IDs[r], v)
	}
	return d2
}
