package search

import (
	"testing"

	"repro/internal/chunkfile"
	"repro/internal/imagegen"
	"repro/internal/scan"
	"repro/internal/srtree"
)

// TestCompletionMatchesScanOracle pins the strongest equivalence the
// kernel overhaul must preserve: exact (ToCompletion) chunk search
// returns byte-identical neighbor sets to the sequential-scan oracle —
// same IDs, same order (ties included), bit-identical distances. This
// holds because every backend computes squared distances through the
// shared vec kernels and breaks distance ties by ascending ID.
func TestCompletionMatchesScanOracle(t *testing.T) {
	ds := imagegen.MustGenerate(imagegen.DefaultConfig(4000, 99))
	coll := ds.Collection

	tree, err := srtree.Build(coll, nil, 120, 16)
	if err != nil {
		t.Fatal(err)
	}
	store := chunkfile.NewMemStore(coll, tree.Chunks(), 4096)
	searcher := New(store, nil)

	const k = 30
	for _, qi := range []int{0, 7, 123, 999, 2048, 3999} {
		q := coll.Vec(qi)
		res, err := searcher.Search(q, Options{K: k, Stop: ToCompletion{}})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Exact {
			t.Fatalf("q%d: completion search not flagged exact", qi)
		}
		truth := scan.KNN(coll, q, k)
		if len(res.Neighbors) != len(truth) {
			t.Fatalf("q%d: %d neighbors vs oracle %d", qi, len(res.Neighbors), len(truth))
		}
		for i := range truth {
			if res.Neighbors[i] != truth[i] {
				t.Fatalf("q%d rank %d: chunk search %+v != oracle %+v",
					qi, i, res.Neighbors[i], truth[i])
			}
		}
	}
}

// TestSearchIntoReusesBuffers verifies the zero-allocation contract of
// the steady-state path: recycling one Result across queries performs no
// allocations once warm.
func TestSearchIntoReusesBuffers(t *testing.T) {
	ds := imagegen.MustGenerate(imagegen.DefaultConfig(3000, 5))
	coll := ds.Collection
	tree, err := srtree.Build(coll, nil, 150, 16)
	if err != nil {
		t.Fatal(err)
	}
	store := chunkfile.NewMemStore(coll, tree.Chunks(), 4096)
	searcher := New(store, nil)

	var res Result
	q := coll.Vec(42)
	// Warm up: fills pool scratch and the neighbor buffer.
	if err := searcher.SearchInto(q, Options{K: 20}, &res); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(50, func() {
		if err := searcher.SearchInto(q, Options{K: 20}, &res); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("steady-state SearchInto allocates %v per query, want 0", allocs)
	}
	if len(res.Neighbors) != 20 {
		t.Fatalf("neighbors = %d", len(res.Neighbors))
	}
}
