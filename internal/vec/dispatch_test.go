package vec

import (
	"math"
	"math/rand"
	"testing"
)

// withBackend runs f with the named kernel backend active, restoring the
// previous backend afterwards.
func withBackend(t testing.TB, name string, f func()) {
	t.Helper()
	prev := Backend()
	if err := UseBackend(name); err != nil {
		t.Fatalf("UseBackend(%q): %v", name, err)
	}
	defer func() {
		if err := UseBackend(prev); err != nil {
			t.Fatalf("restore backend %q: %v", prev, err)
		}
	}()
	f()
}

func TestBackendRegistry(t *testing.T) {
	names := Backends()
	if len(names) == 0 || names[0] != "portable" {
		t.Fatalf("Backends() = %v, want portable first", names)
	}
	found := false
	for _, n := range names {
		if n == Backend() {
			found = true
		}
	}
	if !found {
		t.Fatalf("active backend %q not in Backends() %v", Backend(), names)
	}
	if err := UseBackend("no-such-backend"); err == nil {
		t.Fatal("UseBackend with unknown name: want error, got nil")
	}
	if _, err := selectKernels("no-such-backend"); err == nil {
		t.Fatal("selectKernels with unknown name: want error, got nil")
	}
	if b, err := selectKernels(""); err != nil || b.name != names[len(names)-1] {
		t.Fatalf("selectKernels(\"\") = %q, %v; want best available %q", b.name, err, names[len(names)-1])
	}
}

// crossCheck asserts that the named backend produces byte-identical
// results to the portable reference for all three dispatched kernels on
// one random (dims, rows, nq) shape.
func crossCheck(t *testing.T, r *rand.Rand, backend string, dims, rows, nq int) {
	t.Helper()
	backing := make([]float32, rows*dims)
	for i := range backing {
		backing[i] = float32(r.NormFloat64())
	}
	queries := make([]float32, nq*dims)
	for i := range queries {
		queries[i] = float32(r.NormFloat64())
	}
	q := Vector(queries[:dims])

	wantTo := make([]float64, rows)
	squaredDistancesToPortable(q, backing, dims, wantTo)
	wantMulti := make([]float64, nq*rows)
	squaredDistancesMultiPortable(queries, backing, dims, wantMulti)

	gotTo := make([]float64, rows)
	gotMulti := make([]float64, nq*rows)
	withBackend(t, backend, func() {
		SquaredDistancesTo(q, backing, dims, gotTo)
		SquaredDistancesMulti(queries, backing, dims, gotMulti)
		for i := 0; i < rows; i++ {
			row := Vector(backing[i*dims : (i+1)*dims])
			full := wantTo[i]
			for _, bound := range []float64{math.Inf(1), full, full * 0.99, full * 0.5, 0} {
				got := PartialSquaredDistance(q, row, bound)
				want := partialSquaredDistancePortable(q, row, bound)
				if math.Float64bits(got) != math.Float64bits(want) {
					t.Fatalf("%s dims %d row %d bound %v: partial %x vs portable %x",
						backend, dims, i, bound, got, want)
				}
				if full <= bound {
					if got != full {
						t.Fatalf("%s dims %d row %d: partial %v != full %v though full <= bound %v",
							backend, dims, i, got, full, bound)
					}
				} else if got <= bound {
					t.Fatalf("%s dims %d row %d: abandoned partial %v did not exceed bound %v",
						backend, dims, i, got, bound)
				}
			}
		}
	})
	for i := range wantTo {
		if math.Float64bits(gotTo[i]) != math.Float64bits(wantTo[i]) {
			t.Fatalf("%s dims %d rows %d: SquaredDistancesTo[%d] = %x, portable %x",
				backend, dims, rows, i, gotTo[i], wantTo[i])
		}
	}
	for i := range wantMulti {
		if math.Float64bits(gotMulti[i]) != math.Float64bits(wantMulti[i]) {
			t.Fatalf("%s dims %d rows %d nq %d: SquaredDistancesMulti[%d] = %x, portable %x",
				backend, dims, rows, nq, i, gotMulti[i], wantMulti[i])
		}
	}
}

// TestCrossBackendBitIdentity is the property test the dispatch layer
// rests on: every backend available on this CPU is byte-identical to the
// portable reference across dimensionalities (tails included, dims%4 != 0,
// and the paper's 24), row counts (odd ones exercise the AVX2 single-row
// path) and query counts.
func TestCrossBackendBitIdentity(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	dims := []int{1, 2, 3, 4, 5, 7, 8, 9, 11, 12, 15, 16, 17, 23, 24, 25, 31, 32, 33, 48, 100}
	rows := []int{0, 1, 2, 3, 7, 16, 17, 64, 65}
	for _, backend := range Backends() {
		for _, d := range dims {
			for _, n := range rows {
				crossCheck(t, r, backend, d, n, 1+r.Intn(5))
			}
		}
	}
}

// FuzzCrossBackendBitIdentity fuzzes random shapes and data through every
// available backend; `go test` runs the seed corpus, `go test -fuzz` digs
// for shapes the property test missed.
func FuzzCrossBackendBitIdentity(f *testing.F) {
	f.Add(int64(1), uint8(24), uint8(5), uint8(2))
	f.Add(int64(2), uint8(7), uint8(3), uint8(1))
	f.Add(int64(3), uint8(1), uint8(1), uint8(1))
	f.Add(int64(4), uint8(33), uint8(9), uint8(4))
	f.Fuzz(func(t *testing.T, seed int64, dims, rows, nq uint8) {
		d := 1 + int(dims)%64
		n := int(rows) % 40
		q := 1 + int(nq)%8
		r := rand.New(rand.NewSource(seed))
		for _, backend := range Backends() {
			crossCheck(t, r, backend, d, n, q)
		}
	})
}

// TestEquivalenceAcrossBackends re-runs the strongest in-package identity
// test under every backend: batch, multi and partial kernels agree with
// the (portable) SquaredDistance pairwise path byte for byte.
func TestEquivalenceAcrossBackends(t *testing.T) {
	for _, backend := range Backends() {
		backend := backend
		t.Run(backend, func(t *testing.T) {
			withBackend(t, backend, func() {
				TestKernelsBitIdentical(t)
				TestMultiKernelBitIdentical(t)
				TestPartialAbandons(t)
				TestKernelEdgeCases(t)
			})
		})
	}
}

func benchData(dims, rows, nq int) (queries, backing []float32, out []float64) {
	r := rand.New(rand.NewSource(42))
	backing = make([]float32, rows*dims)
	for i := range backing {
		backing[i] = float32(r.NormFloat64())
	}
	queries = make([]float32, nq*dims)
	for i := range queries {
		queries[i] = float32(r.NormFloat64())
	}
	return queries, backing, make([]float64, nq*rows)
}

// BenchmarkKernelSquaredDistancesTo reports per-backend single-query scan
// throughput; B/op × ops/s is the GB/s the perf snapshots record.
func BenchmarkKernelSquaredDistancesTo(b *testing.B) {
	const dims, rows = Dims, 4096
	queries, backing, out := benchData(dims, rows, 1)
	for _, backend := range Backends() {
		b.Run(backend, func(b *testing.B) {
			withBackend(b, backend, func() {
				b.SetBytes(int64(rows * dims * 4))
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					SquaredDistancesTo(queries[:dims], backing, dims, out)
				}
			})
		})
	}
}

// BenchmarkKernelSquaredDistancesMulti reports per-backend batch scan
// throughput at the batch engine's shape (16 queries × one row block).
func BenchmarkKernelSquaredDistancesMulti(b *testing.B) {
	const dims, rows, nq = Dims, 256, 16
	queries, backing, out := benchData(dims, rows, nq)
	for _, backend := range Backends() {
		b.Run(backend, func(b *testing.B) {
			withBackend(b, backend, func() {
				b.SetBytes(int64(nq * rows * dims * 4))
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					SquaredDistancesMulti(queries, backing, dims, out)
				}
			})
		})
	}
}

// BenchmarkKernelSquaredDistancesMultiPair reports per-backend
// throughput at the query-pair kernel's native shape — exactly two
// queries sharing one pass over a large row block — isolating the
// row-traffic halving from the batch-size effects of the 16-query
// bench above.
func BenchmarkKernelSquaredDistancesMultiPair(b *testing.B) {
	const dims, rows, nq = Dims, 4096, 2
	queries, backing, out := benchData(dims, rows, nq)
	for _, backend := range Backends() {
		b.Run(backend, func(b *testing.B) {
			withBackend(b, backend, func() {
				b.SetBytes(int64(nq * rows * dims * 4))
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					SquaredDistancesMulti(queries, backing, dims, out)
				}
			})
		})
	}
}

// BenchmarkKernelPartialSquaredDistance reports per-backend partial scan
// cost with a bound that never abandons (the worst case).
func BenchmarkKernelPartialSquaredDistance(b *testing.B) {
	const dims, rows = Dims, 4096
	_, backing, _ := benchData(dims, rows, 1)
	q := Vector(backing[:dims])
	for _, backend := range Backends() {
		b.Run(backend, func(b *testing.B) {
			withBackend(b, backend, func() {
				b.SetBytes(int64(rows * dims * 4))
				b.ResetTimer()
				var sink float64
				for i := 0; i < b.N; i++ {
					for r := 0; r < rows; r++ {
						sink = PartialSquaredDistance(q, backing[r*dims:(r+1)*dims], math.Inf(1))
					}
				}
				_ = sink
			})
		})
	}
}
