package vec

// This file holds the portable reference implementations of the distance
// kernels every search backend in the repository is built on. The exported
// entry points (SquaredDistancesTo, SquaredDistancesMulti,
// PartialSquaredDistance) live in dispatch.go and route to either these
// functions or to the architecture-specific assembly backends declared in
// dispatch_amd64.go / dispatch_arm64.go.
//
// THE ACCUMULATION CONTRACT (binding for every backend, asm included):
// element i of the difference vector feeds float32 accumulator lane i&3,
// the four lanes are combined as (s0+s1)+(s2+s3), and the sum is widened
// to float64 only after that combine. No FMA — a fused multiply-add
// rounds once where the portable kernel rounds twice, which would break
// byte-identity between backends. Under this scheme one 128-bit float32
// register *is* the four accumulators, so a SIMD backend reproduces the
// portable kernel bit for bit by construction; wider registers may only
// add parallelism *across rows* (one 4-lane scheme per 128-bit half),
// never across more lanes of the same row. That bit-identity is what lets
// independently implemented backends (chunk search, sequential scan,
// SR-tree, VA-File, ...) agree exactly on neighbor sets, tie order
// included, no matter which CPU the process landed on.

// squaredDist24 is the fully unrolled kernel for the paper's 24-d
// descriptors. It matches squaredDistGeneric(a[:24], b[:24]) bit for bit.
func squaredDist24(a, b Vector) float64 {
	a = a[:24:24]
	b = b[:24:24]
	var s0, s1, s2, s3 float32
	for i := 0; i <= 20; i += 4 {
		d0 := a[i] - b[i]
		d1 := a[i+1] - b[i+1]
		d2 := a[i+2] - b[i+2]
		d3 := a[i+3] - b[i+3]
		s0 += d0 * d0
		s1 += d1 * d1
		s2 += d2 * d2
		s3 += d3 * d3
	}
	return float64((s0 + s1) + (s2 + s3))
}

// squaredDistGeneric is the 4-way unrolled kernel for arbitrary
// dimensionality. Tail elements (dims % 4 != 0) all feed lane 0.
func squaredDistGeneric(a, b Vector) float64 {
	var s0, s1, s2, s3 float32
	i, n := 0, len(a)
	for ; i+4 <= n; i += 4 {
		d0 := a[i] - b[i]
		d1 := a[i+1] - b[i+1]
		d2 := a[i+2] - b[i+2]
		d3 := a[i+3] - b[i+3]
		s0 += d0 * d0
		s1 += d1 * d1
		s2 += d2 * d2
		s3 += d3 * d3
	}
	for ; i < n; i++ {
		d := a[i] - b[i]
		s0 += d * d
	}
	return float64((s0 + s1) + (s2 + s3))
}

// squaredDist dispatches to the specialized or generic kernel.
func squaredDist(a, b Vector) float64 {
	if len(a) == Dims {
		return squaredDist24(a, b)
	}
	return squaredDistGeneric(a, b)
}

// squaredDistancesToPortable is the portable backend for
// SquaredDistancesTo. Arguments are pre-validated by the dispatcher.
func squaredDistancesToPortable(q, backing []float32, dims int, out []float64) {
	n := len(backing) / dims
	if dims == Dims {
		for i := 0; i < n; i++ {
			out[i] = squaredDist24(q, backing[i*Dims:(i+1)*Dims])
		}
		return
	}
	for i := 0; i < n; i++ {
		out[i] = squaredDistGeneric(q, backing[i*dims:(i+1)*dims])
	}
}

// multiRowTile is the row tile of the portable batch kernel: 64 rows of
// 24-d float32 are 6 KiB, so one tile stays L1-resident while every query
// of the batch streams over it before the kernel moves to the next tile.
const multiRowTile = 64

// squaredDistancesMultiPortable is the portable backend for
// SquaredDistancesMulti: a row-tiled two-level loop (tiles outer, queries
// inner) so each tile of rows is scanned by all queries while cache-hot.
// Tiling only reorders *which* (query, row) pair is computed when — every
// out value is still produced by the one shared accumulation scheme, so
// results are bit-identical to the per-query delegation it replaced.
func squaredDistancesMultiPortable(queries, backing []float32, dims int, out []float64) {
	nq := len(queries) / dims
	n := len(backing) / dims
	for r0 := 0; r0 < n; r0 += multiRowTile {
		r1 := r0 + multiRowTile
		if r1 > n {
			r1 = n
		}
		for qi := 0; qi < nq; qi++ {
			q := Vector(queries[qi*dims : (qi+1)*dims])
			row := out[qi*n : (qi+1)*n]
			if dims == Dims {
				for i := r0; i < r1; i++ {
					row[i] = squaredDist24(q, backing[i*Dims:(i+1)*Dims])
				}
			} else {
				for i := r0; i < r1; i++ {
					row[i] = squaredDistGeneric(q, backing[i*dims:(i+1)*dims])
				}
			}
		}
	}
}

// partialSquaredDistancePortable is the portable backend for
// PartialSquaredDistance. The bound is checked once per 8 elements (two
// 4-lane blocks); the checks never alter the accumulators, so a
// non-abandoned result is exact. Assembly backends must check at the same
// element positions so even abandoned return values stay byte-identical.
func partialSquaredDistancePortable(a, b []float32, bound float64) float64 {
	var s0, s1, s2, s3 float32
	i, n := 0, len(a)
	for ; i+8 <= n; i += 8 {
		d0 := a[i] - b[i]
		d1 := a[i+1] - b[i+1]
		d2 := a[i+2] - b[i+2]
		d3 := a[i+3] - b[i+3]
		s0 += d0 * d0
		s1 += d1 * d1
		s2 += d2 * d2
		s3 += d3 * d3
		d0 = a[i+4] - b[i+4]
		d1 = a[i+5] - b[i+5]
		d2 = a[i+6] - b[i+6]
		d3 = a[i+7] - b[i+7]
		s0 += d0 * d0
		s1 += d1 * d1
		s2 += d2 * d2
		s3 += d3 * d3
		if float64((s0+s1)+(s2+s3)) > bound {
			return float64((s0 + s1) + (s2 + s3))
		}
	}
	for ; i+4 <= n; i += 4 {
		d0 := a[i] - b[i]
		d1 := a[i+1] - b[i+1]
		d2 := a[i+2] - b[i+2]
		d3 := a[i+3] - b[i+3]
		s0 += d0 * d0
		s1 += d1 * d1
		s2 += d2 * d2
		s3 += d3 * d3
	}
	for ; i < n; i++ {
		d := a[i] - b[i]
		s0 += d * d
	}
	return float64((s0 + s1) + (s2 + s3))
}
