package vec

import "fmt"

// This file holds the distance kernels every search backend in the
// repository is built on. All of them share one accumulation scheme —
// element i feeds float32 lane i&3, the four lanes are combined as
// (s0+s1)+(s2+s3) and widened to float64 last — so any two kernels
// computing the same full distance produce bit-identical results. That
// bit-identity is what lets independently implemented backends (chunk
// search, sequential scan, SR-tree, VA-File, ...) agree exactly on
// neighbor sets, tie order included.

// squaredDist24 is the fully unrolled kernel for the paper's 24-d
// descriptors. It matches squaredDistGeneric(a[:24], b[:24]) bit for bit.
func squaredDist24(a, b Vector) float64 {
	a = a[:24:24]
	b = b[:24:24]
	var s0, s1, s2, s3 float32
	for i := 0; i <= 20; i += 4 {
		d0 := a[i] - b[i]
		d1 := a[i+1] - b[i+1]
		d2 := a[i+2] - b[i+2]
		d3 := a[i+3] - b[i+3]
		s0 += d0 * d0
		s1 += d1 * d1
		s2 += d2 * d2
		s3 += d3 * d3
	}
	return float64((s0 + s1) + (s2 + s3))
}

// squaredDistGeneric is the 4-way unrolled kernel for arbitrary
// dimensionality.
func squaredDistGeneric(a, b Vector) float64 {
	var s0, s1, s2, s3 float32
	i, n := 0, len(a)
	for ; i+4 <= n; i += 4 {
		d0 := a[i] - b[i]
		d1 := a[i+1] - b[i+1]
		d2 := a[i+2] - b[i+2]
		d3 := a[i+3] - b[i+3]
		s0 += d0 * d0
		s1 += d1 * d1
		s2 += d2 * d2
		s3 += d3 * d3
	}
	for ; i < n; i++ {
		d := a[i] - b[i]
		s0 += d * d
	}
	return float64((s0 + s1) + (s2 + s3))
}

// squaredDist dispatches to the specialized or generic kernel.
func squaredDist(a, b Vector) float64 {
	if len(a) == Dims {
		return squaredDist24(a, b)
	}
	return squaredDistGeneric(a, b)
}

// SquaredDistancesTo computes the squared distance from q to every row of
// the flattened backing array (len(backing)/dims rows of dims float32s
// each, the layout of chunkfile.Data.Vecs and descriptor.Collection) and
// stores them in out. It panics if out is shorter than the row count or
// backing is not a whole number of rows. Each out[i] is bit-identical to
// SquaredDistance(q, row_i).
func SquaredDistancesTo(q Vector, backing []float32, dims int, out []float64) {
	if len(q) != dims {
		panic(fmt.Sprintf("vec: query dims %d != row dims %d", len(q), dims))
	}
	if dims <= 0 || len(backing)%dims != 0 {
		panic(fmt.Sprintf("vec: backing length %d is not a multiple of dims %d", len(backing), dims))
	}
	n := len(backing) / dims
	if len(out) < n {
		panic(fmt.Sprintf("vec: out length %d < %d rows", len(out), n))
	}
	if dims == Dims {
		for i := 0; i < n; i++ {
			out[i] = squaredDist24(q, backing[i*Dims:(i+1)*Dims])
		}
		return
	}
	for i := 0; i < n; i++ {
		out[i] = squaredDistGeneric(q, backing[i*dims:(i+1)*dims])
	}
}

// SquaredDistancesMulti computes the squared distance from every query of
// the flattened queries array (len(queries)/dims queries of dims float32s
// each) to every row of backing (the layout of chunkfile.Data.Vecs),
// writing the distances for query qi to out[qi*n : (qi+1)*n] where n is
// the row count of backing. It is the batch engine's kernel: the rows of
// one chunk stay hot in cache while Q queries scan them (callers pass
// row blocks small enough to fit in L1). Every out value is bit-identical
// to SquaredDistance(query_qi, row_i) because the kernel delegates to the
// same accumulation scheme as every other kernel in this file.
func SquaredDistancesMulti(queries, backing []float32, dims int, out []float64) {
	if dims <= 0 || len(queries)%dims != 0 {
		panic(fmt.Sprintf("vec: queries length %d is not a multiple of dims %d", len(queries), dims))
	}
	if len(backing)%dims != 0 {
		panic(fmt.Sprintf("vec: backing length %d is not a multiple of dims %d", len(backing), dims))
	}
	nq := len(queries) / dims
	n := len(backing) / dims
	if len(out) < nq*n {
		panic(fmt.Sprintf("vec: out length %d < %d queries × %d rows", len(out), nq, n))
	}
	for qi := 0; qi < nq; qi++ {
		SquaredDistancesTo(Vector(queries[qi*dims:(qi+1)*dims]), backing, dims, out[qi*n:(qi+1)*n])
	}
}

// PartialSquaredDistance computes the squared distance between a and b,
// abandoning early once the partial sum exceeds bound (a squared
// distance). When the true squared distance is ≤ bound the exact value is
// returned, bit-identical to SquaredDistance(a, b); otherwise some value
// strictly greater than bound is returned (the partial sum at the point of
// abandonment). Callers pruning against a current k-th-neighbor bound pass
// that bound and discard any result exceeding it.
//
// The bound checks never alter the accumulators, so whether or not checks
// run, a non-abandoned result is exact.
func PartialSquaredDistance(a, b Vector, bound float64) float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("vec: dimension mismatch %d vs %d", len(a), len(b)))
	}
	var s0, s1, s2, s3 float32
	i, n := 0, len(a)
	for ; i+8 <= n; i += 8 {
		d0 := a[i] - b[i]
		d1 := a[i+1] - b[i+1]
		d2 := a[i+2] - b[i+2]
		d3 := a[i+3] - b[i+3]
		s0 += d0 * d0
		s1 += d1 * d1
		s2 += d2 * d2
		s3 += d3 * d3
		d0 = a[i+4] - b[i+4]
		d1 = a[i+5] - b[i+5]
		d2 = a[i+6] - b[i+6]
		d3 = a[i+7] - b[i+7]
		s0 += d0 * d0
		s1 += d1 * d1
		s2 += d2 * d2
		s3 += d3 * d3
		if float64((s0+s1)+(s2+s3)) > bound {
			return float64((s0 + s1) + (s2 + s3))
		}
	}
	for ; i+4 <= n; i += 4 {
		d0 := a[i] - b[i]
		d1 := a[i+1] - b[i+1]
		d2 := a[i+2] - b[i+2]
		d3 := a[i+3] - b[i+3]
		s0 += d0 * d0
		s1 += d1 * d1
		s2 += d2 * d2
		s3 += d3 * d3
	}
	for ; i < n; i++ {
		d := a[i] - b[i]
		s0 += d * d
	}
	return float64((s0 + s1) + (s2 + s3))
}
