//go:build arm64

#include "textflag.h"

// Handwritten NEON kernels, a direct transliteration of the SSE2 kernels
// in kernels_amd64.s under the same binding contract (kernels.go):
// element i feeds float32 lane i&3 of one 128-bit accumulator, lanes
// combine as (s0+s1)+(s2+s3), widen to float64 last, and no FMA — FMLA
// would fuse the rounding and break byte-identity with the portable
// backend, so the kernels use separate FMUL/FADD steps.
//
// The Go assembler has no mnemonics for the AArch64 vector float ops, so
// those four instructions are emitted as WORD constants. Encodings were
// produced and cross-checked with llvm-mc ("fsub v1.4s, v1.4s, v2.4s",
// etc.); each macro names the instruction it stands for.

#define FSUB_V1_V1_V2  WORD $0x4EA2D421 // fsub  v1.4s, v1.4s, v2.4s
#define FMUL_V1_V1_V1  WORD $0x6E21DC21 // fmul  v1.4s, v1.4s, v1.4s
#define FADD_V0_V0_V1  WORD $0x4E21D400 // fadd  v0.4s, v0.4s, v1.4s
#define FADDP_V0_V0_V0 WORD $0x6E20D400 // faddp v0.4s, v0.4s, v0.4s
#define FADDP_V3_V3_V3 WORD $0x6E23D463 // faddp v3.4s, v3.4s, v3.4s

// The dims==24 row-pair path (rowpair24 below) hoists the query's six
// blocks into V10-V15 and accumulates two rows per trip: row i in V0
// (temps V1/V2) and row i+1 in V4 (temps V3/V5). Same encoding scheme,
// same contract: each row's accumulator runs the exact 4-lane order.
#define FSUB_V1_V10_V2 WORD $0x4EA2D541 // fsub  v1.4s, v10.4s, v2.4s
#define FSUB_V1_V11_V2 WORD $0x4EA2D561 // fsub  v1.4s, v11.4s, v2.4s
#define FSUB_V1_V12_V2 WORD $0x4EA2D581 // fsub  v1.4s, v12.4s, v2.4s
#define FSUB_V1_V13_V2 WORD $0x4EA2D5A1 // fsub  v1.4s, v13.4s, v2.4s
#define FSUB_V1_V14_V2 WORD $0x4EA2D5C1 // fsub  v1.4s, v14.4s, v2.4s
#define FSUB_V1_V15_V2 WORD $0x4EA2D5E1 // fsub  v1.4s, v15.4s, v2.4s
#define FSUB_V3_V10_V5 WORD $0x4EA5D543 // fsub  v3.4s, v10.4s, v5.4s
#define FSUB_V3_V11_V5 WORD $0x4EA5D563 // fsub  v3.4s, v11.4s, v5.4s
#define FSUB_V3_V12_V5 WORD $0x4EA5D583 // fsub  v3.4s, v12.4s, v5.4s
#define FSUB_V3_V13_V5 WORD $0x4EA5D5A3 // fsub  v3.4s, v13.4s, v5.4s
#define FSUB_V3_V14_V5 WORD $0x4EA5D5C3 // fsub  v3.4s, v14.4s, v5.4s
#define FSUB_V3_V15_V5 WORD $0x4EA5D5E3 // fsub  v3.4s, v15.4s, v5.4s
#define FMUL_V3_V3_V3  WORD $0x6E23DC63 // fmul  v3.4s, v3.4s, v3.4s
#define FADD_V4_V4_V3  WORD $0x4E23D484 // fadd  v4.4s, v4.4s, v3.4s
#define FADDP_V4_V4_V4 WORD $0x6E24D484 // faddp v4.4s, v4.4s, v4.4s

// func sqDistsToNEON(q, backing []float32, dims, rows int, out []float64)
//
// R0 = q base, R1 = current row, R2 = dims, R3 = rows left, R4 = out.
// R7 = dims/4 vector blocks, R8 = dims&3 tail elements; R5/R6 are the
// per-row q/row cursors (VLD1.P / FMOVS.P post-increment them).
TEXT ·sqDistsToNEON(SB), NOSPLIT, $0-88
	MOVD q_base+0(FP), R0
	MOVD backing_base+24(FP), R1
	MOVD dims+48(FP), R2
	MOVD rows+56(FP), R3
	MOVD out_base+64(FP), R4
	LSR  $2, R2, R7
	AND  $3, R2, R8
	CMP  $24, R2
	BEQ  init24

rowloop:
	CBZ  R3, done
	VEOR V0.B16, V0.B16, V0.B16 // V0 = [s0 s1 s2 s3]
	MOVD R0, R5
	MOVD R1, R6
	MOVD R7, R9

vloop:
	CBZ    R9, vdone
	VLD1.P 16(R5), [V1.S4]
	VLD1.P 16(R6), [V2.S4]
	FSUB_V1_V1_V2
	FMUL_V1_V1_V1
	FADD_V0_V0_V1
	SUB    $1, R9, R9
	B      vloop

vdone:
	CBNZ R8, slowtail

	// No tail: two pairwise adds give lane0 = (s0+s1)+(s2+s3).
	FADDP_V0_V0_V0
	FADDP_V0_V0_V0
	FCVTSD F0, F10
	B      store

slowtail:
	// Tail elements feed lane 0, so split the lanes into scalars first
	// (scalar FP writes zero a V register's upper lanes, so s1..s3 must
	// be extracted before the tail accumulates into s0).
	VMOV  V0.S[0], R10
	FMOVS R10, F10
	VMOV  V0.S[1], R10
	FMOVS R10, F11
	VMOV  V0.S[2], R10
	FMOVS R10, F12
	VMOV  V0.S[3], R10
	FMOVS R10, F13
	MOVD  R8, R9

tailloop:
	FMOVS.P 4(R5), F1
	FMOVS.P 4(R6), F2
	FSUBS   F2, F1, F1
	FMULS   F1, F1, F1
	FADDS   F1, F10, F10
	SUB     $1, R9, R9
	CBNZ    R9, tailloop
	FADDS   F11, F10, F10       // s0+s1
	FADDS   F13, F12, F12       // s2+s3
	FADDS   F12, F10, F10       // (s0+s1)+(s2+s3)
	FCVTSD  F10, F10

store:
	FMOVD.P F10, 8(R4)
	ADD     R2<<2, R1, R1       // next row
	SUB     $1, R3, R3
	B       rowloop

init24:
	// dims==24 (the paper's descriptor width): hoist the query's six
	// blocks into V10-V15 once per call, then run a fully unrolled
	// row-pair body — each trip loads both rows' blocks while the query
	// stays register-resident, so the inner loop touches memory only for
	// row data. 24 is six full blocks, so no scalar tail exists.
	MOVD   R0, R5
	VLD1.P 64(R5), [V10.S4, V11.S4, V12.S4, V13.S4]
	VLD1   (R5), [V14.S4, V15.S4]

rowpair24:
	CMP  $2, R3
	BLT  single24
	MOVD R1, R5                 // row i cursor
	ADD  $96, R1, R6            // row i+1 cursor
	VEOR V0.B16, V0.B16, V0.B16 // row i accumulators
	VEOR V4.B16, V4.B16, V4.B16 // row i+1 accumulators

	VLD1.P 16(R5), [V2.S4]
	FSUB_V1_V10_V2
	FMUL_V1_V1_V1
	FADD_V0_V0_V1
	VLD1.P 16(R6), [V5.S4]
	FSUB_V3_V10_V5
	FMUL_V3_V3_V3
	FADD_V4_V4_V3

	VLD1.P 16(R5), [V2.S4]
	FSUB_V1_V11_V2
	FMUL_V1_V1_V1
	FADD_V0_V0_V1
	VLD1.P 16(R6), [V5.S4]
	FSUB_V3_V11_V5
	FMUL_V3_V3_V3
	FADD_V4_V4_V3

	VLD1.P 16(R5), [V2.S4]
	FSUB_V1_V12_V2
	FMUL_V1_V1_V1
	FADD_V0_V0_V1
	VLD1.P 16(R6), [V5.S4]
	FSUB_V3_V12_V5
	FMUL_V3_V3_V3
	FADD_V4_V4_V3

	VLD1.P 16(R5), [V2.S4]
	FSUB_V1_V13_V2
	FMUL_V1_V1_V1
	FADD_V0_V0_V1
	VLD1.P 16(R6), [V5.S4]
	FSUB_V3_V13_V5
	FMUL_V3_V3_V3
	FADD_V4_V4_V3

	VLD1.P 16(R5), [V2.S4]
	FSUB_V1_V14_V2
	FMUL_V1_V1_V1
	FADD_V0_V0_V1
	VLD1.P 16(R6), [V5.S4]
	FSUB_V3_V14_V5
	FMUL_V3_V3_V3
	FADD_V4_V4_V3

	VLD1.P 16(R5), [V2.S4]
	FSUB_V1_V15_V2
	FMUL_V1_V1_V1
	FADD_V0_V0_V1
	VLD1.P 16(R6), [V5.S4]
	FSUB_V3_V15_V5
	FMUL_V3_V3_V3
	FADD_V4_V4_V3

	// Reduce both rows: lane0 = (s0+s1)+(s2+s3), widen, store.
	FADDP_V0_V0_V0
	FADDP_V0_V0_V0
	FCVTSD  F0, F10
	FMOVD.P F10, 8(R4)
	FADDP_V4_V4_V4
	FADDP_V4_V4_V4
	FCVTSD  F4, F10
	FMOVD.P F10, 8(R4)
	ADD     $192, R1, R1
	SUB     $2, R3, R3
	B       rowpair24

single24:
	CBZ  R3, done
	MOVD R1, R5
	VEOR V0.B16, V0.B16, V0.B16

	VLD1.P 16(R5), [V2.S4]
	FSUB_V1_V10_V2
	FMUL_V1_V1_V1
	FADD_V0_V0_V1
	VLD1.P 16(R5), [V2.S4]
	FSUB_V1_V11_V2
	FMUL_V1_V1_V1
	FADD_V0_V0_V1
	VLD1.P 16(R5), [V2.S4]
	FSUB_V1_V12_V2
	FMUL_V1_V1_V1
	FADD_V0_V0_V1
	VLD1.P 16(R5), [V2.S4]
	FSUB_V1_V13_V2
	FMUL_V1_V1_V1
	FADD_V0_V0_V1
	VLD1.P 16(R5), [V2.S4]
	FSUB_V1_V14_V2
	FMUL_V1_V1_V1
	FADD_V0_V0_V1
	VLD1.P 16(R5), [V2.S4]
	FSUB_V1_V15_V2
	FMUL_V1_V1_V1
	FADD_V0_V0_V1

	FADDP_V0_V0_V0
	FADDP_V0_V0_V0
	FCVTSD  F0, F10
	FMOVD.P F10, 8(R4)

done:
	RET

// func sqPartialNEON(a, b []float32, bound float64) float64
//
// Mirrors partialSquaredDistancePortable exactly: the bound is checked
// once per 8 elements on a copy of the accumulators (V3; V0 is never
// disturbed), so abandoned return values are byte-identical too.
TEXT ·sqPartialNEON(SB), NOSPLIT, $0-64
	MOVD  a_base+0(FP), R0
	MOVD  b_base+24(FP), R1
	MOVD  a_len+8(FP), R2
	FMOVD bound+48(FP), F8
	VEOR  V0.B16, V0.B16, V0.B16
	LSR   $3, R2, R9            // 8-element blocks
	AND   $7, R2, R10           // remainder after the 8-blocks

loop8:
	CBZ    R9, post8
	VLD1.P 16(R0), [V1.S4]
	VLD1.P 16(R1), [V2.S4]
	FSUB_V1_V1_V2
	FMUL_V1_V1_V1
	FADD_V0_V0_V1
	VLD1.P 16(R0), [V1.S4]
	VLD1.P 16(R1), [V2.S4]
	FSUB_V1_V1_V2
	FMUL_V1_V1_V1
	FADD_V0_V0_V1
	SUB    $1, R9, R9

	// bound check on a copy of the accumulators
	VORR   V0.B16, V0.B16, V3.B16
	FADDP_V3_V3_V3
	FADDP_V3_V3_V3
	FCVTSD F3, F9
	FCMPD  F8, F9
	BGT    abandon
	B      loop8

post8:
	TBZ    $2, R10, lanes       // at most one unchecked 4-block remains
	VLD1.P 16(R0), [V1.S4]
	VLD1.P 16(R1), [V2.S4]
	FSUB_V1_V1_V2
	FMUL_V1_V1_V1
	FADD_V0_V0_V1

lanes:
	AND  $3, R10, R9            // scalar tail count
	CBNZ R9, slowtail2
	FADDP_V0_V0_V0
	FADDP_V0_V0_V0
	FCVTSD F0, F9
	B      retsum

slowtail2:
	VMOV  V0.S[0], R11
	FMOVS R11, F10
	VMOV  V0.S[1], R11
	FMOVS R11, F11
	VMOV  V0.S[2], R11
	FMOVS R11, F12
	VMOV  V0.S[3], R11
	FMOVS R11, F13

ptail:
	FMOVS.P 4(R0), F1
	FMOVS.P 4(R1), F2
	FSUBS   F2, F1, F1
	FMULS   F1, F1, F1
	FADDS   F1, F10, F10
	SUB     $1, R9, R9
	CBNZ    R9, ptail
	FADDS   F11, F10, F10
	FADDS   F13, F12, F12
	FADDS   F12, F10, F10
	FCVTSD  F10, F9

retsum:
	FMOVD F9, ret+56(FP)
	RET

abandon:
	FMOVD F9, ret+56(FP)
	RET
