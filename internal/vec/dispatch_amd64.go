//go:build amd64

package vec

// Assembly kernels (kernels_amd64.s). All of them implement the
// accumulation contract documented in kernels.go: 4 float32 lanes, element
// i into lane i&3, lanes combined (s0+s1)+(s2+s3), widened to float64
// last, no FMA. SSE2 is the amd64 baseline so sqDistsToSSE2/sqPartialSSE2
// run on every amd64 CPU; the AVX2 variant is selected only when CPUID
// reports AVX2 plus OS support for YMM state.

//go:noescape
func sqDistsToSSE2(q, backing []float32, dims, rows int, out []float64)

//go:noescape
func sqDistsToAVX2(q, backing []float32, dims, rows int, out []float64)

//go:noescape
func sqDistsMultiPairAVX2(q0, q1, backing []float32, dims, rows int, out0, out1 []float64)

//go:noescape
func sqPartialSSE2(a, b []float32, bound float64) float64

// cpuid and xgetbv0 (cpu_amd64.s) expose the CPUID / XGETBV instructions
// for feature detection. Implemented in-repo: the module deliberately has
// no external dependencies, so golang.org/x/sys/cpu is not an option.
func cpuid(eaxIn, ecxIn uint32) (eax, ebx, ecx, edx uint32)
func xgetbv0() (eax, edx uint32)

// hasAVX2 reports whether the CPU and OS support AVX2: AVX + OSXSAVE in
// CPUID.1:ECX, XMM+YMM state enabled in XCR0, and AVX2 in CPUID.7.0:EBX.
func hasAVX2() bool {
	maxID, _, _, _ := cpuid(0, 0)
	if maxID < 7 {
		return false
	}
	_, _, c1, _ := cpuid(1, 0)
	const osxsaveAndAVX = 1<<27 | 1<<28
	if c1&osxsaveAndAVX != osxsaveAndAVX {
		return false
	}
	if xcr0, _ := xgetbv0(); xcr0&0x6 != 0x6 {
		return false
	}
	_, b7, _, _ := cpuid(7, 0)
	return b7&(1<<5) != 0
}

func squaredDistancesToSSE2(q, backing []float32, dims int, out []float64) {
	sqDistsToSSE2(q, backing, dims, len(backing)/dims, out)
}

func squaredDistancesToAVX2(q, backing []float32, dims int, out []float64) {
	sqDistsToAVX2(q, backing, dims, len(backing)/dims, out)
}

// squaredDistancesMultiAVX2 runs the multi-query scan through the
// query-pair kernel: queries are taken two at a time, each pair sharing
// one pass over the rows (the pair rides in one 256-bit register, the
// row block broadcast to both halves), with an odd trailing query
// falling back to the row-pair single-query kernel. Distances are
// bit-identical to per-query calls — each 128-bit half runs the same
// 4-lane accumulation — so this only changes how often the rows are
// loaded: once per pair instead of once per query.
func squaredDistancesMultiAVX2(queries, backing []float32, dims int, out []float64) {
	rows := len(backing) / dims
	nq := len(queries) / dims
	qi := 0
	for ; qi+2 <= nq; qi += 2 {
		sqDistsMultiPairAVX2(
			queries[qi*dims:(qi+1)*dims], queries[(qi+1)*dims:(qi+2)*dims],
			backing, dims, rows,
			out[qi*rows:(qi+1)*rows], out[(qi+1)*rows:(qi+2)*rows])
	}
	if qi < nq {
		sqDistsToAVX2(queries[qi*dims:(qi+1)*dims], backing, dims, rows, out[qi*rows:(qi+1)*rows])
	}
}

// archKernels reports the assembly backends usable on this CPU, slowest
// first. The partial field holds the asm entry point itself — the kernel
// runs once per row in full-heap scans, so an extra Go wrapper frame
// would be a measurable fraction of its ~40ns of work. Partial-distance
// scans also stay on the 128-bit kernel even under AVX2: within one row
// the accumulation contract pins the arithmetic to four lanes, so wider
// registers only ever help across rows.
func archKernels() []kernelBackend {
	ks := []kernelBackend{{
		name:       "sse2",
		distsTo:    squaredDistancesToSSE2,
		distsMulti: multiFrom(sqDistsToSSE2),
		partial:    sqPartialSSE2,
		fullScan:   true,
	}}
	if hasAVX2() {
		ks = append(ks, kernelBackend{
			name:       "avx2",
			distsTo:    squaredDistancesToAVX2,
			distsMulti: squaredDistancesMultiAVX2,
			partial:    sqPartialSSE2,
			fullScan:   true,
		})
	}
	return ks
}
