//go:build arm64

package vec

// Assembly kernels (kernels_arm64.s). NEON (ASIMD) is mandatory in the
// ARMv8-A base profile every GOARCH=arm64 target implements, so no
// feature detection is needed — the backend is always available.

//go:noescape
func sqDistsToNEON(q, backing []float32, dims, rows int, out []float64)

//go:noescape
func sqPartialNEON(a, b []float32, bound float64) float64

func squaredDistancesToNEON(q, backing []float32, dims int, out []float64) {
	sqDistsToNEON(q, backing, dims, len(backing)/dims, out)
}

// archKernels reports the assembly backends usable on this CPU, slowest
// first. As on amd64, the partial field holds the asm entry point itself
// to keep the per-row call as lean as possible.
func archKernels() []kernelBackend {
	return []kernelBackend{{
		name:       "neon",
		distsTo:    squaredDistancesToNEON,
		distsMulti: multiFrom(sqDistsToNEON),
		partial:    sqPartialNEON,
		fullScan:   true,
	}}
}
