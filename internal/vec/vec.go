// Package vec provides fixed-dimension float32 vector math for image
// descriptors.
//
// The paper works with 24-dimensional local descriptors compared under
// Euclidean (L2) distance. The repo-wide convention is: distances are
// computed and compared in *squared* form everywhere ordering or pruning
// is all that matters — heaps, stop rules, partial-distance abandonment —
// and converted with math.Sqrt only at reporting boundaries (knn.Heap
// sorting, user-facing Neighbor.Dist fields, radii).
//
// All squared distances flow through the kernels in kernels.go
// (SquaredDistance, SquaredDistancesTo, PartialSquaredDistance): 4-way
// unrolled float32 accumulation with a specialized dims==24 path, sharing
// one accumulation order so every kernel returns bit-identical values for
// the same pair. Search backends must use these kernels (not ad-hoc
// loops) so that independently implemented searches agree exactly on
// neighbor sets, tie order included.
package vec

import (
	"fmt"
	"math"
)

// Dims is the dimensionality of the descriptors used throughout the paper.
// The package functions accept arbitrary equal-length vectors; Dims is the
// default used by generators and file formats.
const Dims = 24

// Vector is a point in d-dimensional Euclidean space.
type Vector []float32

// New returns a zero vector with the given dimensionality.
func New(dims int) Vector { return make(Vector, dims) }

// Clone returns an independent copy of v.
func (v Vector) Clone() Vector {
	c := make(Vector, len(v))
	copy(c, v)
	return c
}

// SquaredDistance returns the squared Euclidean distance between a and b.
// It panics if the vectors have different dimensionality: mixing
// dimensionalities is always a programming error in this codebase.
func SquaredDistance(a, b Vector) float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("vec: dimension mismatch %d vs %d", len(a), len(b)))
	}
	return squaredDist(a, b)
}

// Distance returns the Euclidean distance between a and b.
func Distance(a, b Vector) float64 {
	return math.Sqrt(SquaredDistance(a, b))
}

// Norm returns the Euclidean length of v.
func (v Vector) Norm() float64 {
	var sum float64
	for _, x := range v {
		sum += float64(x) * float64(x)
	}
	return math.Sqrt(sum)
}

// Add accumulates o into v in place.
func (v Vector) Add(o Vector) {
	if len(v) != len(o) {
		panic(fmt.Sprintf("vec: dimension mismatch %d vs %d", len(v), len(o)))
	}
	for i := range v {
		v[i] += o[i]
	}
}

// Scale multiplies every coordinate of v by s in place.
func (v Vector) Scale(s float32) {
	for i := range v {
		v[i] *= s
	}
}

// Lerp returns a + t*(b-a) as a fresh vector.
func Lerp(a, b Vector, t float32) Vector {
	if len(a) != len(b) {
		panic(fmt.Sprintf("vec: dimension mismatch %d vs %d", len(a), len(b)))
	}
	out := make(Vector, len(a))
	for i := range a {
		out[i] = a[i] + t*(b[i]-a[i])
	}
	return out
}

// Equal reports whether a and b are identical coordinate-wise.
func Equal(a, b Vector) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// SphereLowerBound returns the smallest possible distance from point q to
// any point inside the sphere (center, radius): max(0, |q-center| - radius).
//
// This is the bound the paper's exact stop rule relies on (§4.3): once the
// lower bound of the next-ranked chunk exceeds the current k-th neighbor
// distance, no unread chunk can improve the result.
func SphereLowerBound(q, center Vector, radius float64) float64 {
	d := Distance(q, center) - radius
	if d < 0 {
		return 0
	}
	return d
}

// SphereUpperBound returns the largest possible distance from q to any
// point inside the sphere (center, radius).
func SphereUpperBound(q, center Vector, radius float64) float64 {
	return Distance(q, center) + radius
}

// Centroid returns the arithmetic mean of the given vectors. It panics if
// vs is empty or dimensionalities disagree.
func Centroid(vs []Vector) Vector {
	if len(vs) == 0 {
		panic("vec: centroid of empty set")
	}
	acc := make([]float64, len(vs[0]))
	for _, v := range vs {
		if len(v) != len(acc) {
			panic("vec: dimension mismatch in centroid")
		}
		for i, x := range v {
			acc[i] += float64(x)
		}
	}
	out := make(Vector, len(acc))
	inv := 1 / float64(len(vs))
	for i, s := range acc {
		out[i] = float32(s * inv)
	}
	return out
}

// MaxDistanceFrom returns the largest distance from center to any vector in
// vs (0 for an empty slice). Used to compute minimum bounding radii. The
// maximum is taken over squared distances; sqrt is applied once at the end.
func MaxDistanceFrom(center Vector, vs []Vector) float64 {
	var max float64
	for _, v := range vs {
		if d := SquaredDistance(center, v); d > max {
			max = d
		}
	}
	return math.Sqrt(max)
}

// Bounds holds per-dimension minima and maxima of a set of vectors.
type Bounds struct {
	Min Vector
	Max Vector
}

// NewBounds returns Bounds primed to absorb vectors of the given
// dimensionality (Min at +inf, Max at -inf).
func NewBounds(dims int) Bounds {
	b := Bounds{Min: make(Vector, dims), Max: make(Vector, dims)}
	for i := 0; i < dims; i++ {
		b.Min[i] = float32(math.Inf(1))
		b.Max[i] = float32(math.Inf(-1))
	}
	return b
}

// Absorb extends b to include v.
func (b *Bounds) Absorb(v Vector) {
	for i, x := range v {
		if x < b.Min[i] {
			b.Min[i] = x
		}
		if x > b.Max[i] {
			b.Max[i] = x
		}
	}
}

// AbsorbBounds extends b to include the whole region o.
func (b *Bounds) AbsorbBounds(o Bounds) {
	for i := range b.Min {
		if o.Min[i] < b.Min[i] {
			b.Min[i] = o.Min[i]
		}
		if o.Max[i] > b.Max[i] {
			b.Max[i] = o.Max[i]
		}
	}
}

// Contains reports whether v lies inside b (inclusive).
func (b Bounds) Contains(v Vector) bool {
	for i, x := range v {
		if x < b.Min[i] || x > b.Max[i] {
			return false
		}
	}
	return true
}

// Center returns the midpoint of b.
func (b Bounds) Center() Vector {
	c := make(Vector, len(b.Min))
	for i := range c {
		c[i] = (b.Min[i] + b.Max[i]) / 2
	}
	return c
}

// SquaredMinDist returns the squared distance from q to the nearest point
// of the rectangle b (0 if q is inside). This is the MINDIST bound used by
// R-tree-family traversal, including the SR-tree.
func (b Bounds) SquaredMinDist(q Vector) float64 {
	var sum float64
	for i, x := range q {
		switch {
		case x < b.Min[i]:
			d := float64(b.Min[i]) - float64(x)
			sum += d * d
		case x > b.Max[i]:
			d := float64(x) - float64(b.Max[i])
			sum += d * d
		}
	}
	return sum
}
