//go:build amd64

#include "textflag.h"

// Handwritten SIMD kernels. The binding contract (kernels.go): element i
// of the difference feeds float32 lane i&3, lanes combine as
// (s0+s1)+(s2+s3), widen to float64 last, no FMA. One 128-bit register is
// the four accumulators; unrolled blocks accumulate in ascending element
// order so the per-lane addition order matches the portable kernels
// exactly. The AVX2 kernel widens throughput by processing two *rows* per
// 256-bit register — one independent 4-lane scheme per 128-bit half —
// never by adding lanes to a single row's accumulation.

// func sqDistsToSSE2(q, backing []float32, dims, rows int, out []float64)
//
// SI = q base, DX = current row, CX = dims, BX = rows left, DI = out.
// R11 = dims&^7 (8-wide prefix), R8 = dims&^3 (4-wide prefix), R9 = index.
TEXT ·sqDistsToSSE2(SB), NOSPLIT, $0-88
	MOVQ q_base+0(FP), SI
	MOVQ backing_base+24(FP), DX
	MOVQ dims+48(FP), CX
	MOVQ rows+56(FP), BX
	MOVQ out_base+64(FP), DI
	MOVQ CX, R8
	ANDQ $-4, R8
	MOVQ CX, R11
	ANDQ $-8, R11

rowloop:
	TESTQ BX, BX
	JZ    done
	XORPS X0, X0             // X0 = [s0 s1 s2 s3]
	XORQ  R9, R9

loop8:
	CMPQ   R9, R11
	JGE    loop4
	MOVUPS (SI)(R9*4), X1
	MOVUPS (DX)(R9*4), X2
	SUBPS  X2, X1
	MULPS  X1, X1
	ADDPS  X1, X0
	MOVUPS 16(SI)(R9*4), X1
	MOVUPS 16(DX)(R9*4), X2
	SUBPS  X2, X1
	MULPS  X1, X1
	ADDPS  X1, X0
	ADDQ   $8, R9
	JMP    loop8

loop4:
	CMPQ   R9, R8
	JGE    tail
	MOVUPS (SI)(R9*4), X1
	MOVUPS (DX)(R9*4), X2
	SUBPS  X2, X1
	MULPS  X1, X1
	ADDPS  X1, X0
	ADDQ   $4, R9

tail:
	CMPQ  R9, CX
	JGE   reduce
	MOVSS (SI)(R9*4), X1
	MOVSS (DX)(R9*4), X2
	SUBSS X2, X1
	MULSS X1, X1
	ADDSS X1, X0             // tail elements all feed lane 0
	INCQ  R9
	JMP   tail

reduce:
	// lane0 = (s0+s1)+(s2+s3), then widen to float64.
	MOVAPS   X0, X1
	SHUFPS   $0xB1, X1, X1   // [s1 s0 s3 s2]
	ADDPS    X1, X0          // [s0+s1 . s2+s3 .]
	MOVHLPS  X0, X1          // X1 lane0 = s2+s3
	ADDSS    X1, X0
	CVTSS2SD X0, X0
	MOVSD    X0, (DI)
	ADDQ     $8, DI
	LEAQ     (DX)(CX*4), DX  // next row
	DECQ     BX
	JMP      rowloop

done:
	RET

// func sqDistsToAVX2(q, backing []float32, dims, rows int, out []float64)
//
// Row-pair kernel: Y-register = [row i lanes | row i+1 lanes], the query
// block broadcast to both halves, so each half runs the exact 128-bit
// 4-lane scheme of the portable kernel. dims==24 (the paper's descriptor
// width) additionally hoists all six query blocks into Y10-Y15 once per
// call and fully unrolls the six-block row-pair body.
TEXT ·sqDistsToAVX2(SB), NOSPLIT, $0-88
	MOVQ q_base+0(FP), SI
	MOVQ backing_base+24(FP), DX
	MOVQ dims+48(FP), CX
	MOVQ rows+56(FP), BX
	MOVQ out_base+64(FP), DI
	MOVQ CX, R8
	ANDQ $-4, R8

	CMPQ CX, $24
	JEQ  init24

pairloop:
	CMPQ   BX, $2
	JL     single
	LEAQ   (DX)(CX*4), R10   // R10 = row i+1
	VXORPS Y0, Y0, Y0
	XORQ   R9, R9

pv4:
	CMPQ           R9, R8
	JGE            ptail
	VBROADCASTF128 (SI)(R9*4), Y1
	VMOVUPS        (DX)(R9*4), X2
	VINSERTF128    $1, (R10)(R9*4), Y2, Y2
	VSUBPS         Y2, Y1, Y1
	VMULPS         Y1, Y1, Y1
	VADDPS         Y1, Y0, Y0
	ADDQ           $4, R9
	JMP            pv4

ptail:
	VEXTRACTF128 $1, Y0, X5  // X5 = row i+1 accumulators; X0 = row i

ptailloop:
	CMPQ   R9, CX
	JGE    preduce
	VMOVSS (SI)(R9*4), X1
	VMOVSS (DX)(R9*4), X2
	VSUBSS X2, X1, X2
	VMULSS X2, X2, X2
	VADDSS X2, X0, X0
	VMOVSS (R10)(R9*4), X2
	VSUBSS X2, X1, X2
	VMULSS X2, X2, X2
	VADDSS X2, X5, X5
	INCQ   R9
	JMP    ptailloop

preduce:
	VSHUFPS   $0xB1, X0, X0, X1
	VADDPS    X1, X0, X0
	VSHUFPS   $0xEE, X0, X0, X1
	VADDSS    X1, X0, X0
	VCVTSS2SD X0, X0, X0
	VMOVSD    X0, (DI)
	VSHUFPS   $0xB1, X5, X5, X1
	VADDPS    X1, X5, X5
	VSHUFPS   $0xEE, X5, X5, X1
	VADDSS    X1, X5, X5
	VCVTSS2SD X5, X5, X5
	VMOVSD    X5, 8(DI)
	ADDQ      $16, DI
	LEAQ      (R10)(CX*4), DX
	SUBQ      $2, BX
	JMP       pairloop

init24:
	// Hoist the 24-d query into Y10-Y15, each block in both halves.
	VBROADCASTF128 (SI), Y10
	VBROADCASTF128 16(SI), Y11
	VBROADCASTF128 32(SI), Y12
	VBROADCASTF128 48(SI), Y13
	VBROADCASTF128 64(SI), Y14
	VBROADCASTF128 80(SI), Y15

pair24:
	CMPQ        BX, $2
	JL          single
	LEAQ        96(DX), R10
	VMOVUPS     (DX), X2
	VINSERTF128 $1, (R10), Y2, Y2
	VSUBPS      Y2, Y10, Y1
	VMULPS      Y1, Y1, Y0   // block 0 initializes the accumulators
	VMOVUPS     16(DX), X2
	VINSERTF128 $1, 16(R10), Y2, Y2
	VSUBPS      Y2, Y11, Y1
	VMULPS      Y1, Y1, Y1
	VADDPS      Y1, Y0, Y0
	VMOVUPS     32(DX), X2
	VINSERTF128 $1, 32(R10), Y2, Y2
	VSUBPS      Y2, Y12, Y1
	VMULPS      Y1, Y1, Y1
	VADDPS      Y1, Y0, Y0
	VMOVUPS     48(DX), X2
	VINSERTF128 $1, 48(R10), Y2, Y2
	VSUBPS      Y2, Y13, Y1
	VMULPS      Y1, Y1, Y1
	VADDPS      Y1, Y0, Y0
	VMOVUPS     64(DX), X2
	VINSERTF128 $1, 64(R10), Y2, Y2
	VSUBPS      Y2, Y14, Y1
	VMULPS      Y1, Y1, Y1
	VADDPS      Y1, Y0, Y0
	VMOVUPS     80(DX), X2
	VINSERTF128 $1, 80(R10), Y2, Y2
	VSUBPS      Y2, Y15, Y1
	VMULPS      Y1, Y1, Y1
	VADDPS      Y1, Y0, Y0
	VEXTRACTF128 $1, Y0, X5
	VSHUFPS   $0xB1, X0, X0, X1
	VADDPS    X1, X0, X0
	VSHUFPS   $0xEE, X0, X0, X1
	VADDSS    X1, X0, X0
	VCVTSS2SD X0, X0, X0
	VMOVSD    X0, (DI)
	VSHUFPS   $0xB1, X5, X5, X1
	VADDPS    X1, X5, X5
	VSHUFPS   $0xEE, X5, X5, X1
	VADDSS    X1, X5, X5
	VCVTSS2SD X5, X5, X5
	VMOVSD    X5, 8(DI)
	ADDQ      $16, DI
	LEAQ      192(DX), DX
	SUBQ      $2, BX
	JMP       pair24

single:
	TESTQ  BX, BX
	JZ     adone
	VXORPS X0, X0, X0
	XORQ   R9, R9

sv4:
	CMPQ    R9, R8
	JGE     stail
	VMOVUPS (SI)(R9*4), X1
	VMOVUPS (DX)(R9*4), X2
	VSUBPS  X2, X1, X1
	VMULPS  X1, X1, X1
	VADDPS  X1, X0, X0
	ADDQ    $4, R9
	JMP     sv4

stail:
	CMPQ   R9, CX
	JGE    sreduce
	VMOVSS (SI)(R9*4), X1
	VMOVSS (DX)(R9*4), X2
	VSUBSS X2, X1, X1
	VMULSS X1, X1, X1
	VADDSS X1, X0, X0
	INCQ   R9
	JMP    stail

sreduce:
	VSHUFPS   $0xB1, X0, X0, X1
	VADDPS    X1, X0, X0
	VSHUFPS   $0xEE, X0, X0, X1
	VADDSS    X1, X0, X0
	VCVTSS2SD X0, X0, X0
	VMOVSD    X0, (DI)

adone:
	VZEROUPPER
	RET

// func sqDistsMultiPairAVX2(q0, q1, backing []float32, dims, rows int, out0, out1 []float64)
//
// Query-pair kernel, the transpose of sqDistsToAVX2's row pairing: the
// Y-register is [query 0 lanes | query 1 lanes] against ONE row block
// broadcast to both halves, so each 128-bit half still runs the exact
// 4-lane scheme of the portable kernel and both distances of the pair
// are bit-identical to per-query calls — but every row block is loaded
// once for two queries, halving row traffic for batch groups. dims==24
// hoists all six blocks of both queries into Y10-Y15 once per call and
// fully unrolls the six-block row body.
//
// SI = q0, R12 = q1, DX = current row, CX = dims, BX = rows left,
// DI = out0, R13 = out1, R8 = dims&^3, R9 = element index.
TEXT ·sqDistsMultiPairAVX2(SB), NOSPLIT, $0-136
	MOVQ q0_base+0(FP), SI
	MOVQ q1_base+24(FP), R12
	MOVQ backing_base+48(FP), DX
	MOVQ dims+72(FP), CX
	MOVQ rows+80(FP), BX
	MOVQ out0_base+88(FP), DI
	MOVQ out1_base+112(FP), R13
	MOVQ CX, R8
	ANDQ $-4, R8

	CMPQ CX, $24
	JEQ  minit24

mrowloop:
	TESTQ  BX, BX
	JZ     mdone
	VXORPS Y0, Y0, Y0
	XORQ   R9, R9

mv4:
	CMPQ           R9, R8
	JGE            mtail
	VMOVUPS        (SI)(R9*4), X1
	VINSERTF128    $1, (R12)(R9*4), Y1, Y1
	VBROADCASTF128 (DX)(R9*4), Y2
	VSUBPS         Y2, Y1, Y1
	VMULPS         Y1, Y1, Y1
	VADDPS         Y1, Y0, Y0
	ADDQ           $4, R9
	JMP            mv4

mtail:
	VEXTRACTF128 $1, Y0, X5  // X5 = query 1 accumulators; X0 = query 0

mtailloop:
	CMPQ   R9, CX
	JGE    mreduce
	VMOVSS (DX)(R9*4), X2
	VMOVSS (SI)(R9*4), X1
	VSUBSS X2, X1, X1
	VMULSS X1, X1, X1
	VADDSS X1, X0, X0
	VMOVSS (R12)(R9*4), X1
	VSUBSS X2, X1, X1
	VMULSS X1, X1, X1
	VADDSS X1, X5, X5
	INCQ   R9
	JMP    mtailloop

mreduce:
	VSHUFPS   $0xB1, X0, X0, X1
	VADDPS    X1, X0, X0
	VSHUFPS   $0xEE, X0, X0, X1
	VADDSS    X1, X0, X0
	VCVTSS2SD X0, X0, X0
	VMOVSD    X0, (DI)
	VSHUFPS   $0xB1, X5, X5, X1
	VADDPS    X1, X5, X5
	VSHUFPS   $0xEE, X5, X5, X1
	VADDSS    X1, X5, X5
	VCVTSS2SD X5, X5, X5
	VMOVSD    X5, (R13)
	ADDQ      $8, DI
	ADDQ      $8, R13
	LEAQ      (DX)(CX*4), DX
	DECQ      BX
	JMP       mrowloop

minit24:
	// Hoist both 24-d queries into Y10-Y15: [q0 block k | q1 block k].
	VMOVUPS     (SI), X10
	VINSERTF128 $1, (R12), Y10, Y10
	VMOVUPS     16(SI), X11
	VINSERTF128 $1, 16(R12), Y11, Y11
	VMOVUPS     32(SI), X12
	VINSERTF128 $1, 32(R12), Y12, Y12
	VMOVUPS     48(SI), X13
	VINSERTF128 $1, 48(R12), Y13, Y13
	VMOVUPS     64(SI), X14
	VINSERTF128 $1, 64(R12), Y14, Y14
	VMOVUPS     80(SI), X15
	VINSERTF128 $1, 80(R12), Y15, Y15

mrow24:
	TESTQ          BX, BX
	JZ             mdone
	VBROADCASTF128 (DX), Y2
	VSUBPS         Y2, Y10, Y1
	VMULPS         Y1, Y1, Y0 // block 0 initializes the accumulators
	VBROADCASTF128 16(DX), Y2
	VSUBPS         Y2, Y11, Y1
	VMULPS         Y1, Y1, Y1
	VADDPS         Y1, Y0, Y0
	VBROADCASTF128 32(DX), Y2
	VSUBPS         Y2, Y12, Y1
	VMULPS         Y1, Y1, Y1
	VADDPS         Y1, Y0, Y0
	VBROADCASTF128 48(DX), Y2
	VSUBPS         Y2, Y13, Y1
	VMULPS         Y1, Y1, Y1
	VADDPS         Y1, Y0, Y0
	VBROADCASTF128 64(DX), Y2
	VSUBPS         Y2, Y14, Y1
	VMULPS         Y1, Y1, Y1
	VADDPS         Y1, Y0, Y0
	VBROADCASTF128 80(DX), Y2
	VSUBPS         Y2, Y15, Y1
	VMULPS         Y1, Y1, Y1
	VADDPS         Y1, Y0, Y0
	VEXTRACTF128   $1, Y0, X5
	VSHUFPS        $0xB1, X0, X0, X1
	VADDPS         X1, X0, X0
	VSHUFPS        $0xEE, X0, X0, X1
	VADDSS         X1, X0, X0
	VCVTSS2SD      X0, X0, X0
	VMOVSD         X0, (DI)
	VSHUFPS        $0xB1, X5, X5, X1
	VADDPS         X1, X5, X5
	VSHUFPS        $0xEE, X5, X5, X1
	VADDSS         X1, X5, X5
	VCVTSS2SD      X5, X5, X5
	VMOVSD         X5, (R13)
	ADDQ           $8, DI
	ADDQ           $8, R13
	LEAQ           96(DX), DX
	DECQ           BX
	JMP            mrow24

mdone:
	VZEROUPPER
	RET

// func sqPartialSSE2(a, b []float32, bound float64) float64
//
// Mirrors partialSquaredDistancePortable exactly: the bound is checked
// once per 8 elements on a copy of the accumulators (X0 is never
// disturbed), so abandoned return values are byte-identical too.
TEXT ·sqPartialSSE2(SB), NOSPLIT, $0-64
	MOVQ  a_base+0(FP), SI
	MOVQ  b_base+24(FP), DX
	MOVQ  a_len+8(FP), CX
	MOVSD bound+48(FP), X7
	XORPS X0, X0
	XORQ  R9, R9
	MOVQ  CX, R11
	ANDQ  $-8, R11
	MOVQ  CX, R8
	ANDQ  $-4, R8

ploop8:
	CMPQ   R9, R11
	JGE    ploop4
	MOVUPS (SI)(R9*4), X1
	MOVUPS (DX)(R9*4), X2
	SUBPS  X2, X1
	MULPS  X1, X1
	ADDPS  X1, X0
	MOVUPS 16(SI)(R9*4), X1
	MOVUPS 16(DX)(R9*4), X2
	SUBPS  X2, X1
	MULPS  X1, X1
	ADDPS  X1, X0
	ADDQ   $8, R9
	// bound check on a copy of the accumulators
	MOVAPS   X0, X3
	MOVAPS   X3, X4
	SHUFPS   $0xB1, X4, X4
	ADDPS    X4, X3
	MOVHLPS  X3, X4
	ADDSS    X4, X3
	CVTSS2SD X3, X3
	UCOMISD  X7, X3
	JA       pabandon
	JMP      ploop8

ploop4:
	CMPQ   R9, R8
	JGE    ptail2
	MOVUPS (SI)(R9*4), X1
	MOVUPS (DX)(R9*4), X2
	SUBPS  X2, X1
	MULPS  X1, X1
	ADDPS  X1, X0
	ADDQ   $4, R9

ptail2:
	CMPQ  R9, CX
	JGE   preduce2
	MOVSS (SI)(R9*4), X1
	MOVSS (DX)(R9*4), X2
	SUBSS X2, X1
	MULSS X1, X1
	ADDSS X1, X0
	INCQ  R9
	JMP   ptail2

preduce2:
	MOVAPS   X0, X1
	SHUFPS   $0xB1, X1, X1
	ADDPS    X1, X0
	MOVHLPS  X0, X1
	ADDSS    X1, X0
	CVTSS2SD X0, X0
	MOVSD    X0, ret+56(FP)
	RET

pabandon:
	MOVSD X3, ret+56(FP)
	RET
