//go:build !amd64 && !arm64

package vec

// archKernels reports the architecture-specific kernel backends usable on
// this CPU, slowest first. On architectures without an assembly backend
// only the portable reference is available.
func archKernels() []kernelBackend { return nil }
