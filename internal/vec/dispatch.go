package vec

import (
	"fmt"
	"os"
)

// kernelBackend bundles one implementation of the three hot kernels. Every
// backend obeys the accumulation contract documented in kernels.go, so all
// of them return byte-identical values for the same inputs; they differ
// only in speed.
type kernelBackend struct {
	name       string
	distsTo    func(q, backing []float32, dims int, out []float64)
	distsMulti func(queries, backing []float32, dims int, out []float64)
	partial    func(a, b []float32, bound float64) float64
	// fullScan reports that this backend streams full rows through
	// distsTo faster than per-row partial-distance abandonment can skip
	// work: the SIMD kernels run 3-10× the portable bandwidth, which
	// beats abandonment's ~2-3× element savings at descriptor widths,
	// while the portable kernel is better off abandoning. Scan loops ask
	// via PrefersFullScan; either choice yields identical results (a
	// kernel choice must never change them).
	fullScan bool
}

var portableKernels = kernelBackend{
	name:       "portable",
	distsTo:    squaredDistancesToPortable,
	distsMulti: squaredDistancesMultiPortable,
	partial:    partialSquaredDistancePortable,
}

// available lists the backends usable on this CPU, slowest first: the
// portable reference, then whatever archKernels (per-GOARCH, see
// dispatch_amd64.go / dispatch_arm64.go / dispatch_portable.go) detected
// at startup. The default pick is the last entry.
var available = append([]kernelBackend{portableKernels}, archKernels()...)

// BackendEnv is the environment variable that overrides backend selection
// at process start: REPRO_VEC_BACKEND=portable|sse2|avx2|neon. An override
// naming a backend the CPU cannot run panics in init — a silent fallback
// would invalidate any benchmark or repro run that asked for a specific
// backend.
const BackendEnv = "REPRO_VEC_BACKEND"

// The active backend is stored as individual package-level function
// variables, not a struct: the hot kernels are called per row block (and
// the partial kernel once per row in full-heap scans), so each call pays
// exactly one indirect jump with no field load in front of it.
var (
	activeName       string
	activeDistsTo    func(q, backing []float32, dims int, out []float64)
	activeDistsMulti func(queries, backing []float32, dims int, out []float64)
	activePartial    func(a, b []float32, bound float64) float64
	activeFullScan   bool
)

func init() {
	b, err := selectKernels(os.Getenv(BackendEnv))
	if err != nil {
		panic(err)
	}
	install(b)
}

func install(b kernelBackend) {
	activeName = b.name
	activeDistsTo = b.distsTo
	activeDistsMulti = b.distsMulti
	activePartial = b.partial
	activeFullScan = b.fullScan
}

// PrefersFullScan reports whether, on the active backend, scanning every
// element of every row through SquaredDistancesTo/Multi is faster than
// per-row PartialSquaredDistance abandonment. True for the SIMD backends.
// Scan loops may use it to pick a strategy; both strategies produce
// byte-identical results (abandoned candidates are exactly those the
// k-NN heap would reject), so this is purely a speed hint.
func PrefersFullScan() bool { return activeFullScan }

// multiFrom builds a SquaredDistancesMulti implementation from a row-scan
// entry point by per-query delegation: the batch shape shares no state
// across queries, and Multi is called once per row block, so the extra
// indirect call is off the per-row hot path. The assembly backends use it
// so each architecture only hand-writes the row-scan kernel.
func multiFrom(distsTo func(q, backing []float32, dims, rows int, out []float64)) func(queries, backing []float32, dims int, out []float64) {
	return func(queries, backing []float32, dims int, out []float64) {
		nq := len(queries) / dims
		n := len(backing) / dims
		for qi := 0; qi < nq; qi++ {
			distsTo(queries[qi*dims:(qi+1)*dims], backing, dims, n, out[qi*n:])
		}
	}
}

// selectKernels resolves a backend name ("" means best available).
func selectKernels(want string) (kernelBackend, error) {
	if want == "" {
		return available[len(available)-1], nil
	}
	for _, b := range available {
		if b.name == want {
			return b, nil
		}
	}
	return kernelBackend{}, fmt.Errorf("vec: kernel backend %q not available on this CPU (have %v)", want, Backends())
}

// Backend reports the name of the kernel backend in use: "portable",
// "sse2", "avx2" or "neon". Tests and perf snapshots record it so a result
// can be tied to the code path that produced it.
func Backend() string { return activeName }

// Backends lists every kernel backend usable on this CPU, slowest first.
// "portable" is always present.
func Backends() []string {
	names := make([]string, len(available))
	for i, b := range available {
		names[i] = b.name
	}
	return names
}

// UseBackend switches the active kernel backend. It is a test and
// benchmark hook — production processes select a backend once at startup
// (best available, or the BackendEnv override) and never switch. Callers
// must not race UseBackend with kernel calls.
func UseBackend(name string) error {
	b, err := selectKernels(name)
	if err != nil {
		return err
	}
	install(b)
	return nil
}

// SquaredDistancesTo computes the squared distance from q to every row of
// the flattened backing array (len(backing)/dims rows of dims float32s
// each, the layout of chunkfile.Data.Vecs and descriptor.Collection) and
// stores them in out. It panics if out is shorter than the row count or
// backing is not a whole number of rows. Each out[i] is bit-identical to
// SquaredDistance(q, row_i) on every backend.
func SquaredDistancesTo(q Vector, backing []float32, dims int, out []float64) {
	if len(q) != dims {
		panic(fmt.Sprintf("vec: query dims %d != row dims %d", len(q), dims))
	}
	if dims <= 0 || len(backing)%dims != 0 {
		panic(fmt.Sprintf("vec: backing length %d is not a multiple of dims %d", len(backing), dims))
	}
	n := len(backing) / dims
	if len(out) < n {
		panic(fmt.Sprintf("vec: out length %d < %d rows", len(out), n))
	}
	activeDistsTo(q, backing, dims, out)
}

// SquaredDistancesMulti computes the squared distance from every query of
// the flattened queries array (len(queries)/dims queries of dims float32s
// each) to every row of backing (the layout of chunkfile.Data.Vecs),
// writing the distances for query qi to out[qi*n : (qi+1)*n] where n is
// the row count of backing. It is the batch engine's kernel: the rows of
// one chunk stay hot in cache while Q queries scan them (callers pass
// row blocks small enough to fit in L1). Every out value is bit-identical
// to SquaredDistance(query_qi, row_i) because every backend implements the
// one accumulation scheme documented in kernels.go.
func SquaredDistancesMulti(queries, backing []float32, dims int, out []float64) {
	if dims <= 0 || len(queries)%dims != 0 {
		panic(fmt.Sprintf("vec: queries length %d is not a multiple of dims %d", len(queries), dims))
	}
	if len(backing)%dims != 0 {
		panic(fmt.Sprintf("vec: backing length %d is not a multiple of dims %d", len(backing), dims))
	}
	nq := len(queries) / dims
	n := len(backing) / dims
	if len(out) < nq*n {
		panic(fmt.Sprintf("vec: out length %d < %d queries × %d rows", len(out), nq, n))
	}
	activeDistsMulti(queries, backing, dims, out)
}

// PartialSquaredDistance computes the squared distance between a and b,
// abandoning early once the partial sum exceeds bound (a squared
// distance). When the true squared distance is ≤ bound the exact value is
// returned, bit-identical to SquaredDistance(a, b); otherwise some value
// strictly greater than bound is returned (the partial sum at the point of
// abandonment). Callers pruning against a current k-th-neighbor bound pass
// that bound and discard any result exceeding it.
//
// The bound checks never alter the accumulators, so whether or not checks
// run, a non-abandoned result is exact. Every backend checks at the same
// element positions (once per 8 elements), so even abandoned return values
// are byte-identical across backends.
func PartialSquaredDistance(a, b Vector, bound float64) float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("vec: dimension mismatch %d vs %d", len(a), len(b)))
	}
	return activePartial(a, b, bound)
}
