package vec

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, eps float64) bool { return math.Abs(a-b) <= eps }

func randVec(r *rand.Rand, dims int) Vector {
	v := make(Vector, dims)
	for i := range v {
		v[i] = float32(r.NormFloat64() * 10)
	}
	return v
}

func TestSquaredDistanceKnown(t *testing.T) {
	a := Vector{0, 0, 0}
	b := Vector{3, 4, 0}
	if got := SquaredDistance(a, b); got != 25 {
		t.Fatalf("SquaredDistance = %v, want 25", got)
	}
	if got := Distance(a, b); got != 5 {
		t.Fatalf("Distance = %v, want 5", got)
	}
}

func TestDistanceZeroForIdentical(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for i := 0; i < 50; i++ {
		v := randVec(r, Dims)
		if got := Distance(v, v); got != 0 {
			t.Fatalf("Distance(v,v) = %v, want 0", got)
		}
	}
}

func TestDistanceSymmetry(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b := randVec(r, Dims), randVec(r, Dims)
		return Distance(a, b) == Distance(b, a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTriangleInequality(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b, c := randVec(r, Dims), randVec(r, Dims), randVec(r, Dims)
		// Allow a small relative epsilon for float accumulation.
		return Distance(a, c) <= Distance(a, b)+Distance(b, c)+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDimensionMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on dimension mismatch")
		}
	}()
	SquaredDistance(Vector{1, 2}, Vector{1, 2, 3})
}

func TestCloneIndependence(t *testing.T) {
	v := Vector{1, 2, 3}
	c := v.Clone()
	c[0] = 99
	if v[0] != 1 {
		t.Fatal("Clone shares backing array")
	}
}

func TestAddScale(t *testing.T) {
	v := Vector{1, 2, 3}
	v.Add(Vector{1, 1, 1})
	if !Equal(v, Vector{2, 3, 4}) {
		t.Fatalf("Add: got %v", v)
	}
	v.Scale(2)
	if !Equal(v, Vector{4, 6, 8}) {
		t.Fatalf("Scale: got %v", v)
	}
}

func TestLerpEndpoints(t *testing.T) {
	a, b := Vector{0, 0}, Vector{2, 4}
	if !Equal(Lerp(a, b, 0), a) {
		t.Fatal("Lerp(0) != a")
	}
	if !Equal(Lerp(a, b, 1), b) {
		t.Fatal("Lerp(1) != b")
	}
	if !Equal(Lerp(a, b, 0.5), Vector{1, 2}) {
		t.Fatal("Lerp(0.5) wrong")
	}
}

func TestNorm(t *testing.T) {
	if got := (Vector{3, 4}).Norm(); got != 5 {
		t.Fatalf("Norm = %v, want 5", got)
	}
	if got := (Vector{0, 0, 0}).Norm(); got != 0 {
		t.Fatalf("Norm of zero = %v", got)
	}
}

func TestSphereLowerBound(t *testing.T) {
	center := Vector{0, 0}
	q := Vector{10, 0}
	if got := SphereLowerBound(q, center, 3); got != 7 {
		t.Fatalf("SphereLowerBound = %v, want 7", got)
	}
	// Query inside the sphere: bound clamps to zero.
	if got := SphereLowerBound(Vector{1, 0}, center, 3); got != 0 {
		t.Fatalf("SphereLowerBound inside = %v, want 0", got)
	}
	if got := SphereUpperBound(q, center, 3); got != 13 {
		t.Fatalf("SphereUpperBound = %v, want 13", got)
	}
}

// The sphere lower bound must never exceed the true distance to any member
// of the sphere: this is the correctness condition of the paper's exact
// stop rule.
func TestSphereLowerBoundIsValid(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		center := randVec(r, Dims)
		members := make([]Vector, 20)
		for i := range members {
			members[i] = randVec(r, Dims)
		}
		radius := MaxDistanceFrom(center, members)
		q := randVec(r, Dims)
		lb := SphereLowerBound(q, center, radius)
		for _, m := range members {
			if Distance(q, m) < lb-1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCentroid(t *testing.T) {
	vs := []Vector{{0, 0}, {2, 2}, {4, 4}}
	c := Centroid(vs)
	if !Equal(c, Vector{2, 2}) {
		t.Fatalf("Centroid = %v, want {2,2}", c)
	}
}

func TestCentroidEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for empty centroid")
		}
	}()
	Centroid(nil)
}

// Centroid minimizes the sum of squared distances: perturbing it in any
// coordinate direction must not reduce the sum.
func TestCentroidMinimizesSSQ(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	vs := make([]Vector, 30)
	for i := range vs {
		vs[i] = randVec(r, 6)
	}
	c := Centroid(vs)
	ssq := func(p Vector) float64 {
		var s float64
		for _, v := range vs {
			s += SquaredDistance(p, v)
		}
		return s
	}
	base := ssq(c)
	for dim := 0; dim < 6; dim++ {
		for _, delta := range []float32{-0.5, 0.5} {
			p := c.Clone()
			p[dim] += delta
			if ssq(p) < base-1e-6 {
				t.Fatalf("perturbed centroid beats centroid in dim %d", dim)
			}
		}
	}
}

func TestMaxDistanceFrom(t *testing.T) {
	center := Vector{0, 0}
	vs := []Vector{{1, 0}, {0, 2}, {-3, 0}}
	if got := MaxDistanceFrom(center, vs); got != 3 {
		t.Fatalf("MaxDistanceFrom = %v, want 3", got)
	}
	if got := MaxDistanceFrom(center, nil); got != 0 {
		t.Fatalf("MaxDistanceFrom(empty) = %v, want 0", got)
	}
}

func TestBoundsAbsorbContains(t *testing.T) {
	b := NewBounds(2)
	b.Absorb(Vector{1, 5})
	b.Absorb(Vector{3, 2})
	if !Equal(b.Min, Vector{1, 2}) || !Equal(b.Max, Vector{3, 5}) {
		t.Fatalf("bounds wrong: %+v", b)
	}
	if !b.Contains(Vector{2, 3}) {
		t.Fatal("Contains(interior) = false")
	}
	if b.Contains(Vector{0, 3}) {
		t.Fatal("Contains(exterior) = true")
	}
	if !Equal(b.Center(), Vector{2, 3.5}) {
		t.Fatalf("Center = %v", b.Center())
	}
}

func TestBoundsAbsorbBounds(t *testing.T) {
	a := NewBounds(1)
	a.Absorb(Vector{1})
	b := NewBounds(1)
	b.Absorb(Vector{5})
	a.AbsorbBounds(b)
	if a.Min[0] != 1 || a.Max[0] != 5 {
		t.Fatalf("AbsorbBounds wrong: %+v", a)
	}
}

func TestSquaredMinDist(t *testing.T) {
	b := NewBounds(2)
	b.Absorb(Vector{0, 0})
	b.Absorb(Vector{2, 2})
	if got := b.SquaredMinDist(Vector{1, 1}); got != 0 {
		t.Fatalf("inside MINDIST = %v, want 0", got)
	}
	if got := b.SquaredMinDist(Vector{5, 1}); got != 9 {
		t.Fatalf("MINDIST = %v, want 9", got)
	}
	if got := b.SquaredMinDist(Vector{5, 6}); got != 25 {
		t.Fatalf("corner MINDIST = %v, want 25", got)
	}
}

// MINDIST must lower-bound the distance to every point inside the box.
func TestSquaredMinDistIsLowerBound(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		b := NewBounds(Dims)
		pts := make([]Vector, 15)
		for i := range pts {
			pts[i] = randVec(r, Dims)
			b.Absorb(pts[i])
		}
		q := randVec(r, Dims)
		lb := b.SquaredMinDist(q)
		for _, p := range pts {
			if SquaredDistance(q, p) < lb-1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkSquaredDistance24(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	x, y := randVec(r, Dims), randVec(r, Dims)
	b.ReportAllocs()
	var sink float64
	for i := 0; i < b.N; i++ {
		sink += SquaredDistance(x, y)
	}
	_ = sink
}
