package vec

import (
	"math"
	"math/rand"
	"testing"
)

// naiveSquaredDistance is the scalar float64 reference loop the kernels
// are validated against.
func naiveSquaredDistance(a, b Vector) float64 {
	var sum float64
	for i := range a {
		d := float64(a[i]) - float64(b[i])
		sum += d * d
	}
	return sum
}

// relClose allows for the float32-accumulation rounding of the kernels
// relative to the float64 reference: error is bounded by ~dims ulps.
func relClose(got, want float64) bool {
	if want == 0 {
		return got == 0
	}
	return math.Abs(got-want) <= 1e-4*math.Abs(want)
}

// TestKernelMatchesNaive is the core property test: over random dims
// (including the specialized 24) the kernel agrees with the scalar
// reference loop up to float32 accumulation rounding.
func TestKernelMatchesNaive(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	dims := []int{1, 2, 3, 4, 5, 7, 8, 9, 15, 16, 23, 24, 25, 31, 33, 64, 100}
	for _, d := range dims {
		for trial := 0; trial < 50; trial++ {
			a, b := randVec(r, d), randVec(r, d)
			got := SquaredDistance(a, b)
			want := naiveSquaredDistance(a, b)
			if !relClose(got, want) {
				t.Fatalf("dims %d: kernel %v vs naive %v", d, got, want)
			}
		}
	}
}

// TestKernelsBitIdentical asserts the property the backend cross-checks
// rely on: the batch kernel, the partial kernel (non-abandoned) and
// SquaredDistance return bit-identical values for the same pair.
func TestKernelsBitIdentical(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	for _, d := range []int{1, 3, 4, 8, 11, 24, 37, 64} {
		q := randVec(r, d)
		const rows = 17
		backing := make([]float32, 0, rows*d)
		vecs := make([]Vector, rows)
		for i := range vecs {
			vecs[i] = randVec(r, d)
			backing = append(backing, vecs[i]...)
		}
		out := make([]float64, rows)
		SquaredDistancesTo(q, backing, d, out)
		for i, v := range vecs {
			ref := SquaredDistance(q, v)
			if out[i] != ref {
				t.Fatalf("dims %d row %d: batch %x vs pairwise %x", d, i, out[i], ref)
			}
			if p := PartialSquaredDistance(q, v, math.Inf(1)); p != ref {
				t.Fatalf("dims %d row %d: partial %x vs pairwise %x", d, i, p, ref)
			}
			if p := PartialSquaredDistance(q, v, ref); p != ref {
				t.Fatalf("dims %d row %d: partial at exact bound %x vs %x", d, i, p, ref)
			}
		}
	}
}

// TestMultiKernelBitIdentical pins the batch engine's kernel to the
// single-query kernels: for every (query, row) pair, SquaredDistancesMulti
// writes exactly the value SquaredDistance returns, at every query count
// and row-block shape.
func TestMultiKernelBitIdentical(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for _, d := range []int{1, 4, 11, 24, 37} {
		for _, nq := range []int{1, 2, 5} {
			const rows = 23
			queries := make([]float32, 0, nq*d)
			qvecs := make([]Vector, nq)
			for i := range qvecs {
				qvecs[i] = randVec(r, d)
				queries = append(queries, qvecs[i]...)
			}
			backing := make([]float32, 0, rows*d)
			vecs := make([]Vector, rows)
			for i := range vecs {
				vecs[i] = randVec(r, d)
				backing = append(backing, vecs[i]...)
			}
			out := make([]float64, nq*rows)
			SquaredDistancesMulti(queries, backing, d, out)
			for qi, q := range qvecs {
				for i, v := range vecs {
					if ref := SquaredDistance(q, v); out[qi*rows+i] != ref {
						t.Fatalf("dims %d q%d row %d: multi %x vs pairwise %x", d, qi, i, out[qi*rows+i], ref)
					}
				}
			}
		}
	}
}

func TestMultiKernelPanics(t *testing.T) {
	for name, f := range map[string]func(){
		"ragged queries": func() { SquaredDistancesMulti(make([]float32, 7), make([]float32, 8), 4, make([]float64, 4)) },
		"ragged backing": func() { SquaredDistancesMulti(make([]float32, 8), make([]float32, 7), 4, make([]float64, 4)) },
		"short out":      func() { SquaredDistancesMulti(make([]float32, 8), make([]float32, 8), 4, make([]float64, 3)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s: expected panic", name)
				}
			}()
			f()
		}()
	}
}

// TestPartialAbandons asserts the abandonment contract: with a bound below
// the true squared distance, the returned value strictly exceeds the bound.
func TestPartialAbandons(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	for _, d := range []int{8, 16, 24, 48} {
		for trial := 0; trial < 100; trial++ {
			a, b := randVec(r, d), randVec(r, d)
			full := SquaredDistance(a, b)
			if full == 0 {
				continue
			}
			bound := full * r.Float64() * 0.99
			if got := PartialSquaredDistance(a, b, bound); got <= bound {
				t.Fatalf("dims %d: partial %v did not exceed bound %v (full %v)", d, got, bound, full)
			}
		}
	}
}

func TestKernelEdgeCases(t *testing.T) {
	if got := SquaredDistance(Vector{}, Vector{}); got != 0 {
		t.Fatalf("empty vectors: %v", got)
	}
	if got := PartialSquaredDistance(Vector{}, Vector{}, 0); got != 0 {
		t.Fatalf("empty partial: %v", got)
	}
	r := rand.New(rand.NewSource(4))
	for _, d := range []int{1, 24, 30} {
		v := randVec(r, d)
		if got := SquaredDistance(v, v); got != 0 {
			t.Fatalf("identical %d-d vectors: %v", d, got)
		}
		if got := PartialSquaredDistance(v, v.Clone(), 0); got != 0 {
			t.Fatalf("identical partial %d-d: %v", d, got)
		}
	}
	// SquaredDistancesTo over an empty backing is a no-op.
	SquaredDistancesTo(randVec(r, 24), nil, 24, nil)
}

func TestBatchKernelPanics(t *testing.T) {
	for name, f := range map[string]func(){
		"dims mismatch":  func() { SquaredDistancesTo(make(Vector, 3), make([]float32, 8), 4, make([]float64, 2)) },
		"ragged backing": func() { SquaredDistancesTo(make(Vector, 4), make([]float32, 7), 4, make([]float64, 2)) },
		"short out":      func() { SquaredDistancesTo(make(Vector, 4), make([]float32, 8), 4, make([]float64, 1)) },
		"partial dims":   func() { PartialSquaredDistance(make(Vector, 3), make(Vector, 4), 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s: expected panic", name)
				}
			}()
			f()
		}()
	}
}
