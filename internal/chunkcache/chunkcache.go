// Package chunkcache is a byte-bounded cache of *decoded* chunks — the
// []float32 rows plus descriptor IDs a chunkfile.Store's ReadChunk
// produces — fronting any Store as a CachingStore that itself satisfies
// the Store interface. On skewed workloads (the Zipf traffic of
// Tavenard–Amsaleg–Jégou) most reads touch the same hot chunks over and
// over; serving them from the cache skips both the positioned read and
// the byte→float32 decode, while handing the rows out zero-copy.
//
// # Structure
//
// The cache is sharded into fixed lock stripes (16), each an LRU list
// over a map keyed by (store, chunk), with the byte budget split evenly
// across stripes. A hit moves the entry to the stripe's LRU front, pins
// it, and aliases its rows into the caller's Data; a miss reads through
// the inner store into the caller's Data and then copies the decoded
// rows into a cache entry, evicting from the stripe's LRU tail until the
// insert fits.
//
// # Zero-copy discipline (refcount + immutable entries)
//
// Entries are immutable once published. A hit increments the entry's
// refcount and installs the entry as the Data's chunkfile.Pin; the next
// ReadChunk into that Data (or Data.Release) unpins it. Eviction removes
// the entry from the map and subtracts its bytes immediately, but the
// entry's buffers go to the stripe's freelist for reuse only once the
// refcount reaches zero — so eviction never frees rows a scan still
// holds, which is what makes the handout safe under the documented
// concurrent-ReadChunk contract. A pin leaked by a parked Data merely
// keeps that one entry's buffers from being recycled; the garbage
// collector guarantees there is no use-after-free either way.
//
// The cache is a wall-clock optimization only: simulated timings are
// charged by the search layers from chunk metadata, never by stores, so
// results and simulated costs are byte-identical cache-on vs cache-off
// (the facade's equivalence tests pin this). The *simulated* counterpart
// — what the 2005 machine would gain from RAM-resident chunks — is
// simdisk.CacheTier.
package chunkcache

import (
	"sync"
	"sync/atomic"

	"repro/internal/chunkfile"
	"repro/internal/descriptor"
)

// stripeCount is the number of lock stripes; a power of two so the key
// hash folds with a mask.
const stripeCount = 16

// entryOverhead is the per-entry bookkeeping charge against the byte
// budget beyond the rows themselves: the entry struct, map slot, and
// slice headers, rounded generously so many tiny chunks cannot blow the
// real footprint past the configured bound.
const entryOverhead = 128

// entry is one cached decoded chunk. Immutable once published: ids,
// vecs, dims and bytes never change after insert; refs, evicted and
// freed manage the zero-copy handout (see the package comment).
type entry struct {
	key  uint64
	ids  []descriptor.ID
	vecs []float32
	dims int

	bytes int64 // budget charge: cap(ids)·4 + cap(vecs)·4 + entryOverhead

	// refs counts live handouts. Pinning happens under the stripe lock
	// (only reachable entries are pinned); unpinning is lock-free until
	// the count hits zero on an evicted entry, which takes the stripe
	// lock to move the buffers to the freelist.
	refs atomic.Int32
	// evicted and freed are guarded by the stripe lock: evicted marks the
	// entry as removed from the map (bytes already subtracted), freed
	// that its buffers were handed to the freelist.
	evicted bool
	freed   bool

	s          *stripe
	prev, next *entry // LRU list links; nil when evicted
	free       *entry // freelist link
}

// Unpin implements chunkfile.Pin: it releases one handout, and recycles
// the entry's buffers once it is both evicted and unreferenced.
func (e *entry) Unpin() {
	if e.refs.Add(-1) == 0 {
		e.s.maybeRecycle(e)
	}
}

// maxFree bounds each stripe's freelist: recycled buffers beyond it are
// left to the garbage collector, so the freelist cannot hoard memory
// outside the byte budget.
const maxFree = 8

// stripe is one lock shard of the cache: a map over the stripe's
// entries, the LRU list (head = most recently used), the stripe's share
// of the byte budget, and a short freelist of evicted-and-unpinned
// entries whose buffers are reused by later inserts.
type stripe struct {
	mu        sync.Mutex
	entries   map[uint64]*entry
	head      *entry
	tail      *entry
	bytes     int64
	maxBytes  int64
	freelist  *entry
	freeCount int
}

// recycleLocked pushes e's buffers onto the freelist (or abandons them
// to the GC when the freelist is full). Caller holds the stripe lock;
// the freed flag makes recycling happen at most once.
func (s *stripe) recycleLocked(e *entry) {
	e.freed = true
	if s.freeCount >= maxFree {
		return
	}
	e.free = s.freelist
	s.freelist = e
	s.freeCount++
}

// maybeRecycle moves an evicted, unreferenced entry's buffers to the
// freelist. Racing callers are serialized by the stripe lock.
func (s *stripe) maybeRecycle(e *entry) {
	s.mu.Lock()
	if e.evicted && !e.freed && e.refs.Load() == 0 {
		s.recycleLocked(e)
	}
	s.mu.Unlock()
}

// unlink removes e from the LRU list.
func (s *stripe) unlink(e *entry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		s.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		s.tail = e.prev
	}
	e.prev, e.next = nil, nil
}

// pushFront makes e the most recently used entry.
func (s *stripe) pushFront(e *entry) {
	e.prev, e.next = nil, s.head
	if s.head != nil {
		s.head.prev = e
	}
	s.head = e
	if s.tail == nil {
		s.tail = e
	}
}

// Cache is a byte-bounded, lock-striped LRU cache of decoded chunks.
// One Cache may front many stores (NewStore assigns each CachingStore a
// distinct key namespace), which is how a shard router shares one global
// byte budget across the fleet; give each store its own Cache for a
// per-shard budget instead. Safe for concurrent use.
type Cache struct {
	stripes   [stripeCount]stripe
	maxBytes  int64
	hits      atomic.Int64
	misses    atomic.Int64
	evictions atomic.Int64
	nextID    atomic.Uint32
}

// New returns a cache bounded to roughly maxBytes of decoded rows
// (entry bookkeeping included in the accounting). The budget is split
// evenly across the lock stripes, each at least one page worth, so a
// tiny budget still caches something per stripe. maxBytes must be
// positive; callers gate "cache disabled" by not constructing one.
func New(maxBytes int64) *Cache {
	if maxBytes < 1 {
		maxBytes = 1
	}
	c := &Cache{maxBytes: maxBytes}
	per := maxBytes / stripeCount
	if per < 1 {
		per = 1
	}
	for i := range c.stripes {
		c.stripes[i] = stripe{entries: map[uint64]*entry{}, maxBytes: per}
	}
	return c
}

// stripeFor folds the key onto a stripe. The store id occupies the high
// 32 bits and the chunk index the low 32; mixing both halves spreads
// one store's chunks and many stores' same-index chunks alike.
func (c *Cache) stripeFor(key uint64) *stripe {
	h := key * 0x9e3779b97f4a7c15
	return &c.stripes[(h>>32)&(stripeCount-1)]
}

// get returns the entry under key pinned (refcount raised) and promoted
// to its stripe's LRU front, or nil on a miss. The caller owns one
// Unpin.
func (c *Cache) get(key uint64) *entry {
	s := c.stripeFor(key)
	s.mu.Lock()
	e := s.entries[key]
	if e == nil {
		s.mu.Unlock()
		c.misses.Add(1)
		return nil
	}
	e.refs.Add(1)
	s.unlink(e)
	s.pushFront(e)
	s.mu.Unlock()
	c.hits.Add(1)
	return e
}

// insert publishes a copy of the decoded rows under key, evicting from
// the stripe's LRU tail until the entry fits. If a racing insert
// published the key first, the copy is discarded (first insert wins);
// entries larger than the stripe's whole budget are not cached — either
// way the caller keeps serving its own decode.
func (c *Cache) insert(key uint64, ids []descriptor.ID, vecs []float32, dims int) {
	s := c.stripeFor(key)

	// Reuse an evicted entry's buffers when one is free; fill outside the
	// lock so a large copy never blocks the stripe.
	s.mu.Lock()
	e := s.freelist
	if e != nil {
		s.freelist = e.free
		s.freeCount--
		e.free = nil
		e.freed = false
		e.evicted = false
	}
	s.mu.Unlock()
	if e == nil {
		e = &entry{s: s}
	}
	if cap(e.ids) < len(ids) {
		e.ids = make([]descriptor.ID, len(ids))
	}
	e.ids = e.ids[:len(ids)]
	copy(e.ids, ids)
	if cap(e.vecs) < len(vecs) {
		e.vecs = make([]float32, len(vecs))
	}
	e.vecs = e.vecs[:len(vecs)]
	copy(e.vecs, vecs)
	e.key = key
	e.dims = dims
	e.bytes = int64(cap(e.ids))*4 + int64(cap(e.vecs))*4 + entryOverhead
	e.refs.Store(0)

	s.mu.Lock()
	switch {
	case s.entries[key] != nil:
		// Lost the insert race: the published copy is identical, keep it.
		s.recycleLocked(e)
	case e.bytes > s.maxBytes:
		// Larger than the stripe's whole budget: caching it would evict
		// everything for one entry that can never be afforded. Dropped
		// without freelisting so the oversized buffers don't linger.
		e.freed = true
	default:
		for s.bytes+e.bytes > s.maxBytes && s.tail != nil {
			c.evictLocked(s, s.tail)
		}
		s.entries[key] = e
		s.pushFront(e)
		s.bytes += e.bytes
	}
	s.mu.Unlock()
}

// evictLocked removes e from the stripe's map and LRU list and subtracts
// its bytes; the buffers go to the freelist now if unpinned, else when
// the last Unpin lands. Caller holds the stripe lock.
func (c *Cache) evictLocked(s *stripe, e *entry) {
	delete(s.entries, e.key)
	s.unlink(e)
	s.bytes -= e.bytes
	e.evicted = true
	c.evictions.Add(1)
	if e.refs.Load() == 0 && !e.freed {
		s.recycleLocked(e)
	}
}

// invalidateStore drops every entry of the given store id from the
// cache, honoring the refcount discipline (pinned rows stay intact until
// unpinned). The recovery hook: after a dead store is revived — possibly
// with different bytes on the replaced disk — its cached rows must not
// be served again.
func (c *Cache) invalidateStore(id uint32) {
	prefix := uint64(id) << 32
	for i := range c.stripes {
		s := &c.stripes[i]
		s.mu.Lock()
		for key, e := range s.entries {
			if key&^uint64(0xffffffff) == prefix {
				c.evictLocked(s, e)
			}
		}
		s.mu.Unlock()
	}
}

// Stats is a point-in-time snapshot of cache effectiveness and
// occupancy. CachingStore.Stats scopes Hits/Misses to one store;
// Cache.Stats aggregates them over every store sharing the cache.
type Stats struct {
	// Enabled distinguishes a zero Stats from "no cache configured" at
	// surfaces where the cache is optional (facade, /metrics).
	Enabled bool
	// Hits and Misses count ReadChunk lookups.
	Hits   int64
	Misses int64
	// Evictions counts entries pushed out by the byte budget (including
	// invalidations).
	Evictions int64
	// Bytes and MaxBytes are current occupancy and the configured bound;
	// Entries is the live entry count.
	Bytes    int64
	MaxBytes int64
	Entries  int
}

// Stats returns the cache-wide counters and occupancy.
func (c *Cache) Stats() Stats {
	st := Stats{
		Enabled:   true,
		Hits:      c.hits.Load(),
		Misses:    c.misses.Load(),
		Evictions: c.evictions.Load(),
		MaxBytes:  c.maxBytes,
	}
	for i := range c.stripes {
		s := &c.stripes[i]
		s.mu.Lock()
		st.Bytes += s.bytes
		st.Entries += len(s.entries)
		s.mu.Unlock()
	}
	return st
}

// CachingStore fronts an inner chunkfile.Store with a Cache. It
// satisfies the Store interface and contract: concurrent ReadChunk with
// distinct Data values is safe, and handed-out rows follow the
// documented ownership rule (valid until the next ReadChunk into the
// same Data, pinned so eviction never frees them early). Hits alias
// cached rows zero-copy and never consult the inner store — a faulty
// inner store (faultstore) is not even probed on a hit; misses read
// through, populate the cache, and report the inner store's rows and
// Stall unchanged, so simulated billing is identical with and without
// the cache.
type CachingStore struct {
	inner  chunkfile.Store
	cache  *Cache
	id     uint32
	hits   atomic.Int64
	misses atomic.Int64
}

var _ chunkfile.Store = (*CachingStore)(nil)

// NewStore fronts inner with cache. Each CachingStore gets a distinct
// key namespace within the cache, so one Cache can serve many stores
// under one shared byte budget.
func NewStore(inner chunkfile.Store, cache *Cache) *CachingStore {
	return &CachingStore{inner: inner, cache: cache, id: cache.nextID.Add(1)}
}

// key builds the cache key of chunk i: store id high, chunk index low.
func (s *CachingStore) key(i int) uint64 { return uint64(s.id)<<32 | uint64(uint32(i)) }

// Underlying returns the inner store the cache fronts.
func (s *CachingStore) Underlying() chunkfile.Store { return s.inner }

// Dims implements chunkfile.Store.
func (s *CachingStore) Dims() int { return s.inner.Dims() }

// Meta implements chunkfile.Store: chunk metadata is served by the inner
// store (it is in-memory there, not a disk read).
func (s *CachingStore) Meta() []chunkfile.Meta { return s.inner.Meta() }

// ReadChunk implements chunkfile.Store. A hit aliases the cached rows
// into data zero-copy (pinning them until the next read into data) with
// Stall zero — the hit performed no attempts to bill. A miss delegates
// to the inner store and, on success, copies the decoded rows into the
// cache for future hits; data keeps the inner read's rows and Stall.
func (s *CachingStore) ReadChunk(i int, data *chunkfile.Data) error {
	if i < 0 || i >= len(s.inner.Meta()) {
		return chunkfile.ErrChunkOOB
	}
	key := s.key(i)
	if e := s.cache.get(key); e != nil {
		s.hits.Add(1)
		data.Alias(e.ids, e.vecs, e.dims, e)
		data.Stall = 0
		return nil
	}
	s.misses.Add(1)
	if err := s.inner.ReadChunk(i, data); err != nil {
		return err
	}
	s.cache.insert(key, data.IDs, data.Vecs, s.inner.Dims())
	return nil
}

// Invalidate drops this store's entries from the cache (pinned rows stay
// intact until their scans unpin them). Call after the inner store's
// contents may have changed — a revived shard whose disk was replaced.
func (s *CachingStore) Invalidate() { s.cache.invalidateStore(s.id) }

// Stats returns this store's own hit/miss counters combined with the
// shared cache's occupancy and eviction counts.
func (s *CachingStore) Stats() Stats {
	st := s.cache.Stats()
	st.Hits = s.hits.Load()
	st.Misses = s.misses.Load()
	return st
}

// Close invalidates this store's entries and closes the inner store.
func (s *CachingStore) Close() error {
	s.Invalidate()
	return s.inner.Close()
}
