package chunkcache

import (
	"errors"
	"fmt"
	"math/rand"
	"path/filepath"
	"sync"
	"testing"

	"repro/internal/chunkfile"
	"repro/internal/cluster"
	"repro/internal/descriptor"
	"repro/internal/faultstore"
	"repro/internal/vec"
)

// makeStores builds a small collection clustered into chunks and returns
// a MemStore plus a FileStore over the identical layout.
func makeStores(t testing.TB, n, chunks int) (*chunkfile.MemStore, *chunkfile.FileStore) {
	t.Helper()
	r := rand.New(rand.NewSource(42))
	coll := descriptor.NewCollection(vec.Dims, n)
	v := make(vec.Vector, vec.Dims)
	for i := 0; i < n; i++ {
		for d := range v {
			v[d] = float32(r.NormFloat64() * 10)
		}
		coll.Append(descriptor.ID(1000+i), v)
	}
	members := make([][]int, chunks)
	for i := 0; i < n; i++ {
		members[i%chunks] = append(members[i%chunks], i)
	}
	cs := make([]*cluster.Cluster, chunks)
	for i := range cs {
		cs[i] = cluster.NewFromMembers(coll, members[i])
	}
	mem := chunkfile.NewMemStore(coll, cs, 4096)
	dir := t.TempDir()
	cp, ip := filepath.Join(dir, "c.chunk"), filepath.Join(dir, "c.idx")
	if err := chunkfile.Write(coll, cs, cp, ip, 4096); err != nil {
		t.Fatal(err)
	}
	fs, err := chunkfile.Open(cp, ip)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { fs.Close() })
	return mem, fs
}

// readSum reads chunk i and folds its rows into a checksum.
func readSum(t testing.TB, st chunkfile.Store, i int, data *chunkfile.Data) float64 {
	t.Helper()
	if err := st.ReadChunk(i, data); err != nil {
		t.Fatalf("ReadChunk(%d): %v", i, err)
	}
	return sumRows(data)
}

func sumRows(data *chunkfile.Data) float64 {
	s := 0.0
	for _, id := range data.IDs {
		s += float64(id)
	}
	for _, x := range data.Vecs {
		s += float64(x)
	}
	return s
}

// TestCachingStoreEquivalence pins that a CachingStore returns rows
// byte-identical to the store it fronts, on both plain store kinds, on
// both the miss and the hit path.
func TestCachingStoreEquivalence(t *testing.T) {
	mem, fs := makeStores(t, 300, 7)
	for name, inner := range map[string]chunkfile.Store{"mem": mem, "file": fs} {
		t.Run(name, func(t *testing.T) {
			cs := NewStore(inner, New(1<<20))
			var want, got chunkfile.Data
			for pass := 0; pass < 2; pass++ { // pass 0 misses, pass 1 hits
				for i := range inner.Meta() {
					if err := inner.ReadChunk(i, &want); err != nil {
						t.Fatal(err)
					}
					if err := cs.ReadChunk(i, &got); err != nil {
						t.Fatal(err)
					}
					if len(got.IDs) != len(want.IDs) || len(got.Vecs) != len(want.Vecs) {
						t.Fatalf("pass %d chunk %d: shape (%d,%d) != (%d,%d)",
							pass, i, len(got.IDs), len(got.Vecs), len(want.IDs), len(want.Vecs))
					}
					for j := range want.IDs {
						if got.IDs[j] != want.IDs[j] {
							t.Fatalf("pass %d chunk %d: id[%d] %d != %d", pass, i, j, got.IDs[j], want.IDs[j])
						}
					}
					for j := range want.Vecs {
						if got.Vecs[j] != want.Vecs[j] {
							t.Fatalf("pass %d chunk %d: vec[%d] %v != %v", pass, i, j, got.Vecs[j], want.Vecs[j])
						}
					}
					if got.Stall != 0 {
						t.Fatalf("pass %d chunk %d: stall %v on a clean read", pass, i, got.Stall)
					}
				}
			}
			st := cs.Stats()
			n := int64(len(inner.Meta()))
			if st.Hits != n || st.Misses != n {
				t.Fatalf("stats hits=%d misses=%d, want %d each", st.Hits, st.Misses, n)
			}
			got.Release()
			want.Release()
		})
	}
}

// TestCacheHitIsZeroCopy pins the zero-copy handout: two Datas that hit
// the same cached chunk alias the same backing arrays.
func TestCacheHitIsZeroCopy(t *testing.T) {
	mem, _ := makeStores(t, 120, 3)
	cs := NewStore(mem, New(1<<20))
	var a, b chunkfile.Data
	if err := cs.ReadChunk(1, &a); err != nil { // miss fills the cache
		t.Fatal(err)
	}
	if err := cs.ReadChunk(1, &a); err != nil { // hit aliases the entry
		t.Fatal(err)
	}
	if err := cs.ReadChunk(1, &b); err != nil {
		t.Fatal(err)
	}
	if &a.Vecs[0] != &b.Vecs[0] || &a.IDs[0] != &b.IDs[0] {
		t.Fatal("two hits on the same chunk returned distinct backing arrays; handout is copying")
	}
	a.Release()
	b.Release()
}

// TestCacheBudgetAndEviction pins the byte bound: occupancy never
// exceeds the configured budget, evictions happen, and an evicted chunk
// misses on re-read.
func TestCacheBudgetAndEviction(t *testing.T) {
	mem, _ := makeStores(t, 600, 12)
	per := int64(0)
	var data chunkfile.Data
	if err := mem.ReadChunk(0, &data); err != nil {
		t.Fatal(err)
	}
	per = int64(len(data.IDs))*4 + int64(len(data.Vecs))*4 + entryOverhead
	// Room for ~1.5 chunks per stripe: stripes where several of the 12
	// chunks collide must churn.
	c := New(stripeCount * per * 3 / 2)
	cs := NewStore(mem, c)
	for round := 0; round < 3; round++ {
		for i := range mem.Meta() {
			if err := cs.ReadChunk(i, &data); err != nil {
				t.Fatal(err)
			}
			if st := c.Stats(); st.Bytes > st.MaxBytes {
				t.Fatalf("occupancy %d exceeds budget %d", st.Bytes, st.MaxBytes)
			}
		}
	}
	st := c.Stats()
	if st.Evictions == 0 {
		t.Fatal("no evictions under a budget smaller than the working set")
	}
	if st.Hits+st.Misses != 3*int64(len(mem.Meta())) {
		t.Fatalf("hits %d + misses %d != reads %d", st.Hits, st.Misses, 3*len(mem.Meta()))
	}
	data.Release()
}

// TestEvictionNeverFreesPinnedRows is the refcount discipline test: a
// Data holding a pinned entry keeps its rows intact across eviction and
// heavy churn; the buffers are recycled only after Release.
func TestEvictionNeverFreesPinnedRows(t *testing.T) {
	mem, _ := makeStores(t, 400, 8)
	var probe chunkfile.Data
	want := readSum(t, mem, 0, &probe)

	// A cache with room for barely one chunk per stripe: every insert
	// evicts.
	c := New(int64(stripeCount) * 8 * 1024)
	cs := NewStore(mem, c)

	var held chunkfile.Data
	if err := cs.ReadChunk(0, &held); err != nil { // miss: fill
		t.Fatal(err)
	}
	if err := cs.ReadChunk(0, &held); err != nil { // hit: pin
		t.Fatal(err)
	}
	heldVecs := &held.Vecs[0]

	// Churn every other chunk through the cache repeatedly, forcing the
	// held entry out and recycling buffers many times over.
	var churn chunkfile.Data
	for round := 0; round < 50; round++ {
		for i := 1; i < len(mem.Meta()); i++ {
			if err := cs.ReadChunk(i, &churn); err != nil {
				t.Fatal(err)
			}
		}
	}
	churn.Release()

	if got := sumRows(&held); got != want {
		t.Fatalf("pinned rows changed under churn: sum %v != %v", got, want)
	}
	if &held.Vecs[0] != heldVecs {
		t.Fatal("held Data rebound its rows")
	}
	held.Release()
}

// TestInvalidateDropsEntries pins that Invalidate makes every cached
// chunk of the store miss again and re-consult the inner store.
func TestInvalidateDropsEntries(t *testing.T) {
	mem, _ := makeStores(t, 200, 5)
	inner := faultstore.Wrap(mem, faultstore.Config{})
	cs := NewStore(inner, New(1<<20))
	var data chunkfile.Data
	for i := range mem.Meta() {
		if err := cs.ReadChunk(i, &data); err != nil {
			t.Fatal(err)
		}
	}
	before := inner.Reads()
	for i := range mem.Meta() {
		if err := cs.ReadChunk(i, &data); err != nil {
			t.Fatal(err)
		}
	}
	if inner.Reads() != before {
		t.Fatalf("hits consulted the inner store: %d reads, want %d", inner.Reads(), before)
	}
	cs.Invalidate()
	for i := range mem.Meta() {
		if err := cs.ReadChunk(i, &data); err != nil {
			t.Fatal(err)
		}
	}
	if got := inner.Reads(); got != before+int64(len(mem.Meta())) {
		t.Fatalf("after Invalidate inner saw %d reads, want %d", got, before+int64(len(mem.Meta())))
	}
	data.Release()
}

// TestFaultstoreComposition is the fault-tolerance satellite: a cached
// hit never consults the (possibly faulty) inner store, a dead store
// still serves its cached chunks, and a death/Revive cycle followed by
// Invalidate serves fresh rows rather than stale ones.
func TestFaultstoreComposition(t *testing.T) {
	mem, _ := makeStores(t, 200, 5)
	fake := faultstore.Wrap(mem, faultstore.Config{})
	cs := NewStore(fake, New(1<<20))
	var data chunkfile.Data

	// Warm chunk 0 and 1 only.
	for _, i := range []int{0, 1} {
		if err := cs.ReadChunk(i, &data); err != nil {
			t.Fatal(err)
		}
	}

	fake.Kill()
	// Cached chunks still serve, without touching the dead store.
	before := fake.Reads()
	if err := cs.ReadChunk(0, &data); err != nil {
		t.Fatalf("cached chunk after Kill: %v", err)
	}
	if fake.Reads() != before {
		t.Fatal("cache hit consulted the dead inner store")
	}
	// Uncached chunks surface the death.
	if err := cs.ReadChunk(3, &data); !errors.Is(err, faultstore.ErrDead) {
		t.Fatalf("uncached chunk after Kill: err=%v, want ErrDead", err)
	}

	// Revive models the operator replacing the disk: stale rows must not
	// survive the cycle once the recovery path invalidates.
	fake.Revive()
	cs.Invalidate()
	reads := fake.Reads()
	if err := cs.ReadChunk(0, &data); err != nil {
		t.Fatal(err)
	}
	if fake.Reads() != reads+1 {
		t.Fatal("read after Revive+Invalidate did not re-consult the inner store")
	}
	data.Release()
}

// TestOversizedChunkIsNotCached pins that a chunk larger than a whole
// stripe budget passes through uncached instead of wiping the stripe.
func TestOversizedChunkIsNotCached(t *testing.T) {
	mem, _ := makeStores(t, 300, 2)
	c := New(stripeCount * 256) // 256-byte stripes, far below one chunk
	cs := NewStore(mem, c)
	var data chunkfile.Data
	for pass := 0; pass < 2; pass++ {
		for i := range mem.Meta() {
			if err := cs.ReadChunk(i, &data); err != nil {
				t.Fatal(err)
			}
		}
	}
	st := c.Stats()
	if st.Entries != 0 || st.Bytes != 0 {
		t.Fatalf("oversized chunks were cached: %d entries, %d bytes", st.Entries, st.Bytes)
	}
	if st.Hits != 0 {
		t.Fatalf("phantom hits on an empty cache: %d", st.Hits)
	}
	data.Release()
}

// TestCacheOOB pins the out-of-range contract of the Store interface.
func TestCacheOOB(t *testing.T) {
	mem, _ := makeStores(t, 100, 2)
	cs := NewStore(mem, New(1<<20))
	var data chunkfile.Data
	if err := cs.ReadChunk(-1, &data); !errors.Is(err, chunkfile.ErrChunkOOB) {
		t.Fatalf("ReadChunk(-1) = %v, want ErrChunkOOB", err)
	}
	if err := cs.ReadChunk(2, &data); !errors.Is(err, chunkfile.ErrChunkOOB) {
		t.Fatalf("ReadChunk(2) = %v, want ErrChunkOOB", err)
	}
}

// TestCacheConcurrentStress is the -race stress of the tentpole: many
// goroutines issue mixed hit/miss reads against one CachingStore over a
// budget far smaller than the working set (constant eviction and buffer
// recycling), with concurrent invalidations, on both store kinds. Every
// read's rows must checksum to the chunk's true value — eviction must
// never free or reuse rows a reader still holds.
func TestCacheConcurrentStress(t *testing.T) {
	mem, fs := makeStores(t, 960, 24)

	// Ground truth per chunk.
	var truth []float64
	var data chunkfile.Data
	for i := range mem.Meta() {
		truth = append(truth, readSum(t, mem, i, &data))
	}

	for name, inner := range map[string]chunkfile.Store{"mem": mem, "file": fs} {
		t.Run(name, func(t *testing.T) {
			cs := NewStore(inner, New(int64(stripeCount)*20*1024))
			const goroutines = 8
			const reads = 400
			var wg sync.WaitGroup
			errs := make([]error, goroutines)
			for g := 0; g < goroutines; g++ {
				wg.Add(1)
				go func(g int) {
					defer wg.Done()
					r := rand.New(rand.NewSource(int64(g)))
					var d chunkfile.Data
					defer d.Release()
					for n := 0; n < reads; n++ {
						// Zipf-ish skew: half the reads hammer chunk 0-3.
						i := r.Intn(len(truth))
						if r.Intn(2) == 0 {
							i = r.Intn(4)
						}
						if err := cs.ReadChunk(i, &d); err != nil {
							errs[g] = fmt.Errorf("read %d chunk %d: %w", n, i, err)
							return
						}
						if got := sumRows(&d); got != truth[i] {
							errs[g] = fmt.Errorf("read %d chunk %d: sum %v != %v (rows corrupted)", n, i, got, truth[i])
							return
						}
						if n%97 == 0 && g == 0 {
							cs.Invalidate()
						}
					}
				}(g)
			}
			wg.Wait()
			for _, err := range errs {
				if err != nil {
					t.Fatal(err)
				}
			}
			st := cs.Stats()
			if st.Hits == 0 || st.Misses == 0 || st.Evictions == 0 {
				t.Fatalf("stress exercised too little: %+v", st)
			}
		})
	}
}
