package imagegen

import (
	"math"
	"sort"
	"testing"

	"repro/internal/vec"
)

func TestGenerateShape(t *testing.T) {
	cfg := DefaultConfig(10000, 1)
	ds := MustGenerate(cfg)
	n := ds.Collection.Len()
	if n < 5000 || n > 15000 {
		t.Fatalf("generated %d descriptors, want ~10000", n)
	}
	if ds.Collection.Dims() != vec.Dims {
		t.Fatalf("dims = %d", ds.Collection.Dims())
	}
	if len(ds.ModeOf) != n {
		t.Fatalf("ModeOf len %d != %d", len(ds.ModeOf), n)
	}
}

func TestDeterminism(t *testing.T) {
	a := MustGenerate(DefaultConfig(3000, 99))
	b := MustGenerate(DefaultConfig(3000, 99))
	if a.Collection.Len() != b.Collection.Len() {
		t.Fatalf("lengths differ: %d vs %d", a.Collection.Len(), b.Collection.Len())
	}
	for i := 0; i < a.Collection.Len(); i++ {
		if a.Collection.IDAt(i) != b.Collection.IDAt(i) {
			t.Fatalf("ids differ at %d", i)
		}
		if !vec.Equal(a.Collection.Vec(i), b.Collection.Vec(i)) {
			t.Fatalf("vectors differ at %d", i)
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	a := MustGenerate(DefaultConfig(2000, 1))
	b := MustGenerate(DefaultConfig(2000, 2))
	same := a.Collection.Len() == b.Collection.Len()
	if same {
		identical := true
		for i := 0; i < a.Collection.Len() && identical; i++ {
			identical = vec.Equal(a.Collection.Vec(i), b.Collection.Vec(i))
		}
		if identical {
			t.Fatal("different seeds produced identical collections")
		}
	}
}

// The mode popularity must be heavily skewed: the paper's BAG indexes have
// single chunks holding 10-20% of the whole collection (Fig. 1), which only
// happens when natural modes are that large.
func TestZipfSkew(t *testing.T) {
	ds := MustGenerate(DefaultConfig(50000, 3))
	hist := ds.ModeHistogram()
	sort.Sort(sort.Reverse(sort.IntSlice(hist)))
	total := 0
	for _, h := range hist {
		total += h
	}
	if total == 0 {
		t.Fatal("no mode descriptors at all")
	}
	top := float64(hist[0]) / float64(total)
	if top < 0.05 || top > 0.60 {
		t.Fatalf("largest mode holds %.1f%% of descriptors, want 5-60%%", top*100)
	}
	// The tail must still be populated: many small modes.
	nonEmpty := 0
	for _, h := range hist {
		if h > 0 {
			nonEmpty++
		}
	}
	if nonEmpty < 50 {
		t.Fatalf("only %d modes populated, want a long tail", nonEmpty)
	}
}

func TestNoiseFraction(t *testing.T) {
	cfg := DefaultConfig(40000, 4)
	ds := MustGenerate(cfg)
	frac := float64(ds.NoiseCount()) / float64(ds.Collection.Len())
	want := cfg.NoiseFraction + cfg.ScatterFraction
	if math.Abs(frac-want) > 0.02 {
		t.Fatalf("noise fraction %.3f, want ~%.3f", frac, want)
	}
}

// Descriptors of the same mode must be much closer together than
// descriptors of different modes — otherwise DQ queries would have no
// meaningful true neighbors.
func TestIntraModeTighterThanInterMode(t *testing.T) {
	ds := MustGenerate(DefaultConfig(20000, 5))
	byMode := map[int][]int{}
	for i, m := range ds.ModeOf {
		if m >= 0 {
			byMode[m] = append(byMode[m], i)
		}
	}
	var intra, inter []float64
	var prevMode, prevIdx = -1, -1
	for m, idxs := range byMode {
		if len(idxs) >= 2 {
			intra = append(intra, vec.Distance(ds.Collection.Vec(idxs[0]), ds.Collection.Vec(idxs[1])))
		}
		if prevMode >= 0 && prevMode != m {
			inter = append(inter, vec.Distance(ds.Collection.Vec(idxs[0]), ds.Collection.Vec(prevIdx)))
		}
		prevMode, prevIdx = m, idxs[0]
		if len(intra) > 30 && len(inter) > 30 {
			break
		}
	}
	if len(intra) < 5 || len(inter) < 5 {
		t.Skip("not enough mode pairs sampled")
	}
	mean := func(xs []float64) float64 {
		s := 0.0
		for _, x := range xs {
			s += x
		}
		return s / float64(len(xs))
	}
	mi, me := mean(intra), mean(inter)
	if mi*3 > me {
		t.Fatalf("intra-mode mean %.1f not well below inter-mode mean %.1f", mi, me)
	}
}

func TestIDEncodesImage(t *testing.T) {
	ds := MustGenerate(DefaultConfig(5000, 6))
	c := ds.Collection
	maxImg := uint32(0)
	for i := 0; i < c.Len(); i++ {
		img := c.IDAt(i).ImageOf()
		if img > maxImg {
			maxImg = img
		}
	}
	if maxImg == 0 {
		t.Fatal("all descriptors claim image 0")
	}
}

func TestConfigValidation(t *testing.T) {
	cases := []Config{
		{},
		{Images: 1, MeanDescPerImage: 0},
		{Images: 1, MeanDescPerImage: 10, Dims: 0},
		{Images: 1, MeanDescPerImage: 10, Dims: 4, Modes: 0},
		{Images: 1, MeanDescPerImage: 10, Dims: 4, Modes: 5, ZipfS: 0.5, ZipfV: 1},
		{Images: 1, MeanDescPerImage: 10, Dims: 4, Modes: 5, ZipfS: 1.5, ZipfV: 1, NoiseFraction: 1.5},
		{Images: 1, MeanDescPerImage: 5000, Dims: 4, Modes: 5, ZipfS: 1.5, ZipfV: 1},
	}
	for i, cfg := range cases {
		if _, err := Generate(cfg); err == nil {
			t.Errorf("case %d: expected error for %+v", i, cfg)
		}
	}
}

func BenchmarkGenerate100k(b *testing.B) {
	cfg := DefaultConfig(100000, 1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Generate(cfg); err != nil {
			b.Fatal(err)
		}
	}
}
