// Package imagegen synthesizes collections of local image descriptors.
//
// The paper evaluates on 5,017,298 real 24-d local descriptors computed
// over 52,273 images (610 stills + television broadcasts). That collection
// is not available, so this package generates a statistically similar
// substitute (see DESIGN.md §2):
//
//   - A catalog of "visual elements" (modes) with Zipf-skewed popularity.
//     Real local-descriptor collections are strongly skewed: a handful of
//     generic patterns (flat regions, edges, text overlays in broadcast
//     video) dominate. This skew is what makes BAG produce a few enormous
//     clusters (paper Fig. 1: the largest chunks hold 0.5–1M descriptors).
//   - Each synthetic image holds a few hundred descriptors, each drawn
//     from some mode's Gaussian plus a small per-image jitter, so
//     descriptors of the same image (and of images sharing content) are
//     true near neighbors — the behaviour the DQ workload depends on.
//   - A NoiseFraction of descriptors is "halo" noise: drawn around a
//     random mode with HaloFactor times its spread (blur, interlacing and
//     compression artifacts in broadcast frames). They land in sparse
//     shells around the dense content and become the outliers that BAG's
//     destruction rule removes (paper Table 1: 8–12.2% outliers).
//
// Generation is deterministic given Config.Seed.
package imagegen

import (
	"fmt"
	"math/rand"

	"repro/internal/descriptor"
	"repro/internal/vec"
)

// Config controls synthesis.
type Config struct {
	Images           int     // number of synthetic images
	MeanDescPerImage int     // mean descriptors per image (paper: "few hundreds")
	Dims             int     // descriptor dimensionality (paper: 24)
	Modes            int     // size of the visual-element catalog
	Groups           int     // catalog groups; modes cluster around group centers
	ZipfS            float64 // Zipf exponent for mode popularity (>1)
	ZipfV            float64 // Zipf v parameter (>=1)
	SpaceScale       float64 // std-dev of group centers around the origin
	GroupScale       float64 // std-dev of mode centers around their group center
	SigmaMin         float64 // minimum intra-mode noise std-dev
	SigmaMax         float64 // maximum intra-mode noise std-dev
	ImageJitter      float64 // per-image offset std-dev (illumination/orientation drift)
	NoiseFraction    float64 // fraction of halo-noise descriptors
	HaloFactor       float64 // halo noise spread as a multiple of the mode spread
	ScatterFraction  float64 // fraction of uniformly scattered descriptors
	ScatterScale     float64 // scatter box half-width as a multiple of SpaceScale
	Seed             int64
}

// DefaultConfig returns a configuration that reproduces the paper's
// qualitative collection properties at the given descriptor count.
func DefaultConfig(n int, seed int64) Config {
	images := n / 100
	if images < 1 {
		images = 1
	}
	return Config{
		Images:           images,
		MeanDescPerImage: 100,
		Dims:             vec.Dims,
		Modes:            300,
		Groups:           24,
		ZipfS:            1.08,
		ZipfV:            1.3,
		SpaceScale:       150,
		GroupScale:       35,
		SigmaMin:         2.0,
		SigmaMax:         9.0,
		ImageJitter:      1.0,
		NoiseFraction:    0.10,
		HaloFactor:       6.0,
		ScatterFraction:  0.08,
		ScatterScale:     2.0,
		Seed:             seed,
	}
}

// Dataset is a generated collection plus generation provenance, which the
// tests and some experiments use as a weak form of ground truth.
type Dataset struct {
	Collection *descriptor.Collection
	// ModeOf[i] is the catalog mode that produced descriptor i, or -1 for
	// scattered noise descriptors.
	ModeOf []int
	// ModeCenters are the catalog mode centers.
	ModeCenters []vec.Vector
	// ModeSigma[i] is the noise std-dev of mode i.
	ModeSigma []float64
}

// Generate synthesizes a dataset. It returns an error for nonsensical
// configurations rather than panicking, since configs may come from flags.
func Generate(cfg Config) (*Dataset, error) {
	if cfg.Images <= 0 || cfg.MeanDescPerImage <= 0 {
		return nil, fmt.Errorf("imagegen: need positive Images and MeanDescPerImage, got %d/%d", cfg.Images, cfg.MeanDescPerImage)
	}
	if cfg.Dims <= 0 {
		return nil, fmt.Errorf("imagegen: need positive Dims, got %d", cfg.Dims)
	}
	if cfg.Modes <= 0 {
		return nil, fmt.Errorf("imagegen: need positive Modes, got %d", cfg.Modes)
	}
	if cfg.Groups <= 0 {
		return nil, fmt.Errorf("imagegen: need positive Groups, got %d", cfg.Groups)
	}
	if cfg.ZipfS <= 1 || cfg.ZipfV < 1 {
		return nil, fmt.Errorf("imagegen: Zipf parameters out of range (S=%v V=%v)", cfg.ZipfS, cfg.ZipfV)
	}
	if cfg.NoiseFraction < 0 || cfg.NoiseFraction >= 1 {
		return nil, fmt.Errorf("imagegen: NoiseFraction %v out of [0,1)", cfg.NoiseFraction)
	}
	if cfg.NoiseFraction > 0 && cfg.HaloFactor <= 1 {
		return nil, fmt.Errorf("imagegen: HaloFactor must exceed 1, got %v", cfg.HaloFactor)
	}
	if cfg.ScatterFraction < 0 || cfg.NoiseFraction+cfg.ScatterFraction >= 1 {
		return nil, fmt.Errorf("imagegen: NoiseFraction+ScatterFraction %v out of [0,1)", cfg.NoiseFraction+cfg.ScatterFraction)
	}
	if cfg.ScatterFraction > 0 && cfg.ScatterScale <= 0 {
		return nil, fmt.Errorf("imagegen: ScatterScale must be positive, got %v", cfg.ScatterScale)
	}
	if cfg.MeanDescPerImage*2 >= 1<<descriptor.DescriptorsPerImageShift {
		return nil, fmt.Errorf("imagegen: MeanDescPerImage %d too large for id encoding", cfg.MeanDescPerImage)
	}

	r := rand.New(rand.NewSource(cfg.Seed))
	zipf := rand.NewZipf(r, cfg.ZipfS, cfg.ZipfV, uint64(cfg.Modes-1))

	// Catalog of visual elements, arranged hierarchically: group centers
	// spread across the space, mode centers spread around their group.
	// Real descriptor spaces have this multi-scale density structure; it
	// is what makes agglomerative cluster counts decline smoothly instead
	// of plateauing at the number of isolated modes. Popular (low-index)
	// modes get the larger sigmas: generic background patterns are diffuse
	// as well as frequent, which is what lets BAG agglomerate them into
	// giant clusters.
	groups := make([]vec.Vector, cfg.Groups)
	for g := range groups {
		c := make(vec.Vector, cfg.Dims)
		for d := range c {
			c[d] = float32(r.NormFloat64() * cfg.SpaceScale)
		}
		groups[g] = c
	}
	centers := make([]vec.Vector, cfg.Modes)
	sigmas := make([]float64, cfg.Modes)
	for m := 0; m < cfg.Modes; m++ {
		g := groups[r.Intn(cfg.Groups)]
		c := make(vec.Vector, cfg.Dims)
		for d := range c {
			c[d] = g[d] + float32(r.NormFloat64()*cfg.GroupScale)
		}
		centers[m] = c
		frac := float64(m) / float64(cfg.Modes)
		sigmas[m] = cfg.SigmaMax - (cfg.SigmaMax-cfg.SigmaMin)*frac
	}

	expected := cfg.Images * cfg.MeanDescPerImage
	coll := descriptor.NewCollection(cfg.Dims, expected)
	modeOf := make([]int, 0, expected)

	buf := make(vec.Vector, cfg.Dims)
	jitter := make(vec.Vector, cfg.Dims)
	for img := 0; img < cfg.Images; img++ {
		// Descriptor count per image: uniform in [0.5, 1.5) × mean, at least 1.
		n := cfg.MeanDescPerImage/2 + r.Intn(cfg.MeanDescPerImage)
		if n < 1 {
			n = 1
		}
		if n >= 1<<descriptor.DescriptorsPerImageShift {
			n = 1<<descriptor.DescriptorsPerImageShift - 1
		}
		for d := range jitter {
			jitter[d] = float32(r.NormFloat64() * cfg.ImageJitter)
		}
		for k := 0; k < n; k++ {
			id := descriptor.ID(uint32(img)<<descriptor.DescriptorsPerImageShift | uint32(k))
			roll := r.Float64()
			if roll < cfg.ScatterFraction {
				// Scattered noise: sparse, far from all content, destined
				// to be declared outliers by BAG's final rule.
				half := cfg.SpaceScale * cfg.ScatterScale
				for d := range buf {
					buf[d] = float32((r.Float64()*2 - 1) * half)
				}
				coll.Append(id, buf)
				modeOf = append(modeOf, -1)
				continue
			}
			if roll < cfg.ScatterFraction+cfg.NoiseFraction {
				m := int(zipf.Uint64())
				c := centers[m]
				s := sigmas[m] * cfg.HaloFactor
				for d := range buf {
					buf[d] = c[d] + float32(r.NormFloat64()*s)
				}
				coll.Append(id, buf)
				modeOf = append(modeOf, -1)
				continue
			}
			m := int(zipf.Uint64())
			c := centers[m]
			s := sigmas[m]
			for d := range buf {
				buf[d] = c[d] + jitter[d] + float32(r.NormFloat64()*s)
			}
			coll.Append(id, buf)
			modeOf = append(modeOf, m)
		}
	}

	return &Dataset{
		Collection:  coll,
		ModeOf:      modeOf,
		ModeCenters: centers,
		ModeSigma:   sigmas,
	}, nil
}

// MustGenerate is Generate for tests and examples with known-good configs.
func MustGenerate(cfg Config) *Dataset {
	ds, err := Generate(cfg)
	if err != nil {
		panic(err)
	}
	return ds
}

// ModeHistogram returns how many descriptors each mode received; index
// len(hist)-1... noise descriptors are not counted.
func (d *Dataset) ModeHistogram() []int {
	hist := make([]int, len(d.ModeCenters))
	for _, m := range d.ModeOf {
		if m >= 0 {
			hist[m]++
		}
	}
	return hist
}

// NoiseCount returns the number of scattered (mode-less) descriptors.
func (d *Dataset) NoiseCount() int {
	n := 0
	for _, m := range d.ModeOf {
		if m < 0 {
			n++
		}
	}
	return n
}
