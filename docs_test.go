package repro

import (
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// parseDir parses every non-test Go file of one directory.
func parseDir(t *testing.T, dir string) map[string]*ast.File {
	t.Helper()
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi os.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	files := map[string]*ast.File{}
	for _, pkg := range pkgs {
		for name, f := range pkg.Files {
			files[filepath.Base(name)] = f
		}
	}
	return files
}

// exportedDecls returns the exported top-level identifiers declared in
// the files (types, funcs, methods, consts, vars) and whether each
// declaration carries a doc comment. Methods are keyed Recv.Name.
func exportedDecls(files map[string]*ast.File, only func(filename string) bool) map[string]bool {
	decls := map[string]bool{}
	for name, f := range files {
		if only != nil && !only(name) {
			continue
		}
		for _, decl := range f.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				if !d.Name.IsExported() {
					continue
				}
				key := d.Name.Name
				if d.Recv != nil && len(d.Recv.List) > 0 {
					recv := d.Recv.List[0].Type
					if star, ok := recv.(*ast.StarExpr); ok {
						recv = star.X
					}
					if id, ok := recv.(*ast.Ident); ok {
						if !id.IsExported() {
							continue
						}
						key = id.Name + "." + key
					}
				}
				decls[key] = d.Doc != nil
			case *ast.GenDecl:
				for _, spec := range d.Specs {
					switch s := spec.(type) {
					case *ast.TypeSpec:
						if s.Name.IsExported() {
							decls[s.Name.Name] = s.Doc != nil || (len(d.Specs) == 1 && d.Doc != nil)
						}
					case *ast.ValueSpec:
						for _, n := range s.Names {
							if n.IsExported() {
								decls[n.Name] = s.Doc != nil || (len(d.Specs) == 1 && d.Doc != nil)
							}
						}
					}
				}
			}
		}
	}
	return decls
}

// TestDocsIdentifiersExist is the docs gate half one: every repro.Xxx
// identifier mentioned in README.md or DESIGN.md must exist in the
// package, and every internal/... package path mentioned must be a real
// directory — so the prose cannot drift from the code.
func TestDocsIdentifiersExist(t *testing.T) {
	decls := exportedDecls(parseDir(t, "."), nil)

	identRe := regexp.MustCompile(`\brepro\.([A-Z][A-Za-z0-9]*)`)
	pathRe := regexp.MustCompile(`\binternal/[a-z][a-z0-9_/]*(?:\.go)?`)
	for _, doc := range []string{"README.md", "DESIGN.md"} {
		data, err := os.ReadFile(doc)
		if err != nil {
			t.Fatal(err)
		}
		text := string(data)
		for _, m := range identRe.FindAllStringSubmatch(text, -1) {
			if _, ok := decls[m[1]]; !ok {
				t.Errorf("%s mentions repro.%s, which is not declared in package repro", doc, m[1])
			}
		}
		for _, p := range pathRe.FindAllString(text, -1) {
			p = strings.TrimSuffix(p, "/")
			st, err := os.Stat(p)
			switch {
			case strings.HasSuffix(p, ".go"):
				if err != nil || st.IsDir() {
					t.Errorf("%s mentions %s, which is not a source file", doc, p)
				}
			default:
				if err != nil || !st.IsDir() {
					t.Errorf("%s mentions %s, which is not a package directory", doc, p)
				}
			}
		}
	}

	// Spot-check that the load-bearing names of this PR are really seen
	// (guards against the regexes silently matching nothing).
	for _, want := range []string{"SearchOptions", "ShardedIndex", "BuildConfig"} {
		if _, ok := decls[want]; !ok {
			t.Fatalf("sanity: %s not found among package decls", want)
		}
	}
}

// TestDocsGodocCoverage is the docs gate half two: every exported
// identifier of the facade files (repro.go, sharded.go, batch.go,
// cache.go) and of internal/shard, internal/server,
// internal/chunkcache, and internal/search/batchexec carries a doc
// comment, so the cost-model and ownership contracts stay stated at
// the declaration.
func TestDocsGodocCoverage(t *testing.T) {
	check := func(label string, decls map[string]bool) {
		for name, hasDoc := range decls {
			if !hasDoc {
				t.Errorf("%s: exported %s has no doc comment", label, name)
			}
		}
	}
	facade := func(name string) bool {
		return name == "repro.go" || name == "sharded.go" || name == "batch.go" || name == "cache.go"
	}
	check("package repro", exportedDecls(parseDir(t, "."), facade))
	check("internal/shard", exportedDecls(parseDir(t, filepath.Join("internal", "shard")), nil))
	check("internal/server", exportedDecls(parseDir(t, filepath.Join("internal", "server")), nil))
	check("internal/chunkcache", exportedDecls(parseDir(t, filepath.Join("internal", "chunkcache")), nil))
	check("internal/search/batchexec", exportedDecls(parseDir(t, filepath.Join("internal", "search", "batchexec")), nil))
}
