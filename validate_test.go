package repro

import (
	"strings"
	"testing"
	"time"
)

// TestSearchOptionsValidation pins the facade boundary's option
// validation: malformed options are reported as diagnostic errors from
// every search entry point — unsharded and sharded, single, batch, and
// multi-descriptor — instead of being silently clamped.
func TestSearchOptionsValidation(t *testing.T) {
	coll := GenerateCollection(800, 7)
	ix, err := Build(coll, BuildConfig{Strategy: StrategySRTree, ChunkSize: 200})
	if err != nil {
		t.Fatal(err)
	}
	defer ix.Close()
	sx, err := BuildSharded(coll, BuildConfig{Strategy: StrategySRTree, ChunkSize: 200}, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer sx.Close()
	q := coll.Vec(0)

	bad := []struct {
		name string
		opts SearchOptions
		want string // substring of the error
	}{
		{"negative K", SearchOptions{K: -1}, "K -1 is negative"},
		{"negative MaxChunks", SearchOptions{MaxChunks: -2}, "MaxChunks -2 is negative"},
		{"negative MaxTime", SearchOptions{MaxTime: -time.Second}, "MaxTime -1s is negative"},
		{"conflicting stop rules", SearchOptions{MaxChunks: 3, MaxTime: time.Second}, "conflicting stop rules"},
	}
	for _, tc := range bad {
		t.Run(tc.name, func(t *testing.T) {
			entry := []struct {
				name string
				call func() error
			}{
				{"Index.Search", func() error { _, err := ix.Search(q, tc.opts); return err }},
				{"Index.SearchInto", func() error { var r Result; return ix.SearchInto(q, tc.opts, &r) }},
				{"Index.SearchBatchInto", func() error {
					res := make([]Result, 1)
					return ix.SearchBatchInto([]Vector{q}, BatchOptions{SearchOptions: tc.opts}, res)
				}},
				{"ShardedIndex.Search", func() error { _, err := sx.Search(q, tc.opts); return err }},
				{"ShardedIndex.SearchInto", func() error { var r Result; return sx.SearchInto(q, tc.opts, &r) }},
				{"ShardedIndex.SearchBatchInto", func() error {
					res := make([]Result, 1)
					return sx.SearchBatchInto([]Vector{q}, BatchOptions{SearchOptions: tc.opts}, res)
				}},
			}
			for _, e := range entry {
				err := e.call()
				if err == nil {
					t.Errorf("%s(%+v) = nil, want error containing %q", e.name, tc.opts, tc.want)
					continue
				}
				if !strings.Contains(err.Error(), tc.want) {
					t.Errorf("%s(%+v) = %q, want substring %q", e.name, tc.opts, err, tc.want)
				}
			}
		})
	}

	// Zero values are the documented defaults, not errors.
	if _, err := ix.Search(q, SearchOptions{}); err != nil {
		t.Errorf("Index.Search with zero options: %v", err)
	}
	if _, err := sx.Search(q, SearchOptions{}); err != nil {
		t.Errorf("ShardedIndex.Search with zero options: %v", err)
	}
}

// TestMultiSearchOptionsValidation does the same for the
// multi-descriptor entry points.
func TestMultiSearchOptionsValidation(t *testing.T) {
	coll := GenerateCollection(800, 9)
	ix, err := Build(coll, BuildConfig{Strategy: StrategySRTree, ChunkSize: 200})
	if err != nil {
		t.Fatal(err)
	}
	defer ix.Close()
	sx, err := BuildSharded(coll, BuildConfig{Strategy: StrategySRTree, ChunkSize: 200}, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer sx.Close()
	ds := []Vector{coll.Vec(0), coll.Vec(1)}

	bad := []struct {
		name string
		opts MultiSearchOptions
		want string
	}{
		{"negative K", MultiSearchOptions{K: -4}, "K -4 is negative"},
		{"negative MaxChunks", MultiSearchOptions{MaxChunks: -1}, "MaxChunks -1 is negative"},
	}
	for _, tc := range bad {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := ix.MultiSearch(ds, tc.opts); err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Errorf("Index.MultiSearch(%+v) = %v, want substring %q", tc.opts, err, tc.want)
			}
			if _, err := sx.MultiSearch(ds, tc.opts); err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Errorf("ShardedIndex.MultiSearch(%+v) = %v, want substring %q", tc.opts, err, tc.want)
			}
		})
	}
	if _, err := ix.MultiSearch(ds, MultiSearchOptions{}); err != nil {
		t.Errorf("Index.MultiSearch with zero options: %v", err)
	}
}
