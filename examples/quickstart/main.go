// Quickstart: build a chunk index over a synthetic descriptor collection
// and compare an approximate search against the exact answer.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	// A small collection of synthetic local image descriptors (about 200
	// images' worth). Real deployments would load one with
	// repro.LoadCollection.
	coll := repro.GenerateCollection(20000, 1)
	fmt.Printf("collection: %d descriptors of %d dims\n", coll.Len(), repro.Dims)

	// Chunk it with the paper's time-first strategy: an SR-tree bulk load
	// with uniform 500-descriptor leaves.
	idx, err := repro.Build(coll, repro.BuildConfig{
		Strategy:  repro.StrategySRTree,
		ChunkSize: 500,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("index: %d chunks\n", idx.Chunks())

	// Query with one of the collection's own descriptors (a DQ query).
	q := coll.Vec(4242)

	// Approximate: stop after the 5 nearest chunks (the paper's stop
	// rule). The simulated time is what this would have cost on the
	// paper's 2005 hardware.
	approx, err := idx.Search(q, repro.SearchOptions{K: 30, MaxChunks: 5, Overlap: true})
	if err != nil {
		log.Fatal(err)
	}

	// Exact: the sequential-scan ground truth.
	truth := repro.Exact(coll, q, 30)

	precision := repro.Precision(approx.Neighbors, truth)
	fmt.Printf("approximate: read %d/%d chunks in %.0f simulated ms (%.3f real ms)\n",
		approx.ChunksRead, idx.Chunks(),
		approx.Simulated.Seconds()*1000, float64(approx.Wall.Microseconds())/1000)
	fmt.Printf("precision within top 30: %.2f\n", precision)

	// Run to completion for the provably exact result.
	full, err := idx.Search(q, repro.SearchOptions{K: 30, Overlap: true})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("completion: read %d chunks in %.2f simulated s (exact=%v, precision %.2f)\n",
		full.ChunksRead, full.Simulated.Seconds(), full.Exact,
		repro.Precision(full.Neighbors, truth))
}
