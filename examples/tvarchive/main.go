// TV archive near-duplicate sweep: the paper's collection provenance is
// television broadcasts (§5.2), where the same jingles, logos and reruns
// appear again and again. This example indexes an archive and sweeps a
// day of "new" frames against it under a fixed time budget per query —
// the elapsed-time stop rule the paper's §5.7 recommends — and reports
// which incoming images already exist in the archive.
//
//	go run ./examples/tvarchive
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	"repro"
)

func main() {
	// The archive: existing broadcast material.
	archive := repro.GenerateCollection(40000, 11)

	idx, err := repro.Build(archive, repro.BuildConfig{
		Strategy:  repro.StrategyHybrid, // uniform chunks, best-effort density (§7)
		ChunkSize: 800,
		Seed:      2,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("archive: %d descriptors in %d uniform chunks\n", idx.Len(), idx.Chunks())

	// A day of incoming material: half reruns (descriptors re-sampled
	// from archive images with broadcast noise), half fresh content
	// (descriptors far from the archive's trimmed value ranges).
	r := rand.New(rand.NewSource(5))
	type incoming struct {
		name  string
		query repro.Vector
		rerun bool
	}
	var feed []incoming
	dq, err := repro.DatasetQueries(archive, 40, 21)
	if err != nil {
		log.Fatal(err)
	}
	for i, q := range dq {
		noisy := q.Clone()
		for d := range noisy {
			noisy[d] += float32(r.NormFloat64() * 0.5)
		}
		feed = append(feed, incoming{fmt.Sprintf("rerun-%02d", i), noisy, true})
	}
	sq, err := repro.SpaceQueries(archive, 40, 22)
	if err != nil {
		log.Fatal(err)
	}
	for i, q := range sq {
		feed = append(feed, incoming{fmt.Sprintf("fresh-%02d", i), q, false})
	}

	// Classify each frame with a 100 ms (simulated) budget per query: a
	// frame is a rerun if its nearest archive descriptor is very close.
	const budget = 100 * time.Millisecond
	truthScan := func(q repro.Vector) float64 { return repro.Exact(archive, q, 1)[0].Dist }

	// Calibrate the rerun threshold from a handful of known pairs.
	threshold := 0.0
	for i := 0; i < 8; i++ {
		threshold += truthScan(feed[i].query)
	}
	threshold = threshold / 8 * 2

	var tp, fp, fn, tn int
	var simTotal time.Duration
	for _, in := range feed {
		res, err := idx.Search(in.query, repro.SearchOptions{K: 1, MaxTime: budget, Overlap: true})
		if err != nil {
			log.Fatal(err)
		}
		simTotal += res.Simulated
		isRerun := len(res.Neighbors) > 0 && res.Neighbors[0].Dist < threshold
		switch {
		case isRerun && in.rerun:
			tp++
		case isRerun && !in.rerun:
			fp++
		case !isRerun && in.rerun:
			fn++
		default:
			tn++
		}
	}
	fmt.Printf("swept %d frames with a %v budget each (%.1f simulated s total)\n",
		len(feed), budget, simTotal.Seconds())
	fmt.Printf("reruns:   %d detected, %d missed\n", tp, fn)
	fmt.Printf("fresh:    %d passed, %d false alarms\n", tn, fp)
	if tp+tn >= int(float64(len(feed))*0.8) {
		fmt.Println("archive dedup working: ≥80% of the feed classified correctly under budget")
	} else {
		fmt.Println("classification degraded — raise the per-query budget")
	}
}
