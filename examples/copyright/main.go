// Copyright protection: find transformed copies of an image in a large
// collection, the application the paper's descriptors were designed for
// (§4.1: "particularly well suited to enforce robust content-based image
// searches for copyright protection").
//
// The demo synthesizes a collection, picks a "protected" image, simulates
// a pirated copy (every local descriptor perturbed — crop, re-encode,
// logo overlay), and shows that voting over approximate per-descriptor
// searches identifies the source image, far faster than exact search.
//
//	go run ./examples/copyright
package main

import (
	"fmt"
	"log"
	"math/rand"
	"sort"
	"time"

	"repro"
)

func main() {
	coll := repro.GenerateCollection(30000, 3)

	// Index with the quality-first strategy: for a copyright service the
	// index is built once and queried millions of times, so BAG's long
	// build amortizes. (Try StrategySRTree to see the trade-off.)
	start := time.Now()
	idx, err := repro.Build(coll, repro.BuildConfig{
		Strategy:  repro.StrategyBAG,
		ChunkSize: 600,
		Seed:      1,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("indexed %d descriptors into %d chunks (%d outliers removed) in %v\n",
		idx.Len(), idx.Chunks(), len(idx.Outliers), time.Since(start).Round(time.Millisecond))

	// Collect the descriptors of one protected image.
	const protectedImage = 77
	var original []repro.Vector
	for i := 0; i < coll.Len(); i++ {
		if coll.IDAt(i).ImageOf() == protectedImage {
			original = append(original, coll.Vec(i))
		}
	}
	fmt.Printf("protected image %d has %d local descriptors\n", protectedImage, len(original))

	// Simulate the pirated copy: every descriptor slightly perturbed, a
	// quarter of them destroyed (occlusion by a station logo).
	r := rand.New(rand.NewSource(9))
	var pirated []repro.Vector
	for _, v := range original {
		if r.Float64() < 0.25 {
			continue
		}
		p := v.Clone()
		for d := range p {
			p[d] += float32(r.NormFloat64() * 0.8)
		}
		pirated = append(pirated, p)
	}
	fmt.Printf("pirated copy retains %d perturbed descriptors\n", len(pirated))

	// Identify the source: approximate k-NN per pirated descriptor, then
	// vote by source image (the multi-descriptor search scheme the
	// paper's §7 announces for the Eff² system).
	votes := map[uint32]int{}
	var simTotal time.Duration
	for _, q := range pirated {
		res, err := idx.Search(q, repro.SearchOptions{K: 5, MaxChunks: 2, Overlap: true})
		if err != nil {
			log.Fatal(err)
		}
		simTotal += res.Simulated
		for _, nb := range res.Neighbors {
			votes[nb.ID.ImageOf()]++
		}
	}

	type cand struct {
		img   uint32
		score int
	}
	var ranked []cand
	for img, s := range votes {
		ranked = append(ranked, cand{img, s})
	}
	sort.Slice(ranked, func(a, b int) bool { return ranked[a].score > ranked[b].score })

	fmt.Printf("\ntop image candidates (approximate search, %.1f simulated s total):\n",
		simTotal.Seconds())
	for i := 0; i < 5 && i < len(ranked); i++ {
		marker := ""
		if ranked[i].img == protectedImage {
			marker = "  <-- protected image"
		}
		fmt.Printf("  image %5d: %4d votes%s\n", ranked[i].img, ranked[i].score, marker)
	}
	if len(ranked) > 0 && ranked[0].img == protectedImage {
		fmt.Println("\ncopy detected: the pirated clip maps back to the protected image")
	} else {
		fmt.Println("\ncopy NOT detected — try more chunks per query")
	}
}
