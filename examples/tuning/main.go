// Chunk-size tuning: the paper's Experiment 2 (§5.6) as a user-facing
// workflow. Given a collection and a quality target ("find at least 28 of
// the true top 30"), sweep chunk sizes and report the simulated time each
// one needs, reproducing the U-shaped trade-off of Figures 6-7: very
// small chunks drown in seeks and index overhead, very large chunks drown
// in CPU, and a broad plateau (roughly 1,000-10,000 descriptors per
// chunk) is near-optimal — so exact uniformity matters less than avoiding
// the extremes (§5.7, lesson 3).
//
//	go run ./examples/tuning
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	coll := repro.GenerateCollection(30000, 17)
	queries, err := repro.DatasetQueries(coll, 15, 4)
	if err != nil {
		log.Fatal(err)
	}
	const k = 30
	const wantFound = 28

	// Precompute ground truth once per query.
	truths := make([][]repro.Neighbor, len(queries))
	for i, q := range queries {
		truths[i] = repro.Exact(coll, q, k)
	}

	fmt.Printf("%10s %8s %12s %14s\n", "chunk size", "chunks", "avg chunks", "avg sim time")
	sizes := []int{100, 200, 400, 800, 1600, 3200, 6400, 12800}
	bestSize, bestTime := 0, -1.0
	for _, size := range sizes {
		idx, err := repro.Build(coll, repro.BuildConfig{Strategy: repro.StrategySRTree, ChunkSize: size})
		if err != nil {
			log.Fatal(err)
		}
		var sumTime float64
		var sumChunks int
		for qi, q := range queries {
			// Grow the chunk budget until the quality target is met; the
			// simulated elapsed time of the final budget is the cost of
			// this chunk size for this query.
			lo, hi := 1, idx.Chunks()
			for lo < hi {
				mid := (lo + hi) / 2
				res, err := idx.Search(q, repro.SearchOptions{K: k, MaxChunks: mid, Overlap: true})
				if err != nil {
					log.Fatal(err)
				}
				if int(repro.Precision(res.Neighbors, truths[qi])*float64(k)+0.5) >= wantFound {
					hi = mid
				} else {
					lo = mid + 1
				}
			}
			res, err := idx.Search(q, repro.SearchOptions{K: k, MaxChunks: lo, Overlap: true})
			if err != nil {
				log.Fatal(err)
			}
			sumTime += res.Simulated.Seconds()
			sumChunks += res.ChunksRead
		}
		avgTime := sumTime / float64(len(queries))
		fmt.Printf("%10d %8d %12.1f %13.3fs\n",
			size, idx.Chunks(), float64(sumChunks)/float64(len(queries)), avgTime)
		if bestTime < 0 || avgTime < bestTime {
			bestSize, bestTime = size, avgTime
		}
	}
	fmt.Printf("\nbest chunk size for ≥%d/%d true neighbors: %d descriptors (%.3fs simulated)\n",
		wantFound, k, bestSize, bestTime)
	fmt.Println("(the paper's lesson: any size in the broad middle plateau is fine;")
	fmt.Println(" avoid the very small and very large extremes)")
}
