package repro

import (
	"testing"
	"time"
)

// compareResults fails unless got and want agree on everything the
// byte-identity contract pins: IDs, distances, ChunksRead, Simulated and
// Exact (Wall is real time and exempt).
func compareResults(t *testing.T, label string, got, want *Result) {
	t.Helper()
	if got.ChunksRead != want.ChunksRead || got.Simulated != want.Simulated || got.Exact != want.Exact {
		t.Fatalf("%s: (chunks %d, sim %v, exact %v) != (chunks %d, sim %v, exact %v)",
			label, got.ChunksRead, got.Simulated, got.Exact, want.ChunksRead, want.Simulated, want.Exact)
	}
	if len(got.Neighbors) != len(want.Neighbors) {
		t.Fatalf("%s: %d neighbors != %d", label, len(got.Neighbors), len(want.Neighbors))
	}
	for i := range want.Neighbors {
		if got.Neighbors[i] != want.Neighbors[i] {
			t.Fatalf("%s rank %d: %+v != %+v", label, i, got.Neighbors[i], want.Neighbors[i])
		}
	}
}

// TestShardedIndexOneShardMatchesIndex pins the facade-level equivalence:
// a 1-shard ShardedIndex returns byte-identical results to Index under
// all three stop rules, both in memory and through the on-disk round
// trip (Save/Open vs ShardedIndex.Save/OpenSharded).
func TestShardedIndexOneShardMatchesIndex(t *testing.T) {
	coll := GenerateCollection(6000, 51)
	cfg := BuildConfig{Strategy: StrategySRTree, ChunkSize: 250}
	idx, err := Build(coll, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer idx.Close()
	sx, err := BuildSharded(coll, cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer sx.Close()
	if sx.Shards() != 1 || sx.Chunks() != idx.Chunks() || sx.Len() != idx.Len() {
		t.Fatalf("1-shard shape: shards=%d chunks=%d/%d len=%d/%d",
			sx.Shards(), sx.Chunks(), idx.Chunks(), sx.Len(), idx.Len())
	}

	dir := t.TempDir()
	if err := sx.Save(dir); err != nil {
		t.Fatal(err)
	}
	fx, err := OpenSharded(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer fx.Close()

	allOpts := []SearchOptions{
		{K: 20},
		{K: 20, MaxChunks: 4},
		{K: 20, MaxTime: 80 * time.Millisecond},
	}
	for _, opts := range allOpts {
		for _, qi := range []int{0, 17, 999, 5999} {
			q := coll.Vec(qi)
			want, err := idx.Search(q, opts)
			if err != nil {
				t.Fatal(err)
			}
			got, err := sx.Search(q, opts)
			if err != nil {
				t.Fatal(err)
			}
			compareResults(t, "mem", got, want)
			got, err = fx.Search(q, opts)
			if err != nil {
				t.Fatal(err)
			}
			compareResults(t, "file", got, want)
		}

		// Batch path agrees too.
		queries, err := DatasetQueries(coll, 12, 6)
		if err != nil {
			t.Fatal(err)
		}
		wantBatch := make([]Result, len(queries))
		gotBatch := make([]Result, len(queries))
		if err := idx.SearchBatchInto(queries, BatchOptions{SearchOptions: opts}, wantBatch); err != nil {
			t.Fatal(err)
		}
		if err := sx.SearchBatchInto(queries, BatchOptions{SearchOptions: opts}, gotBatch); err != nil {
			t.Fatal(err)
		}
		for qi := range queries {
			compareResults(t, "batch", &gotBatch[qi], &wantBatch[qi])
		}
	}

	// Multi-descriptor queries score images identically through one shard.
	bag := make([]Vector, 24)
	for i := range bag {
		bag[i] = coll.Vec(i * 113)
	}
	want, err := idx.MultiSearch(bag, MultiSearchOptions{K: 8, MaxChunks: 3, RankWeighted: true})
	if err != nil {
		t.Fatal(err)
	}
	got, err := sx.MultiSearch(bag, MultiSearchOptions{K: 8, MaxChunks: 3, RankWeighted: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Images) != len(want.Images) || got.Simulated != want.Simulated || got.ChunksRead != want.ChunksRead {
		t.Fatalf("multi: (%d images, sim %v, chunks %d) != (%d, %v, %d)",
			len(got.Images), got.Simulated, got.ChunksRead, len(want.Images), want.Simulated, want.ChunksRead)
	}
	for i := range want.Images {
		if got.Images[i] != want.Images[i] {
			t.Fatalf("multi image %d: %+v != %+v", i, got.Images[i], want.Images[i])
		}
	}
}

// TestShardedIndexCompletionIsExact pins the facade's global-exactness
// claim at S=4: run-to-completion scatter-gather equals the scan oracle.
func TestShardedIndexCompletionIsExact(t *testing.T) {
	coll := GenerateCollection(5000, 53)
	sx, err := BuildSharded(coll, BuildConfig{Strategy: StrategySRTree, ChunkSize: 200}, 4)
	if err != nil {
		t.Fatal(err)
	}
	defer sx.Close()
	for _, qi := range []int{3, 444, 4999} {
		q := coll.Vec(qi)
		res, err := sx.Search(q, SearchOptions{K: 30})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Exact {
			t.Fatalf("q%d: completion not exact", qi)
		}
		truth := Exact(coll, q, 30)
		if len(res.Neighbors) != len(truth) {
			t.Fatalf("q%d: %d neighbors vs oracle %d", qi, len(res.Neighbors), len(truth))
		}
		for i := range truth {
			if res.Neighbors[i] != truth[i] {
				t.Fatalf("q%d rank %d: %+v != oracle %+v", qi, i, res.Neighbors[i], truth[i])
			}
		}
	}
}

// TestShardedIndexSaveOpenRoundTrip pins the sharded on-disk story: an
// S-shard index reopened from its manifest serves byte-identical results
// at the build page size, at every stop rule.
func TestShardedIndexSaveOpenRoundTrip(t *testing.T) {
	coll := GenerateCollection(4000, 57)
	cfg := BuildConfig{Strategy: StrategySRTree, ChunkSize: 180, PageSize: 2048}
	sx, err := BuildSharded(coll, cfg, 3)
	if err != nil {
		t.Fatal(err)
	}
	defer sx.Close()
	dir := t.TempDir()
	if err := sx.Save(dir); err != nil {
		t.Fatal(err)
	}
	fx, err := OpenSharded(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer fx.Close()
	if fx.Shards() != 3 || fx.Chunks() != sx.Chunks() || fx.Len() != sx.Len() {
		t.Fatalf("reopened shape: shards=%d chunks=%d/%d len=%d/%d",
			fx.Shards(), fx.Chunks(), sx.Chunks(), fx.Len(), sx.Len())
	}
	for _, opts := range []SearchOptions{{K: 15}, {K: 15, MaxChunks: 2}} {
		for _, qi := range []int{9, 876, 3999} {
			q := coll.Vec(qi)
			want, err := sx.Search(q, opts)
			if err != nil {
				t.Fatal(err)
			}
			got, err := fx.Search(q, opts)
			if err != nil {
				t.Fatal(err)
			}
			compareResults(t, "roundtrip", got, want)
		}
	}

	// Only built indexes can be saved.
	if err := fx.Save(t.TempDir()); err == nil {
		t.Fatal("saving a file-opened sharded index succeeded")
	}
}

// TestSaveHonorsBuildPageSize pins the Save page-size satellite: an index
// built with a non-default page size writes its files at that page size,
// so the reopened index has byte-identical simulated timings (chunk
// padding feeds the cost model's transfer term).
func TestSaveHonorsBuildPageSize(t *testing.T) {
	coll := GenerateCollection(3000, 59)
	for _, pageSize := range []int{0, 2048, 16384} {
		idx, err := Build(coll, BuildConfig{Strategy: StrategySRTree, ChunkSize: 150, PageSize: pageSize})
		if err != nil {
			t.Fatal(err)
		}
		dir := t.TempDir()
		cp, ip := dir+"/x.chunk", dir+"/x.idx"
		if err := idx.Save(cp, ip); err != nil {
			t.Fatal(err)
		}
		reopened, err := Open(cp, ip)
		if err != nil {
			t.Fatal(err)
		}
		for _, qi := range []int{1, 500, 2999} {
			q := coll.Vec(qi)
			want, err := idx.Search(q, SearchOptions{K: 10, MaxChunks: 3})
			if err != nil {
				t.Fatal(err)
			}
			got, err := reopened.Search(q, SearchOptions{K: 10, MaxChunks: 3})
			if err != nil {
				t.Fatal(err)
			}
			if got.Simulated != want.Simulated {
				t.Fatalf("page %d q%d: reopened Simulated %v != built %v",
					pageSize, qi, got.Simulated, want.Simulated)
			}
			compareResults(t, "pagesize", got, want)
		}
		reopened.Close()
		idx.Close()
	}
}

// TestShardedIndexGlobalBudget pins the facade's GlobalBudget option:
// on S shards a global MaxChunks budget reads exactly that many chunks
// in total and returns the unsharded Index's neighbors at the same
// budget (the closed S× gap); on 1 shard the discipline is byte-identical
// to Index including Simulated; the batch and multi-descriptor paths
// agree with the single-query path.
func TestShardedIndexGlobalBudget(t *testing.T) {
	coll := GenerateCollection(6000, 61)
	cfg := BuildConfig{Strategy: StrategySRTree, ChunkSize: 250}
	idx, err := Build(coll, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer idx.Close()
	sx, err := BuildSharded(coll, cfg, 4)
	if err != nil {
		t.Fatal(err)
	}
	defer sx.Close()
	one, err := BuildSharded(coll, cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer one.Close()

	// Matched total budget: global on 4 shards reads exactly B chunks and
	// matches the unsharded neighbors; per-shard at the same per-shard
	// budget reads 4× the chunks.
	for _, budget := range []int{2, 5, 12} {
		for _, qi := range []int{9, 640, 5999} {
			q := coll.Vec(qi)
			want, err := idx.Search(q, SearchOptions{K: 20, MaxChunks: budget})
			if err != nil {
				t.Fatal(err)
			}
			got, err := sx.Search(q, SearchOptions{K: 20, MaxChunks: budget, GlobalBudget: true})
			if err != nil {
				t.Fatal(err)
			}
			if got.ChunksRead != budget {
				t.Fatalf("global budget %d q%d: ChunksRead %d", budget, qi, got.ChunksRead)
			}
			if len(got.Neighbors) != len(want.Neighbors) {
				t.Fatalf("global budget %d q%d: %d neighbors != %d", budget, qi, len(got.Neighbors), len(want.Neighbors))
			}
			for i := range want.Neighbors {
				if got.Neighbors[i] != want.Neighbors[i] {
					t.Fatalf("global budget %d q%d rank %d: %+v != unsharded %+v",
						budget, qi, i, got.Neighbors[i], want.Neighbors[i])
				}
			}
			if budget <= 5 { // small enough that no shard runs out of chunks
				perShard, err := sx.Search(q, SearchOptions{K: 20, MaxChunks: budget})
				if err != nil {
					t.Fatal(err)
				}
				if perShard.ChunksRead != 4*budget {
					t.Fatalf("per-shard budget %d q%d: ChunksRead %d != %d", budget, qi, perShard.ChunksRead, 4*budget)
				}
			}
		}
	}

	// Global completion is exact and equals the oracle.
	res, err := sx.Search(coll.Vec(777), SearchOptions{K: 25, GlobalBudget: true})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Exact {
		t.Fatal("global completion not exact")
	}
	truth := Exact(coll, coll.Vec(777), 25)
	for i := range truth {
		if res.Neighbors[i] != truth[i] {
			t.Fatalf("global completion rank %d: %+v != oracle %+v", i, res.Neighbors[i], truth[i])
		}
	}

	// One shard: GlobalBudget is byte-identical to Index, Simulated
	// included, under all three stop rules.
	for _, opts := range []SearchOptions{
		{K: 20, GlobalBudget: true},
		{K: 20, MaxChunks: 4, GlobalBudget: true},
		{K: 20, MaxTime: 80 * time.Millisecond, GlobalBudget: true},
	} {
		plain := opts
		plain.GlobalBudget = false
		for _, qi := range []int{17, 999} {
			q := coll.Vec(qi)
			want, err := idx.Search(q, plain)
			if err != nil {
				t.Fatal(err)
			}
			got, err := one.Search(q, opts)
			if err != nil {
				t.Fatal(err)
			}
			compareResults(t, "1-shard global", got, want)
		}
	}

	// Batch path: byte-identical to the single-query global path.
	queries, err := DatasetQueries(coll, 12, 8)
	if err != nil {
		t.Fatal(err)
	}
	opts := SearchOptions{K: 20, MaxChunks: 6, GlobalBudget: true}
	batch := make([]Result, len(queries))
	if err := sx.SearchBatchInto(queries, BatchOptions{SearchOptions: opts}, batch); err != nil {
		t.Fatal(err)
	}
	for qi, q := range queries {
		want, err := sx.Search(q, opts)
		if err != nil {
			t.Fatal(err)
		}
		compareResults(t, "global batch", &batch[qi], want)
	}

	// Multi-descriptor global budget: the per-descriptor global searches
	// read the same chunks the unsharded index would, so image scores and
	// chunk totals match Index.MultiSearch.
	mbag := make([]Vector, 20)
	for i := range mbag {
		mbag[i] = coll.Vec(i * 131)
	}
	wantMulti, err := idx.MultiSearch(mbag, MultiSearchOptions{K: 8, MaxChunks: 3, RankWeighted: true})
	if err != nil {
		t.Fatal(err)
	}
	gotMulti, err := sx.MultiSearch(mbag, MultiSearchOptions{K: 8, MaxChunks: 3, RankWeighted: true, GlobalBudget: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(gotMulti.Images) != len(wantMulti.Images) || gotMulti.ChunksRead != wantMulti.ChunksRead {
		t.Fatalf("global multi: (%d images, chunks %d) != (%d, %d)",
			len(gotMulti.Images), gotMulti.ChunksRead, len(wantMulti.Images), wantMulti.ChunksRead)
	}
	for i := range wantMulti.Images {
		if gotMulti.Images[i] != wantMulti.Images[i] {
			t.Fatalf("global multi image %d: %+v != %+v", i, gotMulti.Images[i], wantMulti.Images[i])
		}
	}
}
