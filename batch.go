package repro

import (
	"fmt"
	"runtime"
	"sync"
)

// BatchOptions extends SearchOptions with a parallelism degree for
// running a whole workload (the paper runs 1,000-query workloads, §5.3).
type BatchOptions struct {
	SearchOptions
	// Parallelism is the number of worker goroutines (0 = GOMAXPROCS).
	Parallelism int
}

// SearchBatch runs every query and returns the results in query order.
// Queries execute concurrently; each Result carries its own simulated
// time (the simulation models one 2005 machine per query, so simulated
// times are per-query, not wall-aggregated).
//
// The batch fails fast: as soon as any worker hits an error, no further
// queries are dispatched, in-flight queries finish, and the first error
// (by query order among those attempted) is returned.
func (ix *Index) SearchBatch(queries []Vector, opts BatchOptions) ([]*Result, error) {
	if len(queries) == 0 {
		return nil, nil
	}
	workers := opts.Parallelism
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(queries) {
		workers = len(queries)
	}

	results := make([]*Result, len(queries))
	errs := make([]error, len(queries))
	var wg sync.WaitGroup
	next := make(chan int)
	failed := make(chan struct{})
	var failOnce sync.Once
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for qi := range next {
				results[qi], errs[qi] = ix.Search(queries[qi], opts.SearchOptions)
				if errs[qi] != nil {
					failOnce.Do(func() { close(failed) })
				}
			}
		}()
	}
dispatch:
	for qi := range queries {
		select {
		case next <- qi:
		case <-failed:
			break dispatch
		}
	}
	close(next)
	wg.Wait()

	for qi, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("repro: batch query %d: %w", qi, err)
		}
	}
	return results, nil
}
