package repro

import (
	"errors"
	"fmt"

	"repro/internal/search"
	"repro/internal/search/batchexec"
)

// BatchOptions extends SearchOptions with a parallelism degree for
// running a whole workload (the paper runs 1,000-query workloads, §5.3).
type BatchOptions struct {
	SearchOptions
	// Parallelism caps the batch's concurrency (0 = GOMAXPROCS, 1 = run
	// entirely on the calling goroutine).
	Parallelism int
}

// SearchBatchInto runs every query through the chunk-major batch engine,
// writing the outcome of queries[qi] into results[qi]. Instead of one
// independent search per query, the engine runs an asynchronous per-chunk
// work queue: each chunk wanted by at least one unfinished query is read
// and decoded once and scanned against all of its current subscribers
// while its descriptors are hot in cache, with no barrier between chunks
// — a slow decode only delays the queries that want that chunk. Results
// are byte-identical to per-query
// Search calls — each query still consumes chunks in its own rank order,
// applies its stop rule after every chunk, and owns its simulated
// pipeline, so Simulated remains a per-query time (one modeled 2005
// machine per query, never wall-aggregated across the batch).
//
// The results array is the caller-owned arena: neighbor slices already in
// it are reused when they have capacity, so recycling one results array
// across batches (the steady-state serving pattern) performs zero
// allocations per batch. Wall is the real time from batch start until
// the query's own retirement.
//
// The batch fails fast: any error aborts the run and is reported for the
// lowest-numbered query that hit it; no results are valid afterwards.
func (ix *Index) SearchBatchInto(queries []Vector, opts BatchOptions, results []Result) error {
	if err := opts.SearchOptions.validate(); err != nil {
		return err
	}
	if len(results) != len(queries) {
		return fmt.Errorf("repro: batch results length %d != queries length %d", len(results), len(queries))
	}
	if len(queries) == 0 {
		return nil
	}
	sp := ix.batchPool.Get().(*[]search.Result)
	defer ix.batchPool.Put(sp)
	if cap(*sp) < len(queries) {
		*sp = make([]search.Result, len(queries))
	}
	srs := (*sp)[:len(queries)]
	for i := range results {
		srs[i] = search.Result{Neighbors: results[i].Neighbors[:0]}
	}
	err := ix.engine.Run(queries, batchexec.Options{
		K:           opts.K,
		Stop:        stopRule(opts.SearchOptions),
		Model:       opts.Model,
		Overlap:     opts.Overlap,
		Parallelism: opts.Parallelism,
		Ctx:         opts.Ctx,
	}, srs)
	if err != nil {
		for i := range srs {
			srs[i] = search.Result{} // do not retain caller slices in the pool
		}
		var qe *batchexec.QueryError
		if errors.As(err, &qe) {
			return fmt.Errorf("repro: batch query %d: %w", qe.Query, qe.Err)
		}
		return fmt.Errorf("repro: %w", err)
	}
	for i := range results {
		sr := &srs[i]
		results[i] = Result{
			Neighbors:  sr.Neighbors,
			ChunksRead: sr.ChunksRead,
			Simulated:  sr.Elapsed,
			Wall:       sr.Wall,
			Exact:      sr.Exact,
		}
		srs[i] = search.Result{} // do not retain caller slices in the pool
	}
	return nil
}

// SearchBatchStream runs the batch like SearchBatchInto and streams
// per-query completions: done(qi) fires exactly once per query, the
// moment the engine retires it with results[qi] fully written — long
// before the batch returns while other queries still run. Callbacks for
// distinct queries may fire concurrently (they run on the engine's scan
// workers), so done must be safe for concurrent use and must not block;
// hand slow consumers a channel. On error, queries whose callback
// already fired retain valid results; all others are invalid. A nil done
// degenerates to SearchBatchInto.
func (ix *Index) SearchBatchStream(queries []Vector, opts BatchOptions, results []Result, done func(query int)) error {
	if done == nil {
		return ix.SearchBatchInto(queries, opts, results)
	}
	if err := opts.SearchOptions.validate(); err != nil {
		return err
	}
	if len(results) != len(queries) {
		return fmt.Errorf("repro: batch results length %d != queries length %d", len(results), len(queries))
	}
	if len(queries) == 0 {
		return nil
	}
	sp := ix.batchPool.Get().(*[]search.Result)
	defer ix.batchPool.Put(sp)
	if cap(*sp) < len(queries) {
		*sp = make([]search.Result, len(queries))
	}
	srs := (*sp)[:len(queries)]
	for i := range results {
		srs[i] = search.Result{Neighbors: results[i].Neighbors[:0]}
	}
	err := ix.engine.RunStream(queries, batchexec.Options{
		K:           opts.K,
		Stop:        stopRule(opts.SearchOptions),
		Model:       opts.Model,
		Overlap:     opts.Overlap,
		Parallelism: opts.Parallelism,
		Ctx:         opts.Ctx,
	}, srs, func(qi int) {
		sr := &srs[qi]
		results[qi] = Result{
			Neighbors:  sr.Neighbors,
			ChunksRead: sr.ChunksRead,
			Simulated:  sr.Elapsed,
			Wall:       sr.Wall,
			Exact:      sr.Exact,
		}
		done(qi)
	})
	for i := range srs {
		srs[i] = search.Result{} // do not retain caller slices in the pool
	}
	if err != nil {
		var qe *batchexec.QueryError
		if errors.As(err, &qe) {
			return fmt.Errorf("repro: batch query %d: %w", qe.Query, qe.Err)
		}
		return fmt.Errorf("repro: %w", err)
	}
	return nil
}

// SearchBatch runs every query and returns the results in query order. It
// is the allocating convenience form of SearchBatchInto; steady-state
// callers should recycle a results array through SearchBatchInto instead.
func (ix *Index) SearchBatch(queries []Vector, opts BatchOptions) ([]*Result, error) {
	if len(queries) == 0 {
		return nil, nil
	}
	backing := make([]Result, len(queries))
	if err := ix.SearchBatchInto(queries, opts, backing); err != nil {
		return nil, err
	}
	out := make([]*Result, len(queries))
	for i := range backing {
		out[i] = &backing[i]
	}
	return out, nil
}
