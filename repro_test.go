package repro

import (
	"math"
	"path/filepath"
	"testing"
	"time"
)

func testCollection(t testing.TB) *Collection {
	t.Helper()
	return GenerateCollection(5000, 7)
}

func TestBuildAllStrategies(t *testing.T) {
	coll := testCollection(t)
	for _, s := range []Strategy{StrategySRTree, StrategyRoundRobin, StrategyHybrid} {
		idx, err := Build(coll, BuildConfig{Strategy: s, ChunkSize: 200, Seed: 1})
		if err != nil {
			t.Fatalf("%s: %v", s, err)
		}
		if idx.Len() != coll.Len() {
			t.Fatalf("%s: index covers %d of %d", s, idx.Len(), coll.Len())
		}
		if idx.Chunks() < 2 {
			t.Fatalf("%s: only %d chunks", s, idx.Chunks())
		}
	}
}

func TestBuildBAGRemovesOutliers(t *testing.T) {
	coll := testCollection(t)
	idx, err := Build(coll, BuildConfig{Strategy: StrategyBAG, ChunkSize: 150, Seed: 1, MaxPasses: 500})
	if err != nil {
		t.Fatal(err)
	}
	if len(idx.Outliers) == 0 {
		t.Fatal("BAG discarded no outliers on skewed synthetic data")
	}
	if idx.Len()+len(idx.Outliers) != coll.Len() {
		t.Fatalf("retained %d + outliers %d != %d", idx.Len(), len(idx.Outliers), coll.Len())
	}
}

func TestBuildValidation(t *testing.T) {
	coll := testCollection(t)
	if _, err := Build(coll, BuildConfig{Strategy: StrategySRTree, ChunkSize: 0}); err == nil {
		t.Fatal("ChunkSize 0 accepted")
	}
	if _, err := Build(coll, BuildConfig{Strategy: "nope", ChunkSize: 10}); err == nil {
		t.Fatal("unknown strategy accepted")
	}
}

func TestSearchApproxAndExact(t *testing.T) {
	coll := testCollection(t)
	idx, err := Build(coll, BuildConfig{Strategy: StrategySRTree, ChunkSize: 150})
	if err != nil {
		t.Fatal(err)
	}
	q := coll.Vec(99)

	exact, err := idx.Search(q, SearchOptions{K: 20})
	if err != nil {
		t.Fatal(err)
	}
	if !exact.Exact {
		t.Fatal("completion search not exact")
	}
	truth := Exact(coll, q, 20)
	if p := Precision(exact.Neighbors, truth); p != 1 {
		t.Fatalf("completion precision = %v", p)
	}

	approx, err := idx.Search(q, SearchOptions{K: 20, MaxChunks: 3})
	if err != nil {
		t.Fatal(err)
	}
	if approx.ChunksRead != 3 {
		t.Fatalf("ChunksRead = %d", approx.ChunksRead)
	}
	if approx.Simulated >= exact.Simulated {
		t.Fatal("approximate search not faster than completion")
	}
	if p := Precision(approx.Neighbors, truth); p <= 0 {
		t.Fatalf("approximate precision = %v", p)
	}
}

func TestSearchTimeBudget(t *testing.T) {
	coll := testCollection(t)
	idx, err := Build(coll, BuildConfig{Strategy: StrategySRTree, ChunkSize: 150})
	if err != nil {
		t.Fatal(err)
	}
	res, err := idx.Search(coll.Vec(5), SearchOptions{K: 10, MaxTime: 120 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	full, err := idx.Search(coll.Vec(5), SearchOptions{K: 10})
	if err != nil {
		t.Fatal(err)
	}
	if res.ChunksRead >= full.ChunksRead {
		t.Fatalf("time budget read %d chunks, full %d", res.ChunksRead, full.ChunksRead)
	}
}

func TestSaveOpenRoundTrip(t *testing.T) {
	coll := testCollection(t)
	built, err := Build(coll, BuildConfig{Strategy: StrategySRTree, ChunkSize: 200})
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	cp, ip := filepath.Join(dir, "x.chunk"), filepath.Join(dir, "x.idx")
	if err := built.Save(cp, ip); err != nil {
		t.Fatal(err)
	}
	opened, err := Open(cp, ip)
	if err != nil {
		t.Fatal(err)
	}
	defer opened.Close()
	if opened.Len() != built.Len() || opened.Chunks() != built.Chunks() {
		t.Fatalf("opened %d/%d vs built %d/%d", opened.Len(), opened.Chunks(), built.Len(), built.Chunks())
	}
	q := coll.Vec(42)
	a, err := built.Search(q, SearchOptions{K: 15})
	if err != nil {
		t.Fatal(err)
	}
	b, err := opened.Search(q, SearchOptions{K: 15})
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Neighbors {
		if math.Abs(a.Neighbors[i].Dist-b.Neighbors[i].Dist) > 1e-9 {
			t.Fatalf("result %d differs between built and opened index", i)
		}
	}
	if err := opened.Save(cp, ip); err == nil {
		t.Fatal("saving a file-opened index should fail")
	}
}

func TestCollectionFileRoundTrip(t *testing.T) {
	coll := testCollection(t)
	path := filepath.Join(t.TempDir(), "c.desc")
	if err := SaveCollection(coll, path); err != nil {
		t.Fatal(err)
	}
	got, err := LoadCollection(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != coll.Len() {
		t.Fatalf("loaded %d, want %d", got.Len(), coll.Len())
	}
}

func TestWorkloadHelpers(t *testing.T) {
	coll := testCollection(t)
	dq, err := DatasetQueries(coll, 5, 1)
	if err != nil {
		t.Fatal(err)
	}
	sq, err := SpaceQueries(coll, 5, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(dq) != 5 || len(sq) != 5 {
		t.Fatalf("workload sizes %d/%d", len(dq), len(sq))
	}
}

func TestPrecisionEdges(t *testing.T) {
	if Precision(nil, nil) != 0 {
		t.Fatal("empty truth should be 0")
	}
	ns := []Neighbor{{ID: 1}, {ID: 2}}
	if Precision(ns, ns) != 1 {
		t.Fatal("identical lists should be 1")
	}
}
