package repro

import (
	"path/filepath"
	"testing"
	"time"
)

// cacheStopVariants returns SearchOptions exercising the paper's three
// stop rules.
func cacheStopVariants(k int) []SearchOptions {
	return []SearchOptions{
		{K: k},
		{K: k, MaxChunks: 3},
		{K: k, MaxTime: 80 * time.Millisecond},
	}
}

// identicalResult asserts two facade results are byte-identical: IDs,
// distances, chunk counts, and the simulated time the cache must never
// perturb (only Wall may differ).
func identicalResult(t *testing.T, label string, got, want *Result) {
	t.Helper()
	if got.ChunksRead != want.ChunksRead || got.Simulated != want.Simulated ||
		got.Exact != want.Exact || got.Degraded != want.Degraded ||
		got.ChunksSkipped != want.ChunksSkipped {
		t.Fatalf("%s: (chunks %d, %v, exact %v) != uncached (chunks %d, %v, exact %v)",
			label, got.ChunksRead, got.Simulated, got.Exact,
			want.ChunksRead, want.Simulated, want.Exact)
	}
	if len(got.Neighbors) != len(want.Neighbors) {
		t.Fatalf("%s: %d neighbors != %d", label, len(got.Neighbors), len(want.Neighbors))
	}
	for i := range want.Neighbors {
		if got.Neighbors[i] != want.Neighbors[i] {
			t.Fatalf("%s rank %d: %+v != %+v", label, i, got.Neighbors[i], want.Neighbors[i])
		}
	}
}

// TestCacheEquivalenceUnsharded pins the tentpole guarantee on the plain
// index: with CacheBytes set — built in memory or reopened from disk —
// every path (single query, batch, multi-descriptor) returns results
// byte-identical to the cacheless index under all three stop rules, cold
// and warm.
func TestCacheEquivalenceUnsharded(t *testing.T) {
	coll := testCollection(t)
	cfg := BuildConfig{Strategy: StrategySRTree, ChunkSize: 150}
	plain, err := Build(coll, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer plain.Close()
	cfg.CacheBytes = 32 << 20
	built, err := Build(coll, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer built.Close()

	dir := t.TempDir()
	cp, ip := filepath.Join(dir, "a.chunk"), filepath.Join(dir, "a.idx")
	if err := plain.Save(cp, ip); err != nil {
		t.Fatal(err)
	}
	opened, err := OpenWith(cp, ip, OpenConfig{CacheBytes: 32 << 20})
	if err != nil {
		t.Fatal(err)
	}
	defer opened.Close()

	queries, err := DatasetQueries(coll, 6, 3)
	if err != nil {
		t.Fatal(err)
	}

	for _, ix := range []struct {
		name string
		idx  *Index
	}{{"built", built}, {"opened", opened}} {
		for _, opts := range cacheStopVariants(15) {
			for pass := 0; pass < 2; pass++ {
				for _, q := range queries {
					want, err := plain.Search(q, opts)
					if err != nil {
						t.Fatal(err)
					}
					got, err := ix.idx.Search(q, opts)
					if err != nil {
						t.Fatal(err)
					}
					identicalResult(t, ix.name+"/search", got, want)
				}
				bopts := BatchOptions{SearchOptions: opts}
				want := make([]Result, len(queries))
				got := make([]Result, len(queries))
				if err := plain.SearchBatchInto(queries, bopts, want); err != nil {
					t.Fatal(err)
				}
				if err := ix.idx.SearchBatchInto(queries, bopts, got); err != nil {
					t.Fatal(err)
				}
				for qi := range queries {
					identicalResult(t, ix.name+"/batch", &got[qi], &want[qi])
				}
			}
		}

		mopts := MultiSearchOptions{K: 10, MaxChunks: 3}
		wantM, err := plain.MultiSearch(queries, mopts)
		if err != nil {
			t.Fatal(err)
		}
		gotM, err := ix.idx.MultiSearch(queries, mopts)
		if err != nil {
			t.Fatal(err)
		}
		if len(gotM.Images) != len(wantM.Images) {
			t.Fatalf("%s/multi: %d images != %d", ix.name, len(gotM.Images), len(wantM.Images))
		}
		for i := range wantM.Images {
			if gotM.Images[i] != wantM.Images[i] {
				t.Fatalf("%s/multi rank %d: %+v != %+v", ix.name, i, gotM.Images[i], wantM.Images[i])
			}
		}

		st := ix.idx.CacheStats()
		if !st.Enabled || st.Hits == 0 {
			t.Fatalf("%s: warm cache reports %+v", ix.name, st)
		}
	}

	if st := plain.CacheStats(); st.Enabled || st.Hits != 0 || st.Misses != 0 {
		t.Fatalf("cacheless index reports %+v", st)
	}
}

// TestCacheEquivalenceSharded pins the same guarantee scatter-gather:
// a cached sharded index — built or reopened — matches the cacheless one
// byte-identically on the per-shard and global-budget disciplines, on
// single queries, batches, and multi-descriptor queries.
func TestCacheEquivalenceSharded(t *testing.T) {
	coll := testCollection(t)
	cfg := BuildConfig{Strategy: StrategySRTree, ChunkSize: 150}
	const shards = 3
	plain, err := BuildSharded(coll, cfg, shards)
	if err != nil {
		t.Fatal(err)
	}
	defer plain.Close()
	cfg.CacheBytes = 32 << 20
	built, err := BuildSharded(coll, cfg, shards)
	if err != nil {
		t.Fatal(err)
	}
	defer built.Close()

	dir := t.TempDir()
	if err := plain.Save(dir); err != nil {
		t.Fatal(err)
	}
	opened, err := OpenShardedWith(dir, OpenConfig{CacheBytes: 32 << 20})
	if err != nil {
		t.Fatal(err)
	}
	defer opened.Close()

	queries, err := DatasetQueries(coll, 6, 5)
	if err != nil {
		t.Fatal(err)
	}

	for _, ix := range []struct {
		name string
		idx  *ShardedIndex
	}{{"built", built}, {"opened", opened}} {
		for _, base := range cacheStopVariants(15) {
			for _, global := range []bool{false, true} {
				opts := base
				opts.GlobalBudget = global
				for pass := 0; pass < 2; pass++ {
					for _, q := range queries {
						want, err := plain.Search(q, opts)
						if err != nil {
							t.Fatal(err)
						}
						got, err := ix.idx.Search(q, opts)
						if err != nil {
							t.Fatal(err)
						}
						identicalResult(t, ix.name+"/search", got, want)
					}
					bopts := BatchOptions{SearchOptions: opts}
					want := make([]Result, len(queries))
					got := make([]Result, len(queries))
					if err := plain.SearchBatchInto(queries, bopts, want); err != nil {
						t.Fatal(err)
					}
					if err := ix.idx.SearchBatchInto(queries, bopts, got); err != nil {
						t.Fatal(err)
					}
					for qi := range queries {
						identicalResult(t, ix.name+"/batch", &got[qi], &want[qi])
					}
				}
			}
		}

		for _, global := range []bool{false, true} {
			mopts := MultiSearchOptions{K: 10, MaxChunks: 3, GlobalBudget: global}
			wantM, err := plain.MultiSearch(queries, mopts)
			if err != nil {
				t.Fatal(err)
			}
			gotM, err := ix.idx.MultiSearch(queries, mopts)
			if err != nil {
				t.Fatal(err)
			}
			if len(gotM.Images) != len(wantM.Images) {
				t.Fatalf("%s/multi: %d images != %d", ix.name, len(gotM.Images), len(wantM.Images))
			}
			for i := range wantM.Images {
				if gotM.Images[i] != wantM.Images[i] {
					t.Fatalf("%s/multi rank %d: %+v != %+v", ix.name, i, gotM.Images[i], wantM.Images[i])
				}
			}
		}

		st := ix.idx.CacheStats()
		if !st.Enabled || st.Hits == 0 {
			t.Fatalf("%s: warm cache reports %+v", ix.name, st)
		}
	}
}
