package repro

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"

	"repro/internal/chunkfile"
	"repro/internal/cluster"
	"repro/internal/multiquery"
	"repro/internal/search"
	"repro/internal/search/batchexec"
	"repro/internal/shard"
)

// ShardedIndex is a chunk index partitioned across S shards, each shard a
// complete two-file index served by its own single-query searcher and
// chunk-major batch engine. Queries scatter to every shard concurrently
// and gather through a deterministic merge, so a run-to-completion search
// returns the exact global k-NN. The simulated cost model is one 2005
// machine per shard: a query's Simulated is the max over the shards
// (they run in parallel) and ChunksRead the sum.
//
// Budgets come in two disciplines, selected by
// SearchOptions.GlobalBudget. By default each stop rule applies per
// shard to that shard's own simulated pipeline (MaxChunks c reads up to
// S×c chunks). With GlobalBudget set, the shards' chunk rankings merge
// into one global centroid-rank order and the budget is spent once
// across the fleet — MaxChunks c reads exactly min(c, total) chunks,
// matching the unsharded Index's quality at the same total bill. See
// DESIGN.md §5 and §7.
//
// A 1-shard ShardedIndex returns results byte-identical to Index — same
// IDs, distances, ChunksRead, Simulated and Exact under every stop rule,
// in both budget disciplines.
type ShardedIndex struct {
	router    *shard.Router
	pageSize  int
	placement *shard.Placement

	batchPool sync.Pool // *[]search.Result: SearchBatchInto's internal arena
	resPool   sync.Pool // *shard.Result: SearchInto's merge scratch

	coll  *Collection          // nil for file-opened indexes
	parts [][]*cluster.Cluster // per-shard physical clusters; nil for file-opened indexes

	// Outliers holds the collection positions BAG discarded (empty for
	// the other strategies and for file-opened indexes).
	Outliers []int
}

// newShardedIndex assembles the facade over a router.
func newShardedIndex(router *shard.Router, pageSize int) *ShardedIndex {
	sx := &ShardedIndex{router: router, pageSize: pageSize}
	sx.batchPool.New = func() any {
		s := []search.Result(nil)
		return &s
	}
	sx.resPool.New = func() any { return &shard.Result{} }
	return sx
}

// BuildSharded forms chunks from the collection with the selected
// strategy and partitions them across the given number of shards,
// balanced by padded on-disk chunk bytes (greedy largest-first, fully
// deterministic). Each shard becomes its own in-memory chunk index.
// The layout is unreplicated (R=1): a shard lost at serving time makes
// queries over its chunks degrade. BuildReplicated adds replicas.
func BuildSharded(coll *Collection, cfg BuildConfig, shards int) (*ShardedIndex, error) {
	return BuildReplicated(coll, cfg, shards, 1, nil)
}

// BuildReplicated is BuildSharded with a replication factor: every chunk
// lives on its primary shard (the same balanced assignment BuildSharded
// makes, so healthy results are independent of replication) plus
// replication−1 replica shards, which serve the chunk when the primary's
// shard is down. With replication 2 any single shard can fail with zero
// result degradation.
//
// sample, when non-nil, is a recorded workload sample (e.g. a slice of
// DatasetQueries): replicas of the clusters the sample hits most are
// placed first onto the least-loaded shards, following the
// hot-cluster-replication strategy of Tavenard et al — and, with
// cfg.HeatBalance, the *primary* placement itself is balanced by the
// sample's heat instead of bytes alone. A nil sample places replicas
// round-robin (and makes HeatBalance a no-op).
func BuildReplicated(coll *Collection, cfg BuildConfig, shards, replication int, sample []Vector) (*ShardedIndex, error) {
	clusters, outliers, err := buildClusters(coll, cfg)
	if err != nil {
		return nil, err
	}
	pageSize := normalizePageSize(cfg.PageSize)
	var heat []float64
	if len(sample) > 0 {
		heat = shard.Heat(clusters, sample, 0)
	}
	partition := shard.PartitionReplicated
	if cfg.HeatBalance {
		partition = shard.PartitionReplicatedHeated
	}
	placement, err := partition(clusters, shards, replication, coll.Dims(), pageSize, heat)
	if err != nil {
		return nil, err
	}
	parts := make([][]*cluster.Cluster, shards)
	stores := make([]chunkfile.Store, shards)
	for s := 0; s < shards; s++ {
		idxs := append(append([]int(nil), placement.Primary[s]...), placement.Extra[s]...)
		parts[s] = shard.Select(clusters, idxs)
		stores[s] = chunkfile.NewMemStore(coll, parts[s], pageSize)
	}
	router, err := shard.NewReplicatedRouterWith(stores, placement, nil, shard.RouterOptions{
		Cache:       shard.CacheConfig{Bytes: cfg.CacheBytes},
		SpreadReads: cfg.SpreadReads,
	})
	if err != nil {
		return nil, err
	}
	sx := newShardedIndex(router, pageSize)
	sx.placement = placement
	sx.coll = coll
	sx.parts = parts
	sx.Outliers = outliers
	return sx, nil
}

// Save writes the sharded index into dir: one shard-<i>.chunk /
// shard-<i>.idx pair per shard (primary chunks followed by any replica
// chunks) plus a manifest, all at the page size the index was built
// with; replicated indexes additionally write the replica-placement
// sidecar OpenSharded restores the layout from. Only indexes produced by
// BuildSharded / BuildReplicated can be saved.
func (sx *ShardedIndex) Save(dir string) error {
	if sx.coll == nil || sx.parts == nil {
		return fmt.Errorf("repro: sharded index was not built in this process; nothing to save")
	}
	if err := chunkfile.SaveSharded(sx.coll, sx.parts, dir, sx.pageSize); err != nil {
		return err
	}
	if sx.placement != nil && sx.placement.R > 1 {
		return shard.SavePlacement(filepath.Join(dir, shard.PlacementName), sx.placement)
	}
	return nil
}

// openSharded maps a sharded index directory previously written by
// ShardedIndex.Save, restoring the replica placement when the index was
// built with replication and fronting the stores with one shared
// decoded-chunk cache when cfg asks for one. The exported entry points
// are OpenSharded and OpenShardedWith in cache.go.
func openSharded(dir string, cfg OpenConfig) (*ShardedIndex, error) {
	stores, manifest, err := chunkfile.OpenSharded(dir)
	if err != nil {
		return nil, err
	}
	shardStores := make([]chunkfile.Store, len(stores))
	for i, st := range stores {
		shardStores[i] = st
	}
	closeAll := func() {
		for _, st := range stores {
			st.Close()
		}
	}
	var placement *shard.Placement
	placementPath := filepath.Join(dir, shard.PlacementName)
	if _, serr := os.Stat(placementPath); serr == nil {
		if placement, err = shard.LoadPlacement(placementPath); err != nil {
			closeAll()
			return nil, err
		}
	} else if !errors.Is(serr, os.ErrNotExist) {
		closeAll()
		return nil, fmt.Errorf("repro: stat placement file: %w", serr)
	}
	cache := shard.CacheConfig{Bytes: cfg.CacheBytes}
	var router *shard.Router
	if placement != nil {
		router, err = shard.NewReplicatedRouterWith(shardStores, placement, nil, shard.RouterOptions{
			Cache:       cache,
			SpreadReads: cfg.SpreadReads,
		})
	} else {
		router, err = shard.NewRouterCached(shardStores, nil, cache)
		if err == nil {
			router.SetSpreadReads(cfg.SpreadReads)
		}
	}
	if err != nil {
		closeAll()
		return nil, err
	}
	sx := newShardedIndex(router, manifest.PageSize)
	sx.placement = placement
	return sx, nil
}

// Close releases every shard's resources.
func (sx *ShardedIndex) Close() error { return sx.router.Close() }

// Shards returns the shard count.
func (sx *ShardedIndex) Shards() int { return sx.router.Shards() }

// Replication returns the layout's replication factor R (1 for an
// unreplicated index).
func (sx *ShardedIndex) Replication() int { return sx.router.Replication() }

// Chunks returns the total number of logical chunks across shards;
// replicas are copies, not extra chunks.
func (sx *ShardedIndex) Chunks() int { return sx.router.Chunks() }

// Len returns the number of distinct descriptors reachable through the
// index (each counted once, however many replicas hold it).
func (sx *ShardedIndex) Len() int { return sx.router.Descriptors() }

// MarkShardDown takes shard s out of rotation, exactly as the router's
// own read path does when the shard's store fails permanently: reads
// fail over to replicas, and chunks with no live replica are skipped
// with Result.Degraded set. The switch for failure drills and tests.
func (sx *ShardedIndex) MarkShardDown(s int) { sx.router.MarkShardDown(s) }

// ShardDown reports whether shard s is currently held down.
func (sx *ShardedIndex) ShardDown(s int) bool { return sx.router.ShardDown(s) }

// ShardsDown returns the number of shards currently held down.
func (sx *ShardedIndex) ShardsDown() int { return sx.router.DownShards() }

// MarkShardUp returns shard s to rotation after a MarkShardDown (or
// after the read path held it down), leaving the other shards' health
// untouched — the per-shard recovery switch a health prober flips once
// the shard answers probes again. If the shard's store is still failing,
// the next read marks it down again.
func (sx *ShardedIndex) MarkShardUp(s int) { sx.router.MarkShardUp(s) }

// ProbeShard checks whether shard s's store can serve reads right now,
// without failover, retries, health-state changes or simulated billing —
// control-plane traffic for health probers. It returns nil on success
// and the store's error otherwise.
func (sx *ShardedIndex) ProbeShard(s int) error { return sx.router.ProbeShard(s) }

// ResetHealth returns every shard to rotation — the "operator replaced
// the disk" switch.
func (sx *ShardedIndex) ResetHealth() { sx.router.ResetHealth() }

// SetSpreadReads toggles the spread-reads routing policy at serving
// time: with it on, every chunk read is served by the live copy (primary
// or replica) with the least billed simulated load, so hot chunks with
// replication stop concentrating on their primary shard, and Simulated
// reports the fold of what each machine really served. Results are
// byte-identical either way — only Simulated and the per-shard load
// split move — and down-shard failover, health, and cache semantics are
// unchanged. Safe to call concurrently with searches.
func (sx *ShardedIndex) SetSpreadReads(on bool) { sx.router.SetSpreadReads(on) }

// SpreadReads reports whether the spread-reads routing policy is on.
func (sx *ShardedIndex) SpreadReads() bool { return sx.router.SpreadReads() }

// ShardLoad is one shard's serving-load counters; see
// ShardedIndex.ShardLoads.
type ShardLoad = shard.ShardLoad

// ShardLoads returns per-shard serving-load counters — reads each shard
// actually served and, with spread reads on, the simulated serving time
// billed to it — cumulative since construction or the last ResetHealth.
func (sx *ShardedIndex) ShardLoads() []ShardLoad { return sx.router.ShardLoads(nil) }

// Search runs one query scatter-gather across the shards.
func (sx *ShardedIndex) Search(q Vector, opts SearchOptions) (*Result, error) {
	res := &Result{}
	if err := sx.SearchInto(q, opts, res); err != nil {
		return nil, err
	}
	return res, nil
}

// SearchInto runs one query scatter-gather, writing the merged outcome
// into res. By default MaxChunks and MaxTime budgets apply per shard
// (each shard is its own simulated machine); with opts.GlobalBudget they
// are spent once across the fleet in global centroid-rank order. Either
// way Simulated is the max over the shards and ChunksRead their sum. The
// Neighbors slice already in res is reused when it has capacity.
func (sx *ShardedIndex) SearchInto(q Vector, opts SearchOptions, res *Result) error {
	if err := opts.validate(); err != nil {
		return err
	}
	sr := sx.resPool.Get().(*shard.Result)
	defer sx.resPool.Put(sr)
	neighbors := sr.Neighbors
	sr.Neighbors = res.Neighbors
	routerSearch := sx.router.SearchInto
	if opts.GlobalBudget {
		routerSearch = sx.router.SearchGlobalInto
	}
	err := routerSearch(q, search.Options{
		K:       opts.K,
		Stop:    stopRule(opts),
		Overlap: opts.Overlap,
		Model:   opts.Model,
		Ctx:     opts.Ctx,
	}, sr)
	if err != nil {
		sr.Neighbors = neighbors
		return fmt.Errorf("repro: %w", err)
	}
	res.Neighbors = sr.Neighbors
	res.ChunksRead = sr.ChunksRead
	res.Simulated = sr.Elapsed
	res.Wall = sr.Wall
	res.Exact = sr.Exact
	res.Degraded = sr.Degraded
	res.ChunksSkipped = sr.ChunksSkipped
	res.ShardsDown = sr.ShardsDown
	sr.Neighbors = neighbors[:0] // keep the pooled scratch's own buffer
	return nil
}

// SearchBatchInto runs every query scatter-gather across the shards,
// writing the merged outcome of queries[qi] into results[qi]. Every
// shard executes the whole batch on its own chunk-major engine,
// concurrently with the other shards (with opts.GlobalBudget, one
// chunk-major engine runs the batch over the merged global chunk order,
// charging per-shard pipelines); per-query semantics match SearchInto
// exactly in either discipline. The results array is the caller-owned
// arena, as in Index.SearchBatchInto.
func (sx *ShardedIndex) SearchBatchInto(queries []Vector, opts BatchOptions, results []Result) error {
	if err := opts.validate(); err != nil {
		return err
	}
	if len(results) != len(queries) {
		return fmt.Errorf("repro: batch results length %d != queries length %d", len(results), len(queries))
	}
	if len(queries) == 0 {
		return nil
	}
	sp := sx.batchPool.Get().(*[]search.Result)
	defer sx.batchPool.Put(sp)
	if cap(*sp) < len(queries) {
		*sp = make([]search.Result, len(queries))
	}
	srs := (*sp)[:len(queries)]
	for i := range results {
		srs[i] = search.Result{Neighbors: results[i].Neighbors[:0]}
	}
	routerBatch := sx.router.RunBatch
	if opts.GlobalBudget {
		routerBatch = sx.router.RunBatchGlobal
	}
	err := routerBatch(queries, batchexec.Options{
		K:           opts.K,
		Stop:        stopRule(opts.SearchOptions),
		Model:       opts.Model,
		Overlap:     opts.Overlap,
		Parallelism: opts.Parallelism,
		Ctx:         opts.Ctx,
	}, srs)
	if err != nil {
		for i := range srs {
			srs[i] = search.Result{} // do not retain caller slices in the pool
		}
		var qe *batchexec.QueryError
		if errors.As(err, &qe) {
			return fmt.Errorf("repro: batch query %d: %w", qe.Query, qe.Err)
		}
		return fmt.Errorf("repro: %w", err)
	}
	shardsDown := sx.router.DownShards()
	for i := range results {
		sr := &srs[i]
		results[i] = Result{
			Neighbors:     sr.Neighbors,
			ChunksRead:    sr.ChunksRead,
			Simulated:     sr.Elapsed,
			Wall:          sr.Wall,
			Exact:         sr.Exact,
			Degraded:      sr.Degraded,
			ChunksSkipped: sr.ChunksSkipped,
			ShardsDown:    shardsDown,
		}
		srs[i] = search.Result{} // do not retain caller slices in the pool
	}
	return nil
}

// SearchBatchStream runs the batch like SearchBatchInto and streams
// per-query completions: done(qi) fires exactly once per query, the
// moment its last shard retires it with results[qi] holding the fully
// merged outcome (or, under GlobalBudget, the moment the fleet-wide
// engine retires it). Callbacks for distinct queries may fire
// concurrently and must not block. On error, queries whose callback
// already fired retain valid results; the rest are invalid. A nil done
// degenerates to SearchBatchInto.
func (sx *ShardedIndex) SearchBatchStream(queries []Vector, opts BatchOptions, results []Result, done func(query int)) error {
	if done == nil {
		return sx.SearchBatchInto(queries, opts, results)
	}
	if err := opts.validate(); err != nil {
		return err
	}
	if len(results) != len(queries) {
		return fmt.Errorf("repro: batch results length %d != queries length %d", len(results), len(queries))
	}
	if len(queries) == 0 {
		return nil
	}
	sp := sx.batchPool.Get().(*[]search.Result)
	defer sx.batchPool.Put(sp)
	if cap(*sp) < len(queries) {
		*sp = make([]search.Result, len(queries))
	}
	srs := (*sp)[:len(queries)]
	for i := range results {
		srs[i] = search.Result{Neighbors: results[i].Neighbors[:0]}
	}
	routerBatch := sx.router.RunBatchStream
	if opts.GlobalBudget {
		routerBatch = sx.router.RunBatchGlobalStream
	}
	shardsDown := sx.router.DownShards()
	err := routerBatch(queries, batchexec.Options{
		K:           opts.K,
		Stop:        stopRule(opts.SearchOptions),
		Model:       opts.Model,
		Overlap:     opts.Overlap,
		Parallelism: opts.Parallelism,
		Ctx:         opts.Ctx,
	}, srs, func(qi int) {
		sr := &srs[qi]
		results[qi] = Result{
			Neighbors:     sr.Neighbors,
			ChunksRead:    sr.ChunksRead,
			Simulated:     sr.Elapsed,
			Wall:          sr.Wall,
			Exact:         sr.Exact,
			Degraded:      sr.Degraded,
			ChunksSkipped: sr.ChunksSkipped,
			ShardsDown:    shardsDown,
		}
		done(qi)
	})
	for i := range srs {
		srs[i] = search.Result{} // do not retain caller slices in the pool
	}
	if err != nil {
		var qe *batchexec.QueryError
		if errors.As(err, &qe) {
			return fmt.Errorf("repro: batch query %d: %w", qe.Query, qe.Err)
		}
		return fmt.Errorf("repro: %w", err)
	}
	return nil
}

// SearchBatch runs every query and returns the merged results in query
// order — the allocating convenience form of SearchBatchInto.
func (sx *ShardedIndex) SearchBatch(queries []Vector, opts BatchOptions) ([]*Result, error) {
	if len(queries) == 0 {
		return nil, nil
	}
	backing := make([]Result, len(queries))
	if err := sx.SearchBatchInto(queries, opts, backing); err != nil {
		return nil, err
	}
	out := make([]*Result, len(queries))
	for i := range backing {
		out[i] = &backing[i]
	}
	return out, nil
}

// MultiSearch runs a whole-image multi-descriptor query scatter-gather:
// the bag's per-descriptor searches batch across every shard, merged
// per-descriptor neighbor lists vote for source images through the same
// aggregation as Index.MultiSearch, and the per-descriptor chunk budget
// applies per shard — or once across the fleet with opts.GlobalBudget.
func (sx *ShardedIndex) MultiSearch(descriptors []Vector, opts MultiSearchOptions) (*MultiResult, error) {
	if err := opts.validate(); err != nil {
		return nil, err
	}
	maxChunks := opts.MaxChunks
	if maxChunks <= 0 {
		maxChunks = 3
	}
	routerMulti := sx.router.MultiQuery
	if opts.GlobalBudget {
		routerMulti = sx.router.MultiQueryGlobal
	}
	res, err := routerMulti(descriptors, multiquery.Options{
		K:            opts.K,
		Stop:         search.ChunkBudget(maxChunks),
		RankWeighted: opts.RankWeighted,
		Overlap:      opts.Overlap,
		Ctx:          opts.Ctx,
	})
	if err != nil {
		return nil, fmt.Errorf("repro: %w", err)
	}
	return res, nil
}
