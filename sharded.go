package repro

import (
	"errors"
	"fmt"
	"sync"

	"repro/internal/chunkfile"
	"repro/internal/cluster"
	"repro/internal/multiquery"
	"repro/internal/search"
	"repro/internal/search/batchexec"
	"repro/internal/shard"
)

// ShardedIndex is a chunk index partitioned across S shards, each shard a
// complete two-file index served by its own single-query searcher and
// chunk-major batch engine. Queries scatter to every shard concurrently
// and gather through a deterministic merge, so a run-to-completion search
// returns the exact global k-NN. The simulated cost model is one 2005
// machine per shard: a query's Simulated is the max over the shards
// (they run in parallel) and ChunksRead the sum.
//
// Budgets come in two disciplines, selected by
// SearchOptions.GlobalBudget. By default each stop rule applies per
// shard to that shard's own simulated pipeline (MaxChunks c reads up to
// S×c chunks). With GlobalBudget set, the shards' chunk rankings merge
// into one global centroid-rank order and the budget is spent once
// across the fleet — MaxChunks c reads exactly min(c, total) chunks,
// matching the unsharded Index's quality at the same total bill. See
// DESIGN.md §5 and §7.
//
// A 1-shard ShardedIndex returns results byte-identical to Index — same
// IDs, distances, ChunksRead, Simulated and Exact under every stop rule,
// in both budget disciplines.
type ShardedIndex struct {
	router   *shard.Router
	pageSize int

	batchPool sync.Pool // *[]search.Result: SearchBatchInto's internal arena
	resPool   sync.Pool // *shard.Result: SearchInto's merge scratch

	coll  *Collection          // nil for file-opened indexes
	parts [][]*cluster.Cluster // per-shard clusters; nil for file-opened indexes

	// Outliers holds the collection positions BAG discarded (empty for
	// the other strategies and for file-opened indexes).
	Outliers []int
}

// newShardedIndex assembles the facade over a router.
func newShardedIndex(router *shard.Router, pageSize int) *ShardedIndex {
	sx := &ShardedIndex{router: router, pageSize: pageSize}
	sx.batchPool.New = func() any {
		s := []search.Result(nil)
		return &s
	}
	sx.resPool.New = func() any { return &shard.Result{} }
	return sx
}

// BuildSharded forms chunks from the collection with the selected
// strategy and partitions them across the given number of shards,
// balanced by padded on-disk chunk bytes (greedy largest-first, fully
// deterministic). Each shard becomes its own in-memory chunk index.
func BuildSharded(coll *Collection, cfg BuildConfig, shards int) (*ShardedIndex, error) {
	clusters, outliers, err := buildClusters(coll, cfg)
	if err != nil {
		return nil, err
	}
	pageSize := normalizePageSize(cfg.PageSize)
	assign, err := shard.Partition(clusters, shards, coll.Dims(), pageSize)
	if err != nil {
		return nil, err
	}
	parts := make([][]*cluster.Cluster, len(assign))
	stores := make([]chunkfile.Store, len(assign))
	for s, idxs := range assign {
		parts[s] = shard.Select(clusters, idxs)
		stores[s] = chunkfile.NewMemStore(coll, parts[s], pageSize)
	}
	router, err := shard.NewRouter(stores, nil)
	if err != nil {
		return nil, err
	}
	sx := newShardedIndex(router, pageSize)
	sx.coll = coll
	sx.parts = parts
	sx.Outliers = outliers
	return sx, nil
}

// Save writes the sharded index into dir: one shard-<i>.chunk /
// shard-<i>.idx pair per shard plus a manifest, all at the page size the
// index was built with. Only indexes produced by BuildSharded can be
// saved.
func (sx *ShardedIndex) Save(dir string) error {
	if sx.coll == nil || sx.parts == nil {
		return fmt.Errorf("repro: sharded index was not built in this process; nothing to save")
	}
	return chunkfile.SaveSharded(sx.coll, sx.parts, dir, sx.pageSize)
}

// OpenSharded maps a sharded index directory previously written by
// ShardedIndex.Save.
func OpenSharded(dir string) (*ShardedIndex, error) {
	stores, manifest, err := chunkfile.OpenSharded(dir)
	if err != nil {
		return nil, err
	}
	shardStores := make([]chunkfile.Store, len(stores))
	for i, st := range stores {
		shardStores[i] = st
	}
	router, err := shard.NewRouter(shardStores, nil)
	if err != nil {
		for _, st := range stores {
			st.Close()
		}
		return nil, err
	}
	return newShardedIndex(router, manifest.PageSize), nil
}

// Close releases every shard's resources.
func (sx *ShardedIndex) Close() error { return sx.router.Close() }

// Shards returns the shard count.
func (sx *ShardedIndex) Shards() int { return sx.router.Shards() }

// Chunks returns the total number of chunks across shards.
func (sx *ShardedIndex) Chunks() int {
	n := 0
	for s := 0; s < sx.router.Shards(); s++ {
		n += len(sx.router.Store(s).Meta())
	}
	return n
}

// Len returns the number of descriptors reachable through the index.
func (sx *ShardedIndex) Len() int {
	n := 0
	for s := 0; s < sx.router.Shards(); s++ {
		for _, m := range sx.router.Store(s).Meta() {
			n += m.Count
		}
	}
	return n
}

// Search runs one query scatter-gather across the shards.
func (sx *ShardedIndex) Search(q Vector, opts SearchOptions) (*Result, error) {
	res := &Result{}
	if err := sx.SearchInto(q, opts, res); err != nil {
		return nil, err
	}
	return res, nil
}

// SearchInto runs one query scatter-gather, writing the merged outcome
// into res. By default MaxChunks and MaxTime budgets apply per shard
// (each shard is its own simulated machine); with opts.GlobalBudget they
// are spent once across the fleet in global centroid-rank order. Either
// way Simulated is the max over the shards and ChunksRead their sum. The
// Neighbors slice already in res is reused when it has capacity.
func (sx *ShardedIndex) SearchInto(q Vector, opts SearchOptions, res *Result) error {
	sr := sx.resPool.Get().(*shard.Result)
	defer sx.resPool.Put(sr)
	neighbors := sr.Neighbors
	sr.Neighbors = res.Neighbors
	routerSearch := sx.router.SearchInto
	if opts.GlobalBudget {
		routerSearch = sx.router.SearchGlobalInto
	}
	err := routerSearch(q, search.Options{
		K:       opts.K,
		Stop:    stopRule(opts),
		Overlap: opts.Overlap,
		Model:   opts.Model,
	}, sr)
	if err != nil {
		sr.Neighbors = neighbors
		return fmt.Errorf("repro: %w", err)
	}
	res.Neighbors = sr.Neighbors
	res.ChunksRead = sr.ChunksRead
	res.Simulated = sr.Elapsed
	res.Wall = sr.Wall
	res.Exact = sr.Exact
	sr.Neighbors = neighbors[:0] // keep the pooled scratch's own buffer
	return nil
}

// SearchBatchInto runs every query scatter-gather across the shards,
// writing the merged outcome of queries[qi] into results[qi]. Every
// shard executes the whole batch on its own chunk-major engine,
// concurrently with the other shards (with opts.GlobalBudget, one
// chunk-major engine runs the batch over the merged global chunk order,
// charging per-shard pipelines); per-query semantics match SearchInto
// exactly in either discipline. The results array is the caller-owned
// arena, as in Index.SearchBatchInto.
func (sx *ShardedIndex) SearchBatchInto(queries []Vector, opts BatchOptions, results []Result) error {
	if len(results) != len(queries) {
		return fmt.Errorf("repro: batch results length %d != queries length %d", len(results), len(queries))
	}
	if len(queries) == 0 {
		return nil
	}
	sp := sx.batchPool.Get().(*[]search.Result)
	defer sx.batchPool.Put(sp)
	if cap(*sp) < len(queries) {
		*sp = make([]search.Result, len(queries))
	}
	srs := (*sp)[:len(queries)]
	for i := range results {
		srs[i] = search.Result{Neighbors: results[i].Neighbors[:0]}
	}
	routerBatch := sx.router.RunBatch
	if opts.GlobalBudget {
		routerBatch = sx.router.RunBatchGlobal
	}
	err := routerBatch(queries, batchexec.Options{
		K:           opts.K,
		Stop:        stopRule(opts.SearchOptions),
		Model:       opts.Model,
		Overlap:     opts.Overlap,
		Parallelism: opts.Parallelism,
	}, srs)
	if err != nil {
		for i := range srs {
			srs[i] = search.Result{} // do not retain caller slices in the pool
		}
		var qe *batchexec.QueryError
		if errors.As(err, &qe) {
			return fmt.Errorf("repro: batch query %d: %w", qe.Query, qe.Err)
		}
		return fmt.Errorf("repro: %w", err)
	}
	for i := range results {
		sr := &srs[i]
		results[i] = Result{
			Neighbors:  sr.Neighbors,
			ChunksRead: sr.ChunksRead,
			Simulated:  sr.Elapsed,
			Wall:       sr.Wall,
			Exact:      sr.Exact,
		}
		srs[i] = search.Result{} // do not retain caller slices in the pool
	}
	return nil
}

// SearchBatch runs every query and returns the merged results in query
// order — the allocating convenience form of SearchBatchInto.
func (sx *ShardedIndex) SearchBatch(queries []Vector, opts BatchOptions) ([]*Result, error) {
	if len(queries) == 0 {
		return nil, nil
	}
	backing := make([]Result, len(queries))
	if err := sx.SearchBatchInto(queries, opts, backing); err != nil {
		return nil, err
	}
	out := make([]*Result, len(queries))
	for i := range backing {
		out[i] = &backing[i]
	}
	return out, nil
}

// MultiSearch runs a whole-image multi-descriptor query scatter-gather:
// the bag's per-descriptor searches batch across every shard, merged
// per-descriptor neighbor lists vote for source images through the same
// aggregation as Index.MultiSearch, and the per-descriptor chunk budget
// applies per shard — or once across the fleet with opts.GlobalBudget.
func (sx *ShardedIndex) MultiSearch(descriptors []Vector, opts MultiSearchOptions) (*MultiResult, error) {
	maxChunks := opts.MaxChunks
	if maxChunks <= 0 {
		maxChunks = 3
	}
	routerMulti := sx.router.MultiQuery
	if opts.GlobalBudget {
		routerMulti = sx.router.MultiQueryGlobal
	}
	res, err := routerMulti(descriptors, multiquery.Options{
		K:            opts.K,
		Stop:         search.ChunkBudget(maxChunks),
		RankWeighted: opts.RankWeighted,
		Overlap:      opts.Overlap,
	})
	if err != nil {
		return nil, fmt.Errorf("repro: %w", err)
	}
	return res, nil
}
