package repro

import (
	"repro/internal/chunkcache"
	"repro/internal/chunkfile"
)

// CacheStats reports a decoded-chunk cache's counters: hits, misses,
// evictions, current occupancy and budget in bytes, and entry count.
// Enabled is false — and every counter zero — when the index has no
// cache. All counters are cumulative since the cache was created.
type CacheStats = chunkcache.Stats

// cachingStore aliases the internal caching store so the facade's Index
// can hold one without exposing the internal package in its API.
type cachingStore = chunkcache.CachingStore

// OpenConfig configures Open-time options beyond the two file paths.
type OpenConfig struct {
	// CacheBytes, when positive, fronts the opened store with a
	// decoded-chunk cache of that many bytes: chunks whose rows are
	// resident are handed to the scan zero-copy, skipping the read and
	// decode entirely. The cache changes wall-clock time only — results,
	// simulated timings, and ChunksRead are byte-identical with or
	// without it, because the simulated cost model is charged from the
	// chunk index, never from the reads. Zero opens without a cache.
	CacheBytes int64
	// SpreadReads opens the sharded index with the spread-reads routing
	// policy on (see BuildConfig.SpreadReads): reads go to the live copy
	// with the least billed simulated load. Answers are byte-identical
	// either way. Ignored by OpenWith (a single store has one machine).
	SpreadReads bool
}

// wrapCache fronts store with a decoded-chunk cache of the given budget;
// a non-positive budget returns the store untouched.
func wrapCache(store chunkfile.Store, bytes int64) (chunkfile.Store, *cachingStore) {
	if bytes <= 0 {
		return store, nil
	}
	cs := chunkcache.NewStore(store, chunkcache.New(bytes))
	return cs, cs
}

// OpenWith is Open with options: it maps an index previously written by
// Save, optionally behind a decoded-chunk cache.
func OpenWith(chunkPath, indexPath string, cfg OpenConfig) (*Index, error) {
	st, err := chunkfile.Open(chunkPath, indexPath)
	if err != nil {
		return nil, err
	}
	store, cached := wrapCache(st, cfg.CacheBytes)
	ix := newIndex(store)
	ix.pageSize = st.PageSize()
	ix.cached = cached
	return ix, nil
}

// CacheStats returns the index's decoded-chunk cache counters; a
// cacheless index reports the zero value with Enabled false.
func (ix *Index) CacheStats() CacheStats {
	if ix.cached == nil {
		return CacheStats{}
	}
	return ix.cached.Stats()
}

// OpenSharded maps a sharded index directory previously written by
// ShardedIndex.Save, restoring the replica placement when the index was
// built with replication.
func OpenSharded(dir string) (*ShardedIndex, error) {
	return OpenShardedWith(dir, OpenConfig{})
}

// OpenShardedWith is OpenSharded with options. CacheBytes is one budget
// shared across the shards' stores (hot shards win it), matching the
// discipline of BuildConfig.CacheBytes on a sharded build; the
// per-machine discipline — each shard's own cache, as each simulated
// machine's own RAM — is available on internal/shard's router directly.
func OpenShardedWith(dir string, cfg OpenConfig) (*ShardedIndex, error) {
	return openSharded(dir, cfg)
}

// CacheStats returns the sharded index's decoded-chunk cache counters,
// aggregated across the shards; a cacheless index reports the zero value
// with Enabled false.
func (sx *ShardedIndex) CacheStats() CacheStats { return sx.router.CacheStats() }
