package repro

import (
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/descriptor"
	"repro/internal/shard"
)

// faultOpts is the stop-rule sweep the failure drills run under: both
// budget disciplines, including a wall-clock budget — with a shard held
// down and R=2, even time-budget results must be byte-identical, because
// failover to a known-down shard's replica costs no simulated stall.
func faultOpts() []SearchOptions {
	return []SearchOptions{
		{K: 20},
		{K: 20, MaxChunks: 4},
		{K: 20, MaxTime: 80 * time.Millisecond},
		{K: 20, GlobalBudget: true},
		{K: 20, MaxChunks: 12, GlobalBudget: true},
	}
}

// TestReplicatedIndexSurvivesShardDown pins the facade guarantee: with
// replication 2, holding any single shard down changes nothing — every
// result stays byte-identical to the healthy run (IDs, distances,
// ChunksRead, Simulated, Exact) with Degraded false, across both budget
// disciplines and the batch path.
func TestReplicatedIndexSurvivesShardDown(t *testing.T) {
	coll := GenerateCollection(6000, 51)
	cfg := BuildConfig{Strategy: StrategySRTree, ChunkSize: 250}
	sx, err := BuildReplicated(coll, cfg, 3, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer sx.Close()
	if sx.Replication() != 2 {
		t.Fatalf("Replication() = %d", sx.Replication())
	}

	queryIdx := []int{0, 17, 999, 5999}
	queries := make([]Vector, len(queryIdx))
	for i, qi := range queryIdx {
		queries[i] = coll.Vec(qi)
	}

	for kill := 0; kill < sx.Shards(); kill++ {
		sx.ResetHealth()
		for _, opts := range faultOpts() {
			for _, q := range queries {
				want, err := sx.Search(q, opts)
				if err != nil {
					t.Fatal(err)
				}
				sx.MarkShardDown(kill)
				got, err := sx.Search(q, opts)
				sx.ResetHealth()
				if err != nil {
					t.Fatal(err)
				}
				if got.Degraded || got.ChunksSkipped != 0 {
					t.Fatalf("kill %d: degraded despite replication 2", kill)
				}
				if got.ShardsDown != 1 {
					t.Fatalf("kill %d: ShardsDown = %d", kill, got.ShardsDown)
				}
				compareResults(t, "shard-down", got, want)
			}
		}

		healthyBatch := make([]Result, len(queries))
		downBatch := make([]Result, len(queries))
		bopts := BatchOptions{SearchOptions: SearchOptions{K: 20}}
		if err := sx.SearchBatchInto(queries, bopts, healthyBatch); err != nil {
			t.Fatal(err)
		}
		sx.MarkShardDown(kill)
		if err := sx.SearchBatchInto(queries, bopts, downBatch); err != nil {
			t.Fatal(err)
		}
		sx.ResetHealth()
		for qi := range queries {
			if downBatch[qi].Degraded {
				t.Fatalf("kill %d batch q%d: degraded despite replication 2", kill, qi)
			}
			compareResults(t, "shard-down batch", &downBatch[qi], &healthyBatch[qi])
		}
	}
}

// TestUnreplicatedIndexDegradesHonestly pins the degraded contract at
// the facade: with replication 1, a down shard makes completion searches
// return exactly the exact k-NN over the surviving shards' descriptors,
// flagged Degraded with Exact off and ChunksSkipped equal to the dead
// shard's chunk count.
func TestUnreplicatedIndexDegradesHonestly(t *testing.T) {
	coll := GenerateCollection(6000, 77)
	sx, err := BuildSharded(coll, BuildConfig{Strategy: StrategySRTree, ChunkSize: 250}, 3)
	if err != nil {
		t.Fatal(err)
	}
	defer sx.Close()

	for kill := 0; kill < sx.Shards(); kill++ {
		sx.ResetHealth()
		sx.MarkShardDown(kill)

		// With R=1 a shard's physical clusters are exactly its primaries,
		// so the surviving data is every other shard's parts.
		survivors := descriptor.NewCollection(coll.Dims(), 0)
		for s := range sx.parts {
			if s == kill {
				continue
			}
			for _, cl := range sx.parts[s] {
				for _, pos := range cl.Members {
					survivors.Append(coll.IDAt(pos), coll.Vec(pos))
				}
			}
		}

		for _, qi := range []int{3, 512, 4000} {
			q := coll.Vec(qi)
			res, err := sx.Search(q, SearchOptions{K: 20})
			if err != nil {
				t.Fatal(err)
			}
			if !res.Degraded || res.Exact {
				t.Fatalf("kill %d q%d: Degraded %v, Exact %v", kill, qi, res.Degraded, res.Exact)
			}
			if res.ChunksSkipped != len(sx.parts[kill]) {
				t.Fatalf("kill %d q%d: ChunksSkipped %d != dead shard's %d chunks",
					kill, qi, res.ChunksSkipped, len(sx.parts[kill]))
			}
			if res.ShardsDown != 1 {
				t.Fatalf("kill %d q%d: ShardsDown %d", kill, qi, res.ShardsDown)
			}
			truth := Exact(survivors, q, 20)
			if len(res.Neighbors) != len(truth) {
				t.Fatalf("kill %d q%d: %d neighbors vs survivor oracle %d", kill, qi, len(res.Neighbors), len(truth))
			}
			for i := range truth {
				if res.Neighbors[i] != truth[i] {
					t.Fatalf("kill %d q%d rank %d: %+v != survivor oracle %+v", kill, qi, i, res.Neighbors[i], truth[i])
				}
			}
		}
	}
}

// TestReplicatedSaveOpenRoundTrip pins the placement sidecar through the
// facade: a replicated index saved and reopened keeps its replication
// factor and serves byte-identical results, healthy and with a shard
// held down.
func TestReplicatedSaveOpenRoundTrip(t *testing.T) {
	coll := GenerateCollection(5000, 91)
	sample, err := DatasetQueries(coll, 32, 9)
	if err != nil {
		t.Fatal(err)
	}
	sx, err := BuildReplicated(coll, BuildConfig{Strategy: StrategySRTree, ChunkSize: 200}, 4, 2, sample)
	if err != nil {
		t.Fatal(err)
	}
	defer sx.Close()

	dir := t.TempDir()
	if err := sx.Save(dir); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, shard.PlacementName)); err != nil {
		t.Fatalf("replicated save left no placement sidecar: %v", err)
	}
	fx, err := OpenSharded(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer fx.Close()
	if fx.Replication() != 2 {
		t.Fatalf("reopened Replication() = %d, want 2", fx.Replication())
	}
	if fx.Chunks() != sx.Chunks() || fx.Len() != sx.Len() {
		t.Fatalf("reopened shape: chunks %d/%d len %d/%d", fx.Chunks(), sx.Chunks(), fx.Len(), sx.Len())
	}

	for _, opts := range faultOpts() {
		for _, qi := range []int{1, 700, 4999} {
			q := coll.Vec(qi)
			want, err := sx.Search(q, opts)
			if err != nil {
				t.Fatal(err)
			}
			got, err := fx.Search(q, opts)
			if err != nil {
				t.Fatal(err)
			}
			compareResults(t, "file healthy", got, want)

			sx.MarkShardDown(2)
			fx.MarkShardDown(2)
			want, err = sx.Search(q, opts)
			if err != nil {
				t.Fatal(err)
			}
			got, err = fx.Search(q, opts)
			sx.ResetHealth()
			fx.ResetHealth()
			if err != nil {
				t.Fatal(err)
			}
			if got.Degraded {
				t.Fatal("file-backed replicated search degraded with one shard down")
			}
			compareResults(t, "file shard-down", got, want)
		}
	}
}
