// Command chunkbuild forms chunks from a descriptor collection and writes
// the paper's two-file chunk index (§4.2).
//
// Usage:
//
//	chunkbuild -coll collection.desc -strategy bag -size 947 -out index
//
// writes index.chunk and index.idx.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"repro"
)

func main() {
	collPath := flag.String("coll", "collection.desc", "collection file")
	strategy := flag.String("strategy", "srtree", "chunk-forming strategy: bag | srtree | roundrobin | hybrid")
	size := flag.Int("size", 1000, "target descriptors per chunk")
	seed := flag.Int64("seed", 1, "strategy seed")
	out := flag.String("out", "index", "output path prefix")
	verbose := flag.Bool("v", false, "log clustering progress")
	flag.Parse()

	coll, err := repro.LoadCollection(*collPath)
	if err != nil {
		log.Fatalf("chunkbuild: %v", err)
	}
	cfg := repro.BuildConfig{
		Strategy:  repro.Strategy(*strategy),
		ChunkSize: *size,
		Seed:      *seed,
	}
	if *verbose {
		cfg.Progress = func(pass, clusters int) {
			fmt.Fprintf(os.Stderr, "pass %d: %d clusters\n", pass, clusters)
		}
	}
	start := time.Now()
	idx, err := repro.Build(coll, cfg)
	if err != nil {
		log.Fatalf("chunkbuild: %v", err)
	}
	chunkPath, indexPath := *out+".chunk", *out+".idx"
	if err := idx.Save(chunkPath, indexPath); err != nil {
		log.Fatalf("chunkbuild: %v", err)
	}
	fmt.Printf("built %s index: %d chunks over %d descriptors (%d outliers) in %v\n",
		*strategy, idx.Chunks(), idx.Len(), len(idx.Outliers), time.Since(start).Round(time.Millisecond))
	fmt.Printf("wrote %s and %s\n", chunkPath, indexPath)
}
