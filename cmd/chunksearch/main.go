// Command chunksearch runs k-NN queries against a chunk index with any of
// the paper's stop rules (§4.3) and reports quality and simulated time.
//
// Usage:
//
//	chunksearch -coll collection.desc -index index -queries 20 -k 30 -chunks 5
//	chunksearch -coll collection.desc -index index -time 500ms
//	chunksearch -coll collection.desc -index index            # run to completion
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"repro"
)

func main() {
	collPath := flag.String("coll", "collection.desc", "collection file (query source + ground truth)")
	indexPrefix := flag.String("index", "index", "index path prefix (expects .chunk and .idx)")
	queries := flag.Int("queries", 10, "number of DQ queries to run")
	k := flag.Int("k", 30, "neighbors per query")
	chunks := flag.Int("chunks", 0, "stop after this many chunks (0 = off)")
	budget := flag.Duration("time", 0, "stop after this much simulated time (0 = off)")
	seed := flag.Int64("seed", 9, "query sampling seed")
	flag.Parse()

	coll, err := repro.LoadCollection(*collPath)
	if err != nil {
		log.Fatalf("chunksearch: %v", err)
	}
	idx, err := repro.Open(*indexPrefix+".chunk", *indexPrefix+".idx")
	if err != nil {
		log.Fatalf("chunksearch: %v", err)
	}
	defer idx.Close()

	qs, err := repro.DatasetQueries(coll, *queries, *seed)
	if err != nil {
		log.Fatalf("chunksearch: %v", err)
	}
	opts := repro.SearchOptions{K: *k, MaxChunks: *chunks, MaxTime: *budget, Overlap: true}

	var sumPrec, sumSim float64
	var sumChunks int
	for qi, q := range qs {
		res, err := idx.Search(q, opts)
		if err != nil {
			log.Fatalf("chunksearch: query %d: %v", qi, err)
		}
		truth := repro.Exact(coll, q, *k)
		p := repro.Precision(res.Neighbors, truth)
		sumPrec += p
		sumSim += res.Simulated.Seconds()
		sumChunks += res.ChunksRead
		fmt.Printf("query %2d: %2d chunks, sim %8.3fs, wall %8v, precision %.2f, exact=%v\n",
			qi, res.ChunksRead, res.Simulated.Seconds(), res.Wall.Round(time.Microsecond), p, res.Exact)
	}
	n := float64(len(qs))
	fmt.Printf("\navg: %.1f chunks, %.3fs simulated, precision %.3f\n",
		float64(sumChunks)/n, sumSim/n, sumPrec/n)
}
