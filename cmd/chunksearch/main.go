// Command chunksearch runs k-NN queries against a chunk index with any of
// the paper's stop rules (§4.3) and reports quality and simulated time.
//
// Usage:
//
//	chunksearch -coll collection.desc -index index -queries 20 -k 30 -chunks 5
//	chunksearch -coll collection.desc -index index -time 500ms
//	chunksearch -coll collection.desc -index index            # run to completion
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"repro"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintf(os.Stderr, "chunksearch: %v\n", err)
		os.Exit(1)
	}
}

// run is the command behind a testable seam: a non-nil error exits
// non-zero with a one-line diagnostic.
func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("chunksearch", flag.ContinueOnError)
	fs.SetOutput(stderr)
	collPath := fs.String("coll", "collection.desc", "collection file (query source + ground truth)")
	indexPrefix := fs.String("index", "index", "index path prefix (expects .chunk and .idx)")
	queries := fs.Int("queries", 10, "number of DQ queries to run")
	k := fs.Int("k", 30, "neighbors per query")
	chunks := fs.Int("chunks", 0, "stop after this many chunks (0 = off)")
	budget := fs.Duration("time", 0, "stop after this much simulated time (0 = off)")
	seed := fs.Int64("seed", 9, "query sampling seed")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *queries <= 0 {
		return fmt.Errorf("-queries %d must be positive", *queries)
	}
	if *k <= 0 {
		return fmt.Errorf("-k %d must be positive", *k)
	}
	if *chunks < 0 || *budget < 0 {
		return fmt.Errorf("-chunks %d and -time %v must not be negative", *chunks, *budget)
	}
	if *chunks > 0 && *budget > 0 {
		return fmt.Errorf("-chunks %d and -time %v are conflicting stop rules; set at most one", *chunks, *budget)
	}

	coll, err := repro.LoadCollection(*collPath)
	if err != nil {
		return err
	}
	idx, err := repro.Open(*indexPrefix+".chunk", *indexPrefix+".idx")
	if err != nil {
		return err
	}
	defer idx.Close()

	qs, err := repro.DatasetQueries(coll, *queries, *seed)
	if err != nil {
		return err
	}
	opts := repro.SearchOptions{K: *k, MaxChunks: *chunks, MaxTime: *budget, Overlap: true}

	var sumPrec, sumSim float64
	var sumChunks int
	for qi, q := range qs {
		res, err := idx.Search(q, opts)
		if err != nil {
			return fmt.Errorf("query %d: %w", qi, err)
		}
		truth := repro.Exact(coll, q, *k)
		p := repro.Precision(res.Neighbors, truth)
		sumPrec += p
		sumSim += res.Simulated.Seconds()
		sumChunks += res.ChunksRead
		fmt.Fprintf(stdout, "query %2d: %2d chunks, sim %8.3fs, wall %8v, precision %.2f, exact=%v\n",
			qi, res.ChunksRead, res.Simulated.Seconds(), res.Wall.Round(time.Microsecond), p, res.Exact)
	}
	n := float64(len(qs))
	fmt.Fprintf(stdout, "\navg: %.1f chunks, %.3fs simulated, precision %.3f\n",
		float64(sumChunks)/n, sumSim/n, sumPrec/n)
	return nil
}
