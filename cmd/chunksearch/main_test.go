package main

import (
	"io"
	"strings"
	"testing"
)

// TestRunBadFlags pins the CLI's error paths: bad flags and unreadable
// inputs must return an error (main turns that into exit 1 with a
// one-line diagnostic) instead of limping on or panicking.
func TestRunBadFlags(t *testing.T) {
	cases := []struct {
		name string
		args []string
		want string // substring of the error
	}{
		{"unknown flag", []string{"-bogus"}, "flag provided but not defined"},
		{"zero queries", []string{"-queries", "0"}, "-queries 0 must be positive"},
		{"negative k", []string{"-k", "-3"}, "-k -3 must be positive"},
		{"negative chunks", []string{"-chunks", "-1"}, "must not be negative"},
		{"negative time", []string{"-time", "-5ms"}, "must not be negative"},
		{"conflicting stop rules", []string{"-chunks", "5", "-time", "10ms"}, "conflicting stop rules"},
		{"unreadable collection", []string{"-coll", "/nonexistent/c.desc"}, "no such file"},
		{"unreadable index", []string{"-coll", "/nonexistent/c.desc", "-index", "/nonexistent/idx"}, "no such file"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := run(tc.args, io.Discard, io.Discard)
			if err == nil {
				t.Fatalf("run(%v) = nil, want error containing %q", tc.args, tc.want)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("run(%v) = %q, want substring %q", tc.args, err, tc.want)
			}
		})
	}
}
