// Command descgen generates a synthetic local-descriptor collection file,
// the stand-in for the paper's 5M-descriptor TV-broadcast collection (see
// DESIGN.md §2).
//
// Usage:
//
//	descgen -n 100000 -seed 42 -out collection.desc
package main

import (
	"flag"
	"fmt"
	"log"

	"repro/internal/imagegen"
)

func main() {
	n := flag.Int("n", 100000, "approximate number of descriptors")
	seed := flag.Int64("seed", 42, "generation seed")
	out := flag.String("out", "collection.desc", "output file")
	flag.Parse()

	ds, err := imagegen.Generate(imagegen.DefaultConfig(*n, *seed))
	if err != nil {
		log.Fatalf("descgen: %v", err)
	}
	if err := ds.Collection.SaveFile(*out); err != nil {
		log.Fatalf("descgen: %v", err)
	}
	fmt.Printf("wrote %d descriptors (%d dims, %d noise) to %s\n",
		ds.Collection.Len(), ds.Collection.Dims(), ds.NoiseCount(), *out)
}
