package main

import (
	"context"
	"io"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"repro"
)

// TestRunBadFlags pins the daemon's startup error paths: every
// misconfiguration must fail fast with a diagnostic error, never start
// listening half-configured.
func TestRunBadFlags(t *testing.T) {
	cases := []struct {
		name string
		args []string
		want string // substring of the error
	}{
		{"unknown flag", []string{"-bogus"}, "flag provided but not defined"},
		{"no indexes", []string{"-addr", "127.0.0.1:0"}, "no indexes to serve"},
		{"index missing equals", []string{"-index", "justaname"}, "want name=path"},
		{"index empty name", []string{"-index", "=/tmp/x"}, "want name=path"},
		{"index empty path", []string{"-index", "main="}, "want name=path"},
		{"negative inflight", []string{"-index", "m=/tmp/x", "-max-inflight", "-1"}, "negative"},
		{"negative rate", []string{"-index", "m=/tmp/x", "-tenant-rate", "-2"}, "negative"},
		{"negative drain", []string{"-index", "m=/tmp/x", "-drain-timeout", "-1s"}, "negative"},
		{"unreadable index path", []string{"-index", "main=/nonexistent/idx"}, `index "main"`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := run(context.Background(), tc.args, io.Discard, io.Discard)
			if err == nil {
				t.Fatalf("run(%v) = nil, want error containing %q", tc.args, tc.want)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("run(%v) = %q, want substring %q", tc.args, err, tc.want)
			}
		})
	}
}

// syncBuffer is a mutex-guarded string buffer: run writes progress to
// it from the test goroutine while the test polls it from another.
type syncBuffer struct {
	mu sync.Mutex
	b  strings.Builder
}

func (s *syncBuffer) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuffer) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

// TestRunServeAndDrain runs the real daemon end to end on a saved
// index: start serving, cancel the context (what SIGTERM does), and
// require a clean drain with a nil error.
func TestRunServeAndDrain(t *testing.T) {
	dir := t.TempDir()
	prefix := filepath.Join(dir, "tiny")
	coll := repro.GenerateCollection(600, 7)
	ix, err := repro.Build(coll, repro.BuildConfig{Strategy: repro.StrategySRTree, ChunkSize: 200})
	if err != nil {
		t.Fatal(err)
	}
	if err := ix.Save(prefix+".chunk", prefix+".idx"); err != nil {
		t.Fatal(err)
	}
	if err := ix.Close(); err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var out syncBuffer
	done := make(chan error, 1)
	go func() {
		done <- run(ctx, []string{
			"-addr", "127.0.0.1:0",
			"-index", "tiny=" + prefix,
			"-drain-timeout", "5s",
		}, &out, io.Discard)
	}()

	deadline := time.Now().Add(5 * time.Second)
	for !strings.Contains(out.String(), "serving") {
		select {
		case err := <-done:
			t.Fatalf("daemon exited before serving: %v\n%s", err, out.String())
		default:
		}
		if time.Now().After(deadline) {
			t.Fatalf("daemon never reported serving:\n%s", out.String())
		}
		time.Sleep(5 * time.Millisecond)
	}

	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("run returned %v after cancel, want nil\n%s", err, out.String())
		}
	case <-time.After(10 * time.Second):
		t.Fatalf("daemon did not drain within 10s:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "shut down cleanly") {
		t.Fatalf("missing clean-shutdown message:\n%s", out.String())
	}
}
