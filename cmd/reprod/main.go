// Command reprod serves one or more chunk indexes over HTTP/JSON with
// the robustness envelope of internal/server: per-request deadlines
// propagated down to the chunk loop, bounded in-flight admission,
// per-tenant chunk-bucket rate limits, honest degraded results, a
// background shard-health prober, and graceful drain on SIGTERM/SIGINT.
//
// Usage:
//
//	reprod -addr :8080 -index main=/data/idx -index tv=/data/tv \
//	       -default-deadline 200ms -max-inflight 64 \
//	       -tenant-rate 500 -tenant-burst 2000 -best-effort \
//	       -cache-bytes 268435456
//
// Each -index value is name=path, where path is either a sharded index
// directory (as written by ShardedIndex.Save) or an unsharded index
// prefix (prefix.chunk + prefix.idx, as written by chunkbuild).
//
// Endpoints: POST /v1/indexes/{index}/search, .../batch, .../multi;
// GET /v1/indexes, /healthz, /readyz, /metrics.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro"
	"repro/internal/server"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintf(os.Stderr, "reprod: %v\n", err)
		os.Exit(1)
	}
}

// indexSpec is one parsed -index flag.
type indexSpec struct {
	name, path string
}

// run is the whole daemon behind a testable seam: flags in, diagnostics
// out, non-nil error on any failure. It serves until ctx is cancelled
// (the signal handler in main), then drains and exits.
func run(ctx context.Context, args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("reprod", flag.ContinueOnError)
	fs.SetOutput(stderr)
	addr := fs.String("addr", "127.0.0.1:8080", "listen address")
	defaultDeadline := fs.Duration("default-deadline", 0, "deadline for requests without X-Deadline-Ms (0 = none)")
	maxInFlight := fs.Int("max-inflight", 0, "max concurrently executing requests; excess shed with 503 (0 = unlimited)")
	tenantRate := fs.Float64("tenant-rate", 0, "per-tenant budget in chunks/second (0 = unlimited)")
	tenantBurst := fs.Float64("tenant-burst", 0, "per-tenant bucket capacity in chunks (min: tenant-rate)")
	bestEffort := fs.Bool("best-effort", false, "shrink over-budget chunk-budget requests instead of shedding with 429")
	defaultMaxChunks := fs.Int("default-max-chunks", 0, "admission cost estimate per query without a chunk budget (0 = 16)")
	probeInterval := fs.Duration("probe-interval", 0, "shard health probe period (0 = 250ms)")
	cacheBytes := fs.Int64("cache-bytes", 0, "decoded-chunk cache budget in bytes per index, shared across an index's shards (0 = no cache)")
	spreadReads := fs.Bool("spread-reads", false, "serve each chunk read from the least-loaded live copy (primary or replica) instead of the primary; results are identical, only simulated times and the per-shard load split move")
	drainTimeout := fs.Duration("drain-timeout", 10*time.Second, "max wait for in-flight requests at shutdown")
	var specs []indexSpec
	fs.Func("index", "name=path of an index to serve (repeatable); path is a sharded index directory or an unsharded prefix", func(v string) error {
		name, path, ok := strings.Cut(v, "=")
		if !ok || name == "" || path == "" {
			return fmt.Errorf("want name=path, got %q", v)
		}
		specs = append(specs, indexSpec{name: name, path: path})
		return nil
	})
	if err := fs.Parse(args); err != nil {
		return err
	}
	if len(specs) == 0 {
		return fmt.Errorf("no indexes to serve: pass at least one -index name=path")
	}
	if *maxInFlight < 0 || *tenantRate < 0 || *tenantBurst < 0 || *defaultMaxChunks < 0 ||
		*defaultDeadline < 0 || *probeInterval < 0 || *drainTimeout < 0 || *cacheBytes < 0 {
		return fmt.Errorf("negative values make no sense for limits, rates, sizes, or timeouts")
	}

	reg := server.NewRegistry()
	// On any failure below, close what was opened so a half-configured
	// daemon doesn't leak descriptors.
	defer reg.CloseAll()
	for _, spec := range specs {
		b, kind, err := openIndex(spec.path, *cacheBytes, *spreadReads)
		if err != nil {
			return fmt.Errorf("index %q: %w", spec.name, err)
		}
		if err := reg.Add(spec.name, b); err != nil {
			b.Close()
			return err
		}
		fmt.Fprintf(stdout, "reprod: index %q: %s, %d descriptors in %d chunks\n",
			spec.name, kind, b.Len(), b.Chunks())
	}

	srv := server.New(reg, server.Config{
		DefaultDeadline:  *defaultDeadline,
		MaxInFlight:      *maxInFlight,
		TenantRate:       *tenantRate,
		TenantBurst:      *tenantBurst,
		BestEffort:       *bestEffort,
		DefaultMaxChunks: *defaultMaxChunks,
		ProbeInterval:    *probeInterval,
	})
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return fmt.Errorf("listen: %w", err)
	}
	fmt.Fprintf(stdout, "reprod: serving %d index(es) on http://%s\n", len(specs), ln.Addr())

	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	fmt.Fprintln(stdout, "reprod: draining")
	sctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := srv.Shutdown(sctx); err != nil {
		return fmt.Errorf("shutdown: %w", err)
	}
	if err := <-errc; err != nil {
		return err
	}
	fmt.Fprintln(stdout, "reprod: shut down cleanly")
	return nil
}

// openIndex opens path as a sharded index directory or an unsharded
// prefix, reporting which it picked. A positive cacheBytes fronts the
// index's store(s) with a decoded-chunk cache of that budget;
// spreadReads turns on the sharded spread-reads routing policy (an
// unsharded index has one machine and ignores it).
func openIndex(path string, cacheBytes int64, spreadReads bool) (server.Backend, string, error) {
	cfg := repro.OpenConfig{CacheBytes: cacheBytes, SpreadReads: spreadReads}
	if st, err := os.Stat(path); err == nil && st.IsDir() {
		sx, err := repro.OpenShardedWith(path, cfg)
		if err != nil {
			return nil, "", err
		}
		return sx, fmt.Sprintf("sharded (%d shards, R=%d)", sx.Shards(), sx.Replication()), nil
	}
	ix, err := repro.OpenWith(path+".chunk", path+".idx", cfg)
	if err != nil {
		return nil, "", err
	}
	return ix, "unsharded", nil
}
